(* ldapctl: command-line driver for the filter-based replication
   library.

   Subcommands:
     gen        - build a synthetic enterprise directory and print stats
     search     - run an LDAP search against a generated directory
     contains   - check semantic containment of two queries
     condition  - show the compiled cross-template containment CNF
     resync     - run a scripted ReSync session against a tiny master
     workload   - generate a workload and print its distribution
     experiment - run one of the paper's tables/figures
     topology   - build a cascading replication topology and summarize it
     store      - journal a replica, crash it, and report its recovery
     antientropy - reconcile a drifted replica by Merkle walk and report it
     shard      - partition a directory over shards and report the router
     scale      - build the paper-scale topology and report content-plane
                  residency (per-tier entries, session history, cursors,
                  store bytes)
     adapt      - drive the drifting workload against an adaptive replica
                  and report hit-ratio recovery, transition traffic and
                  plan outcomes (incl. failed installs) *)

open Cmdliner
open Ldap
module C = Ldap_containment
module Dirgen = Ldap_dirgen
module Eval = Ldap_eval

let schema = Schema.default

(* --- Shared argument converters --------------------------------------- *)

let query_conv ~base ~filter ~scope =
  match Scope.of_string scope with
  | None -> Error (Printf.sprintf "invalid scope %S (base|one|sub)" scope)
  | Some scope -> Query.of_strings ~scope ~base filter

let employees_arg =
  let doc = "Number of employee entries in the generated directory." in
  Arg.(value & opt int 20_000 & info [ "employees"; "n" ] ~doc)

let seed_arg =
  let doc = "Deterministic seed for directory and workload generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let enterprise_config employees seed =
  { Dirgen.Enterprise.default_config with Dirgen.Enterprise.employees; seed }

(* --- gen --------------------------------------------------------------- *)

let gen_cmd =
  let run employees seed =
    let e = Dirgen.Enterprise.build (enterprise_config employees seed) in
    let b = Dirgen.Enterprise.backend e in
    Printf.printf "directory built: %d entries total\n" (Backend.total_entries b);
    Printf.printf "  persons:   %d\n" (Dirgen.Enterprise.person_count e);
    Printf.printf "  countries: %d (target geography: %d)\n"
      (Dirgen.Enterprise.config e).Dirgen.Enterprise.countries
      (Dirgen.Enterprise.config e).Dirgen.Enterprise.target_countries;
    Printf.printf "  departments: %d\n"
      (Array.length (Dirgen.Enterprise.dept_numbers e));
    Printf.printf "  locations: %d\n"
      (Array.length (Dirgen.Enterprise.location_names e))
  in
  let doc = "Build the synthetic enterprise directory and print statistics." in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const run $ employees_arg $ seed_arg)

(* --- search ------------------------------------------------------------ *)

let search_cmd =
  let base =
    Arg.(value & opt string "o=xyz" & info [ "base"; "b" ] ~doc:"Search base DN.")
  in
  let scope =
    Arg.(value & opt string "sub" & info [ "scope"; "s" ] ~doc:"base | one | sub.")
  in
  let filter =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILTER" ~doc:"RFC 2254 filter.")
  in
  let limit =
    Arg.(value & opt int 10 & info [ "limit" ] ~doc:"Max entries to print.")
  in
  let sort =
    Arg.(value & opt (some string) None
         & info [ "sort" ] ~doc:"Server-side sort keys (RFC 2891), e.g. 'sn,-age'.")
  in
  let run employees seed base scope filter limit sort =
    match query_conv ~base ~filter ~scope with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok q -> (
        let keys =
          match sort with
          | None -> []
          | Some spec -> (
              match Sort_control.keys_of_string spec with
              | Ok keys -> keys
              | Error e ->
                  prerr_endline e;
                  exit 1)
        in
        let enterprise = Dirgen.Enterprise.build (enterprise_config employees seed) in
        let backend = Dirgen.Enterprise.backend enterprise in
        match Backend.search backend q with
        | Error (Backend.No_such_object dn) ->
            Printf.printf "noSuchObject: %s\n" (Dn.to_string dn)
        | Error (Backend.Base_referral { urls; _ }) ->
            Printf.printf "referral: %s\n" (String.concat ", " urls)
        | Ok { Backend.entries; references } ->
            let entries =
              if keys = [] then entries else Sort_control.sort schema ~keys entries
            in
            Printf.printf "%d entries (%d references)\n" (List.length entries)
              (List.length references);
            List.iteri
              (fun i e -> if i < limit then Format.printf "%a@\n@\n" Entry.pp e)
              entries)
  in
  let doc = "Search a generated directory." in
  Cmd.v (Cmd.info "search" ~doc)
    Term.(const run $ employees_arg $ seed_arg $ base $ scope $ filter $ limit $ sort)

(* --- export -------------------------------------------------------------- *)

let export_cmd =
  let base =
    Arg.(value & opt string "o=xyz" & info [ "base"; "b" ] ~doc:"Search base DN.")
  in
  let filter =
    Arg.(value & opt string "(objectclass=*)" & info [ "filter"; "f" ] ~doc:"RFC 2254 filter.")
  in
  let run employees seed base filter =
    match query_conv ~base ~filter ~scope:"sub" with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok q -> (
        let enterprise = Dirgen.Enterprise.build (enterprise_config employees seed) in
        match Backend.search (Dirgen.Enterprise.backend enterprise) q with
        | Error _ ->
            prerr_endline "search failed";
            exit 1
        | Ok { Backend.entries; _ } -> print_string (Ldif.entries_to_string entries))
  in
  let doc = "Export matching entries of a generated directory as LDIF." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ employees_arg $ seed_arg $ base $ filter)

(* --- contains ----------------------------------------------------------- *)

let contains_cmd =
  let q1 = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Incoming filter.") in
  let q2 = Arg.(required & pos 1 (some string) None & info [] ~docv:"STORED" ~doc:"Stored filter.") in
  let base1 = Arg.(value & opt string "o=xyz" & info [ "base1" ] ~doc:"Incoming base DN.") in
  let base2 = Arg.(value & opt string "o=xyz" & info [ "base2" ] ~doc:"Stored base DN.") in
  let run f1 f2 base1 base2 =
    match (Query.of_strings ~base:base1 f1, Query.of_strings ~base:base2 f2) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 1
    | Ok query, Ok stored ->
        let result = C.Query_containment.contained schema ~query ~stored in
        Printf.printf "%s\n  contained in\n%s\n=> %b\n" (Query.to_string query)
          (Query.to_string stored) result
  in
  let doc = "Decide semantic containment of one query in another (algorithm QC)." in
  Cmd.v (Cmd.info "contains" ~doc) Term.(const run $ q1 $ q2 $ base1 $ base2)

(* --- compare --------------------------------------------------------------- *)

let compare_cmd =
  let target = Arg.(required & pos 0 (some string) None & info [] ~docv:"DN" ~doc:"Entry DN.") in
  let attr = Arg.(required & pos 1 (some string) None & info [] ~docv:"ATTR" ~doc:"Attribute.") in
  let value = Arg.(required & pos 2 (some string) None & info [] ~docv:"VALUE" ~doc:"Assertion value.") in
  let run employees seed target attr value =
    match Dn.of_string target with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok dn -> (
        let enterprise = Dirgen.Enterprise.build (enterprise_config employees seed) in
        match Backend.compare_values (Dirgen.Enterprise.backend enterprise) dn ~attr ~value with
        | Ok result -> Printf.printf "compare%s\n" (if result then "True" else "False")
        | Error e ->
            prerr_endline e;
            exit 1)
  in
  let doc = "LDAP compare operation against a generated directory." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ employees_arg $ seed_arg $ target $ attr $ value)

(* --- condition ----------------------------------------------------------- *)

let condition_cmd =
  let t1 =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"LEFT" ~doc:"Contained-side template, e.g. '(serialnumber=_)'.")
  in
  let t2 =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"RIGHT" ~doc:"Containing-side template, e.g. '(serialnumber=_*)'.")
  in
  let run left right =
    match (C.Template.of_string left, C.Template.of_string right) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 1
    | Ok left, Ok right -> (
        match C.Symbolic.compile schema ~left ~right with
        | None -> print_endline "condition: (compilation infeasible; runtime check)"
        | Some cond ->
            Printf.printf "containment condition (Proposition 2 CNF):\n  %s\n"
              (C.Symbolic.to_string cond))
  in
  let doc = "Compile and print the cross-template containment condition." in
  Cmd.v (Cmd.info "condition" ~doc) Term.(const run $ t1 $ t2)

(* --- resync -------------------------------------------------------------- *)

let resync_cmd =
  let run () = Eval.Report.print (Eval.Figures.figure3 ()) in
  let doc = "Replay the paper's Figure 3 ReSync session and print the trace." in
  Cmd.v (Cmd.info "resync" ~doc) Term.(const run $ const ())

(* --- workload ------------------------------------------------------------ *)

let workload_cmd =
  let length =
    Arg.(value & opt int 20_000 & info [ "length" ] ~doc:"Number of queries.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~doc:"Write the workload as a trace file.")
  in
  let run employees seed length out =
    let enterprise = Dirgen.Enterprise.build (enterprise_config employees seed) in
    let config = { Dirgen.Workload.default_config with Dirgen.Workload.length; seed } in
    let items = Dirgen.Workload.generate enterprise config in
    (match out with
    | Some path ->
        let oc = open_out path in
        Dirgen.Trace.save oc items;
        close_out oc;
        Printf.printf "wrote %d queries to %s\n" (Array.length items) path
    | None -> ());
    List.iter
      (fun (kind, share) ->
        Printf.printf "%-14s %5.1f%%\n" (Dirgen.Workload.kind_name kind) (100.0 *. share))
      (Dirgen.Workload.mix_of items);
    print_endline "sample:";
    Array.iteri
      (fun i (item : Dirgen.Workload.item) ->
        if i < 10 then
          Printf.printf "  %s\n" (Filter.to_string item.Dirgen.Workload.query.Query.filter))
      items
  in
  let doc = "Generate a Table 1 workload, print its mix, optionally save a trace." in
  Cmd.v (Cmd.info "workload" ~doc) Term.(const run $ employees_arg $ seed_arg $ length $ out)

(* --- replay ---------------------------------------------------------------- *)

let replay_cmd =
  let trace =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let budget_pct =
    Arg.(value & opt int 10 & info [ "budget" ] ~doc:"Replica entry budget, %% of persons.")
  in
  let cache =
    Arg.(value & opt int 100 & info [ "cache" ] ~doc:"User-query cache window size.")
  in
  let run employees seed trace budget_pct cache =
    let ic = open_in trace in
    let items =
      match Dirgen.Trace.load ic with
      | Ok items -> items
      | Error e ->
          close_in ic;
          prerr_endline e;
          exit 1
    in
    close_in ic;
    let scenario =
      Eval.Scenario.setup ~config:(enterprise_config employees seed) ()
    in
    let persons = Dirgen.Enterprise.person_count scenario.Eval.Scenario.enterprise in
    let budget = persons * budget_pct / 100 in
    let n = Array.length items in
    let train = Array.sub items 0 (n / 2) in
    let eval = Array.sub items (n / 2) (n - (n / 2)) in
    let replica =
      Ldap_replication.Filter_replica.create ~cache_capacity:cache
        scenario.Eval.Scenario.master
    in
    let rules =
      [
        Ldap_selection.Generalize.Prefix_value { attr = "serialnumber"; keep = 6 };
        Ldap_selection.Generalize.Widen_to_presence { attr = "departmentnumber" };
        Ldap_selection.Generalize.Prefix_value { attr = "mail"; keep = 3 };
      ]
    in
    let filters = Eval.Scenario.select_static scenario ~rules ~train ~budget in
    (match Ldap_selection.Selector.install_static replica filters with
    | Ok () -> ()
    | Error e ->
        prerr_endline e;
        exit 1);
    Eval.Scenario.drive_filter scenario replica ~cache_misses:true
      Eval.Scenario.no_updates eval;
    let stats = Ldap_replication.Filter_replica.stats replica in
    Printf.printf "trace: %d queries (%d train / %d eval)\n" n (Array.length train)
      (Array.length eval);
    Printf.printf "replica: %d filters, %d entries (budget %d)\n"
      (List.length (Ldap_replication.Filter_replica.stored_filters replica))
      (Ldap_replication.Filter_replica.size_entries replica)
      budget;
    Printf.printf "hit ratio: %.3f\n" (Ldap_replication.Stats.hit_ratio stats)
  in
  let doc = "Replay a workload trace against a filter replica and report hit ratio." in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ employees_arg $ seed_arg $ trace $ budget_pct $ cache)

(* --- topology ------------------------------------------------------------ *)

let topology_cmd =
  let module T = Ldap_topology in
  let leaves_arg =
    Arg.(value & opt int 200
         & info [ "leaves" ] ~doc:"Number of leaf consumers.")
  in
  let arity_arg =
    Arg.(value & opt int 4
         & info [ "arity" ] ~doc:"Interior nodes of the tree (or chain length).")
  in
  let filters_arg =
    Arg.(value & opt int 12
         & info [ "filters" ] ~doc:"Distinct department filters (and interior covers).")
  in
  let updates_arg =
    Arg.(value & opt int 100
         & info [ "updates" ] ~doc:"Update-stream steps applied at the root.")
  in
  let shape_arg =
    Arg.(value & opt string "tree"
         & info [ "shape" ] ~doc:"Topology shape: star, tree or chain.")
  in
  let run employees seed leaves arity filters updates shape_name =
    let shape =
      match String.lowercase_ascii shape_name with
      | "star" -> T.Topology.Star
      | "tree" -> T.Topology.Tree { arity }
      | "chain" -> T.Topology.Chain arity
      | other ->
          Printf.eprintf "unknown shape %S (star|tree|chain)\n" other;
          exit 1
    in
    let ent = Dirgen.Enterprise.build (enterprise_config employees seed) in
    let backend = Dirgen.Enterprise.backend ent in
    let base = Dirgen.Enterprise.root_dn ent in
    let all_depts = Dirgen.Enterprise.dept_numbers ent in
    let filters = min filters (Array.length all_depts) in
    let query_of d =
      Query.make ~base
        (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" d))
    in
    let covers = List.init filters (fun i -> query_of all_depts.(i)) in
    let leaf_queries =
      List.init leaves (fun i -> query_of all_depts.(i mod filters))
    in
    match T.Topology.build ~shape ~covers ~leaf_queries backend with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok t ->
        let stream =
          Dirgen.Update_stream.create ent
            { Dirgen.Update_stream.default_config with seed = seed + 1 }
        in
        Dirgen.Update_stream.steps stream updates;
        let rounds = T.Topology.rounds_to_converge t in
        Printf.printf
          "%s: %d leaves over %d interior nodes, %d covers, %d updates\n"
          shape_name leaves
          (List.length (T.Topology.nodes t))
          filters updates;
        let rows =
          List.map
            (fun (s : T.Topology.tier_summary) ->
              [
                string_of_int s.T.Topology.tier;
                string_of_int s.T.Topology.members;
                string_of_int s.T.Topology.sessions;
                string_of_int s.T.Topology.upstream_bytes;
                string_of_int s.T.Topology.served_bytes;
              ])
            (T.Topology.tier_summaries t)
        in
        Eval.Report.print
          (Eval.Report.make
             ~title:(Printf.sprintf "Per-tier summary (%s)" shape_name)
             ~notes:
               [
                 (match rounds with
                 | Some r -> Printf.sprintf "converged after %d poll rounds" r
                 | None -> "did not converge (raise rounds cap?)");
                 Printf.sprintf "root-link Ber bytes: %d"
                   (T.Topology.root_link_bytes t);
                 "upstream B: bytes members paid on their upstream links;";
                 "served B: bytes members served to the tier below";
               ]
             ~columns:[ "tier"; "members"; "sessions"; "upstream B"; "served B" ]
             ~rows ())
  in
  let doc =
    "Build a cascading replication topology (star, k-ary tree or chain of \
     intermediate nodes), drive an update workload through it and print a \
     per-tier session and byte summary."
  in
  Cmd.v (Cmd.info "topology" ~doc)
    Term.(
      const run $ employees_arg $ seed_arg $ leaves_arg $ arity_arg
      $ filters_arg $ updates_arg $ shape_arg)

(* --- store --------------------------------------------------------------- *)

let store_cmd =
  let module Resync = Ldap_resync in
  let module R = Ldap_replication in
  let module Store = Ldap_store in
  let filters_arg =
    Arg.(value & opt int 4
         & info [ "filters" ] ~doc:"Distinct department filters journaled.")
  in
  let updates_arg =
    Arg.(value & opt int 60
         & info [ "updates" ] ~doc:"Update-stream steps applied after the checkpoint.")
  in
  let torn_arg =
    Arg.(value & flag
         & info [ "torn" ]
             ~doc:"Journal without per-append fsync and tear the WAL tail at \
                   the crash, so recovery must truncate.")
  in
  let run employees seed filters updates torn =
    let ent = Dirgen.Enterprise.build (enterprise_config employees seed) in
    let backend = Dirgen.Enterprise.backend ent in
    let base = Dirgen.Enterprise.root_dn ent in
    let all_depts = Dirgen.Enterprise.dept_numbers ent in
    let filters = min filters (Array.length all_depts) in
    let master = Resync.Master.create backend in
    let replica = R.Filter_replica.create master in
    let medium =
      if torn then
        let prng = Dirgen.Prng.create (seed + 3) in
        let faults =
          Store.Medium.Faults.create ~torn_tail:1.0
            ~roll:(fun () -> Dirgen.Prng.float prng 1.0)
            ()
        in
        Store.Medium.memory ~faults ()
      else Store.Medium.memory ()
    in
    R.Filter_replica.attach_store ~sync:(not torn) replica medium
      ~prefix:"replica";
    List.iteri
      (fun i () ->
        let q =
          Query.make ~base
            (Filter.of_string_exn
               (Printf.sprintf "(departmentNumber=%s)" all_depts.(i)))
        in
        match R.Filter_replica.install_filter replica q with
        | Ok () -> ()
        | Error e ->
            Printf.eprintf "install_filter: %s\n" e;
            exit 1)
      (List.init filters (fun _ -> ()));
    R.Filter_replica.sync replica;
    (* Checkpoint establishes the durable baseline; the update batch
       below lands in the WAL tails (unsynced under --torn). *)
    R.Filter_replica.checkpoint replica;
    let stream =
      Dirgen.Update_stream.create ent
        { Dirgen.Update_stream.default_config with seed = seed + 1 }
    in
    Dirgen.Update_stream.steps stream updates;
    R.Filter_replica.sync replica;
    (* Simulated crash: fault-roll the medium, detach the zombie. *)
    Store.Medium.crash medium;
    R.Filter_replica.detach_store replica;
    match
      R.Filter_replica.recover_over
        (R.Filter_replica.transport replica)
        ~master_host:(R.Filter_replica.master_host replica)
        medium ~prefix:"replica"
    with
    | Error e ->
        Printf.eprintf "recovery failed: %s\n" e;
        exit 1
    | Ok (_, report) ->
        let rows =
          List.map
            (fun (fr : R.Filter_replica.filter_recovery) ->
              [
                string_of_int fr.R.Filter_replica.fr_slot;
                Query.to_string fr.R.Filter_replica.fr_query;
                string_of_int fr.R.Filter_replica.fr_entries;
                string_of_int fr.R.Filter_replica.fr_wal_bytes;
                string_of_int fr.R.Filter_replica.fr_snapshot_bytes;
                string_of_int fr.R.Filter_replica.fr_replayed;
                (if fr.R.Filter_replica.fr_truncated then
                   Printf.sprintf "@%d" fr.R.Filter_replica.fr_truncation_point
                 else "-");
                (match fr.R.Filter_replica.fr_cookie with
                | Some c -> c
                | None -> "-");
              ])
            report.R.Filter_replica.filters
        in
        Eval.Report.print
          (Eval.Report.make ~title:"Durable store recovery"
             ~notes:
               [
                 Printf.sprintf
                   "meta store: %d records replayed, truncated: %s"
                   report.R.Filter_replica.meta_replayed
                   (if report.R.Filter_replica.meta_truncated then "yes"
                    else "no");
                 Printf.sprintf "%d updates journaled %s the checkpoint"
                   updates
                   (if torn then "without fsync after" else "after");
                 "trunc: byte offset where WAL replay stopped (- = clean)";
                 "cookie: last durable ReSync cookie (resume point)";
               ]
             ~columns:
               [
                 "slot"; "filter"; "entries"; "WAL B"; "snap B"; "replayed";
                 "trunc"; "cookie";
               ]
             ~rows ())
  in
  let doc =
    "Journal a filter replica to a durable store, crash it, recover, and \
     report per-replica WAL/snapshot sizes, records replayed, truncation \
     points and last durable cookies."
  in
  Cmd.v (Cmd.info "store" ~doc)
    Term.(
      const run $ employees_arg $ seed_arg $ filters_arg $ updates_arg
      $ torn_arg)

(* --- antientropy ---------------------------------------------------------- *)

let antientropy_cmd =
  let module Resync = Ldap_resync in
  let module AE = Ldap_antientropy in
  let filter_arg =
    Arg.(value & opt string "(departmentNumber=01*)"
         & info [ "filter"; "f" ] ~doc:"Replicated filter to reconcile.")
  in
  let drift_arg =
    Arg.(value & opt int 60
         & info [ "drift" ]
             ~doc:"Update-stream steps applied at the master while the \
                   replica is detached.")
  in
  let segments_arg =
    Arg.(value & opt int AE.Tree.default_config.AE.Tree.segments
         & info [ "segments" ] ~doc:"Leaf segments of the hash tree.")
  in
  let run employees seed filter drift segments =
    match Query.of_strings ~base:"o=xyz" filter with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok query -> (
        let ent = Dirgen.Enterprise.build (enterprise_config employees seed) in
        let backend = Dirgen.Enterprise.backend ent in
        let master = Resync.Master.create backend in
        let transport = Resync.Transport.loopback master in
        let consumer = Resync.Consumer.create schema query in
        (match
           Resync.Consumer.sync_over consumer transport
             ~host:Resync.Transport.loopback_host
         with
        | Ok _ -> ()
        | Error e ->
            prerr_endline (Resync.Consumer.sync_error_to_string e);
            exit 1);
        let before = Resync.Consumer.size consumer in
        (* The replica now holds the filter's content.  Drift the master
           underneath it, then reconcile by Merkle walk instead of a
           ReSync poll — the stale-cookie recovery path. *)
        let stream =
          Dirgen.Update_stream.create ent
            { Dirgen.Update_stream.default_config with seed = seed + 1 }
        in
        Dirgen.Update_stream.steps stream drift;
        let config = { AE.Tree.default_config with AE.Tree.segments } in
        match
          Resync.Consumer.merkle_sync ~config consumer transport
            ~host:Resync.Transport.loopback_host
        with
        | Error e ->
            prerr_endline ("merkle sync failed: " ^ e);
            exit 1
        | Ok r ->
            let pct a b =
              if b = 0 then "-" else Printf.sprintf "%.1f%%" (100. *. float_of_int a /. float_of_int b)
            in
            Eval.Report.print
              (Eval.Report.make ~title:"Merkle anti-entropy reconciliation"
                 ~notes:
                   [
                     Printf.sprintf "filter %s: %d entries before, %d after"
                       (Query.to_string query) before
                       (Resync.Consumer.size consumer);
                     Printf.sprintf "%d update steps drifted the master underneath" drift;
                     "shipped %: drifted segments as a share of those compared";
                   ]
                 ~columns:[ "metric"; "value" ]
                 ~rows:
                   [
                     [ "rounds"; string_of_int r.AE.Exchange.rounds ];
                     [ "tree depth"; string_of_int r.AE.Exchange.depth ];
                     [ "segments total"; string_of_int r.AE.Exchange.segments_total ];
                     [ "segments compared"; string_of_int r.AE.Exchange.segments_compared ];
                     [ "segments shipped"; string_of_int r.AE.Exchange.segments_shipped ];
                     [
                       "shipped %";
                       pct r.AE.Exchange.segments_shipped r.AE.Exchange.segments_compared;
                     ];
                     [ "entries shipped"; string_of_int r.AE.Exchange.entries_shipped ];
                     [ "bytes sent"; string_of_int r.AE.Exchange.bytes_sent ];
                     [ "bytes received"; string_of_int r.AE.Exchange.bytes_received ];
                     [ "converged"; string_of_bool r.AE.Exchange.converged ];
                   ]
                 ()))
  in
  let doc =
    "Reconcile a drifted filter replica against its master by Merkle \
     anti-entropy and report the walk: tree depth, segments compared and \
     shipped, and modelled bytes both ways."
  in
  Cmd.v (Cmd.info "antientropy" ~doc)
    Term.(
      const run $ employees_arg $ seed_arg $ filter_arg $ drift_arg
      $ segments_arg)

(* --- experiment ---------------------------------------------------------- *)

let experiment_cmd =
  let which =
    let doc =
      "Which experiment: table1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, \
       fig9, location, consistency, rootbase, evolution, ablation, overhead, \
       latency, or all."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shrink directory and workload sizes.")
  in
  let run which quick =
    let config =
      if quick then
        { Dirgen.Enterprise.default_config with Dirgen.Enterprise.employees = 4_000 }
      else Dirgen.Enterprise.default_config
    in
    let scenario () = Eval.Scenario.setup ~config () in
    let scale = if quick then 0.2 else 1.0 in
    let length n = int_of_float (scale *. float_of_int n) in
    let intervals =
      List.map (fun r -> max 1 (int_of_float (scale *. float_of_int r))) [ 10_000; 6_000 ]
    in
    match String.lowercase_ascii which with
    | "table1" -> Eval.Report.print (Eval.Figures.table1 ~scale (scenario ()))
    | "fig2" -> Eval.Report.print (Eval.Figures.figure2 ())
    | "fig3" -> Eval.Report.print (Eval.Figures.figure3 ())
    | "fig4" -> Eval.Report.print (Eval.Figures.figure4 ~length:(length 16_000) (scenario ()))
    | "fig5" ->
        Eval.Report.print
          (Eval.Figures.figure5 ~length:(length 30_000) ~intervals (scenario ()))
    | "fig6" -> Eval.Report.print (Eval.Figures.figure6 ~config ~length:(length 10_000) ())
    | "fig7" ->
        Eval.Report.print
          (Eval.Figures.figure7 ~config ~length:(length 30_000) ~intervals ())
    | "fig8" -> Eval.Report.print (Eval.Figures.figure8 ~length:(length 16_000) (scenario ()))
    | "fig9" -> Eval.Report.print (Eval.Figures.figure9 ~length:(length 16_000) (scenario ()))
    | "location" -> Eval.Report.print (Eval.Figures.location_replication (scenario ()))
    | "consistency" -> Eval.Report.print (Eval.Figures.consistency_classes ())
    | "rootbase" -> Eval.Report.print (Eval.Figures.root_base_ablation (scenario ()))
    | "evolution" -> Eval.Report.print (Eval.Figures.evolution_ablation ())
    | "ablation" -> Eval.Report.print (Eval.Figures.resync_ablation ())
    | "overhead" -> Eval.Report.print (Eval.Figures.processing_overhead (scenario ()))
    | "latency" ->
        let config =
          if quick then Ldap_topology.Sweep.lat_smoke_config
          else Ldap_topology.Sweep.lat_default_config
        in
        Eval.Report.print (Eval.Figures.latency_staleness ~config ())
    | "all" -> Eval.Figures.all ~quick ()
    | other ->
        Printf.eprintf "unknown experiment %S\n" other;
        exit 1
  in
  let doc = "Run one of the paper's tables or figures." in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(const run $ which $ quick)

(* --- shard -------------------------------------------------------------- *)

let shard_cmd =
  let module Shard = Ldap_shard in
  let module Resync = Ldap_resync in
  let shards_arg =
    let doc = "Number of shards to partition the directory over." in
    Arg.(value & opt int 4 & info [ "shards" ] ~doc)
  in
  let writes_arg =
    let doc = "Routed write burst driven before reporting." in
    Arg.(value & opt int 500 & info [ "writes" ] ~doc)
  in
  let run employees seed shards writes =
    let ent = Dirgen.Enterprise.build (enterprise_config employees seed) in
    let partition = Shard.Partition.of_enterprise ent ~shards in
    let transport = Resync.Transport.create (Network.create ()) in
    let masters =
      Array.init shards (fun i ->
          Shard.Shard_master.create (Dirgen.Enterprise.schema ent) ~id:i)
    in
    let router = Shard.Router.create partition transport masters in
    (match Shard.Router.seed_from_backend router (Dirgen.Enterprise.backend ent) with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "seeding failed: %s\n" e;
        exit 1);
    (* Drive a routed burst, the per-block query mix and one subscribed
       consumer so the report shows live counters, not an idle router. *)
    let prng = Dirgen.Prng.create seed in
    let emps = Dirgen.Enterprise.employees ent in
    for i = 1 to writes do
      let e = emps.(Dirgen.Prng.int prng (Array.length emps)) in
      ignore
        (Shard.Router.apply router
           (Update.modify e.Dirgen.Enterprise.emp_dn
              [
                Update.replace_values "telephonenumber"
                  [ Printf.sprintf "555-%04d" (i mod 10_000) ];
              ]))
    done;
    let root = Dirgen.Enterprise.root_dn ent in
    let countries = (Dirgen.Enterprise.config ent).Dirgen.Enterprise.countries in
    for c = 0 to countries - 1 do
      let q =
        Query.make ~base:root
          (Filter.of_string_exn
             (Printf.sprintf "(serialnumber=%s*)"
                (Dirgen.Enterprise.serial_block ent c)))
      in
      ignore (Shard.Router.search router q)
    done;
    let q =
      Query.make ~base:root
        (Filter.of_string_exn
           (Printf.sprintf "(serialnumber=%s*)"
              (Dirgen.Enterprise.serial_block ent 0)))
    in
    let consumer = Resync.Consumer.create schema q in
    (match
       Resync.Consumer.sync_over consumer transport
         ~host:(Shard.Router.host router)
     with
    | Ok _ -> ()
    | Error e ->
        Printf.eprintf "consumer sync failed: %s\n"
          (Resync.Consumer.sync_error_to_string e);
        exit 1);
    Format.printf "%a@." Shard.Router.pp_report (Shard.Router.report router)
  in
  let doc =
    "Partition a generated directory over filter-described shards, drive a \
     routed workload and print the router's report (per-shard entry counts \
     and CSN heads, coverage-plan cache hit ratio, fan-out counters)."
  in
  Cmd.v
    (Cmd.info "shard" ~doc)
    Term.(const run $ employees_arg $ seed_arg $ shards_arg $ writes_arg)

(* --- scale -------------------------------------------------------------- *)

let scale_cmd =
  let module T = Ldap_topology in
  let module Resync = Ldap_resync in
  let module R = Ldap_replication in
  let nodes_arg =
    Arg.(value & opt int 4
         & info [ "nodes" ] ~doc:"Interior nodes splitting the department filters.")
  in
  let leaves_arg =
    Arg.(value & opt int 48 & info [ "leaves" ] ~doc:"Leaf consumers.")
  in
  let updates_arg =
    Arg.(value & opt int 50
         & info [ "updates" ] ~doc:"Update-stream steps driven through the topology.")
  in
  let history_arg =
    Arg.(value & opt int 512
         & info [ "history-limit" ]
             ~doc:"Root master per-session history high-water mark.")
  in
  let run employees seed nodes leaves updates history_limit =
    let ent = Dirgen.Enterprise.build (enterprise_config employees seed) in
    let backend = Dirgen.Enterprise.backend ent in
    let base = Dirgen.Enterprise.root_dn ent in
    let all_depts = Dirgen.Enterprise.dept_numbers ent in
    let filters = Array.length all_depts in
    let dept_queries =
      Array.map
        (fun d ->
          Query.make ~base
            (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" d)))
        all_depts
    in
    let t = T.Topology.create backend in
    Resync.Master.set_history_limit (T.Topology.master t) (Some history_limit);
    let node_count = min nodes filters in
    for i = 0 to node_count - 1 do
      let covers =
        List.filter_map
          (fun j -> if j mod node_count = i then Some dept_queries.(j) else None)
          (List.init filters Fun.id)
      in
      match
        T.Topology.add_node t
          ~name:(Printf.sprintf "node%d" i)
          ~parent:(T.Topology.root t) ~covers
      with
      | Ok _ -> ()
      | Error e ->
          Printf.eprintf "add_node: %s\n" e;
          exit 1
    done;
    for i = 0 to leaves - 1 do
      let fidx = i mod filters in
      match
        T.Topology.add_leaf t
          ~name:(Printf.sprintf "leaf%d" i)
          ~parent:(Printf.sprintf "node%d" (fidx mod node_count))
          dept_queries.(fidx)
      with
      | Ok _ -> ()
      | Error e ->
          Printf.eprintf "add_leaf: %s\n" e;
          exit 1
    done;
    let stream =
      Dirgen.Update_stream.create ent
        { Dirgen.Update_stream.default_config with seed = seed + 1 }
    in
    (* Interleave commits with poll rounds so the change spine, session
       history and cursors all carry realistic residue. *)
    let rounds = 5 in
    for r = 1 to rounds do
      Dirgen.Update_stream.steps stream
        ((updates * r / rounds) - (updates * (r - 1) / rounds));
      T.Topology.sync_round t
    done;
    let store = Backend.content_store backend in
    let node_entries =
      List.fold_left
        (fun acc n -> acc + R.Filter_replica.size_entries (T.Node.replica n))
        0 (T.Topology.nodes t)
    in
    let leaf_entries =
      List.fold_left
        (fun acc l -> acc + R.Filter_replica.size_entries (T.Leaf.replica l))
        0 (T.Topology.leaves t)
    in
    let tier_rows =
      List.map
        (fun (s : T.Topology.tier_summary) ->
          let entries =
            match s.T.Topology.tier with
            | 0 -> Backend.total_entries backend
            | 1 -> node_entries
            | _ -> leaf_entries
          in
          [
            string_of_int s.T.Topology.tier;
            string_of_int s.T.Topology.members;
            string_of_int entries;
            string_of_int s.T.Topology.sessions;
            string_of_int s.T.Topology.upstream_bytes;
            string_of_int s.T.Topology.served_bytes;
          ])
        (T.Topology.tier_summaries t)
    in
    Eval.Report.print
      (Eval.Report.make ~title:"Per-tier content residency"
         ~notes:
           [
             Printf.sprintf "%d department filters split over %d nodes, %d leaves"
               filters node_count leaves;
             "entries: directory size (tier 0) / summed replica content below";
           ]
         ~columns:[ "tier"; "members"; "entries"; "sessions"; "upstream B"; "served B" ]
         ~rows:tier_rows ());
    let polls, scanned, rescans =
      List.fold_left
        (fun (a, b, c) n ->
          let p, s, r = T.Node.cursor_stats n in
          (a + p, b + s, c + r))
        (0, 0, 0) (T.Topology.nodes t)
    in
    let seen =
      List.fold_left (fun acc n -> acc + T.Node.seen_residency n) 0 (T.Topology.nodes t)
    in
    let depth_max =
      List.fold_left
        (fun acc n -> List.fold_left max acc (T.Node.cursor_depths n))
        0 (T.Topology.nodes t)
    in
    let master = T.Topology.master t in
    let pending_total, pending_max = Resync.Master.pending_stats master in
    let low, high =
      match Content_store.spine_csn_range store with
      | Some (a, b) -> (Csn.to_string a, Csn.to_string b)
      | None -> ("-", "-")
    in
    Eval.Report.print
      (Eval.Report.make ~title:"Content plane"
         ~notes:
           [
             "spine: the root store's bounded CSN-ordered change ring;";
             "cursor depth: spine distance a session still has to walk;";
             "pending: actions buffered for straggling sessions (capped by";
             "the history high-water mark, beyond which polls degrade)";
           ]
         ~columns:[ "metric"; "value" ]
         ~rows:
           [
             [ "store entries"; string_of_int (Content_store.size store) ];
             [ "store interned ids"; string_of_int (Content_store.interned store) ];
             [ "store bytes (reachable)"; string_of_int (Content_store.approx_bytes store) ];
             [ "spine length"; string_of_int (Content_store.spine_length store) ];
             [ "spine csn range"; Printf.sprintf "%s .. %s" low high ];
             [ "incremental polls"; string_of_int polls ];
             [ "spine entries scanned"; string_of_int scanned ];
             [ "rescans"; string_of_int rescans ];
             [ "sent-image residency"; string_of_int seen ];
             [ "cursor depth max"; string_of_int depth_max ];
             [ "master sessions"; string_of_int (Resync.Master.session_count master) ];
             [ "master history entries"; string_of_int (Resync.Master.history_size master) ];
             [ "master pending total"; string_of_int pending_total ];
             [ "master pending max"; string_of_int pending_max ];
             [
               "history limit";
               (match Resync.Master.history_limit master with
               | Some l -> string_of_int l
               | None -> "unbounded");
             ];
           ]
         ())
  in
  let doc =
    "Build the paper-scale topology (node tier over the department filters, \
     round-robin leaf fleet), drive an update stream through it, and report \
     content-plane residency: per-tier entry counts, the root content \
     store's size/spine/bytes, node cursor statistics and the master's \
     session-history occupancy."
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const run $ employees_arg $ seed_arg $ nodes_arg $ leaves_arg
      $ updates_arg $ history_arg)

(* --- adapt --------------------------------------------------------------- *)

let adapt_cmd =
  let module A = Ldap_adaptive in
  let queries_arg =
    Arg.(
      value & opt int 240
      & info [ "queries" ] ~doc:"Queries driven per workload phase.")
  in
  let budget_arg =
    Arg.(
      value & opt int 3_000
      & info [ "budget" ] ~doc:"Selection size budget, estimated entries.")
  in
  let mode_arg =
    let modes =
      [ ("delta", A.Controller.Delta); ("cold", A.Controller.Cold_swap) ]
    in
    Arg.(
      value
      & opt (enum modes) A.Controller.Delta
      & info [ "mode" ]
          ~doc:
            "Transition mode: $(b,delta) (containment-planned rescopes and \
             seeds) or $(b,cold) (blunt remove+install swaps).")
  in
  let run employees seed queries budget mode =
    let config =
      {
        A.Drift.default_config with
        A.Drift.dr_employees = employees;
        dr_seed = seed;
        dr_phase_queries = queries;
        dr_budget = budget;
      }
    in
    let r = A.Drift.run_mode config mode in
    let phase_row tag (p : A.Drift.phase_point) =
      [
        tag;
        p.A.Drift.pp_name;
        string_of_int p.A.Drift.pp_queries;
        Printf.sprintf "%.2f" p.A.Drift.pp_head_hit;
        Printf.sprintf "%.2f" p.A.Drift.pp_tail_hit;
        string_of_int p.A.Drift.pp_update_bytes;
        string_of_int p.A.Drift.pp_transition_bytes;
        Printf.sprintf "%d (%d drift)" p.A.Drift.pp_adaptations
          p.A.Drift.pp_drift_adaptations;
        A.Transition.report_to_string p.A.Drift.pp_report;
      ]
    in
    Eval.Report.print
      (Eval.Report.make
         ~title:
           (Printf.sprintf "Adaptive replication under drift (%s mode)"
              (A.Controller.mode_to_string mode))
         ~notes:
           [
             "five scripted phases: warmup, flash crowd, geography flip,";
             "rename storm, and a second replica joining mid-drift;";
             "head/tail: the phase's first-half vs last-third hit ratio";
           ]
         ~columns:
           [
             "replica"; "phase"; "queries"; "head"; "tail"; "update B";
             "trans B"; "adapt"; "plan outcomes";
           ]
         ~rows:
           (List.map
              (fun (p : A.Drift.phase_point) ->
                phase_row
                  (if String.equal p.A.Drift.pp_name "join-mid-drift" then
                     "joiner"
                   else "primary")
                  p)
              r.A.Drift.rr_phases)
         ());
    let t = r.A.Drift.rr_totals in
    Eval.Report.print
      (Eval.Report.make ~title:"Adaptation summary"
         ~notes:
           [
             "unchanged: drift checks and revolutions whose target set";
             "matched the stored set, so no transition ran; failed installs";
             "are plan steps whose install errored (should be zero)";
           ]
         ~columns:[ "metric"; "value" ]
         ~rows:
           [
             [ "adaptations"; string_of_int r.A.Drift.rr_adaptations ];
             [
               "  drift-triggered"; string_of_int r.A.Drift.rr_drift_adaptations;
             ];
             [ "unchanged checks"; string_of_int r.A.Drift.rr_unchanged_checks ];
             [ "transition bytes"; string_of_int r.A.Drift.rr_transition_bytes ];
             [ "installs kept"; string_of_int t.A.Transition.kept ];
             [ "installs rescoped"; string_of_int t.A.Transition.rescoped ];
             [ "installs seeded"; string_of_int t.A.Transition.seeded ];
             [ "installs cold"; string_of_int t.A.Transition.cold ];
             [ "filters removed"; string_of_int t.A.Transition.removed ];
             [ "failed installs"; string_of_int r.A.Drift.rr_failed_installs ];
           ]
         ());
    if r.A.Drift.rr_failed_installs > 0 then begin
      Printf.eprintf "warning: %d install(s) failed during transitions\n"
        r.A.Drift.rr_failed_installs;
      exit 1
    end
  in
  let doc =
    "Drive the drifting workload (flash crowd, geography flip, rename storm, \
     mid-drift join) against an interest-tracked adaptive replica and report \
     per-phase hit-ratio recovery, transition traffic and plan outcomes — \
     including any failed installs, which otherwise die silently."
  in
  Cmd.v (Cmd.info "adapt" ~doc)
    Term.(
      const run $ employees_arg $ seed_arg $ queries_arg $ budget_arg
      $ mode_arg)

let () =
  let doc = "Filter-based LDAP directory replication (ICDCS 2005 reproduction)." in
  let info = Cmd.info "ldapctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd; search_cmd; export_cmd; compare_cmd; contains_cmd;
            condition_cmd; resync_cmd; workload_cmd; replay_cmd; experiment_cmd;
            topology_cmd; store_cmd; antientropy_cmd; shard_cmd; scale_cmd;
            adapt_cmd;
          ]))
