(* Branch office: the paper's motivating scenario.

   A remote geography holding ~30% of the enterprise's employees wants
   fast lookups without replicating the whole directory.  We compare a
   subtree-based replica (whole country subtrees) against a
   filter-based replica (generalized serial-number prefix filters) at
   the same entry budget, on the same workload, with live updates
   flowing from headquarters.

   Run with: dune exec examples/branch_office.exe *)

module Dirgen = Ldap_dirgen
module Replication = Ldap_replication
module Selection = Ldap_selection
module Eval = Ldap_eval
module Scenario = Eval.Scenario

let () =
  print_endline "building the enterprise directory (8000 employees)...";
  let config =
    { Dirgen.Enterprise.default_config with Dirgen.Enterprise.employees = 8_000 }
  in
  let scenario = Scenario.setup ~config () in
  let persons = Dirgen.Enterprise.person_count scenario.Scenario.enterprise in
  let budget = persons / 10 in
  Printf.printf "entry budget for the branch replica: %d (10%% of %d persons)\n\n"
    budget persons;

  (* A serial-number lookup workload biased toward the geography. *)
  let workload =
    {
      Dirgen.Workload.default_config with
      Dirgen.Workload.length = 8_000;
      serial_pct = 1.0;
      mail_pct = 0.0;
      dept_pct = 0.0;
      location_pct = 0.0;
    }
  in
  let items = Dirgen.Workload.generate scenario.Scenario.enterprise workload in
  let train = Array.sub items 0 4_000 in
  let eval = Array.sub items 4_000 4_000 in

  (* Filter-based branch replica: generalized serial blocks. *)
  let replica = Replication.Filter_replica.create scenario.Scenario.master in
  let rule = Selection.Generalize.Prefix_value { attr = "serialnumber"; keep = 6 } in
  let filters = Scenario.select_static scenario ~rules:[ rule ] ~train ~budget in
  (match Selection.Selector.install_static replica filters with
  | Ok () -> ()
  | Error e -> failwith e);
  Printf.printf "filter replica: %d generalized filters, %d entries\n"
    (List.length filters)
    (Replication.Filter_replica.size_entries replica);

  (* Subtree-based branch replica: whole country subtrees. *)
  let roots =
    Array.init
      (Dirgen.Enterprise.config scenario.Scenario.enterprise).Dirgen.Enterprise.countries
      (Dirgen.Enterprise.country_dn scenario.Scenario.enterprise)
  in
  let subtrees = Scenario.choose_subtrees scenario ~roots ~train ~budget in
  let subtree = Replication.Subtree_replica.create scenario.Scenario.master ~subtrees in
  Printf.printf "subtree replica: %d country subtrees, %d entries\n\n"
    (List.length subtrees)
    (Replication.Subtree_replica.size_entries subtree);

  (* Serve the branch workload with live updates from headquarters. *)
  let drive = { Scenario.queries_between_syncs = 500; Scenario.updates_per_query = 0.2 } in
  let stream =
    Dirgen.Update_stream.create scenario.Scenario.enterprise
      Dirgen.Update_stream.default_config
  in
  Scenario.drive_filter scenario replica ~stream drive eval;
  let f = Replication.Filter_replica.stats replica in
  Scenario.drive_subtree scenario subtree drive eval;
  let s = Replication.Subtree_replica.stats subtree in

  Printf.printf "%-22s %12s %18s\n" "" "hit ratio" "update traffic";
  Printf.printf "%-22s %12.3f %14d entries\n" "filter-based"
    (Replication.Stats.hit_ratio f) f.Replication.Stats.sync_entries;
  Printf.printf "%-22s %12.3f %14d entries\n" "subtree-based"
    (Replication.Stats.hit_ratio s) s.Replication.Stats.sync_entries;
  print_newline ();
  print_endline
    "at the same entry budget the filter replica answers several times more";
  print_endline
    "of the branch's queries; to match its hit ratio the subtree replica";
  print_endline
    "would need to hold whole extra country subtrees and receive their";
  print_endline "update traffic too (Figure 6 in the bench output)."
