(* Proxy cache: semantic caching of LDAP queries with templates.

   This mirrors the OpenLDAP proxy-cache engine the paper's containment
   algorithms shipped in (section 4.1): the proxy admits queries whose
   filters match a configured set of templates, caches their results,
   and answers later queries that are semantically contained in a
   cached one — including across templates, e.g. an equality query
   answered by a cached prefix query.

   Run with: dune exec examples/proxy_cache.exe *)

open Ldap
module C = Ldap_containment
module Dirgen = Ldap_dirgen
module Replication = Ldap_replication

let schema = Schema.default

(* The proxy's admission policy: cacheable query prototypes. *)
let registry =
  let r = C.Template_registry.create schema in
  (match
     C.Template_registry.declare_strings r
       [ "(serialnumber=_)"; "(serialnumber=_*)"; "(mail=_)";
         "(&(departmentnumber=_)(divisionnumber=_))" ]
   with
  | Ok () -> ()
  | Error e -> failwith e);
  r

let admitted q = C.Template_registry.admit registry q

let () =
  let enterprise =
    Dirgen.Enterprise.build
      { Dirgen.Enterprise.default_config with Dirgen.Enterprise.employees = 5_000 }
  in
  let backend = Dirgen.Enterprise.backend enterprise in
  let cache = Replication.Query_cache.create schema ~capacity:200 in
  let root = Dirgen.Enterprise.root_dn enterprise in

  let hits = ref 0 and misses = ref 0 and rejected = ref 0 in
  let ask filter_s =
    let q = Query.make ~base:root (Filter.of_string_exn filter_s) in
    match Replication.Query_cache.answer cache q with
    | Some entries ->
        incr hits;
        Printf.printf "HIT    %-45s -> %d entries (from cache)\n" filter_s
          (List.length entries)
    | None ->
        let entries =
          match Backend.search backend q with
          | Ok { Backend.entries; _ } -> entries
          | Error _ -> []
        in
        if admitted q then begin
          incr misses;
          Replication.Query_cache.add cache q entries;
          Printf.printf "MISS   %-45s -> %d entries (cached)\n" filter_s
            (List.length entries)
        end
        else begin
          incr rejected;
          Printf.printf "PASS   %-45s -> %d entries (not cacheable)\n" filter_s
            (List.length entries)
        end
  in

  (* A block query populates the cache... *)
  let block =
    (Dirgen.Enterprise.employees enterprise).(0).Dirgen.Enterprise.emp_serial
  in
  let prefix = String.sub block 0 (String.length block - 1) in
  ask (Printf.sprintf "(serialNumber=%s*)" prefix);
  (* ...and answers every lookup inside the block without a round trip. *)
  ask (Printf.sprintf "(serialNumber=%s)" block);
  ask (Printf.sprintf "(serialNumber=%s5)" prefix);
  (* A department query and its exact repeat. *)
  ask "(&(departmentNumber=0003)(divisionNumber=00))";
  ask "(&(departmentNumber=0003)(divisionNumber=00))";
  (* Outside the admitted templates: served but never cached. *)
  ask "(sn=doe)";
  ask "(sn=doe)";
  (* A different block misses. *)
  ask "(serialNumber=9999999)";

  Printf.printf "\ncache: %d queries held, %d hits / %d misses / %d pass-through\n"
    (Replication.Query_cache.length cache) !hits !misses !rejected;
  Printf.printf "containment checks performed: %d\n"
    (Replication.Query_cache.comparisons cache);
  print_endline "\nadmission statistics per declared template:";
  List.iter
    (fun (shape, stats) ->
      Printf.printf "  %-45s observed %d, admitted %d\n" shape
        stats.C.Template_registry.observed stats.C.Template_registry.admitted)
    (C.Template_registry.report registry);
  Printf.printf "  %-45s observed %d\n" "(unclassified)"
    (C.Template_registry.unclassified registry)
