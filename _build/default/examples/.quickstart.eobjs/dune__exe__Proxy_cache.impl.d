examples/proxy_cache.ml: Array Backend Filter Ldap Ldap_containment Ldap_dirgen Ldap_replication List Printf Query Schema String
