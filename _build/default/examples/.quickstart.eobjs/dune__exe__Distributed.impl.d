examples/distributed.ml: Array Backend Ldap Ldap_dirgen Ldap_replication Ldap_resync Ldap_selection List Network Printf Referral Server
