examples/resync_wan.ml: Backend Dn Entry Filter Ldap Ldap_resync List Option Printf Query Schema Update
