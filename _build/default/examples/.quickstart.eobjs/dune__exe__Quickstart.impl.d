examples/quickstart.ml: Backend Dn Entry Filter Ldap Ldap_containment Ldap_replication Ldap_resync List Printf Query Result Schema String Update
