examples/resync_wan.mli:
