examples/branch_office.ml: Array Ldap_dirgen Ldap_eval Ldap_replication Ldap_selection List Printf
