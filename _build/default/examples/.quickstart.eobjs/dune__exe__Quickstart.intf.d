examples/quickstart.mli:
