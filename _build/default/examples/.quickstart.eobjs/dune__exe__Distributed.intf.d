examples/distributed.mli:
