examples/branch_office.mli:
