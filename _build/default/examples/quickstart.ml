(* Quickstart: build a tiny directory, search it, check query
   containment, and stand up a filter-based replica that stays in sync
   with the master through the ReSync protocol.

   Run with: dune exec examples/quickstart.exe *)

open Ldap
module C = Ldap_containment
module Resync = Ldap_resync
module Replication = Ldap_replication

let schema = Schema.default
let dn = Dn.of_string_exn
let filter = Filter.of_string_exn

let must = function Ok x -> x | Error e -> failwith e

let () =
  (* 1. A master server with a handful of entries. *)
  let master_backend = Backend.create ~indexed:[ "sn"; "departmentnumber" ] schema in
  must
    (Backend.add_context master_backend
       (Entry.make (dn "o=example") [ ("objectclass", [ "organization" ]); ("o", [ "example" ]) ]));
  let add name dept phone =
    let e =
      Entry.make
        (dn (Printf.sprintf "cn=%s,o=example" name))
        [
          ("objectclass", [ "inetOrgPerson" ]);
          ("cn", [ name ]);
          ("sn", [ List.hd (List.rev (String.split_on_char ' ' name)) ]);
          ("departmentNumber", [ dept ]);
          ("telephoneNumber", [ phone ]);
        ]
    in
    ignore (must (Backend.apply master_backend (Update.add e)))
  in
  add "John Doe" "2406" "555-0101";
  add "Jane Doe" "2406" "555-0102";
  add "Carl Miller" "2407" "555-0103";
  add "Asha Patel" "2501" "555-0104";

  (* 2. Search it. *)
  let q = Query.make ~base:(dn "o=example") (filter "(sn=doe)") in
  let { Backend.entries; _ } = must (Result.map_error (fun _ -> "search failed") (Backend.search master_backend q)) in
  Printf.printf "search (sn=doe): %d entries\n" (List.length entries);

  (* 3. Query containment (section 4 of the paper). *)
  let stored = Query.make ~base:(dn "o=example") (filter "(departmentNumber=24*)") in
  let incoming = Query.make ~base:(dn "o=example") (filter "(&(departmentNumber=2406)(sn=doe))") in
  Printf.printf "containment: %b\n"
    (C.Query_containment.contained schema ~query:incoming ~stored);

  (* 4. A filter-based replica of department block 24*. *)
  let master = Resync.Master.create master_backend in
  let replica = Replication.Filter_replica.create master in
  must (Replication.Filter_replica.install_filter replica stored);
  Printf.printf "replica holds %d entries for %d filter(s)\n"
    (Replication.Filter_replica.size_entries replica)
    (List.length (Replication.Filter_replica.stored_filters replica));

  (* 5. The replica answers contained queries locally... *)
  (match Replication.Filter_replica.answer replica incoming with
  | Replication.Replica.Answered results ->
      Printf.printf "replica answered locally with %d entries\n" (List.length results)
  | Replication.Replica.Referral -> print_endline "unexpected referral");

  (* ...and refers queries it cannot guarantee to answer. *)
  let outside = Query.make ~base:(dn "o=example") (filter "(departmentNumber=2501)") in
  (match Replication.Filter_replica.answer replica outside with
  | Replication.Replica.Answered _ -> print_endline "unexpected local answer"
  | Replication.Replica.Referral -> print_endline "out-of-filter query generated a referral");

  (* 6. Updates at the master flow to the replica on the next poll. *)
  ignore
    (must
       (Backend.apply master_backend
          (Update.modify (dn "cn=John Doe,o=example")
             [ Update.replace_values "telephoneNumber" [ "555-9999" ] ])));
  Replication.Filter_replica.sync replica;
  (match Replication.Filter_replica.answer replica incoming with
  | Replication.Replica.Answered results ->
      List.iter
        (fun e ->
          if Entry.has_value e "cn" "John Doe" then
            Printf.printf "after sync, John's phone at the replica: %s\n"
              (String.concat "," (Entry.get e "telephonenumber")))
        results
  | Replication.Replica.Referral -> print_endline "unexpected referral");
  Printf.printf "sync traffic so far: %d entries\n"
    (Replication.Filter_replica.stats replica).Replication.Stats.sync_entries
