open Ldap
module C = Ldap_containment
module Resync = Ldap_resync

type t = {
  schema : Schema.t;
  master : Resync.Master.t;
  index : Resync.Consumer.t C.Containment_index.t;
  cache : Query_cache.t;
  stats : Stats.t;
}

let create ?(cache_capacity = 0) master =
  let schema = Backend.schema (Resync.Master.backend master) in
  {
    schema;
    master;
    index = C.Containment_index.create schema;
    cache = Query_cache.create schema ~capacity:cache_capacity;
    stats = Stats.create ();
  }

let schema t = t.schema
let stats t = t.stats
let master t = t.master

let install_filter t q =
  if C.Containment_index.mem t.index q then Ok ()
  else
    (* The session fetches the stored query's attributes plus the ones
       its filter mentions, so contained queries can be re-evaluated
       locally; answers still project to the caller's selection. *)
    let consumer = Resync.Consumer.create t.schema (Replica.widen_attrs q) in
    match Resync.Consumer.sync consumer t.master with
    | Error _ as e -> e
    | Ok reply ->
        Stats.add_reply t.stats reply ~fetch:true;
        C.Containment_index.add t.index q consumer;
        Ok ()

let remove_filter t q =
  (* End the session at the master before dropping local state. *)
  (match C.Containment_index.find t.index q with
  | Some consumer -> (
      match Resync.Consumer.cookie consumer with
      | Some cookie -> Resync.Master.abandon t.master ~cookie
      | None -> ())
  | None -> ());
  C.Containment_index.remove t.index q

let stored_filters t = C.Containment_index.fold t.index ~init:[] ~f:(fun acc q _ -> q :: acc)

let filter_count t = C.Containment_index.length t.index + Query_cache.length t.cache

let size_entries t =
  let dns =
    C.Containment_index.fold t.index ~init:Dn.Set.empty ~f:(fun acc _ consumer ->
        Dn.Set.union acc (Resync.Consumer.dns consumer))
  in
  Dn.Set.cardinal dns

let estimate_size t q = Backend.count_matching (Resync.Master.backend t.master) q

let answer t q =
  let evaluable (stored : Query.t) _ =
    Replica.filter_attrs_available
      ~available:(Replica.widen_attrs stored).Query.attrs q
  in
  match C.Containment_index.find_container_where t.index q ~pred:evaluable with
  | Some (_, consumer) ->
      let entries =
        Replica.eval_over_entries t.schema q (Resync.Consumer.entries consumer)
      in
      Stats.record_query t.stats ~hit:true ~returned:(List.length entries);
      Replica.Answered entries
  | None -> (
      match Query_cache.answer t.cache q with
      | Some entries ->
          Stats.record_query t.stats ~hit:true ~returned:(List.length entries);
          Replica.Answered entries
      | None ->
          Stats.record_query t.stats ~hit:false ~returned:0;
          Replica.Referral)

let record_miss_result t q entries = Query_cache.add t.cache q entries

let sync_where t pred =
  C.Containment_index.iter t.index ~f:(fun q consumer ->
      if pred q then
        match Resync.Consumer.sync consumer t.master with
        | Ok reply -> Stats.add_reply t.stats reply ~fetch:false
        | Error msg -> invalid_arg ("Filter_replica.sync: " ^ msg))

let sync t = sync_where t (fun _ -> true)

let comparisons t =
  C.Containment_index.comparisons t.index + Query_cache.comparisons t.cache
