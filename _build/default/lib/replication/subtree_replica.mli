(** Subtree-based partial replica (sections 3 and 3.4.1).

    Holds one or more replication contexts [Ci = (Si, Ri1..RiCi)]: a
    subtree suffix plus the DNs of referral objects delimiting it.  An
    incoming query can be answered iff its base lies inside some
    context and not under any of that context's referrals — the
    paper's [isContained] algorithm.

    Content is kept in sync with the master through ReSync sessions
    whose query is the subtree specification (base [Si], scope SUBTREE,
    filter [(objectclass=*﻿)]) — the reduction noted in section 3. *)

open Ldap

type t

val create : Ldap_resync.Master.t -> subtrees:Dn.t list -> t
(** Replicates the given subtrees, fetching their initial content from
    the master.  A subtree rooted at a DN the master does not hold is
    simply empty.  Referral objects inside the subtrees become context
    referrals automatically. *)

val stats : t -> Stats.t
val contexts : t -> (Dn.t * Dn.t list) list
(** The replication contexts: suffix and referral DNs. *)

val size_entries : t -> int
(** Number of replicated entries (referral objects excluded). *)

val is_contained : t -> Dn.t -> bool
(** The paper's [isContained (b, C)] decision on a base DN. *)

val answer : t -> Query.t -> Replica.answer
(** Answers from local content when [is_contained] holds for the
    query's base; referral otherwise.  Updates the hit/miss stats. *)

val sync : t -> unit
(** One poll round on every subtree session, applying updates locally
    and accounting traffic in {!stats}. *)
