(** Replica performance counters: the section 7 metrics.

    Hit ratio is hits / queries; update traffic is split into resync
    traffic (keeping stored content in sync) and fetch traffic
    (bringing in newly selected filters during revolutions) — the two
    components of section 7.3. *)

type t = {
  mutable queries : int;
  mutable hits : int;
  mutable entries_returned : int;
  mutable sync_entries : int;  (** Resync traffic, in entries. *)
  mutable sync_bytes : int;
  mutable sync_actions : int;  (** Including DN-only deletes/retains. *)
  mutable fetch_entries : int;  (** Revolution fetch traffic, in entries. *)
  mutable fetch_bytes : int;
  mutable comparisons : int;  (** Containment checks performed. *)
}

val create : unit -> t
val reset : t -> unit
val hit_ratio : t -> float
(** 0 when no queries were recorded. *)

val total_update_entries : t -> int
(** sync + fetch, the paper's Figures 6-7 y-axis. *)

val record_query : t -> hit:bool -> returned:int -> unit
val add_reply : t -> Ldap_resync.Protocol.reply -> fetch:bool -> unit
val pp : Format.formatter -> t -> unit
