(** Window cache of recently performed user queries (section 7.4).

    Alongside replicated generalized filters it pays to keep the last
    [capacity] user queries with their full results: temporal locality
    alone gives the paper a ~0.2 hit ratio.  Cached queries are {e not}
    kept in sync with the master; they are simply dropped as the window
    slides, so staleness is bounded by the window.  Containment is
    checked through a {!Ldap_containment.Containment_index}, so a
    cached query can also answer narrower queries. *)

open Ldap

type t

val create : Schema.t -> capacity:int -> t
(** [capacity <= 0] disables the cache. *)

val capacity : t -> int
val length : t -> int

val add : t -> Query.t -> Entry.t list -> unit
(** Inserts a query with its result, evicting the oldest entry when
    the window is full.  Re-adding an existing query refreshes its
    result and its position. *)

val answer : t -> Query.t -> Entry.t list option
(** A result when some cached query contains the argument; the result
    is re-evaluated against the incoming query locally. *)

val comparisons : t -> int
val clear : t -> unit
