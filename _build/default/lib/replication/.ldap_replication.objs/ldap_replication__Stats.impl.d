lib/replication/stats.ml: Format Ldap_resync
