lib/replication/replica_server.ml: Backend Filter_replica Ldap Network Replica Server Subtree_replica
