lib/replication/filter_replica.ml: Backend Dn Ldap Ldap_containment Ldap_resync List Query Query_cache Replica Schema Stats
