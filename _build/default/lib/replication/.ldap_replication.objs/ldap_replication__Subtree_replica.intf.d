lib/replication/subtree_replica.mli: Dn Ldap Ldap_resync Query Replica Stats
