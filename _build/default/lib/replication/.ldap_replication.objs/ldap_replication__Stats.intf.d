lib/replication/stats.mli: Format Ldap_resync
