lib/replication/subtree_replica.ml: Backend Dn Entry Filter Ldap Ldap_resync List Query Replica Schema Scope Stats
