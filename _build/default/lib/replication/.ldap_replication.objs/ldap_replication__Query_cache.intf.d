lib/replication/query_cache.mli: Entry Ldap Query Schema
