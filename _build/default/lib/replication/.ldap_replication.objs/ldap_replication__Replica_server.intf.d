lib/replication/replica_server.mli: Filter_replica Ldap Network Query Server Subtree_replica
