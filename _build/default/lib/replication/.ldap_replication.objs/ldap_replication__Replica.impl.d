lib/replication/replica.ml: Entry Filter Ldap List Query
