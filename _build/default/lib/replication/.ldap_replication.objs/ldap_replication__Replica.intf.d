lib/replication/replica.mli: Entry Ldap Query Schema
