lib/replication/filter_replica.mli: Entry Ldap Ldap_resync Query Replica Schema Stats
