lib/replication/query_cache.ml: Entry Ldap Ldap_containment List Query Replica Schema
