(** Filter generalization (section 6.1).

    User queries return too few entries to be efficient replication
    units, so they are generalized into filters that describe
    frequently accessed regions.  Two guidelines from the paper (after
    Kapitskaia et al. [12]) are implemented:

    - {e value-hierarchy generalization}: an equality on an organized
      attribute becomes a prefix assertion, e.g.
      [(serialNumber=2406)] with prefix length 2 becomes
      [(serialNumber=24...)] — the whole block of serials;
    - {e attribute-component generalization}: an equality component of
      a conjunction is widened to a presence test, e.g.
      [(&(div=X)(dept=123))] becomes the generalized query
      [(&(div=X)(dept=_))] of the paper, i.e. all departments of the
      division. *)

open Ldap

type rule =
  | Prefix_value of { attr : string; keep : int }
      (** Replace [(attr=v)] by the prefix assertion keeping the first
          [keep] characters of [v] (no-op when [v] is shorter). *)
  | Widen_to_presence of { attr : string }
      (** Replace [(attr=v)] by [(attr=*﻿)] inside a conjunction (only
          when other components remain to bound the region). *)

val generalize_filter : rule -> Filter.t -> Filter.t option
(** Applies the rule to the (normalized) filter; [None] when the rule
    does not apply anywhere. *)

val candidates : rule list -> Query.t -> Query.t list
(** All distinct generalizations of the query obtainable by applying
    each rule once, most specific first.  Every result semantically
    contains the input query. *)
