(** The evolutions/revolutions algorithm of Kapitskaia, Ng and
    Srivastava (EDBT 2000, [12]) — the baseline section 6.2 argues is
    unsuitable for replication.

    Two lists are maintained: the {e actual} filters (stored in the
    replica) and {e candidate} filters.  On every query the benefits of
    both lists are updated with exponential ageing; when a candidate's
    benefit exceeds the weakest actual's by a margin, the lists evolve
    immediately (swap) — which in a replication setting triggers fetch
    traffic on the spot.  When the candidates' total benefit exceeds
    the actuals' by a threshold, a revolution re-selects globally.

    Exposed so benchmarks can compare its update traffic against the
    paper's periodic selection. *)

open Ldap

type config = {
  rules : Generalize.rule list;
  size_budget : int;
  ageing : float;  (** Benefit decay per observed query, in [0,1). *)
  swap_margin : float;  (** Candidate must beat weakest actual by this factor. *)
  include_queries : bool;  (** Treat each observed query as a candidate too. *)
}

type t

val create : config -> Ldap_replication.Filter_replica.t -> t
val observe : t -> Query.t -> unit
val swaps : t -> int
(** Number of immediate evolutions performed (each caused fetch
    traffic). *)
