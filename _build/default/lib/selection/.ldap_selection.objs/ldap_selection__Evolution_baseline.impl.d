lib/selection/evolution_baseline.ml: Dn Filter Generalize Hashtbl Ldap Ldap_replication List Printf Query Scope
