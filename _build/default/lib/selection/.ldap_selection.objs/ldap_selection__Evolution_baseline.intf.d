lib/selection/evolution_baseline.mli: Generalize Ldap Ldap_replication Query
