lib/selection/selector.mli: Generalize Ldap Ldap_replication Query
