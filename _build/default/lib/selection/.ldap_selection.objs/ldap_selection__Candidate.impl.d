lib/selection/candidate.ml: Dn Filter Float Hashtbl Ldap List Printf Query Scope
