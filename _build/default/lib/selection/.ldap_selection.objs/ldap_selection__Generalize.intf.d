lib/selection/generalize.mli: Filter Ldap Query
