lib/selection/generalize.ml: Filter Ldap List Query String
