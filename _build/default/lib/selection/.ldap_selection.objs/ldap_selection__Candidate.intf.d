lib/selection/candidate.mli: Ldap Query
