lib/selection/selector.ml: Candidate Generalize Ldap Ldap_replication List Query
