open Ldap
module R = Ldap_replication

type config = {
  rules : Generalize.rule list;
  size_budget : int;
  ageing : float;
  swap_margin : float;
  include_queries : bool;
}

type info = { query : Query.t; mutable benefit : float; mutable size : int option }

type t = {
  config : config;
  replica : R.Filter_replica.t;
  table : (string, info) Hashtbl.t;
  mutable swaps : int;
}

let key (q : Query.t) =
  Printf.sprintf "%s|%d|%s" (Dn.canonical q.Query.base)
    (Scope.to_int q.Query.scope)
    (Filter.to_string (Filter.normalize q.Query.filter))

let create config replica = { config; replica; table = Hashtbl.create 64; swaps = 0 }

let size_of t info =
  match info.size with
  | Some n -> n
  | None ->
      let n = max 1 (R.Filter_replica.estimate_size t.replica info.query) in
      info.size <- Some n;
      n

let age t = Hashtbl.iter (fun _ i -> i.benefit <- i.benefit *. t.config.ageing) t.table

let bump t q =
  let k = key q in
  match Hashtbl.find_opt t.table k with
  | Some i -> i.benefit <- i.benefit +. 1.0
  | None -> Hashtbl.replace t.table k { query = q; benefit = 1.0; size = None }

let stored_infos t =
  let stored = R.Filter_replica.stored_filters t.replica in
  List.filter_map (fun q -> Hashtbl.find_opt t.table (key q)) stored

let weakest_actual t =
  match stored_infos t with
  | [] -> None
  | infos ->
      Some
        (List.fold_left
           (fun worst i ->
             let ratio i = i.benefit /. float_of_int (size_of t i) in
             if ratio i < ratio worst then i else worst)
           (List.hd infos) (List.tl infos))

let used_budget t =
  List.fold_left (fun acc i -> acc + size_of t i) 0 (stored_infos t)

(* Immediate evolution: swap the best non-stored candidate in if it
   beats the weakest stored filter by the margin. *)
let try_evolve t =
  let stored = R.Filter_replica.stored_filters t.replica in
  let is_stored q = List.exists (Query.equal q) stored in
  let best_candidate =
    Hashtbl.fold
      (fun _ i best ->
        if is_stored i.query then best
        else
          let ratio = i.benefit /. float_of_int (size_of t i) in
          match best with
          | Some (_, r) when r >= ratio -> best
          | _ -> Some (i, ratio))
      t.table None
  in
  match best_candidate with
  | None -> ()
  | Some (candidate, cand_ratio) -> (
      let fits_fresh =
        used_budget t + size_of t candidate <= t.config.size_budget
      in
      if fits_fresh && cand_ratio > 0.0 then begin
        match R.Filter_replica.install_filter t.replica candidate.query with
        | Ok () -> t.swaps <- t.swaps + 1
        | Error _ -> ()
      end
      else
        match weakest_actual t with
        | Some weakest
          when cand_ratio
               > (weakest.benefit /. float_of_int (size_of t weakest))
                 *. (1.0 +. t.config.swap_margin) ->
            R.Filter_replica.remove_filter t.replica weakest.query;
            if used_budget t + size_of t candidate <= t.config.size_budget then begin
              match R.Filter_replica.install_filter t.replica candidate.query with
              | Ok () -> t.swaps <- t.swaps + 1
              | Error _ -> ()
            end
        | Some _ | None -> ())

let observe t q =
  age t;
  let gens = Generalize.candidates t.config.rules q in
  let gens = if t.config.include_queries then q :: gens else gens in
  List.iter (bump t) gens;
  try_evolve t

let swaps t = t.swaps
