open Ldap

type rule =
  | Prefix_value of { attr : string; keep : int }
  | Widen_to_presence of { attr : string }

let apply_to_pred rule (p : Filter.pred) ~in_conjunction =
  match (rule, p) with
  | Prefix_value { attr; keep }, Filter.Equality (a, v)
    when String.lowercase_ascii a = String.lowercase_ascii attr
         && String.length v > keep && keep > 0 ->
      Some
        (Filter.Substrings
           (a, { Filter.initial = Some (String.sub v 0 keep); any = []; final = None }))
  | Widen_to_presence { attr }, Filter.Equality (a, _)
    when String.lowercase_ascii a = String.lowercase_ascii attr && in_conjunction ->
      Some (Filter.Present a)
  | (Prefix_value _ | Widen_to_presence _), _ -> None

(* Apply the rule to the first applicable predicate. *)
let generalize_filter rule filter =
  let applied = ref false in
  let rec go ~in_conjunction f =
    match f with
    | Filter.Pred p when not !applied -> (
        match apply_to_pred rule p ~in_conjunction with
        | Some p' ->
            applied := true;
            Filter.Pred p'
        | None -> f)
    | Filter.Pred _ -> f
    | Filter.Not g -> Filter.Not (go ~in_conjunction:false g)
    | Filter.And gs -> Filter.And (List.map (go ~in_conjunction:true) gs)
    | Filter.Or gs -> Filter.Or (List.map (go ~in_conjunction:false) gs)
  in
  let result = go ~in_conjunction:false (Filter.normalize filter) in
  if !applied then Some (Filter.normalize result) else None

let candidates rules (q : Query.t) =
  let gens =
    List.filter_map
      (fun rule ->
        match generalize_filter rule q.Query.filter with
        | Some f when not (Filter.equal f q.Query.filter) ->
            Some { q with Query.filter = f }
        | Some _ | None -> None)
      rules
  in
  (* Deduplicate structurally. *)
  let rec dedup seen = function
    | [] -> List.rev seen
    | g :: rest ->
        if List.exists (Query.equal g) seen then dedup seen rest
        else dedup (g :: seen) rest
  in
  dedup [] gens
