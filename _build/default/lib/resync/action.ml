open Ldap

type t = Add of Entry.t | Modify of Entry.t | Delete of Dn.t | Retain of Dn.t

let target = function
  | Add e | Modify e -> Entry.dn e
  | Delete dn | Retain dn -> dn

let entries_cost = function Add _ | Modify _ -> 1 | Delete _ | Retain _ -> 0

let bytes_cost = function
  | Add e | Modify e -> Ber.entry_size e
  | Delete dn | Retain dn -> Ber.message_overhead + Ber.dn_size dn

let kind_name = function
  | Add _ -> "add"
  | Modify _ -> "modify"
  | Delete _ -> "delete"
  | Retain _ -> "retain"

let pp ppf t =
  Format.fprintf ppf "%s %s" (kind_name t) (Dn.to_string (target t))
