(** Consumer (replica) side of a ReSync session: the materialized
    content of one replicated query.

    The consumer applies the actions of each reply to its local entry
    set and tracks the resume cookie.  After any successful exchange
    the entry set equals the master's content at the reply's CSN —
    the convergence guarantee the protocol provides (verified by the
    property tests). *)

open Ldap

type t

val create : Schema.t -> Query.t -> t
val query : t -> Query.t
val cookie : t -> string option

val apply_reply : t -> Protocol.reply -> unit
(** Applies all actions.  For a [Degraded] reply, entries that were
    neither retained nor upserted are pruned (eq. (3)). *)

val sync : t -> Master.t -> (Protocol.reply, string) result
(** One poll exchange against the master: sends the stored cookie (or
    none on first contact), applies the reply, stores the new cookie.
    Returns the reply so callers can account traffic. *)

val entries : t -> Entry.t list
val dns : t -> Dn.Set.t
val find : t -> Dn.t -> Entry.t option
val size : t -> int
