open Ldap

type t = {
  query : Query.t;
  mutable entries : Entry.t Dn.Map.t;
  mutable cookie : string option;
}

let create schema query =
  ignore schema;
  { query; entries = Dn.Map.empty; cookie = None }
let query t = t.query
let cookie t = t.cookie

let apply_action t = function
  | Action.Add e | Action.Modify e ->
      t.entries <- Dn.Map.add (Entry.dn e) e t.entries
  | Action.Delete dn -> t.entries <- Dn.Map.remove dn t.entries
  | Action.Retain _ -> ()

let apply_reply t (reply : Protocol.reply) =
  (match reply.Protocol.kind with
  | Protocol.Initial_content -> t.entries <- Dn.Map.empty
  | Protocol.Incremental -> ()
  | Protocol.Degraded ->
      (* Only retained or re-sent entries survive. *)
      let keep =
        List.fold_left
          (fun acc a ->
            match a with
            | Action.Add e | Action.Modify e -> Dn.Set.add (Entry.dn e) acc
            | Action.Retain dn -> Dn.Set.add dn acc
            | Action.Delete dn -> Dn.Set.remove dn acc)
          Dn.Set.empty reply.Protocol.actions
      in
      t.entries <- Dn.Map.filter (fun dn _ -> Dn.Set.mem dn keep) t.entries);
  List.iter (apply_action t) reply.Protocol.actions;
  match reply.Protocol.cookie with
  | Some _ as c -> t.cookie <- c
  | None -> ()

let sync t master =
  let request = { Protocol.mode = Protocol.Poll; cookie = t.cookie } in
  match Master.handle master request t.query with
  | Error _ as e -> e
  | Ok reply ->
      apply_reply t reply;
      Ok reply

let entries t = List.map snd (Dn.Map.bindings t.entries)
let dns t = Dn.Map.fold (fun dn _ acc -> Dn.Set.add dn acc) t.entries Dn.Set.empty
let find t dn = Dn.Map.find_opt dn t.entries
let size t = Dn.Map.cardinal t.entries
