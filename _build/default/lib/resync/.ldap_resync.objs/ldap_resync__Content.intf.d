lib/resync/content.mli: Action Backend Dn Entry Ldap Query Schema
