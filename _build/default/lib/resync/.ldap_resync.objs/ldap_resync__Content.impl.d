lib/resync/content.ml: Action Backend Dn Entry Filter Ldap List Query
