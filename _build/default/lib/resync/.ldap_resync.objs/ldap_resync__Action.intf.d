lib/resync/action.mli: Dn Entry Format Ldap
