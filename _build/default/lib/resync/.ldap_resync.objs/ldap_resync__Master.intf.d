lib/resync/master.mli: Action Backend Csn Ldap Protocol Query
