lib/resync/master.ml: Action Backend Content Csn Dn Entry Filter Hashtbl Ldap List Printf Protocol Query String Update
