lib/resync/action.ml: Ber Dn Entry Format Ldap
