lib/resync/protocol.mli: Action Format
