lib/resync/consumer.mli: Dn Entry Ldap Master Protocol Query Schema
