lib/resync/consumer.ml: Action Dn Entry Ldap List Master Protocol Query
