lib/resync/protocol.ml: Action Format List
