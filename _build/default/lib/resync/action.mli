(** ReSync update actions (section 5.2).

    Each notification/update PDU carries an entry together with a
    control telling the replica what to do.  [Add] and [Modify] carry
    the complete entry; [Delete] only the DN; [Retain] — used when the
    server has incomplete history (eq. (3)) — tells the replica the
    entry is still in the content and unchanged. *)

open Ldap

type t =
  | Add of Entry.t  (** Entry moved into the content (by any of the
                        four update operations at the master). *)
  | Modify of Entry.t  (** Entry changed but stayed in the content. *)
  | Delete of Dn.t  (** Entry moved out of the content. *)
  | Retain of Dn.t  (** Unchanged and still in content (degraded mode
                        only). *)

val target : t -> Dn.t

val entries_cost : t -> int
(** Traffic in the paper's unit (entries transferred): 1 for [Add] and
    [Modify], 0 for the DN-only [Delete]/[Retain]. *)

val bytes_cost : t -> int
(** Modelled PDU bytes ({!Ldap.Ber}). *)

val kind_name : t -> string
val pp : Format.formatter -> t -> unit
