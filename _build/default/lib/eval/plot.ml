let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let render ?(height = 12) ?y_max ~x_labels ~series () =
  let columns = List.length x_labels in
  let y_max =
    match y_max with
    | Some v -> max v 1e-9
    | None ->
        List.fold_left
          (fun acc (_, values) -> List.fold_left max acc values)
          1e-9 series
  in
  (* Each x position gets a fixed-width column so labels line up. *)
  let col_width =
    List.fold_left (fun w l -> max w (String.length l)) 1 x_labels + 2
  in
  let grid = Array.make_matrix height (columns * col_width) ' ' in
  List.iteri
    (fun si (_, values) ->
      let glyph = glyphs.(si mod Array.length glyphs) in
      List.iteri
        (fun xi v ->
          if xi < columns then begin
            let level =
              int_of_float (Float.round (v /. y_max *. float_of_int (height - 1)))
            in
            let row = height - 1 - max 0 (min (height - 1) level) in
            let col = (xi * col_width) + (col_width / 2) in
            (* Later series overwrite earlier ones at collisions. *)
            grid.(row).(col) <- glyph
          end)
        values)
    series;
  let buf = Buffer.create ((height + 3) * ((columns * col_width) + 12)) in
  Array.iteri
    (fun row line ->
      let y_value =
        y_max *. float_of_int (height - 1 - row) /. float_of_int (height - 1)
      in
      Buffer.add_string buf (Printf.sprintf "%5.2f |" y_value);
      Buffer.add_string buf (String.init (Array.length line) (Array.get line));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf "      +";
  Buffer.add_string buf (String.make (columns * col_width) '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf "       ";
  List.iter
    (fun label ->
      let pad = col_width - String.length label in
      let left = pad / 2 in
      Buffer.add_string buf (String.make left ' ');
      Buffer.add_string buf label;
      Buffer.add_string buf (String.make (pad - left) ' '))
    x_labels;
  Buffer.add_char buf '\n';
  List.iteri
    (fun si (name, _) ->
      Buffer.add_string buf
        (Printf.sprintf "       %c %s\n" glyphs.(si mod Array.length glyphs) name))
    series;
  Buffer.contents buf
