(** Minimal ASCII line charts for the figure reproductions.

    Renders one or more series over a shared x-axis as a character
    grid, so the bench output shows the curve shapes (who is above
    whom, where curves cross or saturate) at a glance, next to the
    exact numbers in the tables. *)

val render :
  ?height:int ->
  ?y_max:float ->
  x_labels:string list ->
  series:(string * float list) list ->
  unit ->
  string
(** [render ~x_labels ~series ()] draws each series with its own glyph
    over [height] rows (default 12).  [y_max] defaults to the largest
    value (at least a small epsilon).  Series shorter than the x-axis
    are drawn as far as they go. *)
