(** Aligned ASCII tables for experiment output.

    Every figure/table reproduction prints one of these so
    [bench/main.exe] output can be compared side by side with the
    paper. *)

type table = {
  title : string;
  notes : string list;  (** Shape expectations, printed under the title. *)
  columns : string list;
  rows : string list list;
  appendix : string;  (** Free-form block printed after the rows, e.g.
                          an ASCII chart of the same series. *)
}

val make :
  title:string -> ?notes:string list -> ?appendix:string -> columns:string list ->
  rows:string list list -> unit -> table

val print : table -> unit
val to_string : table -> string

val fmt_float : float -> string
(** Three decimals. *)

val fmt_pct : float -> string
(** A ratio as a percentage with one decimal. *)
