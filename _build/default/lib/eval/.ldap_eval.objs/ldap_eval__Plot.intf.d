lib/eval/plot.mli:
