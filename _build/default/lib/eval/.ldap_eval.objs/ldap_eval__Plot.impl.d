lib/eval/plot.ml: Array Buffer Float List Printf String
