lib/eval/figures.mli: Ldap_dirgen Report Scenario
