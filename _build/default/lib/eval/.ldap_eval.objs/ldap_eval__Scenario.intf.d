lib/eval/scenario.mli: Dn Ldap Ldap_dirgen Ldap_replication Ldap_resync Ldap_selection Query
