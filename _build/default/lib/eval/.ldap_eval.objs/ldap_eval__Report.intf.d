lib/eval/report.mli:
