lib/eval/scenario.ml: Array Backend Dn Filter Float Hashtbl Ldap Ldap_dirgen Ldap_replication Ldap_resync Ldap_selection List Option Query
