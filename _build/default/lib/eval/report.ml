type table = {
  title : string;
  notes : string list;
  columns : string list;
  rows : string list list;
  appendix : string;
}

let make ~title ?(notes = []) ?(appendix = "") ~columns ~rows () =
  { title; notes; columns; rows; appendix }

let fmt_float v = Printf.sprintf "%.3f" v
let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let to_string t =
  let buf = Buffer.create 1024 in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun w row ->
            match List.nth_opt row i with
            | Some cell -> max w (String.length cell)
            | None -> w)
          (String.length col) t.rows)
      t.columns
  in
  let line ch =
    Buffer.add_string buf
      (String.concat "-+-" (List.map (fun w -> String.make w ch) widths));
    Buffer.add_char buf '\n'
  in
  let row cells =
    let padded =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i in
          cell ^ String.make (max 0 (w - String.length cell)) ' ')
        cells
    in
    Buffer.add_string buf (String.concat " | " padded);
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  List.iter (fun n -> Buffer.add_string buf ("   " ^ n ^ "\n")) t.notes;
  row t.columns;
  line '-';
  List.iter row t.rows;
  if t.appendix <> "" then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf t.appendix
  end;
  Buffer.contents buf

let print t = print_string (to_string t ^ "\n")
