(** Shared experiment machinery: master setup, static filter selection,
    subtree selection, and the query/update drive loop used by every
    figure reproduction. *)

open Ldap
module Dirgen = Ldap_dirgen
module Replication = Ldap_replication
module Selection = Ldap_selection
module Resync = Ldap_resync

type t = {
  enterprise : Dirgen.Enterprise.t;
  master : Resync.Master.t;
}

val setup : ?config:Dirgen.Enterprise.config -> unit -> t

val select_static :
  ?max_filters:int ->
  ?min_hits:int ->
  t ->
  rules:Selection.Generalize.rule list ->
  train:Dirgen.Workload.item array ->
  budget:int ->
  Query.t list
(** Generalizes every training query, ranks candidates by benefit/size
    and greedily fills the entry budget — the static configuration of
    section 6 used when dynamic selection is off.  [max_filters] caps
    the number of selected filters (for the figure 8/9 sweeps over
    filter counts); [min_hits] prunes cold candidates (default 2). *)

val choose_subtrees :
  t ->
  roots:Dn.t array ->
  train:Dirgen.Workload.item array ->
  budget:int ->
  Dn.t list
(** Greedy subtree selection: candidate roots ranked by
    (training accesses whose scoped base falls under the root) /
    (entries in the subtree), filled under the entry budget. *)

val subtree_size : t -> Dn.t -> int

type drive = {
  queries_between_syncs : int;  (** 0 disables periodic syncs. *)
  updates_per_query : float;  (** Master update-stream interleave rate. *)
}

val no_updates : drive

val drive_filter :
  t ->
  Replication.Filter_replica.t ->
  ?selector:Selection.Selector.t ->
  ?stream:Dirgen.Update_stream.t ->
  ?cache_misses:bool ->
  drive ->
  Dirgen.Workload.item array ->
  unit
(** Runs the workload against a filter replica: root-based queries,
    misses answered by the master (and optionally cached), interleaved
    updates and periodic syncs, selector observation per query. *)

val drive_subtree :
  t ->
  Replication.Subtree_replica.t ->
  ?stream:Dirgen.Update_stream.t ->
  drive ->
  Dirgen.Workload.item array ->
  unit
(** Runs the workload against a subtree replica using the {e scoped}
    query form (the generous assumption for the baseline). *)
