open Ldap
module Dirgen = Ldap_dirgen
module Replication = Ldap_replication
module Selection = Ldap_selection
module Resync = Ldap_resync

type t = {
  enterprise : Dirgen.Enterprise.t;
  master : Resync.Master.t;
}

let setup ?(config = Dirgen.Enterprise.default_config) () =
  let enterprise = Dirgen.Enterprise.build config in
  let master = Resync.Master.create (Dirgen.Enterprise.backend enterprise) in
  { enterprise; master }

let select_static ?(max_filters = max_int) ?(min_hits = 2) t ~rules ~train ~budget =
  let backend = Dirgen.Enterprise.backend t.enterprise in
  let candidates = Selection.Candidate.create () in
  Array.iter
    (fun (item : Dirgen.Workload.item) ->
      List.iter
        (Selection.Candidate.observe candidates)
        (Selection.Generalize.candidates rules item.Dirgen.Workload.query))
    train;
  let estimate q = Backend.count_matching backend q in
  let ranked = Selection.Candidate.ranked candidates ~estimate in
  let chosen, _ =
    List.fold_left
      (fun (chosen, used) (q, (s : Selection.Candidate.stats), _) ->
        if s.Selection.Candidate.hits < min_hits || List.length chosen >= max_filters
        then (chosen, used)
        else
          let size = max 1 (Selection.Candidate.size_of candidates q ~estimate) in
          if used + size <= budget then (q :: chosen, used + size) else (chosen, used))
      ([], 0) ranked
  in
  List.rev chosen

let subtree_size t root =
  let backend = Dirgen.Enterprise.backend t.enterprise in
  Backend.count_matching backend (Query.make ~base:root Filter.tt)

let choose_subtrees t ~roots ~train ~budget =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun (item : Dirgen.Workload.item) ->
      let base = item.Dirgen.Workload.scoped.Query.base in
      Array.iter
        (fun root ->
          if Dn.ancestor_of root base then
            let key = Dn.canonical root in
            Hashtbl.replace counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
        roots)
    train;
  let ranked =
    Array.to_list roots
    |> List.map (fun root ->
           let accesses =
             Option.value ~default:0 (Hashtbl.find_opt counts (Dn.canonical root))
           in
           let size = max 1 (subtree_size t root) in
           (root, size, float_of_int accesses /. float_of_int size))
    |> List.filter (fun (_, _, ratio) -> ratio > 0.0)
    |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
  in
  let chosen, _ =
    List.fold_left
      (fun (chosen, used) (root, size, _) ->
        if used + size <= budget then (root :: chosen, used + size) else (chosen, used))
      ([], 0) ranked
  in
  List.rev chosen

type drive = { queries_between_syncs : int; updates_per_query : float }

let no_updates = { queries_between_syncs = 0; updates_per_query = 0.0 }

let master_answer t (q : Query.t) =
  match Backend.search (Dirgen.Enterprise.backend t.enterprise) q with
  | Ok { Backend.entries; _ } -> entries
  | Error _ -> []

let interleave drive stream ~debt =
  match stream with
  | None -> debt
  | Some stream ->
      let debt = debt +. drive.updates_per_query in
      let n = int_of_float debt in
      if n > 0 then Dirgen.Update_stream.steps stream n;
      debt -. float_of_int n

let drive_filter t replica ?selector ?stream ?(cache_misses = false) drive items =
  let debt = ref 0.0 in
  Array.iteri
    (fun i (item : Dirgen.Workload.item) ->
      debt := interleave drive stream ~debt:!debt;
      if
        drive.queries_between_syncs > 0
        && i > 0
        && i mod drive.queries_between_syncs = 0
      then Replication.Filter_replica.sync replica;
      (match selector with
      | Some sel -> Selection.Selector.observe sel item.Dirgen.Workload.query
      | None -> ());
      match Replication.Filter_replica.answer replica item.Dirgen.Workload.query with
      | Replication.Replica.Answered _ -> ()
      | Replication.Replica.Referral ->
          if cache_misses then
            let result = master_answer t item.Dirgen.Workload.query in
            Replication.Filter_replica.record_miss_result replica
              item.Dirgen.Workload.query result)
    items

let drive_subtree t replica ?stream drive items =
  ignore t;
  let debt = ref 0.0 in
  Array.iteri
    (fun i (item : Dirgen.Workload.item) ->
      debt := interleave drive stream ~debt:!debt;
      if
        drive.queries_between_syncs > 0
        && i > 0
        && i mod drive.queries_between_syncs = 0
      then Replication.Subtree_replica.sync replica;
      ignore (Replication.Subtree_replica.answer replica item.Dirgen.Workload.scoped))
    items
