(** Update operations and the master's update log.

    The four LDAP update operations of section 2.2 — add, delete,
    modify, modify DN — plus the committed-update record the ReSync
    protocol consumes.  A record carries full pre- and post-images of
    the affected entry so a synchronization session can decide, for any
    filter, whether the entry moved into, out of, or within the
    filter's content (the E01/E10/E11 classification of section 5.1). *)

type mod_kind = Add_values | Delete_values | Replace_values

type mod_item = { mod_kind : mod_kind; mod_attr : string; mod_values : string list }

type op =
  | Add of Entry.t
  | Delete of Dn.t
  | Modify of Dn.t * mod_item list
  | Modify_dn of {
      dn : Dn.t;
      new_rdn : Dn.rdn;
      delete_old_rdn : bool;
      new_superior : Dn.t option;  (** [None]: stay under current parent. *)
    }

type record = {
  csn : Csn.t;
  op : op;
  before : Entry.t option;  (** Pre-image; [None] for Add. *)
  after : Entry.t option;  (** Post-image; [None] for Delete. *)
}

val op_target : op -> Dn.t
(** The DN named by the operation (the old DN for Modify_dn). *)

val op_kind_name : op -> string

val add : Entry.t -> op
val delete : Dn.t -> op
val modify : Dn.t -> mod_item list -> op
val modify_dn : ?new_superior:Dn.t -> ?delete_old_rdn:bool -> Dn.t -> Dn.rdn -> op
(** [delete_old_rdn] defaults to [true]. *)

val add_values : string -> string list -> mod_item
val delete_values : string -> string list -> mod_item
val replace_values : string -> string list -> mod_item

val pp_op : Format.formatter -> op -> unit
