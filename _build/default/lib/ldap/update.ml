type mod_kind = Add_values | Delete_values | Replace_values

type mod_item = { mod_kind : mod_kind; mod_attr : string; mod_values : string list }

type op =
  | Add of Entry.t
  | Delete of Dn.t
  | Modify of Dn.t * mod_item list
  | Modify_dn of {
      dn : Dn.t;
      new_rdn : Dn.rdn;
      delete_old_rdn : bool;
      new_superior : Dn.t option;
    }

type record = {
  csn : Csn.t;
  op : op;
  before : Entry.t option;
  after : Entry.t option;
}

let op_target = function
  | Add e -> Entry.dn e
  | Delete dn -> dn
  | Modify (dn, _) -> dn
  | Modify_dn { dn; _ } -> dn

let op_kind_name = function
  | Add _ -> "add"
  | Delete _ -> "delete"
  | Modify _ -> "modify"
  | Modify_dn _ -> "modifyDN"

let add e = Add e
let delete dn = Delete dn
let modify dn items = Modify (dn, items)

let modify_dn ?new_superior ?(delete_old_rdn = true) dn new_rdn =
  Modify_dn { dn; new_rdn; delete_old_rdn; new_superior }

let add_values attr values = { mod_kind = Add_values; mod_attr = attr; mod_values = values }
let delete_values attr values =
  { mod_kind = Delete_values; mod_attr = attr; mod_values = values }
let replace_values attr values =
  { mod_kind = Replace_values; mod_attr = attr; mod_values = values }

let pp_op ppf op =
  Format.fprintf ppf "%s %s" (op_kind_name op) (Dn.to_string (op_target op))
