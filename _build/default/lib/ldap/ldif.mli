(** LDIF (LDAP Data Interchange Format, RFC 2849 subset).

    Serialization of entries and change records for the CLI's
    export/import commands and for fixtures in tests.  The supported
    subset covers what this codebase produces: [dn:]/attribute lines,
    base64 values where required, line folding, comments, and the four
    change types (add, delete, modify, modrdn). *)

type change =
  | Change_add of Entry.t
  | Change_delete of Dn.t
  | Change_modify of Dn.t * Update.mod_item list
  | Change_modrdn of {
      dn : Dn.t;
      new_rdn : Dn.rdn;
      delete_old_rdn : bool;
      new_superior : Dn.t option;
    }

val entry_to_string : Entry.t -> string
(** One LDIF record, trailing newline included. *)

val entries_to_string : Entry.t list -> string
(** Records separated by blank lines, with a leading [version: 1]. *)

val entry_of_string : string -> (Entry.t, string) result
(** Parses a single record (no [changetype]). *)

val entries_of_string : string -> (Entry.t list, string) result
(** Parses a whole LDIF file of entry records; tolerates comments and
    a [version:] line. *)

val change_to_string : change -> string
val change_of_update : Update.op -> change
val update_of_change : change -> Update.op

val needs_base64 : string -> bool
(** Whether a value must be base64-encoded per RFC 2849 (leading
    space/colon/angle, non-printable or non-ASCII bytes, trailing
    space). *)
