type t = { name : string; backend : Backend.t; default_referral : string option }

let create ?default_referral ~name backend = { name; backend; default_referral }
let name t = t.name
let backend t = t.backend
let default_referral t = t.default_referral

type response =
  | Entries of Backend.search_result
  | Referral of string list
  | Failure of string

let handle_search t (q : Query.t) =
  match Backend.search t.backend q with
  | Ok r -> Entries r
  | Error (Backend.Base_referral { urls; _ }) -> Referral urls
  | Error (Backend.No_such_object dn) -> (
      match Backend.context_for t.backend dn with
      | Some _ ->
          (* The namespace is ours but the entry does not exist. *)
          Failure (Printf.sprintf "noSuchObject: %s" (Dn.to_string dn))
      | None -> (
          match t.default_referral with
          | Some url -> Referral [ url ]
          | None -> Failure (Printf.sprintf "noSuchObject: %s" (Dn.to_string dn))))

let handle_compare t dn ~attr ~value = Backend.compare_values t.backend dn ~attr ~value
let handle_update t op = Backend.apply t.backend op
