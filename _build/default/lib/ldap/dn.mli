(** Distinguished names (RFC 2253).

    A DN is a sequence of relative DNs (RDNs), leaf-most first; the
    empty sequence is the DIT root (the "null" DN of the paper's
    section 2.1).  Each RDN is a non-empty set of attribute/value
    assertions (multi-valued RDNs such as [cn=X+sn=Y] are supported).

    Comparison normalizes attribute names and values case-insensitively
    with space squashing — the [caseIgnore] rule that directory naming
    attributes use in practice — so [ou=Research,O=XYZ] equals
    [OU=research, o=xyz].

    The ancestor relation {!ancestor_of} is the paper's
    [isSuffix (a, b)]: [a] is an ancestor of [b] iff [a]'s RDN sequence
    is a proper suffix of [b]'s. *)

type ava = { attr : string; value : string }
(** One attribute/value assertion.  [attr] is stored lowercased. *)

type rdn = ava list
(** Sorted by attribute then normalized value; never empty. *)

type t

val root : t
(** The null DN naming the DIT root. *)

val is_root : t -> bool

val of_rdns : rdn list -> t
(** Leaf-most RDN first.  Raises [Invalid_argument] on an empty RDN. *)

val rdns : t -> rdn list

val of_string : string -> (t, string) result
(** Parses an RFC 2253 string ("cn=John Doe,ou=research,o=xyz").
    Handles [\\] escapes and [\XX] hex pairs.  The empty string parses
    to {!root}. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on a malformed DN. *)

val to_string : t -> string
(** Prints with RFC 2253 escaping; inverse of {!of_string} up to value
    normalization. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val canonical : t -> string
(** Normalized string form: stable key for hash tables and maps.  Equal
    DNs have equal canonical forms. *)

val depth : t -> int
(** Number of RDNs; the root has depth 0. *)

val rdn : t -> rdn option
(** Leaf-most RDN; [None] for the root. *)

val parent : t -> t option
(** Immediate superior; [None] for the root. *)

val child : t -> rdn -> t
(** [child dn r] names [r] directly beneath [dn]. *)

val child_ava : t -> string -> string -> t
(** [child_ava dn attr value] is [child dn [{attr; value}]]. *)

val ancestor_of : ?strict:bool -> t -> t -> bool
(** [ancestor_of a b] — the paper's [isSuffix (a, b)] — holds when
    every RDN of [a] is a suffix of [b]'s RDN sequence.  With
    [~strict:false] (the default) a DN is an ancestor of itself. *)

val parent_of : t -> t -> bool
(** [parent_of a b] — the paper's [isparent (a, b)] — holds when [a]
    is the immediate superior of [b]. *)

val rdn_canonical : rdn -> string
(** Normalized key for an RDN; equal RDNs have equal keys. *)

val rdn_of_string : string -> (rdn, string) result
(** Parses a single RDN such as ["cn=John Doe"] or ["cn=X+sn=Y"]. *)

val rdn_to_string : rdn -> string

val relative_to : ancestor:t -> t -> rdn list option
(** [relative_to ~ancestor dn] is the RDN sequence (leaf-most first)
    of [dn] below [ancestor], or [None] when [ancestor] is not an
    ancestor-or-self of [dn].  [Some []] means the two are equal. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
