(** Simulated multi-server topology and referral-chasing client.

    Reproduces the distributed operation processing of Figure 2: the
    client sends a search to some server; a server that does not hold
    the target namespace answers with its default (superior) referral;
    a server that does answers with entries plus continuation
    references for subordinate contexts, which the client chases with
    modified bases.  Round trips, PDUs and modelled bytes are counted
    so the referral-cost argument of section 2.3 can be measured. *)

type t

type stats = {
  round_trips : int;  (** Client→server requests sent. *)
  entry_pdus : int;
  referral_pdus : int;
  bytes : int;  (** Modelled via {!Ber}. *)
}

val create : unit -> t
val add_server : t -> Server.t -> unit

val add_handler : t -> name:string -> (Query.t -> Server.response) -> unit
(** Registers an arbitrary search handler under a host name — how
    partial replicas ({!Ldap_replication.Replica_server}-style
    endpoints) join the topology alongside full servers. *)

val server : t -> string -> Server.t option
val stats : t -> stats
val reset_stats : t -> unit

val search :
  t -> from:string -> Query.t -> (Entry.t list, string) result
(** Chases referrals and continuation references until the result set
    is complete.  Fails on unknown hosts, referral loops (guarded by a
    visited set) or server failures. *)

val search_no_chase : t -> from:string -> Query.t -> Server.response
(** One round trip, no chasing: what a minimally directory-enabled
    application sees when it hits a partial replica (section 3.1.1). *)
