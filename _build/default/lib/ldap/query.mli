(** LDAP search requests (queries).

    A query carries the semantic information of section 2.2: base DN,
    scope, filter and requested attributes.  Queries are the unit of
    replication in the filter-based model, so they need cheap equality
    and a canonical string form for keying. *)

type attrs =
  | All  (** The ["*"] wildcard: every user attribute. *)
  | Select of string list  (** A specific attribute list (lowercased). *)

type t = {
  base : Dn.t;
  scope : Scope.t;
  filter : Filter.t;
  attrs : attrs;
  manage_dsa_it : bool;
      (** The manageDsaIT control: treat referral objects as ordinary
          entries instead of generating referrals.  Subtree replication
          sessions use it so referral objects travel with their
          context's content. *)
}

val make :
  ?scope:Scope.t -> ?attrs:attrs -> ?manage_dsa_it:bool -> base:Dn.t -> Filter.t -> t
(** Defaults: [~scope:Sub], [~attrs:All], [~manage_dsa_it:false]. *)

val of_strings :
  ?scope:Scope.t -> ?attrs:attrs -> base:string -> string -> (t, string) result
(** Parses base and filter from their string representations. *)

val attrs_subset : sub:attrs -> super:attrs -> bool
(** The attribute condition of algorithm QC: [sub]'s attributes must be
    a subset of [super]'s ([All] contains everything). *)

val attr_list : attrs -> string list option
(** [None] for [All]. *)

val in_scope : t -> Dn.t -> bool
(** [in_scope q dn] — does [dn] fall in the region defined by [q]'s
    base and scope? *)

val region_subset : inner:t -> outer:t -> bool
(** Base/scope region containment, exactly the region test of algorithm
    QC (section 4): every DN in [inner]'s region lies in [outer]'s. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
