(** Wire-size model.

    The paper reports update traffic in entries; for the byte-level
    ablations we also model PDU sizes roughly the way BER-encoded LDAP
    messages grow: a fixed per-message envelope plus type/length bytes
    around every element.  Absolute numbers are not calibrated to any
    particular server — only relative comparisons are meaningful. *)

val message_overhead : int
(** Per-PDU envelope bytes (message id, operation tag, controls). *)

val dn_size : Dn.t -> int
val entry_size : Entry.t -> int
(** Full entry PDU: DN plus every attribute name and value. *)

val entry_size_selected : Entry.t -> string list option -> int
(** Size after attribute selection ([None] = all attributes). *)

val referral_size : string list -> int
(** Referral PDU carrying the given LDAP URLs. *)
