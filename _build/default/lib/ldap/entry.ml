module Smap = Map.Make (String)

(* [order] keeps first-seen attribute order for stable printing. *)
type t = { dn : Dn.t; attrs : string list Smap.t; order : string list }

let lc = String.lowercase_ascii

let dedup_values values =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v -> if Hashtbl.mem seen v then false else (Hashtbl.add seen v (); true))
    values

let make dn pairs =
  let attrs, order =
    List.fold_left
      (fun (m, order) (name, values) ->
        let name = lc name in
        let existing = Option.value ~default:[] (Smap.find_opt name m) in
        let merged = dedup_values (existing @ values) in
        let order = if Smap.mem name m then order else name :: order in
        (Smap.add name merged m, order))
      (Smap.empty, []) pairs
  in
  { dn; attrs; order = List.rev order }

let dn t = t.dn
let with_dn t dn = { t with dn }

let attributes t =
  List.filter_map
    (fun name ->
      match Smap.find_opt name t.attrs with
      | Some (_ :: _ as vs) -> Some (name, vs)
      | Some [] | None -> None)
    t.order

let get t name = Option.value ~default:[] (Smap.find_opt (lc name) t.attrs)
let has_attribute t name = get t name <> []

let has_value ?(syntax = Value.Case_ignore) t name v =
  List.exists (fun x -> Value.equal syntax x v) (get t name)

let object_classes t = get t "objectclass"

let is_referral t =
  List.exists (fun c -> lc c = "referral") (object_classes t)

let referral_urls t = get t "ref"

let add_values ?(syntax = Value.Case_ignore) t name values =
  let name = lc name in
  let existing = get t name in
  let fresh =
    List.filter (fun v -> not (List.exists (fun x -> Value.equal syntax x v) existing)) values
  in
  if fresh = [] && existing <> [] then t
  else
    let order = if Smap.mem name t.attrs then t.order else t.order @ [ name ] in
    { t with attrs = Smap.add name (existing @ dedup_values fresh) t.attrs; order }

let delete_values ?(syntax = Value.Case_ignore) t name values =
  let name = lc name in
  let existing = get t name in
  if existing = [] then Error (Printf.sprintf "no such attribute: %s" name)
  else if values = [] then Ok { t with attrs = Smap.remove name t.attrs }
  else
    let missing =
      List.filter (fun v -> not (List.exists (fun x -> Value.equal syntax x v) existing)) values
    in
    match missing with
    | v :: _ -> Error (Printf.sprintf "no such value: %s=%s" name v)
    | [] ->
        let remaining =
          List.filter
            (fun x -> not (List.exists (fun v -> Value.equal syntax x v) values))
            existing
        in
        if remaining = [] then Ok { t with attrs = Smap.remove name t.attrs }
        else Ok { t with attrs = Smap.add name remaining t.attrs }

let replace_values t name values =
  let name = lc name in
  if values = [] then { t with attrs = Smap.remove name t.attrs }
  else
    let order = if Smap.mem name t.attrs then t.order else t.order @ [ name ] in
    { t with attrs = Smap.add name (dedup_values values) t.attrs; order }

let select t requested =
  match requested with
  | None -> t
  | Some names ->
      if List.exists (fun n -> n = "*") names then t
      else
        let keep = List.map lc names in
        let attrs =
          Smap.filter (fun name _ -> List.mem name keep) t.attrs
        in
        { t with attrs }

let normalized_attrs t =
  Smap.bindings t.attrs
  |> List.filter (fun (_, vs) -> vs <> [])
  |> List.map (fun (name, vs) -> (name, List.sort String.compare vs))

let equal a b = Dn.equal a.dn b.dn && normalized_attrs a = normalized_attrs b

let pp ppf t =
  Format.fprintf ppf "dn: %s" (Dn.to_string t.dn);
  List.iter
    (fun (name, vs) ->
      List.iter (fun v -> Format.fprintf ppf "@\n%s: %s" name v) vs)
    (attributes t)
