(** One naming context: a subtree of entries rooted at a suffix
    (section 2.3).

    The tree is a persistent (functional) structure; updates return a
    new tree.  Referral objects are ordinary entries as far as the tree
    is concerned — {!Backend} gives them their protocol meaning. *)

type t

type error =
  | No_such_object of Dn.t
  | Already_exists of Dn.t
  | Not_a_leaf of Dn.t
  | No_such_parent of Dn.t
  | Not_in_context of Dn.t

val error_to_string : error -> string

val create : Entry.t -> t
(** A context containing just its suffix entry. *)

val suffix : t -> Dn.t
val size : t -> int
(** Number of entries, including the suffix entry. *)

val contains_dn : t -> Dn.t -> bool
(** Whether the DN falls under (or equals) the suffix — a namespace
    test, not an existence test. *)

val find : t -> Dn.t -> Entry.t option
val add : t -> Entry.t -> (t, error) result
(** The parent entry must already exist. *)

val replace : t -> Entry.t -> (t, error) result
(** Replaces the entry at [Entry.dn e]; the subtree below is kept. *)

val delete : t -> Dn.t -> (t, error) result
(** The entry must be a leaf; deleting the suffix entry is allowed only
    when it has no children. *)

val children : t -> Dn.t -> Entry.t list
(** Immediate children, or [[]] when the DN does not exist. *)

val fold_subtree : t -> Dn.t -> init:'a -> f:('a -> Entry.t -> 'a) -> 'a
(** Folds over the entry at the DN and its whole subtree (depth-first,
    parent before children).  Identity when the DN does not exist. *)

val fold : t -> init:'a -> f:('a -> Entry.t -> 'a) -> 'a
(** Folds over every entry in the context. *)

val iter : t -> f:(Entry.t -> unit) -> unit
