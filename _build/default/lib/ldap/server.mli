(** A named directory server: a backend plus distributed-directory
    glue (default referral to a superior server, section 2.3). *)

type t

val create : ?default_referral:string -> name:string -> Backend.t -> t
val name : t -> string
val backend : t -> Backend.t
val default_referral : t -> string option

type response =
  | Entries of Backend.search_result
      (** Matching entries plus continuation references. *)
  | Referral of string list
      (** Retry elsewhere: either the default (superior) referral when
          no local context holds the base, or the URLs of a referral
          object found during name resolution. *)
  | Failure of string
      (** Terminal error (e.g. noSuchObject with no superior). *)

val handle_search : t -> Query.t -> response

val handle_compare : t -> Dn.t -> attr:string -> value:string -> (bool, string) result
(** The compare operation against the local backend. *)

val handle_update : t -> Update.op -> (Update.record, string) result
(** Updates are accepted only at the server mastering the entry; this
    simulation treats every local backend as master for its
    contexts. *)
