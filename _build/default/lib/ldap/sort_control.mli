(** Server-side sorting of search results (RFC 2891) — the control the
    paper cites in section 2.2 as an example of altering an operation's
    behaviour.

    Results are ordered by a list of sort keys, each an attribute with
    an optional reverse flag; comparison uses the attribute's matching
    rule.  Entries lacking the attribute sort after all others (the
    RFC's "largest value" treatment). *)

type key = { attr : string; reverse : bool }

val key : ?reverse:bool -> string -> key

val sort : Schema.t -> keys:key list -> Entry.t list -> Entry.t list
(** Stable sort by the given keys, most significant first. *)

val keys_of_string : string -> (key list, string) result
(** Parses a CLI-style spec: comma-separated attributes, each with an
    optional leading [-] for reverse order, e.g. ["sn,-age"]. *)
