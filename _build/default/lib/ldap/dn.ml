type ava = { attr : string; value : string }
type rdn = ava list

(* [norm] caches the canonical form so comparisons are cheap; it is
   derived deterministically from [parts]. *)
type t = { parts : rdn list; norm : string }

let norm_value v = String.lowercase_ascii (Value.normalize Value.Case_ignore v)

let norm_ava a = Printf.sprintf "%s=%s" a.attr (norm_value a.value)

let sort_rdn (r : rdn) : rdn =
  List.sort
    (fun a b ->
      match String.compare a.attr b.attr with
      | 0 -> String.compare (norm_value a.value) (norm_value b.value)
      | c -> c)
    r

let norm_rdn r = String.concat "+" (List.map norm_ava r)
let norm_of_parts parts = String.concat "," (List.map norm_rdn parts)

let make parts = { parts; norm = norm_of_parts parts }
let root = make []
let is_root t = t.parts = []

let of_rdns rdns =
  let check r = if r = [] then invalid_arg "Dn.of_rdns: empty RDN" in
  List.iter check rdns;
  let rdns =
    List.map
      (fun r -> sort_rdn (List.map (fun a -> { a with attr = String.lowercase_ascii a.attr }) r))
      rdns
  in
  make rdns

let rdns t = t.parts

(* --- Parsing (RFC 2253 escaping) --------------------------------- *)

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Split [s] into tokens at unescaped occurrences of separators,
   resolving escapes.  Produces a list of (kind, text) where kind is
   the separator that *preceded* the token.  We instead scan once,
   emitting structure directly. *)

exception Parse_error of string

let parse_dn_string s =
  let n = String.length s in
  let buf = Buffer.create 16 in
  let cur_attr = ref None in
  let cur_rdn = ref [] in
  let acc = ref [] in
  let flush_ava () =
    match !cur_attr with
    | None ->
        if Buffer.length buf > 0 || !cur_rdn <> [] then
          raise (Parse_error "missing '=' in RDN")
    | Some a ->
        let attr = String.lowercase_ascii (String.trim a) in
        if attr = "" then raise (Parse_error "empty attribute name");
        let value = String.trim (Buffer.contents buf) in
        Buffer.clear buf;
        cur_attr := None;
        cur_rdn := { attr; value } :: !cur_rdn
  in
  let flush_rdn () =
    flush_ava ();
    match !cur_rdn with
    | [] -> raise (Parse_error "empty RDN")
    | r ->
        acc := List.rev r :: !acc;
        cur_rdn := []
  in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | '\\' ->
          if i + 1 >= n then raise (Parse_error "dangling escape")
          else begin
            (match (hex_digit s.[i + 1], if i + 2 < n then hex_digit s.[i + 2] else None) with
            | Some h, Some l ->
                Buffer.add_char buf (Char.chr ((h * 16) + l));
                go (i + 3)
            | _ ->
                Buffer.add_char buf s.[i + 1];
                go (i + 2))
          end
      | ',' | ';' ->
          flush_rdn ();
          go (i + 1)
      | '+' ->
          flush_ava ();
          go (i + 1)
      | '=' when !cur_attr = None ->
          cur_attr := Some (Buffer.contents buf);
          Buffer.clear buf;
          go (i + 1)
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0;
  if !cur_attr = None && Buffer.length buf = 0 && !cur_rdn = [] && !acc = [] then []
  else begin
    flush_rdn ();
    List.rev !acc
  end

let of_string s =
  if String.trim s = "" then Ok root
  else
    match parse_dn_string s with
    | parts -> Ok (of_rdns parts)
    | exception Parse_error msg -> Error (Printf.sprintf "invalid DN %S: %s" s msg)

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> invalid_arg ("Dn.of_string_exn: " ^ msg)

(* --- Printing ------------------------------------------------------ *)

let escape_value v =
  let b = Buffer.create (String.length v) in
  String.iteri
    (fun i c ->
      let needs_escape =
        match c with
        | ',' | '+' | '"' | '\\' | '<' | '>' | ';' | '=' -> true
        | '#' | ' ' -> i = 0 || i = String.length v - 1
        | _ -> false
      in
      if needs_escape then Buffer.add_char b '\\';
      Buffer.add_char b c)
    v;
  Buffer.contents b

let ava_to_string a = Printf.sprintf "%s=%s" a.attr (escape_value a.value)
let rdn_to_string r = String.concat "+" (List.map ava_to_string r)
let to_string t = String.concat "," (List.map rdn_to_string t.parts)
let pp ppf t = Format.pp_print_string ppf (to_string t)

let canonical t = t.norm
let equal a b = String.equal a.norm b.norm
let compare a b = String.compare a.norm b.norm
let depth t = List.length t.parts
let rdn t = match t.parts with [] -> None | r :: _ -> Some r

let parent t =
  match t.parts with [] -> None | _ :: rest -> Some (make rest)

let child t r =
  let r = sort_rdn (List.map (fun a -> { a with attr = String.lowercase_ascii a.attr }) r) in
  if r = [] then invalid_arg "Dn.child: empty RDN";
  make (r :: t.parts)

let child_ava t attr value = child t [ { attr; value } ]

let rdn_canonical r =
  norm_rdn (sort_rdn (List.map (fun a -> { a with attr = String.lowercase_ascii a.attr }) r))

let rdn_of_string s =
  match of_string s with
  | Error e -> Error e
  | Ok dn -> (
      match dn.parts with
      | [ r ] -> Ok r
      | _ -> Error (Printf.sprintf "not a single RDN: %S" s))

let rdn_equal a b = String.equal (norm_rdn a) (norm_rdn b)

let ancestor_of ?(strict = false) a b =
  let da = depth a and db = depth b in
  if da > db || (strict && da = db) then false
  else
    (* a's parts must equal the last da parts of b. *)
    let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
    let tail = drop (db - da) b.parts in
    List.for_all2 rdn_equal a.parts tail

let parent_of a b = depth b = depth a + 1 && ancestor_of ~strict:true a b

let relative_to ~ancestor dn =
  let da = depth ancestor and db = depth dn in
  if da > db then None
  else if not (ancestor_of ancestor dn) then None
  else
    let rec take n l =
      if n = 0 then []
      else match l with [] -> [] | h :: t -> h :: take (n - 1) t
    in
    Some (take (db - da) dn.parts)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
