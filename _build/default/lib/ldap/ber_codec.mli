(** BER/DER wire codec for the LDAP protocol subset this system
    exchanges (RFC 2251 section 4 framing, definite-length DER).

    Covered protocol operations: SearchRequest, SearchResultEntry,
    SearchResultReference and SearchResultDone, plus controls — among
    them the manageDsaIT control and the paper's resync control
    [(mode, cookie)] carried as an extension control (section 5.2).

    The {!Ber} module remains the lightweight size {e model} used by
    the experiments; this codec provides actual wire images, used to
    validate that model and by the round-trip property tests. *)

type result_done = {
  code : int;  (** 0 success, 10 referral, 32 noSuchObject, ... *)
  matched : Dn.t;
  diagnostic : string;
  referral : string list;  (** LDAP URLs when [code = 10]. *)
}

type operation =
  | Search_request of Query.t
  | Search_result_entry of Entry.t
  | Search_result_reference of string list
  | Search_result_done of result_done

type control = {
  control_type : string;  (** OID. *)
  criticality : bool;
  control_value : string option;  (** Raw BER value. *)
}

type message = { id : int; op : operation; controls : control list }

val manage_dsa_it_oid : string
val resync_oid : string

val resync_control : mode:string -> cookie:string option -> control
(** Encodes the paper's [(mode, cookie)] resync control value. *)

val decode_resync_control : control -> (string * string option, string) result

val encode : message -> string
(** DER encoding of the whole LDAPMessage. *)

val decode : string -> (message, string) result
(** Decodes one LDAPMessage occupying the entire input. *)

val encoded_size : message -> int

val search_request : ?id:int -> Query.t -> message
(** Convenience: a SearchRequest message with the manageDsaIT control
    attached when the query asks for it. *)

val entry_message : ?id:int -> Entry.t -> message
