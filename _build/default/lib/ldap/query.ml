type attrs = All | Select of string list

type t = {
  base : Dn.t;
  scope : Scope.t;
  filter : Filter.t;
  attrs : attrs;
  manage_dsa_it : bool;
}

let norm_attrs = function
  | All -> All
  | Select names ->
      if List.mem "*" names then All
      else Select (List.sort_uniq String.compare (List.map String.lowercase_ascii names))

let make ?(scope = Scope.Sub) ?(attrs = All) ?(manage_dsa_it = false) ~base filter =
  { base; scope; filter = Filter.normalize filter; attrs = norm_attrs attrs; manage_dsa_it }

let of_strings ?scope ?attrs ~base filter_s =
  match Dn.of_string base with
  | Error e -> Error e
  | Ok base -> (
      match Filter.of_string filter_s with
      | Error e -> Error e
      | Ok f -> Ok (make ?scope ?attrs ~base f))

let attrs_subset ~sub ~super =
  match (sub, super) with
  | _, All -> true
  | All, Select _ -> false
  | Select a, Select b -> List.for_all (fun x -> List.mem x b) a

let attr_list = function All -> None | Select l -> Some l

let in_scope t dn =
  match t.scope with
  | Scope.Base -> Dn.equal t.base dn
  | Scope.One -> Dn.parent_of t.base dn
  | Scope.Sub -> Dn.ancestor_of t.base dn

(* Region containment from algorithm QC (section 4): the (base, scope)
   region of [inner] must fall inside that of [outer]. *)
let region_subset ~inner ~outer =
  if Dn.equal outer.base inner.base then Scope.covers ~outer:outer.scope ~inner:inner.scope
  else if not (Dn.ancestor_of ~strict:true outer.base inner.base) then false
  else
    match outer.scope with
    | Scope.Sub -> true
    | Scope.One ->
        (* A one-level outer region only contains children of its base:
           inner must be a Base query on such a child. *)
        Scope.equal inner.scope Scope.Base && Dn.parent_of outer.base inner.base
    | Scope.Base -> false

let attrs_compare a b =
  match (a, b) with
  | All, All -> 0
  | All, Select _ -> -1
  | Select _, All -> 1
  | Select x, Select y -> Stdlib.compare x y

let compare a b =
  match Dn.compare a.base b.base with
  | 0 -> (
      match Scope.compare a.scope b.scope with
      | 0 -> (
          match Filter.compare a.filter b.filter with
          | 0 -> (
              match attrs_compare a.attrs b.attrs with
              | 0 -> Bool.compare a.manage_dsa_it b.manage_dsa_it
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let to_string t =
  let attrs =
    match t.attrs with All -> "*" | Select l -> String.concat "," l
  in
  Printf.sprintf "base=%S scope=%s filter=%s attrs=%s" (Dn.to_string t.base)
    (Scope.to_string t.scope)
    (Filter.to_string t.filter)
    attrs

let pp ppf t = Format.pp_print_string ppf (to_string t)
