(** LDAP URLs used in referrals ([ldap://host/dn]).

    Referral objects and default referrals carry these URLs; the
    simulated client parses them to decide which server to contact next
    and with which (possibly modified) base DN — the Figure 2 dance. *)

type t = { host : string; dn : Dn.t option }

val make : host:string -> ?dn:Dn.t -> unit -> string
val parse : string -> (t, string) result
val parse_exn : string -> t
