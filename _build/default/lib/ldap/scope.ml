type t = Base | One | Sub

let to_int = function Base -> 0 | One -> 1 | Sub -> 2
let equal a b = to_int a = to_int b
let compare a b = Int.compare (to_int a) (to_int b)

let of_int = function
  | 0 -> Some Base
  | 1 -> Some One
  | 2 -> Some Sub
  | _ -> None

let to_string = function Base -> "base" | One -> "one" | Sub -> "sub"

let of_string s =
  match String.lowercase_ascii s with
  | "base" -> Some Base
  | "one" | "onelevel" | "single" -> Some One
  | "sub" | "subtree" -> Some Sub
  | _ -> None

let pp ppf s = Format.pp_print_string ppf (to_string s)

let covers ~outer ~inner =
  match (outer, inner) with
  | Sub, (Base | One | Sub) -> true
  | One, One -> true
  | One, (Base | Sub) -> false
  | Base, Base -> true
  | Base, (One | Sub) -> false
