type key = { attr : string; reverse : bool }

let key ?(reverse = false) attr = { attr = String.lowercase_ascii attr; reverse }

let compare_by schema k a b =
  let syntax = Schema.syntax_of schema k.attr in
  let value e = match Entry.get e k.attr with [] -> None | v :: _ -> Some v in
  let c =
    match (value a, value b) with
    | None, None -> 0
    | None, Some _ -> 1 (* missing sorts last *)
    | Some _, None -> -1
    | Some va, Some vb -> Value.compare syntax va vb
  in
  if k.reverse then -c else c

let sort schema ~keys entries =
  let compare_entries a b =
    let rec go = function
      | [] -> 0
      | k :: rest -> ( match compare_by schema k a b with 0 -> go rest | c -> c)
    in
    go keys
  in
  List.stable_sort compare_entries entries

let keys_of_string s =
  let parts = String.split_on_char ',' s |> List.map String.trim in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: _ -> Error "empty sort key"
    | part :: rest ->
        if part.[0] = '-' then
          let attr = String.sub part 1 (String.length part - 1) in
          if attr = "" then Error "empty sort key"
          else go (key ~reverse:true attr :: acc) rest
        else go (key part :: acc) rest
  in
  go [] parts
