(** Change sequence numbers.

    A CSN totally orders committed updates at a master.  The simulation
    has no wall clock; CSNs are the only notion of time, which keeps
    every experiment deterministic.  ReSync cookies embed the CSN up to
    which a session has been synchronized. *)

type t

val zero : t
(** Before any update. *)

val next : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val to_int : t -> int
val of_int : int -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
