(** Directory schema: attribute types and object classes.

    A {!t} maps attribute names to their matching syntax and flags, and
    object-class names to their mandatory/optional attribute lists.
    Every filter evaluation, index lookup and containment check
    resolves value semantics through the schema, so a single instance
    is threaded through the whole system.

    {!default} registers the attribute types and object classes used by
    the paper's enterprise directory case study (inetOrgPerson and the
    organizational entries of section 7.1). *)

type attribute_type = {
  at_name : string;  (** Canonical (preferred) name. *)
  at_aliases : string list;  (** Alternative names, e.g. ["surname"]. *)
  at_syntax : Value.syntax;
  at_single_value : bool;
}

type object_class = {
  oc_name : string;
  oc_sup : string option;  (** Superclass, if any. *)
  oc_must : string list;  (** Mandatory attributes. *)
  oc_may : string list;  (** Optional attributes. *)
}

type t

val empty : t

val add_attribute : t -> attribute_type -> t
(** Registers the type under its canonical name and all aliases
    (case-insensitively), replacing earlier registrations. *)

val add_object_class : t -> object_class -> t

val attribute_type : t -> string -> attribute_type option
(** Lookup by canonical name or alias, case-insensitive. *)

val syntax_of : t -> string -> Value.syntax
(** Syntax of an attribute; unknown attributes default to
    {!Value.Case_ignore}, mirroring how directory servers treat
    undeclared attributes in filters. *)

val is_single_valued : t -> string -> bool

val object_class : t -> string -> object_class option

val required_attributes : t -> string -> string list
(** Mandatory attributes of a class including inherited ones.  Unknown
    classes have no requirements. *)

val allowed_attributes : t -> string -> string list
(** Mandatory plus optional attributes, including inherited ones. *)

val canonical_attr : t -> string -> string
(** Canonical lowercase spelling used as a key everywhere (resolves
    aliases; unknown attributes are just lowercased). *)

val default : t
(** Schema covering the case study: person entries (inetOrgPerson with
    [serialNumber], [departmentNumber], [divisionNumber], [mail], ...),
    organizational entries ([organization], [organizationalUnit],
    [country], [locality], [domain]) and [referral] objects. *)
