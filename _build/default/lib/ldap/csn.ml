type t = int

let zero = 0
let next t = t + 1
let compare = Int.compare
let equal = Int.equal
let ( <= ) a b = a <= b
let ( < ) a b = a < b
let to_int t = t
let of_int i = i
let to_string = string_of_int
let pp = Format.pp_print_int
