let message_overhead = 14

(* Type + length bytes around a primitive of length [n]. *)
let element n = n + 2

let dn_size dn = element (String.length (Dn.to_string dn))

let attrs_size attrs =
  List.fold_left
    (fun acc (name, values) ->
      let values_size =
        List.fold_left (fun a v -> a + element (String.length v)) 0 values
      in
      acc + element (element (String.length name) + element values_size))
    0 attrs

let entry_size e =
  message_overhead + dn_size (Entry.dn e) + element (attrs_size (Entry.attributes e))

let entry_size_selected e requested =
  entry_size (Entry.select e requested)

let referral_size urls =
  message_overhead
  + List.fold_left (fun acc u -> acc + element (String.length u)) 0 urls
