module Vmap = Map.Make (String)

type t = {
  schema : Schema.t;
  tables : (string, Dn.Set.t Vmap.t ref) Hashtbl.t;
}

let create schema ~attrs =
  let tables = Hashtbl.create 16 in
  List.iter
    (fun a -> Hashtbl.replace tables (String.lowercase_ascii a) (ref Vmap.empty))
    attrs;
  { schema; tables }

let indexed_attrs t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables []
let is_indexed t attr = Hashtbl.mem t.tables (String.lowercase_ascii attr)

let norm t attr v = Value.normalize (Schema.syntax_of t.schema attr) v

let update_entry t entry ~add =
  let dn = Entry.dn entry in
  Hashtbl.iter
    (fun attr table ->
      List.iter
        (fun v ->
          let key = norm t attr v in
          let existing = Option.value ~default:Dn.Set.empty (Vmap.find_opt key !table) in
          let updated =
            if add then Dn.Set.add dn existing else Dn.Set.remove dn existing
          in
          if Dn.Set.is_empty updated then table := Vmap.remove key !table
          else table := Vmap.add key updated !table)
        (Entry.get entry attr))
    t.tables

let insert t entry = update_entry t entry ~add:true
let remove t entry = update_entry t entry ~add:false

let lookup_eq t ~attr v =
  match Hashtbl.find_opt t.tables (String.lowercase_ascii attr) with
  | None -> Dn.Set.empty
  | Some table ->
      Option.value ~default:Dn.Set.empty (Vmap.find_opt (norm t attr v) !table)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let lookup_prefix t ~attr prefix =
  match Hashtbl.find_opt t.tables (String.lowercase_ascii attr) with
  | None -> Dn.Set.empty
  | Some table ->
      let prefix = norm t attr prefix in
      let seq = Vmap.to_seq_from prefix !table in
      let rec collect acc seq =
        match seq () with
        | Seq.Nil -> acc
        | Seq.Cons ((key, dns), rest) ->
            if has_prefix ~prefix key then collect (Dn.Set.union acc dns) rest
            else acc
      in
      collect Dn.Set.empty seq

let cardinality t ~attr =
  match Hashtbl.find_opt t.tables (String.lowercase_ascii attr) with
  | None -> 0
  | Some table -> Vmap.cardinal !table
