(** Equality/prefix indexes over entry attributes.

    Maps a normalized attribute value to the set of DNs carrying it.
    Because values are kept in an ordered map, prefix assertions
    ([serialNumber=24*]) are answered with a range scan — the access
    path that makes the paper's generalized prefix filters cheap to
    materialize. *)

type t

val create : Schema.t -> attrs:string list -> t
(** Index the listed attributes (case-insensitive). *)

val indexed_attrs : t -> string list
val is_indexed : t -> string -> bool

val insert : t -> Entry.t -> unit
(** Register all indexed values of the entry under its DN. *)

val remove : t -> Entry.t -> unit

val lookup_eq : t -> attr:string -> string -> Dn.Set.t
(** DNs with the given value (normalized per the attribute syntax);
    empty when the attribute is not indexed. *)

val lookup_prefix : t -> attr:string -> string -> Dn.Set.t
(** DNs whose value starts with the given prefix. *)

val cardinality : t -> attr:string -> int
(** Number of distinct values indexed for the attribute. *)
