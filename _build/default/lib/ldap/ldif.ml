type change =
  | Change_add of Entry.t
  | Change_delete of Dn.t
  | Change_modify of Dn.t * Update.mod_item list
  | Change_modrdn of {
      dn : Dn.t;
      new_rdn : Dn.rdn;
      delete_old_rdn : bool;
      new_superior : Dn.t option;
    }

(* --- Base64 (self-contained; no external dependency) ------------------ *)

let b64_alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let b64_encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let byte i = Char.code s.[i] in
  let rec go i =
    if i + 3 <= n then begin
      let v = (byte i lsl 16) lor (byte (i + 1) lsl 8) lor byte (i + 2) in
      Buffer.add_char out b64_alphabet.[(v lsr 18) land 63];
      Buffer.add_char out b64_alphabet.[(v lsr 12) land 63];
      Buffer.add_char out b64_alphabet.[(v lsr 6) land 63];
      Buffer.add_char out b64_alphabet.[v land 63];
      go (i + 3)
    end
    else if i + 2 = n then begin
      let v = (byte i lsl 16) lor (byte (i + 1) lsl 8) in
      Buffer.add_char out b64_alphabet.[(v lsr 18) land 63];
      Buffer.add_char out b64_alphabet.[(v lsr 12) land 63];
      Buffer.add_char out b64_alphabet.[(v lsr 6) land 63];
      Buffer.add_char out '='
    end
    else if i + 1 = n then begin
      let v = byte i lsl 16 in
      Buffer.add_char out b64_alphabet.[(v lsr 18) land 63];
      Buffer.add_char out b64_alphabet.[(v lsr 12) land 63];
      Buffer.add_string out "=="
    end
  in
  go 0;
  Buffer.contents out

let b64_value c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - 65)
  | 'a' .. 'z' -> Some (Char.code c - 71)
  | '0' .. '9' -> Some (Char.code c + 4)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let b64_decode s =
  let out = Buffer.create (String.length s * 3 / 4) in
  let acc = ref 0 and bits = ref 0 in
  let ok = ref true in
  String.iter
    (fun c ->
      if c = '=' then ()
      else
        match b64_value c with
        | None -> ok := false
        | Some v ->
            acc := (!acc lsl 6) lor v;
            bits := !bits + 6;
            if !bits >= 8 then begin
              bits := !bits - 8;
              Buffer.add_char out (Char.chr ((!acc lsr !bits) land 0xff))
            end)
    s;
  if !ok then Ok (Buffer.contents out) else Error "invalid base64"

(* --- Printing ---------------------------------------------------------- *)

let needs_base64 v =
  v <> ""
  && ((match v.[0] with ' ' | ':' | '<' -> true | _ -> false)
     || v.[String.length v - 1] = ' '
     || String.exists (fun c -> Char.code c < 32 || Char.code c > 126) v)

let fold_width = 76

let add_attr_line buf name v =
  let line =
    if needs_base64 v then Printf.sprintf "%s:: %s" name (b64_encode v)
    else Printf.sprintf "%s: %s" name v
  in
  (* RFC 2849 line folding: continuation lines start with one space. *)
  let n = String.length line in
  if n <= fold_width then begin
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  end
  else begin
    Buffer.add_string buf (String.sub line 0 fold_width);
    Buffer.add_char buf '\n';
    let rec rest i =
      if i < n then begin
        let len = min (fold_width - 1) (n - i) in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (String.sub line i len);
        Buffer.add_char buf '\n';
        rest (i + len)
      end
    in
    rest fold_width
  end

let entry_to_buf buf e =
  add_attr_line buf "dn" (Dn.to_string (Entry.dn e));
  List.iter
    (fun (name, values) -> List.iter (fun v -> add_attr_line buf name v) values)
    (Entry.attributes e)

let entry_to_string e =
  let buf = Buffer.create 256 in
  entry_to_buf buf e;
  Buffer.contents buf

let entries_to_string entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "version: 1\n\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf '\n';
      entry_to_buf buf e)
    entries;
  Buffer.contents buf

let change_to_string change =
  let buf = Buffer.create 256 in
  (match change with
  | Change_add e ->
      add_attr_line buf "dn" (Dn.to_string (Entry.dn e));
      Buffer.add_string buf "changetype: add\n";
      List.iter
        (fun (name, values) -> List.iter (fun v -> add_attr_line buf name v) values)
        (Entry.attributes e)
  | Change_delete dn ->
      add_attr_line buf "dn" (Dn.to_string dn);
      Buffer.add_string buf "changetype: delete\n"
  | Change_modify (dn, items) ->
      add_attr_line buf "dn" (Dn.to_string dn);
      Buffer.add_string buf "changetype: modify\n";
      List.iteri
        (fun i (item : Update.mod_item) ->
          if i > 0 then Buffer.add_string buf "-\n";
          let verb =
            match item.Update.mod_kind with
            | Update.Add_values -> "add"
            | Update.Delete_values -> "delete"
            | Update.Replace_values -> "replace"
          in
          Buffer.add_string buf (Printf.sprintf "%s: %s\n" verb item.Update.mod_attr);
          List.iter (fun v -> add_attr_line buf item.Update.mod_attr v) item.Update.mod_values)
        items
  | Change_modrdn { dn; new_rdn; delete_old_rdn; new_superior } ->
      add_attr_line buf "dn" (Dn.to_string dn);
      Buffer.add_string buf "changetype: modrdn\n";
      add_attr_line buf "newrdn" (Dn.rdn_to_string new_rdn);
      Buffer.add_string buf
        (Printf.sprintf "deleteoldrdn: %d\n" (if delete_old_rdn then 1 else 0));
      match new_superior with
      | Some sup -> add_attr_line buf "newsuperior" (Dn.to_string sup)
      | None -> ());
  Buffer.contents buf

let change_of_update = function
  | Update.Add e -> Change_add e
  | Update.Delete dn -> Change_delete dn
  | Update.Modify (dn, items) -> Change_modify (dn, items)
  | Update.Modify_dn { dn; new_rdn; delete_old_rdn; new_superior } ->
      Change_modrdn { dn; new_rdn; delete_old_rdn; new_superior }

let update_of_change = function
  | Change_add e -> Update.Add e
  | Change_delete dn -> Update.Delete dn
  | Change_modify (dn, items) -> Update.Modify (dn, items)
  | Change_modrdn { dn; new_rdn; delete_old_rdn; new_superior } ->
      Update.Modify_dn { dn; new_rdn; delete_old_rdn; new_superior }

(* --- Parsing ------------------------------------------------------------ *)

(* Unfold continuation lines and drop comments/blank separators,
   returning records as lists of logical lines. *)
let records_of_string s =
  let lines = String.split_on_char '\n' s in
  let logical = ref [] in
  List.iter
    (fun line ->
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if String.length line > 0 && line.[0] = ' ' then begin
        match !logical with
        | last :: rest ->
            logical := (last ^ String.sub line 1 (String.length line - 1)) :: rest
        | [] -> ()
      end
      else logical := line :: !logical)
    lines;
  let logical = List.rev !logical in
  (* Split on blank lines into records; skip comments and version. *)
  let records = ref [] and current = ref [] in
  List.iter
    (fun line ->
      if line = "" then begin
        if !current <> [] then records := List.rev !current :: !records;
        current := []
      end
      else if String.length line > 0 && line.[0] = '#' then ()
      else if
        String.length line >= 8 && String.lowercase_ascii (String.sub line 0 8) = "version:"
      then ()
      else current := line :: !current)
    logical;
  if !current <> [] then records := List.rev !current :: !records;
  List.rev !records

let parse_line line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "malformed LDIF line: %S" line)
  | Some i ->
      let name = String.sub line 0 i in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      if String.length rest > 0 && rest.[0] = ':' then
        let v = String.trim (String.sub rest 1 (String.length rest - 1)) in
        Result.map (fun decoded -> (name, decoded)) (b64_decode v)
      else Ok (name, String.trim rest)

let entry_of_record lines =
  match lines with
  | [] -> Error "empty LDIF record"
  | dn_line :: attr_lines -> (
      match parse_line dn_line with
      | Error _ as e -> e
      | Ok (name, dn_value) when String.lowercase_ascii name = "dn" -> (
          match Dn.of_string dn_value with
          | Error _ as e -> e
          | Ok dn ->
              let rec collect acc = function
                | [] -> Ok (List.rev acc)
                | line :: rest -> (
                    match parse_line line with
                    | Error _ as e -> e
                    | Ok pair -> collect (pair :: acc) rest)
              in
              Result.map
                (fun pairs ->
                  Entry.make dn (List.map (fun (n, v) -> (n, [ v ])) pairs))
                (collect [] attr_lines))
      | Ok _ -> Error "LDIF record must start with dn:")

let entry_of_string s =
  match records_of_string s with
  | [ record ] -> entry_of_record record
  | [] -> Error "no LDIF record"
  | _ -> Error "expected a single LDIF record"

let entries_of_string s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | record :: rest -> (
        match entry_of_record record with
        | Error _ as e -> e
        | Ok entry -> go (entry :: acc) rest)
  in
  go [] (records_of_string s)
