lib/ldap/value.ml: Buffer Bytes Char Int String
