lib/ldap/backend.ml: Csn Dit Dn Entry Filter Index Int List Option Printf Query Schema Scope Update
