lib/ldap/sort_control.mli: Entry Schema
