lib/ldap/referral.ml: Dn Printf String
