lib/ldap/index.ml: Dn Entry Hashtbl List Map Option Schema Seq String Value
