lib/ldap/ber_codec.mli: Dn Entry Query
