lib/ldap/ber.mli: Dn Entry
