lib/ldap/csn.mli: Format
