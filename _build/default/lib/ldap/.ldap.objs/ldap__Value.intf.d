lib/ldap/value.mli:
