lib/ldap/query.mli: Dn Filter Format Scope
