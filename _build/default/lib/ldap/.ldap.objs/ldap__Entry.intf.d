lib/ldap/entry.mli: Dn Format Value
