lib/ldap/dit.ml: Dn Entry List Map Option String
