lib/ldap/dn.ml: Buffer Char Format List Map Printf Set String Value
