lib/ldap/update.ml: Csn Dn Entry Format
