lib/ldap/csn.ml: Format Int
