lib/ldap/server.mli: Backend Dn Query Update
