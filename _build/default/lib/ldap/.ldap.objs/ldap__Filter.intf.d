lib/ldap/filter.mli: Entry Format Schema
