lib/ldap/schema.mli: Value
