lib/ldap/ldif.ml: Buffer Char Dn Entry List Printf Result String Update
