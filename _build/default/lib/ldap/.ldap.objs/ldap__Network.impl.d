lib/ldap/network.ml: Ber Dn Hashtbl List Option Printf Query Referral Server
