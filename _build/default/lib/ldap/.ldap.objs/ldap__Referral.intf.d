lib/ldap/referral.mli: Dn
