lib/ldap/ber.ml: Dn Entry List String
