lib/ldap/update.mli: Csn Dn Entry Format
