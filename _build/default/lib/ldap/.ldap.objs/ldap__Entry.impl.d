lib/ldap/entry.ml: Dn Format Hashtbl List Map Option Printf String Value
