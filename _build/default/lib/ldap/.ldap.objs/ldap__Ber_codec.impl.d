lib/ldap/ber_codec.ml: Buffer Char Dn Entry Filter List Printf Query Result Scope String
