lib/ldap/schema.ml: Hashtbl List Map String Value
