lib/ldap/network.mli: Entry Query Server
