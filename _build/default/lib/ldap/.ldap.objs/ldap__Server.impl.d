lib/ldap/server.ml: Backend Dn Printf Query
