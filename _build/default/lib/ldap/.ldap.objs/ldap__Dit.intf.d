lib/ldap/dit.mli: Dn Entry
