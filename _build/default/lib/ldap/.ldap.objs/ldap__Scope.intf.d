lib/ldap/scope.mli: Format
