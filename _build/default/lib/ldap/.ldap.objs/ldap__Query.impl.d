lib/ldap/query.ml: Bool Dn Filter Format List Printf Scope Stdlib String
