lib/ldap/scope.ml: Format Int String
