lib/ldap/ldif.mli: Dn Entry Update
