lib/ldap/dn.mli: Format Map Set
