lib/ldap/sort_control.ml: Entry List Schema String Value
