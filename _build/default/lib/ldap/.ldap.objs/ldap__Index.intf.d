lib/ldap/index.mli: Dn Entry Schema
