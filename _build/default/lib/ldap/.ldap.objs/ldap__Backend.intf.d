lib/ldap/backend.mli: Csn Dit Dn Entry Query Schema Stdlib Update
