lib/ldap/filter.ml: Buffer Char Entry Format Int List Option Printf Schema Stdlib String Value
