(** Search scope of an LDAP search request (RFC 2251, section 4.5.1).

    The paper (section 4) relies on the total order
    [Base < One < Sub] when checking query containment, so the
    integer encoding used there (BASE=0, SINGLE LEVEL=1, SUBTREE=2) is
    exposed as {!to_int}. *)

type t =
  | Base  (** Only the base object itself. *)
  | One  (** Immediate children of the base object (single level). *)
  | Sub  (** The base object and its whole subtree. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_int : t -> int
(** [to_int s] is the paper's integer encoding: 0, 1 or 2. *)

val of_int : int -> t option
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val covers : outer:t -> inner:t -> bool
(** [covers ~outer ~inner] is [true] when a search with scope [outer]
    visits at least the entries visited by scope [inner] {e from the
    same base}.

    Note this is {e not} the paper's integer shortcut
    [to_int outer >= to_int inner]: a single-level scope does not
    visit the base entry itself (RFC 2251, section 4.5.1), so [One]
    does not cover [Base] even though 1 >= 0.  Algorithm QC as printed
    in the paper inherits that off-by-one; the property tests caught
    it against an enumeration oracle. *)
