module Smap = Map.Make (String)

type node = { entry : Entry.t; kids : node Smap.t }

type t = { suffix : Dn.t; root : node; count : int }

type error =
  | No_such_object of Dn.t
  | Already_exists of Dn.t
  | Not_a_leaf of Dn.t
  | No_such_parent of Dn.t
  | Not_in_context of Dn.t

let error_to_string = function
  | No_such_object dn -> "no such object: " ^ Dn.to_string dn
  | Already_exists dn -> "entry already exists: " ^ Dn.to_string dn
  | Not_a_leaf dn -> "entry is not a leaf: " ^ Dn.to_string dn
  | No_such_parent dn -> "parent does not exist: " ^ Dn.to_string dn
  | Not_in_context dn -> "DN outside this naming context: " ^ Dn.to_string dn

let create entry =
  { suffix = Entry.dn entry; root = { entry; kids = Smap.empty }; count = 1 }

let suffix t = t.suffix
let size t = t.count
let contains_dn t dn = Dn.ancestor_of t.suffix dn

(* Path from the context root down to [dn]: RDN keys root-most first. *)
let path_of t dn =
  match Dn.relative_to ~ancestor:t.suffix dn with
  | None -> None
  | Some rdns -> Some (List.rev_map Dn.rdn_canonical rdns)

let rec descend node = function
  | [] -> Some node
  | key :: rest -> (
      match Smap.find_opt key node.kids with
      | None -> None
      | Some child -> descend child rest)

let find_node t dn =
  match path_of t dn with None -> None | Some path -> descend t.root path

let find t dn = Option.map (fun n -> n.entry) (find_node t dn)

(* Rebuild the spine along [path], applying [f] to the node at the end.
   [f] receives [Some node] or [None] and returns the replacement (or
   [None] to delete).  Raises [Exit]-style via result in callers. *)
let rec update_at node path ~(f : node option -> (node option, error) result) :
    (node option, error) result =
  match path with
  | [] -> f (Some node)
  | key :: rest -> (
      match Smap.find_opt key node.kids with
      | None -> (
          match rest with
          | [] -> (
              match f None with
              | Error e -> Error e
              | Ok None -> Ok (Some node)
              | Ok (Some fresh) ->
                  Ok (Some { node with kids = Smap.add key fresh node.kids }))
          | _ :: _ -> Error (No_such_parent Dn.root))
      | Some child -> (
          match update_at child rest ~f with
          | Error e -> Error e
          | Ok None -> Ok (Some { node with kids = Smap.remove key node.kids })
          | Ok (Some child') ->
              Ok (Some { node with kids = Smap.add key child' node.kids })))

let add t entry =
  let dn = Entry.dn entry in
  match path_of t dn with
  | None -> Error (Not_in_context dn)
  | Some [] -> Error (Already_exists dn)
  | Some path -> (
      let parent_dn = Option.get (Dn.parent dn) in
      let f = function
        | Some _ -> Error (Already_exists dn)
        | None -> Ok (Some { entry; kids = Smap.empty })
      in
      match update_at t.root path ~f with
      | Error (No_such_parent _) -> Error (No_such_parent parent_dn)
      | Error e -> Error e
      | Ok None -> assert false
      | Ok (Some root) -> Ok { t with root; count = t.count + 1 })

let replace t entry =
  let dn = Entry.dn entry in
  match path_of t dn with
  | None -> Error (Not_in_context dn)
  | Some path -> (
      let f = function
        | None -> Error (No_such_object dn)
        | Some node -> Ok (Some { node with entry })
      in
      match update_at t.root path ~f with
      | Error (No_such_parent _) -> Error (No_such_object dn)
      | Error e -> Error e
      | Ok None -> assert false
      | Ok (Some root) -> Ok { t with root })

let delete t dn =
  match path_of t dn with
  | None -> Error (Not_in_context dn)
  | Some [] ->
      (* Deleting the suffix entry would leave no context. *)
      Error (Not_a_leaf dn)
  | Some path -> (
      let f = function
        | None -> Error (No_such_object dn)
        | Some node ->
            if Smap.is_empty node.kids then Ok None else Error (Not_a_leaf dn)
      in
      match update_at t.root path ~f with
      | Error (No_such_parent _) -> Error (No_such_object dn)
      | Error e -> Error e
      | Ok None -> assert false
      | Ok (Some root) -> Ok { t with root; count = t.count - 1 })

let children t dn =
  match find_node t dn with
  | None -> []
  | Some node -> Smap.fold (fun _ child acc -> child.entry :: acc) node.kids []

let rec fold_node node ~init ~f =
  let acc = f init node.entry in
  Smap.fold (fun _ child acc -> fold_node child ~init:acc ~f) node.kids acc

let fold_subtree t dn ~init ~f =
  match find_node t dn with
  | None -> init
  | Some node -> fold_node node ~init ~f

let fold t ~init ~f = fold_node t.root ~init ~f
let iter t ~f = fold t ~init:() ~f:(fun () e -> f e)
