type t = { host : string; dn : Dn.t option }

let make ~host ?dn () =
  match dn with
  | None -> Printf.sprintf "ldap://%s/" host
  | Some dn -> Printf.sprintf "ldap://%s/%s" host (Dn.to_string dn)

let parse url =
  let prefix = "ldap://" in
  let plen = String.length prefix in
  if String.length url < plen || String.sub url 0 plen <> prefix then
    Error (Printf.sprintf "not an LDAP URL: %S" url)
  else
    let rest = String.sub url plen (String.length url - plen) in
    match String.index_opt rest '/' with
    | None -> Ok { host = rest; dn = None }
    | Some i -> (
        let host = String.sub rest 0 i in
        let dn_s = String.sub rest (i + 1) (String.length rest - i - 1) in
        if dn_s = "" then Ok { host; dn = None }
        else
          match Dn.of_string dn_s with
          | Ok dn -> Ok { host; dn = Some dn }
          | Error e -> Error e)

let parse_exn url =
  match parse url with Ok t -> t | Error e -> invalid_arg ("Referral.parse_exn: " ^ e)
