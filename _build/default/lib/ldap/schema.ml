module Smap = Map.Make (String)

type attribute_type = {
  at_name : string;
  at_aliases : string list;
  at_syntax : Value.syntax;
  at_single_value : bool;
}

type object_class = {
  oc_name : string;
  oc_sup : string option;
  oc_must : string list;
  oc_may : string list;
}

type t = { attrs : attribute_type Smap.t; classes : object_class Smap.t }

let empty = { attrs = Smap.empty; classes = Smap.empty }
let key = String.lowercase_ascii

let add_attribute t at =
  let attrs =
    List.fold_left
      (fun m name -> Smap.add (key name) at m)
      t.attrs (at.at_name :: at.at_aliases)
  in
  { t with attrs }

let add_object_class t oc = { t with classes = Smap.add (key oc.oc_name) oc t.classes }
let attribute_type t name = Smap.find_opt (key name) t.attrs

let syntax_of t name =
  match attribute_type t name with
  | Some at -> at.at_syntax
  | None -> Value.Case_ignore

let is_single_valued t name =
  match attribute_type t name with Some at -> at.at_single_value | None -> false

let object_class t name = Smap.find_opt (key name) t.classes

(* Walk the superclass chain, accumulating with [f]; chains are short
   and acyclic in any sane schema, but guard against cycles anyway. *)
let fold_class_chain t name f acc =
  let rec go seen name acc =
    if List.mem (key name) seen then acc
    else
      match object_class t name with
      | None -> acc
      | Some oc ->
          let acc = f oc acc in
          (match oc.oc_sup with
          | None -> acc
          | Some sup -> go (key name :: seen) sup acc)
  in
  go [] name acc

let dedup names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      let k = key n in
      if Hashtbl.mem seen k then false else (Hashtbl.add seen k (); true))
    names

let required_attributes t name =
  dedup (fold_class_chain t name (fun oc acc -> acc @ oc.oc_must) [])

let allowed_attributes t name =
  dedup (fold_class_chain t name (fun oc acc -> acc @ oc.oc_must @ oc.oc_may) [])

let canonical_attr t name =
  match attribute_type t name with
  | Some at -> key at.at_name
  | None -> key name

let at ?(aliases = []) ?(single = false) name syntax =
  { at_name = name; at_aliases = aliases; at_syntax = syntax; at_single_value = single }

let oc ?sup ?(must = []) ?(may = []) name =
  { oc_name = name; oc_sup = sup; oc_must = must; oc_may = may }

let default =
  let attrs =
    [
      at "objectClass" Value.Case_ignore;
      at "cn" ~aliases:[ "commonName" ] Value.Case_ignore;
      at "sn" ~aliases:[ "surname" ] Value.Case_ignore;
      at "givenName" Value.Case_ignore;
      at "uid" ~aliases:[ "userid" ] Value.Case_ignore;
      at "mail" ~aliases:[ "rfc822Mailbox" ] Value.Case_ignore;
      at "telephoneNumber" Value.Telephone;
      at "serialNumber" ~single:true Value.Case_ignore;
      at "employeeNumber" ~single:true Value.Case_ignore;
      at "departmentNumber" ~aliases:[ "dept" ] Value.Case_ignore;
      at "divisionNumber" ~aliases:[ "div" ] Value.Case_ignore;
      at "location" ~single:true Value.Case_ignore;
      at "buildingName" Value.Case_ignore;
      at "roomNumber" Value.Case_ignore;
      at "title" Value.Case_ignore;
      at "employeeType" Value.Case_ignore;
      at "manager" Value.Case_ignore;
      at "age" ~single:true Value.Integer;
      at "ou" ~aliases:[ "organizationalUnitName" ] Value.Case_ignore;
      at "o" ~aliases:[ "organizationName" ] Value.Case_ignore;
      at "c" ~aliases:[ "countryName" ] ~single:true Value.Case_ignore;
      at "l" ~aliases:[ "localityName" ] Value.Case_ignore;
      at "dc" ~aliases:[ "domainComponent" ] ~single:true Value.Case_ignore;
      at "description" Value.Case_ignore;
      at "postalAddress" Value.Case_ignore;
      at "postalCode" Value.Case_ignore;
      at "ref" Value.Case_exact;
      at "seeAlso" Value.Case_ignore;
      at "displayName" ~single:true Value.Case_ignore;
      at "preferredLanguage" ~single:true Value.Case_ignore;
      at "modifyTimestamp" ~single:true Value.Case_ignore;
    ]
  in
  let classes =
    [
      oc "top" ~must:[ "objectClass" ];
      oc "person" ~sup:"top" ~must:[ "cn"; "sn" ]
        ~may:[ "telephoneNumber"; "description"; "seeAlso" ];
      oc "organizationalPerson" ~sup:"person"
        ~may:[ "ou"; "title"; "postalAddress"; "postalCode"; "l"; "roomNumber" ];
      oc "inetOrgPerson" ~sup:"organizationalPerson"
        ~may:
          [
            "uid"; "mail"; "givenName"; "displayName"; "employeeNumber";
            "employeeType"; "departmentNumber"; "divisionNumber";
            "serialNumber"; "manager"; "location"; "preferredLanguage";
            "buildingName"; "age";
          ];
      oc "organization" ~sup:"top" ~must:[ "o" ]
        ~may:[ "description"; "telephoneNumber"; "postalAddress"; "l" ];
      oc "organizationalUnit" ~sup:"top" ~must:[ "ou" ]
        ~may:
          [
            "description"; "telephoneNumber"; "postalAddress"; "l";
            "divisionNumber"; "departmentNumber"; "location";
          ];
      oc "country" ~sup:"top" ~must:[ "c" ] ~may:[ "description" ];
      oc "locality" ~sup:"top"
        ~may:[ "l"; "description"; "location"; "buildingName" ];
      oc "domain" ~sup:"top" ~must:[ "dc" ] ~may:[ "description" ];
      oc "referral" ~sup:"top" ~must:[ "ref" ];
      oc "extensibleObject" ~sup:"top";
    ]
  in
  let t = List.fold_left add_attribute empty attrs in
  List.fold_left add_object_class t classes
