type stats = {
  round_trips : int;
  entry_pdus : int;
  referral_pdus : int;
  bytes : int;
}

type node = Full_server of Server.t | Handler of (Query.t -> Server.response)

type t = {
  servers : (string, node) Hashtbl.t;
  mutable round_trips : int;
  mutable entry_pdus : int;
  mutable referral_pdus : int;
  mutable bytes : int;
}

let create () =
  { servers = Hashtbl.create 8; round_trips = 0; entry_pdus = 0; referral_pdus = 0; bytes = 0 }

let add_server t s = Hashtbl.replace t.servers (Server.name s) (Full_server s)
let add_handler t ~name handler = Hashtbl.replace t.servers name (Handler handler)

let server t name =
  match Hashtbl.find_opt t.servers name with
  | Some (Full_server s) -> Some s
  | Some (Handler _) | None -> None

let stats t =
  {
    round_trips = t.round_trips;
    entry_pdus = t.entry_pdus;
    referral_pdus = t.referral_pdus;
    bytes = t.bytes;
  }

let reset_stats t =
  t.round_trips <- 0;
  t.entry_pdus <- 0;
  t.referral_pdus <- 0;
  t.bytes <- 0

let account_response t (resp : Server.response) =
  t.round_trips <- t.round_trips + 1;
  t.bytes <- t.bytes + Ber.message_overhead;
  match resp with
  | Server.Entries { entries; references } ->
      t.entry_pdus <- t.entry_pdus + List.length entries;
      t.referral_pdus <- t.referral_pdus + List.length references;
      List.iter (fun e -> t.bytes <- t.bytes + Ber.entry_size e) entries;
      List.iter (fun urls -> t.bytes <- t.bytes + Ber.referral_size urls) references
  | Server.Referral urls ->
      t.referral_pdus <- t.referral_pdus + 1;
      t.bytes <- t.bytes + Ber.referral_size urls
  | Server.Failure _ -> ()

let send t ~host q =
  match Hashtbl.find_opt t.servers host with
  | None -> Server.Failure (Printf.sprintf "unknown host: %s" host)
  | Some node ->
      let resp =
        match node with
        | Full_server s -> Server.handle_search s q
        | Handler h -> h q
      in
      account_response t resp;
      resp

let search_no_chase t ~from q = send t ~host:from q

let max_hops = 32

let search t ~from (q : Query.t) =
  (* Work queue of (host, query, origin); a revisit while chasing a
     referral is a loop (error), a revisit through a continuation
     reference is a benign duplicate (skipped). *)
  let visited = Hashtbl.create 16 in
  let key host (q : Query.t) = host ^ "|" ^ Dn.canonical q.base in
  let rec go acc hops = function
    | [] -> Ok acc
    | (host, q, origin) :: rest ->
        if hops > max_hops then Error "referral limit exceeded"
        else if Hashtbl.mem visited (key host q) then
          if origin = `Chase then Error "referral loop detected"
          else go acc hops rest
        else begin
          Hashtbl.add visited (key host q) ();
          match send t ~host q with
          | Server.Failure msg -> Error msg
          | Server.Referral urls -> (
              match pick_url urls with
              | Error e -> Error e
              | Ok { Referral.host = next; dn } ->
                  let q' =
                    match dn with Some base -> { q with base } | None -> q
                  in
                  go acc (hops + 1) ((next, q', `Chase) :: rest))
          | Server.Entries { entries; references } ->
              let follow_ups =
                List.filter_map
                  (fun urls ->
                    match pick_url urls with
                    | Error _ -> None
                    | Ok { Referral.host; dn } ->
                        let base = Option.value ~default:q.base dn in
                        (* Continuation reference: modified base, same
                           scope and filter (Figure 2). *)
                        Some (host, { q with base }, `Reference))
                  references
              in
              go (acc @ entries) (hops + 1) (follow_ups @ rest)
        end
  and pick_url = function
    | [] -> Error "empty referral"
    | url :: _ -> Referral.parse url
  in
  go [] 0 [ (from, q, `Reference) ]
