(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic component of the simulation draws from an
    explicitly seeded generator, so directories, workloads and
    experiments are reproducible bit-for-bit across runs and
    machines.  Nothing in the repository uses the global [Random]
    state or the wall clock. *)

type t

val create : int -> t
(** Generator seeded from an integer. *)

val copy : t -> t
val split : t -> t
(** Child generator with an independent stream. *)

val next : t -> int64
val int : t -> int -> int
(** [int t bound] in [[0, bound)]; requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] inclusive range. *)

val float : t -> float -> float
(** [float t bound] in [[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element; requires a non-empty array. *)

val pick_list : t -> 'a list -> 'a
val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val weighted : t -> ('a * float) list -> 'a
(** Sample proportionally to non-negative weights (sum > 0). *)
