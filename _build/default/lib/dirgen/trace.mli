(** Workload traces: a line-oriented text format for query workloads.

    The paper evaluated on real two-day traces; this module lets users
    capture generated workloads or bring their own.  One query per
    line, tab-separated:

    {v kind <TAB> scope <TAB> base DN <TAB> filter <TAB> scoped base v}

    [#]-prefixed lines are comments.  The scoped base is the subtree
    the query would be scoped to for the subtree-replica baseline; use
    the base DN again when there is no better choice. *)

val save : out_channel -> Workload.item array -> unit
val to_string : Workload.item array -> string

val load : in_channel -> (Workload.item array, string) result
val of_string : string -> (Workload.item array, string) result

val kind_of_name : string -> Workload.kind option
