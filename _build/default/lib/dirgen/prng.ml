type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (next t) in
  { state = Int64.of_int seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Shift by 2 so the value fits OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t p = float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l = pick t (Array.of_list l)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let weighted t items =
  let total = List.fold_left (fun acc (_, w) -> acc +. max 0.0 w) 0.0 items in
  if total <= 0.0 then invalid_arg "Prng.weighted: total weight must be positive";
  let target = float t total in
  let rec go acc = function
    | [] -> fst (List.hd (List.rev items))
    | (x, w) :: rest ->
        let acc = acc +. max 0.0 w in
        if target < acc then x else go acc rest
  in
  go 0.0 items
