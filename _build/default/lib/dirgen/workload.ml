open Ldap

type kind = Serial | Mail | Dept | Location

type item = { kind : kind; query : Query.t; scoped : Query.t }

type config = {
  seed : int;
  length : int;
  serial_pct : float;
  mail_pct : float;
  dept_pct : float;
  location_pct : float;
  geo_bias : float;
  block_digits : int;
  block_zipf_s : float;
  dept_zipf_s : float;
  repeat_p : float;
  repeat_window : int;
  dept_drift_every : int;
}

let default_config =
  {
    seed = 7;
    length = 20_000;
    serial_pct = 0.58;
    mail_pct = 0.24;
    dept_pct = 0.16;
    location_pct = 0.02;
    geo_bias = 0.75;
    block_digits = 1;
    block_zipf_s = 0.9;
    dept_zipf_s = 1.0;
    repeat_p = 0.18;
    repeat_window = 100;
    dept_drift_every = 2_500;
  }

let kind_name = function
  | Serial -> "serialNumber"
  | Mail -> "mail"
  | Dept -> "department"
  | Location -> "location"

let serial_block_prefix config serial =
  let n = String.length serial in
  String.sub serial 0 (max 1 (n - config.block_digits))

let eq attr v = Filter.Pred (Filter.Equality (attr, v))

let generate enterprise config =
  let prng = Prng.create config.seed in
  let root = Enterprise.root_dn enterprise in
  let n_countries = (Enterprise.config enterprise).Enterprise.countries in
  let n_target = (Enterprise.config enterprise).Enterprise.target_countries in
  let block_size =
    int_of_float (Float.pow 10.0 (float_of_int config.block_digits))
  in
  (* Per-country Zipf over serial blocks. *)
  let block_zipfs =
    Array.init n_countries (fun ci ->
        let n = Array.length (Enterprise.employees_of_country enterprise ci) in
        let blocks = max 1 ((n + block_size - 1) / block_size) in
        Zipf.create ~s:config.block_zipf_s blocks)
  in
  (* Shuffled block ranks: the popular blocks should not always be the
     first serials of every country. *)
  let block_order =
    Array.init n_countries (fun ci ->
        let order = Array.init (Zipf.size block_zipfs.(ci)) (fun i -> i) in
        Prng.shuffle prng order;
        order)
  in
  let dept_zipf =
    Zipf.create ~s:config.dept_zipf_s (Array.length (Enterprise.dept_numbers enterprise))
  in
  let dept_order =
    let order = Array.init (Array.length (Enterprise.dept_numbers enterprise)) (fun i -> i) in
    Prng.shuffle prng order;
    order
  in
  (* Department popularity drifts over time: periodically a slice of
     hot departments trades places with cold ones, so a replica must
     keep adapting (the revolution-interval trade-off of Figures 5/7). *)
  let drift_depts () =
    let n = Array.length dept_order in
    for _ = 1 to max 1 (n / 8) do
      let i = Prng.int prng (max 1 (n / 5)) in
      let j = Prng.int prng n in
      let tmp = dept_order.(i) in
      dept_order.(i) <- dept_order.(j);
      dept_order.(j) <- tmp
    done
  in
  let loc_zipf =
    Zipf.create ~s:1.0 (Array.length (Enterprise.location_names enterprise))
  in
  let pick_country () =
    if Prng.bool prng config.geo_bias then Prng.int prng n_target
    else if n_countries > n_target then n_target + Prng.int prng (n_countries - n_target)
    else Prng.int prng n_countries
  in
  let pick_employee () =
    let ci = pick_country () in
    let emps = Enterprise.employees_of_country enterprise ci in
    let rank = Zipf.sample block_zipfs.(ci) prng in
    let block = block_order.(ci).(rank) in
    let lo = block * block_size in
    let hi = min (Array.length emps - 1) ((lo + block_size) - 1) in
    emps.(Prng.int_in prng lo hi)
  in
  (* Mail lookups carry no block structure: any employee of the chosen
     country is equally likely, so only temporal locality remains
     (section 7.2(c)). *)
  let pick_employee_flat () =
    let ci = pick_country () in
    let emps = Enterprise.employees_of_country enterprise ci in
    emps.(Prng.int prng (Array.length emps))
  in
  let fresh_item kind =
    match kind with
    | Serial ->
        let e = pick_employee () in
        let filter = eq "serialNumber" e.Enterprise.emp_serial in
        {
          kind;
          query = Query.make ~base:root filter;
          scoped =
            Query.make
              ~base:(Enterprise.country_dn enterprise e.Enterprise.emp_country)
              filter;
        }
    | Mail ->
        let e = pick_employee_flat () in
        let filter = eq "mail" e.Enterprise.emp_mail in
        {
          kind;
          query = Query.make ~base:root filter;
          scoped =
            Query.make
              ~base:(Enterprise.country_dn enterprise e.Enterprise.emp_country)
              filter;
        }
    | Dept ->
        let rank = Zipf.sample dept_zipf prng in
        let number = (Enterprise.dept_numbers enterprise).(dept_order.(rank)) in
        let division = int_of_string (String.sub number 0 2) in
        let filter =
          Filter.And
            [
              eq "departmentNumber" number;
              eq "divisionNumber" (Printf.sprintf "%02d" division);
            ]
        in
        {
          kind;
          query = Query.make ~base:root filter;
          scoped = Query.make ~base:(Enterprise.division_dn enterprise division) filter;
        }
    | Location ->
        let rank = Zipf.sample loc_zipf prng in
        let name = (Enterprise.location_names enterprise).(rank) in
        let filter = eq "location" name in
        {
          kind;
          query = Query.make ~base:root filter;
          scoped = Query.make ~base:(Enterprise.locations_dn enterprise) filter;
        }
  in
  let recent = Array.make (max 1 config.repeat_window) None in
  let recent_count = ref 0 in
  let items =
    Array.init config.length (fun i ->
        if config.dept_drift_every > 0 && i > 0 && i mod config.dept_drift_every = 0
        then drift_depts ();
        let repeat =
          !recent_count > 0 && Prng.bool prng config.repeat_p
        in
        let item =
          if repeat then
            let j = Prng.int prng (min !recent_count (Array.length recent)) in
            match recent.(j) with Some it -> it | None -> assert false
          else
            let kind =
              Prng.weighted prng
                [
                  (Serial, config.serial_pct);
                  (Mail, config.mail_pct);
                  (Dept, config.dept_pct);
                  (Location, config.location_pct);
                ]
            in
            fresh_item kind
        in
        recent.(i mod Array.length recent) <- Some item;
        if !recent_count < Array.length recent then incr recent_count;
        item)
  in
  items

let mix_of items =
  let total = float_of_int (Array.length items) in
  let count k =
    float_of_int (Array.fold_left (fun acc i -> if i.kind = k then acc + 1 else acc) 0 items)
  in
  List.map
    (fun k -> (k, count k /. total))
    [ Serial; Mail; Dept; Location ]
