open Ldap

let kind_of_name s =
  match String.lowercase_ascii s with
  | "serialnumber" | "serial" -> Some Workload.Serial
  | "mail" -> Some Workload.Mail
  | "department" | "dept" -> Some Workload.Dept
  | "location" -> Some Workload.Location
  | _ -> None

let item_line (item : Workload.item) =
  let q = item.Workload.query in
  Printf.sprintf "%s\t%s\t%s\t%s\t%s"
    (Workload.kind_name item.Workload.kind)
    (Scope.to_string q.Query.scope)
    (Dn.to_string q.Query.base)
    (Filter.to_string q.Query.filter)
    (Dn.to_string item.Workload.scoped.Query.base)

let to_string items =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# kind\tscope\tbase\tfilter\tscoped-base\n";
  Array.iter
    (fun item ->
      Buffer.add_string buf (item_line item);
      Buffer.add_char buf '\n')
    items;
  Buffer.contents buf

let save oc items = output_string oc (to_string items)

let parse_line lineno line =
  match String.split_on_char '\t' line with
  | [ kind_s; scope_s; base_s; filter_s; scoped_s ] -> (
      match
        ( kind_of_name kind_s,
          Scope.of_string scope_s,
          Dn.of_string base_s,
          Filter.of_string filter_s,
          Dn.of_string scoped_s )
      with
      | Some kind, Some scope, Ok base, Ok filter, Ok scoped_base ->
          Ok
            {
              Workload.kind;
              query = Query.make ~scope ~base filter;
              scoped = Query.make ~scope ~base:scoped_base filter;
            }
      | None, _, _, _, _ -> Error (Printf.sprintf "line %d: unknown kind %S" lineno kind_s)
      | _, None, _, _, _ -> Error (Printf.sprintf "line %d: bad scope %S" lineno scope_s)
      | _, _, Error e, _, _ | _, _, _, _, Error e ->
          Error (Printf.sprintf "line %d: %s" lineno e)
      | _, _, _, Error e, _ -> Error (Printf.sprintf "line %d: %s" lineno e))
  | _ -> Error (Printf.sprintf "line %d: expected 5 tab-separated fields" lineno)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc (lineno + 1) rest
        else (
          match parse_line lineno line with
          | Error _ as e -> e
          | Ok item -> go (item :: acc) (lineno + 1) rest)
  in
  go [] 1 lines

let load ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  of_string (Buffer.contents buf)
