open Ldap

type config = {
  seed : int;
  modify_phone_w : float;
  modify_mail_w : float;
  add_employee_w : float;
  delete_employee_w : float;
  rename_employee_w : float;
  modify_dept_entry_w : float;
}

let default_config =
  {
    seed = 11;
    modify_phone_w = 0.45;
    modify_mail_w = 0.20;
    add_employee_w = 0.14;
    delete_employee_w = 0.14;
    rename_employee_w = 0.05;
    modify_dept_entry_w = 0.02;
  }

type live = { mutable dn : Dn.t; country : int }

type t = {
  enterprise : Enterprise.t;
  config : config;
  prng : Prng.t;
  mutable live : live array;  (* compacted on delete *)
  mutable live_count : int;
  next_seq : int array;  (* per country, for hires *)
  mutable applied : int;
}

let create enterprise config =
  let emps = Enterprise.employees enterprise in
  let live =
    Array.map
      (fun (e : Enterprise.employee) ->
        { dn = e.Enterprise.emp_dn; country = e.Enterprise.emp_country })
      emps
  in
  let countries = (Enterprise.config enterprise).Enterprise.countries in
  let next_seq = Array.make countries 0 in
  Array.iter
    (fun (e : Enterprise.employee) ->
      next_seq.(e.Enterprise.emp_country) <-
        max next_seq.(e.Enterprise.emp_country) (e.Enterprise.emp_seq + 1))
    emps;
  {
    enterprise;
    config;
    prng = Prng.create config.seed;
    live;
    live_count = Array.length live;
    next_seq;
    applied = 0;
  }

type op_kind = Phone | MailMod | Hire | Leave | Rename | DeptMod

let pick_live t =
  if t.live_count = 0 then None
  else Some (Prng.int t.prng t.live_count)

let remove_live t i =
  t.live.(i) <- t.live.(t.live_count - 1);
  t.live_count <- t.live_count - 1

let add_live t entry_dn country =
  if t.live_count >= Array.length t.live then begin
    let bigger = Array.make (max 16 (2 * Array.length t.live)) { dn = entry_dn; country } in
    Array.blit t.live 0 bigger 0 t.live_count;
    t.live <- bigger
  end;
  t.live.(t.live_count) <- { dn = entry_dn; country };
  t.live_count <- t.live_count + 1

let backend t = Enterprise.backend t.enterprise

let apply t op =
  match Backend.apply (backend t) op with
  | Ok _ ->
      t.applied <- t.applied + 1;
      true
  | Error _ -> false

let hire t =
  let countries = (Enterprise.config t.enterprise).Enterprise.countries in
  let ci = Prng.int t.prng countries in
  let seq = t.next_seq.(ci) in
  t.next_seq.(ci) <- seq + 1;
  let given = Namegen.given_name t.prng and sur = Namegen.surname t.prng in
  let serial = Namegen.serial ~country_index:ci ~seq in
  let code = Enterprise.country_code t.enterprise ci in
  let local = Namegen.mail_local_part t.prng ~given ~sur ~seq in
  let cn = Printf.sprintf "%s %s %s" given sur serial in
  let dn = Dn.child_ava (Enterprise.country_dn t.enterprise ci) "cn" cn in
  let divisions = (Enterprise.config t.enterprise).Enterprise.divisions in
  let dpd = (Enterprise.config t.enterprise).Enterprise.departments_per_division in
  let dept = Printf.sprintf "%02d%02d" (Prng.int t.prng divisions) (Prng.int t.prng dpd) in
  let entry =
    Entry.make dn
      [
        ("objectclass", [ "inetOrgPerson" ]);
        ("cn", [ cn ]);
        ("sn", [ sur ]);
        ("givenName", [ given ]);
        ("mail", [ Printf.sprintf "%s@%s.xyz.com" local code ]);
        ("serialNumber", [ serial ]);
        ("departmentNumber", [ dept ]);
        ("telephoneNumber",
         [ Printf.sprintf "%03d-%04d" (Prng.int t.prng 1000) (Prng.int t.prng 10000) ]);
      ]
  in
  if apply t (Update.add entry) then add_live t dn ci

let step t =
  let kind =
    Prng.weighted t.prng
      [
        (Phone, t.config.modify_phone_w);
        (MailMod, t.config.modify_mail_w);
        (Hire, t.config.add_employee_w);
        (Leave, t.config.delete_employee_w);
        (Rename, t.config.rename_employee_w);
        (DeptMod, t.config.modify_dept_entry_w);
      ]
  in
  match kind with
  | Hire -> hire t
  | Phone -> (
      match pick_live t with
      | None -> hire t
      | Some i ->
          let phone =
            Printf.sprintf "%03d-%04d" (Prng.int t.prng 1000) (Prng.int t.prng 10000)
          in
          ignore
            (apply t
               (Update.modify t.live.(i).dn [ Update.replace_values "telephoneNumber" [ phone ] ])))
  | MailMod -> (
      match pick_live t with
      | None -> hire t
      | Some i ->
          let code = Enterprise.country_code t.enterprise t.live.(i).country in
          let fresh =
            Printf.sprintf "m%06x@%s.xyz.com" (Prng.int t.prng 0xFFFFFF) code
          in
          ignore
            (apply t (Update.modify t.live.(i).dn [ Update.replace_values "mail" [ fresh ] ])))
  | Leave -> (
      match pick_live t with
      | None -> hire t
      | Some i ->
          if apply t (Update.delete t.live.(i).dn) then remove_live t i)
  | Rename -> (
      match pick_live t with
      | None -> hire t
      | Some i -> (
          let old_dn = t.live.(i).dn in
          let fresh_cn = Printf.sprintf "renamed %06d" (Prng.int t.prng 1_000_000) in
          match Dn.rdn_of_string ("cn=" ^ fresh_cn) with
          | Error _ -> ()
          | Ok rdn ->
              if apply t (Update.modify_dn old_dn rdn) then
                t.live.(i).dn <-
                  Dn.child (Option.value ~default:old_dn (Dn.parent old_dn)) rdn))
  | DeptMod ->
      let depts = Enterprise.dept_numbers t.enterprise in
      let number = depts.(Prng.int t.prng (Array.length depts)) in
      let division = int_of_string (String.sub number 0 2) in
      let dn =
        Dn.child_ava (Enterprise.division_dn t.enterprise division) "ou" ("dept-" ^ number)
      in
      ignore
        (apply t
           (Update.modify dn
              [ Update.replace_values "description"
                  [ Printf.sprintf "department %s rev %d" number (Prng.int t.prng 1000) ] ]))

let steps t n =
  for _ = 1 to n do
    step t
  done

let applied t = t.applied
let live_employees t = t.live_count
