(** Deterministic generation of person names, serial numbers and mail
    addresses for the synthetic enterprise directory. *)

val given_name : Prng.t -> string
val surname : Prng.t -> string

val serial : country_index:int -> seq:int -> string
(** Organized serial numbers: a country-block prefix followed by a
    zero-padded sequence, e.g. country 7, seq 123 -> "0700123".  The
    fixed-width layout is what makes prefix filters
    (serialNumber=07001...) describe contiguous blocks. *)

val mail_local_part : Prng.t -> given:string -> sur:string -> seq:int -> string
(** Unorganized local part: a name-derived token plus a pseudo-random
    disambiguator, so mail prefixes do {e not} form meaningful blocks
    (the section 7.2(c) observation that filter caching cannot
    describe the mail access pattern). *)

val uid : country_index:int -> seq:int -> string
