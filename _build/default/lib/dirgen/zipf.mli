(** Zipf-distributed sampling over ranks [0 .. n-1].

    Rank 0 is the most popular item.  Used to model the skewed access
    patterns (semantic locality) of the enterprise workload: a few
    serial-number blocks, departments and locations receive most of
    the accesses. *)

type t

val create : ?s:float -> int -> t
(** [create ~s n] over [n] ranks with exponent [s] (default 1.0).
    Requires [n > 0]. *)

val size : t -> int
val sample : t -> Prng.t -> int
(** A rank in [[0, n)], lower ranks more likely. *)

val probability : t -> int -> float
(** Probability mass of a rank. *)
