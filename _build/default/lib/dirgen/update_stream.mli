(** Master update stream for the update-traffic experiments
    (section 7.3).

    Applies a deterministic mix of update operations to the enterprise
    master: telephone/mail modifications, employee hires (add),
    departures (delete) and renames, plus rare department-entry
    updates (the paper notes department entries have a very low update
    rate).  The stream tracks the live employee population so every
    generated operation is valid. *)


type config = {
  seed : int;
  modify_phone_w : float;
  modify_mail_w : float;
  add_employee_w : float;
  delete_employee_w : float;
  rename_employee_w : float;
  modify_dept_entry_w : float;
}

val default_config : config
(** Phone 0.45, mail 0.20, add 0.14, delete 0.14, rename 0.05,
    department 0.02; seed 11. *)

type t

val create : Enterprise.t -> config -> t
val step : t -> unit
(** Applies one update to the master backend. *)

val steps : t -> int -> unit
val applied : t -> int
val live_employees : t -> int
