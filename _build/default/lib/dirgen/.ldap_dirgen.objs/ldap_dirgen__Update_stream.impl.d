lib/dirgen/update_stream.ml: Array Backend Dn Enterprise Entry Ldap Namegen Option Printf Prng String Update
