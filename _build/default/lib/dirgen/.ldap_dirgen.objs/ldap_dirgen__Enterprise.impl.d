lib/dirgen/enterprise.ml: Array Backend Char Csn Dn Entry Ldap List Namegen Printf Prng Schema Update
