lib/dirgen/workload.mli: Enterprise Ldap Query
