lib/dirgen/trace.mli: Workload
