lib/dirgen/enterprise.mli: Backend Dn Ldap Schema
