lib/dirgen/zipf.mli: Prng
