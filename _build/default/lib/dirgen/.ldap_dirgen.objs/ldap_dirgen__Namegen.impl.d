lib/dirgen/namegen.ml: Hashtbl Printf Prng String
