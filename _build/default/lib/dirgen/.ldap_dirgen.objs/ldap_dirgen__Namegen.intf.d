lib/dirgen/namegen.mli: Prng
