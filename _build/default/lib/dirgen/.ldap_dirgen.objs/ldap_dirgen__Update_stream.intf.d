lib/dirgen/update_stream.mli: Enterprise
