lib/dirgen/workload.ml: Array Enterprise Filter Float Ldap List Printf Prng Query String Zipf
