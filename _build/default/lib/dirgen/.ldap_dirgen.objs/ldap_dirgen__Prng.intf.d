lib/dirgen/prng.mli:
