lib/dirgen/zipf.ml: Array Float Prng
