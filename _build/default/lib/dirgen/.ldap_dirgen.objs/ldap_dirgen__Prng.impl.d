lib/dirgen/prng.ml: Array Int64 List
