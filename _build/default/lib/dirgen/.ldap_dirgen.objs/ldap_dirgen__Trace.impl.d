lib/dirgen/trace.ml: Array Buffer Dn Filter Ldap List Printf Query Scope String Workload
