(** Query workload generator matching Table 1.

    Four query types with the paper's mix (serialNumber 58%, mail 24%,
    department 16%, location 2%) and three forms of locality:

    - {e spatial/semantic}: person lookups are biased toward the
      replica's geography ([geo_bias]) and, within a country, follow a
      Zipf distribution over serial-number {e blocks} — the regions
      the generalized prefix filters describe;
    - {e temporal}: with probability [repeat_p] a query repeats one of
      the last [repeat_window] queries, which is what the user-query
      cache window exploits (section 7.4);
    - department and location accesses are Zipf-skewed (not all
      departments of a division are accessed uniformly —
      section 7.2(b)).

    Every item carries both the root-based query that minimally
    directory-enabled applications issue (base = directory root,
    section 3.1.1) and a scoped variant (base = the country/division/
    location subtree), which is the generous form subtree replicas are
    evaluated against. *)

open Ldap

type kind = Serial | Mail | Dept | Location

type item = { kind : kind; query : Query.t; scoped : Query.t }

type config = {
  seed : int;
  length : int;
  serial_pct : float;
  mail_pct : float;
  dept_pct : float;
  location_pct : float;
  geo_bias : float;  (** P(person access targets the geography). *)
  block_digits : int;  (** Trailing serial digits that vary in a block:
                           2 -> blocks of 100 consecutive serials. *)
  block_zipf_s : float;
  dept_zipf_s : float;
  repeat_p : float;
  repeat_window : int;
  dept_drift_every : int;
      (** Queries between department-popularity drifts (0 disables):
          hot departments periodically trade places with cold ones, so
          dynamic filter selection must keep adapting. *)
}

val default_config : config
(** Table 1 mix, geo_bias 0.75, blocks of 10 serials, block zipf 0.9,
    repeat 0.18 over a window of 100, length 20000, seed 7. *)

val generate : Enterprise.t -> config -> item array

val mix_of : item array -> (kind * float) list
(** Observed distribution (for reproducing Table 1). *)

val kind_name : kind -> string

val serial_block_prefix : config -> string -> string
(** The block prefix of a serial under this config — the value the
    generalized filters use. *)
