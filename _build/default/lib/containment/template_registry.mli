(** A registry of declared query templates with per-template statistics.

    Directory applications generate queries from a small set of
    prototypes (section 3.4.2), and deployments configure which of
    those a replica or proxy cache should handle — an {e admission
    policy}.  The registry classifies incoming queries against the
    declared templates, counts traffic per template (the data behind
    Table 1-style workload breakdowns), and rejects queries matching no
    template, which keeps the containment machinery bounded. *)

open Ldap

type t

type stats = {
  mutable observed : int;  (** Queries classified to this template. *)
  mutable admitted : int;  (** Of those, queries the caller admitted. *)
}

val create : Schema.t -> t

val declare : t -> Template.t -> unit
(** Registers a template; duplicates (same shape) are ignored. *)

val declare_strings : t -> string list -> (unit, string) result
(** Parses and declares each template string, e.g.
    [["(serialnumber=_)"; "(&(dept=_)(div=_))"]]. *)

val templates : t -> Template.t list

val classify : t -> Query.t -> Template.t option
(** First declared template the query's filter instantiates; counts the
    observation.  [None] for unclassifiable queries (also counted). *)

val admit : t -> Query.t -> bool
(** [classify] as a boolean, additionally counting an admission. *)

val unclassified : t -> int
val stats_of : t -> Template.t -> stats option

val report : t -> (string * stats) list
(** Template shape, observation and admission counts — declared order. *)
