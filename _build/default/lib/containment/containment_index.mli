(** Template-bucketed store of replicated queries.

    A filter-based replica must decide, for each incoming query,
    whether it is contained in {e some} stored query.  This structure
    implements the template optimizations of section 3.4.2:

    - stored queries are bucketed by their (fully generalized)
      template, so an incoming query is only compared against buckets
      whose template can potentially contain its own;
    - per template pair, the containment condition is compiled once
      ({!Symbolic.compile}) and cached; pairs whose condition is
      [Never] are skipped entirely;
    - within a bucket, checking a stored query evaluates the compiled
      CNF on the two assertion-value vectors — for same-template pairs
      this is Proposition 3's pointwise comparison.

    The structure counts value comparisons so the query-processing
    overhead claims of section 7.4 can be measured. *)

open Ldap

type 'a t

val create : Schema.t -> 'a t

val add : 'a t -> Query.t -> 'a -> unit
(** Stores a query with its payload.  A query equal to an existing one
    replaces its payload. *)

val remove : 'a t -> Query.t -> unit

val find : 'a t -> Query.t -> 'a option
(** Payload of the exact stored query (no containment), if present. *)

val mem : 'a t -> Query.t -> bool
val length : 'a t -> int
val clear : 'a t -> unit

val find_container : 'a t -> Query.t -> (Query.t * 'a) option
(** First stored query that semantically contains the argument
    (region, attributes and filter), or [None]. *)

val find_container_where :
  'a t -> Query.t -> pred:(Query.t -> 'a -> bool) -> (Query.t * 'a) option
(** Like {!find_container}, restricted to stored queries satisfying
    [pred] — e.g. only stored queries whose content carries the
    attributes the incoming filter needs. *)

val fold : 'a t -> init:'b -> f:('b -> Query.t -> 'a -> 'b) -> 'b
val iter : 'a t -> f:(Query.t -> 'a -> unit) -> unit

val comparisons : 'a t -> int
(** Cumulative number of stored-query checks performed by
    {!find_container} — the processing-cost metric of section 7.4. *)

val reset_comparisons : 'a t -> unit
