open Ldap

type stats = { mutable observed : int; mutable admitted : int }

type entry = { template : Template.t; stats : stats }

type t = {
  schema : Schema.t;
  mutable entries : entry list;  (* declared order *)
  mutable unclassified : int;
}

let create schema = { schema; entries = []; unclassified = 0 }

let declare t template =
  let key = Template.shape_key template in
  if not (List.exists (fun e -> Template.shape_key e.template = key) t.entries) then
    t.entries <- t.entries @ [ { template; stats = { observed = 0; admitted = 0 } } ]

let declare_strings t specs =
  List.fold_left
    (fun acc spec ->
      match acc with
      | Error _ as e -> e
      | Ok () -> (
          match Template.of_string spec with
          | Error _ as e -> e
          | Ok template ->
              declare t template;
              Ok ()))
    (Ok ()) specs

let templates t = List.map (fun e -> e.template) t.entries

let find t (q : Query.t) =
  List.find_opt
    (fun e -> Template.match_filter t.schema e.template q.Query.filter <> None)
    t.entries

let classify t q =
  match find t q with
  | Some e ->
      e.stats.observed <- e.stats.observed + 1;
      Some e.template
  | None ->
      t.unclassified <- t.unclassified + 1;
      None

let admit t q =
  match find t q with
  | Some e ->
      e.stats.observed <- e.stats.observed + 1;
      e.stats.admitted <- e.stats.admitted + 1;
      true
  | None ->
      t.unclassified <- t.unclassified + 1;
      false

let unclassified t = t.unclassified

let stats_of t template =
  let key = Template.shape_key template in
  Option.map
    (fun e -> e.stats)
    (List.find_opt (fun e -> Template.shape_key e.template = key) t.entries)

let report t = List.map (fun e -> (Template.shape_key e.template, e.stats)) t.entries
