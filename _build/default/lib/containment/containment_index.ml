open Ldap

type 'a stored = { query : Query.t; values : string array; payload : 'a }

type 'a bucket = {
  template : Template.t;
  mutable entries : 'a stored list;
}

type 'a t = {
  schema : Schema.t;
  buckets : (string, 'a bucket) Hashtbl.t;  (* shape key -> bucket *)
  conditions : (string * string, Symbolic.t option) Hashtbl.t;
      (* (incoming shape, stored shape) -> compiled condition *)
  mutable count : int;
  mutable comparisons : int;
}

let create schema =
  {
    schema;
    buckets = Hashtbl.create 64;
    conditions = Hashtbl.create 256;
    count = 0;
    comparisons = 0;
  }

let decompose t (q : Query.t) =
  let template = Template.of_filter q.Query.filter in
  match Template.match_filter t.schema template q.Query.filter with
  | Some values -> (template, values)
  | None ->
      (* A filter always matches its own full generalization. *)
      assert false

let add t q payload =
  let template, values = decompose t q in
  let key = Template.shape_key template in
  let bucket =
    match Hashtbl.find_opt t.buckets key with
    | Some b -> b
    | None ->
        let b = { template; entries = [] } in
        Hashtbl.replace t.buckets key b;
        b
  in
  let fresh = { query = q; values; payload } in
  let replaced = ref false in
  bucket.entries <-
    List.map
      (fun s ->
        if Query.equal s.query q then begin
          replaced := true;
          fresh
        end
        else s)
      bucket.entries;
  if not !replaced then begin
    bucket.entries <- fresh :: bucket.entries;
    t.count <- t.count + 1
  end

let remove t q =
  let template, _ = decompose t q in
  let key = Template.shape_key template in
  match Hashtbl.find_opt t.buckets key with
  | None -> ()
  | Some bucket ->
      let before = List.length bucket.entries in
      bucket.entries <- List.filter (fun s -> not (Query.equal s.query q)) bucket.entries;
      t.count <- t.count - (before - List.length bucket.entries);
      if bucket.entries = [] then Hashtbl.remove t.buckets key

let find t q =
  let template, _ = decompose t q in
  match Hashtbl.find_opt t.buckets (Template.shape_key template) with
  | None -> None
  | Some bucket ->
      List.find_map
        (fun s -> if Query.equal s.query q then Some s.payload else None)
        bucket.entries

let mem t q =
  let template, _ = decompose t q in
  match Hashtbl.find_opt t.buckets (Template.shape_key template) with
  | None -> false
  | Some bucket -> List.exists (fun s -> Query.equal s.query q) bucket.entries

let length t = t.count

let clear t =
  Hashtbl.reset t.buckets;
  t.count <- 0

let condition t ~incoming_key ~incoming ~bucket_key ~bucket_template =
  let key = (incoming_key, bucket_key) in
  match Hashtbl.find_opt t.conditions key with
  | Some c -> c
  | None ->
      let c = Symbolic.compile t.schema ~left:incoming ~right:bucket_template in
      Hashtbl.replace t.conditions key c;
      c

let find_container_where t (q : Query.t) ~pred =
  let template, values = decompose t q in
  let incoming_key = Template.shape_key template in
  let check_bucket bucket_key (bucket : 'a bucket) acc =
    match acc with
    | Some _ -> acc
    | None -> (
        match
          condition t ~incoming_key ~incoming:template ~bucket_key
            ~bucket_template:bucket.template
        with
        | Some Symbolic.Never -> None
        | cond ->
            List.find_map
              (fun s ->
                t.comparisons <- t.comparisons + 1;
                if
                  (not (pred s.query s.payload))
                  || not (Query_containment.region_and_attrs_ok ~query:q ~stored:s.query)
                then None
                else
                  let ok =
                    match cond with
                    | Some c -> Symbolic.eval t.schema c ~left:values ~right:s.values
                    | None ->
                        (* Compilation blew up: direct check. *)
                        Filter_containment.contained t.schema q.Query.filter
                          s.query.Query.filter
                  in
                  if ok then Some (s.query, s.payload) else None)
              bucket.entries)
  in
  (* Same-template bucket first: it answers most hits cheaply. *)
  let same =
    match Hashtbl.find_opt t.buckets incoming_key with
    | Some bucket -> check_bucket incoming_key bucket None
    | None -> None
  in
  match same with
  | Some _ as hit -> hit
  | None ->
      Hashtbl.fold
        (fun key bucket acc ->
          if String.equal key incoming_key then acc else check_bucket key bucket acc)
        t.buckets None

let find_container t q = find_container_where t q ~pred:(fun _ _ -> true)

let fold t ~init ~f =
  Hashtbl.fold
    (fun _ bucket acc ->
      List.fold_left (fun acc s -> f acc s.query s.payload) acc bucket.entries)
    t.buckets init

let iter t ~f = fold t ~init:() ~f:(fun () q p -> f q p)
let comparisons t = t.comparisons
let reset_comparisons t = t.comparisons <- 0
