lib/containment/template.ml: Array Filter Format Hashtbl Ldap List Option Printf Schema String Value
