lib/containment/query_containment.mli: Ldap Query Schema
