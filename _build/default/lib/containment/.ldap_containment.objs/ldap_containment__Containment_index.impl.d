lib/containment/containment_index.ml: Filter_containment Hashtbl Ldap List Query Query_containment Schema String Symbolic Template
