lib/containment/template.mli: Filter Format Ldap Schema
