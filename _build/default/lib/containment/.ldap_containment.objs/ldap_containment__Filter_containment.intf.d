lib/containment/filter_containment.mli: Filter Ldap Schema
