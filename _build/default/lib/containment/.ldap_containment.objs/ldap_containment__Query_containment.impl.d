lib/containment/query_containment.ml: Filter_containment Ldap Query
