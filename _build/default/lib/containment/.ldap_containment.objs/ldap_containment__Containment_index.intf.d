lib/containment/containment_index.mli: Ldap Query Schema
