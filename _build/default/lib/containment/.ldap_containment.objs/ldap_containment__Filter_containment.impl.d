lib/containment/filter_containment.ml: Filter Ldap List Schema String Symbolic Value
