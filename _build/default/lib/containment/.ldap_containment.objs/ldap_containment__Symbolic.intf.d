lib/containment/symbolic.mli: Filter Ldap Schema Template
