lib/containment/template_registry.mli: Ldap Query Schema Template
