lib/containment/symbolic.ml: Array Filter Ldap List Map Option Printf Schema String Template Value
