lib/containment/template_registry.ml: Ldap List Option Query Schema Template
