(** Semantic containment of LDAP queries — algorithm QC (section 4).

    [Q] is contained in [Qs] when (i) the region defined by [Q]'s base
    and scope falls inside [Qs]'s region, (ii) [Q]'s attributes are a
    subset of [Qs]'s, and (iii) [Q]'s filter is contained in [Qs]'s. *)

open Ldap

val contained : Schema.t -> query:Query.t -> stored:Query.t -> bool
(** Full QC check using {!Filter_containment.contained} for the filter
    leg. *)

val region_and_attrs_ok : query:Query.t -> stored:Query.t -> bool
(** Conditions (i) and (ii) only — the cheap pre-check a replica runs
    before any filter comparison. *)
