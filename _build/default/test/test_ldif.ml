(* Tests for the LDIF serialization module. *)
open Ldap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let dn = Dn.of_string_exn

let john =
  Entry.make (dn "cn=John Doe,ou=research,o=xyz")
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ "John Doe" ]);
      ("sn", [ "Doe" ]);
      ("mail", [ "jd@xyz.com" ]);
    ]

let test_entry_round_trip () =
  let s = Ldif.entry_to_string john in
  match Ldif.entry_of_string s with
  | Ok parsed -> check_bool "round trip" true (Entry.equal john parsed)
  | Error e -> Alcotest.fail e

let test_entries_round_trip () =
  let jane =
    Entry.make (dn "cn=Jane,o=xyz")
      [ ("objectclass", [ "person" ]); ("cn", [ "Jane" ]); ("sn", [ "Doe" ]) ]
  in
  let s = Ldif.entries_to_string [ john; jane ] in
  match Ldif.entries_of_string s with
  | Ok [ a; b ] ->
      check_bool "first" true (Entry.equal john a);
      check_bool "second" true (Entry.equal jane b)
  | Ok l -> Alcotest.failf "expected 2 records, got %d" (List.length l)
  | Error e -> Alcotest.fail e

let test_base64_values () =
  check_bool "leading space" true (Ldif.needs_base64 " x");
  check_bool "leading colon" true (Ldif.needs_base64 ":x");
  check_bool "trailing space" true (Ldif.needs_base64 "x ");
  check_bool "non-ascii" true (Ldif.needs_base64 "caf\xc3\xa9");
  check_bool "plain" false (Ldif.needs_base64 "hello world");
  let tricky =
    Entry.make (dn "cn=t,o=xyz")
      [ ("objectclass", [ "person" ]); ("cn", [ "t" ]); ("sn", [ " padded " ]);
        ("description", [ "caf\xc3\xa9 \xe2\x98\x95" ]) ]
  in
  let s = Ldif.entry_to_string tricky in
  check_bool "encoded marker" true
    (let rec find i =
       i + 4 <= String.length s && (String.sub s i 4 = "sn::" || find (i + 1))
     in
     find 0);
  match Ldif.entry_of_string s with
  | Ok parsed -> check_bool "binary round trip" true (Entry.equal tricky parsed)
  | Error e -> Alcotest.fail e

let test_long_line_folding () =
  let long = String.make 300 'x' in
  let e =
    Entry.make (dn "cn=l,o=xyz")
      [ ("objectclass", [ "person" ]); ("cn", [ "l" ]); ("sn", [ "s" ]);
        ("description", [ long ]) ]
  in
  let s = Ldif.entry_to_string e in
  check_bool "folded" true (String.split_on_char '\n' s |> List.for_all (fun l -> String.length l <= 76));
  match Ldif.entry_of_string s with
  | Ok parsed ->
      check_string "unfolded value" long (List.hd (Entry.get parsed "description"))
  | Error e -> Alcotest.fail e

let test_comments_and_version () =
  let text =
    "version: 1\n# a comment\n\ndn: cn=a,o=x\nobjectclass: person\ncn: a\nsn: b\n\n# trailing comment\n"
  in
  match Ldif.entries_of_string text with
  | Ok [ e ] -> check_bool "parsed" true (Entry.has_value e "sn" "b")
  | Ok l -> Alcotest.failf "expected 1, got %d" (List.length l)
  | Error e -> Alcotest.fail e

let test_malformed () =
  check_bool "no dn" true (Result.is_error (Ldif.entry_of_string "cn: a\nsn: b\n"));
  check_bool "no colon" true (Result.is_error (Ldif.entry_of_string "dn: cn=a,o=x\ngarbage\n"));
  check_bool "bad base64" true
    (Result.is_error (Ldif.entry_of_string "dn: cn=a,o=x\nsn:: !!!\n"))

let test_changes () =
  let del = Ldif.Change_delete (dn "cn=a,o=x") in
  let s = Ldif.change_to_string del in
  check_bool "delete changetype" true
    (let rec find i frag =
       i + String.length frag <= String.length s
       && (String.sub s i (String.length frag) = frag || find (i + 1) frag)
     in
     find 0 "changetype: delete");
  (* Round trip through Update.op. *)
  let op = Update.modify (dn "cn=a,o=x") [ Update.replace_values "mail" [ "m@x" ] ] in
  check_bool "op round trip" true
    (Ldif.update_of_change (Ldif.change_of_update op) = op);
  let rdn = match Dn.rdn_of_string "cn=b" with Ok r -> r | Error e -> failwith e in
  let mod_dn = Update.modify_dn ~new_superior:(dn "ou=s,o=x") (dn "cn=a,o=x") rdn in
  let s = Ldif.change_to_string (Ldif.change_of_update mod_dn) in
  check_bool "modrdn fields" true
    (let contains frag =
       let rec find i =
         i + String.length frag <= String.length s
         && (String.sub s i (String.length frag) = frag || find (i + 1))
       in
       find 0
     in
     contains "changetype: modrdn" && contains "newrdn: cn=b"
     && contains "newsuperior: ou=s,o=x")

(* Property: entry LDIF round-trips for printable generated entries. *)
let entry_gen =
  QCheck.Gen.(
    let word = string_size ~gen:(char_range 'a' 'z') (1 -- 8) in
    let attr = oneofl [ "cn"; "sn"; "mail"; "description"; "ou" ] in
    map2
      (fun name pairs ->
        Entry.make
          (Dn.child_ava (Dn.of_string_exn "o=xyz") "cn" name)
          (("objectclass", [ "person" ]) :: ("cn", [ name ])
          :: List.map (fun (a, v) -> (a, [ v ])) pairs))
      word
      (list_size (0 -- 5) (pair attr word)))

let prop_round_trip =
  QCheck.Test.make ~name:"ldif: entry round trip" ~count:300
    (QCheck.make ~print:Ldif.entry_to_string entry_gen) (fun e ->
      match Ldif.entry_of_string (Ldif.entry_to_string e) with
      | Ok parsed -> Entry.equal e parsed
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "entry round trip" `Quick test_entry_round_trip;
    Alcotest.test_case "entries round trip" `Quick test_entries_round_trip;
    Alcotest.test_case "base64 values" `Quick test_base64_values;
    Alcotest.test_case "long line folding" `Quick test_long_line_folding;
    Alcotest.test_case "comments and version" `Quick test_comments_and_version;
    Alcotest.test_case "malformed" `Quick test_malformed;
    Alcotest.test_case "changes" `Quick test_changes;
    QCheck_alcotest.to_alcotest prop_round_trip;
  ]
