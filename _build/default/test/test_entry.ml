(* Tests for Ldap.Entry and Ldap.Schema. *)
open Ldap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn

let john =
  Entry.make (dn "cn=John,o=xyz")
    [
      ("objectClass", [ "inetOrgPerson" ]);
      ("CN", [ "John"; "Johnny" ]);
      ("sn", [ "Doe" ]);
      ("mail", [ "j@x.com" ]);
    ]

let test_attribute_access () =
  check_bool "case-insensitive get" true (Entry.get john "cn" = [ "John"; "Johnny" ]);
  check_bool "case-insensitive name" true (Entry.get john "Cn" = [ "John"; "Johnny" ]);
  check_bool "absent" true (Entry.get john "uid" = []);
  check_bool "has_attribute" true (Entry.has_attribute john "MAIL");
  check_bool "has_value rule" true (Entry.has_value john "sn" "doe");
  check_bool "objectclasses" true (Entry.object_classes john = [ "inetOrgPerson" ])

let test_merge_and_dedup () =
  let e =
    Entry.make (dn "cn=a,o=x") [ ("cn", [ "a" ]); ("CN", [ "b"; "a" ]); ("sn", [ "s" ]) ]
  in
  check_int "merged values" 2 (List.length (Entry.get e "cn"))

let test_modifications () =
  let e = Entry.add_values john "mail" [ "j2@x.com" ] in
  check_int "added" 2 (List.length (Entry.get e "mail"));
  let e = Entry.add_values e "mail" [ "J@X.COM" ] in
  check_int "duplicate under rule skipped" 2 (List.length (Entry.get e "mail"));
  (match Entry.delete_values e "mail" [ "j@x.com" ] with
  | Ok e' -> check_int "deleted one" 1 (List.length (Entry.get e' "mail"))
  | Error m -> Alcotest.fail m);
  check_bool "delete absent value errors" true
    (Result.is_error (Entry.delete_values e "mail" [ "nope@x.com" ]));
  check_bool "delete absent attr errors" true
    (Result.is_error (Entry.delete_values e "uid" []));
  (match Entry.delete_values e "mail" [] with
  | Ok e' -> check_bool "delete all" false (Entry.has_attribute e' "mail")
  | Error m -> Alcotest.fail m);
  let e = Entry.replace_values john "sn" [ "Smith" ] in
  check_bool "replaced" true (Entry.has_value e "sn" "smith");
  let e = Entry.replace_values john "sn" [] in
  check_bool "replace empty removes" false (Entry.has_attribute e "sn")

let test_select () =
  let all = Entry.select john None in
  check_bool "none keeps all" true (Entry.has_attribute all "mail");
  let some = Entry.select john (Some [ "cn"; "sn" ]) in
  check_bool "kept" true (Entry.has_attribute some "cn");
  check_bool "dropped" false (Entry.has_attribute some "mail");
  let star = Entry.select john (Some [ "*" ]) in
  check_bool "star keeps all" true (Entry.has_attribute star "mail")

let test_equal () =
  let a = Entry.make (dn "cn=a,o=x") [ ("cn", [ "a" ]); ("sn", [ "x"; "y" ]) ] in
  let b = Entry.make (dn "cn=a,o=x") [ ("sn", [ "y"; "x" ]); ("cn", [ "a" ]) ] in
  check_bool "order-insensitive equal" true (Entry.equal a b);
  let c = Entry.make (dn "cn=a,o=x") [ ("cn", [ "a" ]) ] in
  check_bool "different attrs" false (Entry.equal a c)

let test_referral () =
  let r =
    Entry.make (dn "ou=r,o=x")
      [ ("objectclass", [ "referral" ]); ("ref", [ "ldap://hostB/ou=r,o=x" ]) ]
  in
  check_bool "is_referral" true (Entry.is_referral r);
  check_int "urls" 1 (List.length (Entry.referral_urls r));
  check_bool "person is not" false (Entry.is_referral john)

(* Schema -------------------------------------------------------------- *)

let schema = Schema.default

let test_schema_lookup () =
  check_bool "alias" true
    (Schema.canonical_attr schema "surname" = "sn");
  check_bool "syntax" true (Schema.syntax_of schema "age" = Value.Integer);
  check_bool "unknown defaults" true (Schema.syntax_of schema "frobnicate" = Value.Case_ignore);
  check_bool "single valued" true (Schema.is_single_valued schema "serialNumber");
  check_bool "multi valued" false (Schema.is_single_valued schema "cn")

let test_schema_classes () =
  let required = Schema.required_attributes schema "inetOrgPerson" in
  check_bool "inherits cn" true (List.mem "cn" required);
  check_bool "inherits sn" true (List.mem "sn" required);
  check_bool "inherits objectClass" true
    (List.exists (fun a -> String.lowercase_ascii a = "objectclass") required);
  let allowed = Schema.allowed_attributes schema "inetOrgPerson" in
  check_bool "may mail" true (List.mem "mail" allowed);
  check_bool "unknown class empty" true (Schema.required_attributes schema "nope" = [])

let test_ber_sizes () =
  check_bool "entry size positive" true (Ber.entry_size john > 0);
  check_bool "selection shrinks" true
    (Ber.entry_size_selected john (Some [ "cn" ]) < Ber.entry_size john);
  check_bool "dn size grows" true
    (Ber.dn_size (dn "cn=a,ou=long-name,o=xyz") > Ber.dn_size (dn "o=xyz"))

let suite =
  [
    Alcotest.test_case "attribute access" `Quick test_attribute_access;
    Alcotest.test_case "merge and dedup" `Quick test_merge_and_dedup;
    Alcotest.test_case "modifications" `Quick test_modifications;
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "referral entries" `Quick test_referral;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    Alcotest.test_case "schema classes" `Quick test_schema_classes;
    Alcotest.test_case "ber sizes" `Quick test_ber_sizes;
  ]
