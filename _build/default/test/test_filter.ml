(* Tests for Ldap.Filter: parsing, printing, evaluation, normalization. *)
open Ldap

let schema = Schema.default
let f = Filter.of_string_exn
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let entry dn_s attrs = Entry.make (Dn.of_string_exn dn_s) attrs

let john =
  entry "cn=John Doe,ou=research,c=us,o=xyz"
    [
      ("cn", [ "John Doe"; "John M Doe" ]);
      ("objectclass", [ "inetOrgPerson" ]);
      ("telephoneNumber", [ "2618-2618" ]);
      ("mail", [ "john@us.xyz.com" ]);
      ("serialNumber", [ "0456" ]);
      ("departmentNumber", [ "80" ]);
      ("age", [ "42" ]);
    ]

let test_parse_basic () =
  check_string "and" "(&(sn=doe)(givenname=john))"
    (String.lowercase_ascii (Filter.to_string (f "(&(sn=Doe)(givenName=John))")));
  check_bool "or" true
    (match f "(|(cn=a)(cn=b))" with Filter.Or [ _; _ ] -> true | _ -> false);
  check_bool "not" true
    (match f "(!(cn=a))" with Filter.Not _ -> true | _ -> false);
  check_bool "present" true
    (match f "(objectclass=*)" with
    | Filter.Pred (Filter.Present _) -> true
    | _ -> false);
  check_bool "ge" true
    (match f "(age>=30)" with
    | Filter.Pred (Filter.Greater_eq (_, "30")) -> true
    | _ -> false);
  check_bool "le" true
    (match f "(age<=30)" with
    | Filter.Pred (Filter.Less_eq (_, "30")) -> true
    | _ -> false)

let test_parse_substrings () =
  (match f "(sn=smi*)" with
  | Filter.Pred (Filter.Substrings (_, { initial = Some "smi"; any = []; final = None })) -> ()
  | other -> Alcotest.failf "prefix: got %s" (Filter.to_string other));
  (match f "(sn=*ith)" with
  | Filter.Pred (Filter.Substrings (_, { initial = None; any = []; final = Some "ith" })) -> ()
  | other -> Alcotest.failf "suffix: got %s" (Filter.to_string other));
  (match f "(sn=s*m*h)" with
  | Filter.Pred
      (Filter.Substrings (_, { initial = Some "s"; any = [ "m" ]; final = Some "h" })) -> ()
  | other -> Alcotest.failf "middle: got %s" (Filter.to_string other));
  match f "(sn=*mi*)" with
  | Filter.Pred (Filter.Substrings (_, { initial = None; any = [ "mi" ]; final = None })) -> ()
  | other -> Alcotest.failf "any-only: got %s" (Filter.to_string other)

let test_parse_escapes () =
  match f "(cn=a\\2ab)" with
  | Filter.Pred (Filter.Equality (_, "a*b")) -> ()
  | other -> Alcotest.failf "escape: got %s" (Filter.to_string other)

let test_parse_errors () =
  let bad s = match Filter.of_string s with Error _ -> true | Ok _ -> false in
  check_bool "unbalanced" true (bad "(cn=a");
  check_bool "trailing" true (bad "(cn=a)x");
  check_bool "empty and" true (bad "(&)");
  check_bool "no operator" true (bad "(cn)");
  check_bool "empty attr" true (bad "(=v)")

let test_eval_equality () =
  check_bool "eq hit" true (Filter.matches schema (f "(serialNumber=0456)") john);
  check_bool "eq case-insensitive" true (Filter.matches schema (f "(cn=john doe)") john);
  check_bool "eq multi-valued" true (Filter.matches schema (f "(cn=John M Doe)") john);
  check_bool "eq miss" false (Filter.matches schema (f "(serialNumber=9999)") john);
  check_bool "absent attr" false (Filter.matches schema (f "(uid=jd)") john)

let test_eval_ranges () =
  check_bool "ge hit" true (Filter.matches schema (f "(age>=40)") john);
  check_bool "ge miss" false (Filter.matches schema (f "(age>=43)") john);
  check_bool "le hit" true (Filter.matches schema (f "(age<=42)") john);
  check_bool "integer order not lexicographic" true
    (Filter.matches schema (f "(age>=9)") john)

let test_eval_substrings () =
  check_bool "prefix" true (Filter.matches schema (f "(mail=john@*)") john);
  check_bool "suffix" true (Filter.matches schema (f "(mail=*xyz.com)") john);
  check_bool "middle" true (Filter.matches schema (f "(mail=*@us*)") john);
  check_bool "full pattern" true (Filter.matches schema (f "(mail=j*us*com)") john);
  check_bool "miss" false (Filter.matches schema (f "(mail=jane@*)") john);
  check_bool "ordered anys" false (Filter.matches schema (f "(mail=*xyz*us*)") john)

let test_eval_boolean () =
  check_bool "and" true
    (Filter.matches schema (f "(&(serialNumber=0456)(departmentNumber=80))") john);
  check_bool "and miss" false
    (Filter.matches schema (f "(&(serialNumber=0456)(departmentNumber=81))") john);
  check_bool "or" true
    (Filter.matches schema (f "(|(serialNumber=9)(departmentNumber=80))") john);
  check_bool "not" true (Filter.matches schema (f "(!(serialNumber=9))") john);
  check_bool "not absent is true" true (Filter.matches schema (f "(!(uid=x))") john);
  check_bool "tt matches" true (Filter.matches schema Filter.tt john)

let test_normalize () =
  check_bool "flatten and" true
    (Filter.equal (f "(&(a=1)(&(b=2)(c=3)))") (f "(&(a=1)(b=2)(c=3))"));
  check_bool "order-insensitive" true (Filter.equal (f "(&(a=1)(b=2))") (f "(&(b=2)(a=1))"));
  check_bool "single operand unwrap" true (Filter.equal (f "(&(a=1))") (f "(a=1)"));
  check_bool "dedup" true (Filter.equal (f "(|(a=1)(a=1))") (f "(a=1)"));
  check_bool "attr case" true (Filter.equal (f "(CN=x)") (f "(cn=x)"))

let test_positive_size () =
  check_bool "positive" true (Filter.is_positive (f "(&(a=1)(|(b=2)(c=3)))"));
  check_bool "not positive" false (Filter.is_positive (f "(&(a=1)(!(b=2)))"));
  Alcotest.(check int) "size" 3 (Filter.size (f "(&(a=1)(|(b=2)(c=3)))"));
  Alcotest.(check (list string)) "attributes" [ "a"; "b"; "c" ]
    (Filter.attributes (f "(&(a=1)(|(b=2)(c=3))(a=4))"))

(* Property: parse/print round trip on generated filters. *)

let filter_gen =
  let open QCheck.Gen in
  let attr = oneofl [ "cn"; "sn"; "mail"; "age"; "ou" ] in
  let value = string_size ~gen:(char_range 'a' 'z') (1 -- 5) in
  let pred =
    oneof
      [
        map2 (fun a v -> Filter.Equality (a, v)) attr value;
        map2 (fun a v -> Filter.Greater_eq (a, v)) attr value;
        map2 (fun a v -> Filter.Less_eq (a, v)) attr value;
        map (fun a -> Filter.Present a) attr;
        map2
          (fun a v -> Filter.Substrings (a, { Filter.initial = Some v; any = []; final = None }))
          attr value;
      ]
  in
  let rec tree depth =
    if depth = 0 then map (fun p -> Filter.Pred p) pred
    else
      frequency
        [
          (3, map (fun p -> Filter.Pred p) pred);
          (1, map (fun g -> Filter.Not g) (tree (depth - 1)));
          (1, map (fun gs -> Filter.And gs) (list_size (1 -- 3) (tree (depth - 1))));
          (1, map (fun gs -> Filter.Or gs) (list_size (1 -- 3) (tree (depth - 1))));
        ]
  in
  tree 3

let filter_arb = QCheck.make ~print:Filter.to_string filter_gen

let test_escape_round_trip () =
  (* Values containing filter metacharacters survive print/parse. *)
  List.iter
    (fun v ->
      let fl = Filter.Pred (Filter.Equality ("cn", v)) in
      let back = Filter.of_string_exn (Filter.to_string fl) in
      check_bool (Printf.sprintf "round trip %S" v) true (Filter.equal fl back))
    [ "a*b"; "(paren)"; "back\\slash"; "nul\000byte"; "star*"; "**" ]

let prop_escape_round_trip =
  QCheck.Test.make ~name:"filter: arbitrary equality values round-trip" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 12))
    (fun v ->
      QCheck.assume (v <> "");
      let fl = Filter.Pred (Filter.Equality ("cn", v)) in
      match Filter.of_string (Filter.to_string fl) with
      | Ok back -> Filter.equal fl back
      | Error _ -> false)

let prop_roundtrip =
  QCheck.Test.make ~name:"filter: print/parse round-trip" ~count:500 filter_arb
    (fun fl -> Filter.equal fl (Filter.of_string_exn (Filter.to_string fl)))

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"filter: normalize idempotent" ~count:500 filter_arb (fun fl ->
      let n = Filter.normalize fl in
      Filter.equal n (Filter.normalize n))

let prop_normalize_preserves_semantics =
  QCheck.Test.make ~name:"filter: normalize preserves evaluation" ~count:300
    filter_arb (fun fl ->
      let n = Filter.normalize fl in
      Filter.matches schema fl john = Filter.matches schema n john)

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse substrings" `Quick test_parse_substrings;
    Alcotest.test_case "parse escapes" `Quick test_parse_escapes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "eval equality" `Quick test_eval_equality;
    Alcotest.test_case "eval ranges" `Quick test_eval_ranges;
    Alcotest.test_case "eval substrings" `Quick test_eval_substrings;
    Alcotest.test_case "eval boolean" `Quick test_eval_boolean;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "positive/size/attrs" `Quick test_positive_size;
    Alcotest.test_case "escape round trip" `Quick test_escape_round_trip;
    QCheck_alcotest.to_alcotest prop_escape_round_trip;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_normalize_idempotent;
    QCheck_alcotest.to_alcotest prop_normalize_preserves_semantics;
  ]
