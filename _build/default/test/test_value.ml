(* Tests for Ldap.Value matching rules. *)
open Ldap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_case_ignore () =
  check_bool "case" true (Value.equal Value.Case_ignore "John Doe" "john doe");
  check_bool "spaces squashed" true (Value.equal Value.Case_ignore "  a   b " "a b");
  check_bool "different" false (Value.equal Value.Case_ignore "a" "b");
  check_int "order" (-1) (compare (Value.compare Value.Case_ignore "abc" "abd") 0)

let test_case_exact () =
  check_bool "case matters" false (Value.equal Value.Case_exact "Abc" "abc");
  check_bool "same" true (Value.equal Value.Case_exact "Abc" "Abc");
  check_bool "spaces squashed" true (Value.equal Value.Case_exact "a  b" "a b")

let test_integer () =
  check_bool "numeric equal" true (Value.equal Value.Integer "007" "7");
  check_bool "numeric order" true (Value.compare Value.Integer "9" "10" < 0);
  check_bool "lexicographic would fail" true (Value.compare Value.Integer "100" "99" > 0);
  check_bool "negative" true (Value.compare Value.Integer "-5" "3" < 0);
  (* Non-numeric values order after all integers. *)
  check_bool "garbage after ints" true (Value.compare Value.Integer "5" "abc" < 0)

let test_telephone () =
  check_bool "separators ignored" true
    (Value.equal Value.Telephone "2618-2618" "26 18 26 18");
  check_bool "different" false (Value.equal Value.Telephone "2618" "2619")

let test_substring_match () =
  let m ?initial ?(any = []) ?final v =
    Value.matches_substring Value.Case_ignore ~initial ~any ~final v
  in
  check_bool "prefix" true (m ~initial:"smi" "Smith");
  check_bool "prefix miss" false (m ~initial:"smi" "Doe");
  check_bool "suffix" true (m ~final:"ith" "smith");
  check_bool "any ordered" true (m ~any:[ "m"; "t" ] "smith");
  check_bool "any wrong order" false (m ~any:[ "t"; "m" ] "smith");
  check_bool "no overlap" false (m ~any:[ "mit"; "ith" ] "smith");
  check_bool "full spec" true (m ~initial:"s" ~any:[ "i" ] ~final:"h" "smith");
  check_bool "final too long" false (m ~final:"smithx" "smith");
  check_bool "initial and final overlap rules" true (m ~initial:"ab" ~final:"ba" "abba")

let test_successor_of_prefix () =
  check_string "simple" "smj" (Value.successor_of_prefix "smi");
  check_string "digits" "25" (Value.successor_of_prefix "24");
  check_bool "covers all prefixed" true
    (String.compare "smizzz" (Value.successor_of_prefix "smi") < 0);
  check_bool "empty rejected" true
    (try ignore (Value.successor_of_prefix "") ; false with Invalid_argument _ -> true);
  (* Trailing 0xff bytes are dropped before incrementing. *)
  check_string "high byte" "b" (Value.successor_of_prefix "a\xff\xff")

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"value: normalize idempotent across syntaxes" ~count:500
    QCheck.(pair (oneofl Value.[ Case_ignore; Case_exact; Integer; Telephone ]) string)
    (fun (syntax, s) ->
      let n = Value.normalize syntax s in
      String.equal n (Value.normalize syntax n))

let prop_compare_total_order =
  QCheck.Test.make ~name:"value: compare is antisymmetric" ~count:500
    QCheck.(triple (oneofl Value.[ Case_ignore; Integer ]) string string)
    (fun (syntax, a, b) ->
      let ab = Value.compare syntax a b and ba = Value.compare syntax b a in
      (ab = 0 && ba = 0) || (ab > 0 && ba < 0) || (ab < 0 && ba > 0))

let prop_successor_bound =
  QCheck.Test.make ~name:"value: successor bounds every extension" ~count:500
    QCheck.(pair (string_of_size (QCheck.Gen.return 4)) small_string)
    (fun (prefix, ext) ->
      QCheck.assume (String.for_all (fun c -> c <> '\xff') prefix && prefix <> "");
      let succ = Value.successor_of_prefix prefix in
      String.compare (prefix ^ ext) succ < 0 && String.compare prefix succ < 0)

let suite =
  [
    Alcotest.test_case "case ignore" `Quick test_case_ignore;
    Alcotest.test_case "case exact" `Quick test_case_exact;
    Alcotest.test_case "integer" `Quick test_integer;
    Alcotest.test_case "telephone" `Quick test_telephone;
    Alcotest.test_case "substring match" `Quick test_substring_match;
    Alcotest.test_case "successor of prefix" `Quick test_successor_of_prefix;
    QCheck_alcotest.to_alcotest prop_normalize_idempotent;
    QCheck_alcotest.to_alcotest prop_compare_total_order;
    QCheck_alcotest.to_alcotest prop_successor_bound;
  ]
