(* Tests for Ldap.Query (regions, attribute subsets) and Ldap.Referral. *)
open Ldap

let check_bool = Alcotest.(check bool)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn

let q ?(scope = Scope.Sub) ?(attrs = Query.All) base filter =
  Query.make ~scope ~attrs ~base:(dn base) (f filter)

let test_in_scope () =
  let base = q ~scope:Scope.Base "ou=r,o=x" "(a=1)" in
  check_bool "base self" true (Query.in_scope base (dn "ou=r,o=x"));
  check_bool "base child" false (Query.in_scope base (dn "cn=a,ou=r,o=x"));
  let one = q ~scope:Scope.One "ou=r,o=x" "(a=1)" in
  check_bool "one child" true (Query.in_scope one (dn "cn=a,ou=r,o=x"));
  check_bool "one self" false (Query.in_scope one (dn "ou=r,o=x"));
  check_bool "one grandchild" false (Query.in_scope one (dn "cn=a,ou=s,ou=r,o=x"));
  let sub = q ~scope:Scope.Sub "ou=r,o=x" "(a=1)" in
  check_bool "sub self" true (Query.in_scope sub (dn "ou=r,o=x"));
  check_bool "sub deep" true (Query.in_scope sub (dn "cn=a,ou=s,ou=r,o=x"));
  check_bool "sub outside" false (Query.in_scope sub (dn "cn=a,o=x"))

let test_region_subset () =
  let sub base = q ~scope:Scope.Sub base "(a=1)" in
  let one base = q ~scope:Scope.One base "(a=1)" in
  let base_q base = q ~scope:Scope.Base base "(a=1)" in
  check_bool "sub in sub same base" true
    (Query.region_subset ~inner:(sub "o=x") ~outer:(sub "o=x"));
  check_bool "deeper sub in sub" true
    (Query.region_subset ~inner:(sub "ou=r,o=x") ~outer:(sub "o=x"));
  check_bool "one in sub" true (Query.region_subset ~inner:(one "o=x") ~outer:(sub "o=x"));
  check_bool "sub not in one" false
    (Query.region_subset ~inner:(sub "o=x") ~outer:(one "o=x"));
  check_bool "child base in one" true
    (Query.region_subset ~inner:(base_q "ou=r,o=x") ~outer:(one "o=x"));
  check_bool "grandchild base not in one" false
    (Query.region_subset ~inner:(base_q "cn=a,ou=r,o=x") ~outer:(one "o=x"));
  check_bool "base only covers itself" false
    (Query.region_subset ~inner:(base_q "ou=r,o=x") ~outer:(base_q "o=x"));
  check_bool "base covers itself" true
    (Query.region_subset ~inner:(base_q "o=x") ~outer:(base_q "o=x"))

let test_attrs () =
  let sel l = Query.Select l in
  check_bool "all superset" true (Query.attrs_subset ~sub:(sel [ "cn" ]) ~super:Query.All);
  check_bool "all not in select" false
    (Query.attrs_subset ~sub:Query.All ~super:(sel [ "cn" ]));
  check_bool "subset" true
    (Query.attrs_subset ~sub:(sel [ "cn" ]) ~super:(sel [ "cn"; "sn" ]));
  check_bool "not subset" false
    (Query.attrs_subset ~sub:(sel [ "mail" ]) ~super:(sel [ "cn" ]));
  (* The "*" wildcard normalizes to All. *)
  let wild = q ~attrs:(sel [ "*"; "cn" ]) "o=x" "(a=1)" in
  check_bool "star normalizes" true (wild.Query.attrs = Query.All)

let test_equality_normalized () =
  let a = q "o=x" "(&(b=2)(a=1))" in
  let b = q "o=x" "(&(a=1)(b=2))" in
  check_bool "filter order irrelevant" true (Query.equal a b);
  let c = q "O=X" "(&(a=1)(b=2))" in
  check_bool "dn case irrelevant" true (Query.equal a c);
  check_bool "different scope differs" false
    (Query.equal a (q ~scope:Scope.One "o=x" "(&(a=1)(b=2))"))

let test_referral_urls () =
  let url = Referral.make ~host:"hostB" ~dn:(dn "ou=r,o=x") () in
  (match Referral.parse url with
  | Ok { Referral.host; dn = Some d } ->
      check_bool "host" true (host = "hostB");
      check_bool "dn" true (Dn.equal d (dn "ou=r,o=x"))
  | _ -> Alcotest.fail "parse failed");
  (match Referral.parse "ldap://hostA/" with
  | Ok { Referral.host = "hostA"; dn = None } -> ()
  | _ -> Alcotest.fail "bare host failed");
  (match Referral.parse "ldap://hostC" with
  | Ok { Referral.host = "hostC"; dn = None } -> ()
  | _ -> Alcotest.fail "no-slash failed");
  check_bool "non-ldap rejected" true (Result.is_error (Referral.parse "http://x/"))

let test_scope_misc () =
  check_bool "of_string" true (Scope.of_string "subtree" = Some Scope.Sub);
  check_bool "of_int round trip" true
    (List.for_all
       (fun s -> Scope.of_int (Scope.to_int s) = Some s)
       [ Scope.Base; Scope.One; Scope.Sub ]);
  check_bool "covers" true (Scope.covers ~outer:Scope.Sub ~inner:Scope.Base);
  check_bool "not covers" false (Scope.covers ~outer:Scope.Base ~inner:Scope.One);
  (* One-level excludes the base entry, so it does not cover Base —
     the off-by-one in the paper's integer-encoded QC check. *)
  check_bool "one does not cover base" false
    (Scope.covers ~outer:Scope.One ~inner:Scope.Base);
  check_bool "one covers one" true (Scope.covers ~outer:Scope.One ~inner:Scope.One)

(* Property: region_subset agrees with enumeration over a fixed DN
   universe deep enough to exercise every scope combination. *)
let universe =
  List.map dn
    [
      "o=x"; "ou=a,o=x"; "ou=b,o=x"; "cn=1,ou=a,o=x"; "cn=2,ou=a,o=x";
      "cn=1,ou=b,o=x"; "ou=c,ou=a,o=x"; "cn=1,ou=c,ou=a,o=x"; "o=y"; "cn=1,o=y";
    ]

let region_gen =
  QCheck.Gen.(
    let base = oneofl [ "o=x"; "ou=a,o=x"; "ou=b,o=x"; "ou=c,ou=a,o=x"; "cn=1,ou=a,o=x" ] in
    let scope = oneofl [ Scope.Base; Scope.One; Scope.Sub ] in
    map2 (fun b s -> q ~scope:s b "(objectclass=*)") base scope)

let prop_region_subset_oracle =
  QCheck.Test.make ~name:"query: region_subset = enumeration" ~count:500
    (QCheck.make
       ~print:(fun (a, b) -> Query.to_string a ^ " in " ^ Query.to_string b)
       (QCheck.Gen.pair region_gen region_gen))
    (fun (inner, outer) ->
      let members query = List.filter (Query.in_scope query) universe in
      (* Soundness: when region_subset claims containment, enumeration
         over any DN universe must agree.  (The converse does not hold
         on a finite universe: a sub-scope region exceeds a base-scope
         one even when no witness child exists here.) *)
      (not (Query.region_subset ~inner ~outer))
      || List.for_all
           (fun d -> List.exists (Dn.equal d) (members outer))
           (members inner))

let suite =
  [
    Alcotest.test_case "in_scope" `Quick test_in_scope;
    Alcotest.test_case "region subset" `Quick test_region_subset;
    Alcotest.test_case "attribute subsets" `Quick test_attrs;
    Alcotest.test_case "normalized equality" `Quick test_equality_normalized;
    Alcotest.test_case "referral urls" `Quick test_referral_urls;
    Alcotest.test_case "scope misc" `Quick test_scope_misc;
    QCheck_alcotest.to_alcotest prop_region_subset_oracle;
  ]
