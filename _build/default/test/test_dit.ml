(* Direct tests for Ldap.Dit and Ldap.Index. *)
open Ldap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn

let entry dn_s attrs = Entry.make (dn dn_s) attrs
let org = entry "o=xyz" [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]

let node name parent =
  entry (Printf.sprintf "ou=%s,%s" name parent)
    [ ("objectclass", [ "organizationalUnit" ]); ("ou", [ name ]) ]

let must = function Ok x -> x | Error e -> failwith (Dit.error_to_string e)

let small () =
  let t = Dit.create org in
  let t = must (Dit.add t (node "a" "o=xyz")) in
  let t = must (Dit.add t (node "b" "o=xyz")) in
  let t = must (Dit.add t (node "a1" "ou=a,o=xyz")) in
  let t = must (Dit.add t (node "a2" "ou=a,o=xyz")) in
  t

let test_structure () =
  let t = small () in
  check_int "size" 5 (Dit.size t);
  check_bool "find root" true (Dit.find t (dn "o=xyz") <> None);
  check_bool "find deep" true (Dit.find t (dn "ou=a1,ou=a,o=xyz") <> None);
  check_bool "missing" true (Dit.find t (dn "ou=zz,o=xyz") = None);
  check_int "children of root" 2 (List.length (Dit.children t (dn "o=xyz")));
  check_int "children of a" 2 (List.length (Dit.children t (dn "ou=a,o=xyz")));
  check_int "children of leaf" 0 (List.length (Dit.children t (dn "ou=b,o=xyz")));
  check_bool "contains namespace" true (Dit.contains_dn t (dn "cn=any,ou=a,o=xyz"));
  check_bool "outside namespace" false (Dit.contains_dn t (dn "o=abc"))

let test_add_errors () =
  let t = small () in
  check_bool "duplicate" true (Result.is_error (Dit.add t (node "a" "o=xyz")));
  check_bool "orphan" true (Result.is_error (Dit.add t (node "x" "ou=zz,o=xyz")));
  check_bool "out of context" true
    (Result.is_error (Dit.add t (entry "ou=x,o=abc" [ ("objectclass", [ "top" ]) ])))

let test_delete_semantics () =
  let t = small () in
  check_bool "non-leaf refused" true (Result.is_error (Dit.delete t (dn "ou=a,o=xyz")));
  check_bool "suffix refused" true (Result.is_error (Dit.delete t (dn "o=xyz")));
  let t = must (Dit.delete t (dn "ou=a1,ou=a,o=xyz")) in
  let t = must (Dit.delete t (dn "ou=a2,ou=a,o=xyz")) in
  check_int "after deletes" 3 (Dit.size t);
  (* Now a is a leaf. *)
  let t = must (Dit.delete t (dn "ou=a,o=xyz")) in
  check_int "chain deleted" 2 (Dit.size t)

let test_replace_keeps_subtree () =
  let t = small () in
  let replacement =
    entry "ou=a,o=xyz"
      [ ("objectclass", [ "organizationalUnit" ]); ("ou", [ "a" ]); ("description", [ "new" ]) ]
  in
  let t = must (Dit.replace t replacement) in
  check_bool "replaced" true
    (Entry.has_value (Option.get (Dit.find t (dn "ou=a,o=xyz"))) "description" "new");
  check_bool "children kept" true (Dit.find t (dn "ou=a1,ou=a,o=xyz") <> None);
  check_bool "replace missing errors" true
    (Result.is_error (Dit.replace t (node "zz" "o=xyz")))

let test_fold_order () =
  let t = small () in
  let dns = List.rev (Dit.fold t ~init:[] ~f:(fun acc e -> Dn.to_string (Entry.dn e) :: acc)) in
  check_int "all visited" 5 (List.length dns);
  (* Parent appears before its children (depth-first, parent first). *)
  let index s = Option.get (List.find_index (fun x -> x = s) dns) in
  check_bool "root first" true (index "o=xyz" = 0);
  check_bool "parent before child" true (index "ou=a,o=xyz" < index "ou=a1,ou=a,o=xyz");
  (* Subtree fold only visits the subtree. *)
  check_int "subtree fold" 3
    (Dit.fold_subtree t (dn "ou=a,o=xyz") ~init:0 ~f:(fun n _ -> n + 1));
  check_int "missing subtree" 0
    (Dit.fold_subtree t (dn "ou=zz,o=xyz") ~init:0 ~f:(fun n _ -> n + 1))

(* --- Index -------------------------------------------------------------- *)

let schema = Schema.default

let person name serial =
  entry (Printf.sprintf "cn=%s,o=xyz" name)
    [ ("objectclass", [ "person" ]); ("cn", [ name ]); ("sn", [ name ]);
      ("serialNumber", [ serial ]) ]

let test_index_eq_prefix () =
  let idx = Index.create schema ~attrs:[ "serialnumber" ] in
  Index.insert idx (person "a" "2406");
  Index.insert idx (person "b" "2407");
  Index.insert idx (person "c" "2506");
  check_bool "indexed attr" true (Index.is_indexed idx "serialNumber");
  check_bool "other attr" false (Index.is_indexed idx "mail");
  check_int "eq lookup" 1 (Dn.Set.cardinal (Index.lookup_eq idx ~attr:"serialnumber" "2406"));
  check_int "eq miss" 0 (Dn.Set.cardinal (Index.lookup_eq idx ~attr:"serialnumber" "9999"));
  check_int "prefix 24" 2 (Dn.Set.cardinal (Index.lookup_prefix idx ~attr:"serialnumber" "24"));
  check_int "prefix 2" 3 (Dn.Set.cardinal (Index.lookup_prefix idx ~attr:"serialnumber" "2"));
  check_int "prefix miss" 0 (Dn.Set.cardinal (Index.lookup_prefix idx ~attr:"serialnumber" "9"));
  check_int "cardinality" 3 (Index.cardinality idx ~attr:"serialnumber");
  (* No string-prefix confusion across boundary values. *)
  Index.insert idx (person "d" "240");
  check_int "prefix 240 exact+longer" 3
    (Dn.Set.cardinal (Index.lookup_prefix idx ~attr:"serialnumber" "240"))

let test_index_remove () =
  let idx = Index.create schema ~attrs:[ "serialnumber" ] in
  let p = person "a" "2406" in
  Index.insert idx p;
  Index.remove idx p;
  check_int "removed" 0 (Dn.Set.cardinal (Index.lookup_eq idx ~attr:"serialnumber" "2406"));
  check_int "cardinality zero" 0 (Index.cardinality idx ~attr:"serialnumber")

let test_index_normalized () =
  let idx = Index.create schema ~attrs:[ "cn" ] in
  Index.insert idx (person "John Doe" "1");
  check_int "case-insensitive" 1
    (Dn.Set.cardinal (Index.lookup_eq idx ~attr:"cn" "JOHN DOE"))

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "add errors" `Quick test_add_errors;
    Alcotest.test_case "delete semantics" `Quick test_delete_semantics;
    Alcotest.test_case "replace keeps subtree" `Quick test_replace_keeps_subtree;
    Alcotest.test_case "fold order" `Quick test_fold_order;
    Alcotest.test_case "index eq/prefix" `Quick test_index_eq_prefix;
    Alcotest.test_case "index remove" `Quick test_index_remove;
    Alcotest.test_case "index normalized" `Quick test_index_normalized;
  ]
