(* Unit and property tests for Ldap.Dn. *)
open Ldap

let dn s = Dn.of_string_exn s

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let test_parse_print () =
  let round s = Dn.to_string (dn s) in
  check_string "simple" "cn=john doe,ou=research,o=xyz" (round "cn=John Doe, ou=Research, o=XYZ" |> String.lowercase_ascii);
  check_string "root" "" (round "");
  check_string "escaped comma" "cn=doe\\, john,o=xyz" (String.lowercase_ascii (round "cn=Doe\\, John,o=xyz"))

let test_equality () =
  check_bool "case-insensitive" true (Dn.equal (dn "CN=John,O=XYZ") (dn "cn=john,o=xyz"));
  check_bool "space squashing" true (Dn.equal (dn "cn=John  Doe,o=xyz") (dn "cn=John Doe, o=xyz"));
  check_bool "different" false (Dn.equal (dn "cn=a,o=xyz") (dn "cn=b,o=xyz"));
  check_bool "multi-ava order" true (Dn.equal (dn "cn=X+sn=Y,o=xyz") (dn "sn=Y+cn=X,o=xyz"))

let test_depth_parent () =
  check_int "depth" 3 (Dn.depth (dn "cn=a,ou=b,o=c"));
  check_int "root depth" 0 (Dn.depth Dn.root);
  check_bool "parent" true
    (Dn.equal (Option.get (Dn.parent (dn "cn=a,ou=b,o=c"))) (dn "ou=b,o=c"));
  check_bool "root has no parent" true (Dn.parent Dn.root = None)

let test_ancestor () =
  let a = dn "o=xyz" and b = dn "cn=a,ou=research,o=xyz" in
  check_bool "ancestor" true (Dn.ancestor_of a b);
  check_bool "not descendant" false (Dn.ancestor_of b a);
  check_bool "self non-strict" true (Dn.ancestor_of a a);
  check_bool "self strict" false (Dn.ancestor_of ~strict:true a a);
  check_bool "root ancestor of all" true (Dn.ancestor_of Dn.root b);
  check_bool "sibling" false (Dn.ancestor_of (dn "c=us,o=xyz") (dn "c=in,o=xyz"));
  (* RDN-boundary trap: o=xyzzy is not under o=xyz. *)
  check_bool "no string-prefix confusion" false (Dn.ancestor_of (dn "o=xyz") (dn "cn=a,o=xyzzy"))

let test_parent_of () =
  check_bool "parent_of" true (Dn.parent_of (dn "ou=b,o=c") (dn "cn=a,ou=b,o=c"));
  check_bool "grandparent not parent" false (Dn.parent_of (dn "o=c") (dn "cn=a,ou=b,o=c"))

let test_relative_to () =
  let anc = dn "o=xyz" and d = dn "cn=a,ou=research,o=xyz" in
  (match Dn.relative_to ~ancestor:anc d with
  | Some rdns -> check_int "relative depth" 2 (List.length rdns)
  | None -> Alcotest.fail "expected Some");
  check_bool "equal gives empty" true (Dn.relative_to ~ancestor:anc anc = Some []);
  check_bool "non-ancestor gives None" true
    (Dn.relative_to ~ancestor:(dn "o=abc") d = None)

let test_child () =
  let base = dn "o=xyz" in
  let c = Dn.child_ava base "cn" "John" in
  check_bool "child round-trip" true (Dn.equal c (dn "cn=John,o=xyz"));
  check_bool "parent of child" true (Dn.parent_of base c)

let test_canonical_key () =
  check_string "canonical equal" (Dn.canonical (dn "CN=A, O=B")) (Dn.canonical (dn "cn=a,o=b"))

let test_hex_escapes () =
  (* \41 is 'A'. *)
  let d = Dn.of_string_exn "cn=\\41lice,o=x" in
  check_bool "hex decoded" true (Dn.equal d (Dn.of_string_exn "cn=Alice,o=x"));
  (* Special bytes survive a print/parse cycle. *)
  let tricky = Dn.of_rdns [ [ { Dn.attr = "cn"; value = "a,b+c=d" } ] ] in
  check_bool "special chars round trip" true
    (Dn.equal tricky (Dn.of_string_exn (Dn.to_string tricky)))

let test_invalid () =
  let bad s = match Dn.of_string s with Error _ -> true | Ok _ -> false in
  check_bool "missing value sep" true (bad "cnjohn,o=xyz");
  check_bool "empty rdn" true (bad "cn=a,,o=xyz");
  check_bool "dangling escape" true (bad "cn=a\\")

(* Property tests ----------------------------------------------------- *)

let rdn_gen =
  QCheck.Gen.(
    let attr = oneofl [ "cn"; "ou"; "o"; "uid"; "dc" ] in
    let value =
      map (fun (c, s) -> Printf.sprintf "%c%s" c s)
        (pair (char_range 'a' 'z') (string_size ~gen:(char_range 'a' 'z') (0 -- 6)))
    in
    map2 (fun a v -> { Dn.attr = a; value = v }) attr value)

let dn_gen = QCheck.Gen.(map (fun rdns -> Dn.of_rdns (List.map (fun a -> [ a ]) rdns)) (list_size (0 -- 6) rdn_gen))

let dn_arb = QCheck.make ~print:Dn.to_string dn_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"dn: to_string/of_string round-trip" ~count:500 dn_arb
    (fun d -> Dn.equal d (Dn.of_string_exn (Dn.to_string d)))

let prop_parent_ancestor =
  QCheck.Test.make ~name:"dn: parent is strict ancestor" ~count:500 dn_arb (fun d ->
      match Dn.parent d with
      | None -> Dn.is_root d
      | Some p -> Dn.ancestor_of ~strict:true p d && Dn.parent_of p d)

let prop_ancestor_transitive =
  QCheck.Test.make ~name:"dn: ancestor transitive via parents" ~count:500 dn_arb
    (fun d ->
      let rec all_ancestors acc dn =
        match Dn.parent dn with None -> acc | Some p -> all_ancestors (p :: acc) p
      in
      List.for_all (fun a -> Dn.ancestor_of a d) (all_ancestors [] d))

let prop_canonical_consistent =
  QCheck.Test.make ~name:"dn: equal iff canonical equal" ~count:500
    (QCheck.pair dn_arb dn_arb) (fun (a, b) ->
      Dn.equal a b = String.equal (Dn.canonical a) (Dn.canonical b))

let suite =
  [
    Alcotest.test_case "parse/print" `Quick test_parse_print;
    Alcotest.test_case "equality" `Quick test_equality;
    Alcotest.test_case "depth/parent" `Quick test_depth_parent;
    Alcotest.test_case "ancestor" `Quick test_ancestor;
    Alcotest.test_case "parent_of" `Quick test_parent_of;
    Alcotest.test_case "relative_to" `Quick test_relative_to;
    Alcotest.test_case "child" `Quick test_child;
    Alcotest.test_case "canonical" `Quick test_canonical_key;
    Alcotest.test_case "hex escapes" `Quick test_hex_escapes;
    Alcotest.test_case "invalid inputs" `Quick test_invalid;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_parent_ancestor;
    QCheck_alcotest.to_alcotest prop_ancestor_transitive;
    QCheck_alcotest.to_alcotest prop_canonical_consistent;
  ]
