(* White-box tests for the symbolic containment compiler (Props 1-2):
   compiled condition shapes, operand resolution, and agreement between
   the compiled and direct procedures on random template instances. *)
open Ldap
open Ldap_containment

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let t = Template.of_string_exn

let compile left right =
  match Symbolic.compile schema ~left:(t left) ~right:(t right) with
  | Some c -> c
  | None -> Alcotest.failf "compilation of %s in %s failed" left right

let test_always () =
  (* Anything is contained in the presence filter on its attribute. *)
  (match compile "(age=_)" "(age=*)" with
  | Symbolic.Always -> ()
  | c -> Alcotest.failf "expected Always, got %s" (Symbolic.to_string c));
  match compile "(sn=_)" "(sn=_)" with
  | Symbolic.Cnf _ -> ()
  | c -> Alcotest.failf "same-template equality should be conditional, got %s"
           (Symbolic.to_string c)

let test_never () =
  (* Disjoint attributes can never contain each other. *)
  (match compile "(sn=_)" "(mail=_)" with
  | Symbolic.Never -> ()
  | c -> Alcotest.failf "expected Never, got %s" (Symbolic.to_string c));
  (* A conjunction cannot be answered by a query requiring extra attrs. *)
  match compile "(sn=_)" "(&(sn=_)(ou=_))" with
  | Symbolic.Never -> ()
  | c -> Alcotest.failf "expected Never, got %s" (Symbolic.to_string c)

let eval c ~left ~right = Symbolic.eval schema c ~left ~right

let test_range_conditions () =
  let c = compile "(age>=_)" "(age>=_)" in
  check_bool "30 in >=20" true (eval c ~left:[| "30" |] ~right:[| "20" |]);
  check_bool "10 not in >=20" false (eval c ~left:[| "10" |] ~right:[| "20" |]);
  check_bool "boundary" true (eval c ~left:[| "20" |] ~right:[| "20" |]);
  let c = compile "(age<=_)" "(age<=_)" in
  check_bool "10 in <=20" true (eval c ~left:[| "10" |] ~right:[| "20" |]);
  check_bool "30 not in <=20" false (eval c ~left:[| "30" |] ~right:[| "20" |])

let test_integer_discreteness () =
  (* (age>=4) is contained in (!(age<=3)) because age is integral:
     x > 3 iff x >= 4. *)
  let left = t "(age>=_)" in
  let right = t "(!(age<=_))" in
  match Symbolic.compile schema ~left ~right with
  | Some c ->
      check_bool "integer gap" true (eval c ~left:[| "4" |] ~right:[| "3" |]);
      check_bool "same bound fails" false (eval c ~left:[| "3" |] ~right:[| "3" |])
  | None -> Alcotest.fail "expected compilation"

let test_prefix_operand () =
  (* Succ operand: a prefix assertion is the range [p, succ p). *)
  let c = compile "(serialnumber=_*)" "(serialnumber=_*)" in
  check_bool "narrower prefix" true (eval c ~left:[| "2406" |] ~right:[| "24" |]);
  check_bool "wider prefix" false (eval c ~left:[| "24" |] ~right:[| "2406" |]);
  check_bool "same prefix" true (eval c ~left:[| "24" |] ~right:[| "24" |]);
  check_bool "disjoint" false (eval c ~left:[| "25" |] ~right:[| "24" |])

let test_prefix_vs_range () =
  (* A prefix assertion within a lower bound: needs X below the prefix. *)
  let c = compile "(serialnumber=_*)" "(serialnumber>=_)" in
  check_bool "below" true (eval c ~left:[| "24" |] ~right:[| "2" |]);
  check_bool "above" false (eval c ~left:[| "24" |] ~right:[| "25" |])

let test_missing_values_are_safe () =
  (* Wrong arity must never crash nor claim containment. *)
  let c = compile "(sn=_)" "(sn=_)" in
  check_bool "missing right" false (eval c ~left:[| "doe" |] ~right:[||]);
  check_bool "missing left" false (eval c ~left:[||] ~right:[| "doe" |])

let test_to_string_shape () =
  let c = compile "(age=_)" "(age>=_)" in
  let s = Symbolic.to_string c in
  check_bool "mentions attr" true
    (let contains frag =
       let rec find i =
         i + String.length frag <= String.length s
         && (String.sub s i (String.length frag) = frag || find (i + 1))
       in
       find 0
     in
     contains "age");
  check_bool "never prints FALSE" true (Symbolic.to_string Symbolic.Never = "FALSE");
  check_bool "always prints TRUE" true (Symbolic.to_string Symbolic.Always = "TRUE")

(* Property: the compiled condition agrees with the direct decision
   procedure on concrete instances. *)
let templates =
  [
    ("(serialnumber=_)", 1);
    ("(serialnumber=_*)", 1);
    ("(age=_)", 1);
    ("(age>=_)", 1);
    ("(age<=_)", 1);
    ("(&(departmentnumber=_)(divisionnumber=_))", 2);
    ("(&(divisionnumber=_)(departmentnumber=*))", 1);
    ("(sn=*)", 0);
  ]

let value_gen = QCheck.Gen.(oneofl [ "1"; "2"; "24"; "2406"; "25"; "9" ])

let instance_gen =
  QCheck.Gen.(
    let* ti = int_bound (List.length templates - 1) in
    let tmpl, arity = List.nth templates ti in
    let* values = array_repeat arity value_gen in
    return (tmpl, values))

let prop_compiled_agrees_with_direct =
  QCheck.Test.make ~name:"symbolic: compiled condition = direct check" ~count:800
    (QCheck.make
       ~print:(fun ((lt, lv), (rt, rv)) ->
         Printf.sprintf "%s%s in %s%s" lt
           (String.concat "," (Array.to_list lv))
           rt
           (String.concat "," (Array.to_list rv)))
       QCheck.Gen.(pair instance_gen instance_gen))
    (fun ((lt, lv), (rt, rv)) ->
      let left = t lt and right = t rt in
      match Symbolic.compile schema ~left ~right with
      | None -> true
      | Some cond -> (
          match (Template.instantiate left lv, Template.instantiate right rv) with
          | Ok lf, Ok rf ->
              Symbolic.eval schema cond ~left:lv ~right:rv
              = Symbolic.contained schema lf rf
          | _ -> true))

let suite =
  [
    Alcotest.test_case "always" `Quick test_always;
    Alcotest.test_case "never" `Quick test_never;
    Alcotest.test_case "range conditions" `Quick test_range_conditions;
    Alcotest.test_case "integer discreteness" `Quick test_integer_discreteness;
    Alcotest.test_case "prefix operand" `Quick test_prefix_operand;
    Alcotest.test_case "prefix vs range" `Quick test_prefix_vs_range;
    Alcotest.test_case "missing values safe" `Quick test_missing_values_are_safe;
    Alcotest.test_case "to_string shape" `Quick test_to_string_shape;
    QCheck_alcotest.to_alcotest prop_compiled_agrees_with_direct;
  ]
