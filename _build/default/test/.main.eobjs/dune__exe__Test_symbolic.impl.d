test/test_symbolic.ml: Alcotest Array Ldap Ldap_containment List Printf QCheck QCheck_alcotest Schema String Symbolic Template
