test/test_network.ml: Alcotest Backend Dn Entry Filter Ldap List Network Query Referral Schema Server Update
