test/test_filter.ml: Alcotest Dn Entry Filter Ldap List Printf QCheck QCheck_alcotest Schema String
