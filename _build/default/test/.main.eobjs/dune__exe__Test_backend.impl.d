test/test_backend.ml: Alcotest Backend Csn Dn Entry Filter Lazy Ldap List Network Option Printf QCheck QCheck_alcotest Query Referral Result Schema Scope Server String Update
