test/test_dirgen.ml: Alcotest Array Backend Dn Entry Filter Hashtbl Lazy Ldap Ldap_dirgen List Option Printf Query Result String Update
