test/test_dit.ml: Alcotest Dit Dn Entry Index Ldap List Option Printf Result Schema
