test/test_resync.ml: Action Alcotest Backend Consumer Content Csn Dn Entry Filter Ldap Ldap_resync List Master Option Printf Protocol QCheck QCheck_alcotest Query Result Schema String Update
