test/test_entry.ml: Alcotest Ber Dn Entry Ldap List Result Schema String Value
