test/main.mli:
