test/test_value.ml: Alcotest Ldap QCheck QCheck_alcotest String Value
