test/test_replication.ml: Alcotest Backend Dn Entry Filter Ldap Ldap_replication Ldap_resync List Printf QCheck QCheck_alcotest Query Schema Scope String Update
