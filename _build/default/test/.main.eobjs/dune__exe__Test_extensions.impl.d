test/test_extensions.ml: Alcotest Backend Dn Entry Filter Ldap Ldap_replication Ldap_resync List Network Printf Query Referral Result Schema Server Sort_control Update
