test/test_query.ml: Alcotest Dn Filter Ldap List QCheck QCheck_alcotest Query Referral Result Scope
