test/test_eval.ml: Alcotest Lazy Ldap_dirgen Ldap_eval List String
