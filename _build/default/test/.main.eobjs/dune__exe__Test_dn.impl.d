test/test_dn.ml: Alcotest Dn Ldap List Option Printf QCheck QCheck_alcotest String
