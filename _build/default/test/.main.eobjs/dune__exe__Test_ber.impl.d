test/test_ber.ml: Alcotest Ber Ber_codec Char Dn Entry Filter Ldap List Printf QCheck QCheck_alcotest Query Result Scope String
