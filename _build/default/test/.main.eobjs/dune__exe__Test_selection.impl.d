test/test_selection.ml: Alcotest Backend Dn Entry Filter Ldap Ldap_containment Ldap_replication Ldap_resync Ldap_selection List Printf Query Schema Scope String Update
