test/test_ldif.ml: Alcotest Dn Entry Ldap Ldif List QCheck QCheck_alcotest Result String Update
