(* Tests for the BER/DER wire codec: hand-checked encodings, error
   handling, and encode/decode round-trip properties. *)
open Ldap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn

let hex s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                      (List.of_seq (String.to_seq s)))

let test_known_encoding () =
  (* A minimal search request has a deterministic DER image; check a
     few structural bytes rather than the whole blob. *)
  let q = Query.make ~scope:Scope.Base ~base:(dn "o=x") (f "(cn=a)") in
  let bytes = Ber_codec.encode (Ber_codec.search_request ~id:2 q) in
  check_bool "outer sequence" true (Char.code bytes.[0] = 0x30);
  (* message id = 2 encoded as 02 01 02 right after the header. *)
  check_bool "message id" true
    (String.length bytes > 5 && String.sub (hex bytes) 4 6 = "020102");
  (* SearchRequest application tag 0x63. *)
  check_bool "application tag" true (String.contains bytes '\x63')

let test_round_trip_search () =
  let q =
    Query.make ~scope:Scope.One ~attrs:(Query.Select [ "cn"; "mail" ])
      ~base:(dn "ou=research,o=xyz")
      (f "(&(objectclass=inetOrgPerson)(|(sn=doe)(sn=smi*))(age>=30)(!(uid=x)))")
  in
  let m = Ber_codec.search_request ~id:7 q in
  match Ber_codec.decode (Ber_codec.encode m) with
  | Ok { Ber_codec.id = 7; op = Ber_codec.Search_request q'; controls = [] } ->
      check_bool "query preserved" true (Query.equal q q')
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_round_trip_entry () =
  let e =
    Entry.make (dn "cn=John Doe,o=xyz")
      [
        ("objectclass", [ "inetOrgPerson" ]);
        ("cn", [ "John Doe" ]);
        ("sn", [ "Doe" ]);
        ("mail", [ "a@x"; "b@x" ]);
      ]
  in
  match Ber_codec.decode (Ber_codec.encode (Ber_codec.entry_message ~id:3 e)) with
  | Ok { Ber_codec.op = Ber_codec.Search_result_entry e'; _ } ->
      check_bool "entry preserved" true (Entry.equal e e')
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_round_trip_done_and_reference () =
  let d =
    {
      Ber_codec.code = 10;
      matched = dn "o=xyz";
      diagnostic = "referral";
      referral = [ "ldap://hostA/" ];
    }
  in
  (match
     Ber_codec.decode
       (Ber_codec.encode { Ber_codec.id = 4; op = Ber_codec.Search_result_done d; controls = [] })
   with
  | Ok { Ber_codec.op = Ber_codec.Search_result_done d'; _ } ->
      check_int "code" 10 d'.Ber_codec.code;
      check_bool "referral" true (d'.Ber_codec.referral = [ "ldap://hostA/" ])
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e);
  match
    Ber_codec.decode
      (Ber_codec.encode
         { Ber_codec.id = 5;
           op = Ber_codec.Search_result_reference [ "ldap://hostB/ou=r,o=x" ];
           controls = [] })
  with
  | Ok { Ber_codec.op = Ber_codec.Search_result_reference [ url ]; _ } ->
      check_bool "url" true (url = "ldap://hostB/ou=r,o=x")
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_manage_dsa_it_control () =
  let q = Query.make ~manage_dsa_it:true ~base:(dn "o=x") (f "(cn=a)") in
  match Ber_codec.decode (Ber_codec.encode (Ber_codec.search_request q)) with
  | Ok { Ber_codec.controls = [ c ]; _ } ->
      check_bool "oid" true (c.Ber_codec.control_type = Ber_codec.manage_dsa_it_oid);
      check_bool "critical" true c.Ber_codec.criticality
  | Ok _ -> Alcotest.fail "expected one control"
  | Error e -> Alcotest.fail e

let test_resync_control () =
  let c = Ber_codec.resync_control ~mode:"poll" ~cookie:(Some "rs:1:5") in
  (match Ber_codec.decode_resync_control c with
  | Ok ("poll", Some "rs:1:5") -> ()
  | Ok (m, _) -> Alcotest.failf "wrong mode %s" m
  | Error e -> Alcotest.fail e);
  let c = Ber_codec.resync_control ~mode:"persist" ~cookie:None in
  (match Ber_codec.decode_resync_control c with
  | Ok ("persist", None) -> ()
  | _ -> Alcotest.fail "persist/no-cookie failed");
  (* Survives a full message trip as an attached control. *)
  let q = Query.make ~base:(dn "o=x") (f "(cn=a)") in
  let m =
    { Ber_codec.id = 9; op = Ber_codec.Search_request q;
      controls = [ Ber_codec.resync_control ~mode:"sync_end" ~cookie:(Some "rs:2:9") ] }
  in
  match Ber_codec.decode (Ber_codec.encode m) with
  | Ok { Ber_codec.controls = [ c ]; _ } -> (
      match Ber_codec.decode_resync_control c with
      | Ok ("sync_end", Some "rs:2:9") -> ()
      | _ -> Alcotest.fail "resync control lost in transit")
  | Ok _ -> Alcotest.fail "expected one control"
  | Error e -> Alcotest.fail e

let test_malformed () =
  check_bool "empty" true (Result.is_error (Ber_codec.decode ""));
  check_bool "garbage" true (Result.is_error (Ber_codec.decode "\x30\x03\x02\x01"));
  check_bool "trailing" true
    (let q = Query.make ~base:(dn "o=x") (f "(cn=a)") in
     Result.is_error (Ber_codec.decode (Ber_codec.encode (Ber_codec.search_request q) ^ "x")))

let test_long_lengths () =
  (* An entry bigger than 127 bytes exercises multi-byte lengths. *)
  let e =
    Entry.make (dn "cn=big,o=xyz")
      [ ("objectclass", [ "person" ]); ("cn", [ "big" ]); ("sn", [ "b" ]);
        ("description", [ String.make 5000 'd' ]) ]
  in
  match Ber_codec.decode (Ber_codec.encode (Ber_codec.entry_message e)) with
  | Ok { Ber_codec.op = Ber_codec.Search_result_entry e'; _ } ->
      check_bool "big entry" true (Entry.equal e e')
  | _ -> Alcotest.fail "long length failed"

let test_size_model_sanity () =
  (* The Ber size model should be within a small factor of the real
     wire image for typical entries. *)
  let e =
    Entry.make (dn "cn=John Doe,c=aa,o=xyz")
      [
        ("objectclass", [ "inetOrgPerson" ]);
        ("cn", [ "John Doe" ]); ("sn", [ "Doe" ]);
        ("serialNumber", [ "0400456" ]);
        ("mail", [ "jd@aa.xyz.com" ]);
      ]
  in
  let model = Ber.entry_size e in
  let real = Ber_codec.encoded_size (Ber_codec.entry_message e) in
  check_bool "same order of magnitude" true
    (float_of_int model /. float_of_int real < 2.0
    && float_of_int real /. float_of_int model < 2.0)

(* Round-trip property over random filters. *)
let filter_gen =
  let open QCheck.Gen in
  let attr = oneofl [ "cn"; "sn"; "mail"; "age" ] in
  let value = string_size ~gen:(char_range 'a' 'z') (1 -- 6) in
  let pred =
    oneof
      [
        map2 (fun a v -> Filter.Equality (a, v)) attr value;
        map2 (fun a v -> Filter.Greater_eq (a, v)) attr value;
        map2 (fun a v -> Filter.Less_eq (a, v)) attr value;
        map2 (fun a v -> Filter.Approx (a, v)) attr value;
        map (fun a -> Filter.Present a) attr;
        map2
          (fun a (i, f) ->
            Filter.Substrings (a, { Filter.initial = i; any = []; final = f }))
          attr
          (oneof
             [
               map (fun v -> (Some v, None)) value;
               map (fun v -> (None, Some v)) value;
               map2 (fun a b -> (Some a, Some b)) value value;
             ]);
      ]
  in
  let rec tree depth =
    if depth = 0 then map (fun p -> Filter.Pred p) pred
    else
      frequency
        [
          (3, map (fun p -> Filter.Pred p) pred);
          (1, map (fun g -> Filter.Not g) (tree (depth - 1)));
          (1, map (fun gs -> Filter.And gs) (list_size (1 -- 3) (tree (depth - 1))));
          (1, map (fun gs -> Filter.Or gs) (list_size (1 -- 3) (tree (depth - 1))));
        ]
  in
  tree 2

let prop_search_round_trip =
  QCheck.Test.make ~name:"ber: search request round trip" ~count:500
    (QCheck.make ~print:Filter.to_string filter_gen) (fun filter ->
      let q = Query.make ~base:(dn "ou=a,o=x") filter in
      match Ber_codec.decode (Ber_codec.encode (Ber_codec.search_request q)) with
      | Ok { Ber_codec.op = Ber_codec.Search_request q'; _ } -> Query.equal q q'
      | _ -> false)

let suite =
  [
    Alcotest.test_case "known encoding" `Quick test_known_encoding;
    Alcotest.test_case "round trip search" `Quick test_round_trip_search;
    Alcotest.test_case "round trip entry" `Quick test_round_trip_entry;
    Alcotest.test_case "round trip done/reference" `Quick test_round_trip_done_and_reference;
    Alcotest.test_case "manageDsaIT control" `Quick test_manage_dsa_it_control;
    Alcotest.test_case "resync control" `Quick test_resync_control;
    Alcotest.test_case "malformed" `Quick test_malformed;
    Alcotest.test_case "long lengths" `Quick test_long_lengths;
    Alcotest.test_case "size model sanity" `Quick test_size_model_sanity;
    QCheck_alcotest.to_alcotest prop_search_round_trip;
  ]
