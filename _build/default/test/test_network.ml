(* Tests for the simulated network: referral chasing corner cases,
   loop protection and traffic accounting. *)
open Ldap

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let must = function Ok x -> x | Error e -> failwith e

let entry dn_s attrs = Entry.make (dn dn_s) attrs

let simple_server name suffix entries ?default_referral () =
  let b = Backend.create schema in
  must (Backend.add_context b (entry suffix [ ("objectclass", [ "organization" ]); ("o", [ "x" ]) ]));
  List.iter (fun e -> ignore (must (Backend.apply b (Update.Add e)))) entries;
  Server.create ?default_referral ~name b

let q base = Query.make ~base:(dn base) Filter.tt

let test_unknown_host () =
  let net = Network.create () in
  match Network.search net ~from:"nowhere" (q "o=x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure"

let test_single_server () =
  let net = Network.create () in
  Network.add_server net
    (simple_server "a" "o=x"
       [ entry "cn=e,o=x" [ ("objectclass", [ "person" ]); ("cn", [ "e" ]); ("sn", [ "e" ]) ] ]
       ());
  (match Network.search net ~from:"a" (q "o=x") with
  | Ok entries -> check_int "entries" 2 (List.length entries)
  | Error e -> Alcotest.fail e);
  let stats = Network.stats net in
  check_int "one round trip" 1 stats.Network.round_trips;
  check_int "entry pdus" 2 stats.Network.entry_pdus;
  check_bool "bytes counted" true (stats.Network.bytes > 0)

let test_referral_loop_guard () =
  (* Two servers whose default referrals point at each other: the
     client must terminate rather than bounce forever. *)
  let net = Network.create () in
  Network.add_server net
    (simple_server "a" "o=a" [] ~default_referral:(Referral.make ~host:"b" ()) ());
  Network.add_server net
    (simple_server "b" "o=b" [] ~default_referral:(Referral.make ~host:"a" ()) ());
  match Network.search net ~from:"a" (q "o=zzz") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected loop detection failure"

let test_no_superior_fails () =
  let net = Network.create () in
  Network.add_server net (simple_server "a" "o=a" [] ());
  match Network.search net ~from:"a" (q "o=other") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected noSuchObject"

let test_stats_reset () =
  let net = Network.create () in
  Network.add_server net (simple_server "a" "o=x" [] ());
  ignore (Network.search net ~from:"a" (q "o=x"));
  Network.reset_stats net;
  let stats = Network.stats net in
  check_int "round trips" 0 stats.Network.round_trips;
  check_int "bytes" 0 stats.Network.bytes

let suite =
  [
    Alcotest.test_case "unknown host" `Quick test_unknown_host;
    Alcotest.test_case "single server" `Quick test_single_server;
    Alcotest.test_case "referral loop guard" `Quick test_referral_loop_guard;
    Alcotest.test_case "no superior fails" `Quick test_no_superior_fails;
    Alcotest.test_case "stats reset" `Quick test_stats_reset;
  ]
