(* Smoke tests for the evaluation harness: the figures must run at a
   tiny scale and reproduce the paper's qualitative shapes. *)
module D = Ldap_dirgen
module E = Ldap_eval

let check_bool = Alcotest.(check bool)

let tiny_config =
  { D.Enterprise.default_config with D.Enterprise.employees = 2_000 }

let scenario = lazy (E.Scenario.setup ~config:tiny_config ())

let cell table ~row ~col =
  let t = table in
  let col_idx =
    match List.find_index (fun c -> c = col) t.E.Report.columns with
    | Some i -> i
    | None -> Alcotest.failf "no column %s" col
  in
  List.nth (List.nth t.E.Report.rows row) col_idx

let fcell table ~row ~col = float_of_string (cell table ~row ~col)

let test_report_format () =
  let t =
    E.Report.make ~title:"t" ~columns:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ] ()
  in
  let s = E.Report.to_string t in
  check_bool "title" true (String.length s > 0);
  let contains frag =
    let rec find i =
      i + String.length frag <= String.length s
      && (String.sub s i (String.length frag) = frag || find (i + 1))
    in
    find 0
  in
  check_bool "contains rows" true (List.for_all contains [ "333"; "bb" ])

let test_plot_render () =
  let chart =
    E.Plot.render ~height:5 ~y_max:1.0 ~x_labels:[ "a"; "b"; "c" ]
      ~series:[ ("s1", [ 0.0; 0.5; 1.0 ]); ("s2", [ 1.0; 0.5 ]) ]
      ()
  in
  let contains frag =
    let rec find i =
      i + String.length frag <= String.length chart
      && (String.sub chart i (String.length frag) = frag || find (i + 1))
    in
    find 0
  in
  check_bool "axis" true (contains "1.00");
  check_bool "labels" true (contains "a" && contains "b" && contains "c");
  check_bool "legend" true (contains "s1" && contains "s2");
  check_bool "glyphs" true (contains "*" && contains "+")

let test_figure2_round_trips () =
  let t = E.Figures.figure2 () in
  check_bool "4 round trips" true (cell t ~row:0 ~col:"round trips" = "4");
  check_bool "replica needs 1" true (cell t ~row:1 ~col:"round trips" = "1")

let test_figure3_trace () =
  let t = E.Figures.figure3 () in
  check_bool "three messages" true (List.length t.E.Report.rows = 3)

let test_figure4_shape () =
  let t =
    E.Figures.figure4 ~fractions:[ 0.05; 0.30 ] ~length:3_000 (Lazy.force scenario)
  in
  (* Filter beats subtree at the small budget. *)
  let f_small = fcell t ~row:0 ~col:"filter hit" in
  let s_small = fcell t ~row:0 ~col:"subtree hit" in
  check_bool "filter wins at small size" true (f_small > s_small);
  (* Hit ratio grows with size. *)
  let f_large = fcell t ~row:1 ~col:"filter hit" in
  check_bool "monotone" true (f_large >= f_small);
  check_bool "meaningful hit ratio" true (f_large > 0.3)

let test_figure8_shape () =
  let t =
    E.Figures.figure8 ~filter_counts:[ 20; 120 ] ~length:3_000 (Lazy.force scenario)
  in
  let user_small = fcell t ~row:0 ~col:"user queries only" in
  let user_large = fcell t ~row:1 ~col:"user queries only" in
  let gen_large = fcell t ~row:1 ~col:"generalized only" in
  check_bool "cache grows" true (user_large >= user_small);
  check_bool "generalized beats cache for serials" true (gen_large > user_large)

let test_figure9_shape () =
  let t =
    E.Figures.figure9 ~filter_counts:[ 20; 120 ] ~length:3_000 (Lazy.force scenario)
  in
  let user_large = fcell t ~row:1 ~col:"user queries only" in
  let gen_large = fcell t ~row:1 ~col:"generalized only" in
  check_bool "generalization ineffective for mail" true (gen_large < user_large)

let test_ablation_shape () =
  let t = E.Figures.resync_ablation ~updates:400 ~filters:5 () in
  let actions name =
    let row =
      List.find (fun r -> List.hd r = name) t.E.Report.rows
    in
    int_of_string (List.nth row 2)
  in
  check_bool "session history minimal" true
    (actions "session history" <= actions "changelog");
  check_bool "baselines conservative" true
    (actions "session history" <= actions "tombstone")

let test_overhead_linear () =
  let t =
    E.Figures.processing_overhead ~filter_counts:[ 40; 160 ] ~length:1_000
      (Lazy.force scenario)
  in
  let c_small = fcell t ~row:0 ~col:"comparisons/query" in
  let c_large = fcell t ~row:1 ~col:"comparisons/query" in
  check_bool "cost grows with stored filters" true (c_large > c_small)

let suite =
  [
    Alcotest.test_case "report format" `Quick test_report_format;
    Alcotest.test_case "plot render" `Quick test_plot_render;
    Alcotest.test_case "figure2 round trips" `Quick test_figure2_round_trips;
    Alcotest.test_case "figure3 trace" `Quick test_figure3_trace;
    Alcotest.test_case "figure4 shape" `Slow test_figure4_shape;
    Alcotest.test_case "figure8 shape" `Slow test_figure8_shape;
    Alcotest.test_case "figure9 shape" `Slow test_figure9_shape;
    Alcotest.test_case "ablation shape" `Slow test_ablation_shape;
    Alcotest.test_case "overhead linear" `Slow test_overhead_linear;
  ]
