(* Cascading replication: filter replicas as intermediate masters.

   A headquarters master feeds two regional nodes; branch replicas
   subscribe to the nearest node instead of headquarters.  The walk
   shows the three properties the topology layer exists for:
     1. admission by containment — a subscription a node's covers
        cannot answer is refused with a referral and the branch chases
        it one tier up;
     2. the root only ever talks to the regional nodes, however many
        branches subscribe below them;
     3. when a regional node dies, its branches re-parent to
        headquarters with a translated cookie and resynchronize
        degraded — content is kept, not reloaded.

   Run with: dune exec examples/cascade.exe *)

open Ldap
module T = Ldap_topology

let dn = Dn.of_string_exn
let f = Filter.of_string_exn
let must = function Ok x -> x | Error e -> failwith e

let () =
  (* Headquarters directory: two departments of consultants. *)
  let backend = Backend.create ~indexed:[ "departmentnumber" ] Schema.default in
  must
    (Backend.add_context backend
       (Entry.make (dn "o=hq") [ ("objectclass", [ "organization" ]); ("o", [ "hq" ]) ]));
  let apply op = ignore (must (Backend.apply backend op)) in
  let person name dept =
    Entry.make
      (dn (Printf.sprintf "cn=%s,o=hq" name))
      [
        ("objectclass", [ "inetOrgPerson" ]); ("cn", [ name ]); ("sn", [ name ]);
        ("departmentNumber", [ dept ]);
      ]
  in
  List.iter
    (fun (n, d) -> apply (Update.add (person n d)))
    [ ("ada", "sales"); ("bob", "sales"); ("cleo", "eng"); ("dan", "eng") ];
  let dept d = Query.make ~base:(dn "o=hq") (f (Printf.sprintf "(departmentNumber=%s)" d)) in

  let t = T.Topology.create ~root:"hq" backend in
  (* Two regional nodes, each covering both departments. *)
  let covers = [ dept "sales"; dept "eng" ] in
  let east = must (T.Topology.add_node t ~name:"east" ~parent:"hq" ~covers) in
  let _west = must (T.Topology.add_node t ~name:"west" ~parent:"hq" ~covers) in

  (* Branches subscribe at their region.  The marketing subscription is
     not contained in any cover: east refuses it with a referral and
     the branch lands at headquarters instead. *)
  let b1 = must (T.Topology.add_leaf t ~name:"boston" ~parent:"east" (dept "sales")) in
  let b2 = must (T.Topology.add_leaf t ~name:"berlin" ~parent:"west" (dept "eng")) in
  let b3 = must (T.Topology.add_leaf t ~name:"oslo" ~parent:"east" (dept "marketing")) in
  List.iter
    (fun b -> Printf.printf "%-8s attached to %s\n" (T.Leaf.name b) (T.Leaf.parent b))
    [ b1; b2; b3 ];
  Printf.printf "root sessions: %d (two nodes x two covers + one referred branch)\n\n"
    (Ldap_resync.Master.session_count (T.Topology.master t));

  (* An update converges through the tiers: one round to the nodes,
     another to the branches. *)
  apply (Update.add (person "eve" "sales"));
  (match T.Topology.rounds_to_converge t with
  | Some r -> Printf.printf "new hire visible everywhere after %d poll rounds\n" r
  | None -> print_endline "did not converge");
  Printf.printf "boston sees %d sales people\n\n"
    (List.length (T.Leaf.content b1 (dept "sales")));

  (* Kill the east node mid-stream: boston re-parents to headquarters
     (the grandparent) and resynchronizes degraded — its content
     survives the move. *)
  apply (Update.add (person "finn" "sales"));
  T.Topology.kill_node t east;
  (match T.Topology.rounds_to_converge t with
  | Some r -> Printf.printf "east died: converged again after %d rounds\n" r
  | None -> print_endline "did not converge");
  Printf.printf "boston now attached to %s, %d sales people, %d degraded resync(s)\n"
    (T.Leaf.parent b1)
    (List.length (T.Leaf.content b1 (dept "sales")))
    (T.Leaf.stats b1).Ldap_replication.Stats.resyncs
