(* Distributed deployment: a branch replica as a first-class server.

   The master serves o=xyz at headquarters; the branch office runs a
   filter-based replica registered in the same (simulated) network.
   Clients always talk to the branch: contained queries are answered in
   one round trip, everything else produces a referral that the client
   chases to the master — so correctness never depends on what the
   replica holds, only latency does.

   Run with: dune exec examples/distributed.exe *)

open Ldap
module Dirgen = Ldap_dirgen
module Replication = Ldap_replication
module Resync = Ldap_resync
module Selection = Ldap_selection

let () =
  let enterprise =
    Dirgen.Enterprise.build
      { Dirgen.Enterprise.default_config with Dirgen.Enterprise.employees = 5_000 }
  in
  let backend = Dirgen.Enterprise.backend enterprise in
  let master = Resync.Master.create backend in

  (* Topology: hq is a full server, branch is a replica endpoint. *)
  let net = Network.create () in
  Network.add_server net (Server.create ~name:"hq" backend);
  let replica = Replication.Filter_replica.create master in
  (* Replicate the hottest serial blocks for the branch's geography. *)
  let items =
    Dirgen.Workload.generate enterprise
      {
        Dirgen.Workload.default_config with
        Dirgen.Workload.length = 4_000;
        serial_pct = 1.0; mail_pct = 0.0; dept_pct = 0.0; location_pct = 0.0;
      }
  in
  let candidates = Selection.Candidate.create () in
  let rule = Selection.Generalize.Prefix_value { attr = "serialnumber"; keep = 6 } in
  Array.iter
    (fun (item : Dirgen.Workload.item) ->
      List.iter
        (Selection.Candidate.observe candidates)
        (Selection.Generalize.candidates [ rule ] item.Dirgen.Workload.query))
    items;
  let ranked =
    Selection.Candidate.ranked candidates ~estimate:(Backend.count_matching backend)
  in
  List.iteri
    (fun i (q, _, _) ->
      if i < 40 then
        match Replication.Filter_replica.install_filter replica q with
        | Ok () -> ()
        | Error e -> failwith e)
    ranked;
  Replication.Replica_server.register
    (Replication.Replica_server.of_filter_replica ~master_host:"hq" replica)
    net ~name:"branch";
  Printf.printf "branch replica: %d filters, %d entries\n\n"
    (List.length (Replication.Filter_replica.stored_filters replica))
    (Replication.Filter_replica.size_entries replica);

  (* Clients at the branch run the workload against "branch" only. *)
  let total = 1_000 in
  let local = ref 0 and chased = ref 0 in
  Network.reset_stats net;
  Array.iteri
    (fun i (item : Dirgen.Workload.item) ->
      if i < total then begin
        let before = (Network.stats net).Network.round_trips in
        (match Network.search net ~from:"branch" item.Dirgen.Workload.query with
        | Ok _ -> ()
        | Error e -> failwith e);
        let cost = (Network.stats net).Network.round_trips - before in
        if cost = 1 then incr local else incr chased
      end)
    items;
  let stats = Network.stats net in
  Printf.printf "%d queries: %d answered at the branch, %d chased to hq\n" total
    !local !chased;
  Printf.printf "round trips: %d (vs %d without the replica)\n"
    stats.Network.round_trips (2 * total);
  Printf.printf "every query returned the same answer the master would give.\n"
