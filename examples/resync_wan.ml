(* ReSync over a WAN: the full protocol lifecycle.

   A branch replica keeps the content of one filter synchronized with
   headquarters across four phases:
     1. initial poll (full content),
     2. incremental polls replaying session history,
     3. a persistent (notification) phase,
     4. recovery through the degraded mode of eq. (3) after the master
        expires the session — no full reload needed.

   Run with: dune exec examples/resync_wan.exe *)

open Ldap
module Resync = Ldap_resync

let schema = Schema.default
let dn = Dn.of_string_exn
let must = function Ok x -> x | Error e -> failwith e

let show_reply phase (reply : Resync.Protocol.reply) =
  let kind =
    match reply.Resync.Protocol.kind with
    | Resync.Protocol.Initial_content -> "initial"
    | Resync.Protocol.Incremental -> "incremental"
    | Resync.Protocol.Degraded -> "degraded"
  in
  Printf.printf "%-38s %-11s %2d actions, %2d full entries\n" phase kind
    (Resync.Protocol.actions_count reply)
    (Resync.Protocol.entries_cost reply)

let () =
  (* Headquarters master. *)
  let backend = Backend.create ~indexed:[ "departmentnumber" ] schema in
  must
    (Backend.add_context backend
       (Entry.make (dn "o=hq") [ ("objectclass", [ "organization" ]); ("o", [ "hq" ]) ]));
  let apply op = ignore (must (Backend.apply backend op)) in
  let person name dept =
    Entry.make
      (dn (Printf.sprintf "cn=%s,o=hq" name))
      [
        ("objectclass", [ "inetOrgPerson" ]); ("cn", [ name ]); ("sn", [ name ]);
        ("departmentNumber", [ dept ]);
      ]
  in
  for i = 1 to 6 do
    apply (Update.add (person (Printf.sprintf "emp%d" i) (if i <= 4 then "sales" else "eng")))
  done;
  let master = Resync.Master.create backend in

  (* Branch consumer for the sales department. *)
  let query =
    Query.make ~base:(dn "o=hq") (Filter.of_string_exn "(departmentNumber=sales)")
  in
  let consumer = Resync.Consumer.create schema query in

  (* Phase 1: initial content. *)
  show_reply "poll #1 (no cookie)" (must (Resync.Consumer.sync consumer master));
  Printf.printf "  branch now holds %d sales entries\n\n" (Resync.Consumer.size consumer);

  (* Phase 2: normal life — hires, departures, transfers. *)
  apply (Update.add (person "emp7" "sales"));
  apply (Update.modify (dn "cn=emp1,o=hq") [ Update.replace_values "departmentNumber" [ "eng" ] ]);
  apply (Update.delete (dn "cn=emp2,o=hq"));
  apply (Update.modify (dn "cn=emp3,o=hq") [ Update.replace_values "telephoneNumber" [ "555-1234" ] ]);
  show_reply "poll #2 (session history replay)" (must (Resync.Consumer.sync consumer master));
  Printf.printf "  branch now holds %d sales entries\n\n" (Resync.Consumer.size consumer);

  (* Phase 3: switch to persistent notifications, routed through the
     same transport abstraction as every poll. *)
  let transport = Resync.Transport.loopback master in
  let pushed = ref 0 in
  (match
     Resync.Consumer.connect_persist consumer transport
       ~host:Resync.Transport.loopback_host
       ~observe:(fun _ -> incr pushed)
   with
  | Ok _ -> ()
  | Error e -> failwith (Resync.Consumer.sync_error_to_string e));
  apply (Update.add (person "emp8" "sales"));
  apply (Update.delete (dn "cn=emp8,o=hq"));
  apply (Update.add (person "emp9" "sales"));
  Printf.printf "persist phase: %d notifications pushed live\n" !pushed;
  Printf.printf "  branch now holds %d sales entries\n\n" (Resync.Consumer.size consumer);

  (* Phase 4: the master expires idle sessions; the stale cookie falls
     back to the degraded mode — retain actions instead of a reload. *)
  Resync.Master.abandon master ~cookie:(Option.get (Resync.Consumer.cookie consumer));
  apply (Update.modify (dn "cn=emp3,o=hq") [ Update.replace_values "telephoneNumber" [ "555-5678" ] ]);
  apply (Update.modify (dn "cn=emp4,o=hq") [ Update.replace_values "departmentNumber" [ "eng" ] ]);
  show_reply "poll #3 (stale cookie -> degraded)" (must (Resync.Consumer.sync consumer master));
  Printf.printf "  branch now holds %d sales entries\n\n" (Resync.Consumer.size consumer);

  (* Convergence check against the master's actual content. *)
  let expected = Resync.Content.current_dns backend query in
  assert (Dn.Set.equal expected (Resync.Consumer.dns consumer));
  print_endline "converged: branch content equals the master's content."
