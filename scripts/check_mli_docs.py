#!/usr/bin/env python3
"""Interface documentation check.

Fails when an .mli under the given directories is missing doc
comments: every interface must open with a module-level (** ... *)
comment, and every top-level `val` must have an odoc comment either
directly above it or in the item's trailing lines (before the next
top-level declaration).  A cheap stand-in for `dune build @doc` with
warnings-as-errors, which needs odoc installed.

Usage: check_mli_docs.py PATH [PATH...]

Each PATH is a directory (every .mli directly under it is checked) or
a single .mli file — the latter lets CI pin newly documented modules
inside a library whose older interfaces are not yet up to standard.
"""

import re
import sys
from pathlib import Path

DECL = re.compile(r"^(val|type|module|exception|external)\b")


def check(path):
    errors = []
    lines = path.read_text().splitlines()
    stripped = [l.strip() for l in lines]

    first_code = next((s for s in stripped if s), "")
    if not first_code.startswith("(**"):
        errors.append(f"{path}:1: missing module-level doc comment")

    for i, s in enumerate(stripped):
        if not s.startswith("val "):
            continue
        name = s.split()[1].rstrip(":")
        # Doc comment directly above the declaration?
        above = next((t for t in reversed(stripped[:i]) if t), "")
        if above.endswith("*)"):
            continue
        # Or in the item's trailing lines, before the next declaration.
        documented = False
        for t in stripped[i + 1 :]:
            if DECL.match(t):
                break
            if t.startswith("(**"):
                documented = True
                break
        if not documented:
            errors.append(f"{path}:{i + 1}: val {name} has no doc comment")
    return errors


def main(paths):
    errors = []
    mlis = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            mlis.extend(sorted(path.glob("*.mli")))
        elif path.suffix == ".mli" and path.is_file():
            mlis.append(path)
        else:
            print(f"{p}: not a directory or .mli file", file=sys.stderr)
            return 1
    if not mlis:
        print(f"no .mli files under {' '.join(paths)}", file=sys.stderr)
        return 1
    for mli in mlis:
        errors.extend(check(mli))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(mlis)} interfaces, {len(errors)} missing doc comments")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:] or ["lib/topology"]))
