(** Partitioning a directory over shards by its natural write keys.

    The generated enterprise directory has one organized attribute —
    the serial number, whose fixed-width country-block prefix makes
    prefix filters describe contiguous blocks (section 7.2) — and a
    matching geography: each block's employees live under one country
    entry.  A partition maps every block to a shard, so each shard is
    {e described by a filter}: the disjunction of its blocks' prefix
    assertions.  That is what lets the same containment machinery that
    decides "can this replica answer this query" also decide "which
    shards can hold answers to this query".

    Shard 0 additionally owns the {e structural} entries — everything
    without a serial number (root, countries, divisions, locations) —
    and any serial whose block is not in the table, so routing is
    total.

    Query covers are computed from a compiled plan cached per filter
    {e shape} (the {!Ldap_containment.Template.shape_key} of the
    query's full generalization), mirroring the pruning-plan cache of
    {!Ldap_containment.Containment_index}: the per-shard disjointness
    conditions are compiled and staged once per shape, and evaluating a
    concrete query touches only its assertion values.  All pruning is
    sound-conservative: a shard is skipped only when it provably holds
    no answer; any failure to prove merely contacts one shard more. *)

open Ldap

type t

val structural_shard : int
(** The shard (0) owning entries without a partition key. *)

val create :
  ?attr:string -> Schema.t -> shards:int -> blocks:(string * Dn.t option) array -> t
(** [create schema ~shards ~blocks] assigns block [i] — a (serial
    prefix, geography DN) pair — to shard [i mod shards].  All prefixes
    must share one width (the fixed-width block layout); [attr]
    (default ["serialnumber"]) is the partition-key attribute.  A
    [None] geography disables geographic pruning for that block. *)

val of_enterprise : Ldap_dirgen.Enterprise.t -> shards:int -> t
(** The partition induced by a generated enterprise: one block per
    country, keyed on serialNumber, with the country entry as the
    block's geography. *)

val shards : t -> int
(** Number of shards. *)

val attr : t -> string
(** The partition-key attribute (lowercased). *)

val blocks_of : t -> int -> string list
(** Block prefixes assigned to a shard. *)

val is_structural : t -> Entry.t -> bool
(** Whether the entry carries no partition key — owned by shard 0 but
    replicated to every shard as DIT scaffolding. *)

val of_serial : t -> string -> int
(** Owning shard of a partition-key value (block-prefix table lookup;
    unknown or short values route to shard 0). *)

val of_entry : t -> Entry.t -> int
(** Owning shard of an entry: {!of_serial} of its first partition-key
    value, or shard 0 when it has none. *)

val geo_consistent : t -> Entry.t -> bool
(** Whether the entry's DN lies under its block's geography (vacuously
    true for structural entries, unknown blocks and blocks without a
    geography).  A router flips geographic pruning off the first time
    a committed write violates this. *)

val ownership_filter : t -> int -> Filter.t
(** The filter describing what a shard {e owns}: for shards [> 0] the
    disjunction of their blocks' prefix assertions; for shard 0 the
    {e complement} of every other shard's blocks, so structural
    entries and keys outside any known block are served there.
    Conjoined onto every query a shard serves, it keeps the structural
    placeholder copies on shards [> 0] out of every answer. *)

val restrict : t -> int -> Query.t -> Query.t
(** The query as one shard must serve it: the filter conjoined with
    the shard's {!ownership_filter}. *)

val cover : ?use_geo:bool -> t -> Query.t -> int list
(** Minimal sound shard cover of a query, in shard order.  Shard
    [s > 0] is skipped when the query filter is provably disjoint from
    the shard's block disjunction; shard 0 is skipped when the filter
    is provably contained in the union of the {e other} shards' blocks
    (so it cannot match structural or unknown-block entries).  With
    [use_geo] (default true), shards whose blocks' geographies all lie
    outside the query base's subtree are also skipped.  Decisions come
    from the staged per-shape plan cache. *)

val cover_uncached : ?use_geo:bool -> t -> Query.t -> int list
(** The same cover computed without the plan cache, compiling the
    containment conditions directly per call — the oracle the cached
    path is property-tested against. *)

val plan_hits : t -> int
(** Cover computations answered from the per-shape plan cache. *)

val plan_misses : t -> int
(** Cover computations that compiled a new plan. *)
