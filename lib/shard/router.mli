(** The shard router: one endpoint fronting a partitioned set of
    {!Shard_master}s.

    Writes are routed to the owning shard by partition key (an
    ownership change re-homes the entry with a delete/add pair);
    structural entries — those without a key — are applied everywhere,
    so every shard holds the DIT scaffolding its owned entries hang
    from, while each shard's {!Partition.ownership_filter} keeps those
    placeholder copies out of everything it serves.

    Reads and ReSync sessions fan out over the minimal shard
    {!Partition.cover} of the query, through the same
    {!Ldap.Network}-backed RPC (fault schedule, byte accounting,
    virtual clock) every other replication path uses.  The router is
    itself a {!Ldap_resync.Transport.endpoint}, so consumers, filter
    replicas and topology leaves subscribe through it exactly as they
    would to a single master — one upstream session each, over however
    many per-shard sessions the cover needs.

    A poll reply merges the per-shard replies and interleaves their
    cookies into one composite resume handle
    ({!Ldap_resync.Protocol.composite_cookie}).  The merge discipline
    keeps the composite honest across partial failures — a consumer
    can never acknowledge a shard CSN whose actions it has not
    applied:

    - all shards replied [Incremental]: actions concatenate; shards
      that failed keep their {e previous} cookie component.
    - any reply was [Initial_content] or [Degraded]: these prune the
      consumer globally, so the merge is only safe when {e every}
      covered shard contributed — a partial fan-out returns an error
      (the consumer retries; shards whose sessions advanced answer the
      retry degraded from the acknowledged CSN).  On a full fan-out
      the [Incremental] legs are {e escalated}: their advanced
      sessions are ended and re-polled through
      {!Ldap_resync.Protocol.reparent_cookie}, turning them degraded
      from the consumer's acknowledged CSN, and the merged reply is
      [Degraded] (or [Initial_content] when every leg was initial).

    Merkle anti-entropy walks fan out the same way: shard contents are
    disjoint and segment hashes aggregate by XOR, so the union's tree
    is the per-index XOR of the shard trees, and a [Fetch] merges the
    shipped entries with a composite of the per-shard resume
    cookies. *)

open Ldap

type t

val default_host : string
(** Host name the router registers under (["router"]). *)

val create :
  ?host:string -> Partition.t -> Ldap_resync.Transport.t -> Shard_master.t array -> t
(** Wires the router: every shard master is registered on the
    transport under its host, and the router itself under [host].
    The array length must equal the partition's shard count. *)

val host : t -> string
(** Host name this router answers under on the transport. *)

val partition : t -> Partition.t
(** The partition the router routes by. *)

val shard : t -> int -> Shard_master.t
(** The shard master currently serving shard [i]. *)

val replace_shard : t -> int -> Shard_master.t -> unit
(** Swaps in a (typically recovered) shard and re-registers it on the
    transport — the restart path after a single-shard crash. *)

val seed_from_backend : t -> Backend.t -> (unit, string) result
(** Distributes a source backend's content over the shards through the
    restore path: naming contexts and structural entries everywhere,
    keyed entries at their owner.  Also builds the ownership table. *)

val apply : t -> Update.op -> (Update.record, string) result
(** Routes one write to its owning shard (by entry key for adds, by
    the ownership table otherwise).  Structural writes apply at every
    shard.  A committed after-image whose key moved ownership is
    re-homed with a delete at the old shard and an add at the new. *)

val apply_at : t -> now:int -> Update.op -> int * (Update.record, string) result
(** {!apply} plus service-time accounting: books the write into the
    owning shard's virtual timeline and returns its completion tick. *)

val makespan : t -> int
(** Latest busy horizon across shards — the virtual completion time of
    everything booked so far. *)

val reset_timelines : t -> unit
(** Zeroes every shard's busy horizon. *)

val cover : t -> Query.t -> int list
(** The shard cover the router would fan a query over (geographic
    pruning included while no committed write has violated the
    geography assumption). *)

val geo_pruning : t -> bool
(** Whether geographic pruning is still enabled (flips off permanently
    when a write commits an entry outside its block's geography). *)

val search : t -> Query.t -> (Entry.t list, string) result
(** Fans a search over the cover via {!Ldap.Network.rpc}, restricted
    to each shard's owned content, and concatenates the (disjoint)
    results. *)

val endpoint : t -> Ldap_resync.Transport.endpoint
(** The router as a ReSync endpoint (what {!create} registers). *)

(** Observability for reports and the [ldapctl shard] command. *)
type shard_stat = {
  ss_id : int;
  ss_host : string;
  ss_entries : int;  (** Entries held, placeholders included. *)
  ss_owned : int;  (** Entries this shard owns. *)
  ss_csn : Csn.t;
  ss_sessions : int;
  ss_applied : int;
  ss_busy_until : int;
}

type report = {
  rp_shards : shard_stat list;
  rp_plan_hits : int;
  rp_plan_misses : int;
  rp_searches : int;
  rp_search_contacts : int;  (** Shards contacted by searches. *)
  rp_polls : int;
  rp_poll_contacts : int;  (** Shards contacted by resync exchanges. *)
  rp_moves : int;  (** Ownership re-homings. *)
  rp_partials : int;  (** Poll replies merged with a failed shard. *)
  rp_escalations : int;  (** Incremental legs degraded on mixed merges. *)
  rp_geo_pruning : bool;
}

val report : t -> report
(** Snapshot of per-shard state and the router's routing counters. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable rendering of {!report} (shard table + counters). *)
