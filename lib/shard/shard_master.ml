open Ldap
module Master = Ldap_resync.Master
module Store = Ldap_store.Store
module Backend_store = Ldap_store.Backend_store

type t = {
  sm_id : int;
  sm_host : string;
  sm_schema : Schema.t;
  sm_backend : Backend.t;
  sm_master : Master.t;
  mutable sm_backend_store : Backend_store.t option;
  mutable sm_service_time : int;
  mutable sm_busy_until : int;
  mutable sm_applied : int;
}

type recovery = { rc_backend : Store.recovery; rc_master : Store.recovery }

let host_of i = Printf.sprintf "shard-%d" i

let make ?strategy ?dispatch backend ~id =
  {
    sm_id = id;
    sm_host = host_of id;
    sm_schema = Backend.schema backend;
    sm_backend = backend;
    sm_master = Master.create ?strategy ?dispatch backend;
    sm_backend_store = None;
    sm_service_time = 1;
    sm_busy_until = 0;
    sm_applied = 0;
  }

let create ?strategy ?dispatch ?indexed schema ~id =
  make ?strategy ?dispatch (Backend.create ?indexed schema) ~id

let id t = t.sm_id
let host t = t.sm_host
let schema t = t.sm_schema
let backend t = t.sm_backend
let master t = t.sm_master
let csn t = Backend.csn t.sm_backend
let entries t = Backend.total_entries t.sm_backend
let applied t = t.sm_applied

let seed t ~contexts entries =
  let ( let* ) = Result.bind in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
        let* () = f x in
        each f rest
  in
  let* () = each (fun e -> Backend.add_context t.sm_backend e) contexts in
  let is_context e =
    List.exists (fun c -> Dn.equal (Entry.dn c) (Entry.dn e)) contexts
  in
  let entries =
    List.sort
      (fun a b -> Int.compare (Dn.depth (Entry.dn a)) (Dn.depth (Entry.dn b)))
      entries
  in
  each
    (fun e ->
      if is_context e then Ok () else Backend.restore_entry t.sm_backend e)
    entries

let apply t op =
  match Backend.apply t.sm_backend op with
  | Ok r ->
      t.sm_applied <- t.sm_applied + 1;
      Ok r
  | Error _ as e -> e

let set_service_time t n = t.sm_service_time <- max 1 n

let enqueue_write t ~now =
  t.sm_busy_until <- max now t.sm_busy_until + t.sm_service_time;
  t.sm_busy_until

let busy_until t = t.sm_busy_until
let reset_timeline t = t.sm_busy_until <- 0

let store_names ~prefix = (prefix ^ "-backend", prefix ^ "-master")

let attach_stores ?(sync = false) t medium ~prefix =
  let backend_name, master_name = store_names ~prefix in
  let bs =
    Backend_store.attach t.sm_backend (Store.create ~sync medium ~name:backend_name)
  in
  t.sm_backend_store <- Some bs;
  Master.attach_store t.sm_master (Store.create ~sync medium ~name:master_name);
  Backend_store.checkpoint bs;
  Master.checkpoint t.sm_master

let checkpoint t =
  Option.iter Backend_store.checkpoint t.sm_backend_store;
  Master.checkpoint t.sm_master

let wal_bytes t =
  (match t.sm_backend_store with
  | Some bs -> Store.wal_size (Backend_store.store bs)
  | None -> 0)
  + (match Master.store t.sm_master with Some s -> Store.wal_size s | None -> 0)

let recover ?strategy ?dispatch ?indexed schema ~id medium ~prefix =
  let ( let* ) = Result.bind in
  let backend_name, master_name = store_names ~prefix in
  let backend_store = Store.create medium ~name:backend_name in
  let* backend, rc_backend = Backend_store.recover ?indexed schema backend_store in
  let bs = Backend_store.attach backend backend_store in
  let* master, rc_master =
    Master.recover ?strategy ?dispatch backend
      (Store.create medium ~name:master_name)
  in
  let t =
    {
      sm_id = id;
      sm_host = host_of id;
      sm_schema = schema;
      sm_backend = backend;
      sm_master = master;
      sm_backend_store = Some bs;
      sm_service_time = 1;
      sm_busy_until = 0;
      sm_applied = 0;
    }
  in
  Ok (t, { rc_backend; rc_master })
