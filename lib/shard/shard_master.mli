(** One shard of a partitioned master: a {!Ldap.Backend} plus
    {!Ldap_resync.Master} pair with its own CSN stream, session table
    and WAL/snapshot slots.

    Each shard is an ordinary master — the router registers it on the
    transport under its {!host} and speaks plain ReSync to it — so
    crash/restart of a single shard reuses the existing durable-store
    and Merkle recovery paths unchanged, independently of its peers.

    Write service is modelled on the virtual clock: {!enqueue_write}
    advances a per-shard busy horizon by the configured service time,
    so a sweep measures aggregate throughput as writes-over-makespan
    across shards, which is where partitioning pays. *)

open Ldap

type t

(** What recovering a shard's two stores read back. *)
type recovery = {
  rc_backend : Ldap_store.Store.recovery;
  rc_master : Ldap_store.Store.recovery;
}

val host_of : int -> string
(** Transport host name of shard [i] (["shard-<i>"]). *)

val create :
  ?strategy:Ldap_resync.Master.strategy ->
  ?dispatch:Ldap_resync.Master.dispatch ->
  ?indexed:string list ->
  Schema.t ->
  id:int ->
  t
(** A fresh, empty shard: backend plus master, CSN at zero. *)

val id : t -> int
(** The shard's index in its partition. *)

val host : t -> string
(** Transport host name ("shard-<id>"). *)

val schema : t -> Schema.t
(** Schema the shard's backend was built with. *)

val backend : t -> Backend.t
(** The shard's own backend (its slice of the directory). *)

val master : t -> Ldap_resync.Master.t
(** The ReSync master serving this shard's sessions. *)

val csn : t -> Csn.t
(** Head of the shard's own CSN stream. *)

val entries : t -> int
(** Entries currently held (owned content plus structural
    placeholders). *)

val applied : t -> int
(** Updates applied at this shard since creation/recovery. *)

val seed : t -> contexts:Entry.t list -> Entry.t list -> (unit, string) result
(** Installs initial content through the restore path (no update-log
    records, CSN untouched): naming-context suffixes first, then the
    entries parent-before-child. *)

val apply : t -> Update.op -> (Update.record, string) result
(** Commits one update at this shard (advancing its CSN stream). *)

val set_service_time : t -> int -> unit
(** Virtual ticks one write occupies the shard (default 1). *)

val enqueue_write : t -> now:int -> int
(** Books one write into the shard's service timeline: the shard is
    busy from [max now busy] for one service time; returns the new
    busy horizon (the write's completion tick). *)

val busy_until : t -> int
(** The shard's current busy horizon. *)

val reset_timeline : t -> unit
(** Clears the busy horizon (a sweep measuring several shard counts
    reuses the virtual clock from zero). *)

val attach_stores : ?sync:bool -> t -> Ldap_store.Medium.t -> prefix:string -> unit
(** Attaches per-shard durability: backend WAL/snapshot under
    [<prefix>-backend], master session table under [<prefix>-master],
    then checkpoints both so the medium holds a full image. *)

val checkpoint : t -> unit
(** Snapshots backend and master stores (no-op without
    {!attach_stores}). *)

val wal_bytes : t -> int
(** Combined WAL size of the shard's stores (0 when not durable). *)

val recover :
  ?strategy:Ldap_resync.Master.strategy ->
  ?dispatch:Ldap_resync.Master.dispatch ->
  ?indexed:string list ->
  Schema.t ->
  id:int ->
  Ldap_store.Medium.t ->
  prefix:string ->
  (t * recovery, string) result
(** Rebuilds the shard from its medium after a crash: backend from
    snapshot + WAL replay, master session table on top, journaling
    re-armed.  Surviving consumers of this shard resume incrementally;
    other shards are untouched. *)
