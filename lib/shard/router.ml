open Ldap
module Protocol = Ldap_resync.Protocol
module Master = Ldap_resync.Master
module Transport = Ldap_resync.Transport
module Exchange = Ldap_antientropy.Exchange

type okind = Structural | Owned of int

type t = {
  schema : Schema.t;
  partition : Partition.t;
  shards : Shard_master.t array;
  transport : Transport.t;
  rt_host : string;
  owners : (string, okind * Dn.t) Hashtbl.t;
  mutable geo_ok : bool;
  mutable searches : int;
  mutable search_contacts : int;
  mutable polls : int;
  mutable poll_contacts : int;
  mutable moves : int;
  mutable partials : int;
  mutable escalations : int;
}

let default_host = "router"
let host t = t.rt_host
let partition t = t.partition
let shard t i = t.shards.(i)
let geo_pruning t = t.geo_ok
let cover t q = Partition.cover ~use_geo:t.geo_ok t.partition q
let restrict t s q = Partition.restrict t.partition s q
let shard_host t s = Shard_master.host t.shards.(s)

(* --- Ownership table --------------------------------------------------- *)

let register_owner t dn kind = Hashtbl.replace t.owners (Dn.canonical dn) (kind, dn)
let forget_owner t dn = Hashtbl.remove t.owners (Dn.canonical dn)

(* A rename moves the whole subtree: re-key every tracked descendant. *)
let regraft_owners t ~old_base ~new_base =
  let moved =
    Hashtbl.fold
      (fun key (kind, dn) acc ->
        match Dn.relative_to ~ancestor:old_base dn with
        | Some (_ :: _ as rel) -> (key, kind, rel) :: acc
        | Some [] | None -> acc)
      t.owners []
  in
  List.iter
    (fun (key, kind, rel) ->
      Hashtbl.remove t.owners key;
      let dn = List.fold_left Dn.child new_base (List.rev rel) in
      register_owner t dn kind)
    moved

let note_geo t after =
  if t.geo_ok && not (Partition.geo_consistent t.partition after) then
    t.geo_ok <- false

(* --- Write routing ----------------------------------------------------- *)

let note_rename t (record : Update.record) =
  match (record.before, record.after) with
  | Some b, Some a when not (Dn.equal (Entry.dn b) (Entry.dn a)) ->
      forget_owner t (Entry.dn b);
      regraft_owners t ~old_base:(Entry.dn b) ~new_base:(Entry.dn a)
  | _ -> ()

(* Delete the placeholder/owned copy everywhere but [keep]. *)
let drop_elsewhere t ~keep dn =
  Array.iteri
    (fun i sm ->
      if i <> keep then ignore (Shard_master.apply sm (Update.delete dn)))
    t.shards

let apply_owned t s op =
  match Shard_master.apply t.shards.(s) op with
  | Error _ as e -> e
  | Ok record ->
      note_rename t record;
      (match (record.before, record.after) with
      | Some b, None -> forget_owner t (Entry.dn b)
      | _, Some a ->
          let adn = Entry.dn a in
          note_geo t a;
          if Partition.is_structural t.partition a then begin
            (* The entry lost its key: it is structural now, so every
               shard needs the scaffolding copy. *)
            t.moves <- t.moves + 1;
            Array.iteri
              (fun i sm ->
                if i <> s then ignore (Shard_master.apply sm (Update.add a)))
              t.shards;
            register_owner t adn Structural
          end
          else begin
            let s' = Partition.of_entry t.partition a in
            if s' <> s then begin
              t.moves <- t.moves + 1;
              ignore (Shard_master.apply t.shards.(s) (Update.delete adn));
              ignore (Shard_master.apply t.shards.(s') (Update.add a));
              note_geo t a
            end;
            register_owner t adn (Owned s')
          end
      | None, None -> ());
      Ok record

let apply_structural t op =
  match Shard_master.apply t.shards.(0) op with
  | Error _ as e -> e
  | Ok record ->
      let err = ref None in
      Array.iteri
        (fun i sm ->
          if i > 0 then
            match Shard_master.apply sm op with
            | Ok _ -> ()
            | Error e -> if !err = None then err := Some e)
        t.shards;
      (match !err with
      | Some e -> Error ("structural replication: " ^ e)
      | None ->
          note_rename t record;
          (* A structural rename moves descendants whose geography the
             partition tracks by the old DN: pruning is no longer
             trustworthy. *)
          (match record.op with
          | Update.Modify_dn _ -> t.geo_ok <- false
          | _ -> ());
          (match (record.before, record.after) with
          | Some b, None -> forget_owner t (Entry.dn b)
          | _, Some a ->
              let adn = Entry.dn a in
              if Partition.is_structural t.partition a then
                register_owner t adn Structural
              else begin
                (* The entry gained a key: one shard owns it now. *)
                let s' = Partition.of_entry t.partition a in
                t.moves <- t.moves + 1;
                drop_elsewhere t ~keep:s' adn;
                note_geo t a;
                register_owner t adn (Owned s')
              end
          | None, None -> ());
          Ok record)

let route_of_op t op =
  match op with
  | Update.Add e -> (
      (* A DN that already has an owner routes there even if the new
         entry's key says otherwise: the owning shard holds the
         existing entry and correctly rejects the duplicate add. *)
      match Hashtbl.find_opt t.owners (Dn.canonical (Entry.dn e)) with
      | Some (kind, _) -> kind
      | None ->
          if Partition.is_structural t.partition e then Structural
          else Owned (Partition.of_entry t.partition e))
  | Update.Delete dn | Update.Modify (dn, _) | Update.Modify_dn { dn; _ } -> (
      match Hashtbl.find_opt t.owners (Dn.canonical dn) with
      | Some (kind, _) -> kind
      | None -> Structural)

(* A modifyDN's target may be held by a shard other than the one owning
   the renamed entry, where the owning shard's local existence check
   cannot see it.  The owner table is the router's global view of held
   DNs, so the duplicate target is rejected here with the same error a
   single master's backend raises — keeping the router observationally
   equivalent. *)
let rename_target_clash t op =
  match op with
  | Update.Modify_dn { dn; new_rdn; new_superior; _ } ->
      let parent_dn =
        match new_superior with
        | Some sup -> sup
        | None -> Option.value ~default:Dn.root (Dn.parent dn)
      in
      let new_dn = Dn.child parent_dn new_rdn in
      if Hashtbl.mem t.owners (Dn.canonical new_dn) then Some new_dn else None
  | Update.Add _ | Update.Delete _ | Update.Modify _ -> None

let apply t op =
  match rename_target_clash t op with
  | Some new_dn ->
      Error (Printf.sprintf "entry already exists: %s" (Dn.to_string new_dn))
  | None -> (
      match route_of_op t op with
      | Structural -> apply_structural t op
      | Owned s -> apply_owned t s op)

let apply_at t ~now op =
  let s = match route_of_op t op with Structural -> 0 | Owned s -> s in
  let done_at = Shard_master.enqueue_write t.shards.(s) ~now in
  (done_at, apply t op)

let makespan t =
  Array.fold_left (fun acc sm -> max acc (Shard_master.busy_until sm)) 0 t.shards

let reset_timelines t = Array.iter Shard_master.reset_timeline t.shards

(* --- Seeding ----------------------------------------------------------- *)

let seed_from_backend t source =
  let ( let* ) = Result.bind in
  let contexts =
    List.filter_map
      (fun dit -> Backend.find source (Dit.suffix dit))
      (Backend.contexts source)
  in
  let all =
    List.rev (Backend.fold_entries source ~init:[] ~f:(fun acc e -> e :: acc))
  in
  let rec seed_shards s =
    if s >= Array.length t.shards then Ok ()
    else
      let mine =
        List.filter
          (fun e ->
            Partition.is_structural t.partition e
            || Partition.of_entry t.partition e = s)
          all
      in
      let* () = Shard_master.seed t.shards.(s) ~contexts mine in
      seed_shards (s + 1)
  in
  let* () = seed_shards 0 in
  List.iter
    (fun e ->
      let kind =
        if Partition.is_structural t.partition e then Structural
        else Owned (Partition.of_entry t.partition e)
      in
      register_owner t (Entry.dn e) kind)
    all;
  Ok ()

(* --- Search fan-out ---------------------------------------------------- *)

let search t (q : Query.t) =
  let cov = cover t q in
  t.searches <- t.searches + 1;
  t.search_contacts <- t.search_contacts + List.length cov;
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | s :: rest -> (
        let qs = restrict t s q in
        let serve () =
          match Backend.search (Shard_master.backend t.shards.(s)) qs with
          | Ok { entries; _ } -> Ok entries
          | Error (Backend.No_such_object _) ->
              (* The base names an entry another shard owns: this shard
                 simply holds nothing under it. *)
              Ok []
          | Error (Backend.Base_referral { urls; _ }) ->
              Error ("referral: " ^ String.concat " " urls)
        in
        let request_bytes =
          Ber.message_overhead + Ber.dn_size qs.base
          + String.length (Filter.to_string qs.filter)
        in
        let reply_bytes = function
          | Ok entries ->
              List.fold_left
                (fun acc e -> acc + Ber.entry_size e)
                Ber.message_overhead entries
          | Error _ -> Ber.message_overhead
        in
        match
          Network.rpc
            (Transport.network t.transport)
            ?faults:(Transport.faults t.transport)
            ~from:t.rt_host ~host:(shard_host t s) ~request_bytes ~reply_bytes
            serve
        with
        | Ok (Ok entries) -> go (entries :: acc) rest
        | Ok (Error e) -> Error e
        | Error f -> Error (Network.failure_to_string f))
  in
  go [] cov

(* --- ReSync fan-out ---------------------------------------------------- *)

type leg = {
  lg_shard : int;
  lg_old : string option;  (** The shard's previous cookie component. *)
  lg_reply : Protocol.reply;
  lg_conn : Transport.conn option;
}

let shard_exchange t ~push ~mode s ~cookie q =
  let req = { Protocol.mode; cookie } in
  let qs = restrict t s q in
  match (mode, push) with
  | Protocol.Persist, Some dpush -> (
      (* Relay shard pushes into the downstream channel.  A downstream
         that stopped draining (or reset) kills the shard-side
         connection too, so the shard master sees [Push_gone] on its
         next send and retires the leg instead of pushing into the
         void — backpressure propagates through the router. *)
      let conn_ref = ref None in
      let forward a =
        match dpush.Protocol.pc_send a with
        | Protocol.Push_ok -> ()
        | Protocol.Push_stalled | Protocol.Push_gone ->
            dpush.Protocol.pc_close ();
            Option.iter Transport.kill !conn_ref
      in
      match
        Transport.connect t.transport ~host:(shard_host t s) ~from:t.rt_host
          ~push:forward req qs
      with
      | Ok (reply, conn) ->
          conn_ref := Some conn;
          Ok (reply, Some conn)
      | Error e -> Error e)
  | _ -> (
      match
        Transport.exchange t.transport ~host:(shard_host t s) ~from:t.rt_host
          req qs
      with
      | Ok reply -> Ok (reply, None)
      | Error e -> Error e)

let components_of req_cookie =
  match req_cookie with
  | None -> []
  | Some c -> (
      match Protocol.parse_composite_cookie c with
      | Some comps -> comps
      (* A foreign (non-composite) cookie names sessions no shard
         knows: start over — the initial reply prunes the consumer
         clean, which is the sound answer. *)
      | None -> [])

let sync_end_shard t s cookie q =
  ignore
    (shard_exchange t ~push:None ~mode:Protocol.Sync_end s ~cookie:(Some cookie)
       q)

(* End an Incremental leg's advanced session and re-poll it from the
   consumer's acknowledged CSN via the foreign-session cookie: the
   shard answers Degraded from exactly that point. *)
let escalate t ~push ~mode leg q =
  t.escalations <- t.escalations + 1;
  Option.iter Transport.kill leg.lg_conn;
  (match leg.lg_reply.Protocol.cookie with
  | Some advanced -> sync_end_shard t leg.lg_shard advanced q
  | None -> ());
  let reparent = Option.bind leg.lg_old Protocol.reparent_cookie in
  match shard_exchange t ~push ~mode leg.lg_shard ~cookie:reparent q with
  | Ok (reply, conn) -> Ok { leg with lg_reply = reply; lg_conn = conn }
  | Error e -> Error (Transport.error_to_string e)

let merged_reply ~kind ~stale legs =
  let components =
    stale
    @ List.filter_map
        (fun leg ->
          Option.map (fun c -> (leg.lg_shard, c)) leg.lg_reply.Protocol.cookie)
        legs
  in
  let actions =
    (* An ownership move lands as a delete on the old shard's leg and
       an add on the new shard's, both for the same DN; per-leg action
       sets are coalesced to one action per entry, so ordering deletes
       first keeps every cross-leg pair well-ordered. *)
    let rank = function Ldap_resync.Action.Delete _ -> 0 | _ -> 1 in
    List.stable_sort
      (fun a b -> Int.compare (rank a) (rank b))
      (List.concat_map (fun leg -> leg.lg_reply.Protocol.actions) legs)
  in
  {
    Protocol.kind;
    actions;
    cookie = Some (Protocol.composite_cookie components);
  }

let handle_poll t ~push mode req_cookie q =
  if mode = Protocol.Persist && push = None then
    Error "persist mode requires a push channel"
  else begin
    let components = components_of req_cookie in
    let cov = cover t q in
    t.polls <- t.polls + 1;
    t.poll_contacts <- t.poll_contacts + List.length cov;
    let stale =
      (* Components of shards outside the cover ride along unchanged:
         the cover can only widen (geography pruning only switches
         off), so they stay resumable. *)
      List.filter (fun (s, _) -> not (List.mem s cov)) components
    in
    let legs, failed =
      List.fold_left
        (fun (legs, failed) s ->
          let old = List.assoc_opt s components in
          match shard_exchange t ~push ~mode s ~cookie:old q with
          | Ok (reply, conn) ->
              ( { lg_shard = s; lg_old = old; lg_reply = reply; lg_conn = conn }
                :: legs,
                failed )
          | Error e -> (legs, (s, old, e) :: failed))
        ([], []) cov
    in
    let legs = List.rev legs and failed = List.rev failed in
    let kill_legs () =
      List.iter (fun leg -> Option.iter Transport.kill leg.lg_conn) legs
    in
    let all_incremental =
      List.for_all
        (fun leg -> leg.lg_reply.Protocol.kind = Protocol.Incremental)
        legs
    in
    match failed with
    | [] ->
        if all_incremental then Ok (merged_reply ~kind:Protocol.Incremental ~stale legs)
        else if
          List.for_all
            (fun leg -> leg.lg_reply.Protocol.kind <> Protocol.Incremental)
            legs
        then begin
          let kind =
            if
              List.for_all
                (fun leg ->
                  leg.lg_reply.Protocol.kind = Protocol.Initial_content)
                legs
            then Protocol.Initial_content
            else Protocol.Degraded
          in
          Ok (merged_reply ~kind ~stale legs)
        end
        else begin
          (* Mixed: an Initial/Degraded leg prunes the consumer
             globally, so Incremental legs must be replayed degraded
             from the acknowledged CSN or their updates would be
             pruned away. *)
          let rec re_poll acc = function
            | [] -> Ok (List.rev acc)
            | leg :: rest ->
                if leg.lg_reply.Protocol.kind = Protocol.Incremental then (
                  match escalate t ~push ~mode leg q with
                  | Ok leg' -> re_poll (leg' :: acc) rest
                  | Error e -> Error e)
                else re_poll (leg :: acc) rest
          in
          match re_poll [] legs with
          | Error e ->
              kill_legs ();
              Error ("shard escalation failed: " ^ e)
          | Ok legs ->
              let kind =
                if
                  List.for_all
                    (fun leg ->
                      leg.lg_reply.Protocol.kind = Protocol.Initial_content)
                    legs
                then Protocol.Initial_content
                else Protocol.Degraded
              in
              Ok (merged_reply ~kind ~stale legs)
        end
    | (s, _, e) :: _ ->
        if legs <> [] && all_incremental then begin
          (* Failed shards keep their previous component: their CSNs
             are acknowledged only up to what the consumer actually
             applied. *)
          t.partials <- t.partials + 1;
          let stale =
            stale
            @ List.filter_map
                (fun (s, old, _) -> Option.map (fun c -> (s, c)) old)
                failed
          in
          Ok (merged_reply ~kind:Protocol.Incremental ~stale legs)
        end
        else begin
          (* A pruning reply merged with a missing shard would discard
             that shard's entries at the consumer: refuse, let the
             consumer retry.  Advanced shard sessions answer the retry
             degraded from the acknowledged CSN. *)
          kill_legs ();
          Error
            (Printf.sprintf "shard %d unreachable: %s" s
               (Transport.error_to_string e))
        end
  end

let handle_sync_end t req_cookie q =
  match req_cookie with
  | None -> Error "sync_end requires a cookie"
  | Some c -> (
      match Protocol.parse_composite_cookie c with
      | None -> Error "malformed cookie"
      | Some comps ->
          List.iter
            (fun (s, comp) ->
              if s >= 0 && s < Array.length t.shards then
                sync_end_shard t s comp q)
            comps;
          Ok { Protocol.kind = Protocol.Incremental; actions = []; cookie = None })

let ep_handle t ~push (req : Protocol.request) q =
  match req.mode with
  | Protocol.Sync_end -> handle_sync_end t req.cookie q
  | Protocol.Poll | Protocol.Persist -> handle_poll t ~push req.mode req.cookie q

let ep_abandon t ~cookie =
  match Protocol.parse_composite_cookie cookie with
  | None -> ()
  | Some comps ->
      List.iter
        (fun (s, comp) ->
          if s >= 0 && s < Array.length t.shards then
            Master.abandon (Shard_master.master t.shards.(s)) ~cookie:comp)
        comps

let ep_estimate t q =
  List.fold_left
    (fun acc s ->
      acc + Backend.count_matching (Shard_master.backend t.shards.(s)) (restrict t s q))
    0 (cover t q)

(* --- Merkle anti-entropy fan-out --------------------------------------- *)

(* Shard contents are disjoint and tree tiers aggregate entry hashes
   by XOR, so the union's hash at any index is the XOR of the shards'
   hashes there (absent = zero). *)
let xor_assoc lists =
  let tbl = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (i, h) ->
         let prev = Option.value (Hashtbl.find_opt tbl i) ~default:0L in
         Hashtbl.replace tbl i (Int64.logxor prev h)))
    lists;
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun i h acc -> (i, h) :: acc) tbl [])

let empty_tree_reply = function
  | Exchange.Root -> Exchange.Root_hash 0L
  | Exchange.Branches _ -> Exchange.Branch_hashes []
  | Exchange.Segments _ -> Exchange.Segment_hashes []
  | Exchange.Fetch _ ->
      Exchange.Segment_entries
        { entries = []; cookie = Some (Protocol.composite_cookie []) }

let merge_tree req legs =
  match legs with
  | [] -> Ok (empty_tree_reply req)
  | (_, Exchange.Root_hash _) :: _ ->
      let rec fold acc = function
        | [] -> Ok (Exchange.Root_hash acc)
        | (_, Exchange.Root_hash h) :: rest -> fold (Int64.logxor acc h) rest
        | _ -> Error "inconsistent anti-entropy replies"
      in
      fold 0L legs
  | (_, Exchange.Branch_hashes _) :: _ ->
      let rec collect acc = function
        | [] -> Ok (Exchange.Branch_hashes (xor_assoc (List.rev acc)))
        | (_, Exchange.Branch_hashes hs) :: rest -> collect (hs :: acc) rest
        | _ -> Error "inconsistent anti-entropy replies"
      in
      collect [] legs
  | (_, Exchange.Segment_hashes _) :: _ ->
      let rec collect acc = function
        | [] -> Ok (Exchange.Segment_hashes (xor_assoc (List.rev acc)))
        | (_, Exchange.Segment_hashes hs) :: rest -> collect (hs :: acc) rest
        | _ -> Error "inconsistent anti-entropy replies"
      in
      collect [] legs
  | (_, Exchange.Segment_entries _) :: _ ->
      let rec collect entries comps = function
        | [] ->
            Ok
              (Exchange.Segment_entries
                 {
                   entries = List.concat (List.rev entries);
                   cookie = Some (Protocol.composite_cookie (List.rev comps));
                 })
        | (s, Exchange.Segment_entries { entries = es; cookie }) :: rest ->
            let comps =
              match cookie with Some c -> (s, c) :: comps | None -> comps
            in
            collect (es :: entries) comps rest
        | _ -> Error "inconsistent anti-entropy replies"
      in
      collect [] [] legs

let ep_tree t req q =
  let cov = cover t q in
  let rec go acc = function
    | [] -> merge_tree req (List.rev acc)
    | s :: rest -> (
        match
          Transport.tree_exchange t.transport ~host:(shard_host t s)
            ~from:t.rt_host req (restrict t s q)
        with
        | Ok reply -> go ((s, reply) :: acc) rest
        | Error e -> Error (Transport.error_to_string e))
  in
  go [] cov

(* --- Wiring ------------------------------------------------------------ *)

let endpoint t =
  {
    Transport.ep_schema = t.schema;
    ep_handle = (fun ~push req q -> ep_handle t ~push req q);
    ep_abandon = (fun ~cookie -> ep_abandon t ~cookie);
    ep_estimate = (fun q -> ep_estimate t q);
    ep_tree = (fun req q -> ep_tree t req q);
  }

let register_shard t sm =
  Transport.add_master t.transport ~name:(Shard_master.host sm)
    (Shard_master.master sm)

let create ?(host = default_host) partition transport shards =
  if Array.length shards <> Partition.shards partition then
    invalid_arg "Router.create: shard array does not match partition";
  if Array.length shards = 0 then invalid_arg "Router.create: no shards";
  let t =
    {
      schema = Shard_master.schema shards.(0);
      partition;
      shards = Array.copy shards;
      transport;
      rt_host = host;
      owners = Hashtbl.create 1024;
      geo_ok = true;
      searches = 0;
      search_contacts = 0;
      polls = 0;
      poll_contacts = 0;
      moves = 0;
      partials = 0;
      escalations = 0;
    }
  in
  Array.iter (register_shard t) shards;
  Transport.add_endpoint transport ~name:host (endpoint t);
  t

let replace_shard t i sm =
  t.shards.(i) <- sm;
  register_shard t sm

(* --- Reports ----------------------------------------------------------- *)

type shard_stat = {
  ss_id : int;
  ss_host : string;
  ss_entries : int;
  ss_owned : int;
  ss_csn : Csn.t;
  ss_sessions : int;
  ss_applied : int;
  ss_busy_until : int;
}

type report = {
  rp_shards : shard_stat list;
  rp_plan_hits : int;
  rp_plan_misses : int;
  rp_searches : int;
  rp_search_contacts : int;
  rp_polls : int;
  rp_poll_contacts : int;
  rp_moves : int;
  rp_partials : int;
  rp_escalations : int;
  rp_geo_pruning : bool;
}

let report t =
  let owned = Array.make (Array.length t.shards) 0 in
  Hashtbl.iter
    (fun _ (kind, _) ->
      match kind with
      | Owned s -> owned.(s) <- owned.(s) + 1
      | Structural -> owned.(0) <- owned.(0) + 1)
    t.owners;
  let rp_shards =
    Array.to_list
      (Array.mapi
         (fun i sm ->
           {
             ss_id = i;
             ss_host = Shard_master.host sm;
             ss_entries = Shard_master.entries sm;
             ss_owned = owned.(i);
             ss_csn = Shard_master.csn sm;
             ss_sessions = Master.session_count (Shard_master.master sm);
             ss_applied = Shard_master.applied sm;
             ss_busy_until = Shard_master.busy_until sm;
           })
         t.shards)
  in
  {
    rp_shards;
    rp_plan_hits = Partition.plan_hits t.partition;
    rp_plan_misses = Partition.plan_misses t.partition;
    rp_searches = t.searches;
    rp_search_contacts = t.search_contacts;
    rp_polls = t.polls;
    rp_poll_contacts = t.poll_contacts;
    rp_moves = t.moves;
    rp_partials = t.partials;
    rp_escalations = t.escalations;
    rp_geo_pruning = t.geo_ok;
  }

let pp_report ppf r =
  let hit_ratio =
    let total = r.rp_plan_hits + r.rp_plan_misses in
    if total = 0 then 0.0 else float_of_int r.rp_plan_hits /. float_of_int total
  in
  Format.fprintf ppf "@[<v>shards:@,";
  List.iter
    (fun s ->
      Format.fprintf ppf
        "  %-10s entries %6d  owned %6d  csn %s  sessions %3d  applied %6d@,"
        s.ss_host s.ss_entries s.ss_owned (Csn.to_string s.ss_csn)
        s.ss_sessions s.ss_applied)
    r.rp_shards;
  Format.fprintf ppf
    "plan cache: %d hits / %d misses (%.2f hit ratio)@,\
     searches: %d over %d shard contacts@,\
     polls: %d over %d shard contacts@,\
     moves %d, partial merges %d, escalations %d, geo pruning %b@]"
    r.rp_plan_hits r.rp_plan_misses hit_ratio r.rp_searches r.rp_search_contacts
    r.rp_polls r.rp_poll_contacts r.rp_moves r.rp_partials r.rp_escalations
    r.rp_geo_pruning
