open Ldap
module Template = Ldap_containment.Template
module Symbolic = Ldap_containment.Symbolic

let structural_shard = 0

(* One staged cover plan per filter shape: for each shard, the
   compiled "provably holds no answer" condition ([None] when
   compilation was infeasible — that shard is then always contacted). *)
type plan = {
  pl_template : Template.t;
  pl_skip : Symbolic.Compiled.cond option array;
}

type t = {
  schema : Schema.t;
  attr : string;
  shards : int;
  prefix_len : int;
  block_geos : Dn.t option array;
  block_shard : int array;
  by_prefix : (string, int) Hashtbl.t;  (* normalized prefix -> block index *)
  shard_blocks : string list array;
  skip_rhs : Filter.t array;
      (* Skip shard [s] iff query ⊆ skip_rhs.(s): for s > 0 that is
         ¬(blocks of s); for shard 0 it is the union of every OTHER
         shard's blocks (structural and unknown-block entries live at
         shard 0, so only a query provably confined to other shards'
         blocks can skip it). *)
  plans : (string, plan) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let norm_prefix t p = Value.normalize (Schema.syntax_of t.schema t.attr) p

let block_filter attr prefix =
  Filter.Pred
    (Filter.Substrings (attr, { initial = Some prefix; any = []; final = None }))

let union_filter attr = function
  | [ p ] -> block_filter attr p
  | ps -> Filter.Or (List.map (block_filter attr) ps)

let create ?(attr = "serialnumber") schema ~shards ~blocks =
  if shards < 1 then invalid_arg "Partition.create: shards < 1";
  let n = Array.length blocks in
  if n = 0 then invalid_arg "Partition.create: no blocks";
  let attr = String.lowercase_ascii attr in
  let prefix_len = String.length (fst blocks.(0)) in
  Array.iter
    (fun (p, _) ->
      if String.length p <> prefix_len then
        invalid_arg "Partition.create: block prefixes must share one width")
    blocks;
  let t =
    {
      schema;
      attr;
      shards;
      prefix_len;
      block_geos = Array.map snd blocks;
      block_shard = Array.init n (fun i -> i mod shards);
      by_prefix = Hashtbl.create (2 * n);
      shard_blocks = Array.make shards [];
      skip_rhs = Array.make shards Filter.tt;
      plans = Hashtbl.create 16;
      hits = 0;
      misses = 0;
    }
  in
  Array.iteri
    (fun i (p, _) ->
      let key = norm_prefix t p in
      if Hashtbl.mem t.by_prefix key then
        invalid_arg "Partition.create: duplicate block prefix";
      Hashtbl.replace t.by_prefix key i;
      let s = t.block_shard.(i) in
      t.shard_blocks.(s) <- t.shard_blocks.(s) @ [ p ])
    blocks;
  for s = 0 to shards - 1 do
    if s = 0 then begin
      let others =
        List.concat
          (List.init (shards - 1) (fun k -> t.shard_blocks.(k + 1)))
      in
      t.skip_rhs.(0) <-
        (match others with [] -> Filter.Or [] | ps -> union_filter attr ps)
    end
    else
      t.skip_rhs.(s) <- Filter.Not (union_filter attr t.shard_blocks.(s))
  done;
  t

let of_enterprise ent ~shards =
  create
    (Ldap_dirgen.Enterprise.schema ent)
    ~shards
    ~blocks:
      (Array.map
         (fun (p, dn) -> (p, Some dn))
         (Ldap_dirgen.Enterprise.partition_blocks ent))

let shards t = t.shards
let attr t = t.attr
let blocks_of t s = t.shard_blocks.(s)
let is_structural t e = Entry.get e t.attr = []

let block_of_value t v =
  if String.length v < t.prefix_len then None
  else Hashtbl.find_opt t.by_prefix (norm_prefix t (String.sub v 0 t.prefix_len))

let of_serial t v =
  match block_of_value t v with
  | Some b -> t.block_shard.(b)
  | None -> structural_shard

let of_entry t e =
  match Entry.get e t.attr with
  | [] -> structural_shard
  | v :: _ -> of_serial t v

let geo_consistent t e =
  match Entry.get e t.attr with
  | [] -> true
  | v :: _ -> (
      match block_of_value t v with
      | None -> true (* unknown block: shard 0, never geography-pruned *)
      | Some b -> (
          match t.block_geos.(b) with
          | None -> true (* block opted out of geographic pruning *)
          | Some g -> Dn.ancestor_of ~strict:true g (Entry.dn e)))

let ownership_filter t s =
  if s = structural_shard then
    (* Everything not provably another shard's: shard 0's own blocks,
       structural entries (no key at all) and keys in no known block
       all live here — exactly the complement of skip_rhs.(0). *)
    Filter.Not t.skip_rhs.(0)
  else union_filter t.attr t.shard_blocks.(s)

let restrict t s (q : Query.t) =
  { q with filter = Filter.normalize (Filter.And [ ownership_filter t s; q.filter ]) }

(* Geographic pruning: when the query base sits inside some block's
   geography subtree, only shards owning a block whose geography
   covers the base (or whose geography is unknown) can hold answers.
   Shard 0 is never geography-pruned — structural entries span all
   geographies. *)
let geo_cover t (q : Query.t) =
  if Dn.is_root q.base then None
  else begin
    let keep = Array.make t.shards false in
    keep.(structural_shard) <- true;
    let anchored = ref false in
    Array.iteri
      (fun b geo ->
        match geo with
        | Some g when Dn.ancestor_of ~strict:false g q.base ->
            anchored := true;
            keep.(t.block_shard.(b)) <- true
        | Some _ -> ()
        | None -> keep.(t.block_shard.(b)) <- true)
      t.block_geos;
    if !anchored then Some keep else None
  end

(* Template with every assertion value constant: the skip conditions'
   right-hand sides are concrete filters, so their holes fold away at
   compile time and evaluating a plan needs only the query's values. *)
let rec const_template (f : Filter.t) : Template.t =
  match f with
  | Filter.And fs -> Template.And (List.map const_template fs)
  | Filter.Or fs -> Template.Or (List.map const_template fs)
  | Filter.Not g -> Template.Not (const_template g)
  | Filter.Pred p ->
      Template.Pred
        (match p with
        | Filter.Equality (a, v) -> Template.Equality (a, Template.Const v)
        | Filter.Greater_eq (a, v) -> Template.Greater_eq (a, Template.Const v)
        | Filter.Less_eq (a, v) -> Template.Less_eq (a, Template.Const v)
        | Filter.Present a -> Template.Present a
        | Filter.Approx (a, v) -> Template.Approx (a, Template.Const v)
        | Filter.Substrings (a, s) ->
            Template.Substrings
              ( a,
                Option.map (fun v -> Template.Const v) s.initial,
                List.map (fun v -> Template.Const v) s.any,
                Option.map (fun v -> Template.Const v) s.final ))

let plan_for t f =
  let tmpl = Template.of_filter f in
  let key = Template.shape_key tmpl in
  match Hashtbl.find_opt t.plans key with
  | Some p ->
      t.hits <- t.hits + 1;
      p
  | None ->
      t.misses <- t.misses + 1;
      let skip =
        Array.init t.shards (fun s ->
            match
              Symbolic.compile t.schema ~left:tmpl
                ~right:(const_template t.skip_rhs.(s))
            with
            | None -> None
            | Some cond -> Some (Symbolic.Compiled.compile t.schema cond))
      in
      let p = { pl_template = tmpl; pl_skip = skip } in
      Hashtbl.replace t.plans key p;
      p

let empty_shard t s = s > structural_shard && t.shard_blocks.(s) = []

let assemble t ~geo ~skip =
  let out = ref [] in
  for s = t.shards - 1 downto 0 do
    let geo_ok = match geo with None -> true | Some keep -> keep.(s) in
    if geo_ok && (not (empty_shard t s)) && not (skip s) then out := s :: !out
  done;
  !out

let cover ?(use_geo = true) t (q : Query.t) =
  let f = Filter.normalize q.filter in
  let plan = plan_for t f in
  let values = Template.match_filter t.schema plan.pl_template f in
  let geo = if use_geo then geo_cover t q else None in
  assemble t ~geo ~skip:(fun s ->
      match (values, plan.pl_skip.(s)) with
      | Some vs, Some cond -> Symbolic.Compiled.eval cond ~left:vs ~right:[||]
      | _ -> false)

let cover_uncached ?(use_geo = true) t (q : Query.t) =
  let f = Filter.normalize q.filter in
  let geo = if use_geo then geo_cover t q else None in
  assemble t ~geo ~skip:(fun s ->
      (not (empty_shard t s)) && Symbolic.contained t.schema f t.skip_rhs.(s))

let plan_hits t = t.hits
let plan_misses t = t.misses
