open Ldap
module Enterprise = Ldap_dirgen.Enterprise
module Prng = Ldap_dirgen.Prng
module Consumer = Ldap_resync.Consumer
module Transport = Ldap_resync.Transport
module Medium = Ldap_store.Medium

type config = {
  shard_counts : int list;
  employees : int;
  countries : int;
  writes : int;
  queries : int;
  service_time : int;
  crash_updates : int;
  seed : int;
}

let default_config =
  {
    shard_counts = [ 1; 2; 4; 8 ];
    employees = 4_000;
    countries = 20;
    writes = 2_000;
    queries = 200;
    service_time = 4;
    crash_updates = 40;
    seed = 42;
  }

let smoke_config =
  {
    shard_counts = [ 1; 2; 4; 8 ];
    employees = 800;
    countries = 10;
    writes = 240;
    queries = 60;
    service_time = 4;
    crash_updates = 10;
    seed = 42;
  }

type point = {
  sp_shards : int;
  sp_makespan : int;
  sp_throughput : float;
  sp_speedup : float;
  sp_single_cover_max : int;
  sp_fanout_avg : float;
  sp_fanout_ratio : float;
  sp_plan_hit_ratio : float;
  sp_warm_bytes : int;
  sp_cold_bytes : int;
  sp_wal_replayed : int;
  sp_recover_ok : bool;
}

let must = function Ok x -> x | Error e -> failwith ("Shard sweep: " ^ e)

let phone prng =
  Printf.sprintf "%03d-%04d" (Prng.int prng 1000) (Prng.int prng 10000)

(* The routed write burst: modifies over uniformly random employees,
   so shard load follows the per-country employee distribution. *)
let write_burst ent prng n =
  let emps = Enterprise.employees ent in
  List.init n (fun _ ->
      let e = emps.(Prng.int prng (Array.length emps)) in
      Update.modify e.Enterprise.emp_dn
        [ Update.replace_values "telephonenumber" [ phone prng ] ])

(* The fan-out query mix: block-prefix filters (single-shard),
   department and mail filters (no organized key: broadcast),
   geography-anchored scans and serial+department conjunctions. *)
let query_mix ent prng n =
  let cfg = Enterprise.config ent in
  let root = Enterprise.root_dn ent in
  let depts = Enterprise.dept_numbers ent in
  List.init n (fun _ ->
      let country = Prng.int prng cfg.Enterprise.countries in
      let block = Enterprise.serial_block ent country in
      match Prng.int prng 5 with
      | 0 | 1 ->
          Query.make ~base:root
            (Filter.of_string_exn (Printf.sprintf "(serialnumber=%s*)" block))
      | 2 ->
          Query.make ~base:root
            (Filter.of_string_exn
               (Printf.sprintf "(departmentnumber=%s)"
                  depts.(Prng.int prng (Array.length depts))))
      | 3 ->
          Query.make
            ~base:(Enterprise.country_dn ent country)
            (Filter.of_string_exn "(objectclass=inetorgperson)")
      | _ ->
          Query.make ~base:root
            (Filter.of_string_exn
               (Printf.sprintf "(&(serialnumber=%s*)(departmentnumber=%s))"
                  block
                  depts.(Prng.int prng (Array.length depts)))))

let build_router ent ~shards transport =
  let partition = Partition.of_enterprise ent ~shards in
  let masters =
    Array.init shards (fun i ->
        Shard_master.create (Enterprise.schema ent) ~id:i)
  in
  let router = Router.create partition transport masters in
  must (Router.seed_from_backend router (Enterprise.backend ent));
  router

(* --- Per-point measurements -------------------------------------------- *)

let measure_throughput config router ops =
  Router.reset_timelines router;
  List.iter
    (fun i -> Shard_master.set_service_time (Router.shard router i) config.service_time)
    (List.init (Partition.shards (Router.partition router)) Fun.id);
  List.iter (fun op -> ignore (must (snd (Router.apply_at router ~now:0 op)))) ops;
  let makespan = max 1 (Router.makespan router) in
  (makespan, float_of_int (List.length ops) /. float_of_int makespan)

let measure_fanout ent router queries =
  let partition = Router.partition router in
  let shards = Partition.shards partition in
  let root = Enterprise.root_dn ent in
  let single_cover_max =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc block ->
            let q =
              Query.make ~base:root
                (Filter.of_string_exn
                   (Printf.sprintf "(serialnumber=%s*)" block))
            in
            max acc (List.length (Router.cover router q)))
          acc
          (Partition.blocks_of partition s))
      0
      (List.init shards Fun.id)
  in
  let total =
    List.fold_left
      (fun acc q -> acc + List.length (Router.cover router q))
      0 queries
  in
  let avg = float_of_int total /. float_of_int (max 1 (List.length queries)) in
  (single_cover_max, avg, avg /. float_of_int shards)

(* One shard crashes and recovers from its durable stores; the
   consumer subscribed through the router resumes its composite
   cookie and must pay only the post-checkpoint delta. *)
let measure_crash config ent router transport prng =
  let partition = Router.partition router in
  let shards = Partition.shards partition in
  let country = if config.countries > 1 then 1 else 0 in
  let block = Enterprise.serial_block ent country in
  let target = Partition.of_serial partition block in
  let schema = Enterprise.schema ent in
  let q =
    Query.make ~base:(Enterprise.root_dn ent)
      (Filter.of_string_exn (Printf.sprintf "(serialnumber=%s*)" block))
  in
  let medium = Medium.memory () in
  for i = 0 to shards - 1 do
    Shard_master.attach_stores (Router.shard router i) medium
      ~prefix:(Printf.sprintf "shard-%d" i)
  done;
  let consumer = Consumer.create schema q in
  let sync c =
    match Consumer.sync_over c transport ~host:(Router.host router) with
    | Ok outcome -> outcome
    | Error e -> failwith ("Shard sweep: " ^ Consumer.sync_error_to_string e)
  in
  ignore (sync consumer);
  let burst n =
    let emps = Enterprise.employees_of_country ent country in
    for _ = 1 to n do
      let e = emps.(Prng.int prng (Array.length emps)) in
      ignore
        (must
           (Router.apply router
              (Update.modify e.Enterprise.emp_dn
                 [ Update.replace_values "telephonenumber" [ phone prng ] ])))
    done
  in
  burst config.crash_updates;
  ignore (sync consumer);
  Shard_master.checkpoint (Router.shard router target);
  burst config.crash_updates;
  (* Crash: the in-memory shard is gone; rebuild it from its medium
     and swap it back in under the same host. *)
  let recovered, recovery =
    must
      (Shard_master.recover schema ~id:target medium
         ~prefix:(Printf.sprintf "shard-%d" target))
  in
  Router.replace_shard router target recovered;
  let net = Transport.network transport in
  Network.reset_stats net;
  ignore (sync consumer);
  let warm_bytes = (Network.stats net).Network.sync_bytes in
  let cold = Consumer.create schema q in
  Network.reset_stats net;
  ignore (sync cold);
  let cold_bytes = (Network.stats net).Network.sync_bytes in
  let dns c =
    List.sort String.compare
      (List.map (fun e -> Dn.canonical (Entry.dn e)) (Consumer.entries c))
  in
  ( warm_bytes,
    cold_bytes,
    List.length recovery.Shard_master.rc_backend.Ldap_store.Store.records,
    dns consumer = dns cold )

let point config ent ~shards =
  let prng = Prng.create (config.seed + shards) in
  let transport = Transport.create (Network.create ()) in
  let router = build_router ent ~shards transport in
  let makespan, throughput =
    measure_throughput config router (write_burst ent prng config.writes)
  in
  let single_cover_max, fanout_avg, fanout_ratio =
    measure_fanout ent router (query_mix ent prng config.queries)
  in
  let warm_bytes, cold_bytes, wal_replayed, recover_ok =
    measure_crash config ent router transport prng
  in
  let report = Router.report router in
  let plan_hit_ratio =
    let total = report.Router.rp_plan_hits + report.Router.rp_plan_misses in
    if total = 0 then 0.0
    else float_of_int report.Router.rp_plan_hits /. float_of_int total
  in
  {
    sp_shards = shards;
    sp_makespan = makespan;
    sp_throughput = throughput;
    sp_speedup = 1.0;
    sp_single_cover_max = single_cover_max;
    sp_fanout_avg = fanout_avg;
    sp_fanout_ratio = fanout_ratio;
    sp_plan_hit_ratio = plan_hit_ratio;
    sp_warm_bytes = warm_bytes;
    sp_cold_bytes = cold_bytes;
    sp_wal_replayed = wal_replayed;
    sp_recover_ok = recover_ok;
  }

let run ?(config = default_config) () =
  let ent =
    Enterprise.build
      {
        Enterprise.default_config with
        seed = config.seed;
        countries = config.countries;
        employees = config.employees;
        target_countries = min 5 (max 1 (config.countries / 2));
      }
  in
  let points =
    List.map (fun shards -> point config ent ~shards) config.shard_counts
  in
  let base =
    match List.find_opt (fun p -> p.sp_shards = 1) points with
    | Some p -> p.sp_throughput
    | None -> ( match points with p :: _ -> p.sp_throughput | [] -> 1.0)
  in
  List.map
    (fun p ->
      { p with sp_speedup = (if base > 0.0 then p.sp_throughput /. base else 0.0) })
    points

let json_of_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shards\": %d, \"makespan\": %d, \"throughput\": %.4f, \
            \"speedup\": %.3f, \"single_cover_max\": %d, \"fanout_avg\": %.3f, \
            \"fanout_ratio\": %.3f, \"plan_hit_ratio\": %.3f, \
            \"warm_bytes\": %d, \"cold_bytes\": %d, \"wal_replayed\": %d, \
            \"recover_ok\": %b}%s\n"
           p.sp_shards p.sp_makespan p.sp_throughput p.sp_speedup
           p.sp_single_cover_max p.sp_fanout_avg p.sp_fanout_ratio
           p.sp_plan_hit_ratio p.sp_warm_bytes p.sp_cold_bytes p.sp_wal_replayed
           p.sp_recover_ok
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ]";
  Buffer.contents b
