(** The sharding experiment: routed writes, covered reads and
    per-shard crash recovery at growing shard counts.

    Per shard count a fresh partition/router is seeded from one shared
    enterprise directory, then three things are measured over
    identical seeds:

    - {e write throughput}: a burst of routed modifies is booked into
      the shards' virtual service timelines; throughput is
      writes-over-makespan, so balanced partitions approach a [k]-fold
      speedup at [k] shards while a single shard serializes the burst;
    - {e read fan-out}: the shard covers of a deterministic query mix
      (block-prefix, department, geography-anchored and conjunctive
      filters), against the naive broadcast of contacting every shard;
      single-block filters must always cover exactly one shard;
    - {e per-shard crash/restart}: one shard with durable stores is
      checkpointed, takes a post-checkpoint update burst, crashes and
      recovers; a consumer subscribed through the router resumes its
      composite cookie, and its catch-up bytes are compared with a
      cold re-subscription. *)

type config = {
  shard_counts : int list;  (** Shard counts swept, e.g. 1/2/4/8. *)
  employees : int;  (** Directory size. *)
  countries : int;  (** Serial blocks (one per country). *)
  writes : int;  (** Routed write burst per point. *)
  queries : int;  (** Queries in the fan-out mix per point. *)
  service_time : int;  (** Virtual ticks one write occupies a shard. *)
  crash_updates : int;  (** Updates landed between checkpoint and crash. *)
  seed : int;  (** Seeds the directory and every stream. *)
}

val default_config : config
(** Shards 1/2/4/8 over 20 countries, 4000 employees, 2000 writes. *)

val smoke_config : config
(** CI-sized: 800 employees over 10 countries, 240 writes. *)

(** One shard count's measurements. *)
type point = {
  sp_shards : int;
  sp_makespan : int;  (** Virtual completion time of the write burst. *)
  sp_throughput : float;  (** Writes per virtual tick. *)
  sp_speedup : float;  (** Throughput relative to the 1-shard point. *)
  sp_single_cover_max : int;
      (** Worst cover size over every single-block filter — gated
          to 1: a single-shard filter contacts one shard at any
          count. *)
  sp_fanout_avg : float;  (** Mean cover size of the query mix. *)
  sp_fanout_ratio : float;
      (** Mean cover over the naive broadcast (= shard count). *)
  sp_plan_hit_ratio : float;  (** Coverage-plan cache hits / lookups. *)
  sp_warm_bytes : int;
      (** Resync bytes for the subscribed consumer to catch up after
          the shard's crash/recovery (composite-cookie resume). *)
  sp_cold_bytes : int;  (** Same content fetched by a fresh consumer. *)
  sp_wal_replayed : int;  (** Backend WAL records replayed on recovery. *)
  sp_recover_ok : bool;
      (** The resumed consumer's content matches the cold fetch. *)
}

val run : ?config:config -> unit -> point list
(** Runs every shard count over identical seeds, smallest first. *)

val json_of_points : point list -> string
(** A JSON array (indented for embedding as the [BENCH_PR8.json]
    [points] field). *)
