(** Filter containment: [F1 ⊆ F2] when no entry can satisfy [F1] but
    not [F2] (section 4.1).

    Three decision procedures, dispatched by {!contained}:
    - structural equality of normalized filters;
    - the same-template pointwise check of Proposition 3 (linear in
      the number of predicates);
    - the general Proposition 1 procedure via {!Symbolic.contained}.

    All procedures are sound under multi-valued attribute semantics;
    [false] answers may be conservative for filter classes outside the
    paper's scope (see {!Symbolic}). *)

open Ldap

val pred_contained : Schema.t -> Filter.pred -> Filter.pred -> bool
(** Containment of atomic predicates, e.g. [(age=30) ⊆ (age>=20)],
    prefix assertions such as sn=smi... widening to sn=sm.... *)

val same_shape_contained : Schema.t -> Filter.t -> Filter.t -> bool option
(** Proposition 3: when the two normalized filters have the same shape
    (same template), containment follows from pointwise containment of
    corresponding predicates.  [None] when the shapes differ. *)

val contained : Schema.t -> Filter.t -> Filter.t -> bool
(** Full dispatch: equality, then same-shape, then the general
    procedure. *)

val contained_general : Schema.t -> Filter.t -> Filter.t -> bool
(** The general Proposition 1 procedure only (exposed for testing and
    benchmarking against the fast paths). *)

val disjoint : Schema.t -> Filter.t -> Filter.t -> bool
(** Sound disjointness: [true] means no entry can satisfy both filters
    — Proposition 1 run backwards ([f ∧ g] inconsistent ⟺
    [f ⊆ ¬g]).  [false] may be conservative; a shard router that
    cannot prove a shard disjoint from a query simply contacts it. *)
