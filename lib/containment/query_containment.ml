open Ldap

let region_and_attrs_ok ~query ~stored =
  Query.region_subset ~inner:query ~outer:stored
  && Query.attrs_subset ~sub:query.Query.attrs ~super:stored.Query.attrs

let contained schema ~query ~stored =
  region_and_attrs_ok ~query ~stored
  && Filter_containment.contained schema query.Query.filter stored.Query.filter

let admits schema ~stored query =
  List.find_opt (fun s -> contained schema ~query ~stored:s) stored
