(** LDAP templates: query prototypes (section 3.4.2).

    A template is a filter whose assertion values are either holes
    ([_]) or constants, e.g. [(&(cn=_)(ou=research))] or
    a prefix template such as serialNumber=_....  Typical directory applications generate
    queries from a small, fixed set of templates, which is what makes
    template-based containment cheap:

    - queries are bucketed by template, eliminating comparisons against
      templates that can never answer them;
    - cross-template containment conditions are compiled once per
      template pair ({!Symbolic});
    - same-template containment reduces to comparing assertion values
      pointwise (Proposition 3, {!Filter_containment}).

    Hole numbering is the left-to-right order in the {e normalized}
    filter, so instances of the same template always agree on which
    hole is which. *)

open Ldap

type value = Hole of int | Const of string

type pred =
  | Equality of string * value
  | Greater_eq of string * value
  | Less_eq of string * value
  | Present of string
  | Substrings of string * value option * value list * value option
      (** initial, any, final; each component a hole or constant *)
  | Approx of string * value

type t = And of t list | Or of t list | Not of t | Pred of pred

val holes : t -> int
(** Number of holes; hole indices are [0 .. holes - 1]. *)

val hole_attrs : t -> string array
(** [hole_attrs t] maps each hole index to the attribute whose
    assertion it fills; used to pick the matching-rule syntax for a
    hole's bound values. *)

val of_filter : Filter.t -> t
(** Full generalization: every assertion value (and every substring
    component) becomes a hole.  The filter is normalized first. *)

val of_string : string -> (t, string) result
(** Parses a declared template: assertion values consisting of the
    single character ['_'] become holes, everything else is constant.
    [(&(cn=_)(ou=research))] has one hole. *)

val of_string_exn : string -> t

val to_string : t -> string
(** Holes print as [_]; also the canonical shape key. *)

val shape_key : t -> string
(** Key identifying the template's shape with hole positions; equal
    templates (same shape, same constants) have equal keys. *)

val instantiate : t -> string array -> (Filter.t, string) result
(** Replaces hole [i] with the [i]-th array element. *)

val match_filter : Schema.t -> t -> Filter.t -> string array option
(** [match_filter schema t f] checks whether the (normalized) filter
    is an instance of the template and returns the assertion values
    bound to the holes.  Constants are compared under the attribute's
    matching rule. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
