(** Predicate-indexed dispatch: from an update to the sessions it can
    affect, without scanning every session.

    Each subscribed filter is reduced to one or more {e anchors} —
    normalized [(attribute, value-key)] probes such that any entry the
    filter matches necessarily hits at least one anchor:

    - equality / approx assertions anchor on the value's canonical form
      ({!Ldap.Value.canonical});
    - substring assertions with an initial component anchor on the
      normalized prefix truncated to a fixed width (lookups probe every
      prefix of an entry value up to that width);
    - ordering assertions keep per-attribute sorted bound arrays probed
      by binary search;
    - presence (and substring assertions without a usable prefix)
      anchor on the attribute alone.

    AND picks its most selective anchorable conjunct; OR needs every
    disjunct anchorable and takes the union.  Filters with no sound
    anchoring (NOT, or an OR with an un-anchorable branch) land in a
    {e fallback set} that is returned with every lookup, so indexing is
    an optimization, never a filter: for any update,
    [affected ~before ~after] is a superset of the subscribers whose
    filter matches the before- or after-image.  Subscribers whose
    content could change are therefore always candidates, and the
    caller re-runs the exact classification on candidates only. *)

open Ldap

type t

val create : Schema.t -> t

val add : t -> int -> Filter.t -> unit
(** Registers a subscriber id under the filter's anchors (or the
    fallback set).  An id already present is re-registered under the
    new filter. *)

val remove : t -> int -> unit
(** Unregisters the id from all anchors; unknown ids are ignored. *)

val length : t -> int
(** Number of registered subscribers. *)

val fallback_count : t -> int
(** Subscribers whose filter could not be anchored; these are
    candidates for every update. *)

type candidates
(** Deduplicated set of subscriber ids possibly affected by one
    update. *)

val affected : t -> before:Entry.t option -> after:Entry.t option -> candidates
(** Subscribers whose filter may match the update's before- or
    after-image (superset semantics; includes the fallback set).  Cost
    is proportional to the probe count of the two entries plus the
    result size, independent of the number of subscribers. *)

val mem : candidates -> int -> bool
val iter : (int -> unit) -> candidates -> unit
val count : candidates -> int
