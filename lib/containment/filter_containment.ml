open Ldap

let has_prefix syntax ~prefix v =
  let prefix = Value.normalize syntax prefix and v = Value.normalize syntax v in
  String.length v >= String.length prefix
  && String.sub v 0 (String.length prefix) = prefix

let has_suffix syntax ~suffix v =
  let suffix = Value.normalize syntax suffix and v = Value.normalize syntax v in
  let n = String.length suffix and vn = String.length v in
  vn >= n && String.sub v (vn - n) n = suffix

(* s1 ⊆ s2 for substring assertions: every value matching s1 matches
   s2.  Sound, not complete: initial/final must extend, and s2's [any]
   components must embed in order into s1's. *)
let substring_contained syntax (s1 : Filter.substring) (s2 : Filter.substring) =
  let initial_ok =
    match (s2.initial, s1.initial) with
    | None, _ -> true
    | Some p2, Some p1 -> has_prefix syntax ~prefix:p2 p1
    | Some _, None -> false
  in
  let final_ok =
    match (s2.final, s1.final) with
    | None, _ -> true
    | Some f2, Some f1 -> has_suffix syntax ~suffix:f2 f1
    | Some _, None -> false
  in
  (* Each element of s2.any must be a substring of a distinct element
     of s1.any, in order. *)
  let contains_sub hay needle =
    let hay = Value.normalize syntax hay and needle = Value.normalize syntax needle in
    let hn = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let rec embed any2 any1 =
    match (any2, any1) with
    | [], _ -> true
    | _ :: _, [] -> false
    | a2 :: rest2, a1 :: rest1 ->
        if contains_sub a1 a2 then embed rest2 rest1 else embed any2 rest1
  in
  initial_ok && final_ok && embed s2.any s1.any

let prefix_orderable = Symbolic.prefix_orderable

let pred_contained schema p1 p2 =
  let open Filter in
  let syntax a = Schema.syntax_of schema a in
  if not (String.equal (pred_attr p1) (pred_attr p2)) then false
  else
    let a = pred_attr p1 in
    let sx = syntax a in
    match (p1, p2) with
    | _, Present _ -> true
    | (Equality (_, v1) | Approx (_, v1)), (Equality (_, v2) | Approx (_, v2)) ->
        Value.equal sx v1 v2
    | (Equality (_, v1) | Approx (_, v1)), Greater_eq (_, v2) ->
        Value.compare sx v1 v2 >= 0
    | (Equality (_, v1) | Approx (_, v1)), Less_eq (_, v2) ->
        Value.compare sx v1 v2 <= 0
    | (Equality (_, v1) | Approx (_, v1)), Substrings (_, s2) ->
        Value.matches_substring sx ~initial:s2.initial ~any:s2.any ~final:s2.final v1
    | Greater_eq (_, v1), Greater_eq (_, v2) -> Value.compare sx v1 v2 >= 0
    | Less_eq (_, v1), Less_eq (_, v2) -> Value.compare sx v1 v2 <= 0
    | Substrings (_, s1), Substrings (_, s2) -> substring_contained sx s1 s2
    | Substrings (_, { initial = Some p; _ }), Greater_eq (_, v2) ->
        (* Values with prefix p are all >= p — lexical syntaxes only. *)
        prefix_orderable sx && Value.compare sx p v2 >= 0
    | Substrings (_, { initial = Some p; _ }), Less_eq (_, v2) -> (
        (* Values with prefix p are all < succ p — lexical syntaxes only. *)
        prefix_orderable sx
        &&
        match Value.successor_of_prefix (Value.normalize sx p) with
        | s -> Value.compare sx s v2 <= 0
        | exception Invalid_argument _ -> false)
    | Present _, (Equality _ | Approx _ | Greater_eq _ | Less_eq _ | Substrings _)
    | Greater_eq _, (Equality _ | Approx _ | Less_eq _ | Substrings _)
    | Less_eq _, (Equality _ | Approx _ | Greater_eq _ | Substrings _)
    | Substrings _, (Equality _ | Approx _)
    | Substrings (_, { initial = None; _ }), (Greater_eq _ | Less_eq _) ->
        false

let same_shape_contained schema f1 f2 =
  let f1 = Filter.normalize f1 and f2 = Filter.normalize f2 in
  (* Walk in lockstep; [dir] flips under NOT. *)
  let rec go dir a b =
    match (a, b) with
    | Filter.Pred p, Filter.Pred q ->
        Some (if dir then pred_contained schema p q else pred_contained schema q p)
    | Filter.Not x, Filter.Not y -> go (not dir) x y
    | Filter.And xs, Filter.And ys | Filter.Or xs, Filter.Or ys ->
        if List.length xs <> List.length ys then None
        else
          List.fold_left2
            (fun acc x y ->
              match acc with
              | None | Some false -> acc
              | Some true -> go dir x y)
            (Some true) xs ys
    | (Filter.Pred _ | Filter.Not _ | Filter.And _ | Filter.Or _), _ -> None
  in
  go true f1 f2

let contained_general = Symbolic.contained

let contained schema f1 f2 =
  if Filter.equal f1 f2 then true
  else
    match same_shape_contained schema f1 f2 with
    | Some true -> true
    | Some false | None -> contained_general schema f1 f2

(* [f ∧ g] inconsistent ⟺ [f ⊆ ¬g]: the Proposition 1 reduction run
   backwards, so disjointness rides the same decision procedure. *)
let disjoint schema f g = contained_general schema f (Filter.Not g)
