(** Semantic containment of LDAP queries — algorithm QC (section 4).

    [Q] is contained in [Qs] when (i) the region defined by [Q]'s base
    and scope falls inside [Qs]'s region, (ii) [Q]'s attributes are a
    subset of [Qs]'s, and (iii) [Q]'s filter is contained in [Qs]'s. *)

open Ldap

val contained : Schema.t -> query:Query.t -> stored:Query.t -> bool
(** Full QC check using {!Filter_containment.contained} for the filter
    leg. *)

val region_and_attrs_ok : query:Query.t -> stored:Query.t -> bool
(** Conditions (i) and (ii) only — the cheap pre-check a replica runs
    before any filter comparison. *)

val admits : Schema.t -> stored:Query.t list -> Query.t -> Query.t option
(** Subscription admission for cascading replication: the first stored
    query in which the subscription query is semantically contained,
    or [None].  A replica may safely re-serve a ReSync session for the
    subscription iff some stored query contains it (Props 1–3 make the
    containment proof sound) — otherwise the subscriber must be
    referred upstream.  Admission happens once per subscription, so
    this is a plain scan; per-query answering keeps using the
    template-bucketed {!Containment_index}. *)
