open Ldap
module Attr_id = Ldap_compile.Attr_id
module Prog = Ldap_compile.Prog

(* Substring anchors keep at most this many bytes of the initial
   component; lookups probe every prefix of an entry value up to the
   same width, so longer filter prefixes are truncated (widening the
   candidate set, never narrowing it). *)
let prefix_width = 4

type ids = (int, unit) Hashtbl.t

(* Ordering bounds for one attribute and one direction.  [sorted] is a
   lazily rebuilt array of the distinct bound keys in matching-rule
   order, used to binary-search the range of bounds satisfied by an
   entry value. *)
type bounds = {
  syntax : Value.syntax;
  by_bound : (string, ids) Hashtbl.t;  (* canonical bound -> subscriber ids *)
  mutable sorted : string array option;  (* None = dirty *)
}

(* Anchors are keyed by the {e interned id} of the canonical attribute
   name, matching the [cid] of the entries' compiled slots, so probing
   does no per-update string canonicalization at all. *)
type anchor =
  | A_eq of Attr_id.t * string  (* attr, canonical value *)
  | A_prefix of Attr_id.t * string  (* attr, normalized prefix, <= width *)
  | A_attr of Attr_id.t  (* attr presence *)
  | A_ge of Attr_id.t * Value.syntax * string  (* attr, canonical lower bound *)
  | A_le of Attr_id.t * Value.syntax * string  (* attr, canonical upper bound *)

type registration = Anchors of anchor list | Fallback

type t = {
  schema : Schema.t;
  eq : (Attr_id.t * string, ids) Hashtbl.t;
  prefix : (Attr_id.t * string, ids) Hashtbl.t;
  attr : (Attr_id.t, ids) Hashtbl.t;
  ge : (Attr_id.t, bounds) Hashtbl.t;  (* attr -> bounds *)
  le : (Attr_id.t, bounds) Hashtbl.t;
  fallback : ids;
  regs : (int, registration) Hashtbl.t;
}

let create schema =
  {
    schema;
    eq = Hashtbl.create 64;
    prefix = Hashtbl.create 64;
    attr = Hashtbl.create 16;
    ge = Hashtbl.create 8;
    le = Hashtbl.create 8;
    fallback = Hashtbl.create 8;
    regs = Hashtbl.create 64;
  }

let length t = Hashtbl.length t.regs
let fallback_count t = Hashtbl.length t.fallback

(* --- anchor derivation ------------------------------------------------ *)

let truncate_prefix p =
  if String.length p <= prefix_width then p else String.sub p 0 prefix_width

let pred_anchor t p =
  let canon a = Attr_id.intern (Schema.canonical_attr t.schema a) in
  let syntax a = Schema.syntax_of t.schema a in
  match p with
  | Filter.Equality (a, v) | Filter.Approx (a, v) ->
      (* Approx is matched as equality by [Filter.matches]. *)
      Some (A_eq (canon a, Value.canonical (syntax a) v))
  | Filter.Greater_eq (a, v) ->
      Some (A_ge (canon a, syntax a, Value.canonical (syntax a) v))
  | Filter.Less_eq (a, v) ->
      Some (A_le (canon a, syntax a, Value.canonical (syntax a) v))
  | Filter.Present a -> Some (A_attr (canon a))
  | Filter.Substrings (a, { initial; _ }) -> (
      (* [Value.matches_substring] is a literal prefix test on
         normalized forms, so a non-empty initial component anchors on
         its normalized prefix regardless of syntax. *)
      match initial with
      | Some p when Value.normalize (syntax a) p <> "" ->
          Some (A_prefix (canon a, truncate_prefix (Value.normalize (syntax a) p)))
      | Some _ | None -> Some (A_attr (canon a)))

(* Smaller = more selective; used to pick the best AND conjunct. *)
let anchor_score = function
  | A_eq _ -> 0
  | A_prefix _ -> 1
  | A_ge _ | A_le _ -> 2
  | A_attr _ -> 3

let list_score anchors =
  List.fold_left (fun acc a -> max acc (anchor_score a)) 0 anchors

(* [Some anchors]: every entry the filter matches hits one of the
   anchors.  [None]: no sound anchoring; the subscriber must fall back
   to being a candidate for every update. *)
let rec anchors_of t = function
  | Filter.Pred p -> Option.map (fun a -> [ a ]) (pred_anchor t p)
  | Filter.Not _ -> None
  | Filter.Or gs ->
      (* A match satisfies some disjunct, so all disjuncts must be
         anchorable and the union covers the OR. *)
      List.fold_left
        (fun acc g ->
          match (acc, anchors_of t g) with
          | Some acc, Some anchors -> Some (List.rev_append anchors acc)
          | _, _ -> None)
        (Some []) gs
  | Filter.And gs ->
      (* A match satisfies every conjunct, so any one anchorable
         conjunct covers the AND; prefer the most selective. *)
      List.filter_map (anchors_of t) gs
      |> List.fold_left
           (fun best anchors ->
             match best with
             | Some b
               when (list_score b, List.length b)
                    <= (list_score anchors, List.length anchors) ->
                 best
             | Some _ | None -> Some anchors)
           None

(* --- registration ----------------------------------------------------- *)

let bucket_add tbl key id =
  let ids =
    match Hashtbl.find_opt tbl key with
    | Some ids -> ids
    | None ->
        let ids = Hashtbl.create 4 in
        Hashtbl.add tbl key ids;
        ids
  in
  Hashtbl.replace ids id ()

let bucket_remove tbl key id =
  match Hashtbl.find_opt tbl key with
  | None -> false
  | Some ids ->
      Hashtbl.remove ids id;
      if Hashtbl.length ids = 0 then begin
        Hashtbl.remove tbl key;
        true
      end
      else false

let bounds_for tbl attr syntax =
  match Hashtbl.find_opt tbl attr with
  | Some b -> b
  | None ->
      let b = { syntax; by_bound = Hashtbl.create 8; sorted = None } in
      Hashtbl.add tbl attr b;
      b

let bounds_add tbl attr syntax bound id =
  let b = bounds_for tbl attr syntax in
  if not (Hashtbl.mem b.by_bound bound) then b.sorted <- None;
  bucket_add b.by_bound bound id

let bounds_remove tbl attr bound id =
  match Hashtbl.find_opt tbl attr with
  | None -> ()
  | Some b -> if bucket_remove b.by_bound bound id then b.sorted <- None

let apply_anchor t id = function
  | A_eq (a, v) -> bucket_add t.eq (a, v) id
  | A_prefix (a, p) -> bucket_add t.prefix (a, p) id
  | A_attr a -> bucket_add t.attr a id
  | A_ge (a, syn, v) -> bounds_add t.ge a syn v id
  | A_le (a, syn, v) -> bounds_add t.le a syn v id

let retract_anchor t id = function
  | A_eq (a, v) -> ignore (bucket_remove t.eq (a, v) id)
  | A_prefix (a, p) -> ignore (bucket_remove t.prefix (a, p) id)
  | A_attr a -> ignore (bucket_remove t.attr a id)
  | A_ge (a, _, v) -> bounds_remove t.ge a v id
  | A_le (a, _, v) -> bounds_remove t.le a v id

let remove t id =
  match Hashtbl.find_opt t.regs id with
  | None -> ()
  | Some reg ->
      (match reg with
      | Fallback -> Hashtbl.remove t.fallback id
      | Anchors anchors -> List.iter (retract_anchor t id) anchors);
      Hashtbl.remove t.regs id

let add t id filter =
  remove t id;
  let reg =
    match anchors_of t filter with
    | Some anchors ->
        List.iter (apply_anchor t id) anchors;
        Anchors anchors
    | None ->
        Hashtbl.replace t.fallback id ();
        Fallback
  in
  Hashtbl.replace t.regs id reg

(* --- lookup ----------------------------------------------------------- *)

type candidates = ids

let mem c id = Hashtbl.mem c id
let iter f c = Hashtbl.iter (fun id () -> f id) c
let count c = Hashtbl.length c

let collect out ids = Hashtbl.iter (fun id () -> Hashtbl.replace out id ()) ids

let sorted_bounds b =
  match b.sorted with
  | Some s -> s
  | None ->
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) b.by_bound [] in
      let s = Array.of_list (List.sort (Value.compare b.syntax) keys) in
      b.sorted <- Some s;
      s

(* Number of bounds [<= v] (ge lookups collect that prefix of the
   sorted array; le lookups collect the rest adjusted for equality). *)
let count_le b s v =
  let lo = ref 0 and hi = ref (Array.length s) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare b.syntax s.(mid) v <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let probe_bounds out tbl attr v ~dir =
  match Hashtbl.find_opt tbl attr with
  | None -> ()
  | Some b ->
      let s = sorted_bounds b in
      let le_count = count_le b s v in
      let first, last =
        match dir with
        | `Ge -> (0, le_count - 1)  (* bounds <= v satisfy (attr>=bound) *)
        | `Le ->
            (* bounds >= v satisfy (attr<=bound); back up over the
               bounds equal to v. *)
            let first = ref le_count in
            while !first > 0 && Value.compare b.syntax s.(!first - 1) v = 0 do
              decr first
            done;
            (!first, Array.length s - 1)
      in
      for i = first to last do
        match Hashtbl.find_opt b.by_bound s.(i) with
        | Some ids -> collect out ids
        | None -> ()
      done

(* Probing walks the entry's compiled view: per-slot interned
   canonical-attribute ids plus pre-canonicalized and pre-normalized
   values, computed once per entry per schema instead of once per
   probed update. *)
let probe_entry t out entry =
  let ce = Entry.compiled t.schema entry in
  Array.iter
    (fun (s : Prog.slot) ->
      let cid = s.Prog.cid in
      (match Hashtbl.find_opt t.attr cid with
      | Some ids -> collect out ids
      | None -> ());
      let canon = s.Prog.canon and norm = s.Prog.norm in
      for k = 0 to Array.length canon - 1 do
        let c = canon.(k) in
        (match Hashtbl.find_opt t.eq (cid, c) with
        | Some ids -> collect out ids
        | None -> ());
        let n = norm.(k) in
        for len = 1 to min prefix_width (String.length n) do
          match Hashtbl.find_opt t.prefix (cid, String.sub n 0 len) with
          | Some ids -> collect out ids
          | None -> ()
        done;
        probe_bounds out t.ge cid c ~dir:`Ge;
        probe_bounds out t.le cid c ~dir:`Le
      done)
    ce.Prog.slots

let affected t ~before ~after =
  let out = Hashtbl.create 16 in
  collect out t.fallback;
  Option.iter (probe_entry t out) before;
  Option.iter (probe_entry t out) after;
  out
