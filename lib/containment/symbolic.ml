open Ldap

type operand = L of int | R of int | C of string | Succ of operand

type atom =
  | Empty_range of {
      low : operand;
      low_strict : bool;
      high : operand;
      high_strict : bool;
    }
  | Equal of operand * operand
  | Point_excluded of { low : operand; high : operand; excl : operand }
  | Has_prefix of operand * operand

type cond_atom = { attr : string; atom : atom }
type clause = cond_atom list
type t = Always | Never | Cnf of clause list

(* --- Symbolic predicates and literals ------------------------------- *)

type spred =
  | SEq of string * operand
  | SGe of string * operand
  | SLe of string * operand
  | SPresent of string
  | SSub of string * operand option * operand list * operand option

type lit = { pos : bool; pred : spred }

let spred_attr = function
  | SEq (a, _) | SGe (a, _) | SLe (a, _) | SPresent a | SSub (a, _, _, _) -> a

(* Convert one side of the comparison to a literal tree. *)
type tree = TAnd of tree list | TOr of tree list | TLit of lit

let rec tree_of_template mk pos (t : Template.t) : tree =
  let value = function Template.Hole i -> mk i | Template.Const s -> C s in
  match t with
  | Template.And gs ->
      let subtrees = List.map (tree_of_template mk pos) gs in
      if pos then TAnd subtrees else TOr subtrees
  | Template.Or gs ->
      let subtrees = List.map (tree_of_template mk pos) gs in
      if pos then TOr subtrees else TAnd subtrees
  | Template.Not g -> tree_of_template mk (not pos) g
  | Template.Pred p ->
      let pred =
        match p with
        | Template.Equality (a, v) | Template.Approx (a, v) -> SEq (a, value v)
        | Template.Greater_eq (a, v) -> SGe (a, value v)
        | Template.Less_eq (a, v) -> SLe (a, value v)
        | Template.Present a -> SPresent a
        | Template.Substrings (a, i, any, f) ->
            SSub (a, Option.map value i, List.map value any, Option.map value f)
      in
      TLit { pos; pred }

exception Too_big

let max_conjuncts = 512
let max_literals = 64

(* DNF as a list of conjuncts (literal lists). *)
let rec dnf = function
  | TLit l -> [ [ l ] ]
  | TOr gs -> List.concat_map dnf gs
  | TAnd gs ->
      List.fold_left
        (fun acc g ->
          let d = dnf g in
          let product =
            List.concat_map
              (fun conj ->
                List.map
                  (fun conj' ->
                    let merged = conj @ conj' in
                    if List.length merged > max_literals then raise Too_big else merged)
                  d)
              acc
          in
          if List.length product > max_conjuncts then raise Too_big else product)
        [ [] ] gs

(* --- Emptiness conditions per conjunct ------------------------------ *)

type bound = operand * bool (* value, strict *)

type group = {
  mutable lows : bound list;
  mutable highs : bound list;
  mutable eq_points : operand list;  (* positive equality points *)
  mutable exclusions : operand list;  (* negated equality points *)
  mutable prefix_exclusions : operand list;  (* negated prefix assertions *)
  mutable prefix_points : operand list;  (* positive prefix initials *)
  mutable has_positive : bool;
  mutable statically_empty : bool;  (* e.g. positive plus not-present *)
}

let new_group () =
  {
    lows = [];
    highs = [];
    eq_points = [];
    exclusions = [];
    prefix_exclusions = [];
    prefix_points = [];
    has_positive = false;
    statically_empty = false;
  }

(* A prefix assertion [attr=p*] confines the value to [p, succ p) only
   when the syntax orders values lexically; integer order disagrees
   ("-2*" matches -25 < -2, "1*" matches 10 > succ "1"), so there the
   window must not be used as range bounds. *)
let prefix_orderable = function
  | Value.Integer -> false
  | Value.Case_ignore | Value.Case_exact | Value.Telephone -> true

let add_positive syntax g = function
  | SEq (_, v) ->
      g.has_positive <- true;
      g.eq_points <- v :: g.eq_points;
      g.lows <- (v, false) :: g.lows;
      g.highs <- (v, false) :: g.highs
  | SGe (_, v) ->
      g.has_positive <- true;
      g.lows <- (v, false) :: g.lows
  | SLe (_, v) ->
      g.has_positive <- true;
      g.highs <- (v, false) :: g.highs
  | SPresent _ -> g.has_positive <- true
  | SSub (_, initial, _, _) -> (
      g.has_positive <- true;
      match initial with
      | Some p ->
          g.prefix_points <- p :: g.prefix_points;
          (* attr=p*...: the value lies in [p, succ p) — lexical
             syntaxes only. *)
          if prefix_orderable syntax then begin
            g.lows <- (p, false) :: g.lows;
            g.highs <- (Succ p, true) :: g.highs
          end
      | None -> ())

let add_negative g = function
  | SEq (_, v) -> g.exclusions <- v :: g.exclusions
  | SGe (_, v) ->
      (* no value >= v: every value < v. *)
      g.highs <- (v, true) :: g.highs
  | SLe (_, v) -> g.lows <- (v, true) :: g.lows
  | SPresent _ ->
      (* no value at all: inconsistent with any positive literal. *)
      g.statically_empty <- true
  | SSub (_, initial, any, final) -> (
      (* Only an initial-only negated substring gives a usable
         exclusion (no value has prefix p); anything more complex is
         ignored, which is conservative. *)
      match (initial, any, final) with
      | Some p, [], None -> g.prefix_exclusions <- p :: g.prefix_exclusions
      | _ -> ())

(* Atoms expressing "this group's feasible region is empty". *)
let group_atoms attr g : [ `Static_true | `Atoms of cond_atom list ] =
  if g.statically_empty && g.has_positive then `Static_true
  else if not g.has_positive then `Atoms []
  else begin
    let atoms = ref [] in
    let push atom = atoms := { attr; atom } :: !atoms in
    (* Crossing bounds. *)
    List.iter
      (fun (low, low_strict) ->
        List.iter
          (fun (high, high_strict) ->
            (* Skip the trivial self-pair coming from one equality. *)
            if not (low == high && (not low_strict) && not high_strict) then
              push (Empty_range { low; low_strict; high; high_strict }))
          g.highs)
      g.lows;
    (* Excluded points. *)
    List.iter
      (fun excl ->
        List.iter (fun p -> push (Equal (p, excl))) g.eq_points;
        (* A point range [l, h] with l = h = excl is also emptied. *)
        List.iter
          (fun (low, ls) ->
            List.iter
              (fun (high, hs) ->
                if (not ls) && not hs then push (Point_excluded { low; high; excl }))
              g.highs)
          g.lows)
      g.exclusions;
    (* Negated prefixes swallowing required points/prefixes. *)
    List.iter
      (fun p ->
        List.iter (fun v -> push (Has_prefix (p, v))) g.eq_points;
        List.iter (fun v -> push (Has_prefix (p, v))) g.prefix_points)
      g.prefix_exclusions;
    `Atoms !atoms
  end

module Smap = Map.Make (String)

(* Condition for one DNF conjunct to be inconsistent: a disjunction of
   atoms collected over its attributes.  [`Static_true] when it is
   inconsistent regardless of hole values. *)
let conjunct_condition schema conj : [ `Static_true | `Atoms of cond_atom list ] =
  (* Group literals per attribute. *)
  let by_attr =
    List.fold_left
      (fun m lit ->
        let attr = spred_attr lit.pred in
        let existing = Option.value ~default:[] (Smap.find_opt attr m) in
        Smap.add attr (lit :: existing) m)
      Smap.empty conj
  in
  let static = ref false in
  let atoms = ref [] in
  Smap.iter
    (fun attr lits ->
      if not !static then begin
        let positives = List.filter (fun l -> l.pos) lits in
        let negatives = List.filter (fun l -> not l.pos) lits in
        let single = Schema.is_single_valued schema attr in
        let syntax = Schema.syntax_of schema attr in
        let groups =
          if single then begin
            (* All positives constrain the one value jointly. *)
            let g = new_group () in
            List.iter (fun l -> add_positive syntax g l.pred) positives;
            List.iter (fun l -> add_negative g l.pred) negatives;
            [ g ]
          end
          else
            (* Multi-valued: each positive needs its own witness; the
               negatives constrain all witnesses. *)
            List.map
              (fun l ->
                let g = new_group () in
                add_positive syntax g l.pred;
                List.iter (fun n -> add_negative g n.pred) negatives;
                g)
              positives
        in
        List.iter
          (fun g ->
            match group_atoms attr g with
            | `Static_true -> static := true
            | `Atoms a -> atoms := a @ !atoms)
          groups
      end)
    by_attr;
  if !static then `Static_true else `Atoms !atoms

(* --- Atom evaluation ------------------------------------------------ *)

exception Unknown_value

let rec resolve ~left ~right = function
  | L i -> if i < Array.length left then left.(i) else raise Unknown_value
  | R i -> if i < Array.length right then right.(i) else raise Unknown_value
  | C s -> s
  | Succ o -> (
      let v = resolve ~left ~right o in
      match Value.successor_of_prefix v with
      | s -> s
      | exception Invalid_argument _ -> raise Unknown_value)

(* Empty-range test under the attribute syntax.  Integer syntax is
   discrete, so strict bounds are tightened by one before comparing. *)
let empty_range syntax ~low ~low_strict ~high ~high_strict =
  match syntax with
  | Value.Integer -> (
      match (int_of_string_opt (String.trim low), int_of_string_opt (String.trim high)) with
      | Some l, Some h ->
          let l = if low_strict then l + 1 else l in
          let h = if high_strict then h - 1 else h in
          l > h
      | _ ->
          let c = Value.compare syntax low high in
          c > 0 || (c = 0 && (low_strict || high_strict)))
  | Value.Case_ignore | Value.Case_exact | Value.Telephone ->
      let c = Value.compare syntax low high in
      c > 0 || (c = 0 && (low_strict || high_strict))

let has_prefix_norm syntax ~prefix v =
  let prefix = Value.normalize syntax prefix and v = Value.normalize syntax v in
  String.length v >= String.length prefix
  && String.sub v 0 (String.length prefix) = prefix

let eval_atom schema ~left ~right { attr; atom } =
  let syntax = Schema.syntax_of schema attr in
  try
    match atom with
    | Empty_range { low; low_strict; high; high_strict } ->
        let low = resolve ~left ~right low and high = resolve ~left ~right high in
        empty_range syntax ~low ~low_strict ~high ~high_strict
    | Equal (a, b) ->
        Value.equal syntax (resolve ~left ~right a) (resolve ~left ~right b)
    | Point_excluded { low; high; excl } ->
        let low = resolve ~left ~right low
        and high = resolve ~left ~right high
        and excl = resolve ~left ~right excl in
        Value.equal syntax low high && Value.equal syntax low excl
    | Has_prefix (p, v) ->
        has_prefix_norm syntax ~prefix:(resolve ~left ~right p) (resolve ~left ~right v)
  with Unknown_value -> false

let eval schema t ~left ~right =
  match t with
  | Always -> true
  | Never -> false
  | Cnf clauses ->
      List.for_all
        (fun clause -> List.exists (eval_atom schema ~left ~right) clause)
        clauses

(* --- Compilation ----------------------------------------------------- *)

(* Operand with no holes: value known at compile time. *)
let rec const_operand = function
  | C _ -> true
  | Succ o -> const_operand o
  | L _ | R _ -> false

let const_atom { attr = _; atom } =
  match atom with
  | Empty_range { low; high; _ } -> const_operand low && const_operand high
  | Equal (a, b) | Has_prefix (a, b) -> const_operand a && const_operand b
  | Point_excluded { low; high; excl } ->
      const_operand low && const_operand high && const_operand excl

let compile schema ~left ~right =
  let ltree = tree_of_template (fun i -> L i) true left in
  let rtree = tree_of_template (fun i -> R i) false right in
  match dnf (TAnd [ ltree; rtree ]) with
  | exception Too_big -> None
  | conjuncts ->
      let clauses =
        List.filter_map
          (fun conj ->
            match conjunct_condition schema conj with
            | `Static_true -> None (* condition TRUE: contributes nothing *)
            | `Atoms atoms -> (
                (* Fold constant atoms now. *)
                let static_true = ref false in
                let residual =
                  List.filter
                    (fun a ->
                      if const_atom a then begin
                        if eval_atom schema ~left:[||] ~right:[||] a then
                          static_true := true;
                        false
                      end
                      else true)
                    atoms
                in
                if !static_true then None else Some residual))
          conjuncts
      in
      if List.exists (fun c -> c = []) clauses then Some Never
      else if clauses = [] then Some Always
      else Some (Cnf clauses)

let contained schema f1 f2 =
  let const_template f =
    (* A template with zero holes: every assertion value constant. *)
    let rec conv = function
      | Filter.Pred p -> Template.Pred (conv_pred p)
      | Filter.Not g -> Template.Not (conv g)
      | Filter.And gs -> Template.And (List.map conv gs)
      | Filter.Or gs -> Template.Or (List.map conv gs)
    and conv_pred = function
      | Filter.Equality (a, v) -> Template.Equality (a, Template.Const v)
      | Filter.Greater_eq (a, v) -> Template.Greater_eq (a, Template.Const v)
      | Filter.Less_eq (a, v) -> Template.Less_eq (a, Template.Const v)
      | Filter.Present a -> Template.Present a
      | Filter.Approx (a, v) -> Template.Approx (a, Template.Const v)
      | Filter.Substrings (a, { initial; any; final }) ->
          Template.Substrings
            ( a,
              Option.map (fun s -> Template.Const s) initial,
              List.map (fun s -> Template.Const s) any,
              Option.map (fun s -> Template.Const s) final )
    in
    conv (Filter.normalize f)
  in
  match compile schema ~left:(const_template f1) ~right:(const_template f2) with
  | None -> false
  | Some cond -> eval schema cond ~left:[||] ~right:[||]

(* --- Staged evaluation ------------------------------------------------ *)

module Compiled = struct
  exception Unknown

  type atom_fn = string array -> string array -> bool

  type cond = Const of bool | Clauses of atom_fn array array

  (* Stage an operand to a raw resolver plus its constant value when it
     has no holes.  [Error ()] marks a constant [Succ] with no
     successor: the atom can never hold. *)
  let rec operand = function
    | C s -> Ok ((fun (_ : string array) (_ : string array) -> s), Some s)
    | L i ->
        Ok
          ( (fun left (_ : string array) ->
              if i < Array.length left then left.(i) else raise Unknown),
            None )
    | R i ->
        Ok
          ( (fun (_ : string array) right ->
              if i < Array.length right then right.(i) else raise Unknown),
            None )
    | Succ o -> (
        match operand o with
        | Error () -> Error ()
        | Ok (_, Some v) -> (
            match Value.successor_of_prefix v with
            | s -> Ok ((fun _ _ -> s), Some s)
            | exception Invalid_argument _ -> Error ())
        | Ok (f, None) ->
            Ok
              ( (fun l r ->
                  match Value.successor_of_prefix (f l r) with
                  | s -> s
                  | exception Invalid_argument _ -> raise Unknown),
                None ))

  (* Apply projection [prep] once at stage time for constants, per
     evaluation otherwise. *)
  let prepared prep = function
    | Error () -> Error ()
    | Ok (_, Some v) ->
        let p = prep v in
        Ok (fun (_ : string array) (_ : string array) -> p)
    | Ok (f, None) -> Ok (fun l r -> prep (f l r))

  (* Integer-syntax values travel prepared as (trimmed form, parse):
     constant bounds are parsed once at stage time. *)
  let int_prep v =
    let n = String.trim v in
    (n, int_of_string_opt n)

  (* [Value.compare_integer] over prepared pairs, reusing the parses. *)
  let int_cmp (a, ai) (b, bi) =
    match (ai, bi) with
    | Some x, Some y -> Int.compare x y
    | Some _, None -> -1
    | None, Some _ -> 1
    | None, None -> String.compare a b

  let never _ _ = false

  (* Stage one atom: the attribute's syntax is resolved, constants are
     normalized/parsed and constant [Succ]s folded here, once; the
     returned closure touches only hole values per evaluation.  Truth
     values agree with {!eval_atom} on every input. *)
  let atom schema { attr; atom = a } : atom_fn =
    let syntax = Schema.syntax_of schema attr in
    let norm v = Value.normalize syntax v in
    match a with
    | Empty_range { low; low_strict; high; high_strict } -> (
        match syntax with
        | Value.Integer -> (
            match
              (prepared int_prep (operand low), prepared int_prep (operand high))
            with
            | Error (), _ | _, Error () -> never
            | Ok lo, Ok hi ->
                fun l r ->
                  let ((_, lp) as lv) = lo l r and ((_, hp) as hv) = hi l r in
                  (match (lp, hp) with
                  | Some x, Some y ->
                      let x = if low_strict then x + 1 else x in
                      let y = if high_strict then y - 1 else y in
                      x > y
                  | _ ->
                      let c = int_cmp lv hv in
                      c > 0 || (c = 0 && (low_strict || high_strict))))
        | Value.Case_ignore | Value.Case_exact | Value.Telephone -> (
            match (prepared norm (operand low), prepared norm (operand high)) with
            | Error (), _ | _, Error () -> never
            | Ok lo, Ok hi ->
                fun l r ->
                  let c = String.compare (lo l r) (hi l r) in
                  c > 0 || (c = 0 && (low_strict || high_strict))))
    | Equal (x, y) -> (
        match syntax with
        | Value.Integer -> (
            match
              (prepared int_prep (operand x), prepared int_prep (operand y))
            with
            | Error (), _ | _, Error () -> never
            | Ok a, Ok b -> fun l r -> int_cmp (a l r) (b l r) = 0)
        | Value.Case_ignore | Value.Case_exact | Value.Telephone -> (
            match (prepared norm (operand x), prepared norm (operand y)) with
            | Error (), _ | _, Error () -> never
            | Ok a, Ok b -> fun l r -> String.equal (a l r) (b l r)))
    | Point_excluded { low; high; excl } -> (
        match syntax with
        | Value.Integer -> (
            match
              ( prepared int_prep (operand low),
                prepared int_prep (operand high),
                prepared int_prep (operand excl) )
            with
            | Ok lo, Ok hi, Ok ex ->
                fun l r ->
                  let lv = lo l r in
                  int_cmp lv (hi l r) = 0 && int_cmp lv (ex l r) = 0
            | _, _, _ -> never)
        | Value.Case_ignore | Value.Case_exact | Value.Telephone -> (
            match
              ( prepared norm (operand low),
                prepared norm (operand high),
                prepared norm (operand excl) )
            with
            | Ok lo, Ok hi, Ok ex ->
                fun l r ->
                  let lv = lo l r in
                  String.equal lv (hi l r) && String.equal lv (ex l r)
            | _, _, _ -> never))
    | Has_prefix (p, v) -> (
        match (prepared norm (operand p), prepared norm (operand v)) with
        | Ok pf, Ok vf ->
            fun l r ->
              let p = pf l r and v = vf l r in
              String.length v >= String.length p
              && String.sub v 0 (String.length p) = p
        | _, _ -> never)

  let compile schema = function
    | Always -> Const true
    | Never -> Const false
    | Cnf clauses ->
        Clauses
          (Array.of_list
             (List.map
                (fun clause -> Array.of_list (List.map (atom schema) clause))
                clauses))

  let eval cond ~left ~right =
    match cond with
    | Const b -> b
    | Clauses clauses ->
        Array.for_all
          (fun clause ->
            Array.exists
              (fun f -> try f left right with Unknown -> false)
              clause)
          clauses
end

(* --- Printing -------------------------------------------------------- *)

let rec operand_to_string = function
  | L i -> Printf.sprintf "l%d" i
  | R i -> Printf.sprintf "r%d" i
  | C s -> Printf.sprintf "%S" s
  | Succ o -> Printf.sprintf "succ(%s)" (operand_to_string o)

let atom_to_string { attr; atom } =
  let o = operand_to_string in
  match atom with
  | Empty_range { low; low_strict; high; high_strict } ->
      Printf.sprintf "%s:empty%s%s,%s%s" attr
        (if low_strict then "(" else "[")
        (o low) (o high)
        (if high_strict then ")" else "]")
  | Equal (a, b) -> Printf.sprintf "%s:%s=%s" attr (o a) (o b)
  | Point_excluded { low; high; excl } ->
      Printf.sprintf "%s:point(%s=%s)excl(%s)" attr (o low) (o high) (o excl)
  | Has_prefix (a, b) -> Printf.sprintf "%s:prefix(%s,%s)" attr (o a) (o b)

let to_string = function
  | Always -> "TRUE"
  | Never -> "FALSE"
  | Cnf clauses ->
      String.concat " AND "
        (List.map
           (fun clause ->
             "(" ^ String.concat " OR " (List.map atom_to_string clause) ^ ")")
           clauses)
