open Ldap

type 'a stored = { query : Query.t; values : string array; payload : 'a }

type 'a bucket = {
  template : Template.t;
  syntaxes : Value.syntax array;
      (* hole index -> the syntax of the attribute filling it, resolved
         once at bucket creation instead of per column probe *)
  mutable entries : 'a stored list;
  columns : (int, (string, 'a stored list ref) Hashtbl.t) Hashtbl.t;
      (* hole index -> canonical hole value -> stored queries; built
         lazily per column the first time a pruning plan needs it and
         kept in sync by [add]/[remove]. *)
}

(* How to narrow a bucket to the stored queries that can satisfy one
   clause of the compiled containment condition, given the incoming
   (left) assertion values.  A clause is a disjunction, so candidates
   are the union over its atoms:
   - [Guard]: an atom with no R holes — same truth value for every
     stored query; if it evaluates true the clause holds bucket-wide
     and we must scan;
   - [Key_eq]: the atom holds only for stored queries whose hole [col]
     equals the value of the (R-free) [sources] — a column lookup;
   - [Key_prefix]: the atom holds only when hole [col] is a prefix of
     the resolved [source] — finitely many column lookups. *)
type plan_atom =
  | Guard of Symbolic.Compiled.atom_fn  (* staged once when planned *)
  | Key_eq of { col : int; syntax : Value.syntax; sources : Symbolic.operand list }
  | Key_prefix of { col : int; syntax : Value.syntax; source : Symbolic.operand }

type plan = Scan | Clause of plan_atom list

(* The symbolic CNF is kept for planning; the staged form answers the
   per-candidate evaluations. *)
type cond = { sym : Symbolic.t; staged : Symbolic.Compiled.cond }

type 'a t = {
  schema : Schema.t;
  buckets : (string, 'a bucket) Hashtbl.t;  (* shape key -> bucket *)
  conditions : (string * string, cond option) Hashtbl.t;
      (* (incoming shape, stored shape) -> compiled condition *)
  plans : (string * string, plan) Hashtbl.t;
      (* (incoming shape, stored shape) -> candidate-pruning plan *)
  mutable count : int;
  mutable comparisons : int;
}

let create schema =
  {
    schema;
    buckets = Hashtbl.create 64;
    conditions = Hashtbl.create 256;
    plans = Hashtbl.create 256;
    count = 0;
    comparisons = 0;
  }

let decompose t (q : Query.t) =
  let template = Template.of_filter q.Query.filter in
  match Template.match_filter t.schema template q.Query.filter with
  | Some values -> (template, values)
  | None ->
      (* A filter always matches its own full generalization. *)
      assert false

let column_key (_ : 'a t) bucket col v =
  Value.canonical bucket.syntaxes.(col) v

let column_insert t bucket col column s =
  let key = column_key t bucket col s.values.(col) in
  match Hashtbl.find_opt column key with
  | Some l -> l := s :: !l
  | None -> Hashtbl.add column key (ref [ s ])

let column t bucket col =
  match Hashtbl.find_opt bucket.columns col with
  | Some c -> c
  | None ->
      let c = Hashtbl.create (max 16 (List.length bucket.entries)) in
      List.iter (column_insert t bucket col c) bucket.entries;
      Hashtbl.replace bucket.columns col c;
      c

let add t q payload =
  let template, values = decompose t q in
  let key = Template.shape_key template in
  let bucket =
    match Hashtbl.find_opt t.buckets key with
    | Some b -> b
    | None ->
        let b =
          { template;
            syntaxes =
              Array.map (Schema.syntax_of t.schema)
                (Template.hole_attrs template);
            entries = [];
            columns = Hashtbl.create 4 }
        in
        Hashtbl.replace t.buckets key b;
        b
  in
  let fresh = { query = q; values; payload } in
  let replaced = ref false in
  bucket.entries <-
    List.map
      (fun s ->
        if Query.equal s.query q then begin
          replaced := true;
          fresh
        end
        else s)
      bucket.entries;
  if !replaced then
    (* Equal queries have equal hole values, so the replacement lives
       under the same column keys as its predecessor. *)
    Hashtbl.iter
      (fun col column ->
        match Hashtbl.find_opt column (column_key t bucket col values.(col)) with
        | Some l -> l := List.map (fun s -> if Query.equal s.query q then fresh else s) !l
        | None -> ())
      bucket.columns
  else begin
    bucket.entries <- fresh :: bucket.entries;
    Hashtbl.iter (fun col column -> column_insert t bucket col column fresh) bucket.columns;
    t.count <- t.count + 1
  end

let remove t q =
  let template, values = decompose t q in
  let key = Template.shape_key template in
  match Hashtbl.find_opt t.buckets key with
  | None -> ()
  | Some bucket ->
      let before = List.length bucket.entries in
      bucket.entries <- List.filter (fun s -> not (Query.equal s.query q)) bucket.entries;
      t.count <- t.count - (before - List.length bucket.entries);
      if bucket.entries = [] then Hashtbl.remove t.buckets key
      else
        Hashtbl.iter
          (fun col column ->
            let ck = column_key t bucket col values.(col) in
            match Hashtbl.find_opt column ck with
            | None -> ()
            | Some l -> (
                match List.filter (fun s -> not (Query.equal s.query q)) !l with
                | [] -> Hashtbl.remove column ck
                | rest -> l := rest))
          bucket.columns

let find t q =
  let template, _ = decompose t q in
  match Hashtbl.find_opt t.buckets (Template.shape_key template) with
  | None -> None
  | Some bucket ->
      List.find_map
        (fun s -> if Query.equal s.query q then Some s.payload else None)
        bucket.entries

let mem t q =
  let template, _ = decompose t q in
  match Hashtbl.find_opt t.buckets (Template.shape_key template) with
  | None -> false
  | Some bucket -> List.exists (fun s -> Query.equal s.query q) bucket.entries

let length t = t.count

let clear t =
  Hashtbl.reset t.buckets;
  t.count <- 0

let condition t ~incoming_key ~incoming ~bucket_key ~bucket_template =
  let key = (incoming_key, bucket_key) in
  match Hashtbl.find_opt t.conditions key with
  | Some c -> c
  | None ->
      let c =
        Symbolic.compile t.schema ~left:incoming ~right:bucket_template
        |> Option.map (fun sym ->
               { sym; staged = Symbolic.Compiled.compile t.schema sym })
      in
      Hashtbl.replace t.conditions key c;
      c

(* --- candidate pruning ------------------------------------------------ *)

let rec r_free = function
  | Symbolic.L _ | Symbolic.C _ -> true
  | Symbolic.R _ -> false
  | Symbolic.Succ o -> r_free o

(* Resolve an R-free operand against the incoming values; [None] plays
   the role of [Symbolic.Unknown_value] (the atom is false). *)
let rec resolve_left values = function
  | Symbolic.L i -> if i < Array.length values then Some values.(i) else None
  | Symbolic.C s -> Some s
  | Symbolic.R _ -> None
  | Symbolic.Succ o -> (
      match resolve_left values o with
      | None -> None
      | Some v -> (
          match Value.successor_of_prefix v with
          | s -> Some s
          | exception Invalid_argument _ -> None))

(* Classify one atom of a clause; [None] = the atom cannot be keyed or
   guarded, making the whole clause unusable for pruning. *)
let plan_atom t ({ Symbolic.attr; atom } as ca) =
  let syntax = Schema.syntax_of t.schema attr in
  let keyable = function
    | Symbolic.R col, o when r_free o -> Some (Key_eq { col; syntax; sources = [ o ] })
    | o, Symbolic.R col when r_free o -> Some (Key_eq { col; syntax; sources = [ o ] })
    | _, _ -> None
  in
  let all_r_free =
    match atom with
    | Symbolic.Empty_range { low; high; _ } -> r_free low && r_free high
    | Symbolic.Equal (a, b) | Symbolic.Has_prefix (a, b) -> r_free a && r_free b
    | Symbolic.Point_excluded { low; high; excl } ->
        r_free low && r_free high && r_free excl
  in
  if all_r_free then Some (Guard (Symbolic.Compiled.atom t.schema ca))
  else
    match atom with
    | Symbolic.Equal (a, b) -> keyable (a, b)
    | Symbolic.Point_excluded { low; high; excl } -> (
        (* True iff low = high = excl; with one bare R hole among the
           three, key it on the (agreeing) others. *)
        match (low, high, excl) with
        | Symbolic.R col, a, b when r_free a && r_free b ->
            Some (Key_eq { col; syntax; sources = [ a; b ] })
        | a, Symbolic.R col, b when r_free a && r_free b ->
            Some (Key_eq { col; syntax; sources = [ a; b ] })
        | a, b, Symbolic.R col when r_free a && r_free b ->
            Some (Key_eq { col; syntax; sources = [ a; b ] })
        | _, _, _ -> None)
    | Symbolic.Has_prefix (Symbolic.R col, v)
      when r_free v && syntax <> Value.Integer ->
        (* [has_prefix_norm] compares normalized forms and the column
           is keyed by canonical forms; those agree except for Integer
           syntax, which therefore stays unkeyed. *)
        Some (Key_prefix { col; syntax; source = v })
    | Symbolic.Empty_range _ | Symbolic.Has_prefix _ -> None

let plan_of_clause t clause =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | a :: rest -> (
        match plan_atom t a with None -> None | Some p -> go (p :: acc) rest)
  in
  go [] clause

(* Cost order: prefer clauses whose candidates come from fewer, more
   selective probes. *)
let plan_cost atoms =
  let prefixes, eqs, guards =
    List.fold_left
      (fun (p, e, g) -> function
        | Key_prefix _ -> (p + 1, e, g)
        | Key_eq _ -> (p, e + 1, g)
        | Guard _ -> (p, e, g + 1))
      (0, 0, 0) atoms
  in
  (prefixes, eqs, guards)

let plan t ~incoming_key ~bucket_key cond =
  let key = (incoming_key, bucket_key) in
  match Hashtbl.find_opt t.plans key with
  | Some p -> p
  | None ->
      let p =
        match cond with
        | Some { sym = Symbolic.Cnf clauses; _ } ->
            List.filter_map (plan_of_clause t) clauses
            |> List.fold_left
                 (fun best atoms ->
                   match best with
                   | Some b when plan_cost b <= plan_cost atoms -> best
                   | Some _ | None -> Some atoms)
                 None
            |> Option.fold ~none:Scan ~some:(fun atoms -> Clause atoms)
        | Some { sym = Symbolic.Always | Symbolic.Never; _ } | None -> Scan
      in
      Hashtbl.replace t.plans key p;
      p

(* Stored queries of [bucket] that can satisfy the planned clause for
   the given incoming values; [None] = scan the whole bucket. *)
let candidates t bucket atoms ~values =
  let probe_eq acc col probe_key =
    match Hashtbl.find_opt (column t bucket col) probe_key with
    | Some l -> !l :: acc
    | None -> acc
  in
  (* [go] accumulates one stored-list per successful probe. *)
  let rec go acc = function
    | [] -> Some acc
    | Guard g :: rest ->
        if (try g values [||] with Symbolic.Compiled.Unknown -> false) then
          None  (* clause holds bucket-wide *)
        else go acc rest
    | Key_eq { col; syntax; sources } :: rest -> (
        match List.map (resolve_left values) sources with
        | Some v :: more
          when List.for_all
                 (function Some w -> Value.equal syntax v w | None -> false)
                 more ->
            go (probe_eq acc col (Value.canonical syntax v)) rest
        | _ -> go acc rest  (* unresolvable or disagreeing: atom false *))
    | Key_prefix { col; syntax; source } :: rest -> (
        match resolve_left values source with
        | None -> go acc rest
        | Some v ->
            let n = Value.normalize syntax v in
            let acc = ref acc in
            for len = 0 to String.length n do
              acc := probe_eq !acc col (String.sub n 0 len)
            done;
            go !acc rest)
  in
  match go [] atoms with
  | None -> None
  | Some [] -> Some []
  | Some [ l ] -> Some l
  | Some lists ->
      (* Union of several probes: dedupe physically. *)
      let rec dedupe seen = function
        | [] -> List.rev seen
        | s :: rest ->
            if List.memq s seen then dedupe seen rest else dedupe (s :: seen) rest
      in
      Some (dedupe [] (List.concat lists))

let find_container_where t (q : Query.t) ~pred =
  let template, values = decompose t q in
  let incoming_key = Template.shape_key template in
  let check_bucket bucket_key (bucket : 'a bucket) acc =
    match acc with
    | Some _ -> acc
    | None -> (
        match
          condition t ~incoming_key ~incoming:template ~bucket_key
            ~bucket_template:bucket.template
        with
        | Some { sym = Symbolic.Never; _ } -> None
        | cond ->
            let entries =
              match plan t ~incoming_key ~bucket_key cond with
              | Scan -> bucket.entries
              | Clause atoms -> (
                  match candidates t bucket atoms ~values with
                  | None -> bucket.entries
                  | Some cs -> cs)
            in
            List.find_map
              (fun s ->
                t.comparisons <- t.comparisons + 1;
                if
                  (not (pred s.query s.payload))
                  || not (Query_containment.region_and_attrs_ok ~query:q ~stored:s.query)
                then None
                else
                  let ok =
                    match cond with
                    | Some c ->
                        Symbolic.Compiled.eval c.staged ~left:values
                          ~right:s.values
                    | None ->
                        (* Compilation blew up: direct check. *)
                        Filter_containment.contained t.schema q.Query.filter
                          s.query.Query.filter
                  in
                  if ok then Some (s.query, s.payload) else None)
              entries)
  in
  (* Same-template bucket first: it answers most hits cheaply. *)
  let same =
    match Hashtbl.find_opt t.buckets incoming_key with
    | Some bucket -> check_bucket incoming_key bucket None
    | None -> None
  in
  match same with
  | Some _ as hit -> hit
  | None ->
      Hashtbl.fold
        (fun key bucket acc ->
          if String.equal key incoming_key then acc else check_bucket key bucket acc)
        t.buckets None

let find_container t q = find_container_where t q ~pred:(fun _ _ -> true)

let fold t ~init ~f =
  Hashtbl.fold
    (fun _ bucket acc ->
      List.fold_left (fun acc s -> f acc s.query s.payload) acc bucket.entries)
    t.buckets init

let iter t ~f = fold t ~init:() ~f:(fun () q p -> f q p)
let comparisons t = t.comparisons
let reset_comparisons t = t.comparisons <- 0
