(** Compiled filter-containment conditions (Propositions 1 and 2).

    Proposition 1 reduces containment [F1 ⊆ F2] to the inconsistency
    of [F1 ∧ ¬F2].  Proposition 2 observes that for positive filters
    with equality/range predicates the inconsistency condition is a CNF
    of simple comparisons between assertion values — which can be
    computed {e once per template pair} and then evaluated per query by
    plugging in assertion values.

    This module implements that compilation.  Assertion values are
    symbolic {!operand}s: hole [i] of the contained-side template
    ([L i]), hole [i] of the containing-side template ([R i]), a
    constant, or the successor of a prefix (used to interpret
    [attr=p*] as the range [[p, succ p)]).

    Soundness contract: {!eval} returning [true] implies real
    containment under LDAP's multi-valued attribute semantics; [false]
    may be conservative (the replica then generates a spurious
    referral, never a wrong answer).  For positive filters over
    single-valued attributes with equality/range predicates the
    condition is also complete, matching the paper.  Attributes are
    treated as single-valued when the schema says so. *)

open Ldap

type operand =
  | L of int  (** Hole of the left (contained) template. *)
  | R of int  (** Hole of the right (containing) template. *)
  | C of string  (** Constant assertion value. *)
  | Succ of operand  (** Successor of a prefix: upper end of [p*]. *)

type atom =
  | Empty_range of {
      low : operand;
      low_strict : bool;
      high : operand;
      high_strict : bool;
    }  (** The range the conjunct imposes on the attribute is empty. *)
  | Equal of operand * operand
      (** An excluded point coincides with a required point. *)
  | Point_excluded of { low : operand; high : operand; excl : operand }
      (** The range is the single point [low = high] and it is
          excluded. *)
  | Has_prefix of operand * operand
      (** [Has_prefix (p, v)]: [p] is a prefix of [v] — a negated
          prefix assertion swallows the required region. *)

type cond_atom = { attr : string; atom : atom }

type clause = cond_atom list
(** Disjunction; [[]] is FALSE (the conjunct cannot be shown
    inconsistent for any values, so containment never holds). *)

type t =
  | Always  (** Contained for every assignment of hole values. *)
  | Never  (** Not contained for any assignment (template-level
              pruning: the paper's "(&(sn=_)(ou=_)) can not answer
              (sn=_)"). *)
  | Cnf of clause list  (** Conjunction of disjunctions of comparisons:
                            exactly Proposition 2's form. *)

val prefix_orderable : Value.syntax -> bool
(** Whether a prefix assertion [attr=p*] confines the value to
    [[p, succ p)] under the syntax's ordering.  True for lexically
    ordered syntaxes; false for [Integer], whose numeric order breaks
    the premise both ways ("-2*" matches -25 < -2, "1*" matches
    10 > succ "1"). *)

val compile : Schema.t -> left:Template.t -> right:Template.t -> t option
(** Containment condition for instances of [left] in instances of
    [right].  [None] when compilation is infeasible (DNF blow-up
    beyond internal limits); callers must then fall back to a direct
    check or a conservative [false]. *)

val eval : Schema.t -> t -> left:string array -> right:string array -> bool
(** Evaluates a compiled condition on concrete hole values. *)

(** Staged form of {!eval}: each atom of the CNF is closed over its
    resolved syntax, normalized/parsed constants and folded constant
    successors once, so evaluating the condition against a candidate
    query touches only hole values.  Same truth table as {!eval} —
    property-tested equivalent. *)
module Compiled : sig
  exception Unknown
  (** Raised inside an {!atom_fn} when a hole value is missing (the
      analogue of [Unknown_value]); {!eval} treats it as atom-false.
      Callers invoking an {!atom_fn} directly must catch it. *)

  type atom_fn = string array -> string array -> bool
  (** One staged atom; arguments are the left and right hole values. *)

  type cond = Const of bool | Clauses of atom_fn array array
  (** Staged condition: constant, or CNF of staged atoms. *)

  val atom : Schema.t -> cond_atom -> atom_fn
  (** Stage a single atom (used by pruning plans to pre-stage
      guards). *)

  val compile : Schema.t -> t -> cond
  (** Stage a whole condition. *)

  val eval : cond -> left:string array -> right:string array -> bool
  (** Evaluate on concrete hole values; agrees with {!Symbolic.eval}
      of the source condition. *)
end

val contained : Schema.t -> Filter.t -> Filter.t -> bool
(** Direct (uncompiled) containment of concrete filters: compiles the
    filters as constant-only templates, which folds every atom at
    compile time.  This is the general Proposition 1 decision
    procedure. *)

val to_string : t -> string
(** Human-readable CNF, for inspection and tests. *)
