let magic = '\xd1'
let frame_overhead = 9

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.unsafe_to_string b

let read_be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let frame payload =
  let b = Buffer.create (String.length payload + frame_overhead) in
  Buffer.add_char b magic;
  Buffer.add_string b (be32 (String.length payload));
  Buffer.add_string b (be32 (Crc32.string payload));
  Buffer.add_string b payload;
  Buffer.contents b

let append ?(sync = true) medium ~name payload =
  Medium.append medium ~name (frame payload);
  if sync then Medium.sync medium ~name

(* Zero-copy framing: the payload is emitted backwards into a reused
   buffer, the CRC is computed over the byte region in place, and the
   header (magic, length, CRC) is prepended over it — one blit into
   the medium, no intermediate payload or frame strings. *)
module Wbuf = Ldap_compile.Wbuf

let prepend_be32 w n =
  Wbuf.prepend_char w (Char.chr (n land 0xff));
  Wbuf.prepend_char w (Char.chr ((n lsr 8) land 0xff));
  Wbuf.prepend_char w (Char.chr ((n lsr 16) land 0xff));
  Wbuf.prepend_char w (Char.chr ((n lsr 24) land 0xff))

let scratch = Wbuf.create ~capacity:1024 ()

let append_w ?(sync = true) medium ~name emit =
  let w = scratch in
  Wbuf.clear w;
  emit w;
  let buf, pos, len = Wbuf.view w in
  let crc = Crc32.bytes_sub buf ~pos ~len in
  prepend_be32 w crc;
  prepend_be32 w len;
  Wbuf.prepend_char w magic;
  let buf, pos, total = Wbuf.view w in
  Medium.append_sub medium ~name buf ~pos ~len:total;
  if sync then Medium.sync medium ~name

type recovery = {
  records : string list;
  valid_len : int;
  total_len : int;
  truncated : bool;
}

let scan s =
  let total = String.length s in
  let records = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos < total do
    if
      total - !pos < frame_overhead
      || s.[!pos] <> magic
      ||
      let len = read_be32 s (!pos + 1) in
      len < 0 || total - !pos - frame_overhead < len
    then ok := false
    else begin
      let len = read_be32 s (!pos + 1) in
      let crc = read_be32 s (!pos + 5) in
      if Crc32.sub s ~pos:(!pos + frame_overhead) ~len <> crc then ok := false
      else begin
        records := String.sub s (!pos + frame_overhead) len :: !records;
        pos := !pos + frame_overhead + len
      end
    end
  done;
  (List.rev !records, !pos, total)

let recover medium ~name =
  let contents = Option.value ~default:"" (Medium.read medium ~name) in
  let records, valid_len, total_len = scan contents in
  let truncated = valid_len < total_len in
  if truncated then Medium.truncate medium ~name valid_len;
  { records; valid_len; total_len; truncated }
