(* Image layout: "SNP1" | 4-byte BE CRC-32 of payload | payload. *)

let magic = "SNP1"

let write medium ~name payload =
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_string b magic;
  Buffer.add_string b (Wal.be32 (Crc32.string payload));
  Buffer.add_string b payload;
  Medium.write_atomic medium ~name (Buffer.contents b)

let read medium ~name =
  match Medium.read medium ~name with
  | None -> None
  | Some s ->
      if String.length s < 8 || String.sub s 0 4 <> magic then None
      else
        let crc = Wal.read_be32 s 4 in
        let payload = String.sub s 8 (String.length s - 8) in
        if Crc32.string payload = crc then Some payload else None
