open Ldap
module Der = Ber_codec.Der

let decode reader payload =
  match reader (Der.cursor payload) with
  | v -> Ok v
  | exception Ber_codec.Decode_error e -> Error ("decode: " ^ e)

let csn c = Der.integer (Csn.to_int c)
let read_csn c = Csn.of_int (Der.read_integer c)

let dn d = Der.octets (Dn.to_string d)

let read_dn c =
  match Dn.of_string (Der.read_octets c) with
  | Ok d -> d
  | Error e -> raise (Ber_codec.Decode_error e)

let entry_opt e = Der.option Der.entry e
let read_entry_opt c = Der.read_option Der.read_entry c

let mod_item (m : Update.mod_item) =
  let kind =
    match m.Update.mod_kind with
    | Update.Add_values -> 0
    | Update.Delete_values -> 1
    | Update.Replace_values -> 2
  in
  Der.seq
    [
      Der.enum kind;
      Der.octets m.Update.mod_attr;
      Der.seq (List.map Der.octets m.Update.mod_values);
    ]

let read_mod_item c =
  let inner = Der.read_seq c in
  let kind =
    match Der.read_enum inner with
    | 0 -> Update.Add_values
    | 1 -> Update.Delete_values
    | 2 -> Update.Replace_values
    | n ->
        raise (Ber_codec.Decode_error (Printf.sprintf "bad mod kind %d" n))
  in
  let attr = Der.read_octets inner in
  let values = Der.read_seq inner in
  let rec vals acc =
    if Der.at_end values then List.rev acc
    else vals (Der.read_octets values :: acc)
  in
  { Update.mod_kind = kind; mod_attr = attr; mod_values = vals [] }

let op (o : Update.op) =
  match o with
  | Update.Add e -> Der.seq [ Der.enum 0; Der.entry e ]
  | Update.Delete d -> Der.seq [ Der.enum 1; dn d ]
  | Update.Modify (d, items) ->
      Der.seq [ Der.enum 2; dn d; Der.seq (List.map mod_item items) ]
  | Update.Modify_dn { dn = d; new_rdn; delete_old_rdn; new_superior } ->
      Der.seq
        [
          Der.enum 3;
          dn d;
          Der.octets (Dn.rdn_to_string new_rdn);
          Der.boolean delete_old_rdn;
          Der.option (fun s -> dn s) new_superior;
        ]

let read_op c =
  let inner = Der.read_seq c in
  match Der.read_enum inner with
  | 0 -> Update.Add (Der.read_entry inner)
  | 1 -> Update.Delete (read_dn inner)
  | 2 ->
      let d = read_dn inner in
      let items = Der.read_seq inner in
      let rec go acc =
        if Der.at_end items then List.rev acc
        else go (read_mod_item items :: acc)
      in
      Update.Modify (d, go [])
  | 3 ->
      let d = read_dn inner in
      let rdn =
        match Dn.rdn_of_string (Der.read_octets inner) with
        | Ok r -> r
        | Error e -> raise (Ber_codec.Decode_error e)
      in
      let delete_old_rdn = Der.read_boolean inner in
      let new_superior = Der.read_option read_dn inner in
      Update.Modify_dn { dn = d; new_rdn = rdn; delete_old_rdn; new_superior }
  | n -> raise (Ber_codec.Decode_error (Printf.sprintf "bad op kind %d" n))

let record (r : Update.record) =
  Der.seq [ csn r.Update.csn; op r.Update.op; entry_opt r.Update.before;
            entry_opt r.Update.after ]

(* Writer twins of the encoders above, emitting backwards into a
   reused buffer (see {!Ber_codec.Der.W}): children of every
   composite go in reverse field order, and the images are
   byte-identical to the string encoders, so the same [read_*]
   cursors decode both. *)
module W = struct
  module DW = Der.W

  let csn w c = DW.integer w (Csn.to_int c)
  let dn w d = DW.octets w (Dn.to_string d)
  let entry_opt w e = DW.option w (DW.entry w) e

  let mod_item w (m : Update.mod_item) =
    let kind =
      match m.Update.mod_kind with
      | Update.Add_values -> 0
      | Update.Delete_values -> 1
      | Update.Replace_values -> 2
    in
    let m0 = DW.mark w in
    let mv = DW.mark w in
    List.iter (fun v -> DW.octets w v) (List.rev m.Update.mod_values);
    DW.close_seq w mv;
    DW.octets w m.Update.mod_attr;
    DW.enum w kind;
    DW.close_seq w m0

  let op w (o : Update.op) =
    let m0 = DW.mark w in
    (match o with
    | Update.Add e ->
        DW.entry w e;
        DW.enum w 0
    | Update.Delete d ->
        dn w d;
        DW.enum w 1
    | Update.Modify (d, items) ->
        let mi = DW.mark w in
        List.iter (mod_item w) (List.rev items);
        DW.close_seq w mi;
        dn w d;
        DW.enum w 2
    | Update.Modify_dn { dn = d; new_rdn; delete_old_rdn; new_superior } ->
        DW.option w (dn w) new_superior;
        DW.boolean w delete_old_rdn;
        DW.octets w (Dn.rdn_to_string new_rdn);
        dn w d;
        DW.enum w 3);
    DW.close_seq w m0

  let record w (r : Update.record) =
    let m0 = DW.mark w in
    entry_opt w r.Update.after;
    entry_opt w r.Update.before;
    op w r.Update.op;
    csn w r.Update.csn;
    DW.close_seq w m0
end

let read_record c =
  let inner = Der.read_seq c in
  let rcsn = read_csn inner in
  let rop = read_op inner in
  let before = read_entry_opt inner in
  let after = read_entry_opt inner in
  { Update.csn = rcsn; op = rop; before; after }
