module Faults = struct
  type crash_outcome = Keep_all | Lose_unsynced | Torn_tail

  type t = {
    keep_all : float;
    torn_tail : float;
    short_read : float;
    roll : (unit -> float) option;
    mutable scripted : crash_outcome list;
  }

  let create ?(keep_all = 0.) ?(torn_tail = 0.) ?(short_read = 0.) ?roll () =
    { keep_all; torn_tail; short_read; roll; scripted = [] }

  let none = create ()

  let script t outcomes = t.scripted <- t.scripted @ outcomes

  let next_crash t =
    match t.scripted with
    | o :: rest ->
        t.scripted <- rest;
        o
    | [] -> (
        match t.roll with
        | None -> Lose_unsynced
        | Some roll ->
            let x = roll () in
            if x < t.keep_all then Keep_all
            else if x < t.keep_all +. t.torn_tail then Torn_tail
            else Lose_unsynced)

  let read_fraction t =
    match t.roll with
    | None -> None
    | Some roll ->
        if t.short_read > 0. && roll () < t.short_read then Some (roll ())
        else None
end

type file = {
  buf : Buffer.t;
  mutable synced_len : int;
  (* Byte lengths of appends since the last sync, oldest first; the
     head is the append a torn-tail crash tears. *)
  mutable unsynced : int list;
}

type t = {
  table : (string, file) Hashtbl.t;
  faults : Faults.t;
  dir : string option;  (* write-through directory for disk media *)
}

(* --- Disk write-through --------------------------------------------- *)

let path dir name = Filename.concat dir name

let disk_write dir name contents =
  let tmp = path dir (name ^ ".tmp") in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp (path dir name)

let disk_append dir name bytes =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      (path dir name)
  in
  output_string oc bytes;
  close_out oc

let disk_remove dir name =
  let p = path dir name in
  if Sys.file_exists p then Sys.remove p

let write_through t name =
  match t.dir with
  | None -> fun () -> ()
  | Some dir ->
      fun () ->
        let file = Hashtbl.find t.table name in
        disk_write dir name (Buffer.contents file.buf)

(* --- Construction ---------------------------------------------------- *)

let memory ?(faults = Faults.none) () =
  { table = Hashtbl.create 8; faults; dir = None }

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let disk ?(faults = Faults.none) ~dir () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let t = { table = Hashtbl.create 8; faults; dir = Some dir } in
  Array.iter
    (fun name ->
      let p = path dir name in
      if (not (Sys.is_directory p)) && not (Filename.check_suffix name ".tmp")
      then begin
        let contents = read_file p in
        let buf = Buffer.create (String.length contents + 64) in
        Buffer.add_string buf contents;
        Hashtbl.replace t.table name
          { buf; synced_len = String.length contents; unsynced = [] }
      end)
    (Sys.readdir dir);
  t

(* --- Operations ------------------------------------------------------ *)

let file t name =
  match Hashtbl.find_opt t.table name with
  | Some f -> f
  | None ->
      let f = { buf = Buffer.create 256; synced_len = 0; unsynced = [] } in
      Hashtbl.replace t.table name f;
      f

let append t ~name bytes =
  let f = file t name in
  Buffer.add_string f.buf bytes;
  f.unsynced <- f.unsynced @ [ String.length bytes ];
  Option.iter (fun dir -> disk_append dir name bytes) t.dir

let append_sub t ~name bytes ~pos ~len =
  let f = file t name in
  Buffer.add_subbytes f.buf bytes pos len;
  f.unsynced <- f.unsynced @ [ len ];
  Option.iter
    (fun dir -> disk_append dir name (Bytes.sub_string bytes pos len))
    t.dir

let sync t ~name =
  match Hashtbl.find_opt t.table name with
  | None -> ()
  | Some f ->
      f.synced_len <- Buffer.length f.buf;
      f.unsynced <- []

let write_atomic t ~name contents =
  let f = file t name in
  Buffer.clear f.buf;
  Buffer.add_string f.buf contents;
  f.synced_len <- String.length contents;
  f.unsynced <- [];
  Option.iter (fun dir -> disk_write dir name contents) t.dir

let read t ~name =
  match Hashtbl.find_opt t.table name with
  | None -> None
  | Some f -> (
      let s = Buffer.contents f.buf in
      match Faults.read_fraction t.faults with
      | None -> Some s
      | Some frac ->
          let keep = int_of_float (frac *. float_of_int (String.length s)) in
          Some (String.sub s 0 (min keep (String.length s))))

let size t ~name =
  match Hashtbl.find_opt t.table name with
  | None -> 0
  | Some f -> Buffer.length f.buf

let truncate t ~name n =
  match Hashtbl.find_opt t.table name with
  | None -> ()
  | Some f ->
      let n = min n (Buffer.length f.buf) in
      Buffer.truncate f.buf n;
      f.synced_len <- min f.synced_len n;
      f.unsynced <- [];
      write_through t name ()

let remove t ~name =
  Hashtbl.remove t.table name;
  Option.iter (fun dir -> disk_remove dir name) t.dir

let files t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let crash t =
  Hashtbl.iter
    (fun name f ->
      if f.unsynced <> [] then begin
        (match Faults.next_crash t.faults with
        | Faults.Keep_all -> f.synced_len <- Buffer.length f.buf
        | Faults.Lose_unsynced -> Buffer.truncate f.buf f.synced_len
        | Faults.Torn_tail ->
            let first = List.hd f.unsynced in
            (* Keep a strict prefix of the first unsynced append:
               deterministic, and empty when it was a 1-byte write. *)
            let torn =
              match t.faults.Faults.roll with
              | Some roll when first > 1 ->
                  1 + int_of_float (roll () *. float_of_int (first - 2))
              | _ -> first / 2
            in
            Buffer.truncate f.buf (f.synced_len + min torn (max 0 (first - 1))));
        f.synced_len <- Buffer.length f.buf;
        f.unsynced <- [];
        write_through t name ()
      end)
    t.table
