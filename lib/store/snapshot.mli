(** Checkpoint images: one whole-state payload per file, CRC-guarded
    and written via {!Medium.write_atomic} (the write-temp-then-rename
    idiom), so a crash never leaves a partial snapshot — recovery sees
    either the old image or the new one. *)

val write : Medium.t -> name:string -> string -> unit
(** Atomically replaces the snapshot file with the payload. *)

val read : Medium.t -> name:string -> string option
(** The payload, or [None] when the file is missing, too short, has a
    wrong magic or fails its checksum.  Never raises. *)
