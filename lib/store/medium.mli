(** Fault-injectable storage media under the durable store.

    A medium is a namespace of flat files supporting append,
    whole-file atomic replace, sync, truncate and — the point of the
    exercise — {!crash}: the transition a process death imposes on the
    bytes it wrote.  Two implementations share the same fault logic:
    an in-memory medium (tests, simulator) and an on-disk one that
    writes through to real files (used by [ldapctl store]).

    The fault model mirrors {!Ldap.Network.Faults}: decisions are
    deterministic, coming from an explicit script or a caller-supplied
    roll function, never from global randomness.  Three injectable
    behaviours cover the classic storage failure shapes: on crash,
    unsynced appends are lost (fsync loss) and the first lost append
    may additionally leave a torn prefix on the tail (torn write);
    independently, reads may return a short prefix (short read). *)

(** Deterministic fault schedules for storage media. *)
module Faults : sig
  type crash_outcome =
    | Keep_all  (** Everything written survives, synced or not. *)
    | Lose_unsynced  (** Bytes past the last {!sync} are gone. *)
    | Torn_tail
        (** Unsynced bytes are gone {e except} a strict prefix of the
            first unsynced append — a torn record on the tail. *)

  type t

  val none : t
  (** No faults: crashes keep only synced bytes ({!Lose_unsynced},
      the honest default), reads are full. *)

  val create :
    ?keep_all:float ->
    ?torn_tail:float ->
    ?short_read:float ->
    ?roll:(unit -> float) ->
    unit ->
    t
  (** Probabilistic schedule: each crash draws one number from [roll]
      and maps it to an outcome by cumulative probability
      ([keep_all], then [torn_tail], else [Lose_unsynced]); each read
      independently returns a prefix with probability [short_read].
      Without [roll] only scripted outcomes fire. *)

  val script : t -> crash_outcome list -> unit
  (** Appends forced crash outcomes, consumed one per {!crash} before
      any probabilistic roll — the way tests stage exact failures. *)

  val next_crash : t -> crash_outcome
  (** Consumes the next scripted outcome, or rolls. *)

  val read_fraction : t -> float option
  (** [Some f] when the next read should be cut to fraction [f] of
      its length (a short read); [None] for a full read. *)
end

type t

val memory : ?faults:Faults.t -> unit -> t
(** A purely in-memory medium. *)

val disk : ?faults:Faults.t -> dir:string -> unit -> t
(** A medium backed by real files under [dir] (created if missing).
    Existing files are loaded and considered fully synced; mutations
    write through, so durable state survives real process restarts. *)

val append : t -> name:string -> string -> unit
(** Appends bytes to a file, creating it when missing.  The bytes are
    {e not} durable until {!sync}. *)

val append_sub : t -> name:string -> Bytes.t -> pos:int -> len:int -> unit
(** Appends a region of a byte buffer without copying it into an
    intermediate string first (one append as far as crash semantics
    are concerned).  The in-memory medium blits directly; the disk
    write-through path still materializes the region. *)

val sync : t -> name:string -> unit
(** Makes every appended byte of the file durable (fsync). *)

val write_atomic : t -> name:string -> string -> unit
(** Replaces the whole file all-or-nothing and durably (the
    write-temp-then-rename idiom); a later {!crash} never sees a
    partial image of it. *)

val read : t -> name:string -> string option
(** Whole-file contents, or [None] when the file does not exist.
    Subject to the short-read fault. *)

val size : t -> name:string -> int
(** Current length in bytes; 0 when the file does not exist. *)

val truncate : t -> name:string -> int -> unit
(** Durably cuts the file to the first [n] bytes — how recovery
    discards a torn tail. *)

val remove : t -> name:string -> unit
(** Deletes the file, if present. *)

val files : t -> string list
(** Names of existing files, sorted. *)

val crash : t -> unit
(** Simulates a process crash across the whole medium: each file
    keeps its synced prefix and loses the rest, per the fault
    schedule (one {!Faults.next_crash} draw per file with unsynced
    bytes). *)
