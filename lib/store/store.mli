(** One durable state machine: a snapshot file plus a write-ahead log
    on a {!Medium}, named [<name>.snap] and [<name>.wal].

    The client appends one WAL record per state transition and
    periodically {!checkpoint}s the whole state, which atomically
    replaces the snapshot and resets the log.  {!recover} returns the
    latest good snapshot plus the WAL records to replay on top of it,
    truncating the log at the first torn or corrupt record.

    Snapshot and log are tied together by a generation number: the
    checkpoint bumps it, stamps the new snapshot with it and starts
    the fresh log with a header record carrying the same number.  A
    crash between the two steps therefore leaves a log from the
    previous generation, which recovery discards instead of replaying
    stale records onto the newer snapshot. *)

type t

val create : ?sync:bool -> Medium.t -> name:string -> t
(** A handle on the named store.  [sync] (default true) controls
    whether each appended record is fsynced; without it a crash can
    lose or tear the unsynced tail, which recovery then truncates. *)

val name : t -> string

val medium : t -> Medium.t
(** The medium holding the store's files. *)

val append : t -> string -> unit
(** Appends one record payload to the WAL. *)

val append_w : t -> (Ldap_compile.Wbuf.t -> unit) -> unit
(** Zero-copy twin of {!append}: [emit] writes the payload into the
    WAL's reused buffer (see {!Wal.append_w}); the framed record is
    byte-identical to [append] of the same payload. *)

val checkpoint : t -> string -> unit
(** Atomically installs the payload as the new snapshot and resets
    the WAL to the new generation. *)

val checkpoint_w : t -> (Ldap_compile.Wbuf.t -> unit) -> unit
(** Writer twin of {!checkpoint}: [emit] produces the snapshot
    payload into a reused buffer; the installed image is
    byte-identical to [checkpoint] of the same payload. *)

type recovery = {
  snapshot : string option;  (** Latest good snapshot payload. *)
  records : string list;  (** WAL payloads to replay, oldest first. *)
  truncated : bool;  (** A torn/corrupt WAL tail was cut off. *)
  truncation_point : int;
      (** Byte offset in the WAL where replay stopped (end of the
          last whole record). *)
  stale : int;
      (** Records discarded because the log belonged to an older
          generation than the snapshot. *)
  wal_bytes : int;  (** WAL size after truncation. *)
  snapshot_bytes : int;  (** Snapshot file size. *)
}

val recover : t -> recovery
(** Reads back durable state and re-arms the handle: subsequent
    appends continue the recovered log.  Never raises, whatever the
    medium holds. *)

val exists : t -> bool
(** Whether any durable state (snapshot or log records) is present. *)

val wal_size : t -> int
(** Current WAL file size in bytes. *)

val snapshot_size : t -> int
(** Current snapshot file size in bytes. *)

val destroy : t -> unit
(** Removes the store's snapshot and log from the medium — used when
    the state machine itself is being discarded (e.g. a stored filter
    removed from a replica). *)
