(** Durability for a {!Ldap.Backend}: every committed update record
    is journaled to a {!Store} WAL as it happens, and {!checkpoint}
    snapshots the full server state — CSN, naming contexts with all
    entry images (parent before children), and the changelog ring
    with its trim floor.

    {!recover} rebuilds a backend from the latest snapshot plus the
    replayable WAL suffix via the {!Ldap.Backend} restore hooks;
    subscribers (ReSync masters, dispatch indexes) re-attach to the
    recovered instance as they would to a fresh one. *)

open Ldap

type t

val attach : Backend.t -> Store.t -> t
(** Starts journaling the backend's commits to the store.  Call once
    per backend lifetime, after {!recover} on restart. *)

val backend : t -> Backend.t

val store : t -> Store.t
(** The store the backend journals to. *)

val checkpoint : t -> unit
(** Writes a full snapshot and resets the WAL. *)

val recover :
  ?indexed:string list ->
  Schema.t ->
  Store.t ->
  (Backend.t * Store.recovery, string) result
(** Rebuilds a backend from durable state: loads the snapshot (empty
    backend when there is none), replays the WAL records on top, and
    reports what recovery found.  [indexed] mirrors
    {!Ldap.Backend.create}. *)
