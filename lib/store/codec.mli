(** DER payload codecs for the directory-level values the durable
    store records — entries, queries, CSNs and committed-update
    records — built on {!Ldap.Ber_codec.Der} so WAL records and wire
    PDUs share one encoding.

    Encoders return self-delimiting DER values that concatenate
    freely; readers consume exactly one value from a cursor and raise
    {!Ldap.Ber_codec.Decode_error} on malformed input.  {!decode}
    wraps a whole-payload read into a [result] for recovery paths
    that must never raise. *)

open Ldap

val decode : (Ber_codec.Der.cursor -> 'a) -> string -> ('a, string) result
(** Runs a reader over the whole payload, catching decode and DN
    parse errors. *)

val csn : Csn.t -> string
(** CSN as a DER INTEGER. *)

val read_csn : Ber_codec.Der.cursor -> Csn.t
(** Inverse of {!csn}. *)

val dn : Dn.t -> string
(** DN in string form as a DER OCTET STRING. *)

val read_dn : Ber_codec.Der.cursor -> Dn.t
(** Inverse of {!dn}. *)

val entry_opt : Entry.t option -> string
(** Optional entry image. *)

val read_entry_opt : Ber_codec.Der.cursor -> Entry.t option
(** Inverse of {!entry_opt}. *)

val op : Update.op -> string
(** One update operation, with full payload for each of the four
    kinds. *)

val read_op : Ber_codec.Der.cursor -> Update.op
(** Inverse of {!op}. *)

val record : Update.record -> string
(** One committed-update record: CSN, operation and both images. *)

(** Writer twins of the encoders above (see {!Ber_codec.Der.W}):
    byte-identical images emitted backwards into a reused buffer, so
    the hot journal path allocates no intermediate strings. *)
module W : sig
  val csn : Ldap_compile.Wbuf.t -> Csn.t -> unit
  (** Writer twin of {!csn}. *)

  val dn : Ldap_compile.Wbuf.t -> Dn.t -> unit
  (** Writer twin of {!dn}. *)

  val entry_opt : Ldap_compile.Wbuf.t -> Entry.t option -> unit
  (** Writer twin of {!entry_opt}. *)

  val mod_item : Ldap_compile.Wbuf.t -> Update.mod_item -> unit
  (** Writer twin of {!mod_item}'s image inside {!op}. *)

  val op : Ldap_compile.Wbuf.t -> Update.op -> unit
  (** Writer twin of {!op}. *)

  val record : Ldap_compile.Wbuf.t -> Update.record -> unit
  (** Writer twin of {!record}. *)
end

val read_record : Ber_codec.Der.cursor -> Update.record
(** Inverse of {!record}. *)
