(** CRC-32 (IEEE 802.3, the zlib polynomial) used to guard every WAL
    record and snapshot image in the durable store.  A checksum
    mismatch on recovery marks the first torn or corrupt record, where
    replay truncates. *)

val string : string -> int
(** Checksum of a whole string, as a non-negative 32-bit value. *)

val sub : string -> pos:int -> len:int -> int
(** Checksum of a substring. *)

val bytes_sub : Bytes.t -> pos:int -> len:int -> int
(** Checksum of a byte-buffer region in place — lets the zero-copy
    WAL writer frame a record without materializing the payload as a
    string. *)
