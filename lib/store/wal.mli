(** Record framing for the append-only write-ahead log.

    Each record travels as [magic byte | 4-byte BE payload length |
    4-byte BE CRC-32 of the payload | payload].  Recovery scans from
    the start and stops at the first frame that is incomplete, has a
    wrong magic, an implausible length or a checksum mismatch — the
    torn/corrupt tail a crash can leave — and truncates the file back
    to the last whole record, so later appends continue from a clean
    boundary.  Recovery never raises on any byte string. *)

val frame_overhead : int
(** Framing bytes added per record (magic + length + CRC). *)

val be32 : int -> string
(** Big-endian 32-bit encoding used by frame headers (shared with
    {!Snapshot}). *)

val read_be32 : string -> int -> int
(** Inverse of {!be32}, reading at a byte offset. *)

val append : ?sync:bool -> Medium.t -> name:string -> string -> unit
(** Frames one payload and appends it; syncs by default. *)

val append_w :
  ?sync:bool -> Medium.t -> name:string -> (Ldap_compile.Wbuf.t -> unit) -> unit
(** Zero-copy twin of {!append}: [emit] writes the payload backwards
    into a reused buffer, the frame header is prepended in place and
    the whole record is blitted into the medium — no intermediate
    payload/frame strings.  Byte-identical on the log to {!append} of
    the same payload.  The buffer is shared, so [emit] must not
    recursively call [append_w]. *)

type recovery = {
  records : string list;  (** Whole-record payloads, oldest first. *)
  valid_len : int;  (** Byte offset of the end of the last whole record. *)
  total_len : int;  (** File length before truncation. *)
  truncated : bool;  (** Whether a torn/corrupt tail was cut off. *)
}

val recover : Medium.t -> name:string -> recovery
(** Scans the log, truncating the medium file to [valid_len] when a
    torn tail is found.  A missing file recovers to the empty log. *)
