open Ldap
module Der = Ber_codec.Der

type t = { backend : Backend.t; store : Store.t }

let attach backend store =
  Backend.subscribe backend (fun record -> Store.append store (Codec.record record));
  { backend; store }

let backend t = t.backend
let store t = t.store

(* Snapshot layout: SEQ [ csn; floor; contexts; log ] where contexts
   is a SEQ of per-context SEQs of entry images (parent before
   children, suffix entry first) and log is a SEQ of retained
   changelog records, oldest first. *)
let snapshot_payload backend =
  let contexts =
    List.map
      (fun dit ->
        let entries =
          List.rev
            (Dit.fold dit ~init:[] ~f:(fun acc e -> Der.entry e :: acc))
        in
        Der.seq entries)
      (Backend.contexts backend)
  in
  let log =
    List.map Codec.record (Backend.log_since backend (Backend.log_floor backend))
  in
  Der.seq
    [
      Codec.csn (Backend.csn backend);
      Codec.csn (Backend.log_floor backend);
      Der.seq contexts;
      Der.seq log;
    ]

let checkpoint t = Store.checkpoint t.store (snapshot_payload t.backend)

let restore_snapshot backend payload =
  let ( let* ) = Result.bind in
  let* csn, floor, contexts, log =
    Codec.decode
      (fun c ->
        let inner = Der.read_seq c in
        let csn = Codec.read_csn inner in
        let floor = Codec.read_csn inner in
        let contexts =
          let outer = Der.read_seq inner in
          let rec per_ctx acc =
            if Der.at_end outer then List.rev acc
            else begin
              let ctx = Der.read_seq outer in
              let rec entries eacc =
                if Der.at_end ctx then List.rev eacc
                else entries (Der.read_entry ctx :: eacc)
              in
              per_ctx (entries [] :: acc)
            end
          in
          per_ctx []
        in
        let log =
          let records = Der.read_seq inner in
          let rec go acc =
            if Der.at_end records then List.rev acc
            else go (Codec.read_record records :: acc)
          in
          go []
        in
        (csn, floor, contexts, log))
      payload
  in
  let* () =
    List.fold_left
      (fun acc entries ->
        let* () = acc in
        match entries with
        | [] -> Ok ()
        | suffix :: rest ->
            let* () = Backend.add_context backend suffix in
            List.fold_left
              (fun acc e ->
                let* () = acc in
                Backend.restore_entry backend e)
              (Ok ()) rest)
      (Ok ()) contexts
  in
  Backend.restore_csn backend csn;
  Backend.restore_log backend ~floor log;
  Ok ()

let recover ?indexed schema store =
  let ( let* ) = Result.bind in
  let recovery = Store.recover store in
  let backend = Backend.create ?indexed schema in
  let* () =
    match recovery.Store.snapshot with
    | None -> Ok ()
    | Some payload -> restore_snapshot backend payload
  in
  let* () =
    List.fold_left
      (fun acc payload ->
        let* () = acc in
        let* record = Codec.decode Codec.read_record payload in
        Backend.replay_record backend record)
      (Ok ()) recovery.Store.records
  in
  Ok (backend, recovery)
