open Ldap
module Der = Ber_codec.Der
module DW = Der.W

type t = { backend : Backend.t; store : Store.t }

let attach backend store =
  Backend.subscribe backend (fun record ->
      Store.append_w store (fun w -> Codec.W.record w record));
  { backend; store }

let backend t = t.backend
let store t = t.store

(* Snapshot layout: SEQ [ csn; floor; contexts; log ] where contexts
   is a SEQ of per-context SEQs of entry images (parent before
   children, suffix entry first) and log is a SEQ of retained
   changelog records, oldest first.  Emitted with the backwards writer
   (fields and list elements in reverse order), byte-identical to the
   old string-combinator image. *)
let snapshot_emit backend w =
  let m = DW.mark w in
  let ml = DW.mark w in
  List.iter
    (fun r -> Codec.W.record w r)
    (List.rev (Backend.log_since backend (Backend.log_floor backend)));
  DW.close_seq w ml;
  let mc = DW.mark w in
  List.iter
    (fun dit ->
      let mctx = DW.mark w in
      (* [Dit.fold] yields parent-before-children; consing builds the
         reverse, which the backwards writer flips back to fold order
         in the final image. *)
      List.iter
        (fun e -> DW.entry w e)
        (Dit.fold dit ~init:[] ~f:(fun acc e -> e :: acc));
      DW.close_seq w mctx)
    (List.rev (Backend.contexts backend));
  DW.close_seq w mc;
  Codec.W.csn w (Backend.log_floor backend);
  Codec.W.csn w (Backend.csn backend);
  DW.close_seq w m

let checkpoint t = Store.checkpoint_w t.store (snapshot_emit t.backend)

let restore_snapshot backend payload =
  let ( let* ) = Result.bind in
  let* csn, floor, contexts, log =
    Codec.decode
      (fun c ->
        let inner = Der.read_seq c in
        let csn = Codec.read_csn inner in
        let floor = Codec.read_csn inner in
        let contexts =
          let outer = Der.read_seq inner in
          let rec per_ctx acc =
            if Der.at_end outer then List.rev acc
            else begin
              let ctx = Der.read_seq outer in
              let rec entries eacc =
                if Der.at_end ctx then List.rev eacc
                else entries (Der.read_entry ctx :: eacc)
              in
              per_ctx (entries [] :: acc)
            end
          in
          per_ctx []
        in
        let log =
          let records = Der.read_seq inner in
          let rec go acc =
            if Der.at_end records then List.rev acc
            else go (Codec.read_record records :: acc)
          in
          go []
        in
        (csn, floor, contexts, log))
      payload
  in
  let* () =
    List.fold_left
      (fun acc entries ->
        let* () = acc in
        match entries with
        | [] -> Ok ()
        | suffix :: rest ->
            let* () = Backend.add_context backend suffix in
            List.fold_left
              (fun acc e ->
                let* () = acc in
                Backend.restore_entry backend e)
              (Ok ()) rest)
      (Ok ()) contexts
  in
  Backend.restore_csn backend csn;
  Backend.restore_log backend ~floor log;
  Ok ()

let recover ?indexed schema store =
  let ( let* ) = Result.bind in
  let recovery = Store.recover store in
  let backend = Backend.create ?indexed schema in
  let* () =
    match recovery.Store.snapshot with
    | None -> Ok ()
    | Some payload -> restore_snapshot backend payload
  in
  let* () =
    List.fold_left
      (fun acc payload ->
        let* () = acc in
        let* record = Codec.decode Codec.read_record payload in
        Backend.replay_record backend record)
      (Ok ()) recovery.Store.records
  in
  Ok (backend, recovery)
