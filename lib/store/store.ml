module Der = Ldap.Ber_codec.Der

type t = {
  medium : Medium.t;
  name : string;
  sync : bool;
  mutable gen : int;
  mutable header_written : bool;
}

let wal_file t = t.name ^ ".wal"
let snap_file t = t.name ^ ".snap"

let create ?(sync = true) medium ~name =
  { medium; name; sync; gen = 0; header_written = false }

let name t = t.name
let medium t = t.medium

(* The first record of every log generation carries the generation
   number; recovery matches it against the snapshot's. *)
let header_payload gen = Der.integer gen

let parse_header payload =
  match Der.read_integer (Der.cursor payload) with
  | gen -> Some gen
  | exception Ldap.Ber_codec.Decode_error _ -> None

let ensure_header t =
  if not t.header_written then begin
    if Medium.size t.medium ~name:(wal_file t) = 0 then
      Wal.append ~sync:true t.medium ~name:(wal_file t) (header_payload t.gen);
    t.header_written <- true
  end

let append t payload =
  ensure_header t;
  Wal.append ~sync:t.sync t.medium ~name:(wal_file t) payload

let append_w t emit =
  ensure_header t;
  Wal.append_w ~sync:t.sync t.medium ~name:(wal_file t) emit

(* Snapshot payload layout: SEQUENCE-free concatenation is avoided on
   purpose — the generation travels as a DER INTEGER followed by the
   client payload as a DER OCTET STRING, so both sides are
   length-delimited. *)
let snap_payload gen payload = Der.integer gen ^ Der.octets payload

let parse_snap s =
  let c = Der.cursor s in
  match
    let gen = Der.read_integer c in
    let payload = Der.read_octets c in
    (gen, payload)
  with
  | parsed -> Some parsed
  | exception Ldap.Ber_codec.Decode_error _ -> None

let install_snapshot t image =
  Snapshot.write t.medium ~name:(snap_file t) image;
  Medium.truncate t.medium ~name:(wal_file t) 0;
  Wal.append ~sync:true t.medium ~name:(wal_file t) (header_payload t.gen);
  t.header_written <- true

let checkpoint t payload =
  t.gen <- t.gen + 1;
  install_snapshot t (snap_payload t.gen payload)

(* Writer-based checkpoint: the client payload is emitted backwards
   into a reused buffer and wrapped as the OCTET STRING of the
   [snap_payload] layout in place; only the final whole-image copy for
   {!Snapshot.write} remains. *)
module Wbuf = Ldap_compile.Wbuf

let snap_scratch = Wbuf.create ~capacity:4096 ()

let checkpoint_w t emit =
  t.gen <- t.gen + 1;
  let w = snap_scratch in
  Wbuf.clear w;
  let m = Der.W.mark w in
  emit w;
  (* Close the payload as an OCTET STRING, then prepend the generation
     INTEGER — the exact [snap_payload] image. *)
  Der.W.close_octets w m;
  Der.W.integer w t.gen;
  install_snapshot t (Wbuf.contents w)

type recovery = {
  snapshot : string option;
  records : string list;
  truncated : bool;
  truncation_point : int;
  stale : int;
  wal_bytes : int;
  snapshot_bytes : int;
}

let recover t =
  let snap_gen, snapshot =
    match Snapshot.read t.medium ~name:(snap_file t) with
    | None -> (0, None)
    | Some s -> (
        match parse_snap s with
        | Some (gen, payload) -> (gen, Some payload)
        | None -> (0, None))
  in
  let wal = Wal.recover t.medium ~name:(wal_file t) in
  let wal_gen, body =
    match wal.Wal.records with
    | header :: rest -> (
        match parse_header header with
        | Some gen -> (gen, rest)
        | None -> (-1, []))
    | [] -> (snap_gen, [])
  in
  let stale, records, truncation_point =
    if wal_gen = snap_gen then (0, body, wal.Wal.valid_len)
    else begin
      (* Log from another generation (or unparseable header): a crash
         landed between snapshot install and log reset.  Discard it
         and restart the log at the snapshot's generation. *)
      Medium.truncate t.medium ~name:(wal_file t) 0;
      Wal.append ~sync:true t.medium ~name:(wal_file t)
        (header_payload snap_gen);
      (List.length body, [], Medium.size t.medium ~name:(wal_file t))
    end
  in
  t.gen <- snap_gen;
  t.header_written <- Medium.size t.medium ~name:(wal_file t) > 0;
  {
    snapshot;
    records;
    truncated = wal.Wal.truncated;
    truncation_point;
    stale;
    wal_bytes = Medium.size t.medium ~name:(wal_file t);
    snapshot_bytes = Medium.size t.medium ~name:(snap_file t);
  }

let exists t =
  Medium.size t.medium ~name:(snap_file t) > 0
  || Medium.size t.medium ~name:(wal_file t) > 0

let wal_size t = Medium.size t.medium ~name:(wal_file t)
let snapshot_size t = Medium.size t.medium ~name:(snap_file t)

let destroy t =
  Medium.remove t.medium ~name:(wal_file t);
  Medium.remove t.medium ~name:(snap_file t);
  t.gen <- 0;
  t.header_written <- false
