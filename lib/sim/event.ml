type event = { time : int; seq : int; run : unit -> unit }

(* Binary min-heap in a growable array, ordered by (time, seq). *)
type t = { mutable heap : event array; mutable size : int }

let dummy = { time = 0; seq = 0; run = ignore }

let create () = { heap = Array.make 16 dummy; size = 0 }

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && precedes t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && precedes t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    Some top
  end

let min_time t = if t.size = 0 then None else Some t.heap.(0).time
let length t = t.size
