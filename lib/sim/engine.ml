type t = {
  clock : Clock.t;
  queue : Event.t;
  mutable seq : int;
  mutable rng : int64;
  mutable running : bool;
}

let create ?(seed = 0) () =
  {
    clock = Clock.create ();
    queue = Event.create ();
    seq = 0;
    rng = Int64.of_int seed;
    running = false;
  }

let now t = Clock.now t.clock
let clock t = t.clock

let schedule t ~time run =
  if time < now t then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %d is before now %d" time (now t));
  let seq = t.seq in
  t.seq <- seq + 1;
  Event.add t.queue { Event.time; seq; run }

let after t ~delay run = schedule t ~time:(now t + max 0 delay) run

(* Cancellation wraps the scheduled thunk with a flag check: the queue
   entry stays (Event.t has no removal), it just fires as a no-op.
   Determinism is unaffected — the entry keeps its time and sequence
   number whether or not it was cancelled. *)
type handle = { mutable cancelled : bool }

let cancel h = h.cancelled <- true
let cancelled h = h.cancelled

let schedule_cancellable t ~time run =
  let h = { cancelled = false } in
  schedule t ~time (fun () -> if not h.cancelled then run ());
  h

let after_cancellable t ~delay run =
  schedule_cancellable t ~time:(now t + max 0 delay) run

let every t ~every:period ~until run =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let rec tick () =
    run ();
    let next = now t + period in
    if next <= until then schedule t ~time:next tick
  in
  let first = now t + period in
  if first <= until then schedule t ~time:first tick

let every_cancellable t ~every:period ~until run =
  if period <= 0 then invalid_arg "Engine.every_cancellable: period must be positive";
  let h = { cancelled = false } in
  let rec tick () =
    if not h.cancelled then begin
      run ();
      let next = now t + period in
      if next <= until then schedule t ~time:next tick
    end
  in
  let first = now t + period in
  if first <= until then schedule t ~time:first tick;
  h

(* splitmix64, same constants as Ldap_dirgen.Prng; ldap_sim sits below
   ldap in the dependency order so it keeps its own copy. *)
let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.rng <- Int64.add t.rng golden;
  let z = t.rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let float01 t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let draw t lat = Latency.draw lat ~roll:(fun () -> float01 t)

let step t =
  match Event.pop t.queue with
  | None -> false
  | Some ev ->
      Clock.advance_to t.clock ev.Event.time;
      ev.Event.run ();
      true

let run t =
  if t.running then invalid_arg "Engine.run: engine is already running";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      while step t do
        ()
      done)

let run_until t ~time =
  if t.running then invalid_arg "Engine.run_until: engine is already running";
  if time < now t then
    invalid_arg
      (Printf.sprintf "Engine.run_until: time %d is before now %d" time (now t));
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let continue = ref true in
      while !continue do
        match Event.min_time t.queue with
        | Some next when next <= time -> ignore (step t)
        | _ -> continue := false
      done;
      Clock.advance_to t.clock time)

let running t = t.running
let pending t = Event.length t.queue
