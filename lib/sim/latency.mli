(** Per-link latency distributions.

    A distribution is sampled with a caller-supplied uniform roll in
    [0, 1) so the engine controls the random stream.  [Zero] and
    [Fixed] consume no roll, keeping draws reproducible when a link is
    switched between deterministic and random latencies. *)

type t =
  | Zero  (** Immediate delivery — the pre-engine behaviour. *)
  | Fixed of int  (** Constant delay in ticks. *)
  | Uniform of { lo : int; hi : int }  (** Uniform integer delay in [lo, hi]. *)
  | Exponential of { mean : int }
      (** Exponentially distributed delay with the given mean, rounded to
          the nearest tick. *)

val draw : t -> roll:(unit -> float) -> int
(** Sample a delay in ticks.  The result is always non-negative. *)

val to_string : t -> string
(** Short human-readable form, e.g. ["uniform(2,8)"]. *)
