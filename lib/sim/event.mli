(** Pending-event priority queue.

    Events are ordered by [(time, seq)]: earliest time first, and among
    events scheduled for the same tick, lowest sequence number (i.e.
    scheduling order) first.  The total order makes engine runs
    deterministic for a given seed and schedule. *)

type t

type event = { time : int; seq : int; run : unit -> unit }

val create : unit -> t
(** An empty queue. *)

val add : t -> event -> unit
(** Insert an event. *)

val pop : t -> event option
(** Remove and return the minimum event, or [None] when empty. *)

val min_time : t -> int option
(** Time of the earliest pending event without removing it. *)

val length : t -> int
(** Number of pending events. *)
