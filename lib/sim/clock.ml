type t = { mutable now : int }

let create () = { now = 0 }
let now t = t.now

let advance_to t time =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Clock.advance_to: %d is before current time %d" time t.now);
  t.now <- time
