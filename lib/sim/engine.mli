(** Discrete-event engine: one virtual clock, one event queue, one seeded
    random stream for latency draws.

    Determinism rule: for a given seed and an identical sequence of
    [schedule]/[after]/[every]/[draw] calls, a run executes the same
    events at the same virtual times in the same order.  Events at equal
    times fire in scheduling order (ties broken by a per-engine sequence
    number), so callers never depend on heap internals. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh engine at time 0.  [seed] (default 0) seeds the splitmix64
    stream used by [draw]. *)

val now : t -> int
(** Current virtual time. *)

val clock : t -> Clock.t
(** The underlying clock (shared with any component that needs to read
    virtual time without scheduling). *)

val schedule : t -> time:int -> (unit -> unit) -> unit
(** Schedule a thunk at an absolute virtual time.  Raises
    [Invalid_argument] if [time] is in the past. *)

val after : t -> delay:int -> (unit -> unit) -> unit
(** Schedule a thunk [delay] ticks from now.  Negative delays clamp
    to zero. *)

val every : t -> every:int -> until:int -> (unit -> unit) -> unit
(** Periodic event: run the thunk now + [every], then every [every]
    ticks, stopping once the next occurrence would fall after [until].
    The bound keeps run-to-quiescence terminating.  Raises
    [Invalid_argument] if [every <= 0]. *)

type handle
(** A cancellation handle on a scheduled event.  Cancelling does not
    remove the queue entry — it fires as a no-op — so timing and
    ordering of the remaining events are unchanged (the determinism
    rule holds with or without cancellations). *)

val cancel : handle -> unit
(** Marks the event cancelled: when its time comes, nothing runs.  For
    a periodic event the whole series stops.  Idempotent. *)

val cancelled : handle -> bool
(** Whether {!cancel} was called. *)

val schedule_cancellable : t -> time:int -> (unit -> unit) -> handle
(** {!schedule} returning a cancellation handle — how a simulated
    crash silences a node's pending activity. *)

val after_cancellable : t -> delay:int -> (unit -> unit) -> handle
(** {!after} returning a cancellation handle. *)

val every_cancellable : t -> every:int -> until:int -> (unit -> unit) -> handle
(** {!every} returning one handle for the whole periodic series —
    cancelling stops all future occurrences (the way a crashed
    replica's poll loop dies with it). *)

val float01 : t -> float
(** Next uniform float in [0, 1) from the engine's seeded stream. *)

val draw : t -> Latency.t -> int
(** Sample a latency distribution using the engine's stream. *)

val step : t -> bool
(** Run the single earliest pending event, advancing the clock to its
    time.  Returns [false] when the queue is empty. *)

val run : t -> unit
(** Run events until the queue is empty (quiescence).  Raises
    [Invalid_argument] if called re-entrantly from inside an event. *)

val run_until : t -> time:int -> unit
(** Run all events scheduled at or before [time], then advance the
    clock to exactly [time].  Same re-entrancy rule as [run]. *)

val running : t -> bool
(** [true] while [run]/[run_until] is executing events — used by
    synchronous wrappers to fall back to immediate execution instead of
    re-entering the loop. *)

val pending : t -> int
(** Number of events currently queued. *)
