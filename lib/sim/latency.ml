type t =
  | Zero
  | Fixed of int
  | Uniform of { lo : int; hi : int }
  | Exponential of { mean : int }

let draw t ~roll =
  match t with
  | Zero -> 0
  | Fixed d -> max 0 d
  | Uniform { lo; hi } ->
      if hi < lo then invalid_arg "Latency.draw: empty uniform range";
      let lo = max 0 lo in
      let hi = max lo hi in
      let u = roll () in
      lo + int_of_float (u *. float_of_int (hi - lo + 1))
  | Exponential { mean } ->
      if mean <= 0 then 0
      else begin
        let u = roll () in
        (* u is in [0,1); 1-u is in (0,1] so log is finite. *)
        let d = -.float_of_int mean *. log (1.0 -. u) in
        max 0 (int_of_float (Float.round d))
      end

let to_string = function
  | Zero -> "zero"
  | Fixed d -> Printf.sprintf "fixed(%d)" d
  | Uniform { lo; hi } -> Printf.sprintf "uniform(%d,%d)" lo hi
  | Exponential { mean } -> Printf.sprintf "exp(%d)" mean
