(** Virtual clock for the discrete-event engine.

    Time is an abstract non-negative integer tick count.  The clock only
    moves forward: [advance_to] with a time earlier than [now] raises. *)

type t

val create : unit -> t
(** A fresh clock at time 0. *)

val now : t -> int
(** Current virtual time. *)

val advance_to : t -> int -> unit
(** Move the clock forward to the given time.  Raises [Invalid_argument]
    if the target is earlier than [now] — virtual time is monotone. *)
