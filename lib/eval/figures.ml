open Ldap
module Dirgen = Ldap_dirgen
module Replication = Ldap_replication
module Selection = Ldap_selection
module Resync = Ldap_resync

let serial_rule = Selection.Generalize.Prefix_value { attr = "serialnumber"; keep = 6 }

let dept_rules =
  [
    Selection.Generalize.Widen_to_presence { attr = "departmentnumber" };
    Selection.Generalize.Prefix_value { attr = "departmentnumber"; keep = 2 };
  ]

let mail_rule = Selection.Generalize.Prefix_value { attr = "mail"; keep = 3 }

let serial_only length seed =
  {
    Dirgen.Workload.default_config with
    Dirgen.Workload.length;
    seed;
    serial_pct = 1.0;
    mail_pct = 0.0;
    dept_pct = 0.0;
    location_pct = 0.0;
  }

let mail_only length seed =
  {
    Dirgen.Workload.default_config with
    Dirgen.Workload.length;
    seed;
    serial_pct = 0.0;
    mail_pct = 1.0;
    dept_pct = 0.0;
    location_pct = 0.0;
  }

let dept_only length seed =
  {
    Dirgen.Workload.default_config with
    Dirgen.Workload.length;
    seed;
    serial_pct = 0.0;
    mail_pct = 0.0;
    dept_pct = 1.0;
    location_pct = 0.0;
  }

let split_halves items =
  let n = Array.length items in
  (Array.sub items 0 (n / 2), Array.sub items (n / 2) (n - (n / 2)))

(* --- Table 1 --------------------------------------------------------- *)

let table1 ?(scale = 1.0) (scenario : Scenario.t) =
  let config =
    {
      Dirgen.Workload.default_config with
      Dirgen.Workload.length =
        int_of_float (scale *. float_of_int Dirgen.Workload.default_config.Dirgen.Workload.length);
    }
  in
  let items = Dirgen.Workload.generate scenario.Scenario.enterprise config in
  let mix = Dirgen.Workload.mix_of items in
  let paper = [ 0.58; 0.24; 0.16; 0.02 ] in
  let rows =
    List.map2
      (fun (kind, observed) expected ->
        [
          Dirgen.Workload.kind_name kind;
          Report.fmt_pct expected;
          Report.fmt_pct observed;
        ])
      mix paper
  in
  Report.make ~title:"Table 1: workload distribution"
    ~notes:
      [
        "paper: serialNumber 58%, mail 24%, dept+div 16%, location 2%";
        Printf.sprintf "generated %d queries (repeats included)" (Array.length items);
      ]
    ~columns:[ "query type"; "paper"; "generated" ] ~rows ()

(* --- Figure 2 --------------------------------------------------------- *)

let figure2 () =
  let schema = Schema.default in
  let entry dn attrs = Entry.make (Dn.of_string_exn dn) attrs in
  let person name parent serial =
    entry
      (Printf.sprintf "cn=%s,%s" name parent)
      [
        ("objectclass", [ "inetOrgPerson" ]);
        ("cn", [ name ]); ("sn", [ name ]); ("serialNumber", [ serial ]);
      ]
  in
  let must = function Ok x -> x | Error e -> failwith e in
  let must_apply b op = ignore (must (Backend.apply b op)) in
  let backend_a = Backend.create schema in
  must
    (Backend.add_context backend_a
       (entry "o=xyz" [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]));
  must_apply backend_a
    (Update.add (entry "c=us,o=xyz" [ ("objectclass", [ "country" ]); ("c", [ "us" ]) ]));
  must_apply backend_a (Update.add (person "fred jones" "o=xyz" "0001"));
  must_apply backend_a
    (Update.add
       (entry "ou=research,c=us,o=xyz"
          [
            ("objectclass", [ "referral" ]);
            ("ref",
             [ Referral.make ~host:"hostB" ~dn:(Dn.of_string_exn "ou=research,c=us,o=xyz") () ]);
          ]));
  must_apply backend_a
    (Update.add
       (entry "c=in,o=xyz"
          [
            ("objectclass", [ "referral" ]);
            ("ref", [ Referral.make ~host:"hostC" ~dn:(Dn.of_string_exn "c=in,o=xyz") () ]);
          ]));
  let backend_b = Backend.create schema in
  must
    (Backend.add_context backend_b
       (entry "ou=research,c=us,o=xyz"
          [ ("objectclass", [ "organizationalUnit" ]); ("ou", [ "research" ]) ]));
  must_apply backend_b (Update.add (person "john doe" "ou=research,c=us,o=xyz" "0456"));
  must_apply backend_b (Update.add (person "carl miller" "ou=research,c=us,o=xyz" "0457"));
  let backend_c = Backend.create schema in
  must
    (Backend.add_context backend_c
       (entry "c=in,o=xyz" [ ("objectclass", [ "country" ]); ("c", [ "in" ]) ]));
  must_apply backend_c (Update.add (person "asha" "c=in,o=xyz" "0789"));
  let net = Network.create () in
  let url_a = Referral.make ~host:"hostA" () in
  Network.add_server net (Server.create ~name:"hostA" backend_a);
  Network.add_server net (Server.create ~name:"hostB" ~default_referral:url_a backend_b);
  Network.add_server net (Server.create ~name:"hostC" ~default_referral:url_a backend_c);
  let q = Query.make ~base:(Dn.of_string_exn "o=xyz") Filter.tt in
  Network.reset_stats net;
  let entries =
    match Network.search net ~from:"hostB" q with
    | Ok entries -> List.length entries
    | Error e -> failwith e
  in
  let stats = Network.stats net in
  (* The same search served entirely by one replica: one round trip. *)
  let rows =
    [
      [ "distributed (referrals)"; string_of_int stats.Network.round_trips;
        string_of_int entries; string_of_int stats.Network.referral_pdus ];
      [ "single replica (no referrals)"; "1"; string_of_int entries; "0" ];
    ]
  in
  Report.make ~title:"Figure 2: distributed operation processing"
    ~notes:
      [
        "paper: four round trips between client and servers for one request";
        "the referral mechanism makes distributed LDAP operations slow";
      ]
    ~columns:[ "deployment"; "round trips"; "entries"; "referral PDUs" ] ~rows ()

(* --- Figure 3 --------------------------------------------------------- *)

let figure3 () =
  let schema = Schema.default in
  let backend = Backend.create ~indexed:[ "departmentnumber" ] schema in
  (match
     Backend.add_context backend
       (Entry.make (Dn.of_string_exn "o=xyz")
          [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ])
   with
  | Ok () -> ()
  | Error e -> failwith e);
  let apply op =
    match Backend.apply backend op with Ok _ -> () | Error e -> failwith e
  in
  let person name dept =
    Entry.make
      (Dn.of_string_exn (Printf.sprintf "cn=%s,o=xyz" name))
      [
        ("objectclass", [ "inetOrgPerson" ]); ("cn", [ name ]); ("sn", [ name ]);
        ("departmentNumber", [ dept ]);
      ]
  in
  let dn name = Dn.of_string_exn (Printf.sprintf "cn=%s,o=xyz" name) in
  apply (Update.add (person "e1" "7"));
  apply (Update.add (person "e2" "7"));
  apply (Update.add (person "e3" "7"));
  let master = Resync.Master.create backend in
  let query =
    Query.make ~base:(Dn.of_string_exn "o=xyz")
      (Filter.of_string_exn "(departmentNumber=7)")
  in
  let consumer = Resync.Consumer.create schema query in
  let rows = ref [] in
  let record step reply =
    let actions =
      String.concat ", "
        (List.map
           (fun a ->
             Printf.sprintf "%s %s" (Resync.Action.kind_name a)
               (Dn.to_string (Resync.Action.target a)))
           reply.Resync.Protocol.actions)
    in
    rows := [ step; actions; string_of_int (Resync.Consumer.size consumer) ] :: !rows
  in
  (* Poll 1: initial content E1 E2 E3. *)
  (match Resync.Consumer.sync consumer master with
  | Ok reply -> record "S, (poll, null)" reply
  | Error e -> failwith e);
  (* Interval: E4 appears (A), E1 and E2 leave (M out / D), E3 changes (M). *)
  apply (Update.add (person "e4" "7"));
  apply (Update.modify (dn "e1") [ Update.replace_values "departmentNumber" [ "9" ] ]);
  apply (Update.delete (dn "e2"));
  apply (Update.modify (dn "e3") [ Update.replace_values "mail" [ "e3@xyz.com" ] ]);
  (match Resync.Consumer.sync consumer master with
  | Ok reply -> record "S, (poll, cookie)" reply
  | Error e -> failwith e);
  (* Persistent phase: E3 renamed to E5 (R): delete + add pushed live
     through the transport's connection handle. *)
  let transport = Resync.Transport.loopback master in
  let pushed = ref [] in
  (match
     Resync.Consumer.connect_persist consumer transport
       ~host:Resync.Transport.loopback_host
       ~observe:(fun a -> pushed := a :: !pushed)
   with
  | Ok _ -> ()
  | Error e -> failwith (Resync.Consumer.sync_error_to_string e));
  (match Dn.rdn_of_string "cn=e5" with
  | Ok rdn -> apply (Update.modify_dn (dn "e3") rdn)
  | Error e -> failwith e);
  let pushed = List.rev !pushed in
  rows :=
    [
      "S, (persist, cookie1)";
      String.concat ", "
        (List.map
           (fun a ->
             Printf.sprintf "%s %s" (Resync.Action.kind_name a)
               (Dn.to_string (Resync.Action.target a)))
           pushed);
      string_of_int (Resync.Consumer.size consumer);
    ]
    :: !rows;
  (match Resync.Consumer.cookie consumer with
  | Some c -> Resync.Master.abandon master ~cookie:c
  | None -> ());
  Report.make ~title:"Figure 3: an example ReSync session"
    ~notes:
      [
        "paper: poll(null) sends initial content; poll(cookie) replays session";
        "history; a rename inside the content is delete(old)+add(new)";
      ]
    ~columns:[ "request"; "server actions"; "replica entries" ]
    ~rows:(List.rev !rows) ()

(* --- Figure 4 --------------------------------------------------------- *)

let hit_ratio stats = Replication.Stats.hit_ratio stats

let figure4 ?(fractions = [ 0.01; 0.02; 0.05; 0.10; 0.20; 0.35; 0.50 ])
    ?(length = 16_000) (scenario : Scenario.t) =
  let persons = Dirgen.Enterprise.person_count scenario.Scenario.enterprise in
  let items =
    Dirgen.Workload.generate scenario.Scenario.enterprise (serial_only length 101)
  in
  let train, eval = split_halves items in
  let country_roots =
    Array.init
      (Dirgen.Enterprise.config scenario.Scenario.enterprise).Dirgen.Enterprise.countries
      (Dirgen.Enterprise.country_dn scenario.Scenario.enterprise)
  in
  let points =
    List.map
      (fun fraction ->
        let budget = int_of_float (fraction *. float_of_int persons) in
        (* Filter-based: static generalized prefix filters. *)
        let replica = Replication.Filter_replica.create scenario.Scenario.master in
        let filters =
          Scenario.select_static scenario ~rules:[ serial_rule ] ~train ~budget
        in
        (match Selection.Selector.install_static replica filters with
        | Ok () -> ()
        | Error e -> failwith e);
        Scenario.drive_filter scenario replica Scenario.no_updates eval;
        let f_hit = hit_ratio (Replication.Filter_replica.stats replica) in
        let f_size = Replication.Filter_replica.size_entries replica in
        List.iter (Replication.Filter_replica.remove_filter replica)
          (Replication.Filter_replica.stored_filters replica);
        (* Subtree-based: country subtrees, evaluated on scoped queries. *)
        let subtrees = Scenario.choose_subtrees scenario ~roots:country_roots ~train ~budget in
        let subtree = Replication.Subtree_replica.create scenario.Scenario.master ~subtrees in
        Scenario.drive_subtree scenario subtree Scenario.no_updates eval;
        let s_hit = hit_ratio (Replication.Subtree_replica.stats subtree) in
        let s_size = Replication.Subtree_replica.size_entries subtree in
        (fraction, f_size, f_hit, s_size, s_hit))
      fractions
  in
  let rows =
    List.map
      (fun (fraction, f_size, f_hit, s_size, s_hit) ->
        [
          Report.fmt_pct fraction;
          string_of_int f_size;
          Report.fmt_float f_hit;
          string_of_int s_size;
          Report.fmt_float s_hit;
        ])
      points
  in
  let chart =
    Plot.render ~y_max:1.0
      ~x_labels:(List.map (fun (fr, _, _, _, _) -> Report.fmt_pct fr) points)
      ~series:
        [
          ("filter-based", List.map (fun (_, _, h, _, _) -> h) points);
          ("subtree-based", List.map (fun (_, _, _, _, h) -> h) points);
        ]
      ()
  in
  Report.make ~title:"Figure 4: hit ratio vs replica size (serialNumber query)"
    ~notes:
      [
        "paper: filter-based reaches hit ratio 0.5 with <10% of person entries;";
        "subtree replicas cannot selectively replicate a country's employees";
      ]
    ~appendix:chart
    ~columns:
      [ "size budget"; "filter entries"; "filter hit"; "subtree entries"; "subtree hit" ]
    ~rows ()

(* --- Figure 5 --------------------------------------------------------- *)

let figure5 ?(fractions = [ 0.05; 0.10; 0.20; 0.35; 0.50 ])
    ?(intervals = [ 10_000; 6_000 ]) ?(length = 30_000) (scenario : Scenario.t) =
  let dept_total =
    Array.length (Dirgen.Enterprise.dept_numbers scenario.Scenario.enterprise)
  in
  let items =
    Dirgen.Workload.generate scenario.Scenario.enterprise (dept_only length 202)
  in
  let train, _ = split_halves items in
  let division_roots =
    Array.init
      (Dirgen.Enterprise.config scenario.Scenario.enterprise).Dirgen.Enterprise.divisions
      (Dirgen.Enterprise.division_dn scenario.Scenario.enterprise)
  in
  let points =
    List.map
      (fun fraction ->
        let budget = max 1 (int_of_float (fraction *. float_of_int dept_total)) in
        let dynamic interval =
          let replica = Replication.Filter_replica.create scenario.Scenario.master in
          let selector =
            Selection.Selector.create
              {
                Selection.Selector.rules = dept_rules;
                revolution_interval = interval;
                size_budget = budget;
                min_hits = 2;
                include_queries = true;
              }
              replica
          in
          (* Warm up through the first revolution, then measure the
             adapted replica. *)
          let warmup = min interval (Array.length items / 2) in
          Scenario.drive_filter scenario replica ~selector Scenario.no_updates
            (Array.sub items 0 warmup);
          Replication.Stats.reset (Replication.Filter_replica.stats replica);
          Scenario.drive_filter scenario replica ~selector Scenario.no_updates
            (Array.sub items warmup (Array.length items - warmup));
          let h = hit_ratio (Replication.Filter_replica.stats replica) in
          List.iter (Replication.Filter_replica.remove_filter replica)
            (Replication.Filter_replica.stored_filters replica);
          h
        in
        let dynamic_ratios = List.map dynamic intervals in
        let subtrees =
          Scenario.choose_subtrees scenario ~roots:division_roots ~train ~budget
        in
        let subtree = Replication.Subtree_replica.create scenario.Scenario.master ~subtrees in
        Scenario.drive_subtree scenario subtree Scenario.no_updates items;
        let s_hit = hit_ratio (Replication.Subtree_replica.stats subtree) in
        (fraction, dynamic_ratios, s_hit))
      fractions
  in
  let rows =
    List.map
      (fun (fraction, dynamic_ratios, s_hit) ->
        (Report.fmt_pct fraction :: List.map Report.fmt_float dynamic_ratios)
        @ [ Report.fmt_float s_hit ])
      points
  in
  let interval_cols = List.map (fun r -> Printf.sprintf "filter R=%d" r) intervals in
  let chart =
    Plot.render ~y_max:1.0
      ~x_labels:(List.map (fun (fr, _, _) -> Report.fmt_pct fr) points)
      ~series:
        (List.mapi
           (fun i name ->
             (name, List.map (fun (_, ratios, _) -> List.nth ratios i) points))
           interval_cols
        @ [ ("subtree", List.map (fun (_, _, s) -> s) points) ])
      ()
  in
  Report.make ~title:"Figure 5: hit ratio vs replica size (department query)"
    ~notes:
      [
        "paper: shrinking the revolution interval (10000 -> 6000 queries) raises";
        "hit ratio at equal size; subtree replicas store all or none of a division";
      ]
    ~appendix:chart
    ~columns:(("size budget" :: interval_cols) @ [ "subtree" ])
    ~rows ()

(* --- Figure 6 --------------------------------------------------------- *)

let figure6 ?(config = Dirgen.Enterprise.default_config)
    ?(fractions = [ 0.02; 0.05; 0.10; 0.15; 0.25; 0.40 ]) ?(length = 10_000) () =
  let drive =
    { Scenario.queries_between_syncs = 250; Scenario.updates_per_query = 0.30 }
  in
  let filter_point fraction =
    (* Fresh directory per point: the update stream mutates it. *)
    let scenario = Scenario.setup ~config () in
    let persons = Dirgen.Enterprise.person_count scenario.Scenario.enterprise in
    let budget = int_of_float (fraction *. float_of_int persons) in
    let items =
      Dirgen.Workload.generate scenario.Scenario.enterprise (serial_only length 303)
    in
    let train, eval = split_halves items in
    let replica = Replication.Filter_replica.create scenario.Scenario.master in
    let filters =
      Scenario.select_static scenario ~rules:[ serial_rule ] ~train ~budget
    in
    (match Selection.Selector.install_static replica filters with
    | Ok () -> ()
    | Error e -> failwith e);
    let stream =
      Dirgen.Update_stream.create scenario.Scenario.enterprise
        Dirgen.Update_stream.default_config
    in
    (* Initial fetch is not update traffic: count only the sync phase. *)
    let stats = Replication.Filter_replica.stats replica in
    stats.Replication.Stats.fetch_entries <- 0;
    Scenario.drive_filter scenario replica ~stream drive eval;
    let size = Replication.Filter_replica.size_entries replica in
    (size, hit_ratio stats, stats.Replication.Stats.sync_entries)
  in
  let subtree_point fraction =
    let scenario = Scenario.setup ~config () in
    let persons = Dirgen.Enterprise.person_count scenario.Scenario.enterprise in
    let budget = int_of_float (fraction *. float_of_int persons) in
    let country_roots =
      Array.init
        (Dirgen.Enterprise.config scenario.Scenario.enterprise).Dirgen.Enterprise.countries
        (Dirgen.Enterprise.country_dn scenario.Scenario.enterprise)
    in
    let items =
      Dirgen.Workload.generate scenario.Scenario.enterprise (serial_only length 303)
    in
    let train, eval = split_halves items in
    let subtrees = Scenario.choose_subtrees scenario ~roots:country_roots ~train ~budget in
    let subtree = Replication.Subtree_replica.create scenario.Scenario.master ~subtrees in
    let stream =
      Dirgen.Update_stream.create scenario.Scenario.enterprise
        Dirgen.Update_stream.default_config
    in
    let stats = Replication.Subtree_replica.stats subtree in
    stats.Replication.Stats.fetch_entries <- 0;
    Scenario.drive_subtree scenario subtree ~stream drive eval;
    let size = Replication.Subtree_replica.size_entries subtree in
    (size, hit_ratio stats, stats.Replication.Stats.sync_entries)
  in
  let filter_points = List.map filter_point fractions in
  let subtree_points = List.map subtree_point fractions in
  (* Pair the two models at comparable hit ratios, as the paper plots. *)
  let targets = [ 0.25; 0.40; 0.55 ] in
  let pick points target =
    match List.find_opt (fun (_, hit, _) -> hit >= target) points with
    | Some p -> p
    | None -> List.nth points (List.length points - 1)
  in
  let rows =
    List.map
      (fun target ->
        let f_size, f_hit, f_traffic = pick filter_points target in
        let s_size, s_hit, s_traffic = pick subtree_points target in
        [
          Report.fmt_float target;
          string_of_int f_size;
          Report.fmt_float f_hit;
          string_of_int f_traffic;
          string_of_int s_size;
          Report.fmt_float s_hit;
          string_of_int s_traffic;
        ])
      targets
  in
  Report.make ~title:"Figure 6: update traffic vs hit ratio (serialNumber query)"
    ~notes:
      [
        "paper: for the same hit ratio, subtree replicas store many more entries";
        "and therefore receive far more update traffic than ReSync filter replicas";
      ]
    ~columns:
      [ "target hit"; "filter entries"; "filter hit"; "filter traffic";
        "subtree entries"; "subtree hit"; "subtree traffic" ]
    ~rows ()

(* --- Figure 7 --------------------------------------------------------- *)

let figure7 ?(config = Dirgen.Enterprise.default_config)
    ?(fractions = [ 0.10; 0.20; 0.35; 0.50 ]) ?(intervals = [ 10_000; 6_000 ])
    ?(length = 30_000) () =
  let drive =
    { Scenario.queries_between_syncs = 1_000; Scenario.updates_per_query = 0.05 }
  in
  (* Department entries rarely change: the stream is person-dominated
     with the default rare department modifications. *)
  let rows =
    List.concat_map
      (fun fraction ->
        List.map
          (fun interval ->
            let scenario = Scenario.setup ~config () in
            let dept_total =
              Array.length (Dirgen.Enterprise.dept_numbers scenario.Scenario.enterprise)
            in
            let budget = max 1 (int_of_float (fraction *. float_of_int dept_total)) in
            let items =
              Dirgen.Workload.generate scenario.Scenario.enterprise (dept_only length 404)
            in
            let replica = Replication.Filter_replica.create scenario.Scenario.master in
            let selector =
              Selection.Selector.create
                {
                  Selection.Selector.rules = dept_rules;
                  revolution_interval = interval;
                  size_budget = budget;
                  min_hits = 2;
                  include_queries = true;
                }
                replica
            in
            let stream =
              Dirgen.Update_stream.create scenario.Scenario.enterprise
                Dirgen.Update_stream.default_config
            in
            let stats = Replication.Filter_replica.stats replica in
            let warmup = min interval (Array.length items / 2) in
            Scenario.drive_filter scenario replica ~selector ~stream drive
              (Array.sub items 0 warmup);
            Replication.Stats.reset stats;
            Scenario.drive_filter scenario replica ~selector ~stream drive
              (Array.sub items warmup (Array.length items - warmup));
            [
              Report.fmt_pct fraction;
              string_of_int interval;
              Report.fmt_float (hit_ratio stats);
              string_of_int stats.Replication.Stats.sync_entries;
              string_of_int stats.Replication.Stats.fetch_entries;
              string_of_int (Replication.Stats.total_update_entries stats);
            ])
          intervals)
      fractions
  in
  Report.make ~title:"Figure 7: update traffic vs hit ratio (department query)"
    ~notes:
      [
        "paper: department entries change rarely, so subtree traffic is negligible;";
        "filter traffic is dominated by revolution fetches and grows as R shrinks";
      ]
    ~columns:
      [ "size budget"; "R"; "hit ratio"; "resync entries"; "fetch entries"; "total" ]
    ~rows ()

(* --- Figures 8 and 9 -------------------------------------------------- *)

let cache_vs_generalized ~title ~notes ~workload ~rules ?(filter_counts = [ 10; 25; 50; 100; 200; 400 ])
    (scenario : Scenario.t) =
  let items = Dirgen.Workload.generate scenario.Scenario.enterprise workload in
  let train, eval = split_halves items in
  let run_user_only count =
    let replica =
      Replication.Filter_replica.create ~cache_capacity:count scenario.Scenario.master
    in
    (* Warm the cache on the training half, then measure. *)
    Scenario.drive_filter scenario replica ~cache_misses:true Scenario.no_updates train;
    Replication.Stats.reset (Replication.Filter_replica.stats replica);
    Scenario.drive_filter scenario replica ~cache_misses:true Scenario.no_updates eval;
    hit_ratio (Replication.Filter_replica.stats replica)
  in
  let run_generalized_only count =
    let replica = Replication.Filter_replica.create scenario.Scenario.master in
    (* min_hits 3: only clearly beneficial generalizations, so the
       curve saturates once the workload's semantic locality is
       exhausted — as in the paper. *)
    let filters =
      Scenario.select_static ~max_filters:count ~min_hits:3 scenario ~rules ~train
        ~budget:max_int
    in
    (match Selection.Selector.install_static replica filters with
    | Ok () -> ()
    | Error e -> failwith e);
    Scenario.drive_filter scenario replica Scenario.no_updates eval;
    let h = hit_ratio (Replication.Filter_replica.stats replica) in
    List.iter (Replication.Filter_replica.remove_filter replica)
      (Replication.Filter_replica.stored_filters replica);
    h
  in
  let run_both count =
    let replica_filters =
      Scenario.select_static ~max_filters:(count / 2) ~min_hits:3 scenario ~rules
        ~train ~budget:max_int
    in
    (* Whatever the generalized set does not use goes to the window
       cache of recent user queries. *)
    let cache = max 1 (count - List.length replica_filters) in
    let replica =
      Replication.Filter_replica.create ~cache_capacity:cache scenario.Scenario.master
    in
    let filters = replica_filters in
    (match Selection.Selector.install_static replica filters with
    | Ok () -> ()
    | Error e -> failwith e);
    Scenario.drive_filter scenario replica ~cache_misses:true Scenario.no_updates train;
    Replication.Stats.reset (Replication.Filter_replica.stats replica);
    Scenario.drive_filter scenario replica ~cache_misses:true Scenario.no_updates eval;
    let h = hit_ratio (Replication.Filter_replica.stats replica) in
    List.iter (Replication.Filter_replica.remove_filter replica)
      (Replication.Filter_replica.stored_filters replica);
    h
  in
  let points =
    List.map
      (fun count ->
        (count, run_user_only count, run_generalized_only count, run_both count))
      filter_counts
  in
  let rows =
    List.map
      (fun (count, u, g, b) ->
        [
          string_of_int count;
          Report.fmt_float u;
          Report.fmt_float g;
          Report.fmt_float b;
        ])
      points
  in
  let chart =
    Plot.render ~y_max:1.0
      ~x_labels:(List.map (fun (c, _, _, _) -> string_of_int c) points)
      ~series:
        [
          ("user queries only", List.map (fun (_, u, _, _) -> u) points);
          ("generalized only", List.map (fun (_, _, g, _) -> g) points);
          ("both", List.map (fun (_, _, _, b) -> b) points);
        ]
      ()
  in
  Report.make ~title ~notes ~appendix:chart
    ~columns:[ "# filters"; "user queries only"; "generalized only"; "both" ]
    ~rows ()

let figure8 ?filter_counts ?(length = 16_000) scenario =
  cache_vs_generalized
    ~title:"Figure 8: hit ratio vs number of stored filters (serialNumber query)"
    ~notes:
      [
        "paper: ~50 cached user queries give ~0.2 hit ratio, saturating after ~100;";
        "generalized + cached queries reach ~0.5 with ~200 stored filters";
      ]
    ~workload:(serial_only length 505) ~rules:[ serial_rule ] ?filter_counts scenario

let figure9 ?filter_counts ?(length = 16_000) scenario =
  cache_vs_generalized
    ~title:"Figure 9: hit ratio vs number of stored filters (mail query)"
    ~notes:
      [
        "paper: the mail local part is not organized, so generalized filters cannot";
        "describe the access pattern; only temporal locality (caching) helps";
      ]
    ~workload:(mail_only length 606) ~rules:[ mail_rule ] ?filter_counts scenario

(* --- Section 3.2: per-object-type consistency classes ------------------ *)

let consistency_classes ?(updates = 4_000) () =
  (* A replica holding both person filters (high update rate, needs
     freshness) and department filters (slow-changing) can give each
     class its own refresh rate; a subtree replica mixing both object
     types must apply the most stringent requirement to everything
     (section 3.2).  Rare refreshes also coalesce repeated
     modifications of the same entry into one transfer. *)
  let scenario =
    Scenario.setup
      ~config:{ Dirgen.Enterprise.default_config with Dirgen.Enterprise.employees = 6_000 }
      ()
  in
  let root = Dirgen.Enterprise.root_dn scenario.Scenario.enterprise in
  let person_filters =
    let items =
      Dirgen.Workload.generate scenario.Scenario.enterprise (serial_only 4_000 1212)
    in
    Scenario.select_static ~max_filters:10 scenario ~rules:[ serial_rule ] ~train:items
      ~budget:max_int
  in
  let division_filters =
    List.init 8 (fun d ->
        Query.make ~base:root
          (Filter.of_string_exn
             (Printf.sprintf "(&(divisionnumber=%02d)(departmentnumber=*))" d)))
  in
  let slow q = List.exists (Query.equal q) division_filters in
  let stream_config =
    (* More department churn than the default so the class difference
       is visible. *)
    { Dirgen.Update_stream.default_config with
      Dirgen.Update_stream.modify_dept_entry_w = 0.15;
      modify_phone_w = 0.40 }
  in
  let run ~per_class =
    let replica = Replication.Filter_replica.create scenario.Scenario.master in
    (match
       Selection.Selector.install_static replica (person_filters @ division_filters)
     with
    | Ok () -> ()
    | Error e -> failwith e);
    let stats = Replication.Filter_replica.stats replica in
    Replication.Stats.reset stats;
    let stream =
      Dirgen.Update_stream.create scenario.Scenario.enterprise stream_config
    in
    let polls = ref 0 in
    let sync_class pred =
      Replication.Filter_replica.sync_where replica (fun q ->
          let selected = pred q in
          if selected then incr polls;
          selected)
    in
    let rounds = 10 in
    for round = 1 to rounds do
      Dirgen.Update_stream.steps stream (updates / rounds);
      if per_class then begin
        sync_class (fun q -> not (slow q));
        if round = rounds then sync_class slow
      end
      else sync_class (fun _ -> true)
    done;
    (stats.Replication.Stats.sync_entries, !polls)
  in
  let uniform_entries, uniform_polls = run ~per_class:false in
  let class_entries, class_polls = run ~per_class:true in
  Report.make ~title:"Section 3.2: per-object-type consistency classes"
    ~notes:
      [
        "paper: a filter replica can give each object type its own consistency";
        "level; a subtree replica applies the most stringent one to everything";
      ]
    ~columns:[ "sync policy"; "entries transferred"; "poll requests" ]
    ~rows:
      [
        [ "uniform (every filter, every round)"; string_of_int uniform_entries;
          string_of_int uniform_polls ];
        [ "per class (departments 10x rarer)"; string_of_int class_entries;
          string_of_int class_polls ];
      ]
    ()

(* --- Section 5.2 ablation --------------------------------------------- *)

let resync_ablation ?(updates = 4_000) ?(filters = 20) () =
  let scenario =
    Scenario.setup
      ~config:
        { Dirgen.Enterprise.default_config with Dirgen.Enterprise.employees = 6_000 }
      ()
  in
  let backend = Dirgen.Enterprise.backend scenario.Scenario.enterprise in
  let schema = Dirgen.Enterprise.schema scenario.Scenario.enterprise in
  let items =
    Dirgen.Workload.generate scenario.Scenario.enterprise (serial_only 4_000 707)
  in
  let queries =
    Scenario.select_static ~max_filters:filters scenario ~rules:[ serial_rule ]
      ~train:items ~budget:max_int
  in
  let strategies =
    [
      ("session history", Resync.Master.Session_history);
      ("changelog", Resync.Master.Changelog);
      ("tombstone", Resync.Master.Tombstone);
    ]
  in
  let masters =
    List.map
      (fun (name, strategy) ->
        let master = Resync.Master.create ~strategy backend in
        let consumers = List.map (fun q -> Resync.Consumer.create schema q) queries in
        List.iter
          (fun c ->
            match Resync.Consumer.sync c master with
            | Ok _ -> ()
            | Error e -> failwith e)
          consumers;
        (name, master, consumers))
      strategies
  in
  let stream =
    Dirgen.Update_stream.create scenario.Scenario.enterprise
      Dirgen.Update_stream.default_config
  in
  let totals = Hashtbl.create 8 in
  let peaks = Hashtbl.create 8 in
  let record name entries actions =
    let e, a = Option.value ~default:(0, 0) (Hashtbl.find_opt totals name) in
    Hashtbl.replace totals name (e + entries, a + actions)
  in
  let rounds = 4 in
  for _ = 1 to rounds do
    Dirgen.Update_stream.steps stream (updates / rounds);
    List.iter
      (fun (name, master, consumers) ->
        let peak = Resync.Master.history_size master in
        let old = Option.value ~default:0 (Hashtbl.find_opt peaks name) in
        Hashtbl.replace peaks name (max old peak);
        List.iter
          (fun c ->
            match Resync.Consumer.sync c master with
            | Ok reply ->
                record name
                  (Resync.Protocol.entries_cost reply)
                  (Resync.Protocol.actions_count reply)
            | Error e -> failwith e)
          consumers)
      masters
  done;
  (* Convergence check: every consumer matches the master's content. *)
  List.iter
    (fun (name, _, consumers) ->
      List.iter
        (fun c ->
          let expected =
            Resync.Content.current_dns backend (Resync.Consumer.query c)
          in
          if not (Dn.Set.equal expected (Resync.Consumer.dns c)) then
            failwith (name ^ ": consumer diverged"))
        consumers)
    masters;
  let rows =
    List.map
      (fun (name, _, _) ->
        let entries, actions = Option.value ~default:(0, 0) (Hashtbl.find_opt totals name) in
        let peak = Option.value ~default:0 (Hashtbl.find_opt peaks name) in
        [ name; string_of_int entries; string_of_int actions; string_of_int peak ])
      masters
  in
  Report.make ~title:"Section 5.2: history mechanism ablation"
    ~notes:
      [
        "paper: changelogs/tombstones cannot classify deletes or modify-outs, so";
        "they transmit extra DNs; session history sends the minimal update set";
      ]
    ~columns:[ "history"; "entries sent"; "actions sent"; "history size (peak)" ]
    ~rows ()

(* --- Section 5: synchronization over a lossy network -------------------- *)

let lossy_sync ?(rates = [ 0.0; 0.05; 0.15; 0.30 ]) ?(updates = 2_000)
    ?(seed = 4242) ?(employees = 3_000) ?(filters = 8) () =
  let rows =
    List.map
      (fun rate ->
        (* Fresh directory per rate: the update stream mutates the
           master, and each rate must see the same evolution. *)
        let scenario =
          Scenario.setup
            ~config:
              { Dirgen.Enterprise.default_config with
                Dirgen.Enterprise.employees }
            ()
        in
        let backend = Dirgen.Enterprise.backend scenario.Scenario.enterprise in
        let schema = Dirgen.Enterprise.schema scenario.Scenario.enterprise in
        let master = scenario.Scenario.master in
        let items =
          Dirgen.Workload.generate scenario.Scenario.enterprise
            (serial_only 2_000 (seed + 1))
        in
        let queries =
          Scenario.select_static ~max_filters:filters scenario
            ~rules:[ serial_rule ] ~train:items ~budget:max_int
        in
        let prng = Dirgen.Prng.create (seed + int_of_float (rate *. 1000.)) in
        let faults =
          Network.Faults.create ~drop_request:(rate /. 2.)
            ~drop_reply:(rate /. 2.)
            ~roll:(fun () -> Dirgen.Prng.float prng 1.0)
            ()
        in
        let net = Network.create () in
        let transport = Resync.Transport.create ~faults net in
        Resync.Transport.add_master transport ~name:"master" master;
        let polls = ref 0
        and retries = ref 0
        and resyncs = ref 0
        and failed = ref 0 in
        let consumers = List.map (Resync.Consumer.create schema) queries in
        let poll c =
          incr polls;
          match Resync.Consumer.sync_over c transport ~host:"master" with
          | Ok o ->
              retries := !retries + (o.Resync.Consumer.attempts - 1);
              if o.Resync.Consumer.resynced then incr resyncs
          | Error (Resync.Consumer.Exhausted _) ->
              (* Stale until a later round gets through. *)
              incr failed
          | Error (Resync.Consumer.Rejected msg) -> failwith msg
        in
        List.iter poll consumers;
        let stream =
          Dirgen.Update_stream.create scenario.Scenario.enterprise
            Dirgen.Update_stream.default_config
        in
        let rounds = 5 in
        for round = 1 to rounds do
          Dirgen.Update_stream.steps stream (updates / rounds);
          (* Halfway through, the master drops every session (admin
             expiry): consumers must resume via degraded resync. *)
          if round = 3 then Resync.Master.expire_sessions master ~idle_limit:0;
          List.iter poll consumers
        done;
        (* Quiesce over a clean path so convergence is checkable even
           at high loss; the lossy rounds above did the damage. *)
        let clean = Resync.Transport.create net in
        Resync.Transport.add_master clean ~name:"master" master;
        List.iter
          (fun c ->
            match Resync.Consumer.sync_over c clean ~host:"master" with
            | Ok _ -> ()
            | Error e -> failwith (Resync.Consumer.sync_error_to_string e))
          consumers;
        let converged =
          List.for_all
            (fun c ->
              Dn.Set.equal
                (Resync.Content.current_dns backend (Resync.Consumer.query c))
                (Resync.Consumer.dns c))
            consumers
        in
        [
          Report.fmt_float rate;
          string_of_int !polls;
          string_of_int !retries;
          string_of_int !resyncs;
          string_of_int !failed;
          string_of_int (Network.stats net).Network.sync_bytes;
          (if converged then "yes" else "NO");
        ])
      rates
  in
  Report.make ~title:"Section 5: ReSync over a lossy network"
    ~notes:
      [
        "drops are split evenly between requests and replies; a lost reply";
        "costs a degraded resync on the retry (the master already advanced);";
        "retry budget 4 with exponential backoff, failures retried next round";
      ]
    ~columns:
      [
        "drop rate"; "polls"; "retries"; "resyncs"; "failed polls";
        "sync bytes"; "converged";
      ]
    ~rows ()

(* --- Section 7.4 ------------------------------------------------------- *)

let processing_overhead ?(filter_counts = [ 50; 100; 200; 400; 800 ])
    ?(length = 4_000) (scenario : Scenario.t) =
  let items =
    Dirgen.Workload.generate scenario.Scenario.enterprise (serial_only length 808)
  in
  let train, eval = split_halves items in
  let rows =
    List.map
      (fun count ->
        let replica = Replication.Filter_replica.create scenario.Scenario.master in
        let filters =
          Scenario.select_static ~max_filters:count ~min_hits:1 scenario
            ~rules:[ serial_rule ] ~train ~budget:max_int
        in
        (match Selection.Selector.install_static replica filters with
        | Ok () -> ()
        | Error e -> failwith e);
        let stored = Replication.Filter_replica.filter_count replica in
        Scenario.drive_filter scenario replica Scenario.no_updates eval;
        let comparisons = Replication.Filter_replica.comparisons replica in
        let per_query =
          float_of_int comparisons /. float_of_int (Array.length eval)
        in
        let hit = hit_ratio (Replication.Filter_replica.stats replica) in
        List.iter (Replication.Filter_replica.remove_filter replica)
          (Replication.Filter_replica.stored_filters replica);
        [
          string_of_int count;
          string_of_int stored;
          Report.fmt_float per_query;
          Report.fmt_float hit;
        ])
      filter_counts
  in
  Report.make ~title:"Section 7.4: query processing overhead"
    ~notes:
      [
        "paper: overhead is proportional to the number of stored filters; with";
        "template containment each check is a simple assertion-value comparison";
      ]
    ~columns:[ "requested filters"; "stored"; "comparisons/query"; "hit ratio" ]
    ~rows ()

(* --- Section 7.2(c): location queries ---------------------------------- *)

let location_replication ?(length = 4_000) (scenario : Scenario.t) =
  (* The location tree is small and hot: replicating it entirely as
     the single presence filter on [location] guarantees a hit ratio
     of 1 for this query type at a tiny fraction of the replica size. *)
  let workload =
    {
      Dirgen.Workload.default_config with
      Dirgen.Workload.length;
      seed = 909;
      serial_pct = 0.0;
      mail_pct = 0.0;
      dept_pct = 0.0;
      location_pct = 1.0;
    }
  in
  let items = Dirgen.Workload.generate scenario.Scenario.enterprise workload in
  let replica = Replication.Filter_replica.create scenario.Scenario.master in
  let root = Dirgen.Enterprise.root_dn scenario.Scenario.enterprise in
  let stored = Query.make ~base:root (Filter.of_string_exn "(location=*)") in
  (match Replication.Filter_replica.install_filter replica stored with
  | Ok () -> ()
  | Error e -> failwith e);
  Scenario.drive_filter scenario replica Scenario.no_updates items;
  let stats = Replication.Filter_replica.stats replica in
  let size = Replication.Filter_replica.size_entries replica in
  let persons = Dirgen.Enterprise.person_count scenario.Scenario.enterprise in
  let rows =
    [
      [
        "(location=*) replicated";
        string_of_int size;
        Report.fmt_pct (float_of_int size /. float_of_int persons);
        Report.fmt_float (hit_ratio stats);
      ];
    ]
  in
  List.iter (Replication.Filter_replica.remove_filter replica)
    (Replication.Filter_replica.stored_filters replica);
  Report.make ~title:"Section 7.2(c): replicating the location tree"
    ~notes:
      [
        "paper: location entries are few but hot; replicating the whole tree";
        "gives hit ratio 1 for this query type at a very small replica cost";
      ]
    ~columns:[ "configuration"; "entries"; "share of persons"; "hit ratio" ]
    ~rows ()

(* --- Section 3.1.1: minimally directory-enabled applications ----------- *)

let root_base_ablation ?(length = 6_000) (scenario : Scenario.t) =
  let items =
    Dirgen.Workload.generate scenario.Scenario.enterprise (serial_only length 1010)
  in
  let train, eval = split_halves items in
  let persons = Dirgen.Enterprise.person_count scenario.Scenario.enterprise in
  let budget = persons * 3 / 10 in
  let country_roots =
    Array.init
      (Dirgen.Enterprise.config scenario.Scenario.enterprise).Dirgen.Enterprise.countries
      (Dirgen.Enterprise.country_dn scenario.Scenario.enterprise)
  in
  let subtrees = Scenario.choose_subtrees scenario ~roots:country_roots ~train ~budget in
  let subtree = Replication.Subtree_replica.create scenario.Scenario.master ~subtrees in
  (* Same replica, same queries - only the base differs. *)
  Array.iter
    (fun (item : Dirgen.Workload.item) ->
      ignore (Replication.Subtree_replica.answer subtree item.Dirgen.Workload.scoped))
    eval;
  let scoped_hit = hit_ratio (Replication.Subtree_replica.stats subtree) in
  Replication.Stats.reset (Replication.Subtree_replica.stats subtree);
  Array.iter
    (fun (item : Dirgen.Workload.item) ->
      ignore (Replication.Subtree_replica.answer subtree item.Dirgen.Workload.query))
    eval;
  let root_hit = hit_ratio (Replication.Subtree_replica.stats subtree) in
  (* The filter replica answers root-based queries natively. *)
  let replica = Replication.Filter_replica.create scenario.Scenario.master in
  let filters = Scenario.select_static scenario ~rules:[ serial_rule ] ~train ~budget in
  (match Selection.Selector.install_static replica filters with
  | Ok () -> ()
  | Error e -> failwith e);
  Scenario.drive_filter scenario replica Scenario.no_updates eval;
  let filter_hit = hit_ratio (Replication.Filter_replica.stats replica) in
  List.iter (Replication.Filter_replica.remove_filter replica)
    (Replication.Filter_replica.stored_filters replica);
  Report.make ~title:"Section 3.1.1: root-based queries vs subtree replicas"
    ~notes:
      [
        "paper: minimally directory-enabled applications search from the DIT";
        "root; subtree replicas cannot possibly answer those, filter replicas can";
      ]
    ~columns:[ "replica"; "query base"; "hit ratio" ]
    ~rows:
      [
        [ "subtree (30% budget)"; "scoped to country"; Report.fmt_float scoped_hit ];
        [ "subtree (30% budget)"; "DIT root"; Report.fmt_float root_hit ];
        [ "filter (30% budget)"; "DIT root"; Report.fmt_float filter_hit ];
      ]
    ()

(* --- Section 6.2: evolutions vs periodic revolutions -------------------- *)

let evolution_ablation ?(length = 12_000) ?(interval = 2_000) () =
  let scenario = Scenario.setup () in
  let dept_total =
    Array.length (Dirgen.Enterprise.dept_numbers scenario.Scenario.enterprise)
  in
  let budget = max 1 (dept_total / 5) in
  let items =
    Dirgen.Workload.generate scenario.Scenario.enterprise (dept_only length 1111)
  in
  (* Periodic revolutions (the paper's choice for replication). *)
  let rev_replica = Replication.Filter_replica.create scenario.Scenario.master in
  let selector =
    Selection.Selector.create
      {
        Selection.Selector.rules = dept_rules;
        revolution_interval = interval;
        size_budget = budget;
        min_hits = 2;
        include_queries = true;
      }
      rev_replica
  in
  Scenario.drive_filter scenario rev_replica ~selector Scenario.no_updates items;
  let rev_stats = Replication.Filter_replica.stats rev_replica in
  let rev_updates = Selection.Selector.revolutions selector in
  (* Immediate evolutions (Kapitskaia et al. [12]). *)
  let evo_replica = Replication.Filter_replica.create scenario.Scenario.master in
  let evo =
    Selection.Evolution_baseline.create
      {
        Selection.Evolution_baseline.rules = dept_rules;
        size_budget = budget;
        ageing = 0.999;
        swap_margin = 0.2;
        include_queries = true;
      }
      evo_replica
  in
  Array.iter
    (fun (item : Dirgen.Workload.item) ->
      Selection.Evolution_baseline.observe evo item.Dirgen.Workload.query;
      ignore (Replication.Filter_replica.answer evo_replica item.Dirgen.Workload.query))
    items;
  let evo_stats = Replication.Filter_replica.stats evo_replica in
  Report.make ~title:"Section 6.2: periodic revolutions vs immediate evolutions"
    ~notes:
      [
        "paper: evolutions require frequent updates to the stored filter list and";
        "are thus not suitable for replication; periodic revolutions approximate";
        "them at a fraction of the reconfiguration traffic";
      ]
    ~columns:[ "algorithm"; "hit ratio"; "fetch entries"; "list updates" ]
    ~rows:
      [
        [
          Printf.sprintf "revolutions (R=%d)" interval;
          Report.fmt_float (hit_ratio rev_stats);
          string_of_int rev_stats.Replication.Stats.fetch_entries;
          string_of_int rev_updates;
        ];
        [
          "evolutions (EDBT 2000)";
          Report.fmt_float (hit_ratio evo_stats);
          string_of_int evo_stats.Replication.Stats.fetch_entries;
          string_of_int (Selection.Evolution_baseline.swaps evo);
        ];
      ]
    ()

(* --- Cascading topology: tree fan-out ---------------------------------- *)

let tree_fanout ?config () =
  let points = Ldap_topology.Sweep.tree_fanout ?config () in
  let rows =
    List.map
      (fun (p : Ldap_topology.Sweep.point) ->
        [
          p.Ldap_topology.Sweep.shape;
          string_of_int p.Ldap_topology.Sweep.consumers;
          string_of_int p.Ldap_topology.Sweep.root_sessions;
          string_of_int p.Ldap_topology.Sweep.build_root_bytes;
          string_of_int p.Ldap_topology.Sweep.update_root_bytes;
          string_of_int p.Ldap_topology.Sweep.update_total_bytes;
          string_of_int p.Ldap_topology.Sweep.convergence_rounds;
        ])
      points
  in
  Report.make ~title:"Cascading topology: flat star vs 2-tier tree"
    ~notes:
      [
        "root sessions and root-link bytes grow linearly with consumers in the";
        "star but stay flat in the tree (only interior nodes talk to the root);";
        "past the crossover (consumers > arity x filters) the tree's root link";
        "carries strictly fewer Ber bytes; the tree pays one extra convergence";
        "round per tier";
      ]
    ~columns:
      [
        "shape";
        "consumers";
        "root sessions";
        "build root B";
        "update root B";
        "update total B";
        "rounds";
      ]
    ~rows ()

(* --- Discrete-event latency/staleness ----------------------------------- *)

let latency_staleness ?config () =
  let points = Ldap_topology.Sweep.latency_staleness ?config () in
  let rows =
    List.map
      (fun (p : Ldap_topology.Sweep.lat_point) ->
        [
          p.Ldap_topology.Sweep.lp_shape;
          p.Ldap_topology.Sweep.lp_faults;
          string_of_int p.Ldap_topology.Sweep.lp_polls;
          string_of_int p.Ldap_topology.Sweep.lp_resp_p50;
          string_of_int p.Ldap_topology.Sweep.lp_resp_p90;
          string_of_int p.Ldap_topology.Sweep.lp_resp_max;
          string_of_int p.Ldap_topology.Sweep.lp_stale_p50;
          string_of_int p.Ldap_topology.Sweep.lp_stale_p90;
          string_of_int p.Ldap_topology.Sweep.lp_stale_max;
          string_of_int p.Ldap_topology.Sweep.lp_stale_censored;
        ])
      points
  in
  Report.make
    ~title:"Latency/staleness under the discrete-event engine (virtual ticks)"
    ~notes:
      [
        "every participant polls on its own staggered clock over links with";
        "uniform latency; response time is per completed leaf poll, staleness";
        "is commit-to-leaf-acknowledgement time per (update, leaf) pair.";
        "tree staleness exceeds star by roughly one extra poll period (the";
        "interior tier must pull before a leaf can); loss inflates response";
        "time tails because retry backoff now burns virtual time";
      ]
    ~columns:
      [
        "shape"; "faults"; "polls"; "resp p50"; "resp p90"; "resp max";
        "stale p50"; "stale p90"; "stale max"; "censored";
      ]
    ~rows ()

(* --- Crash/restart recovery --------------------------------------------- *)

let crash_restart ?config () =
  let points = Ldap_topology.Sweep.crash_restart ?config () in
  let rows =
    List.map
      (fun (p : Ldap_topology.Sweep.cr_point) ->
        [
          p.Ldap_topology.Sweep.cp_mode;
          string_of_int p.Ldap_topology.Sweep.cp_affected;
          string_of_int p.Ldap_topology.Sweep.cp_resync_bytes;
          string_of_int p.Ldap_topology.Sweep.cp_replayed;
          string_of_int p.Ldap_topology.Sweep.cp_truncated;
          string_of_int p.Ldap_topology.Sweep.cp_recover_ticks_mean;
          string_of_int p.Ldap_topology.Sweep.cp_recover_ticks_max;
          string_of_int p.Ldap_topology.Sweep.cp_converged;
        ])
      points
  in
  Report.make ~title:"Crash/restart recovery: durable resume vs cold re-fetch"
    ~notes:
      [
        "a fraction of star leaves crash, updates land while they are down,";
        "then they restart: durable modes recover content + cookie from the";
        "WAL/snapshot store and resume ReSync incrementally (torn mode first";
        "truncates the crash-torn journal tail); cold re-subscribes with full";
        "fetches and reparent is PR 3's no-death cookie-translation baseline.";
        "resync bytes = upstream Ber bytes affected leaves paid after recovery";
      ]
    ~columns:
      [
        "mode"; "affected"; "resync bytes"; "replayed"; "truncated";
        "recover mean"; "recover max"; "converged";
      ]
    ~rows ()

(* --- Everything -------------------------------------------------------- *)

let all ?(quick = false) () =
  let config =
    if quick then
      { Dirgen.Enterprise.default_config with Dirgen.Enterprise.employees = 4_000 }
    else Dirgen.Enterprise.default_config
  in
  let scenario = Scenario.setup ~config () in
  let scale = if quick then 0.2 else 1.0 in
  let length n = int_of_float (scale *. float_of_int n) in
  Report.print (table1 ~scale scenario);
  Report.print (figure2 ());
  Report.print (figure3 ());
  Report.print (figure4 ~length:(length 16_000) scenario);
  let intervals = List.map (fun r -> max 1 (int_of_float (scale *. float_of_int r))) [ 10_000; 6_000 ] in
  Report.print (figure5 ~length:(length 30_000) ~intervals scenario);
  Report.print (figure6 ~config ~length:(length 10_000) ());
  Report.print (figure7 ~config ~length:(length 30_000) ~intervals ());
  Report.print (figure8 ~length:(length 16_000) scenario);
  Report.print (figure9 ~length:(length 16_000) scenario);
  Report.print (location_replication ~length:(length 4_000) scenario);
  Report.print (consistency_classes ());
  Report.print (root_base_ablation ~length:(length 6_000) scenario);
  Report.print (evolution_ablation ~length:(length 12_000) ~interval:(max 1 (int_of_float (scale *. 2000.))) ());
  Report.print (resync_ablation ());
  Report.print (lossy_sync ~updates:(max 100 (length 2_000)) ());
  Report.print (processing_overhead scenario);
  let sweep_config =
    if quick then Ldap_topology.Sweep.smoke_config
    else Ldap_topology.Sweep.default_config
  in
  Report.print (tree_fanout ~config:sweep_config ());
  let lat_config =
    if quick then Ldap_topology.Sweep.lat_smoke_config
    else Ldap_topology.Sweep.lat_default_config
  in
  Report.print (latency_staleness ~config:lat_config ());
  let cr_config =
    if quick then Ldap_topology.Sweep.cr_smoke_config
    else Ldap_topology.Sweep.cr_default_config
  in
  Report.print (crash_restart ~config:cr_config ())
