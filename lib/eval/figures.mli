(** Reproductions of every table and figure in the paper's evaluation
    (section 7), plus the two protocol illustrations (Figures 2 and 3)
    and the section 5.2 history-mechanism ablation.

    Each function runs a complete, deterministic experiment and
    returns a {!Report.table} whose notes state the shape the paper
    reports.  Absolute numbers differ — the substrate is a synthetic
    directory, not IBM's — but who wins, by what rough factor and
    where the curves saturate should match. *)

val table1 : ?scale:float -> Scenario.t -> Report.table
(** Workload distribution: the observed query-type mix of the default
    generator vs the paper's 58/24/16/2. *)

val figure2 : unit -> Report.table
(** Distributed operation processing: round trips and PDUs for the
    3-server referral scenario of section 2.3. *)

val figure3 : unit -> Report.table
(** The example ReSync session of Figure 3: message sequence across
    two polls and a persistent phase, with entries E1..E5. *)

val figure4 : ?fractions:float list -> ?length:int -> Scenario.t -> Report.table
(** Hit ratio vs replica size (fraction of person entries),
    serialNumber query: filter-based vs subtree-based. *)

val figure5 :
  ?fractions:float list -> ?intervals:int list -> ?length:int -> Scenario.t ->
  Report.table
(** Hit ratio vs replica size, department query, dynamic filter
    selection with revolution intervals R (paper: 10000 vs 6000)
    vs a subtree (division) replica. *)

val figure6 :
  ?config:Ldap_dirgen.Enterprise.config -> ?fractions:float list -> ?length:int ->
  unit -> Report.table
(** Update traffic (entries) vs hit ratio, serialNumber query,
    filter (ReSync) vs subtree replication.  Builds a fresh directory
    per sweep point because the update stream mutates the master. *)

val figure7 :
  ?config:Ldap_dirgen.Enterprise.config -> ?fractions:float list ->
  ?intervals:int list -> ?length:int -> unit -> Report.table
(** Update traffic vs hit ratio, department query, revolution interval
    R sweep: fetch traffic from revolutions dominates; subtree traffic
    is negligible because department entries rarely change. *)

val figure8 : ?filter_counts:int list -> ?length:int -> Scenario.t -> Report.table
(** Hit ratio vs number of stored filters, serialNumber query: cached
    user queries only / generalized filters only / both. *)

val figure9 : ?filter_counts:int list -> ?length:int -> Scenario.t -> Report.table
(** Same sweep for the mail query: the unorganized local part defeats
    generalization; only temporal locality (caching) helps. *)

val location_replication : ?length:int -> Scenario.t -> Report.table
(** Section 7.2(c): replicating the whole (small, hot) location tree as
    one filter gives this query type a hit ratio of 1 at a tiny cost. *)

val root_base_ablation : ?length:int -> Scenario.t -> Report.table
(** Section 3.1.1: subtree replicas cannot answer queries based at the
    DIT root — the form minimally directory-enabled applications send —
    while filter replicas can. *)

val evolution_ablation : ?length:int -> ?interval:int -> unit -> Report.table
(** Section 6.2: the immediate-evolution baseline (Kapitskaia et al.)
    reconfigures the stored list far more often than periodic
    benefit/size revolutions, for similar hit ratio. *)

val consistency_classes : ?updates:int -> unit -> Report.table
(** Section 3.2: a filter replica can refresh each object type at its
    own rate (locations rarely, persons often); a subtree replica
    mixing them cannot. *)

val resync_ablation : ?updates:int -> ?filters:int -> unit -> Report.table
(** Section 5.2: synchronization traffic and history size of session
    history vs changelog vs tombstone under the same update stream. *)

val lossy_sync :
  ?rates:float list ->
  ?updates:int ->
  ?seed:int ->
  ?employees:int ->
  ?filters:int ->
  unit ->
  Report.table
(** Section 5 under injected faults: consumers poll through a
    transport that drops requests and replies at each rate (split
    evenly) and suffers a forced session expiry mid-run.  Reports
    retries, degraded resyncs and abandoned polls, and checks every
    consumer converges to the master's content after a final clean
    poll. *)

val processing_overhead : ?filter_counts:int list -> ?length:int -> Scenario.t -> Report.table
(** Section 7.4: containment comparisons per query as the number of
    stored filters grows (the time side is measured by the Bechamel
    benchmarks). *)

val tree_fanout : ?config:Ldap_topology.Sweep.config -> unit -> Report.table
(** The cascading-topology experiment (section 5 extension): flat star
    vs 2-tier k-ary tree of intermediate nodes at growing consumer
    counts — root sessions, root-link Ber bytes and convergence
    rounds.  See {!Ldap_topology.Sweep}. *)

val latency_staleness :
  ?config:Ldap_topology.Sweep.lat_config -> unit -> Report.table
(** The discrete-event latency/staleness sweep: star vs tree, clean vs
    lossy links, with per-poll response-time and per-update staleness
    percentiles in virtual ticks.  See
    {!Ldap_topology.Sweep.latency_staleness}. *)

val crash_restart :
  ?config:Ldap_topology.Sweep.cr_config -> unit -> Report.table
(** The crash/restart recovery sweep: durable-cookie resume (clean and
    torn-tail WAL) vs cold re-fetch vs reparent, comparing resync
    bytes and virtual recovery time.  See
    {!Ldap_topology.Sweep.crash_restart}. *)

val all : ?quick:bool -> unit -> unit
(** Runs every reproduction and prints the tables.  [quick] shrinks
    directory and workload sizes (used by the test suite). *)
