(** DER payload codecs for the ReSync values the durable store
    journals — actions, replies and cookies — shared by the
    {!Consumer} and {!Master} persistence layers so both sides of the
    protocol write one wire format.

    Readers raise {!Ldap.Ber_codec.Decode_error} on malformed input;
    recovery paths wrap them via {!Ldap_store.Codec.decode}. *)

open Ldap

val action : Action.t -> string
(** One update action, with the full entry image for Add/Modify. *)

val read_action : Ber_codec.Der.cursor -> Action.t
(** Inverse of {!action}. *)

val actions : Action.t list -> string
(** A SEQUENCE of actions. *)

val read_actions : Ber_codec.Der.cursor -> Action.t list
(** Inverse of {!actions}. *)

val reply : Protocol.reply -> string
(** A whole reply — kind, actions and cookie — as {e one} value, the
    consumer's atomicity boundary: cookie and content replay from the
    same record or not at all. *)

val read_reply : Ber_codec.Der.cursor -> Protocol.reply
(** Inverse of {!reply}. *)

val cookie_opt : string option -> string
(** An optional cookie. *)

(** Writer twins of the encoders above (see {!Ber_codec.Der.W}):
    byte-identical images emitted backwards into a reused buffer for
    the hot journal paths. *)
module W : sig
  val action : Ldap_compile.Wbuf.t -> Action.t -> unit
  (** Writer twin of {!action}. *)

  val actions : Ldap_compile.Wbuf.t -> Action.t list -> unit
  (** Writer twin of {!actions}. *)

  val reply : Ldap_compile.Wbuf.t -> Protocol.reply -> unit
  (** Writer twin of {!reply}. *)
end

val read_cookie_opt : Ber_codec.Der.cursor -> string option
(** Inverse of {!cookie_opt}. *)
