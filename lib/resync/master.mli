(** Master (supplier) side of the ReSync protocol (section 5.2).

    The master serves filter-synchronization sessions against a
    {!Ldap.Backend}.  A session is identified by a cookie and remembers
    the CSN up to which the replica is synchronized.  Three history
    mechanisms are implemented; the paper's contribution is
    [Session_history], with [Changelog] and [Tombstone] as the
    baselines whose shortcomings section 5.2 discusses:

    - [Session_history]: each committed update is classified against
      every live session's filter using the pre/post images, and the
      resulting actions are buffered per session.  Replay is minimal
      (coalesced per DN) and deletes are exact.
    - [Changelog]: the server keeps only (operation, DN, changed
      attributes) records.  A deleted entry's original attributes are
      unknown, so {e every} deletion is propagated; an entry modified
      out of the content can only be detected conservatively.
    - [Tombstone]: deletions leave a DN-only tombstone; modification
      times are known but pre-images are not, with the same
      conservative consequences.

    When a cookie is unknown (or history has been trimmed), the master
    falls back to the degraded mode of eq. (3): it sends full entries
    for content members changed since the cookie's CSN and [retain]
    actions for unchanged members; the replica prunes the rest.  This
    avoids a full reload.

    The same fallback repairs disrupted sessions: a cookie whose CSN
    differs from the CSN the session advanced to means a reply (or a
    run of persist pushes) was lost in transit after the master
    recorded it as delivered — the per-session history for that
    interval is gone, so the master discards the session and answers
    degraded from the CSN the consumer actually acknowledges, instead
    of silently resuming with a gap.

    Tombstones are garbage collected: once every live session has
    acknowledged a CSN at or past a tombstone's, no future replay can
    need it and it is pruned (with no sessions at all, the whole list
    is). *)

open Ldap

type strategy = Session_history | Changelog | Tombstone

type dispatch =
  | Routed
      (** Committed updates are routed through a
          {!Ldap_containment.Predicate_index} built over the live
          sessions' filters: only the sessions whose filter anchors are
          hit by the update's before/after images are classified, plus
          a fallback set for unanchorable filters.  Per-update cost is
          proportional to the affected sessions, not the session count.
          Observably equivalent to [Naive]. *)
  | Naive
      (** Every committed update is classified against every live
          session — the baseline linear fan-out, kept for comparison
          and for the equivalence tests. *)

type t

val create :
  ?history_limit:int ->
  ?persist_queue_limit:int ->
  ?strategy:strategy ->
  ?dispatch:dispatch ->
  Backend.t ->
  t
(** Subscribes to the backend's committed updates.  Default strategy is
    [Session_history]; default dispatch is [Routed].  [history_limit]
    is the per-session history high-water mark: a [Session_history]
    session whose pending buffer exceeds it has the buffer dropped and
    the session retired, so its next poll escalates to a degraded
    snapshot-diff resynchronization (eq. (3)) instead of the master's
    memory growing with the slowest consumer (default: unbounded).
    [persist_queue_limit] is the analogous bound on one persist
    session's outbound push queue (see {!push_queue_stats}; default:
    unbounded). *)

val history_limit : t -> int option
val set_history_limit : t -> int option -> unit
(** Adjusts the per-session history high-water mark at runtime. *)

val persist_queue_limit : t -> int option
val set_persist_queue_limit : t -> int option -> unit
(** Adjusts the per-session persist outbound queue bound at runtime. *)

val backend : t -> Backend.t
val strategy : t -> strategy
(** The history strategy this master was created with. *)

val handle :
  t ->
  ?push:Protocol.push_channel ->
  Protocol.request ->
  Query.t ->
  (Protocol.reply, string) result
(** Processes a resync search request.  [push] must be supplied for
    [Persist] mode and receives subsequent change notifications; wrap
    a bare function with {!Protocol.push_of_fn} when flow control is
    not modelled.  [Poll] and [Persist] replies carry a cookie — a
    resume handle for polls, a reconnection handle for persistent
    sessions whose connection breaks.  [Sync_end] with a valid cookie
    terminates the session and returns an empty reply.

    A send answered [Push_stalled] parks the action on the session's
    outbound queue; the queue drains ahead of new notifications on
    later updates and on {!flush_pushes}.  A queue growing past the
    [persist_queue_limit] — or a send answered [Push_gone] — closes
    the channel and retires the session, so the consumer's
    reconnection escalates to a degraded resync (eq. (3)) and a
    stalled leaf costs O(bound) master memory instead of O(drift). *)

val flush_pushes : t -> unit
(** Re-attempts every stalled persist session's queued backlog — what
    a driver calls after a paused consumer resumes draining.  Queues
    also drain opportunistically whenever an update dispatch touches
    their session. *)

val push_queue_stats : t -> int * int
(** Outbound persist-queue residency as (total queued actions, largest
    single session's queue) — the bounded-backpressure counterpart of
    {!pending_stats}. *)

val push_queue_peak : t -> int
(** Largest single-session outbound queue ever observed — with a
    [persist_queue_limit] set this never exceeds [limit + updates per
    dispatch], the O(bound) memory claim made observable. *)

val push_overflows : t -> int
(** Persist sessions retired because their outbound queue grew past
    the [persist_queue_limit]. *)

val push_resets : t -> int
(** Persist sessions retired because a send found the connection dead
    ([Push_gone]). *)

val history_overflows : t -> int
(** Pending-history buffers dropped at the [history_limit] high-water
    mark (each retires its session into degraded escalation) — the
    observable the write-heavy long-haul sweep gates on. *)

val abandon : t -> cookie:string -> unit
(** Client abandoned a persistent search: equivalent to sync_end. *)

val antientropy_serve :
  t ->
  Ldap_antientropy.Exchange.request ->
  Query.t ->
  (Ldap_antientropy.Exchange.reply, string) result
(** Answers one Merkle anti-entropy walk step over the master's current
    content as seen through [query] — the containment predicate gives
    "what the replica should hold", so the tree is computed lazily under
    the replica's filter.  A [Fetch] step mints a fresh session pinned
    at the current CSN and ships its cookie with the entries, letting
    the reconciled consumer resume incremental polling. *)

val expire_sessions : t -> idle_limit:int -> unit
(** Drops sessions idle for at least [idle_limit] requests handled by
    this master (the paper's admin time limit, measured in protocol
    activity rather than wall clock to keep the simulation
    deterministic).  [~idle_limit:0] drops every session. *)

val schedule_expiry :
  t -> Ldap_sim.Engine.t -> every:int -> until:int -> idle_limit:int -> unit
(** Registers session expiry as a periodic clock event: every [every]
    virtual ticks up to [until], {!expire_sessions} runs with the given
    [idle_limit] — the admin time limit becomes an actual timer instead
    of a call a driver must remember to make. *)

val session_count : t -> int

val persistent_count : t -> int
(** Sessions currently holding a persistent-search connection — the
    section 5.2 scalability cost of persist mode (one TCP connection
    per replicated filter) that polling avoids. *)

val history_size : t -> int
(** Current size of the history the strategy maintains: buffered
    actions (session history), retained log records (changelog) or
    tombstones.  The section 5.2 comparison metric. *)

val pending_stats : t -> int * int
(** Per-session history residency as (total buffered actions, largest
    single session's buffer) — what the scale report shows operators
    watching for a slow consumer pinning master memory. *)

val parse_cookie : string -> (int * Csn.t) option
(** Exposed for tests: session id and CSN embedded in a cookie. *)

(** {1 Durability}

    With a store attached, every session-table transition — creation,
    removal, per-session pending history, acknowledged-CSN advances
    and tombstones — is journaled, and {!checkpoint} snapshots the
    whole table.  A restarted master recovered from its store still
    recognizes the cookies it handed out, so surviving consumers
    resume incrementally instead of being forced through degraded
    resynchronization. *)

val attach_store : t -> Ldap_store.Store.t -> unit
(** Starts journaling session-table transitions to the store. *)

val store : t -> Ldap_store.Store.t option
(** The attached store, if any. *)

val checkpoint : t -> unit
(** Snapshots the session table (strategy, sessions with pending
    history, tombstones) and resets the WAL.  No-op without a store. *)

val recover :
  ?strategy:strategy ->
  ?dispatch:dispatch ->
  Backend.t ->
  Ldap_store.Store.t ->
  (t * Ldap_store.Store.recovery, string) result
(** Rebuilds a master over an (already recovered) backend from its
    durable session table: loads the snapshot, replays the WAL and
    re-attaches the store.  The snapshot's strategy wins over the
    [strategy] argument; the dispatch index is rebuilt from the
    recovered sessions' filters.  Persistent push channels are not
    recovered — they die with the process, and consumers re-establish
    them by presenting their cookies. *)
