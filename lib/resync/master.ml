open Ldap

type strategy = Session_history | Changelog | Tombstone
type dispatch = Routed | Naive

type session = {
  id : int;
  query : Query.t;
  matcher : Content.matcher;  (* query compiled once, reused per update *)
  mutable pending : Action.t list;  (* newest first; Session_history only *)
  mutable pending_len : int;  (* tracked so the high-water check is O(1) *)
  mutable synced_csn : Csn.t;
  mutable persist_push : Protocol.push_channel option;
  outq : Action.t Queue.t;
      (* persist notifications the channel reported [Push_stalled] for;
         oldest first, drained before anything new is sent *)
  mutable outq_len : int;
  mutable last_active : int;
}

type tombstone = { ts_dn : Dn.t; ts_csn : Csn.t }

type t = {
  backend : Backend.t;
  strategy : strategy;
  sessions : (int, session) Hashtbl.t;
  dispatch : Ldap_containment.Predicate_index.t option;  (* [Routed] only *)
  persist : (int, session) Hashtbl.t;
      (* sessions holding a push channel; every update must advance
         their synced CSN even when it yields no actions *)
  mutable tombstones : tombstone list;  (* newest first; Tombstone only *)
  mutable next_id : int;
  mutable clock : int;  (* protocol activity ticks *)
  mutable store : Ldap_store.Store.t option;
  mutable history_limit : int option;
      (* high-water mark on one session's pending buffer; a session
         exceeding it is escalated to snapshot-diff on its next poll *)
  mutable overflowed : int list;
      (* sessions that blew the mark during the current update's
         dispatch — removal is deferred past the session-table
         iteration and performed at the end of [on_update] *)
  stalled : (int, session) Hashtbl.t;
      (* persist sessions with a non-empty outbound queue, so drains
         and residency stats never scan the whole session table *)
  mutable persist_queue_limit : int option;
      (* bound on one persist session's outbound queue; past it the
         session is retired instead of the queue growing with drift *)
  mutable hwm_overflows : int;  (* pending buffers dropped at the HWM *)
  mutable push_overflows : int;  (* persist queues that blew the bound *)
  mutable push_resets : int;  (* persist channels found dead on send *)
  mutable push_queue_peak : int;  (* largest outbound queue ever seen *)
}

let backend t = t.backend
let strategy t = t.strategy

(* --- Durable journal --------------------------------------------------
   Session-table transitions are journaled as WAL records so a
   restarted master still recognizes the cookies it handed out:

   - [New] (id, query, synced CSN) on session creation,
   - [Removed] on sync_end/abandon/expiry/disruption,
   - [Pending] appended per-session history (Session_history),
   - [Synced] acknowledged-CSN advance, optionally clearing pending,
   - [Ts] a tombstone (Tombstone strategy).

   Replay mirrors each mutation exactly; persistent push channels are
   process state and die with the process — reconnection presents the
   cookie, which the recovered session table answers incrementally. *)

module Der = Ber_codec.Der
module DW = Der.W

(* Journal records are emitted with the backwards writer straight into
   the WAL's reused buffer — children in reverse field order, images
   byte-identical to the old [Der.seq] spellings, so logs written by
   either codec replay in {!replay_record}. *)
let journal_w t emit =
  match t.store with Some s -> Ldap_store.Store.append_w s emit | None -> ()

let new_record w (s : session) =
  let m = DW.mark w in
  DW.integer w (Csn.to_int s.synced_csn);
  DW.query w s.query;
  DW.integer w s.id;
  DW.enum w 0;
  DW.close_seq w m

let removed_record w id =
  let m = DW.mark w in
  DW.integer w id;
  DW.enum w 1;
  DW.close_seq w m

let pending_record w id actions =
  (* Oldest first on the wire; [pending] holds newest first. *)
  let m = DW.mark w in
  Store_codec.W.actions w actions;
  DW.integer w id;
  DW.enum w 2;
  DW.close_seq w m

let synced_record w id csn ~clear =
  let m = DW.mark w in
  DW.boolean w clear;
  DW.integer w (Csn.to_int csn);
  DW.integer w id;
  DW.enum w 3;
  DW.close_seq w m

let ts_record w ts =
  let m = DW.mark w in
  DW.integer w (Csn.to_int ts.ts_csn);
  DW.octets w (Dn.to_string ts.ts_dn);
  DW.enum w 4;
  DW.close_seq w m

(* The [persist] table and the dispatch index shadow [sessions]; all
   membership changes go through these helpers to keep them in sync. *)
let clear_outq t session =
  Queue.clear session.outq;
  session.outq_len <- 0;
  Hashtbl.remove t.stalled session.id

let set_persist t session push =
  session.persist_push <- push;
  match push with
  | Some _ ->
      (* A replaced channel's undelivered queue belongs to the dead
         connection; the (re)establishment reply covers that interval,
         so the queue is dropped rather than replayed out of band. *)
      clear_outq t session;
      Hashtbl.replace t.persist session.id session
  | None -> Hashtbl.remove t.persist session.id

let remove_session t id =
  if Hashtbl.mem t.sessions id then journal_w t (fun w -> removed_record w id);
  (match Hashtbl.find_opt t.sessions id with
  | Some s -> clear_outq t s
  | None -> ());
  Hashtbl.remove t.sessions id;
  Hashtbl.remove t.persist id;
  Hashtbl.remove t.stalled id;
  Option.iter
    (fun idx -> Ldap_containment.Predicate_index.remove idx id)
    t.dispatch

let cookie_of id csn = Protocol.cookie_of ~id ~csn
let parse_cookie = Protocol.parse_cookie

(* Transmitted entries honour the session query's attribute selection,
   exactly like search results do. *)
let select_action (q : Query.t) = function
  | Action.Add e -> Action.Add (Entry.select e (Query.attr_list q.Query.attrs))
  | Action.Modify e -> Action.Modify (Entry.select e (Query.attr_list q.Query.attrs))
  | (Action.Delete _ | Action.Retain _) as a -> a

(* Tombstones at or below every live session's synced CSN can never be
   replayed again ([tombstone_actions] only sends those with
   [since < ts_csn]); without pruning the list grows with every delete
   for the lifetime of the master. *)
let gc_tombstones t =
  if t.strategy = Tombstone && t.tombstones <> [] then
    let min_synced =
      Hashtbl.fold
        (fun _ s acc ->
          match acc with
          | None -> Some s.synced_csn
          | Some m -> Some (if Csn.( < ) s.synced_csn m then s.synced_csn else m))
        t.sessions None
    in
    t.tombstones <-
      (match min_synced with
      | None -> []
      | Some m -> List.filter (fun ts -> Csn.( < ) m ts.ts_csn) t.tombstones)

(* --- Bounded persist-push queues -------------------------------------
   A persist channel's send can stall (receiver not draining) or fail
   (connection reset).  Stalled actions go to the session's outbound
   queue, bounded by [persist_queue_limit]: past the bound the channel
   is closed and the session retired, so the consumer's reconnection
   escalates to a degraded resync — the stalled leaf pays the resync,
   not the master's heap (the same shape as the pending-history HWM). *)

let enqueue_push t session a =
  Queue.push a session.outq;
  session.outq_len <- session.outq_len + 1;
  if session.outq_len = 1 then Hashtbl.replace t.stalled session.id session;
  if session.outq_len > t.push_queue_peak then
    t.push_queue_peak <- session.outq_len

(* Sends the queued backlog, oldest first; answers the channel status
   left after the attempt. *)
let drain_outq t session ch =
  let status = ref `Ok in
  while !status = `Ok && session.outq_len > 0 do
    match ch.Protocol.pc_send (Queue.peek session.outq) with
    | Protocol.Push_ok ->
        ignore (Queue.pop session.outq);
        session.outq_len <- session.outq_len - 1;
        if session.outq_len = 0 then Hashtbl.remove t.stalled session.id
    | Protocol.Push_stalled -> status := `Stalled
    | Protocol.Push_gone -> status := `Gone
  done;
  !status

let defer_remove t session =
  if not (List.mem session.id t.overflowed) then
    t.overflowed <- session.id :: t.overflowed

(* Retire a persist session whose channel is unusable (reset, or queue
   past the bound).  Removal is deferred when called mid-dispatch. *)
let retire_persist t session ch ~deferred =
  ch.Protocol.pc_close ();
  clear_outq t session;
  if deferred then defer_remove t session else remove_session t session.id

(* Classify a committed update against one session, via the session's
   compiled matcher — the bytecode program built once at session
   creation rather than re-walking the filter AST per update. *)
let classify_for t (record : Update.record) session =
  let transition =
    Content.classify_m session.matcher ~before:record.before ~after:record.after
  in
  let actions =
    List.map (select_action session.query) (Content.actions_of_transition transition)
  in
  match session.persist_push with
  | Some ch -> (
      let status =
        List.fold_left
          (fun st a ->
            match st with
            | `Gone -> `Gone
            | `Stalled ->
                enqueue_push t session a;
                `Stalled
            | `Ok -> (
                match ch.Protocol.pc_send a with
                | Protocol.Push_ok -> `Ok
                | Protocol.Push_stalled ->
                    enqueue_push t session a;
                    `Stalled
                | Protocol.Push_gone -> `Gone))
          (drain_outq t session ch)
          actions
      in
      match status with
      | `Gone ->
          (* Write after reset: the consumer is gone, and everything
             sent since the reset was lost anyway.  Retiring the
             session makes its reconnection a degraded resync instead
             of the master pushing into the void. *)
          t.push_resets <- t.push_resets + 1;
          retire_persist t session ch ~deferred:true
      | `Ok | `Stalled -> (
          (* Every update — even one producing no actions for this
             filter — is pushed through up to its CSN, so the session
             must not pin retained history at an older CSN.  Queued
             actions still count as progress: either they drain later
             or the session is retired, and a reconnection resyncs
             degraded from the CSN the consumer acknowledges. *)
          session.synced_csn <- record.csn;
          journal_w t (fun w -> synced_record w session.id record.csn ~clear:false);
          match t.persist_queue_limit with
          | Some limit when session.outq_len > limit ->
              t.push_overflows <- t.push_overflows + 1;
              retire_persist t session ch ~deferred:true
          | Some _ | None -> ()))
  | None ->
      if actions <> [] && t.strategy = Session_history then begin
        session.pending <- List.rev_append actions session.pending;
        session.pending_len <- session.pending_len + List.length actions;
        journal_w t (fun w -> pending_record w session.id actions);
        match t.history_limit with
        | Some limit when session.pending_len > limit ->
            (* Past the high-water mark the buffered history is worth
               less than the memory it pins: drop it and let the next
               poll find no session, which serves a degraded
               snapshot-diff from the cookie's CSN (eq. (3)) — the
               slow consumer pays the resync, not the master's heap.
               Removal is deferred: this runs inside the session-table
               iteration. *)
            session.pending <- [];
            session.pending_len <- 0;
            t.hwm_overflows <- t.hwm_overflows + 1;
            defer_remove t session
        | Some _ | None -> ()
      end

let add_tombstone t ts =
  t.tombstones <- ts :: t.tombstones;
  journal_w t (fun w -> ts_record w ts)

let on_update t (record : Update.record) =
  (if t.strategy = Tombstone then
     match record.Update.op with
     | Update.Delete dn -> add_tombstone t { ts_dn = dn; ts_csn = record.csn }
     | Update.Modify_dn { dn; _ } ->
         (* The old DN disappears: tombstone it. *)
         add_tombstone t { ts_dn = dn; ts_csn = record.csn }
     | Update.Add _ | Update.Modify _ -> ());
  (match t.dispatch with
  | None ->
      (* Naive dispatch: classify against every live session. *)
      Hashtbl.iter (fun _ session -> classify_for t record session) t.sessions
  | Some idx ->
      (* Routed dispatch: only sessions whose filter anchors are hit by
         the update's before/after images can change content, so only
         those are classified.  The rest see [Stays_out] by the index's
         superset guarantee — no actions; persistent sessions among
         them still acknowledge the CSN, exactly as the naive path's
         empty classification would. *)
      let affected =
        Ldap_containment.Predicate_index.affected idx ~before:record.before
          ~after:record.after
      in
      Ldap_containment.Predicate_index.iter
        (fun id ->
          match Hashtbl.find_opt t.sessions id with
          | Some session -> classify_for t record session
          | None -> ())
        affected;
      Hashtbl.iter
        (fun id session ->
          if not (Ldap_containment.Predicate_index.mem affected id) then begin
            session.synced_csn <- record.csn;
            journal_w t (fun w -> synced_record w id record.csn ~clear:false)
          end)
        t.persist);
  (match t.overflowed with
  | [] -> ()
  | ids ->
      t.overflowed <- [];
      List.iter (remove_session t) ids);
  gc_tombstones t

let create ?history_limit ?persist_queue_limit ?(strategy = Session_history)
    ?(dispatch = Routed) backend =
  let t =
    {
      backend;
      strategy;
      sessions = Hashtbl.create 16;
      dispatch =
        (match dispatch with
        | Routed -> Some (Ldap_containment.Predicate_index.create (Backend.schema backend))
        | Naive -> None);
      persist = Hashtbl.create 16;
      tombstones = [];
      next_id = 1;
      clock = 0;
      store = None;
      history_limit;
      overflowed = [];
      stalled = Hashtbl.create 4;
      persist_queue_limit;
      hwm_overflows = 0;
      push_overflows = 0;
      push_resets = 0;
      push_queue_peak = 0;
    }
  in
  Backend.subscribe backend (on_update t);
  t

let history_limit t = t.history_limit
let set_history_limit t limit = t.history_limit <- limit
let persist_queue_limit t = t.persist_queue_limit
let set_persist_queue_limit t limit = t.persist_queue_limit <- limit

(* Re-attempts every stalled session's backlog — what a driver calls
   after a paused consumer resumes.  Channels found dead retire their
   session on the spot (no dispatch is running here). *)
let flush_pushes t =
  let stalled = Hashtbl.fold (fun _ s acc -> s :: acc) t.stalled [] in
  List.iter
    (fun session ->
      match session.persist_push with
      | None -> clear_outq t session
      | Some ch -> (
          match drain_outq t session ch with
          | `Ok | `Stalled -> ()
          | `Gone ->
              t.push_resets <- t.push_resets + 1;
              retire_persist t session ch ~deferred:false))
    stalled

let push_queue_stats t =
  Hashtbl.fold
    (fun _ s (total, biggest) -> (total + s.outq_len, max biggest s.outq_len))
    t.stalled (0, 0)

let push_queue_peak t = t.push_queue_peak
let push_overflows t = t.push_overflows
let push_resets t = t.push_resets
let history_overflows t = t.hwm_overflows

(* --- Per-DN coalescing of buffered actions --------------------------
   A session's pending actions are replayed as the minimal update set:
   an entry that was added then deleted within the interval produces
   nothing; one that left and returned produces a single modify. *)

type net = Net_added of Entry.t | Net_modified of Entry.t | Net_deleted of Dn.t

let coalesce actions_oldest_first =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let set dn state =
    let key = Dn.canonical dn in
    if not (Hashtbl.mem tbl key) then order := key :: !order;
    Hashtbl.replace tbl key state
  in
  let get dn = Hashtbl.find_opt tbl (Dn.canonical dn) in
  let drop dn = Hashtbl.remove tbl (Dn.canonical dn) in
  List.iter
    (fun action ->
      match action with
      | Action.Retain _ -> ()
      | Action.Add e -> (
          let dn = Entry.dn e in
          match get dn with
          | None | Some (Net_added _) -> set dn (Net_added e)
          | Some (Net_modified _) ->
              set dn (Net_modified e)
          | Some (Net_deleted _) ->
              (* In content at interval start, left, and returned:
                 the net effect is a modify. *)
              set dn (Net_modified e))
      | Action.Modify e -> (
          let dn = Entry.dn e in
          match get dn with
          | None | Some (Net_modified _) | Some (Net_deleted _) ->
              set dn (Net_modified e)
          | Some (Net_added _) -> set dn (Net_added e))
      | Action.Delete dn -> (
          match get dn with
          | None | Some (Net_modified _) -> set dn (Net_deleted dn)
          | Some (Net_added _) ->
              (* Entered and left within the interval: nothing to send. *)
              drop dn
          | Some (Net_deleted _) -> ()))
    actions_oldest_first;
  (* Deletes first so DN reuse (rename chains) replays safely. *)
  let deletes = ref [] and upserts = ref [] in
  List.iter
    (fun key ->
      match Hashtbl.find_opt tbl key with
      | None -> ()
      | Some (Net_added e) -> upserts := Action.Add e :: !upserts
      | Some (Net_modified e) -> upserts := Action.Modify e :: !upserts
      | Some (Net_deleted dn) -> deletes := Action.Delete dn :: !deletes)
    (List.rev !order);
  List.rev !deletes @ List.rev !upserts

(* --- Strategy-specific incremental replies --------------------------- *)

let filter_attrs (q : Query.t) = Filter.attributes q.Query.filter

let member schema q e = Content.member schema q e

(* Changelog replay: only (kind, DN, changed attrs, current state) may
   be used — no pre-images. *)
let changelog_actions t session =
  let schema = Backend.schema t.backend in
  let q = session.query in
  let attrs_of_interest = filter_attrs q in
  let touches_filter items =
    List.exists
      (fun (it : Update.mod_item) ->
        List.mem (String.lowercase_ascii it.Update.mod_attr) attrs_of_interest)
      items
  in
  let records = Backend.log_since t.backend session.synced_csn in
  let actions =
    List.concat_map
      (fun (r : Update.record) ->
        match r.Update.op with
        | Update.Delete dn ->
            (* Original attributes unknown: must propagate every delete. *)
            [ Action.Delete dn ]
        | Update.Add _ -> (
            match r.after with
            | Some e when member schema q e -> [ Action.Add e ]
            | Some _ | None -> [])
        | Update.Modify (dn, items) -> (
            match r.after with
            | Some e when member schema q e -> [ Action.Modify e ]
            | Some e when touches_filter items ->
                (* Not currently in content but the modification
                   touched a filter attribute: the entry might have
                   matched before, so a conservative delete is needed. *)
                [ Action.Delete (Entry.dn e) ]
            | Some _ -> []
            | None -> [ Action.Delete dn ])
        | Update.Modify_dn { dn; _ } -> (
            (* Old DN vanishes; membership of the old entry unknown. *)
            let deletes = [ Action.Delete dn ] in
            match r.after with
            | Some e when member schema q e -> deletes @ [ Action.Add e ]
            | Some _ | None -> deletes))
      records
  in
  List.map (select_action q) (coalesce actions)

(* Tombstone replay: current entries (with modifyTimestamp) plus
   DN-only tombstones. *)
let tombstone_actions t session =
  let schema = Backend.schema t.backend in
  let q = session.query in
  let since = session.synced_csn in
  let changed_since e =
    match Entry.get e "modifytimestamp" with
    | [ ts ] -> (
        match int_of_string_opt ts with
        | Some c -> Csn.( < ) since (Csn.of_int c)
        | None -> true)
    | _ -> true
  in
  let deletes =
    List.filter_map
      (fun ts -> if Csn.( < ) since ts.ts_csn then Some (Action.Delete ts.ts_dn) else None)
      t.tombstones
  in
  let upserts_and_conservative =
    Backend.fold_entries t.backend ~init:[] ~f:(fun acc e ->
        if not (changed_since e) then acc
        else if member schema q e then Action.Add e :: acc
        else
          (* Changed entry outside the content: it may have just left
             it, and without a pre-image the master cannot tell. *)
          Action.Delete (Entry.dn e) :: acc)
  in
  List.map (select_action q) (coalesce (deletes @ upserts_and_conservative))

(* Degraded mode (eq. (3)): full entries for changed members, retain
   for unchanged members. *)
let degraded_actions t q ~since =
  let schema = Backend.schema t.backend in
  ignore schema;
  let members = Content.current t.backend q in
  List.map
    (fun e ->
      let changed =
        match Entry.get e "modifytimestamp" with
        | [ ts ] -> (
            match int_of_string_opt ts with
            | Some c -> Csn.( < ) since (Csn.of_int c)
            | None -> true)
        | _ -> true
      in
      if changed then Action.Add e else Action.Retain (Entry.dn e))
    members

let new_session t query ~persist_push =
  (* Session id 0 is the reserved foreign-session marker
     ({!Protocol.reparent_cookie}); a master must never allocate it,
     even if [next_id] wraps around. *)
  if t.next_id = 0 then t.next_id <- 1;
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let session =
    {
      id;
      query;
      matcher = Content.matcher (Backend.schema t.backend) query;
      pending = [];
      pending_len = 0;
      synced_csn = Backend.csn t.backend;
      persist_push = None;
      outq = Queue.create ();
      outq_len = 0;
      last_active = t.clock;
    }
  in
  Hashtbl.replace t.sessions id session;
  set_persist t session persist_push;
  Option.iter
    (fun idx ->
      Ldap_containment.Predicate_index.add idx id query.Query.filter)
    t.dispatch;
  journal_w t (fun w -> new_record w session);
  session

(* Poll replies carry the resume cookie; persist replies carry the
   same cookie as a reconnection handle — if the connection breaks,
   presenting it tells the master which CSN the consumer last
   acknowledged, so reconnection can resume (or degrade) instead of
   reloading. *)
let session_cookie session ~mode =
  match mode with
  | Protocol.Poll | Protocol.Persist -> Some (cookie_of session.id session.synced_csn)
  | Protocol.Sync_end -> None

let advance_synced t session ~clear =
  let csn = Backend.csn t.backend in
  session.synced_csn <- csn;
  journal_w t (fun w -> synced_record w session.id csn ~clear)

let initial_reply t session ~mode =
  let entries = Content.current t.backend session.query in
  let actions = List.map (fun e -> Action.Add e) entries in
  advance_synced t session ~clear:false;
  { Protocol.kind = Protocol.Initial_content; actions; cookie = session_cookie session ~mode }

let incremental_reply t session ~mode =
  let degraded_fallback () =
    (* The changelog no longer reaches back to the session's CSN
       (trimmed history): fall back to eq. (3) instead of silently
       missing updates.  Session history is immune — its per-session
       buffers live outside the log. *)
    let actions =
      List.map (select_action session.query)
        (degraded_actions t session.query ~since:session.synced_csn)
    in
    (Protocol.Degraded, actions)
  in
  let kind, actions =
    match t.strategy with
    | Session_history ->
        (* Pending actions were selected when buffered. *)
        let a = coalesce (List.rev session.pending) in
        session.pending <- [];
        session.pending_len <- 0;
        (Protocol.Incremental, a)
    | Changelog ->
        if Backend.log_complete_since t.backend session.synced_csn then
          (Protocol.Incremental, changelog_actions t session)
        else degraded_fallback ()
    | Tombstone -> (Protocol.Incremental, tombstone_actions t session)
  in
  advance_synced t session ~clear:(t.strategy = Session_history);
  { Protocol.kind; actions; cookie = session_cookie session ~mode }

let degraded_reply t query ~since ~mode ~persist_push =
  let session = new_session t query ~persist_push in
  let actions = degraded_actions t query ~since in
  advance_synced t session ~clear:false;
  { Protocol.kind = Protocol.Degraded; actions; cookie = session_cookie session ~mode }

let handle t ?push (request : Protocol.request) query =
  t.clock <- t.clock + 1;
  let mode = request.Protocol.mode in
  let result =
    match mode with
    | Protocol.Sync_end -> (
        match request.cookie with
        | None -> Error "sync_end requires a cookie"
        | Some c -> (
            match parse_cookie c with
            | None -> Error "malformed cookie"
            | Some (id, _) ->
                remove_session t id;
                Ok { Protocol.kind = Protocol.Incremental; actions = []; cookie = None }))
    | Protocol.Poll | Protocol.Persist -> (
        if mode = Protocol.Persist && Option.is_none push then
          Error "persist mode requires a push channel"
        else
          let persist_push = if mode = Protocol.Persist then push else None in
          match request.cookie with
          | None ->
              let session = new_session t query ~persist_push in
              session.last_active <- t.clock;
              Ok (initial_reply t session ~mode)
          | Some c -> (
              match parse_cookie c with
              | None -> Error "malformed cookie"
              | Some (id, csn) -> (
                  match Hashtbl.find_opt t.sessions id with
                  | Some session
                    when Query.equal session.query query
                         && Csn.equal csn session.synced_csn ->
                      session.last_active <- t.clock;
                      set_persist t session persist_push;
                      Ok (incremental_reply t session ~mode)
                  | Some session when Query.equal session.query query ->
                      (* The consumer acknowledges a CSN other than the
                         one this session advanced to: a reply (or a
                         run of pushed actions) never arrived.  The
                         per-session history for that interval is gone,
                         so replaying [pending] would silently diverge —
                         resynchronize degraded from the CSN the
                         consumer actually holds. *)
                      remove_session t session.id;
                      Ok (degraded_reply t query ~since:csn ~mode ~persist_push)
                  | Some _ | None ->
                      (* Unknown or mismatched session: degraded mode
                         resynchronization from the cookie's CSN. *)
                      Ok (degraded_reply t query ~since:csn ~mode ~persist_push))))
  in
  gc_tombstones t;
  result

(* Merkle anti-entropy service: walk steps are answered from the
   backend's current content under the replica's filter — the same
   "content I should hold" predicate containment gives a search — with
   the tree rebuilt lazily per request.  A [Fetch] mints a fresh
   session at the current CSN, so the consumer that installs the
   shipped entries resumes incremental polling from there. *)
let antientropy_serve t request query =
  let select e = Entry.select e (Query.attr_list query.Query.attrs) in
  Ok
    (Ldap_antientropy.Exchange.serve
       ~content:(fun () ->
         Seq.map select (List.to_seq (Content.current t.backend query)))
       ~cookie:(fun () ->
         let session = new_session t query ~persist_push:None in
         session_cookie session ~mode:Protocol.Poll)
       request)

let abandon t ~cookie =
  (match parse_cookie cookie with
  | Some (id, _) -> remove_session t id
  | None -> ());
  gc_tombstones t

let expire_sessions t ~idle_limit =
  let cutoff = t.clock - idle_limit in
  let stale =
    Hashtbl.fold
      (fun id s acc -> if s.last_active <= cutoff then id :: acc else acc)
      t.sessions []
  in
  List.iter (remove_session t) stale;
  gc_tombstones t

let schedule_expiry t engine ~every ~until ~idle_limit =
  Ldap_sim.Engine.every engine ~every ~until (fun () ->
      expire_sessions t ~idle_limit)

let session_count t = Hashtbl.length t.sessions

let persistent_count t = Hashtbl.length t.persist

(* --- Durable state --------------------------------------------------- *)

let attach_store t store = t.store <- Some store
let store t = t.store

let strategy_code = function
  | Session_history -> 0
  | Changelog -> 1
  | Tombstone -> 2

let strategy_of_code = function
  | 0 -> Session_history
  | 1 -> Changelog
  | 2 -> Tombstone
  | n -> raise (Ber_codec.Decode_error (Printf.sprintf "bad strategy %d" n))

(* Snapshot layout: SEQ [ strategy; next_id; clock; sessions;
   tombstones ].  Sessions are sorted by id so the image is
   deterministic regardless of hash-table iteration order.  Emitted
   backwards into the store's checkpoint buffer (fields and list
   elements in reverse order). *)
let snapshot_emit t w =
  let sessions =
    Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions []
    |> List.sort (fun a b -> Int.compare b.id a.id)
  in
  let m = DW.mark w in
  let mt = DW.mark w in
  List.iter (ts_record w) (List.rev t.tombstones);
  DW.close_seq w mt;
  let ms = DW.mark w in
  List.iter
    (fun s ->
      let mse = DW.mark w in
      DW.integer w s.last_active;
      DW.integer w (Csn.to_int s.synced_csn);
      Store_codec.W.actions w (List.rev s.pending);
      DW.query w s.query;
      DW.integer w s.id;
      DW.close_seq w mse)
    sessions;
  DW.close_seq w ms;
  DW.integer w t.clock;
  DW.integer w t.next_id;
  DW.enum w (strategy_code t.strategy);
  DW.close_seq w m

let checkpoint t =
  match t.store with
  | None -> ()
  | Some s -> Ldap_store.Store.checkpoint_w s (snapshot_emit t)

let read_snapshot c =
  let inner = Der.read_seq c in
  let strat = strategy_of_code (Der.read_enum inner) in
  let next_id = Der.read_integer inner in
  let clock = Der.read_integer inner in
  let sessions =
    let seq = Der.read_seq inner in
    let rec go acc =
      if Der.at_end seq then List.rev acc
      else begin
        let s = Der.read_seq seq in
        let id = Der.read_integer s in
        let query = Der.read_query s in
        let pending_oldest = Store_codec.read_actions s in
        let synced = Csn.of_int (Der.read_integer s) in
        let last_active = Der.read_integer s in
        go ((id, query, pending_oldest, synced, last_active) :: acc)
      end
    in
    go []
  in
  let tombstones =
    let seq = Der.read_seq inner in
    let rec go acc =
      if Der.at_end seq then List.rev acc
      else begin
        let ts = Der.read_seq seq in
        (* Same image as a [Ts] WAL record, minus the kind. *)
        let kind = Der.read_enum ts in
        if kind <> 4 then
          raise (Ber_codec.Decode_error "bad tombstone image");
        let dn =
          match Dn.of_string (Der.read_octets ts) with
          | Ok d -> d
          | Error e -> raise (Ber_codec.Decode_error e)
        in
        let csn = Csn.of_int (Der.read_integer ts) in
        go ({ ts_dn = dn; ts_csn = csn } :: acc)
      end
    in
    go []
  in
  (strat, next_id, clock, sessions, tombstones)

let replay_record t payload =
  Ldap_store.Codec.decode
    (fun c ->
      let inner = Der.read_seq c in
      match Der.read_enum inner with
      | 0 ->
          let id = Der.read_integer inner in
          let query = Der.read_query inner in
          let csn = Csn.of_int (Der.read_integer inner) in
          let session =
            {
              id;
              query;
              matcher = Content.matcher (Backend.schema t.backend) query;
              pending = [];
              pending_len = 0;
              synced_csn = csn;
              persist_push = None;
              outq = Queue.create ();
              outq_len = 0;
              last_active = t.clock;
            }
          in
          Hashtbl.replace t.sessions id session;
          Option.iter
            (fun idx ->
              Ldap_containment.Predicate_index.add idx id query.Query.filter)
            t.dispatch;
          if id >= t.next_id then t.next_id <- id + 1
      | 1 -> remove_session t (Der.read_integer inner)
      | 2 -> (
          let id = Der.read_integer inner in
          let actions = Store_codec.read_actions inner in
          match Hashtbl.find_opt t.sessions id with
          | Some s ->
              s.pending <- List.rev_append actions s.pending;
              s.pending_len <- s.pending_len + List.length actions
          | None -> ())
      | 3 -> (
          let id = Der.read_integer inner in
          let csn = Csn.of_int (Der.read_integer inner) in
          let clear = Der.read_boolean inner in
          match Hashtbl.find_opt t.sessions id with
          | Some s ->
              s.synced_csn <- csn;
              if clear then begin
                s.pending <- [];
                s.pending_len <- 0
              end
          | None -> ())
      | 4 ->
          let dn =
            match Dn.of_string (Der.read_octets inner) with
            | Ok d -> d
            | Error e -> raise (Ber_codec.Decode_error e)
          in
          let csn = Csn.of_int (Der.read_integer inner) in
          t.tombstones <- { ts_dn = dn; ts_csn = csn } :: t.tombstones
      | n ->
          raise
            (Ber_codec.Decode_error (Printf.sprintf "bad master record %d" n)))
    payload

let recover ?strategy ?dispatch backend store =
  let ( let* ) = Result.bind in
  let recovery = Ldap_store.Store.recover store in
  let* snap =
    match recovery.Ldap_store.Store.snapshot with
    | None -> Ok None
    | Some payload ->
        Result.map Option.some (Ldap_store.Codec.decode read_snapshot payload)
  in
  let strategy =
    match snap with Some (s, _, _, _, _) -> Some s | None -> strategy
  in
  let t = create ?strategy ?dispatch backend in
  (match snap with
  | None -> ()
  | Some (_, next_id, clock, sessions, tombstones) ->
      t.next_id <- next_id;
      t.clock <- clock;
      List.iter
        (fun (id, query, pending_oldest, synced, last_active) ->
          let session =
            {
              id;
              query;
              matcher = Content.matcher (Backend.schema backend) query;
              pending = List.rev pending_oldest;
              pending_len = List.length pending_oldest;
              synced_csn = synced;
              persist_push = None;
              outq = Queue.create ();
              outq_len = 0;
              last_active;
            }
          in
          Hashtbl.replace t.sessions id session;
          Option.iter
            (fun idx ->
              Ldap_containment.Predicate_index.add idx id query.Query.filter)
            t.dispatch)
        sessions;
      t.tombstones <- tombstones);
  let* () =
    List.fold_left
      (fun acc payload ->
        let* () = acc in
        replay_record t payload)
      (Ok ()) recovery.Ldap_store.Store.records
  in
  gc_tombstones t;
  t.store <- Some store;
  Ok (t, recovery)

(* Per-session history residency: (total buffered actions, largest
   single session's buffer) — what the scale report shows operators. *)
let pending_stats t =
  Hashtbl.fold
    (fun _ s (total, biggest) ->
      (total + s.pending_len, max biggest s.pending_len))
    t.sessions (0, 0)

let history_size t =
  match t.strategy with
  | Session_history ->
      Hashtbl.fold (fun _ s acc -> acc + List.length s.pending) t.sessions 0
  | Changelog ->
      let oldest =
        Hashtbl.fold
          (fun _ s acc -> min acc (Csn.to_int s.synced_csn))
          t.sessions (Csn.to_int (Backend.csn t.backend))
      in
      List.length (Backend.log_since t.backend (Csn.of_int oldest))
  | Tombstone -> List.length t.tombstones
