(** ReSync protocol messages: the resync control and replies.

    The control attached to a search request is [(mode, cookie)]
    (section 5.2).  A null cookie starts an update session; a non-null
    cookie resumes one.  Poll replies carry a cookie to resume with;
    persist replies keep a notification channel open. *)

type mode =
  | Poll  (** One exchange; the reply carries a resume cookie. *)
  | Persist  (** Keep the connection; further changes are pushed. *)
  | Sync_end  (** Terminate the session identified by the cookie. *)

type request = { mode : mode; cookie : string option }

val cookie_of : id:int -> csn:Ldap.Csn.t -> string
(** The wire form of a resume cookie, [rs:<session id>:<csn>].  Every
    tier of a cascading topology — root master and intermediate nodes
    alike — issues cookies in this one format, so a cookie minted
    anywhere parses anywhere.  Session ids start at 1. *)

val parse_cookie : string -> (int * Ldap.Csn.t) option
(** Session id and CSN embedded in a cookie; [None] if malformed. *)

val reparent_cookie : string -> string option
(** Cookie translation for re-parenting: keeps the CSN (the globally
    meaningful progress marker, since all CSNs originate at the root)
    and replaces the dead server's session id with the reserved
    foreign-session id 0, which no server ever allocates.  The new
    upstream therefore sees an unknown session and answers with a
    degraded resynchronization from exactly the CSN the consumer has
    acknowledged.  [None] if the cookie is malformed. *)

val composite_cookie : (int * string) list -> string
(** The wire form of a {e composite} cookie, the resume handle a shard
    router hands out: one ordinary [rs:...] component per shard, keyed
    by shard id and sorted, as
    [rsm:<shard>@rs:<id>:<csn>|<shard>@rs:<id>:<csn>].  A shard without
    an established session has no component.  Like {!cookie_of}, the
    format is tier-independent: any router parses any router's
    composite. *)

val parse_composite_cookie : string -> (int * string) list option
(** Components of a composite cookie, or [None] if the string is not a
    well-formed composite ([rsm:] with zero or more components). *)

val composite_component : string -> shard:int -> string option
(** The component for one shard, if the composite holds one. *)

val is_composite_cookie : string -> bool
(** Whether the cookie carries the [rsm:] composite prefix. *)

type reply_kind =
  | Initial_content
      (** Null cookie: the entire content was sent as [add]s. *)
  | Incremental
      (** Session history replay: the minimal update set. *)
  | Degraded
      (** History was incomplete; unchanged entries arrive as
          [retain] actions and the replica must prune everything it
          holds that was neither retained nor added (eq. (3)). *)

type reply = {
  kind : reply_kind;
  actions : Action.t list;
  cookie : string option;  (** Present for poll replies. *)
}

val entries_cost : reply -> int
(** Total traffic of the reply in entries (the paper's unit). *)

val bytes_cost : reply -> int
val actions_count : reply -> int

val request_bytes : request -> int
(** Modelled wire size of a resync search request PDU: message
    envelope, mode and cookie control value. *)

val reply_bytes : reply -> int
(** Modelled wire size of a full reply PDU: envelope, every action and
    the resume cookie.  [bytes_cost] plus the envelope. *)

val mode_to_string : mode -> string
val pp_reply : Format.formatter -> reply -> unit

(** {1 Persist push channels}

    The master side of a persist session holds a {!push_channel} rather
    than a bare function: each send reports whether the notification
    was written, could not be written right now, or can never be
    written again — the three answers a TCP socket gives a writer.
    The status is what lets the master run a {e bounded} outbound queue
    per session (stall → buffer up to a limit; overflow or reset →
    retire the session) instead of blocking on, or buffering without
    bound for, its slowest consumer. *)

type push_status =
  | Push_ok  (** Accepted for delivery (possibly in flight). *)
  | Push_stalled
      (** The receiver is not draining (flow control): nothing was
          sent, and the caller must buffer or drop the action. *)
  | Push_gone
      (** The connection is dead: this and all later sends are lost,
          like a write after ECONNRESET. *)

type push_channel = {
  pc_send : Action.t -> push_status;  (** Delivers one notification. *)
  pc_close : unit -> unit;
      (** Server-side teardown: marks the connection dead so the
          consumer's next liveness check sees it and reconnects. *)
}

val push_of_fn : (Action.t -> unit) -> push_channel
(** Wraps an infallible delivery function (co-located consumers,
    tests) as a channel that always answers [Push_ok] and whose close
    is a no-op. *)
