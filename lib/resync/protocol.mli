(** ReSync protocol messages: the resync control and replies.

    The control attached to a search request is [(mode, cookie)]
    (section 5.2).  A null cookie starts an update session; a non-null
    cookie resumes one.  Poll replies carry a cookie to resume with;
    persist replies keep a notification channel open. *)

type mode =
  | Poll  (** One exchange; the reply carries a resume cookie. *)
  | Persist  (** Keep the connection; further changes are pushed. *)
  | Sync_end  (** Terminate the session identified by the cookie. *)

type request = { mode : mode; cookie : string option }

type reply_kind =
  | Initial_content
      (** Null cookie: the entire content was sent as [add]s. *)
  | Incremental
      (** Session history replay: the minimal update set. *)
  | Degraded
      (** History was incomplete; unchanged entries arrive as
          [retain] actions and the replica must prune everything it
          holds that was neither retained nor added (eq. (3)). *)

type reply = {
  kind : reply_kind;
  actions : Action.t list;
  cookie : string option;  (** Present for poll replies. *)
}

val entries_cost : reply -> int
(** Total traffic of the reply in entries (the paper's unit). *)

val bytes_cost : reply -> int
val actions_count : reply -> int

val request_bytes : request -> int
(** Modelled wire size of a resync search request PDU: message
    envelope, mode and cookie control value. *)

val reply_bytes : reply -> int
(** Modelled wire size of a full reply PDU: envelope, every action and
    the resume cookie.  [bytes_cost] plus the envelope. *)

val mode_to_string : mode -> string
val pp_reply : Format.formatter -> reply -> unit
