(** Consumer (replica) side of a ReSync session: the materialized
    content of one replicated query.

    The consumer applies the actions of each reply to its local entry
    set and tracks the resume cookie.  After any successful exchange
    the entry set equals the master's content at the reply's CSN —
    the convergence guarantee the protocol provides (verified by the
    property tests).

    All synchronization goes through a {!Transport}: exchanges can be
    lost, refused or cut by a partition, and the consumer recovers by
    bounded retry with exponential backoff and — when its session
    state at the master is gone or ahead of what it acknowledged — by
    accepting a full or degraded resynchronization reply. *)

open Ldap

type t

(** The result of one successful synchronization. *)
type outcome = {
  reply : Protocol.reply;
  attempts : int;  (** Exchanges sent, including the successful one. *)
  backoff : int;  (** Total backoff ticks waited between attempts. *)
  resynced : bool;
      (** An established session (cookie held) was answered with
          [Initial_content] or [Degraded]: the master could not replay
          incrementally and the consumer recovered by resync. *)
}

type sync_error =
  | Exhausted of { attempts : int; last : Network.failure }
      (** Retry budget spent; the consumer keeps its cookie and
          content and may try again later. *)
  | Rejected of string  (** The master refused the request. *)

val sync_error_to_string : sync_error -> string

val create : Schema.t -> Query.t -> t
(** Fresh consumer for one subscription query, with empty content. *)

val query : t -> Query.t
(** The subscription query. *)

val cookie : t -> string option
(** Opaque resume cookie from the last reply; [None] before the first
    sync. *)

val set_cookie : t -> string option -> unit
(** Overrides the stored resume cookie.  Used when a consumer is
    re-parented to a different upstream: the topology layer installs
    the {!Protocol.reparent_cookie} translation of the old cookie, so
    the first exchange with the new upstream resynchronizes degraded
    from the acknowledged CSN instead of reloading from scratch. *)

val set_on_change :
  t -> (before:Entry.t option -> after:Entry.t option -> unit) -> unit
(** Registers an observer called once per local content change —
    upserts, deletes, and the silent prunes of a degraded or initial
    resynchronization (which transmit no per-entry delete).  [before]
    is the entry previously held under the DN, [after] the entry now
    held; never both [None].  This is how an intermediate topology node
    learns what changed in its replica content so it can relay the
    change downstream. *)

val apply_reply : t -> Protocol.reply -> unit
(** Applies all actions.  For a [Degraded] reply, entries that were
    neither retained nor upserted are pruned (eq. (3)). *)

val sync_over :
  ?max_attempts:int ->
  ?backoff:int ->
  ?from:string ->
  t ->
  Transport.t ->
  host:string ->
  (outcome, sync_error) result
(** One poll against the master at [host], with up to [max_attempts]
    (default 4) transport attempts; attempt [i] failing costs
    [backoff * 2^(i-1)] ticks (default base 1).  A reply lost after
    the master processed the poll is recovered on the retry: the
    master sees the stale acknowledged CSN in the cookie and answers
    with a degraded resynchronization, which the consumer applies.

    With an engine attached to the transport's network, the backoff is
    charged as a real timer: the outcome's [backoff] stat equals the
    virtual time spent waiting between attempts. *)

val sync_async :
  ?max_attempts:int ->
  ?backoff:int ->
  ?from:string ->
  t ->
  Transport.t ->
  host:string ->
  ((outcome, sync_error) result -> unit) ->
  unit
(** Asynchronous form of {!sync_over}, usable from inside engine event
    callbacks: each attempt is an {!Transport.exchange_async} exchange
    and each inter-attempt backoff an engine timer.  Without an engine
    the continuation runs before [sync_async] returns. *)

val merkle_sync :
  ?config:Ldap_antientropy.Tree.config ->
  ?max_rounds:int ->
  ?from:string ->
  t ->
  Transport.t ->
  host:string ->
  (Ldap_antientropy.Exchange.report, string) result
(** Merkle anti-entropy reconciliation against the endpoint at [host]:
    walks root → branch → segment hashes over
    {!Transport.tree_exchange} and ships only the entries of differing
    segments (see {!Ldap_antientropy.Exchange.reconcile}).  The repair
    is applied through {!apply_reply} as one synthetic incremental
    reply per round — deletes, upserts and the server's fresh resume
    cookie in a single WAL record — after which the consumer polls
    incrementally from the new cookie.  The previously held cookie's
    session is abandoned at the endpoint once the walk converges.
    This is the recovery mode for a replica whose WAL is truncated or
    whose cookie the upstream rejected: cheaper than a cold reload
    whenever drift is small. *)

val sync : t -> Master.t -> (Protocol.reply, string) result
(** Co-located convenience: one poll through a private loopback
    {!Transport} holding [master] — the exchange is still routed,
    accounted and recoverable like any other.  Sends the stored
    cookie (or none on first contact), applies the reply, stores the
    new cookie.  Returns the reply so callers can account traffic. *)

val connect_persist :
  ?max_attempts:int ->
  ?backoff:int ->
  ?from:string ->
  ?observe:(Action.t -> unit) ->
  t ->
  Transport.t ->
  host:string ->
  (outcome, sync_error) result
(** Establishes (or re-establishes) a persist-mode session: the push
    callback applying actions to this consumer is registered at the
    master through the transport.  Reconnection presents the stored
    cookie, so a master that pushed actions the consumer never
    received answers with a degraded resync instead of silently
    resuming.  [observe] is called after each applied push
    (accounting hooks, tests). *)

val persist_alive : t -> bool
(** Whether the current persistent connection is still delivering.
    A lost push or partition kills it; detection happens when traffic
    flows, like a half-open TCP connection. *)

val pause_connection : t -> unit
(** Stops draining the persistent connection ({!Transport.pause}):
    server-side sends start answering [Push_stalled], exercising the
    master's bounded outbound queues.  No-op without a connection. *)

val resume_connection : t -> unit
(** Clears {!pause_connection}.  Actions the master queued while the
    consumer was stalled arrive when the master next touches the
    session ({!Master.flush_pushes} or an update dispatch). *)

val ensure_persist :
  ?max_attempts:int ->
  ?backoff:int ->
  ?from:string ->
  ?observe:(Action.t -> unit) ->
  t ->
  Transport.t ->
  host:string ->
  (outcome option, sync_error) result
(** [Ok None] when the connection is alive; otherwise reconnects via
    {!connect_persist} and returns its outcome. *)

val entries : t -> Entry.t list
(** The held content as a list (store slot order).  Prefer
    {!entries_seq} on hot paths — this copies. *)

val entries_seq : t -> Entry.t Seq.t
(** The held content as a streaming sequence over the backing
    {!Ldap.Content_store} — what replica evaluation, anti-entropy tree
    construction and snapshot-diff serving iterate, with no list
    copy.  Do not mutate the consumer while consuming it. *)

val content : t -> Content_store.t
(** The backing content store itself.  Topology nodes hold cursor
    positions on its change spine to serve downstream snapshot-diffs
    in O(diff); its {!Ldap.Content_store.approx_bytes} feeds memory
    residency reports. *)

val dns : t -> Dn.Set.t
val find : t -> Dn.t -> Entry.t option
(** O(1) lookup in the local content. *)

val size : t -> int

(** {1 Durability}

    With a store attached, every applied reply is journaled as {e one}
    WAL record carrying the new cookie and all actions — the
    atomicity boundary that keeps the durable cookie from running
    ahead of durable content when a crash lands mid-apply; persist
    pushes journal one record per action.  A restarted consumer
    recovered from its store resumes ReSync from the durable cookie
    instead of re-fetching. *)

val attach_store : t -> Ldap_store.Store.t -> unit
(** Starts journaling state transitions to the store.  Checkpoint
    once after attaching to an already-populated consumer. *)

val detach_store : t -> unit
(** Stops journaling.  A simulated crash detaches the zombie in-memory
    consumer so nothing it does afterwards can touch the durable state
    captured at crash time. *)

val store : t -> Ldap_store.Store.t option
(** The attached store, if any. *)

val checkpoint : t -> unit
(** Snapshots cookie + entries and resets the WAL.  No-op without an
    attached store. *)

val recover :
  Schema.t ->
  Query.t ->
  Ldap_store.Store.t ->
  (t * Ldap_store.Store.recovery, string) result
(** Rebuilds a consumer from durable state: loads the snapshot,
    replays the WAL (truncating a torn tail), and re-attaches the
    store.  An empty store recovers to a fresh consumer. *)
