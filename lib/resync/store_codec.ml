open Ldap
module Der = Ber_codec.Der

let action (a : Action.t) =
  match a with
  | Action.Add e -> Der.seq [ Der.enum 0; Der.entry e ]
  | Action.Modify e -> Der.seq [ Der.enum 1; Der.entry e ]
  | Action.Delete dn -> Der.seq [ Der.enum 2; Der.octets (Dn.to_string dn) ]
  | Action.Retain dn -> Der.seq [ Der.enum 3; Der.octets (Dn.to_string dn) ]

let read_dn c =
  match Dn.of_string (Der.read_octets c) with
  | Ok d -> d
  | Error e -> raise (Ber_codec.Decode_error e)

let read_action c =
  let inner = Der.read_seq c in
  match Der.read_enum inner with
  | 0 -> Action.Add (Der.read_entry inner)
  | 1 -> Action.Modify (Der.read_entry inner)
  | 2 -> Action.Delete (read_dn inner)
  | 3 -> Action.Retain (read_dn inner)
  | n -> raise (Ber_codec.Decode_error (Printf.sprintf "bad action kind %d" n))

let actions l = Der.seq (List.map action l)

let read_actions c =
  let inner = Der.read_seq c in
  let rec go acc =
    if Der.at_end inner then List.rev acc else go (read_action inner :: acc)
  in
  go []

let kind_code = function
  | Protocol.Initial_content -> 0
  | Protocol.Incremental -> 1
  | Protocol.Degraded -> 2

let kind_of_code = function
  | 0 -> Protocol.Initial_content
  | 1 -> Protocol.Incremental
  | 2 -> Protocol.Degraded
  | n -> raise (Ber_codec.Decode_error (Printf.sprintf "bad reply kind %d" n))

let cookie_opt c = Der.option Der.octets c
let read_cookie_opt c = Der.read_option Der.read_octets c

let reply (r : Protocol.reply) =
  Der.seq
    [
      Der.enum (kind_code r.Protocol.kind);
      actions r.Protocol.actions;
      cookie_opt r.Protocol.cookie;
    ]

(* Writer twins emitting backwards into a reused buffer (children in
   reverse field order, see {!Ber_codec.Der.W}); byte-identical to the
   string encoders above. *)
module W = struct
  module DW = Der.W

  let action w (a : Action.t) =
    let m = DW.mark w in
    (match a with
    | Action.Add e ->
        DW.entry w e;
        DW.enum w 0
    | Action.Modify e ->
        DW.entry w e;
        DW.enum w 1
    | Action.Delete dn ->
        DW.octets w (Dn.to_string dn);
        DW.enum w 2
    | Action.Retain dn ->
        DW.octets w (Dn.to_string dn);
        DW.enum w 3);
    DW.close_seq w m

  let actions w l =
    let m = DW.mark w in
    List.iter (action w) (List.rev l);
    DW.close_seq w m

  let reply w (r : Protocol.reply) =
    let m = DW.mark w in
    DW.option w (DW.octets w) r.Protocol.cookie;
    actions w r.Protocol.actions;
    DW.enum w (kind_code r.Protocol.kind);
    DW.close_seq w m
end

let read_reply c =
  let inner = Der.read_seq c in
  let kind = kind_of_code (Der.read_enum inner) in
  let acts = read_actions inner in
  let cookie = read_cookie_opt inner in
  { Protocol.kind; actions = acts; cookie }
