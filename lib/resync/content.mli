(** Content sets of a search request (section 5.1).

    [CS(t)] is the set of entries satisfying a search request [S] at
    instant [t].  Given pre/post images of a committed update, an entry
    is classified as moving into the content (contributing to
    [E01]), out of it ([E10]), changing within it ([E11]) or staying
    outside. *)

open Ldap

val member : Schema.t -> Query.t -> Entry.t -> bool
(** Whether the entry belongs to the query's content: its DN is in the
    base/scope region and the filter matches. *)

type matcher
(** {!member} with the query's filter compiled once to bytecode; the
    master builds one per session and reuses it across every routed
    update. *)

val matcher : Schema.t -> Query.t -> matcher
(** Compile a membership test for the query. *)

val matcher_query : matcher -> Query.t
(** The query the matcher was compiled from. *)

val matches : matcher -> Entry.t -> bool
(** Compiled equivalent of [member schema q entry]. *)

val current : Backend.t -> Query.t -> Entry.t list
(** [CS(now)]: the content evaluated against the backend, with the
    query's attribute selection applied. *)

val current_dns : Backend.t -> Query.t -> Dn.Set.t

type transition =
  | Stays_out
  | Moves_in of Entry.t  (** E01: send [add]. *)
  | Moves_out of Dn.t  (** E10: send [delete] (of the old DN). *)
  | Changes_within of Entry.t  (** E11: send [modify]. *)
  | Renames_within of { old_dn : Dn.t; entry : Entry.t }
      (** A modify DN that keeps the entry in content: the paper
          mandates [delete] of the old DN followed by [add] of the
          new one (Figure 3, E3/E5). *)

val classify :
  Schema.t -> Query.t -> before:Entry.t option -> after:Entry.t option -> transition
(** Interpreted classification (the oracle for {!classify_m}). *)

val classify_m :
  matcher -> before:Entry.t option -> after:Entry.t option -> transition
(** Same classification driven by a compiled {!matcher}. *)

val actions_of_transition : transition -> Action.t list
(** The PDUs a session must emit for the transition, in order. *)
