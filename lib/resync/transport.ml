open Ldap

type error = Net of Network.failure | Server of string

let error_to_string = function
  | Net f -> Network.failure_to_string f
  | Server msg -> msg

type endpoint = {
  ep_schema : Schema.t;
  ep_handle :
    push:Protocol.push_channel option ->
    Protocol.request ->
    Query.t ->
    (Protocol.reply, string) result;
  ep_abandon : cookie:string -> unit;
  ep_estimate : Query.t -> int;
  ep_tree :
    Ldap_antientropy.Exchange.request ->
    Query.t ->
    (Ldap_antientropy.Exchange.reply, string) result;
}

type t = {
  net : Network.t;
  faults : Network.Faults.t option;
  endpoints : (string, endpoint) Hashtbl.t;
  masters : (string, Master.t) Hashtbl.t;  (* endpoints that are root masters *)
}

let create ?faults net =
  { net; faults; endpoints = Hashtbl.create 4; masters = Hashtbl.create 4 }

let network t = t.net
let faults t = t.faults

let add_endpoint t ~name ep =
  Hashtbl.replace t.endpoints name ep;
  Hashtbl.remove t.masters name

let remove_endpoint t ~name =
  Hashtbl.remove t.endpoints name;
  Hashtbl.remove t.masters name

let endpoint t name = Hashtbl.find_opt t.endpoints name

let endpoint_of_master m =
  {
    ep_schema = Backend.schema (Master.backend m);
    ep_handle = (fun ~push request query -> Master.handle m ?push request query);
    ep_abandon = (fun ~cookie -> Master.abandon m ~cookie);
    ep_estimate = (fun q -> Backend.count_matching (Master.backend m) q);
    ep_tree = (fun request query -> Master.antientropy_serve m request query);
  }

let add_master t ~name master =
  Hashtbl.replace t.endpoints name (endpoint_of_master master);
  Hashtbl.replace t.masters name master

let master t name = Hashtbl.find_opt t.masters name

let loopback_host = "master"

let loopback m =
  let t = create (Network.create ()) in
  add_master t ~name:loopback_host m;
  t

let exchange_with t ~host ~from ~push request query =
  match Hashtbl.find_opt t.endpoints host with
  | None -> Error (Net (Network.Unreachable host))
  | Some ep -> (
      let result =
        Network.rpc t.net ?faults:t.faults ~from ~host
          ~request_bytes:(Protocol.request_bytes request)
          ~reply_bytes:(function
            | Ok reply -> Protocol.reply_bytes reply
            | Error _ -> Ber.message_overhead)
          (fun () -> ep.ep_handle ~push request query)
      in
      match result with
      | Ok (Ok reply) -> Ok reply
      | Ok (Error msg) -> Error (Server msg)
      | Error failure -> Error (Net failure))

let exchange t ~host ?(from = "consumer") request query =
  exchange_with t ~host ~from ~push:None request query

let exchange_with_async t ~host ~from ~push request query k =
  match Hashtbl.find_opt t.endpoints host with
  | None -> k (Error (Net (Network.Unreachable host)))
  | Some ep ->
      Network.rpc_send t.net ?faults:t.faults ~from ~host
        ~request_bytes:(Protocol.request_bytes request)
        ~reply_bytes:(function
          | Ok reply -> Protocol.reply_bytes reply
          | Error _ -> Ber.message_overhead)
        (fun () -> ep.ep_handle ~push request query)
        (fun result ->
          k
            (match result with
            | Ok (Ok reply) -> Ok reply
            | Ok (Error msg) -> Error (Server msg)
            | Error failure -> Error (Net failure)))

let exchange_async t ~host ?(from = "consumer") request query k =
  exchange_with_async t ~host ~from ~push:None request query k

(* One Merkle anti-entropy walk step over the same RPC layer as the
   resync exchanges: hash messages and shipped entries pay the same
   fault schedule and byte accounting as everything else. *)
let tree_exchange t ~host ?(from = "consumer") request query =
  match Hashtbl.find_opt t.endpoints host with
  | None -> Error (Net (Network.Unreachable host))
  | Some ep -> (
      let result =
        Network.rpc t.net ?faults:t.faults ~from ~host
          ~request_bytes:(Ldap_antientropy.Exchange.request_bytes request)
          ~reply_bytes:(function
            | Ok reply -> Ldap_antientropy.Exchange.reply_bytes reply
            | Error _ -> Ber.message_overhead)
          (fun () -> ep.ep_tree request query)
      in
      match result with
      | Ok (Ok reply) -> Ok reply
      | Ok (Error msg) -> Error (Server msg)
      | Error failure -> Error (Net failure))

(* --- Persistent connections ------------------------------------------ *)

type conn = {
  mutable alive : bool;
  mutable paused : bool;
  mutable last_delivery : int;
}

let conn_alive c = c.alive
let kill c = c.alive <- false
let pause c = c.paused <- true
let resume c = c.paused <- false

let connect t ~host ?(from = "consumer") ~push request query =
  let conn = { alive = true; paused = false; last_delivery = 0 } in
  (* Notifications cross the same lossy link as everything else; the
     first one that does not arrive intact breaks the connection, and
     everything after it is lost until the consumer reconnects.  The
     send status follows TCP write semantics: the push that is lost in
     flight still reports [Push_ok] (the writer cannot tell), and only
     the *next* send observes the dead connection. *)
  let send action =
    if not conn.alive then Protocol.Push_gone
    else if conn.paused then Protocol.Push_stalled
    else begin
      let delivered =
        match t.faults with
        | None -> true
        | Some f ->
            (not (Network.Faults.partitioned f ~a:from ~b:host))
            && Network.Faults.next_outcome f = Network.Faults.Deliver
      in
      if delivered then begin
        (match Network.engine t.net with
        | Some e ->
            (* Scheduled delivery, one link-latency draw per push; the
               per-connection clamp keeps pushes FIFO even when a later
               push draws a smaller latency.  The connection may die in
               flight, in which case the push is discarded on arrival. *)
            let d = Ldap_sim.Engine.draw e (Network.link_latency t.net ~a:from ~b:host) in
            let at = max (Ldap_sim.Engine.now e + d) conn.last_delivery in
            conn.last_delivery <- at;
            Ldap_sim.Engine.schedule e ~time:at (fun () ->
                if conn.alive then begin
                  Network.account_push t.net ~bytes:(Action.bytes_cost action);
                  push action
                end)
        | None ->
            Network.account_push t.net ~bytes:(Action.bytes_cost action);
            push action);
        Protocol.Push_ok
      end
      else begin
        conn.alive <- false;
        Network.account_dropped t.net;
        Protocol.Push_ok
      end
    end
  in
  let channel =
    {
      Protocol.pc_send = send;
      pc_close = (fun () -> conn.alive <- false);
    }
  in
  match exchange_with t ~host ~from ~push:(Some channel) request query with
  | Ok reply -> Ok (reply, conn)
  | Error e ->
      (* If the reply was lost the server may hold a session pushing
         into this closure; killing the handle discards those. *)
      conn.alive <- false;
      Error e
