type mode = Poll | Persist | Sync_end

type request = { mode : mode; cookie : string option }

(* --- Cookies ----------------------------------------------------------
   Every tier — the root master and intermediate topology nodes — issues
   cookies in the same [rs:<session id>:<csn>] form, so a cookie minted
   anywhere parses anywhere.  Session ids start at 1; id 0 is reserved
   as the "foreign session" marker used when a consumer re-parents: the
   CSN (the globally meaningful progress marker) is kept, the dead
   server's session id is discarded, and the new server sees an unknown
   session and resynchronizes degraded from that CSN. *)

let cookie_of ~id ~csn = Printf.sprintf "rs:%d:%d" id (Ldap.Csn.to_int csn)

let parse_cookie s =
  match String.split_on_char ':' s with
  | [ "rs"; id; csn ] -> (
      match (int_of_string_opt id, int_of_string_opt csn) with
      | Some id, Some csn -> Some (id, Ldap.Csn.of_int csn)
      | _ -> None)
  | _ -> None

let reparent_cookie s =
  match parse_cookie s with
  | Some (_, csn) -> Some (cookie_of ~id:0 ~csn)
  | None -> None

(* --- Composite cookies ------------------------------------------------
   A sharded deployment has no single CSN stream: each write master
   advances its own.  The router therefore hands consumers a composite
   cookie interleaving one ordinary [rs:...] component per shard, keyed
   by shard id: [rsm:<shard>@rs:<id>:<csn>|<shard>@rs:...].  Components
   are sorted by shard id so equal session states print identically.  A
   shard the consumer has never exchanged with simply has no component;
   the router's next fan-out starts that shard's session from scratch.
   Resume-ordering discipline lives at the router: a component may only
   be replaced by a newer one when the matching shard's actions were
   delivered in the same merged reply (see [Ldap_shard.Router]). *)

let composite_prefix = "rsm:"

let is_composite_cookie s =
  String.length s >= String.length composite_prefix
  && String.sub s 0 (String.length composite_prefix) = composite_prefix

let composite_cookie components =
  let components =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) components
  in
  composite_prefix
  ^ String.concat "|"
      (List.map (fun (shard, c) -> Printf.sprintf "%d@%s" shard c) components)

let parse_composite_cookie s =
  if not (is_composite_cookie s) then None
  else
    let body =
      String.sub s (String.length composite_prefix)
        (String.length s - String.length composite_prefix)
    in
    if body = "" then Some []
    else
      let parts = String.split_on_char '|' body in
      let parse_part p =
        match String.index_opt p '@' with
        | None -> None
        | Some i -> (
            let shard = String.sub p 0 i in
            let component = String.sub p (i + 1) (String.length p - i - 1) in
            match int_of_string_opt shard with
            | Some shard when component <> "" -> Some (shard, component)
            | _ -> None)
      in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | p :: rest -> (
            match parse_part p with
            | Some kv -> go (kv :: acc) rest
            | None -> None)
      in
      go [] parts

let composite_component s ~shard =
  match parse_composite_cookie s with
  | None -> None
  | Some components -> List.assoc_opt shard components

type reply_kind = Initial_content | Incremental | Degraded

type reply = {
  kind : reply_kind;
  actions : Action.t list;
  cookie : string option;
}

let entries_cost r =
  List.fold_left (fun acc a -> acc + Action.entries_cost a) 0 r.actions

let bytes_cost r = List.fold_left (fun acc a -> acc + Action.bytes_cost a) 0 r.actions
let actions_count r = List.length r.actions

let cookie_bytes = function Some c -> String.length c | None -> 0

let request_bytes (r : request) = Ldap.Ber.message_overhead + 1 + cookie_bytes r.cookie
let reply_bytes (r : reply) = Ldap.Ber.message_overhead + bytes_cost r + cookie_bytes r.cookie

let mode_to_string = function
  | Poll -> "poll"
  | Persist -> "persist"
  | Sync_end -> "sync_end"

let pp_reply ppf r =
  let kind =
    match r.kind with
    | Initial_content -> "initial"
    | Incremental -> "incremental"
    | Degraded -> "degraded"
  in
  Format.fprintf ppf "%s (%d actions)" kind (List.length r.actions)

(* --- Persist push channels ------------------------------------------- *)

type push_status = Push_ok | Push_stalled | Push_gone

type push_channel = {
  pc_send : Action.t -> push_status;
  pc_close : unit -> unit;
}

let push_of_fn f = { pc_send = (fun a -> f a; Push_ok); pc_close = (fun () -> ()) }
