type mode = Poll | Persist | Sync_end

type request = { mode : mode; cookie : string option }

type reply_kind = Initial_content | Incremental | Degraded

type reply = {
  kind : reply_kind;
  actions : Action.t list;
  cookie : string option;
}

let entries_cost r =
  List.fold_left (fun acc a -> acc + Action.entries_cost a) 0 r.actions

let bytes_cost r = List.fold_left (fun acc a -> acc + Action.bytes_cost a) 0 r.actions
let actions_count r = List.length r.actions

let cookie_bytes = function Some c -> String.length c | None -> 0

let request_bytes (r : request) = Ldap.Ber.message_overhead + 1 + cookie_bytes r.cookie
let reply_bytes (r : reply) = Ldap.Ber.message_overhead + bytes_cost r + cookie_bytes r.cookie

let mode_to_string = function
  | Poll -> "poll"
  | Persist -> "persist"
  | Sync_end -> "sync_end"

let pp_reply ppf r =
  let kind =
    match r.kind with
    | Initial_content -> "initial"
    | Incremental -> "incremental"
    | Degraded -> "degraded"
  in
  Format.fprintf ppf "%s (%d actions)" kind (List.length r.actions)
