open Ldap

type t = {
  query : Query.t;
  entries : Content_store.t;
  mutable cookie : string option;
  mutable conn : Transport.conn option;
  mutable loopback : (Master.t * Transport.t) option;
  mutable on_change :
    (before:Entry.t option -> after:Entry.t option -> unit) option;
  mutable store : Ldap_store.Store.t option;
}

type outcome = {
  reply : Protocol.reply;
  attempts : int;
  backoff : int;
  resynced : bool;
}

type sync_error =
  | Exhausted of { attempts : int; last : Network.failure }
  | Rejected of string

let sync_error_to_string = function
  | Rejected msg -> msg
  | Exhausted { attempts; last } ->
      Printf.sprintf "sync failed after %d attempts: %s" attempts
        (Network.failure_to_string last)

let create schema query =
  ignore schema;
  {
    query;
    entries = Content_store.create ();
    cookie = None;
    conn = None;
    loopback = None;
    on_change = None;
    store = None;
  }

let query t = t.query
let cookie t = t.cookie
let set_cookie t c = t.cookie <- c
let set_on_change t f = t.on_change <- Some f

let notify t ~before ~after =
  match (t.on_change, before, after) with
  | None, _, _ | Some _, None, None -> ()
  | Some f, _, _ -> f ~before ~after

let apply_action t = function
  | Action.Add e | Action.Modify e ->
      let dn = Entry.dn e in
      let before = Content_store.find t.entries dn in
      Content_store.upsert t.entries e;
      notify t ~before ~after:(Some e)
  | Action.Delete dn ->
      let before = Content_store.find t.entries dn in
      Content_store.remove t.entries dn;
      notify t ~before ~after:None
  | Action.Retain _ -> ()

(* Drops every entry not satisfying [keep], reporting each prune to the
   observer — a pruned entry is a content change even though no delete
   action was transmitted for it (eq. (3)'s "everything neither
   retained nor added").  Victims are collected first: the store must
   not be mutated under its own iterator. *)
let prune t ~keep =
  let victims =
    Content_store.fold t.entries ~init:[] ~f:(fun acc e ->
        if keep (Entry.dn e) then acc else e :: acc)
  in
  List.iter
    (fun e ->
      Content_store.remove t.entries (Entry.dn e);
      notify t ~before:(Some e) ~after:None)
    victims

(* --- Durability ------------------------------------------------------ *)

module Der = Ber_codec.Der
module DW = Der.W

let journal_w t emit =
  match t.store with Some s -> Ldap_store.Store.append_w s emit | None -> ()

(* WAL record kinds: a whole reply (cookie + actions as one record —
   the atomicity boundary), or one pushed persist action.  Emitted
   backwards into the WAL's reused buffer (see {!Ber_codec.Der.W}). *)
let reply_record w reply =
  let m = DW.mark w in
  Store_codec.W.reply w reply;
  DW.enum w 0;
  DW.close_seq w m

let action_record w a =
  let m = DW.mark w in
  Store_codec.W.action w a;
  DW.enum w 1;
  DW.close_seq w m

let apply_reply t (reply : Protocol.reply) =
  (* Write-ahead: the whole reply — new cookie and all actions — is
     journaled as one WAL record before any in-memory mutation, so a
     crash mid-apply replays cookie and content together or not at
     all; the durable cookie can never run ahead of durable content. *)
  journal_w t (fun w -> reply_record w reply);
  (* The cookie is stored before the actions are applied: an observer
     registered with {!set_on_change} fires during application, and
     anything it derives from this consumer's state — e.g. the CSN an
     intermediate node stamps on relayed downstream pushes — must see
     the reply's CSN, not the previous one. *)
  (match reply.Protocol.cookie with
  | Some _ as c -> t.cookie <- c
  | None -> ());
  (match reply.Protocol.kind with
  | Protocol.Initial_content -> prune t ~keep:(fun _ -> false)
  | Protocol.Incremental -> ()
  | Protocol.Degraded ->
      (* Only retained or re-sent entries survive. *)
      let keep =
        List.fold_left
          (fun acc a ->
            match a with
            | Action.Add e | Action.Modify e -> Dn.Set.add (Entry.dn e) acc
            | Action.Retain dn -> Dn.Set.add dn acc
            | Action.Delete dn -> Dn.Set.remove dn acc)
          Dn.Set.empty reply.Protocol.actions
      in
      prune t ~keep:(fun dn -> Dn.Set.mem dn keep));
  List.iter (apply_action t) reply.Protocol.actions

(* --- Synchronization over a transport -------------------------------- *)

let default_attempts = 4
let default_backoff = 1

(* Whether an established session recovered through a full or degraded
   resynchronization rather than a normal incremental replay. *)
let recovered ~had_cookie (reply : Protocol.reply) =
  had_cookie && reply.Protocol.kind <> Protocol.Incremental

(* Bounded retry with exponential backoff, in modelled ticks: attempt
   [i] failing costs [backoff * 2^(i-1)] ticks before the next try. *)
let with_retries ~max_attempts ~backoff ~send ~accept =
  let rec go attempt waited =
    match send () with
    | Ok reply -> Ok (accept reply ~attempts:attempt ~waited)
    | Error (Transport.Server msg) -> Error (Rejected msg)
    | Error (Transport.Net failure) ->
        if attempt >= max_attempts then
          Error (Exhausted { attempts = attempt; last = failure })
        else go (attempt + 1) (waited + (backoff * (1 lsl (attempt - 1))))
  in
  go 1 0

let sync_async ?(max_attempts = default_attempts) ?(backoff = default_backoff)
    ?(from = "consumer") t transport ~host k =
  let had_cookie = t.cookie <> None in
  let engine = Network.engine (Transport.network transport) in
  let rec attempt n waited =
    let request = { Protocol.mode = Protocol.Poll; cookie = t.cookie } in
    Transport.exchange_async transport ~host ~from request t.query (fun result ->
        match result with
        | Ok reply ->
            apply_reply t reply;
            k
              (Ok
                 {
                   reply;
                   attempts = n;
                   backoff = waited;
                   resynced = recovered ~had_cookie reply;
                 })
        | Error (Transport.Server msg) -> k (Error (Rejected msg))
        | Error (Transport.Net failure) ->
            if n >= max_attempts then
              k (Error (Exhausted { attempts = n; last = failure }))
            else begin
              let wait = backoff * (1 lsl (n - 1)) in
              let retry () = attempt (n + 1) (waited + wait) in
              match engine with
              (* The backoff is a real timer: a retrying consumer loses
                 virtual time equal to the ticks it accounts, so the
                 [backoff] stat equals elapsed waiting time. *)
              | Some e -> Ldap_sim.Engine.after e ~delay:wait retry
              | None -> retry ()
            end)
  in
  attempt 1 0

let sync_over ?(max_attempts = default_attempts) ?(backoff = default_backoff)
    ?(from = "consumer") t transport ~host =
  match Network.engine (Transport.network transport) with
  | Some e when not (Ldap_sim.Engine.running e) ->
      let cell = ref None in
      sync_async ~max_attempts ~backoff ~from t transport ~host (fun r ->
          cell := Some r);
      Ldap_sim.Engine.run e;
      (match !cell with
      | Some r -> r
      | None -> Error (Exhausted { attempts = 0; last = Network.Timeout }))
  | _ ->
      let had_cookie = t.cookie <> None in
      with_retries ~max_attempts ~backoff
        ~send:(fun () ->
          let request = { Protocol.mode = Protocol.Poll; cookie = t.cookie } in
          Transport.exchange transport ~host ~from request t.query)
        ~accept:(fun reply ~attempts ~waited ->
          apply_reply t reply;
          { reply; attempts; backoff = waited; resynced = recovered ~had_cookie reply })

(* --- Merkle anti-entropy --------------------------------------------- *)

(* Each application is funnelled through {!apply_reply} as a synthetic
   incremental reply, so the shipped entries, the deletions and the
   server's resume cookie land in one WAL record — merkle repair gets
   the same cookie/content atomicity as a polled reply. *)
let merkle_sync ?config ?max_rounds ?(from = "consumer") t transport ~host =
  let old_cookie = t.cookie in
  let result =
    Ldap_antientropy.Exchange.reconcile ?config ?max_rounds
      ~local:(fun () -> Content_store.to_seq t.entries)
      ~apply:(fun ~upserts ~deletes ~cookie ->
        let actions =
          List.map (fun dn -> Action.Delete dn) deletes
          @ List.map (fun e -> Action.Add e) upserts
        in
        apply_reply t { Protocol.kind = Protocol.Incremental; actions; cookie })
      ~rpc:(fun request ->
        Transport.tree_exchange transport ~host ~from request t.query
        |> Result.map_error Transport.error_to_string)
      ()
  in
  (* The reconciliation minted a fresh session; release the one the old
     cookie pinned so the server does not keep history for it. *)
  (match result with
  | Ok { Ldap_antientropy.Exchange.converged = true; _ } -> (
      match old_cookie with
      | Some c when t.cookie <> old_cookie -> (
          match Transport.endpoint transport host with
          | Some ep -> ep.Transport.ep_abandon ~cookie:c
          | None -> ())
      | _ -> ())
  | _ -> ());
  result

(* --- Persist mode ---------------------------------------------------- *)

let persist_alive t =
  match t.conn with Some c -> Transport.conn_alive c | None -> false

let pause_connection t =
  match t.conn with Some c -> Transport.pause c | None -> ()

let resume_connection t =
  match t.conn with Some c -> Transport.resume c | None -> ()

let connect_persist ?(max_attempts = default_attempts) ?(backoff = default_backoff)
    ?(from = "consumer") ?(observe = fun (_ : Action.t) -> ()) t transport ~host =
  let had_cookie = t.cookie <> None in
  let push a =
    journal_w t (fun w -> action_record w a);
    apply_action t a;
    observe a
  in
  with_retries ~max_attempts ~backoff
    ~send:(fun () ->
      let request = { Protocol.mode = Protocol.Persist; cookie = t.cookie } in
      match Transport.connect transport ~host ~from ~push request t.query with
      | Ok (reply, conn) ->
          (match t.conn with Some old -> Transport.kill old | None -> ());
          t.conn <- Some conn;
          Ok reply
      | Error _ as e -> e)
    ~accept:(fun reply ~attempts ~waited ->
      apply_reply t reply;
      { reply; attempts; backoff = waited; resynced = recovered ~had_cookie reply })

let ensure_persist ?max_attempts ?backoff ?from ?observe t transport ~host =
  if persist_alive t then Ok None
  else
    match connect_persist ?max_attempts ?backoff ?from ?observe t transport ~host with
    | Ok outcome -> Ok (Some outcome)
    | Error e -> Error e

(* --- Co-located compatibility path ----------------------------------- *)

let loopback_for t master =
  match t.loopback with
  | Some (m, transport) when m == master -> transport
  | Some _ | None ->
      let transport = Transport.loopback master in
      t.loopback <- Some (master, transport);
      transport

let sync t master =
  match sync_over t (loopback_for t master) ~host:Transport.loopback_host with
  | Ok outcome -> Ok outcome.reply
  | Error e -> Error (sync_error_to_string e)

(* --- Durable state --------------------------------------------------- *)

let attach_store t store = t.store <- Some store
let detach_store t = t.store <- None
let store t = t.store

let checkpoint t =
  match t.store with
  | None -> ()
  | Some s ->
      Ldap_store.Store.checkpoint_w s (fun w ->
          let m = DW.mark w in
          let me = DW.mark w in
          (* Backwards writer: bindings emitted in descending DN order
             so the image lists them ascending — byte-identical to the
             Dn.Map-era snapshots whatever the store's slot order. *)
          let sorted =
            List.sort
              (fun a b -> Dn.compare (Entry.dn b) (Entry.dn a))
              (Content_store.to_list t.entries)
          in
          List.iter (fun e -> DW.entry w e) sorted;
          DW.close_seq w me;
          DW.option w (DW.octets w) t.cookie;
          DW.close_seq w m)

let replay_record t payload =
  Ldap_store.Codec.decode
    (fun c ->
      let inner = Der.read_seq c in
      match Der.read_enum inner with
      | 0 -> apply_reply t (Store_codec.read_reply inner)
      | 1 -> apply_action t (Store_codec.read_action inner)
      | n ->
          raise
            (Ber_codec.Decode_error (Printf.sprintf "bad consumer record %d" n)))
    payload

let recover schema query store =
  let ( let* ) = Result.bind in
  let recovery = Ldap_store.Store.recover store in
  let t = create schema query in
  let* () =
    match recovery.Ldap_store.Store.snapshot with
    | None -> Ok ()
    | Some payload ->
        Ldap_store.Codec.decode
          (fun c ->
            let inner = Der.read_seq c in
            t.cookie <- Store_codec.read_cookie_opt inner;
            let entries = Der.read_seq inner in
            while not (Der.at_end entries) do
              Content_store.upsert t.entries (Der.read_entry entries)
            done)
          payload
  in
  let* () =
    List.fold_left
      (fun acc payload ->
        let* () = acc in
        replay_record t payload)
      (Ok ()) recovery.Ldap_store.Store.records
  in
  t.store <- Some store;
  Ok (t, recovery)

let entries t = Content_store.to_list t.entries
let entries_seq t = Content_store.to_seq t.entries
let content t = t.entries

let dns t =
  Content_store.fold t.entries ~init:Dn.Set.empty ~f:(fun acc e ->
      Dn.Set.add (Entry.dn e) acc)

let find t dn = Content_store.find t.entries dn
let size t = Content_store.size t.entries
