open Ldap

type t = {
  query : Query.t;
  mutable entries : Entry.t Dn.Map.t;
  mutable cookie : string option;
  mutable conn : Transport.conn option;
  mutable loopback : (Master.t * Transport.t) option;
}

type outcome = {
  reply : Protocol.reply;
  attempts : int;
  backoff : int;
  resynced : bool;
}

type sync_error =
  | Exhausted of { attempts : int; last : Network.failure }
  | Rejected of string

let sync_error_to_string = function
  | Rejected msg -> msg
  | Exhausted { attempts; last } ->
      Printf.sprintf "sync failed after %d attempts: %s" attempts
        (Network.failure_to_string last)

let create schema query =
  ignore schema;
  { query; entries = Dn.Map.empty; cookie = None; conn = None; loopback = None }

let query t = t.query
let cookie t = t.cookie

let apply_action t = function
  | Action.Add e | Action.Modify e ->
      t.entries <- Dn.Map.add (Entry.dn e) e t.entries
  | Action.Delete dn -> t.entries <- Dn.Map.remove dn t.entries
  | Action.Retain _ -> ()

let apply_reply t (reply : Protocol.reply) =
  (match reply.Protocol.kind with
  | Protocol.Initial_content -> t.entries <- Dn.Map.empty
  | Protocol.Incremental -> ()
  | Protocol.Degraded ->
      (* Only retained or re-sent entries survive. *)
      let keep =
        List.fold_left
          (fun acc a ->
            match a with
            | Action.Add e | Action.Modify e -> Dn.Set.add (Entry.dn e) acc
            | Action.Retain dn -> Dn.Set.add dn acc
            | Action.Delete dn -> Dn.Set.remove dn acc)
          Dn.Set.empty reply.Protocol.actions
      in
      t.entries <- Dn.Map.filter (fun dn _ -> Dn.Set.mem dn keep) t.entries);
  List.iter (apply_action t) reply.Protocol.actions;
  match reply.Protocol.cookie with
  | Some _ as c -> t.cookie <- c
  | None -> ()

(* --- Synchronization over a transport -------------------------------- *)

let default_attempts = 4
let default_backoff = 1

(* Whether an established session recovered through a full or degraded
   resynchronization rather than a normal incremental replay. *)
let recovered ~had_cookie (reply : Protocol.reply) =
  had_cookie && reply.Protocol.kind <> Protocol.Incremental

(* Bounded retry with exponential backoff, in modelled ticks: attempt
   [i] failing costs [backoff * 2^(i-1)] ticks before the next try. *)
let with_retries ~max_attempts ~backoff ~send ~accept =
  let rec go attempt waited =
    match send () with
    | Ok reply -> Ok (accept reply ~attempts:attempt ~waited)
    | Error (Transport.Server msg) -> Error (Rejected msg)
    | Error (Transport.Net failure) ->
        if attempt >= max_attempts then
          Error (Exhausted { attempts = attempt; last = failure })
        else go (attempt + 1) (waited + (backoff * (1 lsl (attempt - 1))))
  in
  go 1 0

let sync_over ?(max_attempts = default_attempts) ?(backoff = default_backoff)
    ?(from = "consumer") t transport ~host =
  let had_cookie = t.cookie <> None in
  with_retries ~max_attempts ~backoff
    ~send:(fun () ->
      let request = { Protocol.mode = Protocol.Poll; cookie = t.cookie } in
      Transport.exchange transport ~host ~from request t.query)
    ~accept:(fun reply ~attempts ~waited ->
      apply_reply t reply;
      { reply; attempts; backoff = waited; resynced = recovered ~had_cookie reply })

(* --- Persist mode ---------------------------------------------------- *)

let persist_alive t =
  match t.conn with Some c -> Transport.conn_alive c | None -> false

let connect_persist ?(max_attempts = default_attempts) ?(backoff = default_backoff)
    ?(from = "consumer") ?(observe = fun (_ : Action.t) -> ()) t transport ~host =
  let had_cookie = t.cookie <> None in
  let push a =
    apply_action t a;
    observe a
  in
  with_retries ~max_attempts ~backoff
    ~send:(fun () ->
      let request = { Protocol.mode = Protocol.Persist; cookie = t.cookie } in
      match Transport.connect transport ~host ~from ~push request t.query with
      | Ok (reply, conn) ->
          (match t.conn with Some old -> Transport.kill old | None -> ());
          t.conn <- Some conn;
          Ok reply
      | Error _ as e -> e)
    ~accept:(fun reply ~attempts ~waited ->
      apply_reply t reply;
      { reply; attempts; backoff = waited; resynced = recovered ~had_cookie reply })

let ensure_persist ?max_attempts ?backoff ?from ?observe t transport ~host =
  if persist_alive t then Ok None
  else
    match connect_persist ?max_attempts ?backoff ?from ?observe t transport ~host with
    | Ok outcome -> Ok (Some outcome)
    | Error e -> Error e

(* --- Co-located compatibility path ----------------------------------- *)

let loopback_for t master =
  match t.loopback with
  | Some (m, transport) when m == master -> transport
  | Some _ | None ->
      let transport = Transport.loopback master in
      t.loopback <- Some (master, transport);
      transport

let sync t master =
  match sync_over t (loopback_for t master) ~host:Transport.loopback_host with
  | Ok outcome -> Ok outcome.reply
  | Error e -> Error (sync_error_to_string e)

let entries t = List.map snd (Dn.Map.bindings t.entries)
let dns t = Dn.Map.fold (fun dn _ acc -> Dn.Set.add dn acc) t.entries Dn.Set.empty
let find t dn = Dn.Map.find_opt dn t.entries
let size t = Dn.Map.cardinal t.entries
