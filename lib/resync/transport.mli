(** The network leg of a ReSync session.

    Consumers do not talk to a {!Master} directly: every exchange —
    poll, persist establishment, sync_end — is routed through a
    transport bound to an {!Ldap.Network} topology, where it is
    subject to the network's fault schedule (drops, refusals,
    partitions) and its byte/PDU accounting.  Persistent sessions get
    a connection handle whose pushed notifications also traverse the
    fault layer; any lost push breaks the connection, which the
    consumer must detect and re-establish (section 5's disrupted
    sessions). *)

open Ldap

type t

type error =
  | Net of Network.failure
      (** Transport-level loss: the request may or may not have been
          processed by the master. *)
  | Server of string  (** The master rejected the request. *)

val error_to_string : error -> string

val create : ?faults:Network.Faults.t -> Network.t -> t
val network : t -> Network.t
val faults : t -> Network.Faults.t option

val add_master : t -> name:string -> Master.t -> unit
val master : t -> string -> Master.t option

val loopback_host : string

val loopback : Master.t -> t
(** A private single-link topology with the given master registered
    under {!loopback_host} and no fault schedule: the co-located
    transport used when a caller holds a master directly. *)

val exchange :
  t -> host:string -> ?from:string -> Protocol.request -> Query.t ->
  (Protocol.reply, error) result
(** One poll/sync_end exchange against the master at [host].  [from]
    (default ["consumer"]) names the client end for partition checks
    and accounting. *)

(** A persistent-search connection. *)
type conn

val conn_alive : conn -> bool
val kill : conn -> unit
(** Client-side teardown: subsequent pushes are discarded. *)

val connect :
  t ->
  host:string ->
  ?from:string ->
  push:(Action.t -> unit) ->
  Protocol.request ->
  Query.t ->
  (Protocol.reply * conn, error) result
(** Establishes a persist-mode session.  Pushed actions traverse the
    fault layer: a partitioned link or a lost push marks the
    connection dead and discards that and all later notifications —
    the master keeps pushing into the void until the session expires,
    exactly like a half-open TCP connection.  If the establishment
    reply itself is lost, the master-side session exists but the
    returned error carries no connection: the consumer must retry. *)
