(** The network leg of a ReSync session.

    Consumers do not talk to a server directly: every exchange — poll,
    persist establishment, sync_end — is routed through a transport
    bound to an {!Ldap.Network} topology, where it is subject to the
    network's fault schedule (drops, refusals, partitions) and its
    byte/PDU accounting.  Persistent sessions get a connection handle
    whose pushed notifications also traverse the fault layer; any lost
    push breaks the connection, which the consumer must detect and
    re-establish (section 5's disrupted sessions).

    A transport serves {e endpoints}: anything that can answer ReSync
    requests.  The root {!Master} is one kind of endpoint; an
    intermediate topology node ({!Ldap_topology.Node}-style) re-serving
    its replica content downstream is another.  Consumers address
    endpoints by host name and cannot tell the difference — which is
    exactly what lets a cascading topology re-parent a consumer from a
    dead intermediate node to its grandparent. *)

open Ldap

type t

type error =
  | Net of Network.failure
      (** Transport-level loss: the request may or may not have been
          processed by the server. *)
  | Server of string  (** The server rejected the request. *)

val error_to_string : error -> string

(** A ReSync-serving endpoint registered under a host name. *)
type endpoint = {
  ep_schema : Schema.t;  (** Schema governing the served content. *)
  ep_handle :
    push:Protocol.push_channel option ->
    Protocol.request ->
    Query.t ->
    (Protocol.reply, string) result;
      (** Serves one resync exchange; [push] is the notification channel
          of a persist-mode session.  Its send status (see
          {!Protocol.push_status}) is what the server's bounded
          outbound queues key off. *)
  ep_abandon : cookie:string -> unit;
      (** Control-plane session teardown (client abandoned). *)
  ep_estimate : Query.t -> int;
      (** Entries currently held for the query — the size estimate used
          by benefit/size filter selection. *)
  ep_tree :
    Ldap_antientropy.Exchange.request ->
    Query.t ->
    (Ldap_antientropy.Exchange.reply, string) result;
      (** Serves one Merkle anti-entropy walk step over the content the
          endpoint holds for the query (see
          {!Ldap_antientropy.Exchange.serve}). *)
}

val create : ?faults:Network.Faults.t -> Network.t -> t
val network : t -> Network.t
val faults : t -> Network.Faults.t option

val add_endpoint : t -> name:string -> endpoint -> unit
(** Registers (or replaces) an endpoint under a host name. *)

val remove_endpoint : t -> name:string -> unit
(** Unregisters the endpoint: the host becomes unreachable — how a
    topology kills a node.  Established sessions at other endpoints are
    unaffected. *)

val endpoint : t -> string -> endpoint option

val add_master : t -> name:string -> Master.t -> unit
(** Registers a root master as an endpoint under the host name. *)

val master : t -> string -> Master.t option
(** The master registered under the name, if the endpoint there is a
    root master (an intermediate node endpoint answers [None]). *)

val loopback_host : string

val loopback : Master.t -> t
(** A private single-link topology with the given master registered
    under {!loopback_host} and no fault schedule: the co-located
    transport used when a caller holds a master directly. *)

val exchange :
  t -> host:string -> ?from:string -> Protocol.request -> Query.t ->
  (Protocol.reply, error) result
(** One poll/sync_end exchange against the endpoint at [host].  [from]
    (default ["consumer"]) names the client end for partition checks
    and accounting. *)

val exchange_async :
  t ->
  host:string ->
  ?from:string ->
  Protocol.request ->
  Query.t ->
  ((Protocol.reply, error) result -> unit) ->
  unit
(** Asynchronous form of {!exchange} over {!Ldap.Network.rpc_send}:
    with an engine attached to the underlying network the exchange is
    delivered as timed events and the continuation fires when the reply
    (or failure) arrives; without one it fires immediately. *)

val tree_exchange :
  t ->
  host:string ->
  ?from:string ->
  Ldap_antientropy.Exchange.request ->
  Query.t ->
  (Ldap_antientropy.Exchange.reply, error) result
(** One Merkle anti-entropy walk step against the endpoint at [host],
    over the same RPC layer (and fault schedule, and byte accounting)
    as the resync exchanges. *)

(** A persistent-search connection. *)
type conn

val conn_alive : conn -> bool
val kill : conn -> unit
(** Client-side teardown: subsequent pushes are discarded. *)

val pause : conn -> unit
(** Models a receiver that stopped draining its socket: while paused,
    every server-side send on this connection answers
    [Protocol.Push_stalled] and delivers nothing — the flow-control
    signal the master's bounded persist queues absorb. *)

val resume : conn -> unit
(** Clears {!pause}.  Queued actions at the server are delivered the
    next time it touches the session (an update dispatch or an explicit
    flush), not by this call. *)

val connect :
  t ->
  host:string ->
  ?from:string ->
  push:(Action.t -> unit) ->
  Protocol.request ->
  Query.t ->
  (Protocol.reply * conn, error) result
(** Establishes a persist-mode session.  Pushed actions traverse the
    fault layer: a partitioned link or a lost push marks the
    connection dead and discards that and all later notifications —
    the server keeps pushing into the void until the session expires,
    exactly like a half-open TCP connection.  If the establishment
    reply itself is lost, the server-side session exists but the
    returned error carries no connection: the consumer must retry.

    With an engine attached to the network, each delivered push is
    scheduled after one link-latency draw; deliveries stay FIFO per
    connection even when a later push draws a smaller latency. *)
