open Ldap

let member schema (q : Query.t) entry =
  Query.in_scope q (Entry.dn entry) && Filter.matches schema q.Query.filter entry

(* A membership test with the filter compiled once.  Sessions live for
   many updates, so the master caches one of these per session and
   classifies every affected update against bytecode instead of
   re-walking the filter AST. *)
type matcher = { mq : Query.t; prog : Ldap_compile.Prog.t; mschema : Schema.t }

let matcher schema (q : Query.t) =
  { mq = q; prog = Filter.compile schema q.Query.filter; mschema = schema }

let matcher_query m = m.mq

let matches m entry =
  Query.in_scope m.mq (Entry.dn entry)
  && Ldap_compile.Prog.matches m.prog (Entry.compiled m.mschema entry)

let current backend q =
  match Backend.search backend q with
  | Ok { Backend.entries; _ } -> entries
  | Error _ -> []

let current_dns backend q =
  (* Evaluate without attribute selection cost: DNs suffice. *)
  let slim = { q with Query.attrs = Query.Select [ "objectclass" ] } in
  List.fold_left
    (fun acc e -> Dn.Set.add (Entry.dn e) acc)
    Dn.Set.empty (current backend slim)

type transition =
  | Stays_out
  | Moves_in of Entry.t
  | Moves_out of Dn.t
  | Changes_within of Entry.t
  | Renames_within of { old_dn : Dn.t; entry : Entry.t }

let classify_with is_member ~before ~after =
  let was_in = match before with Some e -> is_member e | None -> false in
  let is_in = match after with Some e -> is_member e | None -> false in
  match (was_in, is_in, before, after) with
  | false, false, _, _ -> Stays_out
  | false, true, _, Some e -> Moves_in e
  | true, false, Some e, _ -> Moves_out (Entry.dn e)
  | true, true, Some b, Some a ->
      if Dn.equal (Entry.dn b) (Entry.dn a) then Changes_within a
      else Renames_within { old_dn = Entry.dn b; entry = a }
  | false, true, _, None | true, false, None, _ | true, true, _, None
  | true, true, None, _ ->
      (* Membership implies the corresponding image exists. *)
      assert false

let classify schema q ~before ~after =
  classify_with (member schema q) ~before ~after

let classify_m m ~before ~after = classify_with (matches m) ~before ~after

let actions_of_transition = function
  | Stays_out -> []
  | Moves_in e -> [ Action.Add e ]
  | Moves_out dn -> [ Action.Delete dn ]
  | Changes_within e -> [ Action.Modify e ]
  | Renames_within { old_dn; entry } -> [ Action.Delete old_dn; Action.Add entry ]
