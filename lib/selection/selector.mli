(** Periodic benefit/size filter selection (section 6.2).

    The paper's simplification of the evolutions/revolutions of
    Kapitskaia et al. [12]: hit statistics are maintained for candidate
    (generalized) filters and, every [revolution_interval] queries, the
    stored filter set is re-chosen greedily by benefit-to-size ratio
    under a replica size budget.  Between revolutions the stored set is
    untouched, which keeps update traffic low — the trade-off Figures
    5 and 7 sweep via the interval R. *)

open Ldap

type config = {
  rules : Generalize.rule list;  (** How to generalize observed queries. *)
  revolution_interval : int;  (** R: queries between revolutions. *)
  size_budget : int;  (** Max total replicated entries. *)
  min_hits : int;  (** Candidates below this benefit are ignored. *)
  include_queries : bool;  (** Also treat each observed query itself as
                               a candidate — useful when single results
                               (e.g. department entries) are worthwhile
                               replication units. *)
}

type t

val create : config -> Ldap_replication.Filter_replica.t -> t
val config : t -> config

val observe : t -> Query.t -> unit
(** Feed one user query: candidate statistics are updated and, at
    every [revolution_interval]-th call, a revolution re-selects the
    stored filters. *)

val force_revolution : t -> unit

val schedule_revolutions : t -> Ldap_sim.Engine.t -> every:int -> until:int -> unit
(** Registers revolutions as periodic clock events: every [every]
    virtual ticks up to [until] a revolution re-selects the stored
    filters and resets the query-count trigger, turning the interval R
    into an actual period of virtual time rather than a query count. *)


val revolutions : t -> int

val failed_installs : t -> int
(** Install attempts that failed across all revolutions (unsatisfiable
    candidate or fetch error).  Failures no longer vanish silently:
    the [ldapctl adapt] report surfaces this count. *)

val candidate_count : t -> int

val install_static : Ldap_replication.Filter_replica.t -> Query.t list -> (unit, string) result
(** Statically configure a filter set (no dynamic selection) — used
    for query types whose generalized filters are too large to swap
    dynamically, like the serialNumber blocks of section 7.3. *)
