open Ldap

type stats = { mutable hits : int; mutable size : int option }

type t = { table : (string, Query.t * stats) Hashtbl.t }

let key (q : Query.t) =
  Printf.sprintf "%s|%d|%s" (Dn.canonical q.Query.base)
    (Scope.to_int q.Query.scope)
    (Filter.to_string (Filter.normalize q.Query.filter))

let create () = { table = Hashtbl.create 64 }

let observe t q =
  let k = key q in
  match Hashtbl.find_opt t.table k with
  | Some (_, s) -> s.hits <- s.hits + 1
  | None -> Hashtbl.replace t.table k (q, { hits = 1; size = None })

let size_of t q ~estimate =
  let k = key q in
  match Hashtbl.find_opt t.table k with
  | Some (_, s) -> (
      match s.size with
      | Some n -> n
      | None ->
          let n = estimate q in
          s.size <- Some n;
          n)
  | None -> estimate q

let reset_hits t = Hashtbl.iter (fun _ (_, s) -> s.hits <- 0) t.table

let invalidate_sizes t =
  Hashtbl.iter (fun _ (_, s) -> s.size <- None) t.table

let fold t ~init ~f = Hashtbl.fold (fun _ (q, s) acc -> f acc q s) t.table init
let count t = Hashtbl.length t.table

let ranked t ~estimate =
  let items =
    fold t ~init:[] ~f:(fun acc q s ->
        let size = max 1 (size_of t q ~estimate) in
        let ratio = float_of_int s.hits /. float_of_int size in
        (q, s, ratio) :: acc)
  in
  List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a) items
