open Ldap
module R = Ldap_replication

type config = {
  rules : Generalize.rule list;
  revolution_interval : int;
  size_budget : int;
  min_hits : int;
  include_queries : bool;
}

type t = {
  config : config;
  replica : R.Filter_replica.t;
  candidates : Candidate.t;
  mutable since_revolution : int;
  mutable revolutions : int;
  mutable failed_installs : int;
}

let create config replica =
  {
    config;
    replica;
    candidates = Candidate.create ();
    since_revolution = 0;
    revolutions = 0;
    failed_installs = 0;
  }

let config t = t.config

let estimate t q = R.Filter_replica.estimate_size t.replica q

(* Greedy selection under the size budget, best benefit/size first. *)
let select t =
  let ranked = Candidate.ranked t.candidates ~estimate:(estimate t) in
  let budget = t.config.size_budget in
  let chosen, _ =
    List.fold_left
      (fun (chosen, used) (q, (s : Candidate.stats), _) ->
        if s.Candidate.hits < t.config.min_hits then (chosen, used)
        else
          let size = Candidate.size_of t.candidates q ~estimate:(estimate t) in
          if used + size <= budget && size > 0 then (q :: chosen, used + size)
          else (chosen, used))
      ([], 0) ranked
  in
  chosen

let revolution t =
  t.revolutions <- t.revolutions + 1;
  (* Size estimates age across the interval as the directory churns;
     re-price every candidate before re-choosing. *)
  Candidate.invalidate_sizes t.candidates;
  let chosen = select t in
  let stored = R.Filter_replica.stored_filters t.replica in
  let keep q = List.exists (Query.equal q) chosen in
  List.iter (fun q -> if not (keep q) then R.Filter_replica.remove_filter t.replica q) stored;
  List.iter
    (fun q ->
      if not (List.exists (Query.equal q) stored) then
        match R.Filter_replica.install_filter t.replica q with
        | Ok () -> ()
        | Error _ ->
            (* Unsatisfiable or failed fetch: the candidate will be
               re-ranked next interval, but the miss is counted — a
               replica that keeps failing its installs looks exactly
               like one that chose badly unless the report says so. *)
            t.failed_installs <- t.failed_installs + 1)
    chosen;
  Candidate.reset_hits t.candidates

let observe t q =
  let gens = Generalize.candidates t.config.rules q in
  let gens = if t.config.include_queries then q :: gens else gens in
  List.iter (Candidate.observe t.candidates) gens;
  t.since_revolution <- t.since_revolution + 1;
  if t.since_revolution >= t.config.revolution_interval then begin
    t.since_revolution <- 0;
    revolution t
  end

let force_revolution t = revolution t

let schedule_revolutions t engine ~every ~until =
  Ldap_sim.Engine.every engine ~every ~until (fun () ->
      t.since_revolution <- 0;
      revolution t)
let revolutions t = t.revolutions
let failed_installs t = t.failed_installs
let candidate_count t = Candidate.count t.candidates

let install_static replica queries =
  List.fold_left
    (fun acc q ->
      match acc with
      | Error _ as e -> e
      | Ok () -> R.Filter_replica.install_filter replica q)
    (Ok ()) queries
