(** Candidate-filter statistics (section 6.2).

    For every generalized filter derived from the observed workload the
    table tracks the number of hits since the last revolution (the
    {e benefit}) and a cached size estimate (entries matching at the
    master).  Benefit-to-size ratios drive the periodic selection. *)

open Ldap

type stats = { mutable hits : int; mutable size : int option }

type t

val create : unit -> t
val observe : t -> Query.t -> unit
(** Bump the hit count of a candidate (registering it first if new). *)

val size_of : t -> Query.t -> estimate:(Query.t -> int) -> int
(** Size estimate, computed once through [estimate] then cached. *)

val reset_hits : t -> unit
(** Start of a new revolution interval. *)

val invalidate_sizes : t -> unit
(** Drops every cached size estimate, forcing the next {!size_of} (or
    {!ranked}) to re-ask the estimator.  Called at each revolution:
    without it, benefit/size ranking keeps pricing candidates at
    whatever the directory looked like when they were first observed,
    and drifts as it churns. *)

val fold : t -> init:'a -> f:('a -> Query.t -> stats -> 'a) -> 'a
val count : t -> int

val ranked : t -> estimate:(Query.t -> int) -> (Query.t * stats * float) list
(** Candidates with their benefit/size ratio, best first.  Candidates
    with zero hits are included (ratio 0) so callers can prune. *)
