(** Replica performance counters: the section 7 metrics.

    Hit ratio is hits / queries; update traffic is split into resync
    traffic (keeping stored content in sync) and fetch traffic
    (bringing in newly selected filters during revolutions) — the two
    components of section 7.3.

    In a cascading topology a replica has two faces, counted
    separately so tiered traffic is attributable per link:

    - {e upstream-facing}: traffic on the link to this replica's
      master — the [sync_*], [fetch_*] and recovery counters;
    - {e downstream-facing}: ReSync traffic this replica re-serves to
      its own consumers when acting as an intermediate master — the
      [served_*] counters. *)

type t = {
  mutable queries : int;
  mutable hits : int;
  mutable entries_returned : int;
  mutable sync_entries : int;  (** Upstream resync traffic, in entries. *)
  mutable sync_bytes : int;
  mutable sync_actions : int;  (** Including DN-only deletes/retains. *)
  mutable fetch_entries : int;  (** Revolution fetch traffic, in entries. *)
  mutable fetch_bytes : int;
  mutable comparisons : int;  (** Containment checks performed. *)
  mutable sync_retries : int;  (** Re-sent exchanges after transport loss. *)
  mutable sync_backoff_ticks : int;  (** Modelled ticks spent backing off. *)
  mutable resyncs : int;
      (** Established sessions recovered through a full or degraded
          resynchronization after a disruption. *)
  mutable recovery_bytes : int;  (** Bytes of those recovery replies. *)
  mutable merkle_syncs : int;
      (** Merkle anti-entropy reconciliations driven over the upstream
          link. *)
  mutable merkle_bytes : int;
      (** Total modelled wire bytes of those walks — hash messages both
          ways plus the shipped segment entries. *)
  mutable sync_failures : int;  (** Polls abandoned with the retry budget spent. *)
  mutable served_replies : int;
      (** Downstream-facing: resync replies served to own consumers. *)
  mutable served_entries : int;  (** Downstream traffic, in entries. *)
  mutable served_bytes : int;  (** Downstream traffic, modelled bytes. *)
  mutable served_actions : int;
      (** Downstream actions, including pushed persist notifications. *)
}

val create : unit -> t
val reset : t -> unit
val hit_ratio : t -> float
(** 0 when no queries were recorded. *)

val total_update_entries : t -> int
(** sync + fetch, the paper's Figures 6-7 y-axis. *)

val record_query : t -> hit:bool -> returned:int -> unit
val add_reply : t -> Ldap_resync.Protocol.reply -> fetch:bool -> unit

val record_sync_outcome : t -> Ldap_resync.Consumer.outcome -> unit
(** Accounts one successful synchronization: its retries and backoff,
    and — when it recovered a disrupted session — the resync and the
    bytes the recovery reply cost. *)

val record_sync_failure : t -> unit

val record_merkle : t -> Ldap_antientropy.Exchange.report -> unit
(** Accounts one Merkle anti-entropy reconciliation: its request and
    reply bytes land in [merkle_bytes] (upstream-facing, like
    [sync_bytes]). *)

val record_served_reply : t -> Ldap_resync.Protocol.reply -> unit
(** Accounts one reply served downstream by this replica acting as an
    intermediate master. *)

val record_served_push : t -> Ldap_resync.Action.t -> unit
(** Accounts one persist-mode action pushed downstream. *)

val pp : Format.formatter -> t -> unit
