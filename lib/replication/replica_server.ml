open Ldap

type backend =
  | Filter_backend of Filter_replica.t
  | Subtree_backend of Subtree_replica.t

type t = { master_host : string; backend : backend }

let of_filter_replica ~master_host replica =
  { master_host; backend = Filter_backend replica }

let of_subtree_replica ~master_host replica =
  { master_host; backend = Subtree_backend replica }

let sync t =
  match t.backend with
  | Filter_backend r -> Filter_replica.sync r
  | Subtree_backend r -> Subtree_replica.sync r

let referral_to t = Referral.make ~host:t.master_host ()

let handle_search t q =
  let answer =
    match t.backend with
    | Filter_backend r -> Filter_replica.answer r q
    | Subtree_backend r -> Subtree_replica.answer r q
  in
  match answer with
  | Replica.Answered entries -> Server.Entries { Backend.entries; references = [] }
  | Replica.Referral -> Server.Referral [ referral_to t ]

let register t net ~name = Network.add_handler net ~name (handle_search t)
