open Ldap
module C = Ldap_containment
module Resync = Ldap_resync

(* Durable state: one meta store (installed filters, slot-numbered so
   consumer store names stay stable across restarts) plus one consumer
   store per stored filter, all on the same medium under a common name
   prefix. *)
type durable = {
  medium : Ldap_store.Medium.t;
  prefix : string;
  meta : Ldap_store.Store.t;
  sync_each : bool;
  mutable slots : (Query.t * int) list;
  mutable next_slot : int;
}

type t = {
  schema : Schema.t;
  transport : Resync.Transport.t;
  mutable master_host : string;
  host : string;
  index : Resync.Consumer.t C.Containment_index.t;
  cache : Query_cache.t;
  stats : Stats.t;
  mutable on_change :
    (stored:Query.t ->
    before:Entry.t option ->
    after:Entry.t option ->
    unit)
    option;
  mutable durable : durable option;
}

let upstream t =
  match Resync.Transport.endpoint t.transport t.master_host with
  | Some ep -> Some ep
  | None -> None

let master t =
  match Resync.Transport.master t.transport t.master_host with
  | Some m -> m
  | None -> invalid_arg "Filter_replica.master: upstream is not a root master"

let create_over ?(cache_capacity = 0) ?(host = "replica") transport ~master_host =
  let ep =
    match Resync.Transport.endpoint transport master_host with
    | Some ep -> ep
    | None ->
        invalid_arg
          ("Filter_replica.create_over: no endpoint registered as " ^ master_host)
  in
  let schema = ep.Resync.Transport.ep_schema in
  {
    schema;
    transport;
    master_host;
    host;
    index = C.Containment_index.create schema;
    cache = Query_cache.create schema ~capacity:cache_capacity;
    stats = Stats.create ();
    on_change = None;
    durable = None;
  }

let create ?cache_capacity master =
  create_over ?cache_capacity (Resync.Transport.loopback master)
    ~master_host:Resync.Transport.loopback_host

let schema t = t.schema
let stats t = t.stats
let transport t = t.transport
let master_host t = t.master_host
let set_on_change t f = t.on_change <- Some f

let retarget t ~master_host =
  (match Resync.Transport.endpoint t.transport master_host with
  | Some _ -> ()
  | None ->
      invalid_arg
        ("Filter_replica.retarget: no endpoint registered as " ^ master_host));
  t.master_host <- master_host;
  (* The old upstream's session ids mean nothing to the new one: keep
     each consumer's acknowledged CSN, drop the session id, and let the
     first exchange resynchronize degraded from that CSN. *)
  C.Containment_index.iter t.index ~f:(fun _ consumer ->
      match Resync.Consumer.cookie consumer with
      | Some c ->
          Resync.Consumer.set_cookie consumer (Resync.Protocol.reparent_cookie c);
          (* [set_cookie] bypasses the journal; a checkpoint (no-op
             without a store) makes the rewritten cookie durable. *)
          Resync.Consumer.checkpoint consumer
      | None -> ())

(* --- Durability ------------------------------------------------------ *)

module Der = Ber_codec.Der

(* Meta WAL records: a filter installed into a slot, or a slot's
   filter removed.  Slots number consumer stores ([<prefix>.f<slot>])
   so the name survives install/remove churn of other filters. *)
let installed_record ~slot q =
  Der.seq [ Der.enum 0; Der.integer slot; Der.query q ]

let removed_record ~slot = Der.seq [ Der.enum 1; Der.integer slot ]
let consumer_store_name d slot = Printf.sprintf "%s.f%d" d.prefix slot

let slot_of d q =
  let rec go = function
    | [] -> None
    | (q', s) :: rest -> if Query.equal q' q then Some s else go rest
  in
  go d.slots

let consumer_store d slot =
  Ldap_store.Store.create ~sync:d.sync_each d.medium
    ~name:(consumer_store_name d slot)

let meta_snapshot d =
  let slots = List.sort (fun (_, a) (_, b) -> compare a b) d.slots in
  Der.seq
    [
      Der.integer d.next_slot;
      Der.seq
        (List.map
           (fun (q, slot) -> Der.seq [ Der.integer slot; Der.query q ])
           slots);
    ]

let install_durable t q consumer =
  match t.durable with
  | None -> ()
  | Some d ->
      let slot = d.next_slot in
      d.next_slot <- slot + 1;
      d.slots <- (q, slot) :: d.slots;
      Ldap_store.Store.append d.meta (installed_record ~slot q);
      let store = consumer_store d slot in
      Resync.Consumer.attach_store consumer store;
      (* The initial content was fetched before the store existed:
         a checkpoint captures it (and the cookie) in the snapshot. *)
      Resync.Consumer.checkpoint consumer

let remove_durable t q =
  match t.durable with
  | None -> ()
  | Some d -> (
      match slot_of d q with
      | None -> ()
      | Some slot ->
          d.slots <- List.filter (fun (q', _) -> not (Query.equal q' q)) d.slots;
          Ldap_store.Store.append d.meta (removed_record ~slot);
          Ldap_store.Store.destroy (consumer_store d slot))

let sync_consumer t consumer ~fetch =
  match
    Resync.Consumer.sync_over consumer t.transport ~host:t.master_host
      ~from:t.host
  with
  | Ok outcome ->
      Stats.add_reply t.stats outcome.Resync.Consumer.reply ~fetch;
      Stats.record_sync_outcome t.stats outcome;
      Ok ()
  | Error e -> Error e

(* The session fetches the stored query's attributes plus the ones
   its filter mentions, so contained queries can be re-evaluated
   locally; answers still project to the caller's selection. *)
let make_consumer t q =
  let consumer = Resync.Consumer.create t.schema (Replica.widen_attrs q) in
  Resync.Consumer.set_on_change consumer (fun ~before ~after ->
      match t.on_change with
      | Some f -> f ~stored:q ~before ~after
      | None -> ());
  consumer

let register_consumer t q consumer =
  C.Containment_index.add t.index q consumer;
  install_durable t q consumer

let install_filter t q =
  if C.Containment_index.mem t.index q then Ok ()
  else
    let consumer = make_consumer t q in
    match sync_consumer t consumer ~fetch:true with
    | Ok () ->
        register_consumer t q consumer;
        Ok ()
    | Error e -> Error (Resync.Consumer.sync_error_to_string e)

(* --- Delta installs ---------------------------------------------------
   A filter-set transition does not have to fetch regions the replica
   already holds.  [install_filter_rescoped] covers the narrowing case:
   the new query is contained in a stored one, so its content is
   seeded wholesale from the donor consumer and the session opened
   with the reserved foreign-session cookie at the donor's
   acknowledged CSN — the upstream answers degraded from exactly
   there, shipping full entries only for members changed since and
   DN-only retains for the (already held) rest.  [install_filter_seeded]
   covers overlap without containment: seed whatever the donors hold
   that matches, then let Merkle anti-entropy ship only the differing
   segments.  Both fall back to a cold install when the cheap path's
   preconditions fail. *)

type install_how = Kept | Rescoped | Seeded | Cold

(* A donor can only seed entries whose attributes survive its own
   projection: seeding from a narrower selection would bake
   missing-attribute images into content the degraded reply then
   retains as "unchanged". *)
let donor_attrs_cover ~donor q =
  match (Replica.widen_attrs donor).Query.attrs with
  | Query.All -> true
  | Query.Select avail -> (
      match Query.attr_list (Replica.widen_attrs q).Query.attrs with
      | None -> false
      | Some needed -> List.for_all (fun a -> List.mem a avail) needed)

let donor_csn consumer =
  match Resync.Consumer.cookie consumer with
  | Some ck -> Option.map snd (Resync.Protocol.parse_cookie ck)
  | None -> None

let seed_entries t q donors =
  let wq = Replica.widen_attrs q in
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun donor ->
      List.filter_map
        (fun e ->
          let k = Dn.canonical (Entry.dn e) in
          if Hashtbl.mem seen k then None
          else begin
            Hashtbl.replace seen k ();
            Some (Resync.Action.Add e)
          end)
        (Replica.eval_over_entries t.schema wq
           (Resync.Consumer.entries_seq donor)))
    donors

let install_cold t q consumer =
  Resync.Consumer.set_cookie consumer None;
  match sync_consumer t consumer ~fetch:true with
  | Ok () ->
      register_consumer t q consumer;
      Ok Cold
  | Error e -> Error (Resync.Consumer.sync_error_to_string e)

let install_filter_rescoped t q ~donor =
  if C.Containment_index.mem t.index q then Ok Kept
  else
    let fallback () = Result.map (fun () -> Cold) (install_filter t q) in
    match C.Containment_index.find t.index donor with
    | None -> fallback ()
    | Some dc -> (
        match (donor_attrs_cover ~donor q, donor_csn dc) with
        | true, Some csn -> (
            let consumer = make_consumer t q in
            Resync.Consumer.apply_reply consumer
              {
                Resync.Protocol.kind = Resync.Protocol.Initial_content;
                actions = seed_entries t q [ dc ];
                cookie = Some (Resync.Protocol.cookie_of ~id:0 ~csn);
              };
            match sync_consumer t consumer ~fetch:false with
            | Ok () ->
                register_consumer t q consumer;
                Ok Rescoped
            | Error e -> Error (Resync.Consumer.sync_error_to_string e))
        | false, _ | _, None -> fallback ())

let remove_filter t q =
  (* End the session at the upstream before dropping local state (a
     vanished upstream just means there is no session left to end). *)
  (match C.Containment_index.find t.index q with
  | Some consumer -> (
      match (Resync.Consumer.cookie consumer, upstream t) with
      | Some cookie, Some ep -> ep.Resync.Transport.ep_abandon ~cookie
      | _ -> ())
  | None -> ());
  remove_durable t q;
  C.Containment_index.remove t.index q

let stored_filters t = C.Containment_index.fold t.index ~init:[] ~f:(fun acc q _ -> q :: acc)

let filter_count t = C.Containment_index.length t.index + Query_cache.length t.cache

let size_entries t =
  let dns =
    C.Containment_index.fold t.index ~init:Dn.Set.empty ~f:(fun acc _ consumer ->
        Dn.Set.union acc (Resync.Consumer.dns consumer))
  in
  Dn.Set.cardinal dns

let estimate_size t q =
  match upstream t with Some ep -> ep.Resync.Transport.ep_estimate q | None -> 0

let evaluable (stored : Query.t) _ q =
  Replica.filter_attrs_available ~available:(Replica.widen_attrs stored).Query.attrs q

let containing_consumer t q =
  C.Containment_index.find_container_where t.index q ~pred:(fun stored c ->
      evaluable stored c q)

let consumer_for t q = C.Containment_index.find t.index q

let answer t q =
  match containing_consumer t q with
  | Some (_, consumer) ->
      let entries =
        Replica.eval_over_entries t.schema q (Resync.Consumer.entries_seq consumer)
      in
      Stats.record_query t.stats ~hit:true ~returned:(List.length entries);
      Replica.Answered entries
  | None -> (
      match Query_cache.answer t.cache q with
      | Some entries ->
          Stats.record_query t.stats ~hit:true ~returned:(List.length entries);
          Replica.Answered entries
      | None ->
          Stats.record_query t.stats ~hit:false ~returned:0;
          Replica.Referral)

let record_miss_result t q entries = Query_cache.add t.cache q entries

let sync_where t pred =
  C.Containment_index.iter t.index ~f:(fun q consumer ->
      if pred q then
        match sync_consumer t consumer ~fetch:false with
        | Ok () -> ()
        | Error (Resync.Consumer.Exhausted _) ->
            (* The consumer keeps its cookie and content; the filter
               stays stale until a later round reaches the master. *)
            Stats.record_sync_failure t.stats
        | Error (Resync.Consumer.Rejected msg) ->
            invalid_arg ("Filter_replica.sync: " ^ msg))

let sync t = sync_where t (fun _ -> true)

let sync_async t k =
  (* Sequential CPS walk over the stored filters: one in-flight poll per
     replica at a time, so a slow upstream never interleaves two
     exchanges for the same consumer. *)
  let consumers =
    C.Containment_index.fold t.index ~init:[] ~f:(fun acc _ c -> c :: acc)
  in
  let rec go = function
    | [] -> k ()
    | consumer :: rest ->
        Resync.Consumer.sync_async consumer t.transport ~host:t.master_host
          ~from:t.host (fun result ->
            (match result with
            | Ok outcome ->
                Stats.add_reply t.stats outcome.Resync.Consumer.reply ~fetch:false;
                Stats.record_sync_outcome t.stats outcome
            | Error (Resync.Consumer.Exhausted _) ->
                Stats.record_sync_failure t.stats
            | Error (Resync.Consumer.Rejected msg) ->
                invalid_arg ("Filter_replica.sync_async: " ^ msg));
            go rest)
  in
  go (List.rev consumers)

let comparisons t =
  C.Containment_index.comparisons t.index + Query_cache.comparisons t.cache

(* --- Merkle anti-entropy --------------------------------------------- *)

let merkle_consumer t consumer =
  match
    Resync.Consumer.merkle_sync consumer t.transport ~host:t.master_host
      ~from:t.host
  with
  | Ok report ->
      Stats.record_merkle t.stats report;
      if report.Ldap_antientropy.Exchange.converged then Ok report
      else Error "anti-entropy did not converge within the round budget"
  | Error e -> Error e

let install_filter_seeded t q ~donors =
  if C.Containment_index.mem t.index q then Ok Kept
  else
    let dcs =
      List.filter_map
        (fun donor ->
          if donor_attrs_cover ~donor q then
            C.Containment_index.find t.index donor
          else None)
        donors
    in
    let consumer = make_consumer t q in
    match dcs with
    | [] -> install_cold t q consumer
    | dcs -> (
        (* Seed whatever the donors already hold for [q]; the Merkle
           walk then ships only the differing segments and mints the
           resume cookie.  No foreign-session cookie here: without
           containment there is no single CSN the seed is complete
           at.  An empty seed means the region pre-filter was wrong —
           a plain initial fetch is strictly cheaper than a Merkle
           walk over nothing. *)
        match seed_entries t q dcs with
        | [] -> install_cold t q consumer
        | seed -> (
            Resync.Consumer.apply_reply consumer
              {
                Resync.Protocol.kind = Resync.Protocol.Initial_content;
                actions = seed;
                cookie = None;
              };
            match merkle_consumer t consumer with
            | Ok _ ->
                register_consumer t q consumer;
                Ok Seeded
            | Error _ -> install_cold t q consumer))

let merkle_sync_filter t q =
  match C.Containment_index.find t.index q with
  | None -> Error "Filter_replica.merkle_sync_filter: no such stored filter"
  | Some consumer -> merkle_consumer t consumer

let merkle_sync_all t =
  C.Containment_index.fold t.index ~init:[] ~f:(fun acc q consumer ->
      (q, merkle_consumer t consumer) :: acc)

(* --- Durable state --------------------------------------------------- *)

type forced_resync = Resync_none | Resync_merkle | Resync_cold

type filter_recovery = {
  fr_query : Query.t;
  fr_slot : int;
  fr_cookie : string option;
  fr_entries : int;
  fr_replayed : int;
  fr_truncated : bool;
  fr_truncation_point : int;
  fr_stale : int;
  fr_wal_bytes : int;
  fr_snapshot_bytes : int;
  fr_resync : forced_resync;
}

type recovery_report = {
  meta_replayed : int;
  meta_truncated : bool;
  filters : filter_recovery list;
}

let durable t = t.durable <> None

let detach_store t =
  match t.durable with
  | None -> ()
  | Some _ ->
      t.durable <- None;
      C.Containment_index.iter t.index ~f:(fun _ consumer ->
          Resync.Consumer.detach_store consumer)

let attach_store ?(sync = true) t medium ~prefix =
  let meta = Ldap_store.Store.create ~sync medium ~name:(prefix ^ ".meta") in
  let d =
    { medium; prefix; meta; sync_each = sync; slots = []; next_slot = 0 }
  in
  t.durable <- Some d;
  (* Filters installed before durability was enabled get slots and
     stores now; checkpointing captures their content, and the meta
     checkpoint below makes the slot table itself durable. *)
  C.Containment_index.iter t.index ~f:(fun q consumer ->
      let slot = d.next_slot in
      d.next_slot <- slot + 1;
      d.slots <- (q, slot) :: d.slots;
      Resync.Consumer.attach_store consumer (consumer_store d slot);
      Resync.Consumer.checkpoint consumer);
  Ldap_store.Store.checkpoint d.meta (meta_snapshot d)

let checkpoint t =
  match t.durable with
  | None -> ()
  | Some d ->
      Ldap_store.Store.checkpoint d.meta (meta_snapshot d);
      C.Containment_index.iter t.index ~f:(fun _ consumer ->
          Resync.Consumer.checkpoint consumer)

let recover_over ?(cache_capacity = 0) ?(host = "replica") ?(sync = true)
    transport ~master_host medium ~prefix =
  let ( let* ) = Result.bind in
  let t = create_over ~cache_capacity ~host transport ~master_host in
  let meta = Ldap_store.Store.create ~sync medium ~name:(prefix ^ ".meta") in
  let d =
    { medium; prefix; meta; sync_each = sync; slots = []; next_slot = 0 }
  in
  let recovery = Ldap_store.Store.recover meta in
  let* () =
    match recovery.Ldap_store.Store.snapshot with
    | None -> Ok ()
    | Some payload ->
        Ldap_store.Codec.decode
          (fun c ->
            let inner = Der.read_seq c in
            d.next_slot <- Der.read_integer inner;
            let slots = Der.read_seq inner in
            while not (Der.at_end slots) do
              let s = Der.read_seq slots in
              let slot = Der.read_integer s in
              let q = Der.read_query s in
              d.slots <- (q, slot) :: d.slots
            done)
          payload
  in
  let* () =
    List.fold_left
      (fun acc payload ->
        let* () = acc in
        Ldap_store.Codec.decode
          (fun c ->
            let inner = Der.read_seq c in
            match Der.read_enum inner with
            | 0 ->
                let slot = Der.read_integer inner in
                let q = Der.read_query inner in
                d.slots <- (q, slot) :: d.slots;
                if slot >= d.next_slot then d.next_slot <- slot + 1
            | 1 ->
                let slot = Der.read_integer inner in
                d.slots <- List.filter (fun (_, s) -> s <> slot) d.slots
            | n ->
                raise
                  (Ber_codec.Decode_error
                     (Printf.sprintf "bad replica meta record %d" n)))
          payload)
      (Ok ()) recovery.Ldap_store.Store.records
  in
  t.durable <- Some d;
  (* Rebuild the containment index from each slot's durable consumer
     state — content and cookie come from the store, not a re-fetch;
     the next poll resumes ReSync from the durable cookie. *)
  let slots = List.sort (fun (_, a) (_, b) -> compare a b) d.slots in
  let* filters =
    List.fold_left
      (fun acc (q, slot) ->
        let* reports = acc in
        let store = consumer_store d slot in
        let* consumer, crec =
          Resync.Consumer.recover t.schema (Replica.widen_attrs q) store
        in
        Resync.Consumer.set_on_change consumer (fun ~before ~after ->
            match t.on_change with
            | Some f -> f ~stored:q ~before ~after
            | None -> ());
        C.Containment_index.add t.index q consumer;
        (* A truncated WAL or a stale generation means durable replay
           lost acknowledged updates: the recovered content may lag the
           CSN any surviving cookie claims, or just silently lag the
           master.  Resynchronize {e before} this filter serves reads —
           Merkle anti-entropy first (ships only the drift), cold
           re-fetch if the walk cannot converge or the link is down. *)
        let damaged =
          crec.Ldap_store.Store.truncated || crec.Ldap_store.Store.stale > 0
        in
        let resync =
          if not damaged then Resync_none
          else
            match merkle_consumer t consumer with
            | Ok _ -> Resync_merkle
            | Error _ ->
                Resync.Consumer.set_cookie consumer None;
                (match sync_consumer t consumer ~fetch:true with
                | Ok () -> ()
                | Error _ -> Stats.record_sync_failure t.stats);
                Resync_cold
        in
        Ok
          ({
             fr_query = q;
             fr_slot = slot;
             fr_cookie = Resync.Consumer.cookie consumer;
             fr_entries = Resync.Consumer.size consumer;
             fr_replayed = List.length crec.Ldap_store.Store.records;
             fr_truncated = crec.Ldap_store.Store.truncated;
             fr_truncation_point = crec.Ldap_store.Store.truncation_point;
             fr_stale = crec.Ldap_store.Store.stale;
             fr_wal_bytes = crec.Ldap_store.Store.wal_bytes;
             fr_snapshot_bytes = crec.Ldap_store.Store.snapshot_bytes;
             fr_resync = resync;
           }
          :: reports))
      (Ok []) slots
  in
  Ok
    ( t,
      {
        meta_replayed = List.length recovery.Ldap_store.Store.records;
        meta_truncated = recovery.Ldap_store.Store.truncated;
        filters = List.rev filters;
      } )
