open Ldap
module C = Ldap_containment
module Resync = Ldap_resync

type t = {
  schema : Schema.t;
  transport : Resync.Transport.t;
  mutable master_host : string;
  host : string;
  index : Resync.Consumer.t C.Containment_index.t;
  cache : Query_cache.t;
  stats : Stats.t;
  mutable on_change :
    (stored:Query.t ->
    before:Entry.t option ->
    after:Entry.t option ->
    unit)
    option;
}

let upstream t =
  match Resync.Transport.endpoint t.transport t.master_host with
  | Some ep -> Some ep
  | None -> None

let master t =
  match Resync.Transport.master t.transport t.master_host with
  | Some m -> m
  | None -> invalid_arg "Filter_replica.master: upstream is not a root master"

let create_over ?(cache_capacity = 0) ?(host = "replica") transport ~master_host =
  let ep =
    match Resync.Transport.endpoint transport master_host with
    | Some ep -> ep
    | None ->
        invalid_arg
          ("Filter_replica.create_over: no endpoint registered as " ^ master_host)
  in
  let schema = ep.Resync.Transport.ep_schema in
  {
    schema;
    transport;
    master_host;
    host;
    index = C.Containment_index.create schema;
    cache = Query_cache.create schema ~capacity:cache_capacity;
    stats = Stats.create ();
    on_change = None;
  }

let create ?cache_capacity master =
  create_over ?cache_capacity (Resync.Transport.loopback master)
    ~master_host:Resync.Transport.loopback_host

let schema t = t.schema
let stats t = t.stats
let transport t = t.transport
let master_host t = t.master_host
let set_on_change t f = t.on_change <- Some f

let retarget t ~master_host =
  (match Resync.Transport.endpoint t.transport master_host with
  | Some _ -> ()
  | None ->
      invalid_arg
        ("Filter_replica.retarget: no endpoint registered as " ^ master_host));
  t.master_host <- master_host;
  (* The old upstream's session ids mean nothing to the new one: keep
     each consumer's acknowledged CSN, drop the session id, and let the
     first exchange resynchronize degraded from that CSN. *)
  C.Containment_index.iter t.index ~f:(fun _ consumer ->
      match Resync.Consumer.cookie consumer with
      | Some c -> Resync.Consumer.set_cookie consumer (Resync.Protocol.reparent_cookie c)
      | None -> ())

let sync_consumer t consumer ~fetch =
  match
    Resync.Consumer.sync_over consumer t.transport ~host:t.master_host
      ~from:t.host
  with
  | Ok outcome ->
      Stats.add_reply t.stats outcome.Resync.Consumer.reply ~fetch;
      Stats.record_sync_outcome t.stats outcome;
      Ok ()
  | Error e -> Error e

let install_filter t q =
  if C.Containment_index.mem t.index q then Ok ()
  else
    (* The session fetches the stored query's attributes plus the ones
       its filter mentions, so contained queries can be re-evaluated
       locally; answers still project to the caller's selection. *)
    let consumer = Resync.Consumer.create t.schema (Replica.widen_attrs q) in
    Resync.Consumer.set_on_change consumer (fun ~before ~after ->
        match t.on_change with
        | Some f -> f ~stored:q ~before ~after
        | None -> ());
    match sync_consumer t consumer ~fetch:true with
    | Ok () ->
        C.Containment_index.add t.index q consumer;
        Ok ()
    | Error e -> Error (Resync.Consumer.sync_error_to_string e)

let remove_filter t q =
  (* End the session at the upstream before dropping local state (a
     vanished upstream just means there is no session left to end). *)
  (match C.Containment_index.find t.index q with
  | Some consumer -> (
      match (Resync.Consumer.cookie consumer, upstream t) with
      | Some cookie, Some ep -> ep.Resync.Transport.ep_abandon ~cookie
      | _ -> ())
  | None -> ());
  C.Containment_index.remove t.index q

let stored_filters t = C.Containment_index.fold t.index ~init:[] ~f:(fun acc q _ -> q :: acc)

let filter_count t = C.Containment_index.length t.index + Query_cache.length t.cache

let size_entries t =
  let dns =
    C.Containment_index.fold t.index ~init:Dn.Set.empty ~f:(fun acc _ consumer ->
        Dn.Set.union acc (Resync.Consumer.dns consumer))
  in
  Dn.Set.cardinal dns

let estimate_size t q =
  match upstream t with Some ep -> ep.Resync.Transport.ep_estimate q | None -> 0

let evaluable (stored : Query.t) _ q =
  Replica.filter_attrs_available ~available:(Replica.widen_attrs stored).Query.attrs q

let containing_consumer t q =
  C.Containment_index.find_container_where t.index q ~pred:(fun stored c ->
      evaluable stored c q)

let consumer_for t q = C.Containment_index.find t.index q

let answer t q =
  match containing_consumer t q with
  | Some (_, consumer) ->
      let entries =
        Replica.eval_over_entries t.schema q (Resync.Consumer.entries consumer)
      in
      Stats.record_query t.stats ~hit:true ~returned:(List.length entries);
      Replica.Answered entries
  | None -> (
      match Query_cache.answer t.cache q with
      | Some entries ->
          Stats.record_query t.stats ~hit:true ~returned:(List.length entries);
          Replica.Answered entries
      | None ->
          Stats.record_query t.stats ~hit:false ~returned:0;
          Replica.Referral)

let record_miss_result t q entries = Query_cache.add t.cache q entries

let sync_where t pred =
  C.Containment_index.iter t.index ~f:(fun q consumer ->
      if pred q then
        match sync_consumer t consumer ~fetch:false with
        | Ok () -> ()
        | Error (Resync.Consumer.Exhausted _) ->
            (* The consumer keeps its cookie and content; the filter
               stays stale until a later round reaches the master. *)
            Stats.record_sync_failure t.stats
        | Error (Resync.Consumer.Rejected msg) ->
            invalid_arg ("Filter_replica.sync: " ^ msg))

let sync t = sync_where t (fun _ -> true)

let sync_async t k =
  (* Sequential CPS walk over the stored filters: one in-flight poll per
     replica at a time, so a slow upstream never interleaves two
     exchanges for the same consumer. *)
  let consumers =
    C.Containment_index.fold t.index ~init:[] ~f:(fun acc _ c -> c :: acc)
  in
  let rec go = function
    | [] -> k ()
    | consumer :: rest ->
        Resync.Consumer.sync_async consumer t.transport ~host:t.master_host
          ~from:t.host (fun result ->
            (match result with
            | Ok outcome ->
                Stats.add_reply t.stats outcome.Resync.Consumer.reply ~fetch:false;
                Stats.record_sync_outcome t.stats outcome
            | Error (Resync.Consumer.Exhausted _) ->
                Stats.record_sync_failure t.stats
            | Error (Resync.Consumer.Rejected msg) ->
                invalid_arg ("Filter_replica.sync_async: " ^ msg));
            go rest)
  in
  go (List.rev consumers)

let comparisons t =
  C.Containment_index.comparisons t.index + Query_cache.comparisons t.cache
