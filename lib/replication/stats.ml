type t = {
  mutable queries : int;
  mutable hits : int;
  mutable entries_returned : int;
  mutable sync_entries : int;
  mutable sync_bytes : int;
  mutable sync_actions : int;
  mutable fetch_entries : int;
  mutable fetch_bytes : int;
  mutable comparisons : int;
  mutable sync_retries : int;
  mutable sync_backoff_ticks : int;
  mutable resyncs : int;
  mutable recovery_bytes : int;
  mutable merkle_syncs : int;
  mutable merkle_bytes : int;
  mutable sync_failures : int;
  mutable served_replies : int;
  mutable served_entries : int;
  mutable served_bytes : int;
  mutable served_actions : int;
}

let create () =
  {
    queries = 0;
    hits = 0;
    entries_returned = 0;
    sync_entries = 0;
    sync_bytes = 0;
    sync_actions = 0;
    fetch_entries = 0;
    fetch_bytes = 0;
    comparisons = 0;
    sync_retries = 0;
    sync_backoff_ticks = 0;
    resyncs = 0;
    recovery_bytes = 0;
    merkle_syncs = 0;
    merkle_bytes = 0;
    sync_failures = 0;
    served_replies = 0;
    served_entries = 0;
    served_bytes = 0;
    served_actions = 0;
  }

let reset t =
  t.queries <- 0;
  t.hits <- 0;
  t.entries_returned <- 0;
  t.sync_entries <- 0;
  t.sync_bytes <- 0;
  t.sync_actions <- 0;
  t.fetch_entries <- 0;
  t.fetch_bytes <- 0;
  t.comparisons <- 0;
  t.sync_retries <- 0;
  t.sync_backoff_ticks <- 0;
  t.resyncs <- 0;
  t.recovery_bytes <- 0;
  t.merkle_syncs <- 0;
  t.merkle_bytes <- 0;
  t.sync_failures <- 0;
  t.served_replies <- 0;
  t.served_entries <- 0;
  t.served_bytes <- 0;
  t.served_actions <- 0

let hit_ratio t = if t.queries = 0 then 0.0 else float_of_int t.hits /. float_of_int t.queries
let total_update_entries t = t.sync_entries + t.fetch_entries

let record_query t ~hit ~returned =
  t.queries <- t.queries + 1;
  if hit then begin
    t.hits <- t.hits + 1;
    t.entries_returned <- t.entries_returned + returned
  end

let add_reply t reply ~fetch =
  let entries = Ldap_resync.Protocol.entries_cost reply in
  let bytes = Ldap_resync.Protocol.bytes_cost reply in
  let actions = Ldap_resync.Protocol.actions_count reply in
  if fetch then begin
    t.fetch_entries <- t.fetch_entries + entries;
    t.fetch_bytes <- t.fetch_bytes + bytes
  end
  else begin
    t.sync_entries <- t.sync_entries + entries;
    t.sync_bytes <- t.sync_bytes + bytes
  end;
  t.sync_actions <- t.sync_actions + actions

let record_sync_outcome t (o : Ldap_resync.Consumer.outcome) =
  t.sync_retries <- t.sync_retries + (o.Ldap_resync.Consumer.attempts - 1);
  t.sync_backoff_ticks <- t.sync_backoff_ticks + o.Ldap_resync.Consumer.backoff;
  if o.Ldap_resync.Consumer.resynced then begin
    t.resyncs <- t.resyncs + 1;
    t.recovery_bytes <-
      t.recovery_bytes + Ldap_resync.Protocol.reply_bytes o.Ldap_resync.Consumer.reply
  end

let record_sync_failure t = t.sync_failures <- t.sync_failures + 1

let record_merkle t (r : Ldap_antientropy.Exchange.report) =
  t.merkle_syncs <- t.merkle_syncs + 1;
  t.merkle_bytes <-
    t.merkle_bytes
    + r.Ldap_antientropy.Exchange.bytes_sent
    + r.Ldap_antientropy.Exchange.bytes_received

let record_served_reply t reply =
  t.served_replies <- t.served_replies + 1;
  t.served_entries <- t.served_entries + Ldap_resync.Protocol.entries_cost reply;
  t.served_bytes <- t.served_bytes + Ldap_resync.Protocol.reply_bytes reply;
  t.served_actions <- t.served_actions + Ldap_resync.Protocol.actions_count reply

let record_served_push t action =
  t.served_entries <- t.served_entries + Ldap_resync.Action.entries_cost action;
  t.served_bytes <- t.served_bytes + Ldap_resync.Action.bytes_cost action;
  t.served_actions <- t.served_actions + 1

let pp ppf t =
  Format.fprintf ppf
    "queries=%d hits=%d (%.3f) sync=%de/%dB fetch=%de/%dB comparisons=%d \
     retries=%d backoff=%d resyncs=%d/%dB merkle=%d/%dB failures=%d \
     served=%dr/%de/%dB"
    t.queries t.hits (hit_ratio t) t.sync_entries t.sync_bytes t.fetch_entries
    t.fetch_bytes t.comparisons t.sync_retries t.sync_backoff_ticks t.resyncs
    t.recovery_bytes t.merkle_syncs t.merkle_bytes t.sync_failures
    t.served_replies t.served_entries t.served_bytes
