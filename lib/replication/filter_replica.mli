(** Filter-based partial replica — the paper's proposed model
    (section 3).

    The replica stores, for each replicated LDAP query, its meta
    information (the search specification) and its content (kept in
    sync through a ReSync session).  An incoming query is answered
    locally iff it is semantically contained in a stored query
    (decided through the template-bucketed containment index) or in a
    recently cached user query; otherwise a referral is generated.

    The stored filter set can be changed dynamically — the filter
    selection algorithm of section 6.2 calls {!install_filter} and
    {!remove_filter} at every revolution; the traffic this causes is
    accounted separately as fetch traffic (section 7.3).

    All master traffic rides a {!Ldap_resync.Transport}: polls retry
    with backoff on loss, disrupted sessions recover by degraded
    resync, and the retries/resyncs/recovery bytes appear in
    {!Stats}. *)

open Ldap

type t

val create_over :
  ?cache_capacity:int ->
  ?host:string ->
  Ldap_resync.Transport.t ->
  master_host:string ->
  t
(** A replica whose master lives at [master_host] on the given
    transport (subject to its fault schedule).  [host] (default
    ["replica"]) names this end for partition checks and accounting.
    [cache_capacity] sizes the user-query window (default 0: no
    caching of user queries).
    @raise Invalid_argument if no master is registered at [master_host]. *)

val create :
  ?cache_capacity:int -> Ldap_resync.Master.t -> t
(** Co-located convenience: wraps [master] in a private fault-free
    loopback transport. *)

val schema : t -> Schema.t
val stats : t -> Stats.t
val transport : t -> Ldap_resync.Transport.t

val master : t -> Ldap_resync.Master.t
(** The master behind [master_host] — reachable in-process even when
    the simulated link is partitioned (used for session teardown and
    size estimates, which the paper charges to the control plane). *)

val install_filter : t -> Query.t -> (unit, string) result
(** Starts replicating a query: fetches its initial content from the
    master (fetch traffic) and registers it in the containment index.
    Installing an already stored query is a no-op. *)

val remove_filter : t -> Query.t -> unit
(** Stops replicating the query (ends its ReSync session). *)

val stored_filters : t -> Query.t list
val filter_count : t -> int
(** Stored filters plus cached user queries — the section 7.4 x-axis. *)

val size_entries : t -> int
(** Number of distinct entries held across all stored filters (cached
    user-query results excluded, mirroring the paper's replica-size
    accounting). *)

val estimate_size : t -> Query.t -> int
(** Entries the master currently holds for the query: the size
    estimate used by benefit/size selection (section 6.2). *)

val answer : t -> Query.t -> Replica.answer
(** Answers the query from stored or cached content when containment
    holds; referral otherwise.  On a miss the caller fetches from the
    master and may install the result in the window cache with
    {!record_miss_result} (section 7.4's cached user queries). *)

val record_miss_result : t -> Query.t -> Entry.t list -> unit
(** Caches the master's answer to a missed user query in the window
    cache (no synchronization — section 7.4). *)

val sync : t -> unit
(** One poll round over all stored filters (resync traffic).  A filter
    whose poll exhausts its retry budget is left stale (and counted in
    {!Stats.t.sync_failures}) rather than aborting the round. *)

val sync_where : t -> (Query.t -> bool) -> unit
(** Polls only the stored filters satisfying the predicate.  This is
    the flexibility section 3.2 attributes to the filter model: each
    object type (filter) can have its own consistency level, e.g.
    location filters refreshed rarely and person filters often —
    something a subtree replica mixing both cannot express. *)

val comparisons : t -> int
(** Total containment comparisons performed (stored + cached). *)
