(** Filter-based partial replica — the paper's proposed model
    (section 3).

    The replica stores, for each replicated LDAP query, its meta
    information (the search specification) and its content (kept in
    sync through a ReSync session).  An incoming query is answered
    locally iff it is semantically contained in a stored query
    (decided through the template-bucketed containment index) or in a
    recently cached user query; otherwise a referral is generated.

    The stored filter set can be changed dynamically — the filter
    selection algorithm of section 6.2 calls {!install_filter} and
    {!remove_filter} at every revolution; the traffic this causes is
    accounted separately as fetch traffic (section 7.3).

    All upstream traffic rides a {!Ldap_resync.Transport}: polls retry
    with backoff on loss, disrupted sessions recover by degraded
    resync, and the retries/resyncs/recovery bytes appear in
    {!Stats}.  The upstream is addressed as a transport {e endpoint},
    so it can be the root master or another filter replica acting as
    an intermediate master in a cascading topology. *)

open Ldap

type t

val create_over :
  ?cache_capacity:int ->
  ?host:string ->
  Ldap_resync.Transport.t ->
  master_host:string ->
  t
(** A replica whose upstream lives at [master_host] on the given
    transport (subject to its fault schedule).  [host] (default
    ["replica"]) names this end for partition checks and accounting.
    [cache_capacity] sizes the user-query window (default 0: no
    caching of user queries).
    @raise Invalid_argument if no endpoint is registered at
    [master_host]. *)

val create :
  ?cache_capacity:int -> Ldap_resync.Master.t -> t
(** Co-located convenience: wraps [master] in a private fault-free
    loopback transport. *)

val schema : t -> Schema.t
val stats : t -> Stats.t
val transport : t -> Ldap_resync.Transport.t

val master_host : t -> string
(** The endpoint name this replica currently synchronizes from. *)

val master : t -> Ldap_resync.Master.t
(** The root master behind [master_host] — reachable in-process even
    when the simulated link is partitioned (used by flat-topology
    callers for control-plane operations).
    @raise Invalid_argument when the upstream endpoint is an
    intermediate node rather than a root master. *)

val retarget : t -> master_host:string -> unit
(** Re-parents the replica to a different upstream endpoint.  Every
    stored filter's resume cookie is rewritten with
    {!Ldap_resync.Protocol.reparent_cookie}: the acknowledged CSN is
    kept but the session id — meaningless to the new upstream — is
    dropped, so the next poll resynchronizes degraded from that CSN
    instead of reloading content from scratch.
    @raise Invalid_argument if no endpoint is registered at
    [master_host]. *)

val set_on_change :
  t ->
  (stored:Query.t -> before:Entry.t option -> after:Entry.t option -> unit) ->
  unit
(** Registers an observer fired once per content change of any stored
    filter, tagged with the stored query whose consumer changed.  An
    intermediate topology node uses this to relay changes to the
    downstream sessions whose filters the stored query serves.
    Registration applies to filters installed before and after the
    call. *)

val install_filter : t -> Query.t -> (unit, string) result
(** Starts replicating a query: fetches its initial content from the
    upstream (fetch traffic) and registers it in the containment
    index.  Installing an already stored query is a no-op. *)

val remove_filter : t -> Query.t -> unit
(** Stops replicating the query (ends its ReSync session upstream). *)

(** {1 Delta installs}

    A filter-set transition (selection revolution, drift-triggered
    re-scope) does not have to refetch regions the replica already
    holds: containment over the old and new filter sets classifies
    each incoming query against what is stored, and the install is
    seeded from the overlapping donors so only the net-new content
    crosses the wire. *)

(** How a delta install actually brought the content in. *)
type install_how =
  | Kept  (** Already stored — nothing to do. *)
  | Rescoped
      (** Seeded wholesale from a containing donor and opened with a
          foreign-session cookie at the donor's acknowledged CSN; the
          upstream answered degraded from there (changed members as
          full entries, the rest as DN-only retains). *)
  | Seeded
      (** Seeded from overlapping donors, then Merkle-reconciled so
          only the differing segments shipped. *)
  | Cold  (** Preconditions failed: plain initial-content fetch. *)

val install_filter_rescoped :
  t -> Query.t -> donor:Query.t -> (install_how, string) result
(** Installs [q] seeded from the stored [donor] that contains it: the
    donor's entries are evaluated under [q] locally, and the new
    session opens with {!Ldap_resync.Protocol.cookie_of} at the
    donor's acknowledged CSN, so the upstream's degraded reply ships
    full entries only for members changed since then.  Falls back to
    {!install_filter} when the donor is not stored, holds no cookie
    yet, or its attribute projection cannot supply [q]'s widened
    selection (seeding from a narrower projection would bake
    missing-attribute images into retained content). *)

val install_filter_seeded :
  t -> Query.t -> donors:Query.t list -> (install_how, string) result
(** Installs [q] seeded from the union of the stored [donors]' entries
    evaluated under [q] (deduplicated by DN), then reconciled by
    Merkle anti-entropy — only the segments the seed got wrong ship.
    Donors not stored or with insufficient attribute projections are
    ignored; with no usable donor, or when the walk fails, the install
    degrades to a cold fetch. *)

val stored_filters : t -> Query.t list
val filter_count : t -> int
(** Stored filters plus cached user queries — the section 7.4 x-axis. *)

val size_entries : t -> int
(** Number of distinct entries held across all stored filters (cached
    user-query results excluded, mirroring the paper's replica-size
    accounting). *)

val estimate_size : t -> Query.t -> int
(** Entries the upstream currently holds for the query: the size
    estimate used by benefit/size selection (section 6.2).  0 when the
    upstream endpoint has vanished. *)

val answer : t -> Query.t -> Replica.answer
(** Answers the query from stored or cached content when containment
    holds; referral otherwise.  On a miss the caller fetches from the
    master and may install the result in the window cache with
    {!record_miss_result} (section 7.4's cached user queries). *)

val containing_consumer :
  t -> Query.t -> (Query.t * Ldap_resync.Consumer.t) option
(** The stored query containing [q] whose widened attribute set lets
    [q] be evaluated locally, with its consumer — the admission and
    serving lookup an intermediate topology node runs for downstream
    subscriptions.  [None] means the subscription must be referred
    upstream. *)

val consumer_for : t -> Query.t -> Ldap_resync.Consumer.t option
(** The consumer of exactly this stored query, if installed. *)

val record_miss_result : t -> Query.t -> Entry.t list -> unit
(** Caches the master's answer to a missed user query in the window
    cache (no synchronization — section 7.4). *)

val sync : t -> unit
(** One poll round over all stored filters (resync traffic).  A filter
    whose poll exhausts its retry budget is left stale (and counted in
    {!Stats.t.sync_failures}) rather than aborting the round. *)

val sync_async : t -> (unit -> unit) -> unit
(** Asynchronous form of {!sync} for event-driven drivers: stored
    filters are polled sequentially in CPS (one in-flight exchange per
    replica), and the continuation fires when the round completes.
    Failure handling matches {!sync}.  Without an engine on the
    transport's network the continuation runs before the call returns. *)

val sync_where : t -> (Query.t -> bool) -> unit
(** Polls only the stored filters satisfying the predicate.  This is
    the flexibility section 3.2 attributes to the filter model: each
    object type (filter) can have its own consistency level, e.g.
    location filters refreshed rarely and person filters often —
    something a subtree replica mixing both cannot express. *)

val comparisons : t -> int
(** Total containment comparisons performed (stored + cached). *)

(** {1 Merkle anti-entropy}

    The third recovery mode, between durable resume (cheap, needs an
    intact WAL and an acceptable cookie) and cold re-subscribe
    (always works, re-ships everything): walk a hash tree against the
    upstream's content under the stored filter and ship only the
    segments that differ ({!Ldap_antientropy.Exchange}). *)

val merkle_sync_filter :
  t -> Query.t -> (Ldap_antientropy.Exchange.report, string) result
(** Reconciles one stored filter's content against the upstream by
    Merkle walk ({!Ldap_resync.Consumer.merkle_sync}); the walk's wire
    cost is recorded in {!Stats.t.merkle_bytes}.  [Error] when the
    query is not stored, the upstream is unreachable, or the walk did
    not converge within its round budget — the caller should fall back
    to a cold re-subscribe. *)

val merkle_sync_all :
  t -> (Query.t * (Ldap_antientropy.Exchange.report, string) result) list
(** {!merkle_sync_filter} over every stored filter. *)

(** {1 Durability}

    A durable replica keeps one meta store (the slot-numbered table of
    installed filters) plus one consumer store per stored filter on a
    shared {!Ldap_store.Medium}, all under a common name prefix.
    Installs and removals are journaled; each consumer journals the
    replies it applies.  {!recover_over} rebuilds the replica — index,
    content and resume cookies — from the medium without re-fetching,
    so the first poll after a restart resumes ReSync from the durable
    cookie instead of reloading content. *)

(** How a damaged filter was brought back in sync during recovery. *)
type forced_resync =
  | Resync_none  (** Durable state was intact: plain resume. *)
  | Resync_merkle  (** Merkle anti-entropy repaired the drift. *)
  | Resync_cold
      (** The walk failed (or could not converge): cookie dropped and
          content re-fetched from scratch. *)

(** Per-filter recovery outcome, as reported by [ldapctl store]. *)
type filter_recovery = {
  fr_query : Query.t;  (** The stored (un-widened) query. *)
  fr_slot : int;  (** Slot number = consumer store name suffix. *)
  fr_cookie : string option;  (** Last durable resume cookie. *)
  fr_entries : int;  (** Entries recovered into the content. *)
  fr_replayed : int;  (** WAL records replayed over the snapshot. *)
  fr_truncated : bool;  (** A torn WAL tail was truncated. *)
  fr_truncation_point : int;
      (** Byte offset where replay stopped (= WAL length when clean). *)
  fr_stale : int;
      (** WAL records discarded because they belonged to a generation
          other than the recovered snapshot's. *)
  fr_wal_bytes : int;  (** WAL size after recovery. *)
  fr_snapshot_bytes : int;  (** Snapshot size. *)
  fr_resync : forced_resync;
      (** [Resync_none] unless recovery found the WAL truncated or
          stale, in which case the filter was resynchronized {e before}
          the replica serves reads — Merkle first, cold fallback. *)
}

(** Whole-replica recovery outcome. *)
type recovery_report = {
  meta_replayed : int;  (** Meta-store WAL records replayed. *)
  meta_truncated : bool;  (** Meta WAL tail was truncated. *)
  filters : filter_recovery list;  (** One per recovered filter, by slot. *)
}

val durable : t -> bool
(** Whether a store is attached. *)

val detach_store : t -> unit
(** Stops journaling everywhere (meta and consumers).  A simulated
    crash detaches the zombie in-memory replica so in-flight activity
    finishing after the crash cannot touch the durable state captured
    at crash time. *)

val attach_store : ?sync:bool -> t -> Ldap_store.Medium.t -> prefix:string -> unit
(** Makes the replica durable on the medium under [prefix]: already
    installed filters get slots and checkpointed consumer stores, and
    subsequent installs/removals/replies are journaled.  [sync]
    (default true) controls per-record fsync of every store. *)

val checkpoint : t -> unit
(** Checkpoints the meta store and every consumer store (snapshot +
    WAL reset).  No-op without an attached store. *)

val recover_over :
  ?cache_capacity:int ->
  ?host:string ->
  ?sync:bool ->
  Ldap_resync.Transport.t ->
  master_host:string ->
  Ldap_store.Medium.t ->
  prefix:string ->
  (t * recovery_report, string) result
(** Rebuilds a durable replica from the medium: recovers the meta
    store's slot table, then each slot's consumer (snapshot + WAL
    replay, torn tails truncated), and re-registers everything in the
    containment index.  An empty medium recovers to a fresh replica
    with no filters. *)
