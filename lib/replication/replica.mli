(** Common vocabulary for partial replicas.

    A replica either answers a query completely from local content or
    generates a referral to the master (the hit/miss distinction behind
    every hit-ratio figure in section 7). *)

open Ldap

type answer =
  | Answered of Entry.t list
      (** Fully answered locally — a {e hit}. *)
  | Referral
      (** The replica cannot guarantee a complete answer — a {e miss};
          the client must go to the master (or chase a referral). *)

val is_hit : answer -> bool

val eval_over_entries : Schema.t -> Query.t -> Entry.t Seq.t -> Entry.t list
(** Evaluates a query locally over a stream of candidate entries:
    scope check, filter match and attribute selection, with the filter
    compiled once for the pass.  Used by replicas to answer a query
    from the content of a containing stored query; callers hand in the
    content store's iterator directly, so evaluation never copies the
    candidate set into an intermediate list. *)

val filter_attrs_available : available:Query.attrs -> Query.t -> bool
(** Whether the attributes the incoming query's filter mentions are all
    present in content stored with the [available] attribute
    selection.  A replica must not evaluate a filter over entries whose
    relevant attributes were projected away — that would silently turn
    a complete answer into an incomplete one. *)

val widen_attrs : Query.t -> Query.t
(** The query with its attribute selection extended by the attributes
    its own filter mentions, so locally stored content can always be
    re-evaluated (what the OpenLDAP proxy cache does when caching). *)
