open Ldap
module C = Ldap_containment

type t = {
  schema : Schema.t;
  capacity : int;
  index : Entry.t list C.Containment_index.t;
  mutable window : Query.t list;  (* newest first *)
}

let create schema ~capacity =
  { schema; capacity; index = C.Containment_index.create schema; window = [] }

let capacity t = t.capacity
let length t = List.length t.window

let add t q result =
  if t.capacity > 0 then begin
    if C.Containment_index.mem t.index q then
      t.window <- List.filter (fun x -> not (Query.equal x q)) t.window;
    C.Containment_index.add t.index q result;
    t.window <- q :: t.window;
    if List.length t.window > t.capacity then begin
      match List.rev t.window with
      | oldest :: _ ->
          C.Containment_index.remove t.index oldest;
          t.window <- List.filter (fun x -> not (Query.equal x oldest)) t.window
      | [] -> ()
    end
  end

let answer t q =
  if t.capacity = 0 then None
  else
    let evaluable (stored : Query.t) _ =
      Replica.filter_attrs_available ~available:stored.Query.attrs q
    in
    match C.Containment_index.find_container_where t.index q ~pred:evaluable with
    | None -> None
    | Some (_, entries) -> Some (Replica.eval_over_entries t.schema q (List.to_seq entries))

let comparisons t = C.Containment_index.comparisons t.index

let clear t =
  C.Containment_index.clear t.index;
  t.window <- []
