open Ldap

type answer = Answered of Entry.t list | Referral

let is_hit = function Answered _ -> true | Referral -> false

let filter_attrs_available ~available (q : Query.t) =
  match available with
  | Query.All -> true
  | Query.Select stored_attrs ->
      List.for_all (fun a -> List.mem a stored_attrs) (Filter.attributes q.Query.filter)

let widen_attrs (q : Query.t) =
  match q.Query.attrs with
  | Query.All -> q
  | Query.Select l ->
      { q with Query.attrs = Query.Select (l @ Filter.attributes q.Query.filter) }

let eval_over_entries schema (q : Query.t) entries =
  (* Compile the filter once for the whole pass; each entry then
     evaluates through its cached compiled view.  The candidates come
     in as a sequence so callers stream straight out of their content
     store instead of building an intermediate list per evaluation. *)
  let matches = Filter.matcher schema q.Query.filter in
  let attrs = Query.attr_list q.Query.attrs in
  Seq.fold_left
    (fun acc e ->
      if Query.in_scope q (Entry.dn e) && matches e then
        Entry.select e attrs :: acc
      else acc)
    [] entries
  |> List.rev
