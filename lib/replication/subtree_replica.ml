open Ldap
module Resync = Ldap_resync

type context = {
  suffix : Dn.t;
  mutable referrals : Dn.t list;
  consumer : Resync.Consumer.t;
}

type t = {
  schema : Schema.t;
  master : Resync.Master.t;
  contexts : context list;
  stats : Stats.t;
}

let subtree_query suffix =
  Query.make ~scope:Scope.Sub ~manage_dsa_it:true ~base:suffix Filter.tt

let refresh_referrals ctx =
  ctx.referrals <-
    List.filter_map
      (fun e -> if Entry.is_referral e then Some (Entry.dn e) else None)
      (Resync.Consumer.entries ctx.consumer)

let create master ~subtrees =
  let schema = Backend.schema (Resync.Master.backend master) in
  let stats = Stats.create () in
  let contexts =
    List.map
      (fun suffix ->
        let consumer = Resync.Consumer.create schema (subtree_query suffix) in
        let ctx = { suffix; referrals = []; consumer } in
        (match Resync.Consumer.sync consumer master with
        | Ok reply -> Stats.add_reply stats reply ~fetch:true
        | Error msg -> invalid_arg ("Subtree_replica.create: " ^ msg));
        refresh_referrals ctx;
        ctx)
      subtrees
  in
  { schema; master; contexts; stats }

let stats t = t.stats
let contexts t = List.map (fun c -> (c.suffix, c.referrals)) t.contexts

let size_entries t =
  List.fold_left
    (fun acc c ->
      acc
      + List.length
          (List.filter
             (fun e -> not (Entry.is_referral e))
             (Resync.Consumer.entries c.consumer)))
    0 t.contexts

(* Algorithm isContained (b, C) from section 3.4.1. *)
let is_contained t base =
  List.exists
    (fun c ->
      if Dn.equal c.suffix base then true
      else if not (Dn.ancestor_of c.suffix base) then false
      else not (List.exists (fun r -> Dn.ancestor_of r base) c.referrals))
    t.contexts

let answer t (q : Query.t) =
  if not (is_contained t q.Query.base) then begin
    Stats.record_query t.stats ~hit:false ~returned:0;
    Replica.Referral
  end
  else begin
    (* The base is held: evaluate locally.  Referral objects in scope
       would make the answer partial (section 3.1.3): that is a miss. *)
    let ctx =
      List.find
        (fun c -> Dn.ancestor_of c.suffix q.Query.base)
        t.contexts
    in
    let scope_has_referral =
      List.exists (fun r -> Query.in_scope q r) ctx.referrals
    in
    if scope_has_referral then begin
      Stats.record_query t.stats ~hit:false ~returned:0;
      Replica.Referral
    end
    else
      let entries =
        Replica.eval_over_entries t.schema q (Resync.Consumer.entries_seq ctx.consumer)
      in
      let entries =
        List.filter (fun e -> not (Entry.is_referral e)) entries
      in
      Stats.record_query t.stats ~hit:true ~returned:(List.length entries);
      Replica.Answered entries
  end

let sync t =
  List.iter
    (fun c ->
      match Resync.Consumer.sync c.consumer t.master with
      | Ok reply ->
          Stats.add_reply t.stats reply ~fetch:false;
          refresh_referrals c
      | Error msg -> invalid_arg ("Subtree_replica.sync: " ^ msg))
    t.contexts
