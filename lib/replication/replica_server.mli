(** A partial replica exposed as a directory server.

    Wraps a {!Filter_replica} (or a {!Subtree_replica}) behind the
    {!Ldap.Server.response} interface so it can join a simulated
    {!Ldap.Network} topology: contained queries are answered locally in
    one round trip; everything else produces a referral to the master's
    LDAP URL, which a referral-chasing client follows transparently.
    This is the deployment shape of the paper's case study — a branch
    replica in front of a remote master.

    Referral URLs are built by {!Ldap.Referral.make} from the master's
    host name — the same construction path the cascading topology uses
    when an intermediate node refers a non-admitted subscription
    upstream, so URL shape is defined in exactly one place. *)

open Ldap

type t

val of_filter_replica :
  master_host:string -> Filter_replica.t -> t
(** [master_host] is the network name of the server a missed query is
    referred to; the URL itself is derived via {!Ldap.Referral.make}. *)

val of_subtree_replica :
  master_host:string -> Subtree_replica.t -> t

val sync : t -> unit
(** One poll round on the wrapped replica, whichever model backs it. *)

val referral_to : t -> string
(** The LDAP URL a miss refers the client to. *)

val handle_search : t -> Query.t -> Server.response
(** [Entries] on a hit, [Referral [referral_to t]] on a miss. *)

val register : t -> Network.t -> name:string -> unit
(** Installs the replica as host [name] in the topology. *)
