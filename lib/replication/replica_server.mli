(** A partial replica exposed as a directory server.

    Wraps a {!Filter_replica} (or a {!Subtree_replica}) behind the
    {!Ldap.Server.response} interface so it can join a simulated
    {!Ldap.Network} topology: contained queries are answered locally in
    one round trip; everything else produces a referral to the master's
    LDAP URL, which a referral-chasing client follows transparently.
    This is the deployment shape of the paper's case study — a branch
    replica in front of a remote master. *)

open Ldap

type t

val of_filter_replica :
  master_url:string -> Filter_replica.t -> t

val of_subtree_replica :
  master_url:string -> Subtree_replica.t -> t

val sync : t -> unit
(** One poll round on the wrapped replica, whichever model backs it. *)

val handle_search : t -> Query.t -> Server.response
(** [Entries] on a hit, [Referral [master_url]] on a miss. *)

val register : t -> Network.t -> name:string -> unit
(** Installs the replica as host [name] in the topology. *)
