(** Adaptive re-selection under workload drift.

    Glues the pieces of the adaptive subsystem together: every
    observed user query feeds the decayed {!Interest} tracker (itself
    and its section 6.1 generalizations), and the stored filter set is
    re-chosen greedily by decayed-benefit/size ratio under a size
    budget — periodically, like a section 6.2 revolution, {e and}
    early whenever the drift trigger fires: some uncovered candidate's
    score dominating everything the stored set covers means the
    workload has moved (flash crowd, geography flip) and waiting for
    the next revolution just accumulates misses.  Transitions execute
    as containment-seeded deltas ({!Transition.apply}) or, for the
    baseline the sweep compares against, cold swaps. *)

open Ldap

(** How filter-set transitions are executed. *)
type mode =
  | Delta  (** Containment-seeded delta installs ({!Transition.apply}). *)
  | Cold_swap  (** Remove + refetch baseline ({!Transition.apply_cold}). *)

(** Why an adaptation ran. *)
type trigger =
  | Periodic  (** The [revolution_interval] came due. *)
  | Drift  (** The drift test fired at a [drift_check_interval]. *)
  | Forced  (** {!force_adapt}. *)

type config = {
  rules : Ldap_selection.Generalize.rule list;
      (** Section 6.1 generalizations applied to observed queries. *)
  include_queries : bool;
      (** Track each observed query itself as a candidate too. *)
  half_life : int;  (** Interest decay half-life, in observations. *)
  min_score : float;
      (** Candidates below this decayed score are never selected. *)
  size_budget : int;  (** Max total replicated entries (estimated). *)
  revolution_interval : int;
      (** Periodic re-selection every this many observations
          (0 disables). *)
  drift_check_interval : int;
      (** Drift test every this many observations (0 disables). *)
  drift_ratio : float;
      (** Trigger when best uncovered score > ratio × best covered. *)
  mode : mode;
}

val default_config : config
(** [Delta] mode, half-life 256, budget 1000 entries, revolution every
    200 observations, drift checks every 25 at ratio 2.0. *)

(** One executed re-selection. *)
type adaptation = {
  at : int;  (** Observation count when it ran. *)
  trigger : trigger;
  target : Query.t list;  (** The newly selected filter set. *)
  plan : Transition.plan;
  report : Transition.report;  (** What the execution actually did. *)
}

type t

val create : config -> Ldap_replication.Filter_replica.t -> t
(** The controller drives the given replica's stored filter set; it
    does not own query answering — callers keep calling
    {!Ldap_replication.Filter_replica.answer} and feed {!observe}. *)

val config : t -> config

val replica : t -> Ldap_replication.Filter_replica.t
(** The driven replica. *)

val interest : t -> Interest.t
(** The live interest tracker (inspection and tests). *)

val observe : t -> Query.t -> unit
(** Feed one user query: interest is credited to the query and its
    generalizations, then the drift test and the periodic revolution
    run if their intervals came due.  A re-selection that would keep
    the stored set identical is skipped (counted in
    {!unchanged_checks}) — no-op transitions cost nothing. *)

val force_adapt : t -> adaptation option
(** Re-selects immediately; [None] when the selected set equals the
    stored set. *)

val observations : t -> int
val adaptations : t -> adaptation list
(** Executed adaptations, oldest first. *)

val adaptation_count : t -> int
val drift_checks : t -> int
(** Drift tests run (not all of them fire). *)

val unchanged_checks : t -> int
(** Re-selections skipped because the target equalled the stored set. *)

val totals : t -> Transition.report
(** Sum of all executed adaptations' reports. *)

val trigger_to_string : trigger -> string
(** ["periodic"], ["drift"] or ["forced"], for reports. *)

val mode_to_string : mode -> string
(** ["delta"] or ["cold"], for reports. *)
