open Ldap
module FR = Ldap_replication.Filter_replica
module Resync = Ldap_resync
module Enterprise = Ldap_dirgen.Enterprise
module Prng = Ldap_dirgen.Prng
module Generalize = Ldap_selection.Generalize

type config = {
  dr_employees : int;
  dr_seed : int;
  dr_budget : int;  (** Controller size budget, estimated entries. *)
  dr_half_life : int;
  dr_min_score : float;
  dr_drift_check : int;
  dr_drift_ratio : float;
  dr_revolution : int;
  dr_phase_queries : int;
  dr_update_every : int;  (** Queries between a commit + leaf poll. *)
  dr_bp_limit : int;  (** Persist outbound queue bound. *)
  dr_bp_updates : int;  (** Updates committed against the stalled leaf. *)
}

let default_config =
  {
    dr_employees = 8000;
    dr_seed = 11;
    dr_budget = 3000;
    dr_half_life = 256;
    dr_min_score = 1.0;
    dr_drift_check = 25;
    dr_drift_ratio = 1.5;
    dr_revolution = 200;
    dr_phase_queries = 240;
    dr_update_every = 10;
    dr_bp_limit = 32;
    dr_bp_updates = 20;
  }

let smoke_config =
  {
    dr_employees = 1600;
    dr_seed = 11;
    dr_budget = 700;
    dr_half_life = 128;
    dr_min_score = 1.0;
    dr_drift_check = 20;
    dr_drift_ratio = 1.5;
    dr_revolution = 160;
    dr_phase_queries = 160;
    dr_update_every = 10;
    dr_bp_limit = 8;
    dr_bp_updates = 6;
  }

(* --- Scenario fixture ------------------------------------------------- *)

type fixture = {
  fx_dir : Enterprise.t;
  fx_net : Network.t;
  fx_transport : Resync.Transport.t;
  fx_master : Resync.Master.t;
  fx_prng : Prng.t;
}

let master_host = "master"

let make_fixture cfg =
  let dir =
    Enterprise.build
      { Enterprise.default_config with
        employees = cfg.dr_employees;
        seed = cfg.dr_seed }
  in
  let net = Network.create () in
  let transport = Resync.Transport.create net in
  let master = Resync.Master.create (Enterprise.backend dir) in
  Resync.Transport.add_master transport ~name:master_host master;
  {
    fx_dir = dir;
    fx_net = net;
    fx_transport = transport;
    fx_master = master;
    fx_prng = Prng.create (cfg.dr_seed * 7919);
  }

let make_controller cfg mode replica =
  Controller.create
    {
      Controller.rules =
        [ Generalize.Prefix_value { attr = "departmentnumber"; keep = 2 } ];
      include_queries = true;
      half_life = cfg.dr_half_life;
      min_score = cfg.dr_min_score;
      size_budget = cfg.dr_budget;
      revolution_interval = cfg.dr_revolution;
      drift_check_interval = cfg.dr_drift_check;
      drift_ratio = cfg.dr_drift_ratio;
      mode;
    }
    replica

let dept_query fx number =
  Query.make
    ~base:(Enterprise.root_dn fx.fx_dir)
    (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" number))

let dept_number ~division ~dept = Printf.sprintf "%02d%02d" division dept

(* One churn update inside the warm region, so update traffic flows to
   whatever the leaf currently stores. *)
let commit_churn fx =
  let emps = Enterprise.employees fx.fx_dir in
  let e = emps.(Prng.int fx.fx_prng (Array.length emps)) in
  let op =
    Update.modify e.Enterprise.emp_dn
      [
        Update.replace_values "description"
          [ Printf.sprintf "churn-%d" (Prng.int fx.fx_prng 1_000_000) ];
      ]
  in
  match Backend.apply (Enterprise.backend fx.fx_dir) op with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Drift.commit_churn: " ^ e)

let commit_rename fx ~dept =
  let emps = Enterprise.employees fx.fx_dir in
  let candidates =
    Array.to_list emps
    |> List.filter (fun e -> String.equal e.Enterprise.emp_dept dept)
  in
  match candidates with
  | [] -> ()
  | _ ->
      let e = List.nth candidates (Prng.int fx.fx_prng (List.length candidates)) in
      let backend = Enterprise.backend fx.fx_dir in
      (* Rename the entry currently at that employee's position; after
         a previous rename the original DN is gone, so chase the
         current holder via the new RDN convention. *)
      let dn =
        if Backend.find backend e.Enterprise.emp_dn <> None then
          e.Enterprise.emp_dn
        else
          Dn.child_ava
            (Option.get (Dn.parent e.Enterprise.emp_dn))
            "cn"
            (Printf.sprintf "moved-%s" e.Enterprise.emp_serial)
      in
      if Backend.find backend dn <> None then
        let new_rdn =
          [
            {
              Dn.attr = "cn";
              value = Printf.sprintf "moved-%s" e.Enterprise.emp_serial;
            };
          ]
        in
        if Dn.rdn dn <> Some new_rdn then
          match Backend.apply backend (Update.modify_dn dn new_rdn) with
          | Ok _ -> ()
          | Error e -> invalid_arg ("Drift.commit_rename: " ^ e)

(* --- Phase runner ------------------------------------------------------ *)

type phase_point = {
  pp_name : string;
  pp_queries : int;
  pp_hits : int;
  pp_head_hit : float;  (** Hit ratio over the first half. *)
  pp_tail_hit : float;  (** Hit ratio over the last third. *)
  pp_update_bytes : int;
  pp_transition_bytes : int;
  pp_adaptations : int;
  pp_drift_adaptations : int;
  pp_report : Transition.report;
}

type update_kind = Churn | Rename of string

let sync_bytes fx = (Network.stats fx.fx_net).Network.sync_bytes

let hit replica q =
  match FR.answer replica q with
  | Ldap_replication.Replica.Answered _ -> true
  | Ldap_replication.Replica.Referral -> false

let run_phase cfg fx ctl ~name ~pick ~update =
  let replica = Controller.replica ctl in
  let n = cfg.dr_phase_queries in
  let head_end = n / 2 and tail_start = 2 * n / 3 in
  let hits = ref 0 and head_hits = ref 0 and tail_hits = ref 0 in
  let update_bytes = ref 0 and transition_bytes = ref 0 in
  let adapts_before = Controller.adaptation_count ctl in
  for i = 0 to n - 1 do
    let q = pick i in
    let answered = hit replica q in
    if answered then begin
      incr hits;
      if i < head_end then incr head_hits;
      if i >= tail_start then incr tail_hits
    end;
    let a0 = Controller.adaptation_count ctl in
    let b0 = sync_bytes fx in
    Controller.observe ctl q;
    if Controller.adaptation_count ctl > a0 then
      transition_bytes := !transition_bytes + (sync_bytes fx - b0);
    if (i + 1) mod cfg.dr_update_every = 0 then begin
      (match update with
      | Churn -> commit_churn fx
      | Rename dept -> commit_rename fx ~dept);
      let u0 = sync_bytes fx in
      FR.sync replica;
      update_bytes := !update_bytes + (sync_bytes fx - u0)
    end
  done;
  let phase_adapts =
    let all = Controller.adaptations ctl in
    List.filteri (fun i _ -> i >= adapts_before) all
  in
  let report =
    List.fold_left
      (fun acc a -> Transition.add_report acc a.Controller.report)
      Transition.empty_report phase_adapts
  in
  let drift_adapts =
    List.length
      (List.filter (fun a -> a.Controller.trigger = Controller.Drift) phase_adapts)
  in
  {
    pp_name = name;
    pp_queries = n;
    pp_hits = !hits;
    pp_head_hit = float_of_int !head_hits /. float_of_int head_end;
    pp_tail_hit = float_of_int !tail_hits /. float_of_int (n - tail_start);
    pp_update_bytes = !update_bytes;
    pp_transition_bytes = !transition_bytes;
    pp_adaptations = List.length phase_adapts;
    pp_drift_adaptations = drift_adapts;
    pp_report = report;
  }

(* --- The drift scenario ------------------------------------------------ *)

(* Divisions used by the scripted workload.  Warm traffic spreads over
   the departments of two divisions (selection settles on the division
   blocks); the flash crowd hammers two departments of a third; the
   geography flip concentrates on a few departments of the first warm
   division plus one department of a never-seen division. *)
let warm_a = 3
let warm_b = 4
let flash_div = 5
let new_div = 7
let warm_depts = 6
let flip_depts = 3

type run_result = {
  rr_mode : Controller.mode;
  rr_phases : phase_point list;
  rr_totals : Transition.report;
  rr_transition_bytes : int;
  rr_join_point : phase_point;
  rr_adaptations : int;
  rr_drift_adaptations : int;
  rr_unchanged_checks : int;
  rr_failed_installs : int;
}

let pick_warm fx prng =
  let division = if Prng.bool prng 0.5 then warm_a else warm_b in
  dept_query fx (dept_number ~division ~dept:(Prng.int prng warm_depts))

let pick_flash fx prng =
  if Prng.bool prng 0.8 then
    dept_query fx (dept_number ~division:flash_div ~dept:(Prng.int prng 2))
  else pick_warm fx prng

let pick_flip fx prng =
  let r = Prng.float prng 1.0 in
  if r < 0.7 then
    dept_query fx (dept_number ~division:warm_a ~dept:(Prng.int prng flip_depts))
  else if r < 0.8 then pick_warm fx prng
  else dept_query fx (dept_number ~division:new_div ~dept:0)

let find_phase result name =
  List.find (fun p -> String.equal p.pp_name name) result.rr_phases

let run_mode cfg mode =
  let fx = make_fixture cfg in
  let replica =
    FR.create_over fx.fx_transport ~master_host ~host:"leaf"
  in
  let ctl = make_controller cfg mode replica in
  let prng = Prng.create (cfg.dr_seed * 104729) in
  let phases = ref [] in
  let push p = phases := p :: !phases in
  push
    (run_phase cfg fx ctl ~name:"warmup"
       ~pick:(fun _ -> pick_warm fx prng)
       ~update:Churn);
  push
    (run_phase cfg fx ctl ~name:"flash-crowd"
       ~pick:(fun _ -> pick_flash fx prng)
       ~update:Churn);
  push
    (run_phase cfg fx ctl ~name:"geo-flip"
       ~pick:(fun _ -> pick_flip fx prng)
       ~update:Churn);
  push
    (run_phase cfg fx ctl ~name:"rename-storm"
       ~pick:(fun _ -> pick_flip fx prng)
       ~update:(Rename (dept_number ~division:warm_a ~dept:0)));
  (* A second replica joins mid-drift and rides the same shifted
     workload; it has no donors of its own, so its installs are cold in
     both modes — the point measured is how fast its hit ratio climbs. *)
  let replica2 =
    FR.create_over fx.fx_transport ~master_host ~host:"leaf-join"
  in
  let ctl2 = make_controller cfg mode replica2 in
  let join =
    run_phase cfg fx ctl2 ~name:"join-mid-drift"
      ~pick:(fun _ -> pick_flip fx prng)
      ~update:Churn
  in
  push join;
  let totals =
    Transition.add_report (Controller.totals ctl) (Controller.totals ctl2)
  in
  let result_phases = List.rev !phases in
  {
    rr_mode = mode;
    rr_phases = result_phases;
    rr_totals = totals;
    rr_transition_bytes =
      List.fold_left (fun acc p -> acc + p.pp_transition_bytes) 0 result_phases;
    rr_join_point = join;
    rr_adaptations =
      Controller.adaptation_count ctl + Controller.adaptation_count ctl2;
    rr_drift_adaptations =
      List.fold_left (fun acc p -> acc + p.pp_drift_adaptations) 0 result_phases;
    rr_unchanged_checks =
      Controller.unchanged_checks ctl + Controller.unchanged_checks ctl2;
    rr_failed_installs = totals.Transition.failed;
  }

(* --- Backpressure scenario --------------------------------------------- *)

type bp_point = {
  bp_limit : int;
  bp_updates : int;
  bp_queue_peak : int;
  bp_queue_total_after : int;  (** Outstanding queued actions at the end. *)
  bp_overflows : int;
  bp_resets : int;
  bp_escalated : bool;  (** The session was retired and re-established. *)
  bp_converged : bool;
}

(* A persist leaf stops draining its connection while updates keep
   committing.  With the queue bound above the burst the master parks
   everything and delivers on resume; with the bound below it the
   session overflows, the master frees the queue, and the consumer's
   reconnection escalates to a degraded resync.  Either way the
   master-side memory for the stalled leaf never exceeds the bound
   (plus the one in-flight dispatch). *)
let run_backpressure cfg ~overflow =
  let fx = make_fixture cfg in
  let limit = cfg.dr_bp_limit in
  let updates = if overflow then limit + (2 * cfg.dr_bp_updates) else cfg.dr_bp_updates in
  Resync.Master.set_persist_queue_limit fx.fx_master (Some limit);
  let q = dept_query fx (dept_number ~division:warm_a ~dept:0) in
  let consumer = Resync.Consumer.create (Enterprise.schema fx.fx_dir) q in
  (match
     Resync.Consumer.connect_persist consumer fx.fx_transport ~host:master_host
       ~from:"bp-leaf"
   with
  | Ok _ -> ()
  | Error e ->
      invalid_arg
        ("Drift.run_backpressure: " ^ Resync.Consumer.sync_error_to_string e));
  Resync.Consumer.pause_connection consumer;
  let dept = dept_number ~division:warm_a ~dept:0 in
  let emps =
    Enterprise.employees fx.fx_dir |> Array.to_list
    |> List.filter (fun e -> String.equal e.Enterprise.emp_dept dept)
  in
  let backend = Enterprise.backend fx.fx_dir in
  for i = 0 to updates - 1 do
    let e = List.nth emps (i mod List.length emps) in
    match
      Backend.apply backend
        (Update.modify e.Enterprise.emp_dn
           [ Update.replace_values "description" [ Printf.sprintf "bp-%d" i ] ])
    with
    | Ok _ -> ()
    | Error e -> invalid_arg ("Drift.run_backpressure: " ^ e)
  done;
  let peak = Resync.Master.push_queue_peak fx.fx_master in
  Resync.Consumer.resume_connection consumer;
  Resync.Master.flush_pushes fx.fx_master;
  let escalated =
    if not (Resync.Consumer.persist_alive consumer) then begin
      match
        Resync.Consumer.ensure_persist consumer fx.fx_transport
          ~host:master_host ~from:"bp-leaf"
      with
      | Ok _ -> true
      | Error e ->
          invalid_arg
            ("Drift.run_backpressure: reconnect: "
            ^ Resync.Consumer.sync_error_to_string e)
    end
    else false
  in
  let expected = Backend.count_matching backend q in
  let converged =
    Resync.Consumer.size consumer = expected
    && Seq.for_all
         (fun e ->
           match Backend.find backend (Entry.dn e) with
           | Some e' -> Entry.equal e e'
           | None -> false)
         (Resync.Consumer.entries_seq consumer)
  in
  let total_after, _ = Resync.Master.push_queue_stats fx.fx_master in
  {
    bp_limit = limit;
    bp_updates = updates;
    bp_queue_peak = peak;
    bp_queue_total_after = total_after;
    bp_overflows = Resync.Master.push_overflows fx.fx_master;
    bp_resets = Resync.Master.push_resets fx.fx_master;
    bp_escalated = escalated;
    bp_converged = converged;
  }

(* --- Long-haul write pressure ------------------------------------------ *)

type lh_config = {
  lh_employees : int;
  lh_seed : int;
  lh_updates : int;
  lh_leaves : int;  (** Polling leaves (leaf 0 is the laggard). *)
  lh_poll_every : int;  (** Updates between a normal leaf's polls. *)
  lh_history_limit : int;
  lh_queue_limit : int;
}

let lh_default_config =
  {
    lh_employees = 4000;
    lh_seed = 17;
    lh_updates = 12000;
    lh_leaves = 6;
    lh_poll_every = 50;
    lh_history_limit = 400;
    lh_queue_limit = 64;
  }

let lh_smoke_config =
  {
    lh_employees = 1200;
    lh_seed = 17;
    lh_updates = 1500;
    lh_leaves = 4;
    lh_poll_every = 40;
    lh_history_limit = 60;
    lh_queue_limit = 16;
  }

type lh_point = {
  lh_committed : int;
  lh_history_overflows : int;
  lh_push_overflows : int;
  lh_pending_max_seen : int;
      (** Largest per-session history buffer sampled after any commit —
          must stay at or under the high-water mark. *)
  lh_push_peak : int;
  lh_converged : int;
  lh_participants : int;  (** Poll leaves + the persist leaf. *)
}

(* A long committed-update stream against a master with both bounds
   set: leaf 0 never polls (its session history must hit the HWM and
   escalate instead of growing with the drift), a persist leaf stops
   draining a third of the way in (its queue must overflow and retire),
   and everyone else polls on a steady cadence.  At the end every
   participant — laggard and stalled leaf included — must reconverge
   through the degraded escalations. *)
let run_long_haul cfg =
  let dcfg =
    {
      default_config with
      dr_employees = cfg.lh_employees;
      dr_seed = cfg.lh_seed;
    }
  in
  let fx = make_fixture dcfg in
  Resync.Master.set_history_limit fx.fx_master (Some cfg.lh_history_limit);
  Resync.Master.set_persist_queue_limit fx.fx_master (Some cfg.lh_queue_limit);
  let backend = Enterprise.backend fx.fx_dir in
  let schema = Enterprise.schema fx.fx_dir in
  let leaf_depts =
    List.init cfg.lh_leaves (fun i ->
        dept_number ~division:(i mod 8) ~dept:(i / 8))
  in
  let persist_dept = dept_number ~division:(cfg.lh_leaves mod 8) ~dept:1 in
  let poll_consumers =
    List.map
      (fun d -> Resync.Consumer.create schema (dept_query fx d))
      leaf_depts
  in
  let persist_consumer =
    Resync.Consumer.create schema (dept_query fx persist_dept)
  in
  let poll i c =
    match
      Resync.Consumer.sync_over c fx.fx_transport ~host:master_host
        ~from:(Printf.sprintf "lh-leaf-%d" i)
    with
    | Ok _ -> ()
    | Error e ->
        invalid_arg
          ("Drift.run_long_haul: poll: "
          ^ Resync.Consumer.sync_error_to_string e)
  in
  List.iteri poll poll_consumers;
  (match
     Resync.Consumer.connect_persist persist_consumer fx.fx_transport
       ~host:master_host ~from:"lh-persist"
   with
  | Ok _ -> ()
  | Error e ->
      invalid_arg
        ("Drift.run_long_haul: persist: "
        ^ Resync.Consumer.sync_error_to_string e));
  let all_depts = persist_dept :: leaf_depts in
  let emp_pool =
    Enterprise.employees fx.fx_dir |> Array.to_list
    |> List.filter (fun e -> List.mem e.Enterprise.emp_dept all_depts)
    |> Array.of_list
  in
  if Array.length emp_pool = 0 then
    invalid_arg "Drift.run_long_haul: no employees in the subscribed depts";
  let pending_max_seen = ref 0 in
  for i = 0 to cfg.lh_updates - 1 do
    let e = emp_pool.(i mod Array.length emp_pool) in
    (match
       Backend.apply backend
         (Update.modify e.Enterprise.emp_dn
            [ Update.replace_values "description" [ Printf.sprintf "lh-%d" i ] ])
     with
    | Ok _ -> ()
    | Error e -> invalid_arg ("Drift.run_long_haul: " ^ e));
    let _, biggest = Resync.Master.pending_stats fx.fx_master in
    if biggest > !pending_max_seen then pending_max_seen := biggest;
    if i = cfg.lh_updates / 3 then
      Resync.Consumer.pause_connection persist_consumer;
    if (i + 1) mod cfg.lh_poll_every = 0 then
      (* Leaf 0 is the laggard: it never polls during the run. *)
      List.iteri (fun j c -> if j > 0 then poll j c) poll_consumers
  done;
  Resync.Consumer.resume_connection persist_consumer;
  Resync.Master.flush_pushes fx.fx_master;
  List.iteri poll poll_consumers;
  (match
     Resync.Consumer.ensure_persist persist_consumer fx.fx_transport
       ~host:master_host ~from:"lh-persist"
   with
  | Ok _ -> ()
  | Error e ->
      invalid_arg
        ("Drift.run_long_haul: reconnect: "
        ^ Resync.Consumer.sync_error_to_string e));
  let converged_one c =
    let expected = Backend.count_matching backend (Resync.Consumer.query c) in
    Resync.Consumer.size c = expected
    && Seq.for_all
         (fun e ->
           match Backend.find backend (Entry.dn e) with
           | Some e' -> Entry.equal e e'
           | None -> false)
         (Resync.Consumer.entries_seq c)
  in
  let participants = persist_consumer :: poll_consumers in
  {
    lh_committed = cfg.lh_updates;
    lh_history_overflows = Resync.Master.history_overflows fx.fx_master;
    lh_push_overflows = Resync.Master.push_overflows fx.fx_master;
    lh_pending_max_seen = !pending_max_seen;
    lh_push_peak = Resync.Master.push_queue_peak fx.fx_master;
    lh_converged =
      List.length (List.filter converged_one participants);
    lh_participants = List.length participants;
  }

let lh_gates_pass cfg p =
  p.lh_history_overflows > 0
  && p.lh_push_overflows > 0
  && p.lh_pending_max_seen <= cfg.lh_history_limit + 1
  && p.lh_push_peak <= cfg.lh_queue_limit + 1
  && p.lh_converged = p.lh_participants

let json_of_lh cfg p =
  Printf.sprintf
    "{\"updates\": %d, \"history_limit\": %d, \"queue_limit\": %d, \
     \"history_overflows\": %d, \"push_overflows\": %d, \
     \"pending_max_seen\": %d, \"push_peak\": %d, \"converged\": %d, \
     \"participants\": %d}"
    p.lh_committed cfg.lh_history_limit cfg.lh_queue_limit
    p.lh_history_overflows p.lh_push_overflows p.lh_pending_max_seen
    p.lh_push_peak p.lh_converged p.lh_participants

(* --- Whole sweep + gates ----------------------------------------------- *)

type gates = {
  g_geo_delta_le_half_cold : bool;
  g_hit_ratio_recovers : bool;
  g_queue_bounded : bool;
  g_no_failed_installs : bool;
}

type sweep = {
  sw_config : config;
  sw_delta : run_result;
  sw_cold : run_result;
  sw_bp_stall : bp_point;
  sw_bp_overflow : bp_point;
  sw_gates : gates;
}

let recover_threshold = 0.6

let gates_of ~delta ~cold ~stall ~overflow =
  let geo_d = (find_phase delta "geo-flip").pp_transition_bytes in
  let geo_c = (find_phase cold "geo-flip").pp_transition_bytes in
  let recovers =
    List.for_all
      (fun name ->
        let p = find_phase delta name in
        p.pp_tail_hit >= recover_threshold && p.pp_tail_hit >= p.pp_head_hit)
      [ "flash-crowd"; "geo-flip"; "join-mid-drift" ]
    && (find_phase delta "rename-storm").pp_tail_hit >= recover_threshold
  in
  let bounded p =
    p.bp_queue_peak <= p.bp_limit + 1
    && p.bp_queue_total_after = 0 && p.bp_converged
  in
  {
    g_geo_delta_le_half_cold = geo_c > 0 && 2 * geo_d <= geo_c;
    g_hit_ratio_recovers = recovers;
    g_queue_bounded =
      bounded stall && bounded overflow && overflow.bp_overflows > 0
      && overflow.bp_escalated && stall.bp_overflows = 0;
    g_no_failed_installs =
      delta.rr_failed_installs = 0 && cold.rr_failed_installs = 0;
  }

let run ?(config = default_config) () =
  let delta = run_mode config Controller.Delta in
  let cold = run_mode config Controller.Cold_swap in
  let stall = run_backpressure config ~overflow:false in
  let overflow = run_backpressure config ~overflow:true in
  {
    sw_config = config;
    sw_delta = delta;
    sw_cold = cold;
    sw_bp_stall = stall;
    sw_bp_overflow = overflow;
    sw_gates = gates_of ~delta ~cold ~stall ~overflow;
  }

let gates_pass g =
  g.g_geo_delta_le_half_cold && g.g_hit_ratio_recovers && g.g_queue_bounded
  && g.g_no_failed_installs

(* --- JSON -------------------------------------------------------------- *)

let json_of_report (r : Transition.report) =
  Printf.sprintf
    "{\"kept\": %d, \"rescoped\": %d, \"seeded\": %d, \"cold\": %d, \
     \"removed\": %d, \"failed\": %d}"
    r.Transition.kept r.Transition.rescoped r.Transition.seeded
    r.Transition.cold r.Transition.removed r.Transition.failed

let json_of_phase p =
  Printf.sprintf
    "      {\"name\": \"%s\", \"queries\": %d, \"hits\": %d, \"head_hit\": \
     %.4f, \"tail_hit\": %.4f, \"update_bytes\": %d, \"transition_bytes\": \
     %d, \"adaptations\": %d, \"drift_adaptations\": %d, \"report\": %s}"
    p.pp_name p.pp_queries p.pp_hits p.pp_head_hit p.pp_tail_hit
    p.pp_update_bytes p.pp_transition_bytes p.pp_adaptations
    p.pp_drift_adaptations (json_of_report p.pp_report)

let json_of_run r =
  Printf.sprintf
    "{\n    \"mode\": \"%s\",\n    \"phases\": [\n%s\n    ],\n    \
     \"transition_bytes\": %d,\n    \"adaptations\": %d,\n    \
     \"drift_adaptations\": %d,\n    \"unchanged_checks\": %d,\n    \
     \"totals\": %s\n  }"
    (Controller.mode_to_string r.rr_mode)
    (String.concat ",\n" (List.map json_of_phase r.rr_phases))
    r.rr_transition_bytes r.rr_adaptations r.rr_drift_adaptations
    r.rr_unchanged_checks
    (json_of_report r.rr_totals)

let json_of_bp p =
  Printf.sprintf
    "{\"limit\": %d, \"updates\": %d, \"queue_peak\": %d, \
     \"queue_total_after\": %d, \"overflows\": %d, \"resets\": %d, \
     \"escalated\": %b, \"converged\": %b}"
    p.bp_limit p.bp_updates p.bp_queue_peak p.bp_queue_total_after
    p.bp_overflows p.bp_resets p.bp_escalated p.bp_converged

let json_of_sweep s =
  let g = s.sw_gates in
  Printf.sprintf
    "{\n  \"config\": {\"employees\": %d, \"seed\": %d, \"budget\": %d, \
     \"half_life\": %d, \"phase_queries\": %d},\n  \"delta\": %s,\n  \
     \"cold\": %s,\n  \"backpressure_stall\": %s,\n  \
     \"backpressure_overflow\": %s,\n  \"gates\": {\n    \
     \"geo_flip_delta_le_half_cold\": %b,\n    \"hit_ratio_recovers\": %b,\n\
     \    \"stalled_queue_bounded\": %b,\n    \"no_failed_installs\": %b\n  \
     }\n}"
    s.sw_config.dr_employees s.sw_config.dr_seed s.sw_config.dr_budget
    s.sw_config.dr_half_life s.sw_config.dr_phase_queries
    (json_of_run s.sw_delta) (json_of_run s.sw_cold)
    (json_of_bp s.sw_bp_stall)
    (json_of_bp s.sw_bp_overflow)
    g.g_geo_delta_le_half_cold g.g_hit_ratio_recovers g.g_queue_bounded
    g.g_no_failed_installs
