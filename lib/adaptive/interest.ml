open Ldap

(* Scores decay lazily: a cell holds the score as of the last touch,
   and any read first rolls it forward by 0.5^(elapsed / half_life).
   The clock is the observation count, not wall time, so every run of
   the same workload produces the same scores. *)
type cell = { query : Query.t; mutable score : float; mutable last : int }

type t = {
  half_life : int;
  table : (string, cell) Hashtbl.t;
  mutable now : int;
  mutable observations : int;
}

let create ?(half_life = 256) () =
  if half_life <= 0 then invalid_arg "Interest.create: half_life must be > 0";
  { half_life; table = Hashtbl.create 64; now = 0; observations = 0 }

let half_life t = t.half_life
let now t = t.now
let observations t = t.observations
let count t = Hashtbl.length t.table

let decay t cell =
  if cell.last < t.now then begin
    let elapsed = float_of_int (t.now - cell.last) in
    cell.score <- cell.score *. (0.5 ** (elapsed /. float_of_int t.half_life));
    cell.last <- t.now
  end

let observe ?(weight = 1.0) t q =
  t.now <- t.now + 1;
  t.observations <- t.observations + 1;
  let key = Query.to_string q in
  match Hashtbl.find_opt t.table key with
  | Some cell ->
      decay t cell;
      cell.score <- cell.score +. weight
  | None ->
      Hashtbl.replace t.table key { query = q; score = weight; last = t.now }

let touch t =
  (* Advance the clock without crediting anyone: a query answered
     entirely out of interest-free paths still ages the table. *)
  t.now <- t.now + 1

let score t q =
  match Hashtbl.find_opt t.table (Query.to_string q) with
  | None -> 0.0
  | Some cell ->
      decay t cell;
      cell.score

let ranked t =
  let cells =
    Hashtbl.fold
      (fun key cell acc ->
        decay t cell;
        (key, cell) :: acc)
      t.table []
  in
  cells
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b.score a.score with 0 -> compare ka kb | c -> c)
  |> List.map (fun (_, cell) -> (cell.query, cell.score))

let prune t ~below =
  let victims =
    Hashtbl.fold
      (fun key cell acc ->
        decay t cell;
        if cell.score < below then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) victims;
  List.length victims
