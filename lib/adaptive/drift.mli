(** The drift scenario sweep: does adaptive replication keep up with a
    shifting workload, and at what transition cost?

    One synthetic enterprise serves a scripted five-phase workload —
    warmup over two divisions, a flash crowd on an uncovered
    department pair, a geography-bias flip concentrating on a few
    departments of a warm division plus a never-seen one, a
    subtree-rename storm inside the hot region, and a second replica
    joining mid-drift.  The whole schedule runs twice with identical
    seeds: once with delta transitions ({!Controller.Delta}) and once
    with the cold-swap baseline; per phase the sweep records hit
    ratios (head of the phase vs tail — recovery means the tail
    climbs back), update traffic and the bytes attributable to
    filter-set transitions.

    Two separate backpressure scenarios exercise the bounded persist
    queues: a stalled leaf whose burst fits the bound (parked and
    delivered on resume) and one whose burst overflows it (session
    retired, reconnection escalates to a degraded resync).

    Everything is deterministic — no wall clock, explicit PRNG seeds —
    so CI can diff two runs' JSON byte-for-byte. *)

type config = {
  dr_employees : int;
  dr_seed : int;
  dr_budget : int;  (** Controller size budget, estimated entries. *)
  dr_half_life : int;
  dr_min_score : float;
  dr_drift_check : int;
  dr_drift_ratio : float;
  dr_revolution : int;
  dr_phase_queries : int;
  dr_update_every : int;  (** Queries between a commit + leaf poll. *)
  dr_bp_limit : int;  (** Persist outbound queue bound. *)
  dr_bp_updates : int;  (** Updates committed against the stalled leaf. *)
}

val default_config : config
(** 8000 employees, 240 queries per phase. *)

val smoke_config : config
(** CI-sized: 1600 employees, 160 queries per phase. *)

(** One phase of one run. *)
type phase_point = {
  pp_name : string;
  pp_queries : int;
  pp_hits : int;
  pp_head_hit : float;  (** Hit ratio over the first half. *)
  pp_tail_hit : float;  (** Hit ratio over the last third. *)
  pp_update_bytes : int;  (** Sync bytes of the phase's poll rounds. *)
  pp_transition_bytes : int;
      (** Sync bytes spent inside the phase's adaptations. *)
  pp_adaptations : int;
  pp_drift_adaptations : int;  (** Of which the drift trigger fired. *)
  pp_report : Transition.report;
}

(** One full workload run in one transition mode. *)
type run_result = {
  rr_mode : Controller.mode;
  rr_phases : phase_point list;
  rr_totals : Transition.report;
  rr_transition_bytes : int;
  rr_join_point : phase_point;  (** The joining replica's phase. *)
  rr_adaptations : int;
  rr_drift_adaptations : int;
  rr_unchanged_checks : int;
  rr_failed_installs : int;
}

val run_mode : config -> Controller.mode -> run_result
(** Runs the five-phase workload in one mode over a fresh fixture. *)

val find_phase : run_result -> string -> phase_point
(** The named phase; raises [Not_found] for an unknown name. *)

(** One backpressure scenario outcome. *)
type bp_point = {
  bp_limit : int;
  bp_updates : int;
  bp_queue_peak : int;  (** Largest queue the master ever held. *)
  bp_queue_total_after : int;  (** Outstanding queued actions at the end. *)
  bp_overflows : int;
  bp_resets : int;
  bp_escalated : bool;  (** The session was retired and re-established. *)
  bp_converged : bool;  (** Final content matches the master. *)
}

val run_backpressure : config -> overflow:bool -> bp_point
(** Stalls a persist leaf under a committed-update burst sized to fit
    the queue bound ([overflow:false]) or exceed it ([overflow:true]),
    then resumes, flushes and — after an overflow — reconnects through
    the degraded escalation. *)

(** {1 Long-haul write pressure}

    A separate scenario for [bench scale --long-haul]: a long
    committed-update stream against a master with both the session
    history high-water mark and the persist queue bound set.  One
    polling leaf never polls during the run (its history must hit the
    HWM and escalate), a persist leaf stops draining a third of the
    way in (its queue must overflow and retire), and everyone else
    polls on a steady cadence.  At the end every participant must
    reconverge through the degraded escalations. *)

type lh_config = {
  lh_employees : int;
  lh_seed : int;
  lh_updates : int;
  lh_leaves : int;  (** Polling leaves (leaf 0 is the laggard). *)
  lh_poll_every : int;  (** Updates between a normal leaf's polls. *)
  lh_history_limit : int;
  lh_queue_limit : int;
}

val lh_default_config : lh_config
(** 12000 updates against a 400-action HWM and a 64-action queue. *)

val lh_smoke_config : lh_config
(** CI-sized: 1500 updates, 60-action HWM, 16-action queue. *)

type lh_point = {
  lh_committed : int;
  lh_history_overflows : int;
  lh_push_overflows : int;
  lh_pending_max_seen : int;
      (** Largest per-session history buffer sampled after any commit —
          must stay at or under the high-water mark. *)
  lh_push_peak : int;
  lh_converged : int;
  lh_participants : int;  (** Poll leaves + the persist leaf. *)
}

val run_long_haul : lh_config -> lh_point
(** Runs the whole long-haul scenario over a fresh fixture. *)

val lh_gates_pass : lh_config -> lh_point -> bool
(** Both escalation counters fired, both buffers stayed within a
    one-action grace of their bounds, and every participant
    reconverged. *)

val json_of_lh : lh_config -> lh_point -> string
(** One flat JSON object; deterministic. *)

(** The acceptance gates emitted into [BENCH_PR10.json]. *)
type gates = {
  g_geo_delta_le_half_cold : bool;
      (** Geo-flip delta transition bytes ≤ 50% of cold swap. *)
  g_hit_ratio_recovers : bool;
      (** Every drift phase's tail hit ratio recovers. *)
  g_queue_bounded : bool;
      (** Stalled-leaf queue stayed ≤ bound + 1, drained to zero, and
          the overflow run escalated and reconverged. *)
  g_no_failed_installs : bool;
}

type sweep = {
  sw_config : config;
  sw_delta : run_result;
  sw_cold : run_result;
  sw_bp_stall : bp_point;
  sw_bp_overflow : bp_point;
  sw_gates : gates;
}

val run : ?config:config -> unit -> sweep
(** Delta run, cold run (identical seeds), both backpressure
    scenarios, gates. *)

val gates_pass : gates -> bool

val json_of_sweep : sweep -> string
(** The whole sweep as an indented JSON object — the [BENCH_PR10.json]
    payload.  Contains no wall-clock fields; byte-deterministic. *)
