(** Windowed, exponentially-decayed per-candidate benefit.

    The hit counters of {!Ldap_selection.Candidate} measure benefit
    since the last revolution — fine for a stable workload, blind to a
    shifting one: a candidate that was hot an hour ago and is dead now
    keeps outranking the flash crowd until enough revolutions wash it
    out.  This tracker replaces the counter with a decayed score: each
    observation adds its weight, and every score halves per
    [half_life] elapsed observations.  Decay is applied lazily on
    read, so cost is O(1) per observation and O(candidates) per
    ranking.

    The clock is the observation count, never wall time — rankings are
    deterministic for a given workload, which the drift sweep's CI
    double-run diff relies on. *)

open Ldap

type t

val create : ?half_life:int -> unit -> t
(** [half_life] (default 256) is the number of observations over which
    an untouched score halves.
    @raise Invalid_argument when [half_life <= 0]. *)

val half_life : t -> int

val observe : ?weight:float -> t -> Query.t -> unit
(** Advances the clock one tick and credits [weight] (default 1.0) to
    the query's decayed score, registering it first if new. *)

val touch : t -> unit
(** Advances the clock one tick without crediting any candidate —
    ages the whole table, used for queries that produce no
    candidates. *)

val score : t -> Query.t -> float
(** The query's decayed score as of now; 0.0 if never observed. *)

val ranked : t -> (Query.t * float) list
(** All candidates with their decayed scores, best first; ties broken
    by canonical query string so the order is deterministic. *)

val prune : t -> below:float -> int
(** Drops candidates whose decayed score has fallen below the
    threshold; returns how many were dropped.  Keeps the table O(live
    interest) instead of O(everything ever observed). *)

val count : t -> int
(** Candidates currently tracked. *)

val now : t -> int
(** The observation clock. *)

val observations : t -> int
(** Total {!observe} calls (excludes {!touch}). *)
