open Ldap
module C = Ldap_containment
module FR = Ldap_replication.Filter_replica
module Generalize = Ldap_selection.Generalize

type mode = Delta | Cold_swap
type trigger = Periodic | Drift | Forced

type config = {
  rules : Generalize.rule list;
  include_queries : bool;
  half_life : int;
  min_score : float;
  size_budget : int;
  revolution_interval : int;
  drift_check_interval : int;
  drift_ratio : float;
  mode : mode;
}

let default_config =
  {
    rules = [];
    include_queries = true;
    half_life = 256;
    min_score = 1.0;
    size_budget = 1000;
    revolution_interval = 200;
    drift_check_interval = 25;
    drift_ratio = 2.0;
    mode = Delta;
  }

type adaptation = {
  at : int;
  trigger : trigger;
  target : Query.t list;
  plan : Transition.plan;
  report : Transition.report;
}

type t = {
  config : config;
  replica : FR.t;
  interest : Interest.t;
  mutable observed : int;
  mutable adaptations : adaptation list;  (* newest first *)
  mutable drift_checks : int;
  mutable unchanged_checks : int;
}

let create config replica =
  {
    config;
    replica;
    interest = Interest.create ~half_life:config.half_life ();
    observed = 0;
    adaptations = [];
    drift_checks = 0;
    unchanged_checks = 0;
  }

let config t = t.config
let replica t = t.replica
let interest t = t.interest
let observations t = t.observed
let adaptations t = List.rev t.adaptations
let adaptation_count t = List.length t.adaptations
let drift_checks t = t.drift_checks
let unchanged_checks t = t.unchanged_checks

let totals t =
  List.fold_left
    (fun acc a -> Transition.add_report acc a.report)
    Transition.empty_report t.adaptations

let covered schema stored q =
  List.exists
    (fun s -> C.Query_containment.contained schema ~query:q ~stored:s)
    stored

(* Greedy benefit/size selection under the size budget, the section
   6.2 shape with decayed interest as the benefit.  Candidates already
   contained in a picked one are free and skipped; sizes are asked of
   the upstream estimator fresh at every selection (the stale-cache
   lesson of the Candidate table). *)
let select t =
  let schema = FR.schema t.replica in
  let viable =
    List.filter (fun (_, s) -> s >= t.config.min_score)
      (Interest.ranked t.interest)
  in
  let priced =
    List.map
      (fun (q, score) ->
        let size = max 1 (FR.estimate_size t.replica q) in
        (q, score /. float_of_int size, size))
      viable
  in
  let priced =
    List.sort
      (fun (qa, ra, _) (qb, rb, _) ->
        match compare rb ra with
        | 0 -> compare (Query.to_string qa) (Query.to_string qb)
        | c -> c)
      priced
  in
  let picked, _ =
    List.fold_left
      (fun (picked, used) (q, _, size) ->
        if covered schema picked q then (picked, used)
        else if used + size <= t.config.size_budget then (q :: picked, used + size)
        else (picked, used))
      ([], 0) priced
  in
  List.rev picked

let same_set a b =
  List.length a = List.length b
  && List.for_all (fun q -> List.exists (Query.equal q) b) a

let adapt t ~trigger =
  let target = select t in
  let current = FR.stored_filters t.replica in
  if same_set current target then begin
    t.unchanged_checks <- t.unchanged_checks + 1;
    None
  end
  else begin
    let schema = FR.schema t.replica in
    let plan = Transition.plan schema ~current ~target in
    let report =
      match t.config.mode with
      | Delta -> Transition.apply t.replica plan
      | Cold_swap -> Transition.apply_cold t.replica plan
    in
    let a = { at = t.observed; trigger; target; plan; report } in
    t.adaptations <- a :: t.adaptations;
    Some a
  end

let force_adapt t = adapt t ~trigger:Forced

(* Early re-selection fires when some uncovered candidate's decayed
   score dominates the best candidate the stored set already covers —
   the flash-crowd / geography-flip signal that should not wait for
   the periodic revolution. *)
let drifted t =
  let schema = FR.schema t.replica in
  let stored = FR.stored_filters t.replica in
  let viable =
    List.filter (fun (_, s) -> s >= t.config.min_score)
      (Interest.ranked t.interest)
  in
  let best_uncovered, best_covered =
    List.fold_left
      (fun (bu, bc) (q, score) ->
        if covered schema stored q then (bu, max bc score)
        else (max bu score, bc))
      (0.0, 0.0) viable
  in
  best_uncovered >= t.config.min_score
  && best_uncovered > t.config.drift_ratio *. best_covered

let observe t q =
  let candidates = Generalize.candidates t.config.rules q in
  let candidates = if t.config.include_queries then q :: candidates else candidates in
  (match candidates with
  | [] -> Interest.touch t.interest
  | cs -> List.iter (Interest.observe t.interest) cs);
  t.observed <- t.observed + 1;
  let due every = every > 0 && t.observed mod every = 0 in
  if due t.config.drift_check_interval then begin
    t.drift_checks <- t.drift_checks + 1;
    if drifted t then ignore (adapt t ~trigger:Drift)
    else if due t.config.revolution_interval then
      ignore (adapt t ~trigger:Periodic)
  end
  else if due t.config.revolution_interval then
    ignore (adapt t ~trigger:Periodic)

let trigger_to_string = function
  | Periodic -> "periodic"
  | Drift -> "drift"
  | Forced -> "forced"

let mode_to_string = function Delta -> "delta" | Cold_swap -> "cold-swap"
