(** Delta filter-set transitions.

    A selection revolution (or a drift-triggered re-scope) changes the
    stored filter set from [current] to [target].  The blunt way is a
    cold swap: remove what is no longer selected, fetch every new
    filter's initial content from scratch.  Containment (Props 1–3)
    does better: a new filter contained in a stored one can be seeded
    entirely from local content and opened as a degraded-resync
    re-scope of the donor's session; one that merely overlaps stored
    content can be seeded with the overlap and Merkle-reconciled, so
    only the net-new region crosses the wire.  Removed-only regions
    become local deletes — they never touch the network.

    {!plan} computes the classification; {!apply} executes it through
    {!Ldap_replication.Filter_replica}'s delta installs, installs
    before removals so donors survive long enough to be read. *)

open Ldap

(** How one target filter will be brought in. *)
type step =
  | Keep of Query.t  (** Already stored: retained, no traffic. *)
  | Rescope of { query : Query.t; donor : Query.t }
      (** Contained in stored [donor]: seed locally, resume degraded
          from the donor's acknowledged CSN. *)
  | Seed of { query : Query.t; donors : Query.t list }
      (** Overlaps the [donors]: seed the overlap, Merkle-reconcile
          the rest. *)
  | Fetch of Query.t  (** No usable overlap: cold initial fetch. *)

type plan = { steps : step list; removes : Query.t list }

val plan : Schema.t -> current:Query.t list -> target:Query.t list -> plan
(** Classifies every target query against the current stored set
    (first containing donor wins; overlap donors are pre-filtered by a
    cheap region/filter-disjointness test that is harmless to get
    wrong) and lists the stored queries the target drops. *)

val step_query : step -> Query.t
(** The target query a step installs. *)

(** What actually happened when a plan ran: installs by outcome (a
    planned rescope/seed may degrade to [cold] when its preconditions
    fail at execution time), removals, and failed installs. *)
type report = {
  kept : int;
  rescoped : int;
  seeded : int;
  cold : int;
  removed : int;
  failed : int;
}

val empty_report : report
(** All counters zero. *)

val add_report : report -> report -> report
(** Counter-wise sum, for run totals. *)

val apply : Ldap_replication.Filter_replica.t -> plan -> report
(** Executes the plan with delta installs
    ({!Ldap_replication.Filter_replica.install_filter_rescoped} /
    [install_filter_seeded]), installs first, removals last. *)

val apply_cold : Ldap_replication.Filter_replica.t -> plan -> report
(** Executes the same plan as a blunt remove+install swap: the whole
    current set is torn down — [Keep] regions included — and every
    target query is fetched from scratch.  This is what a
    non-delta-aware replica does on re-selection; the baseline the
    drift sweep's transition-byte gate compares {!apply} against. *)

val report_to_string : report -> string
