open Ldap
module C = Ldap_containment
module FR = Ldap_replication.Filter_replica

type step =
  | Keep of Query.t
  | Rescope of { query : Query.t; donor : Query.t }
  | Seed of { query : Query.t; donors : Query.t list }
  | Fetch of Query.t

type plan = { steps : step list; removes : Query.t list }

(* Could entries under [a] also lie under [b]?  A cheap pre-filter for
   donor selection: sound to get wrong in either direction — a useless
   donor seeds nothing and the Merkle walk repairs, a missed donor
   just costs a colder install. *)
let may_overlap schema a b =
  (Query.region_subset ~inner:a ~outer:b
  || Query.region_subset ~inner:b ~outer:a
  || Query.in_scope a b.Query.base
  || Query.in_scope b a.Query.base)
  && not (C.Filter_containment.disjoint schema a.Query.filter b.Query.filter)

let classify schema current q =
  if List.exists (Query.equal q) current then Keep q
  else
    match
      List.find_opt
        (fun cur -> C.Query_containment.contained schema ~query:q ~stored:cur)
        current
    with
    | Some donor -> Rescope { query = q; donor }
    | None -> (
        match List.filter (may_overlap schema q) current with
        | [] -> Fetch q
        | donors -> Seed { query = q; donors })

let plan schema ~current ~target =
  let steps = List.map (classify schema current) target in
  let removes =
    List.filter (fun cur -> not (List.exists (Query.equal cur) target)) current
  in
  { steps; removes }

let step_query = function
  | Keep q | Fetch q -> q
  | Rescope { query; _ } | Seed { query; _ } -> query

type report = {
  kept : int;
  rescoped : int;
  seeded : int;
  cold : int;
  removed : int;
  failed : int;
}

let empty_report =
  { kept = 0; rescoped = 0; seeded = 0; cold = 0; removed = 0; failed = 0 }

let add_report a b =
  {
    kept = a.kept + b.kept;
    rescoped = a.rescoped + b.rescoped;
    seeded = a.seeded + b.seeded;
    cold = a.cold + b.cold;
    removed = a.removed + b.removed;
    failed = a.failed + b.failed;
  }

let count_how r = function
  | FR.Kept -> { r with kept = r.kept + 1 }
  | FR.Rescoped -> { r with rescoped = r.rescoped + 1 }
  | FR.Seeded -> { r with seeded = r.seeded + 1 }
  | FR.Cold -> { r with cold = r.cold + 1 }

let apply replica plan =
  (* Installs run before removals so every donor named by the plan is
     still stored (and still synchronized) while its beneficiaries
     seed from it; only then does the retained-content window close. *)
  let r =
    List.fold_left
      (fun r step ->
        match step with
        | Keep _ -> { r with kept = r.kept + 1 }
        | Rescope { query; donor } -> (
            match FR.install_filter_rescoped replica query ~donor with
            | Ok how -> count_how r how
            | Error _ -> { r with failed = r.failed + 1 })
        | Seed { query; donors } -> (
            match FR.install_filter_seeded replica query ~donors with
            | Ok how -> count_how r how
            | Error _ -> { r with failed = r.failed + 1 })
        | Fetch q -> (
            match FR.install_filter replica q with
            | Ok () -> { r with cold = r.cold + 1 }
            | Error _ -> { r with failed = r.failed + 1 }))
      empty_report plan.steps
  in
  List.iter (FR.remove_filter replica) plan.removes;
  { r with removed = List.length plan.removes }

let apply_cold replica plan =
  (* The blunt remove+install baseline the sweep compares against:
     tear down the entire current set — retained regions included —
     then fetch every target from scratch.  This is what a
     non-delta-aware replica does on re-selection, and what the delta
     planner's retained/rescoped regions save. *)
  let kept_current =
    List.filter_map (function Keep q -> Some q | _ -> None) plan.steps
  in
  List.iter (FR.remove_filter replica) (plan.removes @ kept_current);
  let r =
    List.fold_left
      (fun r step ->
        match FR.install_filter replica (step_query step) with
        | Ok () -> { r with cold = r.cold + 1 }
        | Error _ -> { r with failed = r.failed + 1 })
      empty_report plan.steps
  in
  { r with removed = List.length plan.removes + List.length kept_current }

let report_to_string r =
  Printf.sprintf "kept=%d rescoped=%d seeded=%d cold=%d removed=%d failed=%d"
    r.kept r.rescoped r.seeded r.cold r.removed r.failed
