(** Attribute values and matching rules (re-export).

    The implementation lives in {!Ldap_compile.Value} so that the
    compile layer — attribute interning, filter bytecode, entry views
    with pre-canonicalized values — can share the exact same matching
    rules without depending on this library.  The [struct include]
    form preserves type equalities: [Ldap.Value.syntax] {e is}
    [Ldap_compile.Value.syntax]. *)

include module type of struct
  include Ldap_compile.Value
end
