(** A directory server backend: naming contexts, indexes, search
    execution, update application and the committed-update log.

    This is the building block for both masters and replicas.  It owns
    one or more naming contexts (section 2.3), keeps equality/prefix
    indexes on configured attributes, assigns a {!Csn.t} to every
    committed update, records pre/post images in an update log and
    notifies subscribers — which is how the ReSync master maintains
    per-session history. *)

type t

val create : ?indexed:string list -> Schema.t -> t
(** An empty backend.  [indexed] lists attributes to index (defaults
    to none; [objectclass] is always added). *)

val schema : t -> Schema.t

val add_context : t -> Entry.t -> (unit, string) result
(** Installs a new naming context whose suffix entry is given.  Fails
    when the suffix is inside, or encloses, an existing context. *)

val contexts : t -> Dit.t list
val context_for : t -> Dn.t -> Dit.t option
(** Most specific naming context whose namespace covers the DN. *)

val find : t -> Dn.t -> Entry.t option
(** O(1) lookup across all naming contexts. *)

val total_entries : t -> int
(** Entries held across all naming contexts. *)

val fold_entries : t -> init:'a -> f:('a -> Entry.t -> 'a) -> 'a
(** Folds over every entry in flat-mirror (insertion) order. *)

val entries_seq : t -> Entry.t Seq.t
(** All entries as a sequence over the backend's flat content mirror
    (insertion order) — the streaming form full-content walks
    (tombstone replay, anti-entropy tree construction) consume, with
    no per-walk list copy and no DIT traversal. *)

val content_store : t -> Content_store.t
(** The flat {!Content_store} mirror of every naming context,
    maintained on each commit and restore.  Its change spine is in
    CSN commit order; readers use it for O(diff) change enumeration
    and memory-residency reports. *)

(** {1 Search} *)

type search_error =
  | No_such_object of Dn.t
      (** Base outside every context, or missing within one. *)
  | Base_referral of { dn : Dn.t; urls : string list }
      (** Name resolution hit a referral object at or above the base:
          the client must continue there (Figure 2's first hop). *)

type search_result = {
  entries : Entry.t list;
      (** Matching entries with attribute selection applied. *)
  references : string list list;
      (** Continuation references: the [ref] URLs of each referral
          object found in the search scope (subordinate contexts). *)
}

val search : t -> Query.t -> (search_result, search_error) Stdlib.result
(** Evaluates the query against the covering naming context, using
    attribute indexes where the filter allows. *)

val compare_values : t -> Dn.t -> attr:string -> value:string -> (bool, string) result
(** The LDAP compare operation (section 2.2): does the entry carry the
    asserted value under the attribute's matching rule?  [Error] when
    the entry does not exist. *)

val count_matching : t -> Query.t -> int
(** Number of entries the query would return; 0 on search errors.
    Used by the filter-selection algorithm as its size estimate. *)

(** {1 Updates} *)

val apply : t -> Update.op -> (Update.record, string) result
(** Validates and commits an update, advancing the CSN, maintaining
    indexes, appending to the log and notifying subscribers. *)

val csn : t -> Csn.t
(** CSN of the last committed update. *)

val log_since : t -> Csn.t -> Update.record list
(** Records with CSN strictly greater than the argument, oldest
    first.  Empty when the log has been trimmed past that point (the
    caller must then fall back to a degraded synchronization mode). *)

val log_complete_since : t -> Csn.t -> bool
(** Whether the log still reaches back to (exclusive) the given CSN. *)

val trim_log : t -> before:Csn.t -> unit
(** Drops records with CSN < [before]; models bounded history. *)

val log_length : t -> int

val log_floor : t -> Csn.t
(** The changelog's trim floor: records at or below it are gone. *)

val subscribe : t -> (Update.record -> unit) -> unit
(** Called synchronously, in commit order, after each commit. *)

(** {1 Recovery}

    Hooks for the durable store: rebuild a backend from a snapshot
    image plus a replayed WAL suffix.  None of these validate,
    re-stamp or notify subscribers — the images already carry their
    committed state. *)

val restore_entry : t -> Entry.t -> (unit, string) result
(** Inserts (or, for an already-present DN such as a context suffix,
    replaces) a snapshot entry image verbatim, maintaining indexes
    and referral bookkeeping.  Parents must be restored before
    children. *)

val restore_csn : t -> Csn.t -> unit
(** Sets the committed CSN to the snapshot's value. *)

val restore_log : t -> floor:Csn.t -> Update.record list -> unit
(** Restores the changelog ring: its trim floor, then the retained
    records oldest first. *)

val replay_record : t -> Update.record -> (unit, string) result
(** Replays one WAL record past the snapshot: applies its recorded
    images to the DIT, appends it to the changelog and advances the
    CSN to the record's — without re-notifying subscribers. *)
