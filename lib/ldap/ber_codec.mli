(** BER/DER wire codec for the LDAP protocol subset this system
    exchanges (RFC 2251 section 4 framing, definite-length DER).

    Covered protocol operations: SearchRequest, SearchResultEntry,
    SearchResultReference and SearchResultDone, plus controls — among
    them the manageDsaIT control and the paper's resync control
    [(mode, cookie)] carried as an extension control (section 5.2).

    The {!Ber} module remains the lightweight size {e model} used by
    the experiments; this codec provides actual wire images, used to
    validate that model and by the round-trip property tests. *)

type result_done = {
  code : int;  (** 0 success, 10 referral, 32 noSuchObject, ... *)
  matched : Dn.t;
  diagnostic : string;
  referral : string list;  (** LDAP URLs when [code = 10]. *)
}

type operation =
  | Search_request of Query.t
  | Search_result_entry of Entry.t
  | Search_result_reference of string list
  | Search_result_done of result_done

type control = {
  control_type : string;  (** OID. *)
  criticality : bool;
  control_value : string option;  (** Raw BER value. *)
}

type message = { id : int; op : operation; controls : control list }

val manage_dsa_it_oid : string
val resync_oid : string

val resync_control : mode:string -> cookie:string option -> control
(** Encodes the paper's [(mode, cookie)] resync control value. *)

val decode_resync_control : control -> (string * string option, string) result

val encode : message -> string
(** DER encoding of the whole LDAPMessage.  Internally emits into one
    reused buffer ({!encode_to}) and copies out once. *)

val encode_to : Ldap_compile.Wbuf.t -> message -> unit
(** Zero-copy encode: prepend the message's DER image into a caller
    buffer.  Reusing one buffer across messages makes encoding
    allocation-free apart from buffer growth. *)

val decode : string -> (message, string) result
(** Decodes one LDAPMessage occupying the entire input. *)

val encoded_size : message -> int

val search_request : ?id:int -> Query.t -> message
(** Convenience: a SearchRequest message with the manageDsaIT control
    attached when the query asks for it. *)

val entry_message : ?id:int -> Entry.t -> message

exception Decode_error of string
(** Raised by the {!Der} cursor readers on malformed input; {!decode}
    catches it internally, callers of [Der] handle it themselves. *)

(** The raw DER primitives behind the codec, exposed for other
    serialization clients — notably the durable store, whose WAL
    records and snapshots reuse this codec for entries, queries and
    framing rather than inventing a second wire format. *)
module Der : sig
  type cursor
  (** Read position inside one DER value. *)

  val integer : int -> string
  (** DER INTEGER (non-negative, minimal two's-complement). *)

  val boolean : bool -> string
  (** DER BOOLEAN. *)

  val enum : int -> string
  (** DER ENUMERATED, single byte [0..255]. *)

  val octets : string -> string
  (** DER OCTET STRING. *)

  val seq : string list -> string
  (** DER SEQUENCE of already-encoded parts. *)

  val option : ('a -> string) -> 'a option -> string
  (** [None] as an empty SEQUENCE, [Some v] as a one-element one. *)

  val entry : Entry.t -> string
  (** A SearchResultEntry TLV (same image as {!entry_message}'s op). *)

  val query : Query.t -> string
  (** A SearchRequest TLV.  The [manage_dsa_it] flag travels as a
      control at the message layer, so it is {e not} preserved. *)

  (** Writer twins of the combinators above, emitting into an
      {!Ldap_compile.Wbuf} backwards with no intermediate strings.
      Because the buffer is written back-to-front, composite values
      must emit their children in {e reverse} field order between
      {!W.mark} and {!W.close_seq}; the string combinators remain the
      readable spelling for cold paths.  Both produce byte-identical
      DER, so records written by either are read by the same
      [read_*] cursors. *)
  module W : sig
    type w = Ldap_compile.Wbuf.t
    (** The target buffer. *)

    val mark : w -> int
    (** Open a composite value; pass the result to {!close_seq}. *)

    val close_seq : w -> int -> unit
    (** Close a SEQUENCE whose children were emitted (in reverse
        order) since the given {!mark}. *)

    val close_octets : w -> int -> unit
    (** Close an OCTET STRING over the raw bytes emitted since the
        given {!mark} — for wrapping an already-emitted image. *)

    val integer : w -> int -> unit
    (** Writer twin of {!integer}. *)

    val boolean : w -> bool -> unit
    (** Writer twin of {!boolean}. *)

    val enum : w -> int -> unit
    (** Writer twin of {!enum}. *)

    val octets : w -> string -> unit
    (** Writer twin of {!octets}. *)

    val option : w -> ('a -> unit) -> 'a option -> unit
    (** Writer twin of {!option}; the callback must emit into [w]. *)

    val entry : w -> Entry.t -> unit
    (** Writer twin of {!entry}. *)

    val query : w -> Query.t -> unit
    (** Writer twin of {!query}. *)
  end

  val cursor : string -> cursor
  (** Cursor over a whole buffer. *)

  val at_end : cursor -> bool
  (** No bytes left under the cursor's limit. *)

  val read_integer : cursor -> int
  (** Reads an INTEGER; raises {!Decode_error} on anything else. *)

  val read_boolean : cursor -> bool
  (** Reads a BOOLEAN. *)

  val read_enum : cursor -> int
  (** Reads an ENUMERATED. *)

  val read_octets : cursor -> string
  (** Reads an OCTET STRING. *)

  val read_seq : cursor -> cursor
  (** Enters a SEQUENCE, returning a cursor over its contents. *)

  val read_option : (cursor -> 'a) -> cursor -> 'a option
  (** Inverse of {!option}. *)

  val read_entry : cursor -> Entry.t
  (** Inverse of {!entry}. *)

  val read_query : cursor -> Query.t
  (** Inverse of {!query}. *)
end
