(* Value semantics live in [Ldap_compile.Value] so the compile layer
   (attribute interning, filter bytecode, pre-canonicalized entry
   views) can share them without a dependency cycle; this module
   re-exports them under the historical [Ldap.Value] path. *)
include Ldap_compile.Value
