(* DN-keyed content store with interned ids and a change spine.

   The store is the shared content shape for every layer that holds a
   set of entries: backend mirror, consumer replica content, and the
   snapshot-diff cursors the topology nodes serve from.  Three parts:

   - [ids]: canonical-DN -> slot id.  A DN is interned once; deleting
     the entry tombstones the slot (entry = None) but keeps the id, so
     spine events can name entries by a dense int forever.
   - [slots]: the dense array of slots, giving O(1) access by id and a
     cheap ordered iterator (insertion order, holes skipped).
   - [spine]: a ring of change events (slot ids, with the originating
     CSN stamp when known) in commit order.  A reader remembers the
     revision it last consumed and asks for everything after it; when
     the spine has been trimmed past that revision the reader is told
     to rescan instead of being served a silent gap. *)

type slot = { dn : Dn.t; mutable entry : Entry.t option }

type t = {
  ids : (string, int) Hashtbl.t;  (* canonical DN -> slot id *)
  mutable slots : slot option array;
  mutable slot_count : int;  (* slots allocated, live or tombstoned *)
  mutable live : int;  (* slots holding an entry *)
  spine_cap : int;
  mutable spine : int array;  (* slot ids, oldest first from [spine_start] *)
  mutable spine_csn : int array;  (* CSN stamps parallel to [spine]; 0 unknown *)
  mutable spine_start : int;
  mutable spine_len : int;
  mutable floor_rev : int;  (* events up to this revision were dropped *)
}

let default_spine_cap = 16_384

let create ?(spine_cap = default_spine_cap) () =
  {
    ids = Hashtbl.create 256;
    slots = Array.make 64 None;
    slot_count = 0;
    live = 0;
    spine_cap = max 1 spine_cap;
    spine = Array.make 64 0;
    spine_csn = Array.make 64 0;
    spine_start = 0;
    spine_len = 0;
    floor_rev = 0;
  }

let size t = t.live
let interned t = t.slot_count
let rev t = t.floor_rev + t.spine_len
let floor t = t.floor_rev
let spine_length t = t.spine_len

(* --- Slots ----------------------------------------------------------- *)

let grow_slots t =
  if t.slot_count = Array.length t.slots then begin
    let grown = Array.make (2 * Array.length t.slots) None in
    Array.blit t.slots 0 grown 0 t.slot_count;
    t.slots <- grown
  end

let intern t dn =
  let key = Dn.canonical dn in
  match Hashtbl.find_opt t.ids key with
  | Some id -> id
  | None ->
      grow_slots t;
      let id = t.slot_count in
      t.slots.(id) <- Some { dn; entry = None };
      t.slot_count <- t.slot_count + 1;
      Hashtbl.replace t.ids key id;
      id

let id_of t dn = Hashtbl.find_opt t.ids (Dn.canonical dn)

let dn_of t id =
  match t.slots.(id) with Some s -> s.dn | None -> invalid_arg "dn_of"

(* --- Spine ----------------------------------------------------------- *)

(* Dropping consumed prefix and growing share one compaction: events in
   [spine_start ..] move to the front of a (possibly larger) array. *)
let spine_make_room t =
  let cap = Array.length t.spine in
  if t.spine_start + t.spine_len = cap then
    if t.spine_len * 2 <= cap then begin
      Array.blit t.spine t.spine_start t.spine 0 t.spine_len;
      Array.blit t.spine_csn t.spine_start t.spine_csn 0 t.spine_len;
      t.spine_start <- 0
    end
    else begin
      let spine = Array.make (2 * cap) 0 in
      let csns = Array.make (2 * cap) 0 in
      Array.blit t.spine t.spine_start spine 0 t.spine_len;
      Array.blit t.spine_csn t.spine_start csns 0 t.spine_len;
      t.spine <- spine;
      t.spine_csn <- csns;
      t.spine_start <- 0
    end

let trim_spine t ~keep =
  let keep = max 0 keep in
  if t.spine_len > keep then begin
    let drop = t.spine_len - keep in
    t.spine_start <- t.spine_start + drop;
    t.spine_len <- keep;
    t.floor_rev <- t.floor_rev + drop
  end

let record_event t ?csn id =
  (* Bounded by construction: past twice the cap the oldest half is
     dropped, so laggards beyond it rescan rather than the spine
     growing with update volume. *)
  if t.spine_len >= 2 * t.spine_cap then trim_spine t ~keep:t.spine_cap;
  spine_make_room t;
  let i = t.spine_start + t.spine_len in
  t.spine.(i) <- id;
  t.spine_csn.(i) <- (match csn with Some c -> Csn.to_int c | None -> 0);
  t.spine_len <- t.spine_len + 1

let changes_since t since =
  if since >= rev t then Some []
  else if since < t.floor_rev then None
  else begin
    let first = t.spine_start + (since - t.floor_rev) in
    let stop = t.spine_start + t.spine_len in
    let seen = Hashtbl.create 32 in
    let acc = ref [] in
    for i = first to stop - 1 do
      let id = t.spine.(i) in
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        acc := dn_of t id :: !acc
      end
    done;
    Some (List.rev !acc)
  end

let spine_csn_range t =
  if t.spine_len = 0 then None
  else
    let lo = t.spine_csn.(t.spine_start) in
    let hi = t.spine_csn.(t.spine_start + t.spine_len - 1) in
    Some (Csn.of_int lo, Csn.of_int hi)

(* --- Mutation -------------------------------------------------------- *)

let upsert t ?csn entry =
  let id = intern t (Entry.dn entry) in
  (match t.slots.(id) with
  | Some s ->
      if s.entry = None then t.live <- t.live + 1;
      s.entry <- Some entry
  | None -> assert false);
  record_event t ?csn id

let remove t ?csn dn =
  match id_of t dn with
  | None -> ()
  | Some id -> (
      match t.slots.(id) with
      | Some s when s.entry <> None ->
          s.entry <- None;
          t.live <- t.live - 1;
          record_event t ?csn id
      | Some _ | None -> ())

(* --- Access ---------------------------------------------------------- *)

let find t dn =
  match id_of t dn with
  | None -> None
  | Some id -> ( match t.slots.(id) with Some s -> s.entry | None -> None)

let mem t dn = find t dn <> None

let iter t f =
  for i = 0 to t.slot_count - 1 do
    match t.slots.(i) with
    | Some { entry = Some e; _ } -> f e
    | Some _ | None -> ()
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let to_seq t =
  let rec go i () =
    if i >= t.slot_count then Seq.Nil
    else
      match t.slots.(i) with
      | Some { entry = Some e; _ } -> Seq.Cons (e, go (i + 1))
      | Some _ | None -> go (i + 1) ()
  in
  go 0

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc e -> e :: acc))

let approx_bytes t = Obj.reachable_words (Obj.repr t) * (Sys.word_size / 8)
