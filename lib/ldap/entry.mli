(** Directory entries: a DN plus a set of attribute/value pairs.

    Attribute names are keyed canonically (lowercase, aliases resolved
    through the schema at construction time by {!Backend}); duplicate
    values under the attribute's matching rule are rejected silently,
    as LDAP servers do. *)

type t

val make : Dn.t -> (string * string list) list -> t
(** [make dn attrs] builds an entry.  Attribute names are lowercased;
    repeated attribute names are merged; duplicate values (byte-equal)
    are dropped. *)

val dn : t -> Dn.t
val with_dn : t -> Dn.t -> t
(** The same attributes under a new DN (modify-DN support). *)

val attributes : t -> (string * string list) list
(** All attributes in insertion order, names lowercased. *)

val get : t -> string -> string list
(** Values of an attribute ([]) if absent); name is case-insensitive. *)

val has_attribute : t -> string -> bool

val has_value : ?syntax:Value.syntax -> t -> string -> string -> bool
(** [has_value e attr v] — membership under the given matching rule
    (default {!Value.Case_ignore}). *)

val object_classes : t -> string list

val is_referral : t -> bool
(** True when the entry's object classes include [referral]; such
    entries carry [ref] LDAP-URL values and terminate naming
    contexts (section 2.3 of the paper). *)

val referral_urls : t -> string list

val add_values : ?syntax:Value.syntax -> t -> string -> string list -> t
(** Adds values, skipping ones already present under the matching rule. *)

val delete_values : ?syntax:Value.syntax -> t -> string -> string list -> (t, string) result
(** Removes the given values; [Error] if some value is absent.  Passing
    [[]] removes the attribute entirely. *)

val replace_values : t -> string -> string list -> t
(** Replaces all values of the attribute ([[]] deletes it). *)

val select : t -> string list option -> t
(** [select e attrs] projects the entry onto the requested attribute
    list; [None] (or the ["*"] wildcard inside the list) keeps all
    user attributes (section 2.2). *)

val equal : t -> t -> bool
(** Structural equality on DN and normalized attribute sets (order
    insensitive, values compared byte-wise). *)

val compiled : Schema.t -> t -> Ldap_compile.Prog.centry
(** [compiled schema e] is the entry flattened into the compiled view
    {!Ldap_compile.Prog.centry}: interned attribute ids (literal and
    schema-canonical), syntaxes resolved, and every value
    pre-canonicalized under its matching rule.  Built at most once per
    entry record and memoized — the cache is keyed on the schema's
    physical identity and invalidated by every mutator — so hot paths
    (filter bytecode, predicate-index probes) evaluate against it with
    no schema lookups or normalization. *)

val cached_hash : t -> compute:(t -> int64) -> int64
(** [cached_hash e ~compute] memoizes one 64-bit content digest per
    entry record (used by the anti-entropy tree).  All callers must
    pass the same [compute]; the cache is invalidated by mutators
    along with the compiled view. *)

val content_hash64 : t -> int64
(** 64-bit digest over the entry's canonical rendering (canonical DN,
    attributes sorted by name, values sorted within each attribute),
    memoized via {!cached_hash}.  A pure function of the {!equal}
    equivalence class: equal entries always hash equal, and (modulo
    64-bit digest collisions) unequal entries hash differently — the
    property that lets snapshot-diff serving and the anti-entropy tree
    compare content by hash instead of by entry. *)

val pp : Format.formatter -> t -> unit
(** LDIF-ish rendering for debugging and the CLI. *)
