module Smap = Map.Make (String)

(* Per-record memo for derived views.  Mutators must install a fresh
   memo in every record they build: the field itself is immutable but
   its contents are not, so a [{ t with ... }] copy would otherwise
   share (and serve stale) cached state. *)
type memo = {
  mutable view : (Schema.t * Ldap_compile.Prog.centry) option;
      (* keyed by the physical identity of the schema it was built
         under, compared with [==] — schemas are built once and
         shared, so pointer identity is the right cache key *)
  mutable content_hash : int64 option;
}

let fresh_memo () = { view = None; content_hash = None }

(* [order] keeps first-seen attribute order for stable printing. *)
type t = { dn : Dn.t; attrs : string list Smap.t; order : string list; memo : memo }

let lc = String.lowercase_ascii

let dedup_values values =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v -> if Hashtbl.mem seen v then false else (Hashtbl.add seen v (); true))
    values

let make dn pairs =
  let attrs, order =
    List.fold_left
      (fun (m, order) (name, values) ->
        let name = lc name in
        let existing = Option.value ~default:[] (Smap.find_opt name m) in
        let merged = dedup_values (existing @ values) in
        let order = if Smap.mem name m then order else name :: order in
        (Smap.add name merged m, order))
      (Smap.empty, []) pairs
  in
  { dn; attrs; order = List.rev order; memo = fresh_memo () }

let dn t = t.dn
let with_dn t dn = { t with dn; memo = fresh_memo () }

let attributes t =
  List.filter_map
    (fun name ->
      match Smap.find_opt name t.attrs with
      | Some (_ :: _ as vs) -> Some (name, vs)
      | Some [] | None -> None)
    t.order

let get t name = Option.value ~default:[] (Smap.find_opt (lc name) t.attrs)
let has_attribute t name = get t name <> []

let has_value ?(syntax = Value.Case_ignore) t name v =
  List.exists (fun x -> Value.equal syntax x v) (get t name)

let object_classes t = get t "objectclass"

let is_referral t =
  List.exists (fun c -> lc c = "referral") (object_classes t)

let referral_urls t = get t "ref"

let add_values ?(syntax = Value.Case_ignore) t name values =
  let name = lc name in
  let existing = get t name in
  let fresh =
    List.filter (fun v -> not (List.exists (fun x -> Value.equal syntax x v) existing)) values
  in
  if fresh = [] && existing <> [] then t
  else
    let order = if Smap.mem name t.attrs then t.order else t.order @ [ name ] in
    { t with
      attrs = Smap.add name (existing @ dedup_values fresh) t.attrs;
      order;
      memo = fresh_memo ();
    }

let delete_values ?(syntax = Value.Case_ignore) t name values =
  let name = lc name in
  let existing = get t name in
  if existing = [] then Error (Printf.sprintf "no such attribute: %s" name)
  else if values = [] then
    Ok { t with attrs = Smap.remove name t.attrs; memo = fresh_memo () }
  else
    let missing =
      List.filter (fun v -> not (List.exists (fun x -> Value.equal syntax x v) existing)) values
    in
    match missing with
    | v :: _ -> Error (Printf.sprintf "no such value: %s=%s" name v)
    | [] ->
        let remaining =
          List.filter
            (fun x -> not (List.exists (fun v -> Value.equal syntax x v) values))
            existing
        in
        if remaining = [] then
          Ok { t with attrs = Smap.remove name t.attrs; memo = fresh_memo () }
        else Ok { t with attrs = Smap.add name remaining t.attrs; memo = fresh_memo () }

let replace_values t name values =
  let name = lc name in
  if values = [] then { t with attrs = Smap.remove name t.attrs; memo = fresh_memo () }
  else
    let order = if Smap.mem name t.attrs then t.order else t.order @ [ name ] in
    { t with attrs = Smap.add name (dedup_values values) t.attrs; order; memo = fresh_memo () }

let select t requested =
  match requested with
  | None -> t
  | Some names ->
      if List.exists (fun n -> n = "*") names then t
      else
        let keep = List.map lc names in
        let attrs =
          Smap.filter (fun name _ -> List.mem name keep) t.attrs
        in
        { t with attrs; memo = fresh_memo () }

let normalized_attrs t =
  Smap.bindings t.attrs
  |> List.filter (fun (_, vs) -> vs <> [])
  |> List.map (fun (name, vs) -> (name, List.sort String.compare vs))

let equal a b = Dn.equal a.dn b.dn && normalized_attrs a = normalized_attrs b

(* --- Compiled view --------------------------------------------------- *)

let build_view schema t =
  let open Ldap_compile in
  let slots =
    List.map
      (fun (name, vs) ->
        let syntax = Schema.syntax_of schema name in
        let vs = Array.of_list vs in
        let canon = Array.map (Value.canonical syntax) vs in
        let norm, ints =
          match (syntax : Value.syntax) with
          | Integer ->
              ( Array.map (Value.normalize syntax) vs,
                Array.map int_of_string_opt canon )
          | Case_ignore | Case_exact | Telephone -> (canon, [||])
        in
        {
          Prog.id = Attr_id.intern name;
          cid = Attr_id.intern (Schema.canonical_attr schema name);
          syntax;
          canon;
          norm;
          ints;
        })
      (attributes t)
  in
  Prog.make_centry ~dn_canon:(Dn.canonical t.dn) (Array.of_list slots)

let compiled schema t =
  match t.memo.view with
  | Some (w, ce) when w == schema -> ce
  | _ ->
      let ce = build_view schema t in
      t.memo.view <- Some (schema, ce);
      ce

let cached_hash t ~compute =
  match t.memo.content_hash with
  | Some h -> h
  | None ->
      let h = compute t in
      t.memo.content_hash <- Some h;
      h

(* Canonical rendering: canonical DN, then attributes sorted by name
   with values sorted within each attribute — exactly the data [equal]
   compares, so the digest is a pure function of the equality class.
   The anti-entropy tree and the node cursor's sent-image table both
   hash through here, sharing the per-record memo. *)
let canonical_rendering t =
  let b = Buffer.create 128 in
  Buffer.add_string b (Dn.canonical t.dn);
  List.iter
    (fun (n, vs) ->
      Buffer.add_char b '\x00';
      Buffer.add_string b n;
      List.iter
        (fun v ->
          Buffer.add_char b '\x01';
          Buffer.add_string b v)
        vs)
    (normalized_attrs t);
  Buffer.contents b

let hash64_of_string s =
  Bytes.get_int64_be (Bytes.unsafe_of_string (Digest.string s)) 0

let content_hash64 t =
  cached_hash t ~compute:(fun t -> hash64_of_string (canonical_rendering t))

let pp ppf t =
  Format.fprintf ppf "dn: %s" (Dn.to_string t.dn);
  List.iter
    (fun (name, vs) ->
      List.iter (fun v -> Format.fprintf ppf "@\n%s: %s" name v) vs)
    (attributes t)
