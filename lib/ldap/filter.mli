(** LDAP search filters (RFC 2254).

    The abstract syntax covers the predicate forms used by the paper:
    equality, range ([>=], [<=]), presence, substring and approximate
    assertions, combined with AND ([&]), OR ([|]) and NOT ([!]).

    Filters without NOT are {e positive filters} (section 2.2); the
    containment propositions 2 and 3 apply to those. *)

type substring = {
  initial : string option;
  any : string list;
  final : string option;
}
(** [attr=initial*any1*any2*final]; at least one component is present. *)

type pred =
  | Equality of string * string  (** [(attr=value)] *)
  | Greater_eq of string * string  (** [(attr>=value)] *)
  | Less_eq of string * string  (** [(attr<=value)] *)
  | Present of string  (** presence test [(attr=<star>)] *)
  | Substrings of string * substring  (** [(attr=smi*th)] *)
  | Approx of string * string  (** [(attr~=value)]; matched as equality *)

type t =
  | And of t list
  | Or of t list
  | Not of t
  | Pred of pred

val tt : t
(** The presence filter on objectClass — matches every entry
    (section 2.2). *)

val pred_attr : pred -> string
(** The attribute an atomic predicate constrains (lowercased). *)

val attributes : t -> string list
(** Attributes mentioned, lowercased, deduplicated, sorted. *)

val is_positive : t -> bool
(** No NOT operator anywhere. *)

val size : t -> int
(** Number of atomic predicates. *)

val map_pred : (pred -> pred) -> t -> t
val fold_pred : ('a -> pred -> 'a) -> 'a -> t -> 'a

val normalize : t -> t
(** Canonical form: flattens nested AND/OR, drops single-operand
    AND/OR wrappers, lowercases attribute names, sorts operands of
    AND/OR structurally.  Idempotent; used for template extraction and
    structural equality. *)

val equal : t -> t -> bool
(** Structural equality of normalized forms. *)

val compare : t -> t -> int

val compile : Schema.t -> t -> Ldap_compile.Prog.t
(** [compile schema f] lowers the filter once into the flat bytecode
    of {!Ldap_compile.Prog}: assertion values pre-canonicalized under
    each predicate's matching rule, attributes interned to ids,
    AND/OR as short-circuit arrays.  Evaluate with
    [Prog.matches (compile schema f) (Entry.compiled schema e)],
    which agrees with {!matches} (the interpreted oracle) on every
    entry. *)

val matcher : Schema.t -> t -> Entry.t -> bool
(** [matcher schema f] compiles [f] and returns a closure evaluating
    it against entries' compiled views — the convenient form for
    hoisting one compile out of a per-entry loop. *)

val matches : Schema.t -> t -> Entry.t -> bool
(** Filter evaluation over an entry, using the schema's matching rules.
    Follows LDAP three-valued semantics collapsed to two: a predicate
    on an absent attribute is false, and NOT of it is true. *)

val of_string : string -> (t, string) result
(** RFC 2254 parser, including [\XX] hex escapes in assertion values. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on a malformed filter. *)

val to_string : t -> string
(** RFC 2254 printer; [of_string (to_string f)] re-reads [f]. *)

val pp : Format.formatter -> t -> unit
