type stats = {
  round_trips : int;
  entry_pdus : int;
  referral_pdus : int;
  bytes : int;
  sync_rpcs : int;
  sync_bytes : int;
  dropped_pdus : int;
}

type failure = Timeout | Unreachable of string | Refused of string

let failure_to_string = function
  | Timeout -> "timeout"
  | Unreachable host -> "unreachable: " ^ host
  | Refused msg -> "refused: " ^ msg

module Faults = struct
  type outcome = Deliver | Drop_request | Drop_reply | Refuse

  type t = {
    drop_request : float;
    drop_reply : float;
    refuse : float;
    roll : unit -> float;
    mutable script : outcome list;
    partitions : (string, unit) Hashtbl.t;
  }

  let create ?(drop_request = 0.0) ?(drop_reply = 0.0) ?(refuse = 0.0)
      ?(roll = fun () -> 1.0) () =
    { drop_request; drop_reply; refuse; roll; script = []; partitions = Hashtbl.create 4 }

  let script t outcomes = t.script <- t.script @ outcomes

  let link_key a b = if a <= b then a ^ "|" ^ b else b ^ "|" ^ a
  let partition t ~a ~b = Hashtbl.replace t.partitions (link_key a b) ()
  let heal t ~a ~b = Hashtbl.remove t.partitions (link_key a b)
  let partitioned t ~a ~b = Hashtbl.mem t.partitions (link_key a b)

  let next_outcome t =
    match t.script with
    | o :: rest ->
        t.script <- rest;
        o
    | [] ->
        let r = t.roll () in
        if r < t.drop_request then Drop_request
        else if r < t.drop_request +. t.refuse then Refuse
        else if r < t.drop_request +. t.refuse +. t.drop_reply then Drop_reply
        else Deliver
end

type node = Full_server of Server.t | Handler of (Query.t -> Server.response)

type t = {
  servers : (string, node) Hashtbl.t;
  mutable round_trips : int;
  mutable entry_pdus : int;
  mutable referral_pdus : int;
  mutable bytes : int;
  mutable sync_rpcs : int;
  mutable sync_bytes : int;
  mutable dropped_pdus : int;
  mutable engine : Ldap_sim.Engine.t option;
  links : (string, Ldap_sim.Latency.t) Hashtbl.t;
  mutable default_latency : Ldap_sim.Latency.t;
  mutable rpc_timeout : int option;
}

let create () =
  {
    servers = Hashtbl.create 8;
    round_trips = 0;
    entry_pdus = 0;
    referral_pdus = 0;
    bytes = 0;
    sync_rpcs = 0;
    sync_bytes = 0;
    dropped_pdus = 0;
    engine = None;
    links = Hashtbl.create 8;
    default_latency = Ldap_sim.Latency.Zero;
    rpc_timeout = None;
  }

let attach_engine t e = t.engine <- Some e
let engine t = t.engine

let set_link_latency t ~a ~b lat =
  Hashtbl.replace t.links (Faults.link_key a b) lat

let set_default_latency t lat = t.default_latency <- lat

let link_latency t ~a ~b =
  match Hashtbl.find_opt t.links (Faults.link_key a b) with
  | Some lat -> lat
  | None -> t.default_latency

let set_rpc_timeout t timeout = t.rpc_timeout <- timeout

let add_server t s = Hashtbl.replace t.servers (Server.name s) (Full_server s)
let add_handler t ~name handler = Hashtbl.replace t.servers name (Handler handler)

let server t name =
  match Hashtbl.find_opt t.servers name with
  | Some (Full_server s) -> Some s
  | Some (Handler _) | None -> None

let stats t =
  {
    round_trips = t.round_trips;
    entry_pdus = t.entry_pdus;
    referral_pdus = t.referral_pdus;
    bytes = t.bytes;
    sync_rpcs = t.sync_rpcs;
    sync_bytes = t.sync_bytes;
    dropped_pdus = t.dropped_pdus;
  }

let reset_stats t =
  t.round_trips <- 0;
  t.entry_pdus <- 0;
  t.referral_pdus <- 0;
  t.bytes <- 0;
  t.sync_rpcs <- 0;
  t.sync_bytes <- 0;
  t.dropped_pdus <- 0

let account_response t (resp : Server.response) =
  t.round_trips <- t.round_trips + 1;
  t.bytes <- t.bytes + Ber.message_overhead;
  match resp with
  | Server.Entries { entries; references } ->
      t.entry_pdus <- t.entry_pdus + List.length entries;
      t.referral_pdus <- t.referral_pdus + List.length references;
      List.iter (fun e -> t.bytes <- t.bytes + Ber.entry_size e) entries;
      List.iter (fun urls -> t.bytes <- t.bytes + Ber.referral_size urls) references
  | Server.Referral urls ->
      t.referral_pdus <- t.referral_pdus + 1;
      t.bytes <- t.bytes + Ber.referral_size urls
  | Server.Failure _ -> ()

let send t ~host q =
  match Hashtbl.find_opt t.servers host with
  | None -> Server.Failure (Printf.sprintf "unknown host: %s" host)
  | Some node ->
      let resp =
        match node with
        | Full_server s -> Server.handle_search s q
        | Handler h -> h q
      in
      account_response t resp;
      resp

let search_no_chase t ~from q = send t ~host:from q

let max_hops = 32

let search t ~from (q : Query.t) =
  (* Work queue of (host, query, origin); a revisit while chasing a
     referral is a loop (error), a revisit through a continuation
     reference is a benign duplicate (skipped). *)
  let visited = Hashtbl.create 16 in
  let key host (q : Query.t) = host ^ "|" ^ Dn.canonical q.base in
  (* Entries are accumulated in reverse and deduplicated by canonical
     DN: overlapping continuation references may return the same entry
     from two servers. *)
  let seen = Hashtbl.create 64 in
  let rec go acc hops = function
    | [] -> Ok (List.rev acc)
    | (host, q, origin) :: rest ->
        if hops > max_hops then Error "referral limit exceeded"
        else if Hashtbl.mem visited (key host q) then
          if origin = `Chase then Error "referral loop detected"
          else go acc hops rest
        else begin
          Hashtbl.add visited (key host q) ();
          match send t ~host q with
          | Server.Failure msg -> Error msg
          | Server.Referral urls -> (
              match pick_url urls with
              | Error e -> Error e
              | Ok { Referral.host = next; dn } ->
                  let q' =
                    match dn with Some base -> { q with base } | None -> q
                  in
                  go acc (hops + 1) ((next, q', `Chase) :: rest))
          | Server.Entries { entries; references } ->
              let follow_ups =
                List.filter_map
                  (fun urls ->
                    match pick_url urls with
                    | Error _ -> None
                    | Ok { Referral.host; dn } ->
                        let base = Option.value ~default:q.base dn in
                        (* Continuation reference: modified base, same
                           scope and filter (Figure 2). *)
                        Some (host, { q with base }, `Reference))
                  references
              in
              let acc =
                List.fold_left
                  (fun acc e ->
                    let k = Dn.canonical (Entry.dn e) in
                    if Hashtbl.mem seen k then acc
                    else begin
                      Hashtbl.add seen k ();
                      e :: acc
                    end)
                  acc entries
              in
              go acc (hops + 1) (follow_ups @ rest)
        end
  and pick_url = function
    | [] -> Error "empty referral"
    | url :: _ -> Referral.parse url
  in
  go [] 0 [ (from, q, `Reference) ]

(* --- Generic fault-injectable RPC ------------------------------------ *)

let account_push t ~bytes = t.sync_bytes <- t.sync_bytes + bytes
let account_dropped t = t.dropped_pdus <- t.dropped_pdus + 1

let rpc_immediate t ?faults ~from ~host ~request_bytes ~reply_bytes serve =
  t.sync_rpcs <- t.sync_rpcs + 1;
  let partitioned =
    match faults with
    | Some f -> Faults.partitioned f ~a:from ~b:host
    | None -> false
  in
  if partitioned then begin
    t.dropped_pdus <- t.dropped_pdus + 1;
    Error (Unreachable host)
  end
  else begin
    t.sync_bytes <- t.sync_bytes + request_bytes;
    let outcome =
      match faults with Some f -> Faults.next_outcome f | None -> Faults.Deliver
    in
    match outcome with
    | Faults.Drop_request ->
        t.dropped_pdus <- t.dropped_pdus + 1;
        Error Timeout
    | Faults.Refuse -> Error (Refused "transient refusal")
    | Faults.Drop_reply ->
        (* The server processed the request — its side effects stand —
           but the reply never reaches the client. *)
        let r = serve () in
        t.sync_bytes <- t.sync_bytes + reply_bytes r;
        t.dropped_pdus <- t.dropped_pdus + 1;
        Error Timeout
    | Faults.Deliver ->
        let r = serve () in
        t.sync_bytes <- t.sync_bytes + reply_bytes r;
        Ok r
  end

let rpc_scheduled t e ?faults ~from ~host ~request_bytes ~reply_bytes serve k =
  let module E = Ldap_sim.Engine in
  t.sync_rpcs <- t.sync_rpcs + 1;
  let lat = link_latency t ~a:from ~b:host in
  let d_req = E.draw e lat in
  let d_rep = E.draw e lat in
  (* Without an explicit timeout, a lost exchange costs exactly the
     round trip it would have taken — the minimal model that still
     makes failures consume virtual time. *)
  let timeout =
    match t.rpc_timeout with Some x -> x | None -> d_req + d_rep
  in
  let partitioned =
    match faults with
    | Some f -> Faults.partitioned f ~a:from ~b:host
    | None -> false
  in
  if partitioned then begin
    t.dropped_pdus <- t.dropped_pdus + 1;
    E.after e ~delay:timeout (fun () -> k (Error (Unreachable host)))
  end
  else begin
    t.sync_bytes <- t.sync_bytes + request_bytes;
    let outcome =
      match faults with Some f -> Faults.next_outcome f | None -> Faults.Deliver
    in
    match outcome with
    | Faults.Drop_request ->
        t.dropped_pdus <- t.dropped_pdus + 1;
        E.after e ~delay:timeout (fun () -> k (Error Timeout))
    | Faults.Refuse ->
        E.after e ~delay:(d_req + d_rep) (fun () ->
            k (Error (Refused "transient refusal")))
    | Faults.Drop_reply ->
        (* The server still processes the request at +d_req; the client
           times out no earlier than that, so the serve event's side
           effects are in place when the error is observed (same
           ordering as the immediate path). *)
        E.after e ~delay:d_req (fun () ->
            let r = serve () in
            t.sync_bytes <- t.sync_bytes + reply_bytes r;
            t.dropped_pdus <- t.dropped_pdus + 1);
        E.after e ~delay:(max timeout d_req) (fun () -> k (Error Timeout))
    | Faults.Deliver ->
        E.after e ~delay:d_req (fun () ->
            let r = serve () in
            t.sync_bytes <- t.sync_bytes + reply_bytes r;
            E.after e ~delay:d_rep (fun () -> k (Ok r)))
  end

let rpc_send t ?faults ~from ~host ~request_bytes ~reply_bytes serve k =
  match t.engine with
  | Some e -> rpc_scheduled t e ?faults ~from ~host ~request_bytes ~reply_bytes serve k
  | None -> k (rpc_immediate t ?faults ~from ~host ~request_bytes ~reply_bytes serve)

let rpc t ?faults ~from ~host ~request_bytes ~reply_bytes serve =
  match t.engine with
  | Some e when not (Ldap_sim.Engine.running e) ->
      (* Synchronous wrapper: schedule the exchange, run the engine to
         quiescence, hand back the delivered result. *)
      let cell = ref None in
      rpc_scheduled t e ?faults ~from ~host ~request_bytes ~reply_bytes serve
        (fun r -> cell := Some r);
      Ldap_sim.Engine.run e;
      (match !cell with
      | Some r -> r
      | None -> Error Timeout)
  | _ ->
      (* No engine, or called from inside an event callback: the legacy
         immediate exchange. *)
      rpc_immediate t ?faults ~from ~host ~request_bytes ~reply_bytes serve
