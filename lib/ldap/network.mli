(** Simulated multi-server topology, referral-chasing client and the
    generic fault-injectable RPC transport.

    Reproduces the distributed operation processing of Figure 2: the
    client sends a search to some server; a server that does not hold
    the target namespace answers with its default (superior) referral;
    a server that does answers with entries plus continuation
    references for subordinate contexts, which the client chases with
    modified bases.  Round trips, PDUs and modelled bytes are counted
    so the referral-cost argument of section 2.3 can be measured.

    Beyond searches, the module provides {!rpc}: a generic synchronous
    exchange over which higher layers (the ReSync transport) route
    their traffic.  An optional {!Faults} schedule decides, per
    exchange, whether the request is lost before reaching the server,
    the server transiently refuses, or the reply is lost after the
    server processed the request — the three failure shapes the ReSync
    recovery paths (section 5) are designed around.  Fault decisions
    are deterministic: they come from an explicit script or from a
    caller-supplied roll function (seeded from [Dirgen.Prng] in the
    experiments), never from global randomness. *)

type t

type stats = {
  round_trips : int;  (** Client→server search requests sent. *)
  entry_pdus : int;
  referral_pdus : int;
  bytes : int;  (** Search traffic, modelled via {!Ber}. *)
  sync_rpcs : int;  (** RPC exchanges attempted (ReSync traffic). *)
  sync_bytes : int;  (** RPC request/reply/push bytes, via {!Ber}. *)
  dropped_pdus : int;  (** Requests, replies and pushes lost to faults. *)
}

type failure =
  | Timeout  (** Request or reply lost in flight; the client cannot
                 tell which, so the server may or may not have
                 processed the exchange. *)
  | Unreachable of string  (** Unknown host or partitioned link. *)
  | Refused of string  (** Transient server-side refusal. *)

val failure_to_string : failure -> string

(** Deterministic fault schedules for {!rpc} and persistent pushes. *)
module Faults : sig
  type outcome = Deliver | Drop_request | Drop_reply | Refuse

  type t

  val create :
    ?drop_request:float ->
    ?drop_reply:float ->
    ?refuse:float ->
    ?roll:(unit -> float) ->
    unit ->
    t
  (** Probabilistic schedule: each exchange draws one number from
      [roll] (expected in [[0, 1)], e.g. [fun () -> Prng.float prng 1.0])
      and maps it to an outcome by cumulative probability.  Without
      [roll] only scripted outcomes and partitions fire. *)

  val script : t -> outcome list -> unit
  (** Appends forced outcomes consumed — one per exchange or push —
      before any probabilistic roll.  The way tests stage exact
      failure sequences. *)

  val partition : t -> a:string -> b:string -> unit
  (** Severs the (undirected) link between two hosts until {!heal}. *)

  val heal : t -> a:string -> b:string -> unit
  val partitioned : t -> a:string -> b:string -> bool

  val next_outcome : t -> outcome
  (** Consumes the next scripted outcome, or rolls.  Exposed for
      transport layers that deliver one-way traffic (persist pushes). *)
end

val create : unit -> t

val attach_engine : t -> Ldap_sim.Engine.t -> unit
(** Attaches a discrete-event engine.  From then on {!rpc_send}
    schedules exchanges as timed events (charging per-link latency) and
    {!rpc} becomes a thin wrapper that runs the engine to quiescence.
    Without an engine both behave as immediate calls — the legacy
    execution model. *)

val engine : t -> Ldap_sim.Engine.t option
(** The attached engine, if any. *)

val set_link_latency :
  t -> a:string -> b:string -> Ldap_sim.Latency.t -> unit
(** Latency distribution for the (undirected) link between two hosts.
    Each direction of an exchange draws independently. *)

val set_default_latency : t -> Ldap_sim.Latency.t -> unit
(** Fallback distribution for links without an explicit setting
    (default {!Ldap_sim.Latency.Zero}). *)

val link_latency : t -> a:string -> b:string -> Ldap_sim.Latency.t
(** Effective distribution for a link. *)

val set_rpc_timeout : t -> int option -> unit
(** Virtual time a client waits before reporting a lost exchange.
    [None] (default) charges exactly the round trip the exchange would
    have taken. *)

val add_server : t -> Server.t -> unit

val add_handler : t -> name:string -> (Query.t -> Server.response) -> unit
(** Registers an arbitrary search handler under a host name — how
    partial replicas ({!Ldap_replication.Replica_server}-style
    endpoints) join the topology alongside full servers. *)

val server : t -> string -> Server.t option
val stats : t -> stats
val reset_stats : t -> unit

val search :
  t -> from:string -> Query.t -> (Entry.t list, string) result
(** Chases referrals and continuation references until the result set
    is complete.  Fails on unknown hosts, referral loops (guarded by a
    visited set) or server failures.  Entries are deduplicated by
    canonical DN: overlapping continuation references contribute one
    copy, in first-seen order. *)

val search_no_chase : t -> from:string -> Query.t -> Server.response
(** One round trip, no chasing: what a minimally directory-enabled
    application sees when it hits a partial replica (section 3.1.1). *)

val rpc :
  t ->
  ?faults:Faults.t ->
  from:string ->
  host:string ->
  request_bytes:int ->
  reply_bytes:('r -> int) ->
  (unit -> 'r) ->
  ('r, failure) result
(** One synchronous request/reply exchange from [from] to [host],
    serving the request with the given thunk.  The fault schedule is
    consulted first: a partitioned link or dropped request means the
    thunk never runs; a dropped {e reply} means the thunk {e did} run —
    its side effects stand — but the caller only sees [Timeout].  All
    attempts, bytes and losses are accounted in {!stats}.

    With an engine attached (and not already running), the exchange is
    scheduled and the engine is run to quiescence before returning, so
    virtual time advances by the link's round trip.  Called from inside
    an event callback, it falls back to the immediate exchange. *)

val rpc_send :
  t ->
  ?faults:Faults.t ->
  from:string ->
  host:string ->
  request_bytes:int ->
  reply_bytes:('r -> int) ->
  (unit -> 'r) ->
  (('r, failure) result -> unit) ->
  unit
(** Asynchronous form of {!rpc}: the continuation receives the result
    when the reply (or failure) is delivered.  With an engine attached
    the request is served after one link-latency draw and the reply
    delivered after a second; failures surface after the RPC timeout
    ({!set_rpc_timeout}).  Without an engine the continuation runs
    immediately, preserving the legacy execution model. *)

val account_push : t -> bytes:int -> unit
(** Accounts one delivered persistent-search push PDU. *)

val account_dropped : t -> unit
(** Accounts one PDU lost to faults outside {!rpc} (e.g. a push). *)
