(** DN-keyed content store with interned ids and a change spine.

    The shared shape for every layer that materializes a set of
    entries — the backend's flat mirror, consumer replica content, and
    the cursors topology nodes serve snapshot-diffs from.  A store
    maps canonical DNs to entries through dense interned slot ids and
    records every mutation on a bounded {e change spine}: a ring of
    (revision, slot id, CSN stamp) events in commit order.  A reader
    holding the revision it last consumed can enumerate exactly the
    DNs changed since — O(diff), not O(directory) — and is told to
    rescan when the spine was trimmed past its position, never served
    a silent gap. *)

type t

val create : ?spine_cap:int -> unit -> t
(** Fresh empty store.  [spine_cap] bounds the change spine: past
    [2 * spine_cap] buffered events the oldest half is dropped
    (default {!default_spine_cap}), advancing {!floor}. *)

val default_spine_cap : int
(** 16384 events. *)

val upsert : t -> ?csn:Csn.t -> Entry.t -> unit
(** Installs (or replaces) the entry under its DN and appends a spine
    event stamped with [csn] when given. *)

val remove : t -> ?csn:Csn.t -> Dn.t -> unit
(** Removes the entry under [dn], appending a spine event.  No-op
    (and no event) when the DN holds no entry.  The slot id survives
    as a tombstone so later events can still name the DN. *)

val find : t -> Dn.t -> Entry.t option
(** O(1) lookup by DN. *)

val mem : t -> Dn.t -> bool

val size : t -> int
(** Live entries held. *)

val interned : t -> int
(** Slot ids allocated — live entries plus tombstoned DNs. *)

val iter : t -> (Entry.t -> unit) -> unit
(** Iterates live entries in slot (insertion) order. *)

val fold : t -> init:'a -> f:('a -> Entry.t -> 'a) -> 'a
(** Folds over live entries in slot order. *)

val to_seq : t -> Entry.t Seq.t
(** Live entries as a sequence in slot order, built lazily over the
    slot array — the ordered iterator replica evaluation and
    anti-entropy tree construction stream from.  The sequence reads
    the live array: do not mutate the store while consuming it. *)

val to_list : t -> Entry.t list

val rev : t -> int
(** Current revision: total mutation events recorded.  A cursor holds
    the revision it consumed and passes it to {!changes_since}. *)

val floor : t -> int
(** Oldest revision still covered by the spine; positions before it
    were trimmed and can only be recovered by rescanning. *)

val spine_length : t -> int
(** Buffered spine events, [rev - floor]. *)

val changes_since : t -> int -> Dn.t list option
(** [changes_since t r] is [Some dns] — the distinct DNs mutated after
    revision [r], oldest-first by first occurrence — when the spine
    still reaches back to [r]; [None] when [r] predates {!floor} and
    the caller must rescan.  [Some []] when nothing changed. *)

val trim_spine : t -> keep:int -> unit
(** Drops all but the newest [keep] spine events, advancing {!floor}. *)

val spine_csn_range : t -> (Csn.t * Csn.t) option
(** CSN stamps of the oldest and newest buffered events ({!Csn.zero}
    for events recorded without a stamp); [None] when empty. *)

val approx_bytes : t -> int
(** Approximate heap footprint of everything reachable from the store
    (slots, spine, and the entries themselves), for memory-residency
    reports.  Walks the object graph — O(size), diagnostic use only. *)
