type result_done = {
  code : int;
  matched : Dn.t;
  diagnostic : string;
  referral : string list;
}

type operation =
  | Search_request of Query.t
  | Search_result_entry of Entry.t
  | Search_result_reference of string list
  | Search_result_done of result_done

type control = {
  control_type : string;
  criticality : bool;
  control_value : string option;
}

type message = { id : int; op : operation; controls : control list }

let manage_dsa_it_oid = "2.16.840.1.113730.3.4.2"
let resync_oid = "1.3.6.1.4.1.4203.666.5.99"

(* --- DER primitives ---------------------------------------------------- *)

(* Tag bytes. *)
let tag_boolean = 0x01
let tag_integer = 0x02
let tag_octet_string = 0x04
let tag_enumerated = 0x0a
let tag_sequence = 0x30
let tag_set = 0x31
let app tag = 0x60 lor tag (* application, constructed *)
let ctx tag = 0x80 lor tag (* context, primitive *)
let ctxc tag = 0xa0 lor tag (* context, constructed *)

let encode_length n =
  if n < 0x80 then String.make 1 (Char.chr n)
  else begin
    let rec bytes acc n = if n = 0 then acc else bytes (Char.chr (n land 0xff) :: acc) (n lsr 8) in
    let bs = bytes [] n in
    let b = Buffer.create 5 in
    Buffer.add_char b (Char.chr (0x80 lor List.length bs));
    List.iter (Buffer.add_char b) bs;
    Buffer.contents b
  end

let tlv tag body =
  let b = Buffer.create (String.length body + 4) in
  Buffer.add_char b (Char.chr tag);
  Buffer.add_string b (encode_length (String.length body));
  Buffer.add_string b body;
  Buffer.contents b

let der_integer n =
  (* Two's-complement big-endian, minimal length; non-negative only. *)
  if n < 0 then invalid_arg "der_integer: negative";
  let rec bytes acc n =
    if n = 0 then acc else bytes (Char.chr (n land 0xff) :: acc) (n lsr 8)
  in
  let bs = match bytes [] n with [] -> [ '\000' ] | l -> l in
  (* Leading bit set would read as negative: prepend 0x00. *)
  let bs = match bs with c :: _ when Char.code c >= 0x80 -> '\000' :: bs | _ -> bs in
  let b = Buffer.create 4 in
  List.iter (Buffer.add_char b) bs;
  tlv tag_integer (Buffer.contents b)

let der_enum ?(tag = tag_enumerated) n = tlv tag (String.make 1 (Char.chr n))
let der_bool v = tlv tag_boolean (String.make 1 (if v then '\xff' else '\x00'))
let der_octets ?(tag = tag_octet_string) s = tlv tag s
let der_seq ?(tag = tag_sequence) parts = tlv tag (String.concat "" parts)

(* --- Backwards writer (zero-copy encode) --------------------------------- *)

(* DER is [tag length body] with the length in front of a body whose
   size is only known once it is written.  The [String.concat]
   combinators above solve that by materializing every nested value;
   the writer solves it by emitting into an [Ldap_compile.Wbuf]
   backwards: body first (children in {e reverse} order), then the
   length and tag prepended over it.  Each byte is written once. *)
module Writer = struct
  module Wbuf = Ldap_compile.Wbuf

  let mark = Wbuf.mark

  let prepend_length w n =
    if n < 0x80 then Wbuf.prepend_char w (Char.chr n)
    else begin
      let rec go n count =
        if n = 0 then count
        else begin
          Wbuf.prepend_char w (Char.chr (n land 0xff));
          go (n lsr 8) (count + 1)
        end
      in
      let count = go n 0 in
      Wbuf.prepend_char w (Char.chr (0x80 lor count))
    end

  (* Close the TLV whose body has been emitted since [m]. *)
  let close w ~tag m =
    prepend_length w (Wbuf.since w m);
    Wbuf.prepend_char w (Char.chr tag)

  let octets ?(tag = tag_octet_string) w s =
    let m = mark w in
    Wbuf.prepend_string w s;
    close w ~tag m

  let integer w n =
    if n < 0 then invalid_arg "der_integer: negative";
    let m = mark w in
    if n = 0 then Wbuf.prepend_char w '\000'
    else begin
      (* Prepending least-significant first lays bytes out big-endian. *)
      let rec go n = if n <> 0 then begin
        Wbuf.prepend_char w (Char.chr (n land 0xff));
        go (n lsr 8)
      end
      in
      go n;
      let rec top n = if n < 0x100 then n else top (n lsr 8) in
      if top n >= 0x80 then Wbuf.prepend_char w '\000'
    end;
    close w ~tag:tag_integer m

  let enum ?(tag = tag_enumerated) w n =
    let m = mark w in
    Wbuf.prepend_char w (Char.chr n);
    close w ~tag m

  let boolean w v =
    let m = mark w in
    Wbuf.prepend_char w (if v then '\xff' else '\x00');
    close w ~tag:tag_boolean m
end

(* --- Filter encoding (RFC 2251 section 4.5.1) --------------------------- *)

open struct
  module Wr = Writer
end

let rec emit_filter w (f : Filter.t) =
  match f with
  | Filter.And gs ->
      let m = Wr.mark w in
      List.iter (emit_filter w) (List.rev gs);
      Wr.close w ~tag:(ctxc 0) m
  | Filter.Or gs ->
      let m = Wr.mark w in
      List.iter (emit_filter w) (List.rev gs);
      Wr.close w ~tag:(ctxc 1) m
  | Filter.Not g ->
      let m = Wr.mark w in
      emit_filter w g;
      Wr.close w ~tag:(ctxc 2) m
  | Filter.Pred p -> emit_pred w p

and emit_ava w tag attr value =
  let m = Wr.mark w in
  Wr.octets w value;
  Wr.octets w attr;
  Wr.close w ~tag m

and emit_pred w = function
  | Filter.Equality (a, v) -> emit_ava w (ctxc 3) a v
  | Filter.Greater_eq (a, v) -> emit_ava w (ctxc 5) a v
  | Filter.Less_eq (a, v) -> emit_ava w (ctxc 6) a v
  | Filter.Approx (a, v) -> emit_ava w (ctxc 8) a v
  | Filter.Present a -> Wr.octets ~tag:(ctx 7) w a
  | Filter.Substrings (a, { initial; any; final }) ->
      let m = Wr.mark w in
      let ms = Wr.mark w in
      (match final with Some s -> Wr.octets ~tag:(ctx 2) w s | None -> ());
      List.iter (fun s -> Wr.octets ~tag:(ctx 1) w s) (List.rev any);
      (match initial with Some s -> Wr.octets ~tag:(ctx 0) w s | None -> ());
      Wr.close w ~tag:tag_sequence ms;
      Wr.octets w a;
      Wr.close w ~tag:(ctxc 4) m

(* --- Message encoding ---------------------------------------------------- *)

let emit_control w c =
  let m = Wr.mark w in
  (match c.control_value with Some v -> Wr.octets w v | None -> ());
  if c.criticality then Wr.boolean w true;
  Wr.octets w c.control_type;
  Wr.close w ~tag:tag_sequence m

let emit_search_request w (q : Query.t) =
  let attrs =
    match q.Query.attrs with Query.All -> [] | Query.Select l -> l
  in
  let m = Wr.mark w in
  let ma = Wr.mark w in
  List.iter (fun a -> Wr.octets w a) (List.rev attrs);
  Wr.close w ~tag:tag_sequence ma;
  emit_filter w q.Query.filter;
  Wr.boolean w false (* typesOnly *);
  Wr.integer w 0 (* timeLimit *);
  Wr.integer w 0 (* sizeLimit *);
  Wr.enum w 0 (* neverDerefAliases *);
  Wr.enum w (Scope.to_int q.Query.scope);
  Wr.octets w (Dn.to_string q.Query.base);
  Wr.close w ~tag:(app 3) m

let emit_entry w (e : Entry.t) =
  let m = Wr.mark w in
  let mattrs = Wr.mark w in
  List.iter
    (fun (name, values) ->
      let mone = Wr.mark w in
      let mvals = Wr.mark w in
      List.iter (fun v -> Wr.octets w v) (List.rev values);
      Wr.close w ~tag:tag_set mvals;
      Wr.octets w name;
      Wr.close w ~tag:tag_sequence mone)
    (List.rev (Entry.attributes e));
  Wr.close w ~tag:tag_sequence mattrs;
  Wr.octets w (Dn.to_string (Entry.dn e));
  Wr.close w ~tag:(app 4) m

let emit_done w (r : result_done) =
  let m = Wr.mark w in
  if r.referral <> [] then begin
    let mr = Wr.mark w in
    List.iter (fun u -> Wr.octets w u) (List.rev r.referral);
    Wr.close w ~tag:(ctxc 3) mr
  end;
  Wr.octets w r.diagnostic;
  Wr.octets w (Dn.to_string r.matched);
  Wr.enum w r.code;
  Wr.close w ~tag:(app 5) m

let emit_op w = function
  | Search_request q -> emit_search_request w q
  | Search_result_entry e -> emit_entry w e
  | Search_result_reference urls ->
      let m = Wr.mark w in
      List.iter (fun u -> Wr.octets w u) (List.rev urls);
      Wr.close w ~tag:(app 19) m
  | Search_result_done r -> emit_done w r

let emit_message w m =
  let mm = Wr.mark w in
  if m.controls <> [] then begin
    let mc = Wr.mark w in
    List.iter (emit_control w) (List.rev m.controls);
    Wr.close w ~tag:(ctxc 0) mc
  end;
  emit_op w m.op;
  Wr.integer w m.id;
  Wr.close w ~tag:tag_sequence mm

(* One buffer reused across every encode in the process; emitters never
   re-enter [encode], so sharing is safe. *)
let scratch = Ldap_compile.Wbuf.create ~capacity:4096 ()

let encode_to = emit_message

let encode m =
  Ldap_compile.Wbuf.clear scratch;
  emit_message scratch m;
  Ldap_compile.Wbuf.contents scratch

let encoded_size m =
  Ldap_compile.Wbuf.clear scratch;
  emit_message scratch m;
  Ldap_compile.Wbuf.length scratch

(* --- Decoding ------------------------------------------------------------ *)

exception Decode_error of string

type cursor = { buf : string; mutable pos : int; limit : int }

let sub_cursor c len =
  if c.pos + len > c.limit then raise (Decode_error "truncated value");
  let inner = { buf = c.buf; pos = c.pos; limit = c.pos + len } in
  c.pos <- c.pos + len;
  inner

let byte c =
  if c.pos >= c.limit then raise (Decode_error "unexpected end of input");
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let read_length c =
  let first = byte c in
  if first < 0x80 then first
  else
    let count = first land 0x7f in
    if count = 0 || count > 4 then raise (Decode_error "unsupported length form")
    else begin
      let n = ref 0 in
      for _ = 1 to count do
        n := (!n lsl 8) lor byte c
      done;
      !n
    end

let read_tlv c =
  let tag = byte c in
  let len = read_length c in
  (tag, sub_cursor c len)

let expect_tag expected (tag, inner) =
  if tag <> expected then
    raise (Decode_error (Printf.sprintf "expected tag 0x%02x, got 0x%02x" expected tag));
  inner

let contents c = String.sub c.buf c.pos (c.limit - c.pos)

let at_end c = c.pos >= c.limit

(* Big-endian fold over the cursor's remaining region in place — the
   scalar readers never materialize an intermediate substring. *)
let fold_be inner =
  let acc = ref 0 in
  for i = inner.pos to inner.limit - 1 do
    acc := (!acc lsl 8) lor Char.code (String.unsafe_get inner.buf i)
  done;
  !acc

(* The old reader treated exactly the body "\x00" as false; keep that. *)
let is_false_body inner =
  inner.limit - inner.pos = 1 && inner.buf.[inner.pos] = '\x00'

let read_integer c = fold_be (expect_tag tag_integer (read_tlv c))
let read_enum ?(tag = tag_enumerated) c = fold_be (expect_tag tag (read_tlv c))
let read_bool c = not (is_false_body (expect_tag tag_boolean (read_tlv c)))

let read_octets ?(tag = tag_octet_string) c =
  contents (expect_tag tag (read_tlv c))

let read_dn s =
  match Dn.of_string s with
  | Ok dn -> dn
  | Error e -> raise (Decode_error e)

let rec decode_filter c =
  let tag, inner = read_tlv c in
  let read_ava () =
    let a = read_octets inner in
    let v = read_octets inner in
    (a, v)
  in
  if tag = ctxc 0 then Filter.And (decode_filter_list inner)
  else if tag = ctxc 1 then Filter.Or (decode_filter_list inner)
  else if tag = ctxc 2 then Filter.Not (decode_filter inner)
  else if tag = ctxc 3 then
    let a, v = read_ava () in
    Filter.Pred (Filter.Equality (a, v))
  else if tag = ctxc 5 then
    let a, v = read_ava () in
    Filter.Pred (Filter.Greater_eq (a, v))
  else if tag = ctxc 6 then
    let a, v = read_ava () in
    Filter.Pred (Filter.Less_eq (a, v))
  else if tag = ctxc 8 then
    let a, v = read_ava () in
    Filter.Pred (Filter.Approx (a, v))
  else if tag = ctx 7 then Filter.Pred (Filter.Present (contents inner))
  else if tag = ctxc 4 then begin
    let a = read_octets inner in
    let subs = expect_tag tag_sequence (read_tlv inner) in
    let initial = ref None and any = ref [] and final = ref None in
    while not (at_end subs) do
      let stag, sinner = read_tlv subs in
      let v = contents sinner in
      if stag = ctx 0 then initial := Some v
      else if stag = ctx 1 then any := v :: !any
      else if stag = ctx 2 then final := Some v
      else raise (Decode_error "bad substring component")
    done;
    Filter.Pred
      (Filter.Substrings
         (a, { Filter.initial = !initial; any = List.rev !any; final = !final }))
  end
  else raise (Decode_error (Printf.sprintf "unknown filter tag 0x%02x" tag))

and decode_filter_list c =
  let rec go acc = if at_end c then List.rev acc else go (decode_filter c :: acc) in
  go []

let decode_controls c =
  let rec go acc =
    if at_end c then List.rev acc
    else begin
      let inner = expect_tag tag_sequence (read_tlv c) in
      let control_type = read_octets inner in
      (* Optional criticality, then optional value. *)
      let criticality = ref false and control_value = ref None in
      while not (at_end inner) do
        let tag, vinner = read_tlv inner in
        if tag = tag_boolean then criticality := not (is_false_body vinner)
        else if tag = tag_octet_string then control_value := Some (contents vinner)
        else raise (Decode_error "bad control field")
      done;
      go ({ control_type; criticality = !criticality; control_value = !control_value } :: acc)
    end
  in
  go []

let decode_search_request c =
  let base = read_dn (read_octets c) in
  let scope =
    match Scope.of_int (read_enum c) with
    | Some s -> s
    | None -> raise (Decode_error "bad scope")
  in
  let _deref = read_enum c in
  let _size = read_integer c in
  let _time = read_integer c in
  let _types_only = read_bool c in
  let filter = decode_filter c in
  let attr_seq = expect_tag tag_sequence (read_tlv c) in
  let rec attrs acc =
    if at_end attr_seq then List.rev acc else attrs (read_octets attr_seq :: acc)
  in
  let attr_list = attrs [] in
  let attrs = if attr_list = [] then Query.All else Query.Select attr_list in
  Query.make ~scope ~attrs ~base filter

let decode_entry c =
  let dn = read_dn (read_octets c) in
  let attr_seq = expect_tag tag_sequence (read_tlv c) in
  let rec attrs acc =
    if at_end attr_seq then List.rev acc
    else begin
      let one = expect_tag tag_sequence (read_tlv attr_seq) in
      let name = read_octets one in
      let vals = expect_tag tag_set (read_tlv one) in
      let rec values vacc =
        if at_end vals then List.rev vacc else values (read_octets vals :: vacc)
      in
      attrs ((name, values []) :: acc)
    end
  in
  Entry.make dn (attrs [])

let decode_done c =
  let code = read_enum c in
  let matched = read_dn (read_octets c) in
  let diagnostic = read_octets c in
  let referral =
    if at_end c then []
    else begin
      let inner = expect_tag (ctxc 3) (read_tlv c) in
      let rec go acc = if at_end inner then List.rev acc else go (read_octets inner :: acc) in
      go []
    end
  in
  { code; matched; diagnostic; referral }

let decode_reference c =
  let rec go acc = if at_end c then List.rev acc else go (read_octets c :: acc) in
  go []

let decode s =
  let c = { buf = s; pos = 0; limit = String.length s } in
  match
    let outer = expect_tag tag_sequence (read_tlv c) in
    if not (at_end c) then raise (Decode_error "trailing bytes after message");
    let id = read_integer outer in
    let tag, inner = read_tlv outer in
    let op =
      if tag = app 3 then Search_request (decode_search_request inner)
      else if tag = app 4 then Search_result_entry (decode_entry inner)
      else if tag = app 19 then Search_result_reference (decode_reference inner)
      else if tag = app 5 then Search_result_done (decode_done inner)
      else raise (Decode_error (Printf.sprintf "unknown protocol op 0x%02x" tag))
    in
    let controls =
      if at_end outer then []
      else decode_controls (expect_tag (ctxc 0) (read_tlv outer))
    in
    { id; op; controls }
  with
  | m -> Ok m
  | exception Decode_error e -> Error e

(* --- The resync control --------------------------------------------------- *)

let mode_code = function
  | "poll" -> 0
  | "persist" -> 1
  | "sync_end" -> 2
  | m -> invalid_arg ("unknown resync mode: " ^ m)

let mode_name = function
  | 0 -> Ok "poll"
  | 1 -> Ok "persist"
  | 2 -> Ok "sync_end"
  | n -> Error (Printf.sprintf "unknown resync mode code %d" n)

let resync_control ~mode ~cookie =
  let value =
    der_seq
      ([ der_enum (mode_code mode) ]
      @ match cookie with Some c -> [ der_octets c ] | None -> [])
  in
  { control_type = resync_oid; criticality = true; control_value = Some value }

let decode_resync_control control =
  if control.control_type <> resync_oid then Error "not a resync control"
  else
    match control.control_value with
    | None -> Error "resync control has no value"
    | Some v -> (
        let c = { buf = v; pos = 0; limit = String.length v } in
        match
          let inner = expect_tag tag_sequence (read_tlv c) in
          let mode = read_enum inner in
          let cookie = if at_end inner then None else Some (read_octets inner) in
          (mode, cookie)
        with
        | mode, cookie -> Result.map (fun m -> (m, cookie)) (mode_name mode)
        | exception Decode_error e -> Error e)

(* --- Convenience ------------------------------------------------------------ *)

let search_request ?(id = 1) q =
  let controls =
    if q.Query.manage_dsa_it then
      [ { control_type = manage_dsa_it_oid; criticality = true; control_value = None } ]
    else []
  in
  { id; op = Search_request q; controls }

let entry_message ?(id = 1) e = { id; op = Search_result_entry e; controls = [] }

module Der = struct
  type nonrec cursor = cursor

  let integer = der_integer
  let boolean = der_bool
  let enum n = der_enum n
  let octets s = der_octets s
  let seq parts = der_seq parts
  let option f = function None -> der_seq [] | Some v -> der_seq [ f v ]

  let with_scratch emit x =
    Ldap_compile.Wbuf.clear scratch;
    emit scratch x;
    Ldap_compile.Wbuf.contents scratch

  let entry e = with_scratch emit_entry e
  let query q = with_scratch emit_search_request q

  module W = struct
    type w = Ldap_compile.Wbuf.t

    let mark = Writer.mark
    let close_seq w m = Writer.close w ~tag:tag_sequence m
    let close_octets w m = Writer.close w ~tag:tag_octet_string m
    let integer = Writer.integer
    let boolean = Writer.boolean
    let enum w n = Writer.enum w n
    let octets w s = Writer.octets w s
    let option w f = function
      | None -> close_seq w (mark w)
      | Some v ->
          let m = mark w in
          f v;
          close_seq w m
    let entry = emit_entry
    let query = emit_search_request
  end

  let cursor s = { buf = s; pos = 0; limit = String.length s }
  let at_end = at_end
  let read_integer c = read_integer c
  let read_boolean = read_bool
  let read_enum c = read_enum c
  let read_octets c = read_octets c
  let read_seq c = expect_tag tag_sequence (read_tlv c)
  let read_option f c =
    let inner = read_seq c in
    if at_end inner then None else Some (f inner)
  let read_entry c = decode_entry (expect_tag (app 4) (read_tlv c))
  let read_query c = decode_search_request (expect_tag (app 3) (read_tlv c))
end
