type t = {
  mutable buf : Update.record array;  (* ring storage; length is capacity *)
  mutable head : int;  (* physical index of the oldest record *)
  mutable len : int;
  mutable floor : Csn.t;  (* records <= floor have been trimmed *)
}

let create () = { buf = [||]; head = 0; len = 0; floor = Csn.zero }

let length t = t.len
let floor t = t.floor

(* Logical index -> physical slot. *)
let slot t i = (t.head + i) mod Array.length t.buf

let get t i = t.buf.(slot t i)

let grow t seed =
  let cap = max 16 (2 * Array.length t.buf) in
  let buf = Array.make cap seed in
  for i = 0 to t.len - 1 do
    buf.(i) <- get t i
  done;
  t.buf <- buf;
  t.head <- 0

let append t (r : Update.record) =
  if t.len > 0 && Csn.( <= ) r.csn (get t (t.len - 1)).Update.csn then
    invalid_arg "Changelog.append: CSN not increasing";
  if t.len = Array.length t.buf then grow t r;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- r;
  t.len <- t.len + 1

(* Smallest logical index whose record has CSN > [csn]; [t.len] when
   none does.  Records are CSN-sorted, so this is a binary search. *)
let first_after t csn =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Csn.( < ) csn (get t mid).Update.csn then hi := mid else lo := mid + 1
  done;
  !lo

let since t csn =
  let start = first_after t csn in
  let out = ref [] in
  for i = t.len - 1 downto start do
    out := get t i :: !out
  done;
  !out

let complete_since t csn = Csn.( <= ) t.floor csn

let trim t ~before =
  while t.len > 0 && Csn.( < ) (get t 0).Update.csn before do
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1
  done;
  let fl = Csn.of_int (Csn.to_int before - 1) in
  if Csn.( < ) t.floor fl then t.floor <- fl

let iter t ~f =
  for i = 0 to t.len - 1 do
    f (get t i)
  done
