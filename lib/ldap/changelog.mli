(** CSN-indexed changelog of committed updates.

    A growable ring buffer holding {!Update.record}s in commit (CSN)
    order.  The cons-list log it replaces cost O(n) for every suffix
    read, trim and length query, which put a linear factor on the
    ReSync changelog-replay hot path; the ring gives O(log n + result)
    suffix reads ({!since} binary-searches the first retained record),
    O(1) {!length} and O(dropped) {!trim}.

    Records must be appended with strictly increasing CSNs ({!Backend}
    guarantees this by construction); {!since} relies on that order. *)

type t

val create : unit -> t
(** Empty log with floor {!Csn.zero}: complete since the beginning. *)

val append : t -> Update.record -> unit
(** Adds a record at the tail.  Amortized O(1).
    @raise Invalid_argument if the record's CSN is not strictly greater
    than the last appended one. *)

val since : t -> Csn.t -> Update.record list
(** Records with CSN strictly greater than the argument, oldest first.
    O(log n) to locate the suffix plus O(result) to build it. *)

val complete_since : t -> Csn.t -> bool
(** Whether the log still reaches back to (exclusive) the given CSN,
    i.e. no record with a larger CSN has been trimmed away. *)

val trim : t -> before:Csn.t -> unit
(** Drops records with CSN < [before] and raises the floor to
    [before - 1]; models bounded history.  O(records dropped). *)

val floor : t -> Csn.t
(** Records at or below the floor have been trimmed. *)

val length : t -> int
(** O(1). *)

val iter : t -> f:(Update.record -> unit) -> unit
(** Oldest first. *)
