type substring = {
  initial : string option;
  any : string list;
  final : string option;
}

type pred =
  | Equality of string * string
  | Greater_eq of string * string
  | Less_eq of string * string
  | Present of string
  | Substrings of string * substring
  | Approx of string * string

type t = And of t list | Or of t list | Not of t | Pred of pred

let tt = Pred (Present "objectclass")

let pred_attr = function
  | Equality (a, _) | Greater_eq (a, _) | Less_eq (a, _)
  | Present a | Substrings (a, _) | Approx (a, _) ->
      String.lowercase_ascii a

let rec fold_pred f acc = function
  | Pred p -> f acc p
  | Not g -> fold_pred f acc g
  | And gs | Or gs -> List.fold_left (fold_pred f) acc gs

let attributes t =
  fold_pred (fun acc p -> pred_attr p :: acc) [] t
  |> List.sort_uniq String.compare

let rec is_positive = function
  | Pred _ -> true
  | Not _ -> false
  | And gs | Or gs -> List.for_all is_positive gs

let size t = fold_pred (fun n _ -> n + 1) 0 t

let rec map_pred f = function
  | Pred p -> Pred (f p)
  | Not g -> Not (map_pred f g)
  | And gs -> And (List.map (map_pred f) gs)
  | Or gs -> Or (List.map (map_pred f) gs)

(* --- Normalization ------------------------------------------------- *)

let lc_pred p =
  let lc = String.lowercase_ascii in
  match p with
  | Equality (a, v) -> Equality (lc a, v)
  | Greater_eq (a, v) -> Greater_eq (lc a, v)
  | Less_eq (a, v) -> Less_eq (lc a, v)
  | Present a -> Present (lc a)
  | Substrings (a, s) -> Substrings (lc a, s)
  | Approx (a, v) -> Approx (lc a, v)

let rec structural_compare a b =
  let rank = function And _ -> 0 | Or _ -> 1 | Not _ -> 2 | Pred _ -> 3 in
  match (a, b) with
  | And xs, And ys | Or xs, Or ys -> compare_lists xs ys
  | Not x, Not y -> structural_compare x y
  | Pred p, Pred q -> Stdlib.compare p q
  | _ -> Int.compare (rank a) (rank b)

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys -> (
      match structural_compare x y with 0 -> compare_lists xs ys | c -> c)

let rec normalize t =
  match t with
  | Pred p -> Pred (lc_pred p)
  | Not g -> Not (normalize g)
  | And gs -> rebuild (fun l -> And l) (function And l -> Some l | _ -> None) gs
  | Or gs -> rebuild (fun l -> Or l) (function Or l -> Some l | _ -> None) gs

and rebuild mk same gs =
  let flattened =
    List.concat_map
      (fun g ->
        let g = normalize g in
        match same g with Some l -> l | None -> [ g ])
      gs
  in
  let sorted = List.sort_uniq structural_compare flattened in
  match sorted with [ g ] -> g | l -> mk l

let equal a b = structural_compare (normalize a) (normalize b) = 0
let compare a b = structural_compare (normalize a) (normalize b)

(* --- Evaluation ----------------------------------------------------- *)

let pred_matches schema p entry =
  let syntax a = Schema.syntax_of schema a in
  match p with
  | Present a -> Entry.has_attribute entry a
  | Equality (a, v) | Approx (a, v) ->
      Entry.has_value ~syntax:(syntax a) entry a v
  | Greater_eq (a, v) ->
      List.exists (fun x -> Value.compare (syntax a) x v >= 0) (Entry.get entry a)
  | Less_eq (a, v) ->
      List.exists (fun x -> Value.compare (syntax a) x v <= 0) (Entry.get entry a)
  | Substrings (a, { initial; any; final }) ->
      List.exists
        (fun x -> Value.matches_substring (syntax a) ~initial ~any ~final x)
        (Entry.get entry a)

let rec matches schema t entry =
  match t with
  | Pred p -> pred_matches schema p entry
  | Not g -> not (matches schema g entry)
  | And gs -> List.for_all (fun g -> matches schema g entry) gs
  | Or gs -> List.exists (fun g -> matches schema g entry) gs

(* --- Compilation ----------------------------------------------------- *)

(* Lower a predicate to bytecode.  The attribute id is the interned
   *literal* (lowercased) name, matching [Entry.get]'s key semantics:
   filters do not resolve schema aliases against entry attributes, and
   neither may the compiled program.  The syntax lookup, by contrast,
   is alias-resolving, exactly as [pred_matches] does it. *)
let compile_pred schema p =
  let open Ldap_compile in
  let id a = Attr_id.intern (String.lowercase_ascii a) in
  let syntax a = Schema.syntax_of schema a in
  match p with
  | Present a -> Prog.P_present (id a)
  | Equality (a, v) | Approx (a, v) ->
      Prog.P_eq (id a, Value.canonical (syntax a) v)
  | Greater_eq (a, v) | Less_eq (a, v) -> (
      let ge = match p with Greater_eq _ -> true | _ -> false in
      match syntax a with
      | Value.Integer ->
          let c = Value.canonical Value.Integer v in
          Prog.P_cmp_int
            { i_id = id a; i_ge = ge; i_v = int_of_string_opt c; i_vs = c }
      | (Value.Case_ignore | Value.Case_exact | Value.Telephone) as s ->
          Prog.P_cmp { c_id = id a; c_ge = ge; c_v = Value.normalize s v })
  | Substrings (a, { initial; any; final }) ->
      let s = syntax a in
      let norm v = Value.normalize s v in
      Prog.P_sub
        {
          s_id = id a;
          s_initial = Option.map norm initial;
          s_any = Array.of_list (List.map norm any);
          s_final = Option.map norm final;
        }

let compile schema t =
  let open Ldap_compile in
  let rec go = function
    | Pred p -> compile_pred schema p
    | Not g -> Prog.P_not (go g)
    | And [] -> Prog.P_true
    | Or [] -> Prog.P_false
    | And gs -> Prog.P_all (Array.of_list (List.map go gs))
    | Or gs -> Prog.P_any (Array.of_list (List.map go gs))
  in
  go t

let matcher schema t =
  let prog = compile schema t in
  fun entry -> Ldap_compile.Prog.matches prog (Entry.compiled schema entry)

(* --- Printing ------------------------------------------------------- *)

let escape_assertion v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '*' -> Buffer.add_string b "\\2a"
      | '(' -> Buffer.add_string b "\\28"
      | ')' -> Buffer.add_string b "\\29"
      | '\\' -> Buffer.add_string b "\\5c"
      | '\000' -> Buffer.add_string b "\\00"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let substring_to_string { initial; any; final } =
  let e = escape_assertion in
  String.concat "*"
    ((match initial with Some s -> [ e s ] | None -> [ "" ])
    @ List.map e any
    @ match final with Some s -> [ e s ] | None -> [ "" ])

let pred_to_string = function
  | Equality (a, v) -> Printf.sprintf "(%s=%s)" a (escape_assertion v)
  | Greater_eq (a, v) -> Printf.sprintf "(%s>=%s)" a (escape_assertion v)
  | Less_eq (a, v) -> Printf.sprintf "(%s<=%s)" a (escape_assertion v)
  | Present a -> Printf.sprintf "(%s=*)" a
  | Substrings (a, s) -> Printf.sprintf "(%s=%s)" a (substring_to_string s)
  | Approx (a, v) -> Printf.sprintf "(%s~=%s)" a (escape_assertion v)

let rec to_string = function
  | Pred p -> pred_to_string p
  | Not g -> Printf.sprintf "(!%s)" (to_string g)
  | And gs -> Printf.sprintf "(&%s)" (String.concat "" (List.map to_string gs))
  | Or gs -> Printf.sprintf "(|%s)" (String.concat "" (List.map to_string gs))

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* --- Parsing -------------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Parse_error (Printf.sprintf "expected %c, got %c at %d" ch x c.pos))
  | None -> raise (Parse_error (Printf.sprintf "expected %c, got end of input" ch))

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Some (Char.code ch - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code ch - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code ch - Char.code 'A' + 10)
  | _ -> None

(* Reads assertion-value text up to an unescaped '*' or ')'.  Returns
   the decoded text; stops before the terminator. *)
let read_value_segment c =
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None | Some ')' | Some '*' -> Buffer.contents b
    | Some '\\' ->
        advance c;
        (match (peek c, if c.pos + 1 < String.length c.s then Some c.s.[c.pos + 1] else None) with
        | Some h, Some l when hex_digit h <> None && hex_digit l <> None ->
            let v = (Option.get (hex_digit h) * 16) + Option.get (hex_digit l) in
            Buffer.add_char b (Char.chr v);
            advance c;
            advance c
        | Some ch, _ ->
            Buffer.add_char b ch;
            advance c
        | None, _ -> raise (Parse_error "dangling escape"));
        go ()
    | Some ch ->
        Buffer.add_char b ch;
        advance c;
        go ()
  in
  go ()

let read_attr c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ('=' | '>' | '<' | '~' | ')' | '(') | None -> ()
    | Some _ ->
        advance c;
        go ()
  in
  go ();
  let a = String.trim (String.sub c.s start (c.pos - start)) in
  if a = "" then raise (Parse_error (Printf.sprintf "empty attribute at %d" c.pos));
  a

let parse_simple c =
  let attr = read_attr c in
  let op =
    match peek c with
    | Some '=' ->
        advance c;
        `Eq
    | Some '>' ->
        advance c;
        expect c '=';
        `Ge
    | Some '<' ->
        advance c;
        expect c '=';
        `Le
    | Some '~' ->
        advance c;
        expect c '=';
        `Approx
    | _ -> raise (Parse_error (Printf.sprintf "expected operator at %d" c.pos))
  in
  match op with
  | `Ge -> Pred (Greater_eq (attr, read_value_segment c))
  | `Le -> Pred (Less_eq (attr, read_value_segment c))
  | `Approx -> Pred (Approx (attr, read_value_segment c))
  | `Eq -> (
      (* Could be equality, presence or substring depending on '*'. *)
      let first = read_value_segment c in
      match peek c with
      | Some ')' | None -> Pred (Equality (attr, first))
      | Some '*' ->
          advance c;
          let segments = ref [] in
          let rec collect () =
            let seg = read_value_segment c in
            segments := seg :: !segments;
            match peek c with
            | Some '*' ->
                advance c;
                collect ()
            | _ -> ()
          in
          collect ();
          let rest = List.rev !segments in
          let initial = if first = "" then None else Some first in
          (* The last segment (possibly empty) is the final component. *)
          let rec split_last = function
            | [] -> ([], "")
            | [ x ] -> ([], x)
            | x :: xs ->
                let mid, last = split_last xs in
                (x :: mid, last)
          in
          let mid, last = split_last rest in
          let any = List.filter (fun s -> s <> "") mid in
          let final = if last = "" then None else Some last in
          if initial = None && any = [] && final = None then Pred (Present attr)
          else Pred (Substrings (attr, { initial; any; final }))
      | Some ch -> raise (Parse_error (Printf.sprintf "unexpected %c at %d" ch c.pos)))

let rec parse_filter c =
  expect c '(';
  let result =
    match peek c with
    | Some '&' ->
        advance c;
        And (parse_list c)
    | Some '|' ->
        advance c;
        Or (parse_list c)
    | Some '!' ->
        advance c;
        Not (parse_filter c)
    | Some _ -> parse_simple c
    | None -> raise (Parse_error "unexpected end of input")
  in
  expect c ')';
  result

and parse_list c =
  let rec go acc =
    match peek c with
    | Some '(' -> go (parse_filter c :: acc)
    | _ -> List.rev acc
  in
  let l = go [] in
  if l = [] then raise (Parse_error "empty AND/OR operand list") else l

let of_string s =
  let c = { s = String.trim s; pos = 0 } in
  match parse_filter c with
  | f ->
      if c.pos <> String.length c.s then
        Error (Printf.sprintf "invalid filter %S: trailing input at %d" s c.pos)
      else Ok f
  | exception Parse_error msg -> Error (Printf.sprintf "invalid filter %S: %s" s msg)

let of_string_exn s =
  match of_string s with
  | Ok f -> f
  | Error msg -> invalid_arg ("Filter.of_string_exn: " ^ msg)
