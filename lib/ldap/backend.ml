type t = {
  schema : Schema.t;
  mutable contexts : Dit.t list;  (* deepest suffix first *)
  index : Index.t;
  estore : Content_store.t;  (* flat mirror of every context, spine in commit order *)
  mutable referral_dns : Dn.Set.t;  (* referral objects, for references *)
  log : Changelog.t;
  mutable csn : Csn.t;
  mutable subscribers : (Update.record -> unit) array;  (* registration order *)
  mutable subscriber_count : int;
}

let create ?(indexed = []) schema =
  {
    schema;
    contexts = [];
    index = Index.create schema ~attrs:("objectclass" :: indexed);
    estore = Content_store.create ();
    referral_dns = Dn.Set.empty;
    log = Changelog.create ();
    csn = Csn.zero;
    subscribers = [||];
    subscriber_count = 0;
  }

let schema t = t.schema

let note_entry t entry ~add =
  (if add then Index.insert else Index.remove) t.index entry;
  (* The flat mirror follows every DIT mutation through this one choke
     point; the stamp is the CSN about to commit (or, on restore, a
     best-effort bound — the spine order is what cursors rely on). *)
  (if add then Content_store.upsert t.estore ~csn:(Csn.next t.csn) entry
   else Content_store.remove t.estore ~csn:(Csn.next t.csn) (Entry.dn entry));
  if Entry.is_referral entry then
    t.referral_dns <-
      (if add then Dn.Set.add else Dn.Set.remove) (Entry.dn entry) t.referral_dns

let add_context t entry =
  let suffix = Entry.dn entry in
  let clashes dit =
    Dn.ancestor_of (Dit.suffix dit) suffix || Dn.ancestor_of suffix (Dit.suffix dit)
  in
  if List.exists clashes t.contexts then
    Error
      (Printf.sprintf "context %S overlaps an existing naming context"
         (Dn.to_string suffix))
  else begin
    let by_depth a b = Int.compare (Dn.depth (Dit.suffix b)) (Dn.depth (Dit.suffix a)) in
    t.contexts <- List.sort by_depth (Dit.create entry :: t.contexts);
    note_entry t entry ~add:true;
    Ok ()
  end

let contexts t = t.contexts

let context_for t dn =
  (* contexts are sorted deepest first, so the first covering context
     is the most specific one. *)
  List.find_opt (fun dit -> Dit.contains_dn dit dn) t.contexts

let set_context t dit' =
  t.contexts <-
    List.map (fun dit -> if Dn.equal (Dit.suffix dit) (Dit.suffix dit') then dit' else dit)
      t.contexts

let find t dn =
  match context_for t dn with None -> None | Some dit -> Dit.find dit dn

let total_entries t = List.fold_left (fun acc dit -> acc + Dit.size dit) 0 t.contexts

let fold_entries t ~init ~f =
  List.fold_left (fun acc dit -> Dit.fold dit ~init:acc ~f) init t.contexts

let entries_seq t = Content_store.to_seq t.estore
let content_store t = t.estore

(* --- Search --------------------------------------------------------- *)

type search_error =
  | No_such_object of Dn.t
  | Base_referral of { dn : Dn.t; urls : string list }

type search_result = { entries : Entry.t list; references : string list list }

(* Name resolution: walk from the context suffix down to [base]; if a
   referral object sits at or above the base, the client must chase it. *)
let resolve_base t dit base =
  let rec ancestors acc dn =
    if Dn.equal dn (Dit.suffix dit) then dn :: acc
    else
      match Dn.parent dn with
      | None -> acc
      | Some p -> ancestors (dn :: acc) p
  in
  let path = ancestors [] base in
  let referral =
    List.find_map
      (fun dn ->
        if Dn.Set.mem dn t.referral_dns then
          Option.map (fun e -> (dn, Entry.referral_urls e)) (Dit.find dit dn)
        else None)
      path
  in
  match referral with
  | Some (dn, urls) -> Error (Base_referral { dn; urls })
  | None -> (
      match Dit.find dit base with
      | None -> Error (No_such_object base)
      | Some entry -> Ok entry)

(* Referral object strictly between [base] (exclusive) and [dn]
   (exclusive)?  Used to cut off index candidates living under
   subordinate referrals. *)
let crosses_referral t ~base dn =
  if Dn.Set.is_empty t.referral_dns then false
  else
    let rec go cur =
      match Dn.parent cur with
      | None -> false
      | Some p ->
          if Dn.equal p base then false
          else Dn.Set.mem p t.referral_dns || go p
    in
    go dn

(* Candidate DNs from indexes, if some indexed predicate must hold.
   Returns [None] when no index applies (fall back to traversal). *)
let rec index_candidates t filter =
  match filter with
  | Filter.Pred (Filter.Equality (a, v)) when Index.is_indexed t.index a ->
      Some (Index.lookup_eq t.index ~attr:a v)
  | Filter.Pred (Filter.Substrings (a, { initial = Some p; _ }))
    when Index.is_indexed t.index a ->
      Some (Index.lookup_prefix t.index ~attr:a p)
  | Filter.And gs ->
      (* Any conjunct's candidate set over-approximates the result;
         pick the smallest available.  Cardinal is O(n) on these sets,
         so compute it once per conjunct instead of re-measuring the
         running best on every comparison. *)
      List.filter_map (index_candidates t) gs
      |> List.fold_left
           (fun best s ->
             let n = Dn.Set.cardinal s in
             match best with
             | Some (_, bn) when bn <= n -> best
             | Some _ | None -> Some (s, n))
           None
      |> Option.map fst
  | Filter.Or gs ->
      let sets = List.map (index_candidates t) gs in
      if List.for_all Option.is_some sets then
        Some
          (List.fold_left
             (fun acc s -> Dn.Set.union acc (Option.get s))
             Dn.Set.empty sets)
      else None
  | Filter.Pred _ | Filter.Not _ -> None

let in_scope_references t (q : Query.t) =
  Dn.Set.fold
    (fun dn acc -> if Query.in_scope q dn then dn :: acc else acc)
    t.referral_dns []

let requested_attrs (q : Query.t) = Query.attr_list q.attrs

let search t (q : Query.t) =
  match context_for t q.base with
  | None -> Error (No_such_object q.base)
  | Some dit -> (
      let manage = q.Query.manage_dsa_it in
      let resolved =
        if manage then
          (* manageDsaIT: name resolution sees referral objects as
             plain entries. *)
          match Dit.find dit q.base with
          | None -> Error (No_such_object q.base)
          | Some entry -> Ok entry
        else resolve_base t dit q.base
      in
      match resolved with
      | Error e -> Error e
      | Ok _base_entry ->
          let references =
            if manage then []
            else
              List.filter_map
                (fun dn -> Option.map Entry.referral_urls (Dit.find dit dn))
                (in_scope_references t q)
          in
          let is_excluded entry =
            (not manage)
            && (Entry.is_referral entry
               || crosses_referral t ~base:q.base (Entry.dn entry))
          in
          (* Compile the filter once per search; every candidate then
             evaluates bytecode against its memoized compiled view
             instead of re-walking the AST with per-predicate schema
             lookups and value normalization. *)
          let filter_matches = Filter.matcher t.schema q.filter in
          let matches entry = (not (is_excluded entry)) && filter_matches entry in
          let collect_traversal () =
            match q.scope with
            | Scope.Base -> (
                match Dit.find dit q.base with
                | Some e when matches e -> [ e ]
                | Some _ | None -> [])
            | Scope.One -> List.filter matches (Dit.children dit q.base)
            | Scope.Sub ->
                Dit.fold_subtree dit q.base ~init:[] ~f:(fun acc e ->
                    if matches e then e :: acc else acc)
          in
          let collect_indexed candidates =
            Dn.Set.fold
              (fun dn acc ->
                if not (Query.in_scope q dn) then acc
                else
                  match Dit.find dit dn with
                  | Some e when matches e -> e :: acc
                  | Some _ | None -> acc)
              candidates []
          in
          let entries =
            match index_candidates t q.filter with
            | Some candidates -> collect_indexed candidates
            | None -> collect_traversal ()
          in
          let entries = List.map (fun e -> Entry.select e (requested_attrs q)) entries in
          Ok { entries; references })

let compare_values t dn ~attr ~value =
  match find t dn with
  | None -> Error (Printf.sprintf "no such object: %s" (Dn.to_string dn))
  | Some entry ->
      Ok (Entry.has_value ~syntax:(Schema.syntax_of t.schema attr) entry attr value)

let count_matching t q =
  match search t { q with attrs = Query.Select [ "objectclass" ] } with
  | Ok { entries; _ } -> List.length entries
  | Error _ -> 0

(* --- Updates -------------------------------------------------------- *)

let naming_values_present entry =
  match Dn.rdn (Entry.dn entry) with
  | None -> entry
  | Some avas ->
      List.fold_left
        (fun e (ava : Dn.ava) -> Entry.add_values e ava.attr [ ava.value ])
        entry avas

let validate_entry t entry =
  ignore t;
  if Entry.object_classes entry = [] then
    Error (Printf.sprintf "entry %S has no objectClass" (Dn.to_string (Entry.dn entry)))
  else Ok ()

let apply_mod schema entry (item : Update.mod_item) =
  let syntax = Schema.syntax_of schema item.mod_attr in
  match item.mod_kind with
  | Update.Add_values -> Ok (Entry.add_values ~syntax entry item.mod_attr item.mod_values)
  | Update.Replace_values -> Ok (Entry.replace_values entry item.mod_attr item.mod_values)
  | Update.Delete_values -> Entry.delete_values ~syntax entry item.mod_attr item.mod_values

let commit t op ~before ~after ~(mutate : unit -> (unit, string) result) =
  match mutate () with
  | Error _ as e -> e
  | Ok () ->
      t.csn <- Csn.next t.csn;
      let record = { Update.csn = t.csn; op; before; after } in
      Changelog.append t.log record;
      for i = 0 to t.subscriber_count - 1 do
        t.subscribers.(i) record
      done;
      Ok record

let dit_result dit_res ~on_ok =
  match dit_res with
  | Ok dit -> on_ok dit
  | Error e -> Error (Dit.error_to_string e)

let apply t op =
  (* Post-images carry the committing CSN as modifyTimestamp, which the
     degraded ReSync mode (eq. (3) of the paper) relies on. *)
  let stamp e =
    Entry.replace_values e "modifytimestamp" [ Csn.to_string (Csn.next t.csn) ]
  in
  match op with
  | Update.Add entry -> (
      let entry = stamp (naming_values_present entry) in
      let dn = Entry.dn entry in
      match validate_entry t entry with
      | Error _ as e -> e
      | Ok () -> (
          match context_for t dn with
          | None ->
              Error (Printf.sprintf "no naming context for %S" (Dn.to_string dn))
          | Some dit ->
              commit t op ~before:None ~after:(Some entry) ~mutate:(fun () ->
                  dit_result (Dit.add dit entry) ~on_ok:(fun dit' ->
                      set_context t dit';
                      note_entry t entry ~add:true;
                      Ok ()))))
  | Update.Delete dn -> (
      match context_for t dn with
      | None -> Error (Printf.sprintf "no naming context for %S" (Dn.to_string dn))
      | Some dit -> (
          match Dit.find dit dn with
          | None -> Error (Printf.sprintf "no such object: %s" (Dn.to_string dn))
          | Some before ->
              commit t op ~before:(Some before) ~after:None ~mutate:(fun () ->
                  dit_result (Dit.delete dit dn) ~on_ok:(fun dit' ->
                      set_context t dit';
                      note_entry t before ~add:false;
                      Ok ()))))
  | Update.Modify (dn, items) -> (
      match context_for t dn with
      | None -> Error (Printf.sprintf "no naming context for %S" (Dn.to_string dn))
      | Some dit -> (
          match Dit.find dit dn with
          | None -> Error (Printf.sprintf "no such object: %s" (Dn.to_string dn))
          | Some before -> (
              let applied =
                List.fold_left
                  (fun acc item ->
                    match acc with
                    | Error _ as e -> e
                    | Ok e -> apply_mod t.schema e item)
                  (Ok before) items
              in
              match applied with
              | Error _ as e -> e
              | Ok after -> (
                  let after = stamp after in
                  match validate_entry t after with
                  | Error _ as e -> e
                  | Ok () ->
                      commit t op ~before:(Some before) ~after:(Some after)
                        ~mutate:(fun () ->
                          dit_result (Dit.replace dit after) ~on_ok:(fun dit' ->
                              set_context t dit';
                              note_entry t before ~add:false;
                              note_entry t after ~add:true;
                              Ok ()))))))
  | Update.Modify_dn { dn; new_rdn; delete_old_rdn; new_superior } -> (
      match context_for t dn with
      | None -> Error (Printf.sprintf "no naming context for %S" (Dn.to_string dn))
      | Some dit -> (
          match Dit.find dit dn with
          | None -> Error (Printf.sprintf "no such object: %s" (Dn.to_string dn))
          | Some before -> (
              if Dit.children dit dn <> [] then
                Error
                  (Printf.sprintf "modifyDN on non-leaf entry: %s" (Dn.to_string dn))
              else
                let parent_dn =
                  match new_superior with
                  | Some sup -> sup
                  | None -> Option.value ~default:Dn.root (Dn.parent dn)
                in
                let new_dn = Dn.child parent_dn new_rdn in
                match context_for t new_dn with
                | None ->
                    Error
                      (Printf.sprintf "no naming context for new DN %S"
                         (Dn.to_string new_dn))
                | Some target_dit -> (
                    if not (Dn.equal (Dit.suffix target_dit) (Dit.suffix dit)) then
                      Error "modifyDN across naming contexts is not supported"
                    else if Dit.find dit new_dn <> None then
                      Error
                        (Printf.sprintf "entry already exists: %s" (Dn.to_string new_dn))
                    else if Dit.find dit parent_dn = None then
                      Error
                        (Printf.sprintf "new superior does not exist: %s"
                           (Dn.to_string parent_dn))
                    else
                      let stripped =
                        if delete_old_rdn then
                          match Dn.rdn dn with
                          | None -> before
                          | Some avas ->
                              List.fold_left
                                (fun e (ava : Dn.ava) ->
                                  match Entry.delete_values e ava.attr [ ava.value ] with
                                  | Ok e' -> e'
                                  | Error _ -> e)
                                before avas
                        else before
                      in
                      let after =
                        stamp (naming_values_present (Entry.with_dn stripped new_dn))
                      in
                      commit t op ~before:(Some before) ~after:(Some after)
                        ~mutate:(fun () ->
                          dit_result (Dit.delete dit dn) ~on_ok:(fun dit' ->
                              dit_result (Dit.add dit' after) ~on_ok:(fun dit'' ->
                                  set_context t dit'';
                                  note_entry t before ~add:false;
                                  note_entry t after ~add:true;
                                  Ok ())))))))

let csn t = t.csn

let log_since t since = Changelog.since t.log since
let log_complete_since t since = Changelog.complete_since t.log since
let trim_log t ~before = Changelog.trim t.log ~before
let log_length t = Changelog.length t.log
let log_floor t = Changelog.floor t.log

(* --- Recovery --------------------------------------------------------
   Hooks for the durable store: rebuild a backend from a snapshot image
   plus a replayed WAL suffix.  The images already carry their committed
   stamps, so nothing here validates, re-stamps or notifies
   subscribers. *)

let no_context dn =
  Error (Printf.sprintf "no naming context for %S" (Dn.to_string dn))

let restore_entry t entry =
  let dn = Entry.dn entry in
  match context_for t dn with
  | None -> no_context dn
  | Some dit -> (
      match Dit.find dit dn with
      | Some old ->
          dit_result (Dit.replace dit entry) ~on_ok:(fun dit' ->
              set_context t dit';
              note_entry t old ~add:false;
              note_entry t entry ~add:true;
              Ok ())
      | None ->
          dit_result (Dit.add dit entry) ~on_ok:(fun dit' ->
              set_context t dit';
              note_entry t entry ~add:true;
              Ok ()))

let restore_csn t csn = t.csn <- csn

let restore_log t ~floor records =
  if Csn.( < ) Csn.zero floor then
    Changelog.trim t.log ~before:(Csn.of_int (Csn.to_int floor + 1));
  List.iter (Changelog.append t.log) records

let replay_record t (r : Update.record) =
  let delete_image e =
    let dn = Entry.dn e in
    match context_for t dn with
    | None -> no_context dn
    | Some dit ->
        dit_result (Dit.delete dit dn) ~on_ok:(fun dit' ->
            set_context t dit';
            note_entry t e ~add:false;
            Ok ())
  in
  let add_image e =
    let dn = Entry.dn e in
    match context_for t dn with
    | None -> no_context dn
    | Some dit ->
        dit_result (Dit.add dit e) ~on_ok:(fun dit' ->
            set_context t dit';
            note_entry t e ~add:true;
            Ok ())
  in
  let step =
    match (r.Update.before, r.Update.after) with
    | None, None -> Ok ()
    | Some b, Some a when Dn.equal (Entry.dn b) (Entry.dn a) -> (
        (* In-place modify: replace keeps the subtree below. *)
        let dn = Entry.dn a in
        match context_for t dn with
        | None -> no_context dn
        | Some dit ->
            dit_result (Dit.replace dit a) ~on_ok:(fun dit' ->
                set_context t dit';
                note_entry t b ~add:false;
                note_entry t a ~add:true;
                Ok ()))
    | before, after -> (
        (* Delete and modifyDN only commit on leaves, so the old image
           is deletable; then install the new one, if any. *)
        let deleted =
          match before with None -> Ok () | Some b -> delete_image b
        in
        match deleted with
        | Error _ as e -> e
        | Ok () -> ( match after with None -> Ok () | Some a -> add_image a))
  in
  match step with
  | Error _ as e -> e
  | Ok () ->
      t.csn <- r.Update.csn;
      Changelog.append t.log r;
      Ok ()

let subscribe t f =
  if t.subscriber_count = Array.length t.subscribers then begin
    let grown = Array.make (max 4 (2 * t.subscriber_count)) f in
    Array.blit t.subscribers 0 grown 0 t.subscriber_count;
    t.subscribers <- grown
  end;
  t.subscribers.(t.subscriber_count) <- f;
  t.subscriber_count <- t.subscriber_count + 1
