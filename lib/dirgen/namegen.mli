(** Deterministic generation of person names, serial numbers and mail
    addresses for the synthetic enterprise directory. *)

val given_name : Prng.t -> string
val surname : Prng.t -> string

val serial : country_index:int -> seq:int -> string
(** Organized serial numbers: a country-block prefix followed by a
    zero-padded sequence, e.g. country 7, seq 123 -> "0700123".  The
    fixed-width layout is what makes prefix filters
    (serialNumber=07001...) describe contiguous blocks. *)

val block_length : int
(** Characters of the serial's country-block prefix (2). *)

val serial_block : country_index:int -> string
(** The country-block prefix of every serial generated for the country
    — the natural partition key of the write path: deterministic,
    derivable without parsing a DN. *)

val block_of_serial : string -> string option
(** The country-block prefix of a serial value ([None] when the value
    is shorter than {!block_length}).  A pure string slice, so routing
    an update by partition key never re-parses the entry's DN. *)

val mail_local_part : Prng.t -> given:string -> sur:string -> seq:int -> string
(** Unorganized local part: a name-derived token plus a pseudo-random
    disambiguator, so mail prefixes do {e not} form meaningful blocks
    (the section 7.2(c) observation that filter caching cannot
    describe the mail access pattern). *)

val uid : country_index:int -> seq:int -> string
