(** Synthetic enterprise directory modelled on the paper's case study
    (section 7.1).

    Shape: employees of each country are flat children of the country
    entry (the flat-namespace situation of section 3.3); department
    entries sit under their division entry; a small location subtree
    has a high access rate.  Serial numbers are organized — a
    fixed-width country-block prefix followed by a sequence — while
    mail local parts are unorganized, reproducing why prefix filters
    work for serialNumber but not for mail (section 7.2).

    Department numbers embed the division ("2406" = division 24,
    department 06), matching the paper's
    (departmentNumber=240...) example of semantic locality that is not
    spatial.

    The first [target_countries] countries form the remote geography
    (about 30% of employees by default) whose accesses the partial
    replica is meant to serve. *)

open Ldap

type config = {
  seed : int;
  countries : int;
  employees : int;
  divisions : int;
  departments_per_division : int;
  locations : int;
  target_countries : int;
  target_share : float;  (** Fraction of employees in the geography. *)
}

val default_config : config
(** 20 countries, 20000 employees, 8 divisions, 50 departments each,
    40 locations, 5 target countries holding 30% of employees,
    seed 42. *)

val paper_scale_config : config
(** {!default_config} scaled to 500000 employees — the directory size
    of the paper's enterprise case study, used by the end-to-end scale
    sweep. *)

type employee = {
  emp_dn : Dn.t;
  emp_country : int;
  emp_seq : int;
  emp_serial : string;
  emp_mail : string;
  emp_dept : string;  (** departmentNumber value, e.g. "2406". *)
}

type t

(** One generated entry: scaffolding (root, countries, divisions,
    departments, locations) or an employee with its derived metadata. *)
type generated = Structural of Entry.t | Person of employee * Entry.t

val generate : config -> f:(generated -> unit) -> unit
(** Streams the whole directory to [f] in build order — root first,
    then countries, divisions, departments, locations, employees
    country by country — without materializing anything.  One
    deterministic PRNG pass: every consumer of the same config sees
    byte-identical entries, so {!build} and a streaming seeder agree
    exactly. *)

val entry_count : config -> int
(** Total entries {!generate} yields for the config (scaffolding
    included), computed without generating. *)

val populate : config -> Backend.t -> unit
(** Streams {!generate} into an existing empty backend — the root
    entry becomes its naming context, everything else is applied as a
    normal add — then trims the update log, like {!build}, but with no
    metadata arrays retained: the 500k+ seeding path. *)

val indexed_attrs : string list
(** The attribute indexes the generated directory is built with. *)

val build : config -> t
(** Constructs the whole DIT in a fresh indexed backend by consuming
    {!generate}.  The build is committed through normal update
    operations; the update log is trimmed afterwards so experiments
    only observe their own update streams. *)

(** {1 Accessors over a built directory} *)

val config : t -> config
(** The configuration the directory was built from. *)

val backend : t -> Backend.t
(** The populated, indexed backend. *)

val schema : t -> Schema.t
(** The backend's schema. *)

val root_dn : t -> Dn.t
(** The naming context, [o=xyz]. *)

val country_dn : t -> int -> Dn.t
(** DN of the [i]th country entry. *)

val country_code : t -> int -> string
(** Two-letter code of the [i]th country. *)

val division_dn : t -> int -> Dn.t
(** DN of the [d]th division entry. *)

val locations_dn : t -> Dn.t
(** Base of the hot locations subtree. *)

val location_names : t -> string array
(** Generated location names, in entry order. *)

val employees : t -> employee array
(** Every generated employee, countries concatenated in order. *)

val employees_of_country : t -> int -> employee array
(** The employees of one country, in generation order. *)

val person_count : t -> int
(** Employees generated (excludes scaffolding entries). *)

val is_target_country : t -> int -> bool
(** Whether country [i] belongs to the remote geography. *)

val target_countries : t -> int list
(** Indices of the remote-geography countries. *)

val dept_numbers : t -> string array
(** All department numbers, grouped by division prefix. *)

val serial_prefix_length : int
(** Characters of a serial: 2 (country block) + 5 (sequence). *)

(** {1 Partition keys}

    Deterministic accessors for the natural sharding keys of the
    generated directory — the serial-number country block and its
    geography — so a write-path partitioner
    ({!Ldap_shard.Partition}-style) derives the key from generated
    data instead of re-parsing DNs. *)

val serial_block : t -> int -> string
(** The serial country-block prefix of the country ("07" for country
    7): the key every employee serial of that country starts with. *)

val employee_block : employee -> string
(** The serial block of a generated employee (pure record access, no
    DN parse). *)

val partition_blocks : t -> (string * Dn.t) array
(** All (serial block, country DN) pairs, indexed by country — the
    block table plus geography a partitioner is built from. *)
