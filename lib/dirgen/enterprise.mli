(** Synthetic enterprise directory modelled on the paper's case study
    (section 7.1).

    Shape: employees of each country are flat children of the country
    entry (the flat-namespace situation of section 3.3); department
    entries sit under their division entry; a small location subtree
    has a high access rate.  Serial numbers are organized — a
    fixed-width country-block prefix followed by a sequence — while
    mail local parts are unorganized, reproducing why prefix filters
    work for serialNumber but not for mail (section 7.2).

    Department numbers embed the division ("2406" = division 24,
    department 06), matching the paper's
    (departmentNumber=240...) example of semantic locality that is not
    spatial.

    The first [target_countries] countries form the remote geography
    (about 30% of employees by default) whose accesses the partial
    replica is meant to serve. *)

open Ldap

type config = {
  seed : int;
  countries : int;
  employees : int;
  divisions : int;
  departments_per_division : int;
  locations : int;
  target_countries : int;
  target_share : float;  (** Fraction of employees in the geography. *)
}

val default_config : config
(** 20 countries, 20000 employees, 8 divisions, 50 departments each,
    40 locations, 5 target countries holding 30% of employees,
    seed 42. *)

type employee = {
  emp_dn : Dn.t;
  emp_country : int;
  emp_seq : int;
  emp_serial : string;
  emp_mail : string;
  emp_dept : string;  (** departmentNumber value, e.g. "2406". *)
}

type t

val build : config -> t
(** Constructs the whole DIT in a fresh indexed backend.  The build is
    committed through normal update operations; the update log is
    trimmed afterwards so experiments only observe their own update
    streams. *)

val config : t -> config
val backend : t -> Backend.t
val schema : t -> Schema.t
val root_dn : t -> Dn.t
val country_dn : t -> int -> Dn.t
val country_code : t -> int -> string
val division_dn : t -> int -> Dn.t
val locations_dn : t -> Dn.t
val location_names : t -> string array

val employees : t -> employee array
val employees_of_country : t -> int -> employee array
val person_count : t -> int
val is_target_country : t -> int -> bool
val target_countries : t -> int list
val dept_numbers : t -> string array
(** All department numbers, grouped by division prefix. *)

val serial_prefix_length : int
(** Characters of a serial: 2 (country block) + 5 (sequence). *)

(** {1 Partition keys}

    Deterministic accessors for the natural sharding keys of the
    generated directory — the serial-number country block and its
    geography — so a write-path partitioner
    ({!Ldap_shard.Partition}-style) derives the key from generated
    data instead of re-parsing DNs. *)

val serial_block : t -> int -> string
(** The serial country-block prefix of the country ("07" for country
    7): the key every employee serial of that country starts with. *)

val employee_block : employee -> string
(** The serial block of a generated employee (pure record access, no
    DN parse). *)

val partition_blocks : t -> (string * Dn.t) array
(** All (serial block, country DN) pairs, indexed by country — the
    block table plus geography a partitioner is built from. *)
