let given_names =
  [|
    "john"; "jane"; "wei"; "ravi"; "maria"; "fatima"; "olga"; "hans"; "yuki";
    "carlos"; "amara"; "liam"; "noor"; "ivan"; "chen"; "priya"; "sofia";
    "emeka"; "lars"; "aiko"; "diego"; "leila"; "tomas"; "ingrid"; "kofi";
    "anya"; "pedro"; "mira"; "jonas"; "zara";
  |]

let surnames =
  [|
    "doe"; "smith"; "kumar"; "garcia"; "wang"; "mueller"; "tanaka"; "okafor";
    "ivanov"; "rossi"; "silva"; "khan"; "nielsen"; "dubois"; "novak"; "haile";
    "berg"; "costa"; "moreau"; "jensen"; "patel"; "sato"; "lopez"; "weber";
    "kim"; "ali"; "fischer"; "santos"; "peters"; "arora";
  |]

let given_name prng = Prng.pick prng given_names
let surname prng = Prng.pick prng surnames

let serial ~country_index ~seq = Printf.sprintf "%02d%05d" country_index seq

let block_length = 2

let serial_block ~country_index = Printf.sprintf "%02d" country_index

let block_of_serial s =
  if String.length s < block_length then None else Some (String.sub s 0 block_length)

let mail_local_part prng ~given ~sur ~seq =
  (* Two initials then a hash-like disambiguator: no usable prefix
     structure survives beyond the first two characters. *)
  let salt = Prng.int prng 100000 in
  let h = Hashtbl.hash (given, sur, seq, salt) mod 0xFFFFFF in
  Printf.sprintf "%c%c%06x" given.[0] sur.[0] h

let uid ~country_index ~seq = Printf.sprintf "u%02d%05d" country_index seq
