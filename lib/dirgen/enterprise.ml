open Ldap

type config = {
  seed : int;
  countries : int;
  employees : int;
  divisions : int;
  departments_per_division : int;
  locations : int;
  target_countries : int;
  target_share : float;
}

let default_config =
  {
    seed = 42;
    countries = 20;
    employees = 20_000;
    divisions = 8;
    departments_per_division = 50;
    locations = 40;
    target_countries = 5;
    target_share = 0.30;
  }

let paper_scale_config = { default_config with employees = 500_000 }

type employee = {
  emp_dn : Dn.t;
  emp_country : int;
  emp_seq : int;
  emp_serial : string;
  emp_mail : string;
  emp_dept : string;
}

type t = {
  config : config;
  backend : Backend.t;
  root : Dn.t;
  country_dns : Dn.t array;
  country_codes : string array;
  by_country : employee array array;
  all : employee array;
  division_dns : Dn.t array;
  depts : string array;
  locations_base : Dn.t;
  location_names : string array;
}

let serial_prefix_length = 7

let code_of_country i =
  Printf.sprintf "%c%c" (Char.chr (Char.code 'a' + (i / 26 mod 26))) (Char.chr (Char.code 'a' + (i mod 26)))

let dept_number ~division ~dept = Printf.sprintf "%02d%02d" division dept

let must = function Ok x -> x | Error e -> failwith ("Enterprise.build: " ^ e)
let must_apply b op = ignore (must (Backend.apply b op))

(* --- Streaming generator --------------------------------------------
   One deterministic pass over the whole directory, yielding each entry
   to a callback in build order — root, countries, divisions,
   departments, locations, then employees country by country.  Nothing
   is materialized, so generating 500k+ entries costs the PRNG draws
   and the entries the consumer chooses to keep; [build] is one such
   consumer, the scale sweep's backend seeder another. *)

type generated = Structural of Entry.t | Person of employee * Entry.t

let per_country_counts config =
  Array.init config.countries (fun i ->
      if i < config.target_countries then
        int_of_float
          (config.target_share *. float_of_int config.employees
          /. float_of_int config.target_countries)
      else
        int_of_float
          ((1.0 -. config.target_share) *. float_of_int config.employees
          /. float_of_int (config.countries - config.target_countries)))

let entry_count config =
  let structural =
    1 + config.countries + 1 + config.divisions
    + (config.divisions * config.departments_per_division)
    + 1 + config.locations
  in
  structural + Array.fold_left ( + ) 0 (per_country_counts config)

let generate config ~f =
  let prng = Prng.create config.seed in
  let root = Dn.of_string_exn "o=xyz" in
  f (Structural (Entry.make root [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]));
  (* Countries. *)
  let country_codes = Array.init config.countries code_of_country in
  let country_dns =
    Array.map (fun code -> Dn.child_ava root "c" code) country_codes
  in
  Array.iter
    (fun code ->
      f
        (Structural
           (Entry.make
              (Dn.child_ava root "c" code)
              [ ("objectclass", [ "country" ]); ("c", [ code ]) ])))
    country_codes;
  (* Divisions and departments. *)
  let divisions_base = Dn.child_ava root "ou" "divisions" in
  f
    (Structural
       (Entry.make divisions_base
          [ ("objectclass", [ "organizationalUnit" ]); ("ou", [ "divisions" ]) ]));
  let division_dns =
    Array.init config.divisions (fun d ->
        Dn.child_ava divisions_base "ou" (Printf.sprintf "div-%02d" d))
  in
  Array.iteri
    (fun d dn ->
      f
        (Structural
           (Entry.make dn
              [
                ("objectclass", [ "organizationalUnit" ]);
                ("ou", [ Printf.sprintf "div-%02d" d ]);
                ("divisionNumber", [ Printf.sprintf "%02d" d ]);
              ])))
    division_dns;
  Array.iteri
    (fun d div_dn ->
      for k = 0 to config.departments_per_division - 1 do
        let number = dept_number ~division:d ~dept:k in
        f
          (Structural
             (Entry.make
                (Dn.child_ava div_dn "ou" ("dept-" ^ number))
                [
                  ("objectclass", [ "organizationalUnit" ]);
                  ("ou", [ "dept-" ^ number ]);
                  ("departmentNumber", [ number ]);
                  ("divisionNumber", [ Printf.sprintf "%02d" d ]);
                  ("description", [ "department " ^ number ]);
                ]))
      done)
    division_dns;
  (* Locations: a small, hot subtree (section 7.2(c)). *)
  let locations_base = Dn.child_ava root "ou" "locations" in
  f
    (Structural
       (Entry.make locations_base
          [ ("objectclass", [ "organizationalUnit" ]); ("ou", [ "locations" ]) ]));
  for i = 0 to config.locations - 1 do
    let name = Printf.sprintf "site-%02d" i in
    f
      (Structural
         (Entry.make
            (Dn.child_ava locations_base "l" name)
            [
              ("objectclass", [ "locality" ]);
              ("l", [ name ]);
              ("location", [ name ]);
              ("description", [ "location " ^ name ]);
            ]))
  done;
  (* Employees: target countries share [target_share] evenly, the rest
     split the remainder. *)
  let per_country = per_country_counts config in
  Array.iteri
    (fun ci n ->
      let cdn = country_dns.(ci) in
      let code = country_codes.(ci) in
      for seq = 0 to n - 1 do
        let given = Namegen.given_name prng and sur = Namegen.surname prng in
        let serial = Namegen.serial ~country_index:ci ~seq in
        let local = Namegen.mail_local_part prng ~given ~sur ~seq in
        let mail = Printf.sprintf "%s@%s.xyz.com" local code in
        let division = Prng.int prng config.divisions in
        let dept =
          dept_number ~division ~dept:(Prng.int prng config.departments_per_division)
        in
        let cn = Printf.sprintf "%s %s %s" given sur serial in
        let dn = Dn.child_ava cdn "cn" cn in
        let entry =
          Entry.make dn
            [
              ("objectclass", [ "inetOrgPerson" ]);
              ("cn", [ cn ]);
              ("sn", [ sur ]);
              ("givenName", [ given ]);
              ("uid", [ Namegen.uid ~country_index:ci ~seq ]);
              ("mail", [ mail ]);
              ("serialNumber", [ serial ]);
              ("departmentNumber", [ dept ]);
              ("telephoneNumber",
               [ Printf.sprintf "%03d-%04d" (Prng.int prng 1000) (Prng.int prng 10000) ]);
              ("employeeType", [ (if Prng.bool prng 0.9 then "regular" else "contractor") ]);
              ("description", [ "employee record for " ^ cn ]);
            ]
        in
        f
          (Person
             ( { emp_dn = dn; emp_country = ci; emp_seq = seq; emp_serial = serial;
                 emp_mail = mail; emp_dept = dept },
               entry ))
      done)
    per_country

let indexed_attrs =
  [ "serialnumber"; "mail"; "departmentnumber"; "divisionnumber"; "uid"; "cn"; "location" ]

let populate config backend =
  let n = ref 0 in
  generate config ~f:(fun g ->
      incr n;
      match g with
      | Structural e when !n = 1 -> must (Backend.add_context backend e)
      | Structural e | Person (_, e) -> must_apply backend (Update.add e));
  (* Experiments measure only their own update streams. *)
  Backend.trim_log backend ~before:(Csn.next (Backend.csn backend))

let build config =
  let schema = Schema.default in
  let backend = Backend.create ~indexed:indexed_attrs schema in
  let root = Dn.of_string_exn "o=xyz" in
  let country_codes = Array.init config.countries code_of_country in
  let country_dns =
    Array.map (fun code -> Dn.child_ava root "c" code) country_codes
  in
  let divisions_base = Dn.child_ava root "ou" "divisions" in
  let division_dns =
    Array.init config.divisions (fun d ->
        Dn.child_ava divisions_base "ou" (Printf.sprintf "div-%02d" d))
  in
  let depts =
    Array.init
      (config.divisions * config.departments_per_division)
      (fun i ->
        dept_number
          ~division:(i / config.departments_per_division)
          ~dept:(i mod config.departments_per_division))
  in
  let locations_base = Dn.child_ava root "ou" "locations" in
  let location_names =
    Array.init config.locations (fun i -> Printf.sprintf "site-%02d" i)
  in
  let by_country_rev = Array.make config.countries [] in
  let n = ref 0 in
  generate config ~f:(fun g ->
      incr n;
      match g with
      | Structural e when !n = 1 -> must (Backend.add_context backend e)
      | Structural e -> must_apply backend (Update.add e)
      | Person (emp, e) ->
          must_apply backend (Update.add e);
          by_country_rev.(emp.emp_country) <- emp :: by_country_rev.(emp.emp_country));
  let by_country = Array.map (fun l -> Array.of_list (List.rev l)) by_country_rev in
  (* Experiments measure only their own update streams. *)
  Backend.trim_log backend ~before:(Csn.next (Backend.csn backend));
  {
    config;
    backend;
    root;
    country_dns;
    country_codes;
    by_country;
    all = Array.concat (Array.to_list by_country);
    division_dns;
    depts;
    locations_base;
    location_names;
  }

let config t = t.config
let backend t = t.backend
let schema t = Backend.schema t.backend
let root_dn t = t.root
let country_dn t i = t.country_dns.(i)
let country_code t i = t.country_codes.(i)
let division_dn t i = t.division_dns.(i)
let locations_dn t = t.locations_base
let location_names t = t.location_names
let employees t = t.all
let employees_of_country t i = t.by_country.(i)
let person_count t = Array.length t.all
let is_target_country t i = i < t.config.target_countries

let target_countries t =
  List.init t.config.target_countries (fun i -> i)

let dept_numbers t = t.depts

(* --- Partition keys ---------------------------------------------------
   The write path shards on the serial-number country block; these
   accessors expose the block and its geography for generated data so a
   partitioner never has to re-derive either from a DN. *)

let serial_block t i =
  if i < 0 || i >= t.config.countries then
    invalid_arg "Enterprise.serial_block: no such country";
  Namegen.serial_block ~country_index:i

let employee_block e = Namegen.serial_block ~country_index:e.emp_country

let partition_blocks t =
  Array.init t.config.countries (fun i ->
      (Namegen.serial_block ~country_index:i, t.country_dns.(i)))
