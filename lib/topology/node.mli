(** An intermediate node of a cascading replication topology: a filter
    replica that is simultaneously a ReSync master for the tier below.

    The node synchronizes a set of {e cover} queries from its upstream
    (root master or another node) exactly like any filter replica, and
    registers itself as a {!Ldap_resync.Transport} endpoint so
    downstream consumers can open ReSync sessions against it.  A
    downstream subscription is admitted iff query containment proves it
    contained in one of the node's stored covers with the filter
    attributes locally available ({!Ldap_replication.Filter_replica.containing_consumer});
    otherwise the request is rejected with a referral to the node's own
    upstream, which the subscriber chases one tier up.

    Cookies issued by the node use the same wire format as the root
    master's ({!Ldap_resync.Protocol.cookie_of}), with CSNs taken from
    the node's own upstream synchronization point — downstream progress
    is therefore bounded by how far the node itself has synchronized,
    and a cookie minted at any tier remains meaningful at any other
    after {!Ldap_resync.Protocol.reparent_cookie} translation.

    Unlike the root master, the node keeps no per-session action
    history: its replica content {e is} the history.  Each session
    holds a cursor on the stored consumer's {!Ldap.Content_store}
    change spine plus a table of sent image hashes; a poll walks only
    the DNs mutated since the cursor — O(diff in the stored content),
    not O(directory) — with the hash table deciding Add vs Modify vs
    no-op per changed DN.  A cursor that fell off the trimmed spine
    rebuilds with one full diff against the hash table and resumes
    streaming.  Sessions presenting an unknown cookie — or one whose
    CSN the node cannot match — are answered in degraded mode
    (eq. (3)) from the cookie's CSN.
    Persist-mode sessions are relayed live: the replica's change
    observer classifies each upstream-applied change against the
    persistent sessions — routed through a
    {!Ldap_containment.Predicate_index} over their filters unless
    [Naive] dispatch is selected — and pushes the resulting actions. *)

open Ldap

type t

val create :
  ?cache_capacity:int ->
  ?dispatch:Ldap_resync.Master.dispatch ->
  Ldap_resync.Transport.t ->
  host:string ->
  upstream:string ->
  t
(** Creates the node's replica over the transport, wires the persist
    relay, and registers the node as endpoint [host].  [dispatch]
    (default [Routed]) selects predicate-indexed or naive fan-out for
    the persist relay.
    @raise Invalid_argument if no endpoint is registered at
    [upstream]. *)

val replica : t -> Ldap_replication.Filter_replica.t
(** The node's own consuming side. *)

val host : t -> string
val upstream : t -> string
(** The endpoint this node currently synchronizes from. *)

val schema : t -> Schema.t

val stats : t -> Ldap_replication.Stats.t
(** Shared with the replica: upstream-facing [sync_*]/[fetch_*]
    counters and downstream-facing [served_*] counters. *)

val install_cover : t -> Query.t -> (unit, string) result
(** Starts replicating a cover query from the upstream; downstream
    subscriptions contained in it become admissible. *)

val covers : t -> Query.t list

val sync : t -> unit
(** One poll round against the upstream.  Changes applied here are
    relayed immediately to persistent downstream sessions; polling
    downstream sessions pick them up at their next poll. *)

val sync_async : t -> (unit -> unit) -> unit
(** Asynchronous form of {!sync} for event-driven drivers; the
    continuation fires when the upstream poll round completes. *)

val retarget : t -> upstream:string -> unit
(** Re-parents the node (cookie translation included) — used when its
    upstream dies.  Downstream sessions are untouched and survive. *)

val handle :
  t ->
  ?push:Ldap_resync.Protocol.push_channel ->
  Ldap_resync.Protocol.request ->
  Query.t ->
  (Ldap_resync.Protocol.reply, string) result
(** Serves one downstream resync exchange, mirroring
    {!Ldap_resync.Master.handle}.  A non-admitted subscription fails
    with a referral error (see {!referral_of_error}). *)

val abandon : t -> cookie:string -> unit

val antientropy_serve :
  t ->
  Ldap_antientropy.Exchange.request ->
  Query.t ->
  (Ldap_antientropy.Exchange.reply, string) result
(** Answers one Merkle anti-entropy walk step from the node's own
    replica content evaluated under the requesting query — the
    tier-by-tier cascade: a leaf repairs against its node while the
    node independently repairs against its parent.  A non-admitted
    query fails with the same referral as {!handle}; a [Fetch] step
    mints a downstream session so the repaired consumer can resume
    incremental polling here. *)

val estimate : t -> Query.t -> int
(** Entries currently held for an admissible query; 0 when not
    admitted. *)

val session_count : t -> int
(** Live downstream sessions at this node. *)

val persistent_count : t -> int

val cursor_stats : t -> int * int * int
(** Incremental-serving cost counters as (polls served, DNs/entries
    scanned serving them, spine-rescan fallbacks).  Deterministic —
    the scale sweep's O(diff) evidence: scanned stays proportional to
    the change volume, not the directory size, and rescans stay 0
    while cursors keep up with the spine. *)

val serve_seconds : t -> float
(** Total wall-clock seconds spent inside {!handle}. *)

val serve_samples : t -> float list
(** Per-serve wall-clock seconds, newest first — the sample set the
    bench harness computes poll-response percentiles from. *)

val incremental_serve_samples : t -> float list
(** {!serve_samples} restricted to serves that answered with an
    incremental reply — the O(diff)-cost population the scale sweep
    gates on, excluding initial-content and degraded transfers whose
    cost is legitimately O(selection). *)

val cursor_depths : t -> int list
(** Per-session lag behind the stored consumer's change spine, in
    spine events (store revision minus the session's cursor). *)

val seen_residency : t -> int
(** Total sent-image hash-table entries across sessions — the node's
    per-session serving memory, one DN + hash per member per session
    rather than full entry snapshots. *)

val referral_error : string -> string
(** Wraps an LDAP URL into the rejection message carried over the
    ReSync error channel. *)

val referral_of_error : string -> string option
(** The LDAP URL inside a rejection produced by {!referral_error}, or
    [None] for any other error message. *)
