(** Cascading replication topologies: a root master, optional tiers of
    intermediate {!Node}s re-serving their replica content, and {!Leaf}
    consumers at the bottom.

    The builder wires everything over one fault-injectable
    {!Ldap_resync.Transport}; synchronization proceeds in rounds with
    children polling before parents, so an update committed at the root
    propagates exactly one tier per round and convergence lag equals
    tier depth.  Killing a node removes its endpoint; the next round
    {!heal}s the orphans by re-attaching them to their closest live
    ancestor with cookie translation, so they resynchronize degraded
    from their acknowledged CSN instead of reloading. *)

open Ldap

(** Interior wiring of the built topology. *)
type shape =
  | Star  (** Every leaf attaches directly to the root. *)
  | Chain of int
      (** A line of [n] nodes under the root; leaves attach to the
          deepest one (convergence lag [n+1]). *)
  | Tree of { arity : int }
      (** [arity] nodes under the root; leaves attach round-robin
          (the 2-tier tree of the tree-fanout experiment). *)

type t

val create :
  ?faults:Network.Faults.t ->
  ?strategy:Ldap_resync.Master.strategy ->
  ?dispatch:Ldap_resync.Master.dispatch ->
  ?root:string ->
  Backend.t ->
  t
(** A topology holding only the root master (registered as endpoint
    [root], default ["root"]) over a fresh network. *)

val build :
  ?faults:Network.Faults.t ->
  ?strategy:Ldap_resync.Master.strategy ->
  ?dispatch:Ldap_resync.Master.dispatch ->
  shape:shape ->
  covers:Query.t list ->
  leaf_queries:Query.t list ->
  Backend.t ->
  (t, string) result
(** Builds the interior per [shape] — every node storing the [covers]
    set — then attaches one leaf per element of [leaf_queries].
    [dispatch] selects the fan-out mechanism at the root master {e and}
    at every interior node.  Fails if a cover install or a subscription
    fails (a leaf query no cover contains chases its referral to the
    root, which admits everything). *)

val add_node :
  ?dispatch:Ldap_resync.Master.dispatch ->
  t ->
  name:string ->
  parent:string ->
  covers:Query.t list ->
  (Node.t, string) result

val add_leaf : t -> name:string -> parent:string -> Query.t -> (Leaf.t, string) result
(** Creates the leaf and subscribes it (with referral chasing). *)

val transport : t -> Ldap_resync.Transport.t
(** The shared fault-injectable transport every tier exchanges over. *)

val master : t -> Ldap_resync.Master.t
(** The root ReSync master. *)

val root : t -> string
(** The root master's endpoint name. *)

val network : t -> Network.t
(** The byte/latency-accounting network under the transport. *)

val nodes : t -> Node.t list
(** Live interior nodes (killed nodes are removed). *)

val leaves : t -> Leaf.t list
(** All attached leaf consumers. *)

val schema : t -> Schema.t
(** Schema of the root backend. *)

val kill_node : t -> Node.t -> unit
(** Unregisters the node's endpoint mid-stream.  Its downstream
    sessions and its own upstream session die with it; orphans are
    re-parented by the next {!heal} (or {!sync_round}). *)

val heal : t -> unit
(** Re-parents every participant whose upstream endpoint vanished to
    its closest live ancestor, translating cookies so content is kept
    and the next poll resumes in degraded mode.  With {!drive_events}
    active, each healed participant's poll loop is poked — the pending
    occurrence is cancelled (or the in-flight one invalidated) and a
    replacement polls immediately — so recovery starts at heal time
    instead of waiting out the remainder of the poll period. *)

val sync_round : t -> unit
(** {!heal}, then one poll round children-before-parents: all leaves,
    then interior nodes deepest tier first. *)

val drive_events :
  ?on_leaf_poll:(Leaf.t -> start:int -> finish:int -> unit) ->
  t ->
  Ldap_sim.Engine.t ->
  poll_every:int ->
  until:int ->
  unit
(** Registers one self-rescheduling poll loop per participant (every
    leaf and every interior node) on the engine: polls from different
    tiers interleave in virtual time, so a tree's extra tier shows up
    as measurable propagation delay instead of vanishing inside a
    sequential round.  Start phases are staggered across the poll
    period and each next poll is scheduled [poll_every] ticks after the
    previous one completes; loops stop once the next occurrence would
    pass [until], keeping run-to-quiescence terminating.
    [on_leaf_poll] fires at each completed leaf poll with its virtual
    start/finish times — the hook the latency/staleness sweep samples.
    The caller runs the engine afterwards.
    @raise Invalid_argument if [poll_every <= 0]. *)

val depth : t -> string -> int
(** Tier of a host: 0 for the root, parents' depth + 1 otherwise. *)

(** {1 Crash and restart}

    Complements {!kill_node}'s heal-by-reparent: a {e leaf} can crash
    — its poll loop is cancelled, its durable medium takes the
    configured crash transition — and later restart, either recovered
    from durable state (resuming ReSync from the durable cookie) or
    cold (re-subscribing with full fetches). *)

val enable_durability :
  ?faults:Ldap_store.Medium.Faults.t -> ?sync:bool -> t -> unit
(** Gives every leaf (present and future) its own in-memory durable
    medium and attaches its stores.  [faults] is shared across media —
    scripted crash outcomes are consumed in crash-call order.  [sync]
    (default true) controls per-record fsync; with [sync:false] only
    checkpoints are durable and a crash loses (or tears) the journal
    tail. *)

val checkpoint_leaves : t -> unit
(** Checkpoints every live leaf's stores. *)

val medium_of : t -> name:string -> Ldap_store.Medium.t option
(** The durable medium of a (live or crashed) leaf, if durability is
    enabled. *)

val crash_leaf : t -> Leaf.t -> unit
(** Crashes the leaf: cancels its poll loop, imposes the crash
    transition on its medium (unsynced bytes lost or torn per the
    fault schedule), detaches the zombie in-memory object and removes
    it from {!leaves}.  The master keeps the leaf's sessions until
    expiry, exactly like a real silent process death.
    @raise Invalid_argument if the leaf is already down. *)

(** How a restarted leaf recovers its content. *)
type restart_mode =
  | Resume
      (** Durable recovery; anti-entropy only if the store itself
          reports damage (torn or stale WAL). *)
  | Merkle
      (** Durable recovery, then Merkle anti-entropy over every
          subscription regardless of damage flags — for a restart known
          to have silently lost updates (e.g. an unsynced WAL).  A
          subscription whose walk fails drops its cookie and re-fetches
          cold at the next poll. *)
  | Cold  (** Ignore durable state: re-subscribe with full fetches. *)

val restart_leaf :
  ?mode:restart_mode ->
  t ->
  name:string ->
  (Leaf.t * Ldap_replication.Filter_replica.recovery_report option, string)
  result
(** Restarts a crashed leaf under its closest live parent.  With
    durability the leaf is rebuilt from its medium (report returned)
    per [mode] (default [Resume]); without durable state — or with
    [mode = Cold] — a fresh leaf re-subscribes to the crashed leaf's
    queries with full initial fetches ([None]).  Either way the leaf
    rejoins {!leaves}, and if {!drive_events} is active its poll loop
    resumes. *)

val crashed_leaves : t -> string list
(** Names of currently-down leaves, sorted. *)

val leaf_converged : t -> Leaf.t -> bool
(** Whether each of the leaf's subscriptions holds exactly the
    content the root backend currently defines for it. *)

val converged : t -> bool

val rounds_to_converge : ?max_rounds:int -> t -> int option
(** Runs {!sync_round} until {!converged}, returning the number of
    rounds needed ([Some 0] when already converged); [None] if
    [max_rounds] (default 16) rounds do not suffice. *)

val root_link_bytes : t -> int
(** Ber bytes that crossed links terminating at the root: the summed
    upstream traffic of participants currently attached to it — every
    leaf in a star, only the interior nodes in a tree. *)

(** Aggregated per-tier accounting for reports and the CLI. *)
type tier_summary = {
  tier : int;
  members : int;
  sessions : int;  (** Downstream ReSync sessions held at this tier. *)
  upstream_bytes : int;  (** Ber bytes members paid on their upstream links. *)
  served_bytes : int;  (** Ber bytes members served downstream. *)
}

val tier_summaries : t -> tier_summary list
(** One row per tier, shallowest first; tier 0 is the root (sessions =
    the master's live session count). *)
