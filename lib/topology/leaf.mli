(** A leaf consumer of a cascading topology: a filter replica attached
    to one parent endpoint — an intermediate {!Node} or the root master
    directly — with referral chasing at subscription time and cheap
    re-parenting when its parent dies. *)

open Ldap

type t

val create :
  ?cache_capacity:int ->
  Ldap_resync.Transport.t ->
  name:string ->
  parent:string ->
  t
(** @raise Invalid_argument if no endpoint is registered at [parent]. *)

val replica : t -> Ldap_replication.Filter_replica.t
(** The underlying filter replica holding the subscribed content. *)

val name : t -> string
(** The host name the leaf was created under. *)

val parent : t -> string
(** The endpoint this leaf currently synchronizes from. *)

val stats : t -> Ldap_replication.Stats.t
(** Upstream-facing traffic of this leaf — the per-link byte source of
    the tree-fanout experiment. *)

val subscribe : ?max_referrals:int -> t -> Query.t -> (unit, string) result
(** Installs the query as a replicated filter at the current parent.
    If the parent rejects it with a referral (no stored cover contains
    it), the leaf re-parents to the referred host and retries, up to
    [max_referrals] (default 4) tiers — mirroring the search referral
    dance of Figure 2 at subscription time. *)

val sync : t -> unit
(** One poll round against the parent. *)

val sync_async : t -> (unit -> unit) -> unit
(** Asynchronous poll round for event-driven drivers: the continuation
    fires when every subscription's exchange has completed (immediately
    when the transport's network has no engine attached). *)

val merkle_sync :
  t ->
  (Query.t * (Ldap_antientropy.Exchange.report, string) result) list
(** Merkle anti-entropy reconciliation of every subscription against
    the current parent
    ({!Ldap_replication.Filter_replica.merkle_sync_all}) — the
    recovery mode used when the leaf's durable state is damaged or its
    cookie rejected; ships only drifted segments. *)

val acked_csn : t -> Ldap.Csn.t
(** The CSN this leaf has acknowledged across all subscriptions — the
    minimum of its resume cookies' CSNs, since a leaf is only as fresh
    as its stalest filter.  [Csn.zero] before the first successful
    exchange.  The staleness metric of the latency sweep measures how
    long an update's CSN takes to be covered by this value. *)

val reparent : t -> parent:string -> unit
(** Re-attaches the leaf (cookie translation included): the next poll
    resynchronizes degraded from the acknowledged CSN. *)

val subscriptions : t -> Query.t list

val content : t -> Query.t -> Entry.t list
(** Current local content of one subscription (empty when not
    installed) — what convergence checks compare against the root. *)

val content_seq : t -> Query.t -> Entry.t Seq.t
(** Streaming form of {!content} over the consumer's backing store —
    no list copy; what scale-sweep convergence evaluation uses. *)

(** {1 Durability} *)

val attach_store : ?sync:bool -> t -> Ldap_store.Medium.t -> unit
(** Makes the leaf's replica durable on the medium, under the leaf's
    name as prefix (see {!Ldap_replication.Filter_replica.attach_store}). *)

val checkpoint : t -> unit
(** Checkpoints every store of the leaf's replica. *)

val detach_store : t -> unit
(** Stops journaling (see
    {!Ldap_replication.Filter_replica.detach_store}). *)

val recover :
  ?cache_capacity:int ->
  ?sync:bool ->
  Ldap_resync.Transport.t ->
  name:string ->
  parent:string ->
  Ldap_store.Medium.t ->
  (t * Ldap_replication.Filter_replica.recovery_report, string) result
(** Rebuilds a restarted leaf from its medium: subscriptions, content
    and resume cookies come from durable state, so the next poll
    resumes ReSync incrementally instead of re-fetching.
    @raise Invalid_argument if no endpoint is registered at [parent]. *)
