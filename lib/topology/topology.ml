open Ldap
module Resync = Ldap_resync
module R = Ldap_replication

type shape = Star | Chain of int | Tree of { arity : int }

(* Per-leaf durable media, created lazily by [enable_durability]. *)
type durability = {
  dmedia : (string, Ldap_store.Medium.t) Hashtbl.t;
  dfaults : Ldap_store.Medium.Faults.t option;
  dsync : bool;
}

(* What a cold restart (no durable state) needs to rebuild a leaf. *)
type crash_info = { ci_parent : string; ci_queries : Query.t list }

(* The event-driven poll configuration, kept so a restarted leaf can
   resume its own poll loop. *)
type driver = {
  dr_engine : Ldap_sim.Engine.t;
  dr_poll_every : int;
  dr_until : int;
  dr_on_leaf_poll : (Leaf.t -> start:int -> finish:int -> unit) option;
}

(* A participant's poll loop: its latest scheduled occurrence plus a
   liveness token.  The token lets a loop be superseded even while an
   exchange is in flight (nothing scheduled to cancel): the in-flight
   continuation re-checks its own token and quietly stops rescheduling
   once a replacement loop owns the name. *)
type loop_handle = { lh_event : Ldap_sim.Engine.handle; lh_live : bool ref }

type t = {
  net : Network.t;
  transport : Resync.Transport.t;
  master : Resync.Master.t;
  root : string;
  parents : (string, string) Hashtbl.t;  (* host -> parent at attach time *)
  mutable nodes : Node.t list;
  mutable leaves : Leaf.t list;
  mutable durability : durability option;
  crashed : (string, crash_info) Hashtbl.t;
  loops : (string, loop_handle) Hashtbl.t;
  mutable driver : driver option;
}

let transport t = t.transport
let master t = t.master
let root t = t.root
let network t = t.net
let nodes t = t.nodes
let leaves t = t.leaves
let schema t = Backend.schema (Resync.Master.backend t.master)

let create ?faults ?strategy ?dispatch ?(root = "root") backend =
  let net = Network.create () in
  let transport = Resync.Transport.create ?faults net in
  let master = Resync.Master.create ?strategy ?dispatch backend in
  Resync.Transport.add_master transport ~name:root master;
  {
    net;
    transport;
    master;
    root;
    parents = Hashtbl.create 64;
    nodes = [];
    leaves = [];
    durability = None;
    crashed = Hashtbl.create 8;
    loops = Hashtbl.create 64;
    driver = None;
  }

let add_node ?dispatch t ~name ~parent ~covers =
  let node = Node.create ?dispatch t.transport ~host:name ~upstream:parent in
  let rec install = function
    | [] -> Ok ()
    | q :: rest -> (
        match Node.install_cover node q with
        | Ok () -> install rest
        | Error e -> Error e)
  in
  match install covers with
  | Ok () ->
      Hashtbl.replace t.parents name parent;
      t.nodes <- node :: t.nodes;
      Ok node
  | Error e ->
      Resync.Transport.remove_endpoint t.transport ~name;
      Error e

(* A topology with durability enabled gives each leaf its own medium;
   leaves added later are attached on creation, before their first
   fetch, so the initial content is journaled too. *)
let leaf_medium t name =
  match t.durability with
  | None -> None
  | Some d ->
      Some
        (match Hashtbl.find_opt d.dmedia name with
        | Some m -> m
        | None ->
            let m = Ldap_store.Medium.memory ?faults:d.dfaults () in
            Hashtbl.replace d.dmedia name m;
            m)

let add_leaf t ~name ~parent query =
  let leaf = Leaf.create t.transport ~name ~parent in
  (match (t.durability, leaf_medium t name) with
  | Some d, Some m -> Leaf.attach_store ~sync:d.dsync leaf m
  | _ -> ());
  match Leaf.subscribe leaf query with
  | Ok () ->
      Hashtbl.replace t.parents name (Leaf.parent leaf);
      t.leaves <- leaf :: t.leaves;
      Ok leaf
  | Error e -> Error e

(* --- Failure handling ------------------------------------------------ *)

(* The closest live ancestor of a (possibly dead) host: climb the
   recorded attachment chain until an endpoint answers.  The root is
   always registered, so the climb terminates. *)
let live_host t h =
  let rec go h =
    if h = t.root then t.root
    else
      match Resync.Transport.endpoint t.transport h with
      | Some _ -> h
      | None -> (
          match Hashtbl.find_opt t.parents h with
          | Some p -> go p
          | None -> t.root)
  in
  go h

let kill_node t node =
  Resync.Transport.remove_endpoint t.transport ~name:(Node.host node);
  t.nodes <- List.filter (fun n -> Node.host n <> Node.host node) t.nodes

(* --- Poll loops ------------------------------------------------------ *)

let depth t host =
  let rec go h acc =
    if h = t.root then acc
    else
      match Hashtbl.find_opt t.parents h with
      | Some p -> go p (acc + 1)
      | None -> acc
  in
  go host 0

(* Event-driven polling: every participant — each leaf and each interior
   node — runs its own self-rescheduling poll loop, so polls from
   different tiers interleave in virtual time instead of running as one
   big sequential round.  Start phases are staggered across the poll
   period; the next poll is scheduled [poll_every] ticks after the
   previous one {e completes}, which keeps at most one exchange chain in
   flight per participant.  Quiescence is reached once every loop passes
   [until]. *)
(* One participant's self-rescheduling poll loop.  Every scheduled
   occurrence is cancellable and the latest handle is recorded under
   the participant's name, so a crash can silence the loop; the
   crashed-set check covers the window where an exchange is already in
   flight when the crash fires, and the liveness token the window where
   the loop was superseded by a {!poke_loop} relaunch (either way the
   continuation must not reschedule). *)
let launch_loop t d name stagger sync_async ~completed =
  let live = ref true in
  let alive () = !live && not (Hashtbl.mem t.crashed name) in
  let record h = Hashtbl.replace t.loops name { lh_event = h; lh_live = live } in
  let rec poll () =
    if alive () then begin
      let start = Ldap_sim.Engine.now d.dr_engine in
      sync_async (fun () ->
          if alive () then begin
            completed ~start ~finish:(Ldap_sim.Engine.now d.dr_engine);
            let next = Ldap_sim.Engine.now d.dr_engine + d.dr_poll_every in
            if next <= d.dr_until then
              record
                (Ldap_sim.Engine.schedule_cancellable d.dr_engine ~time:next
                   poll)
          end)
    end
  in
  let first = Ldap_sim.Engine.now d.dr_engine + stagger in
  if first <= d.dr_until then
    record (Ldap_sim.Engine.schedule_cancellable d.dr_engine ~time:first poll)

let launch_leaf_loop t d stagger leaf =
  let completed ~start ~finish =
    match d.dr_on_leaf_poll with
    | Some f -> f leaf ~start ~finish
    | None -> ()
  in
  launch_loop t d (Leaf.name leaf) stagger (Leaf.sync_async leaf) ~completed

let launch_node_loop t d stagger node =
  launch_loop t d (Node.host node) stagger
    (Node.sync_async node)
    ~completed:(fun ~start:_ ~finish:_ -> ())

(* Kills a participant's current loop — pending occurrence cancelled,
   in-flight continuation invalidated through its token — and starts a
   replacement polling {e now}.  Used by {!heal} so a re-parented
   participant recovers at re-parent time instead of waiting out the
   rest of its poll period. *)
let poke_loop t name relaunch =
  match t.driver with
  | Some d when Ldap_sim.Engine.now d.dr_engine <= d.dr_until ->
      (match Hashtbl.find_opt t.loops name with
      | Some { lh_event; lh_live } ->
          Ldap_sim.Engine.cancel lh_event;
          lh_live := false
      | None -> ());
      Hashtbl.remove t.loops name;
      relaunch d
  | _ -> ()

(* Re-parents every participant whose upstream endpoint has vanished to
   its closest live ancestor (usually the grandparent).  Cookie
   translation happens inside [retarget]/[reparent]: content is kept
   and the next poll resynchronizes degraded from the acknowledged
   CSN — downstream sessions of a healed node survive untouched.  With
   an event driver active, each healed participant's poll loop is poked
   so that resynchronization starts immediately. *)
let heal t =
  List.iter
    (fun node ->
      let up = Node.upstream node in
      if Resync.Transport.endpoint t.transport up = None then begin
        let p = live_host t up in
        Node.retarget node ~upstream:p;
        Hashtbl.replace t.parents (Node.host node) p;
        poke_loop t (Node.host node) (fun d -> launch_node_loop t d 0 node)
      end)
    t.nodes;
  List.iter
    (fun leaf ->
      let up = Leaf.parent leaf in
      if Resync.Transport.endpoint t.transport up = None then begin
        let p = live_host t up in
        Leaf.reparent leaf ~parent:p;
        Hashtbl.replace t.parents (Leaf.name leaf) p;
        poke_loop t (Leaf.name leaf) (fun d -> launch_leaf_loop t d 0 leaf)
      end)
    t.leaves

(* --- Synchronization ------------------------------------------------- *)

(* One poll round, children before parents: leaves pull from their
   parents' current content first, then the deepest interior tier,
   up to the tier under the root.  An update committed at the root
   therefore propagates one tier per round — convergence lag equals
   tier depth, the quantity the tree-fanout experiment measures. *)
let sync_round t =
  heal t;
  List.iter Leaf.sync t.leaves;
  let by_depth_desc =
    List.sort
      (fun a b ->
        compare (depth t (Node.host b)) (depth t (Node.host a)))
      t.nodes
  in
  List.iter Node.sync by_depth_desc

let drive_events ?on_leaf_poll t engine ~poll_every ~until =
  if poll_every <= 0 then invalid_arg "Topology.drive_events: poll_every must be positive";
  heal t;
  let d =
    {
      dr_engine = engine;
      dr_poll_every = poll_every;
      dr_until = until;
      dr_on_leaf_poll = on_leaf_poll;
    }
  in
  t.driver <- Some d;
  let i = ref 0 in
  List.iter
    (fun leaf ->
      launch_leaf_loop t d (!i mod poll_every) leaf;
      incr i)
    t.leaves;
  List.iter
    (fun node ->
      launch_node_loop t d (!i mod poll_every) node;
      incr i)
    t.nodes

(* --- Crash and restart ----------------------------------------------- *)

let enable_durability ?faults ?(sync = true) t =
  let d = { dmedia = Hashtbl.create 16; dfaults = faults; dsync = sync } in
  t.durability <- Some d;
  (* Already-attached leaves become durable now: their current content
     is checkpointed into their media by [attach_store]. *)
  List.iter
    (fun leaf ->
      match leaf_medium t (Leaf.name leaf) with
      | Some m -> Leaf.attach_store ~sync leaf m
      | None -> ())
    t.leaves

let checkpoint_leaves t = List.iter Leaf.checkpoint t.leaves

let medium_of t ~name =
  match t.durability with
  | None -> None
  | Some d -> Hashtbl.find_opt d.dmedia name

let crash_leaf t leaf =
  let name = Leaf.name leaf in
  if Hashtbl.mem t.crashed name then
    invalid_arg ("Topology.crash_leaf: " ^ name ^ " is already down");
  Hashtbl.replace t.crashed name
    { ci_parent = Leaf.parent leaf; ci_queries = Leaf.subscriptions leaf };
  (match Hashtbl.find_opt t.loops name with
  | Some { lh_event; lh_live } ->
      Ldap_sim.Engine.cancel lh_event;
      lh_live := false
  | None -> ());
  Hashtbl.remove t.loops name;
  (* Impose the crash on the durable medium first, then detach the
     zombie in-memory leaf: an exchange still in flight when the crash
     fires can no longer journal into post-crash durable state. *)
  (match medium_of t ~name with
  | Some m -> Ldap_store.Medium.crash m
  | None -> ());
  Leaf.detach_store leaf;
  t.leaves <- List.filter (fun l -> Leaf.name l <> name) t.leaves

type restart_mode = Resume | Merkle | Cold

let restart_leaf ?(mode = Resume) t ~name =
  match Hashtbl.find_opt t.crashed name with
  | None -> Error ("Topology.restart_leaf: " ^ name ^ " is not down")
  | Some info -> (
      let parent = live_host t info.ci_parent in
      let resume leaf report =
        Hashtbl.remove t.crashed name;
        Hashtbl.replace t.parents name (Leaf.parent leaf);
        t.leaves <- leaf :: t.leaves;
        (match t.driver with
        | Some d when Ldap_sim.Engine.now d.dr_engine <= d.dr_until ->
            launch_leaf_loop t d 0 leaf
        | _ -> ());
        Ok (leaf, report)
      in
      let cold () =
        (* Cold restart: a fresh leaf re-subscribes from scratch —
           every subscription pays a full initial fetch. *)
        let leaf = Leaf.create t.transport ~name ~parent in
        let rec re_subscribe = function
          | [] -> resume leaf None
          | q :: rest -> (
              match Leaf.subscribe leaf q with
              | Ok () -> re_subscribe rest
              | Error e -> Error e)
        in
        re_subscribe info.ci_queries
      in
      match (mode, medium_of t ~name) with
      | Cold, _ | _, None -> cold ()
      | (Resume | Merkle), Some medium -> (
          (* Durable restart: subscriptions, content and resume cookies
             come from the medium; the next poll resumes ReSync from
             the durable cookie instead of re-fetching.  (A damaged
             store — torn or stale WAL — already forces anti-entropy
             inside the recovery itself.) *)
          let sync =
            match t.durability with Some d -> d.dsync | None -> true
          in
          match Leaf.recover ~sync t.transport ~name ~parent medium with
          | Ok (leaf, report) ->
              (* [Merkle] additionally reconciles every subscription
                 right now, whatever the store's damage flags said —
                 the mode for a restart known to have lost updates
                 (e.g. an unsynced WAL).  A filter whose walk fails
                 falls back cold: its cookie is dropped so the next
                 poll re-fetches from scratch. *)
              if mode = Merkle then
                List.iter
                  (fun (q, r) ->
                    match r with
                    | Ok _ -> ()
                    | Error _ -> (
                        match
                          R.Filter_replica.consumer_for (Leaf.replica leaf) q
                        with
                        | Some c -> Resync.Consumer.set_cookie c None
                        | None -> ()))
                  (Leaf.merkle_sync leaf);
              resume leaf (Some report)
          | Error e -> Error e))

let crashed_leaves t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.crashed [] |> List.sort compare

let leaf_converged t leaf =
  let schema = schema t in
  let backend = Resync.Master.backend t.master in
  let canon entries =
    List.sort
      (fun a b -> compare (Dn.canonical (Entry.dn a)) (Dn.canonical (Entry.dn b)))
      entries
  in
  List.for_all
    (fun q ->
      let got = canon (R.Replica.eval_over_entries schema q (Leaf.content_seq leaf q)) in
      let want = canon (Resync.Content.current backend q) in
      List.length got = List.length want && List.for_all2 Entry.equal got want)
    (Leaf.subscriptions leaf)

let converged t = List.for_all (leaf_converged t) t.leaves

let rounds_to_converge ?(max_rounds = 16) t =
  let rec go n =
    if converged t then Some n
    else if n >= max_rounds then None
    else begin
      sync_round t;
      go (n + 1)
    end
  in
  go 0

(* --- Builders --------------------------------------------------------- *)

let leaf_name i = Printf.sprintf "leaf%d" (i + 1)
let node_name i = Printf.sprintf "node%d" (i + 1)

let build ?faults ?strategy ?dispatch ~shape ~covers ~leaf_queries backend =
  let t = create ?faults ?strategy ?dispatch backend in
  let attach_leaves parents_of =
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | q :: rest -> (
          match add_leaf t ~name:(leaf_name i) ~parent:(parents_of i) q with
          | Ok leaf -> go (i + 1) (leaf :: acc) rest
          | Error e -> Error e)
    in
    go 0 [] leaf_queries
  in
  let interior =
    match shape with
    | Star -> Ok []
    | Chain n ->
        let rec chain i parent acc =
          if i >= n then Ok (List.rev acc)
          else
            match add_node ?dispatch t ~name:(node_name i) ~parent ~covers with
            | Ok node -> chain (i + 1) (node_name i) (node :: acc)
            | Error e -> Error e
        in
        chain 0 t.root []
    | Tree { arity } ->
        let rec row i acc =
          if i >= arity then Ok (List.rev acc)
          else
            match
              add_node ?dispatch t ~name:(node_name i) ~parent:t.root ~covers
            with
            | Ok node -> row (i + 1) (node :: acc)
            | Error e -> Error e
        in
        row 0 []
  in
  match interior with
  | Error e -> Error e
  | Ok [] -> (
      match attach_leaves (fun _ -> t.root) with
      | Ok _ -> Ok t
      | Error e -> Error e)
  | Ok ns -> (
      let parents_of =
        match shape with
        | Chain n when n > 0 -> fun _ -> node_name (n - 1)
        | _ ->
            let arr = Array.of_list (List.map Node.host ns) in
            fun i -> arr.(i mod Array.length arr)
      in
      match attach_leaves parents_of with
      | Ok _ -> Ok t
      | Error e -> Error e)

(* --- Accounting ------------------------------------------------------- *)

let upstream_bytes stats =
  stats.R.Stats.sync_bytes + stats.R.Stats.fetch_bytes
  + stats.R.Stats.merkle_bytes

(* Ber bytes that crossed links terminating at the root: the upstream
   traffic of every participant currently attached to it.  In a star
   this is every leaf's traffic; in a tree only the interior nodes'. *)
let root_link_bytes t =
  let of_node acc node =
    if Node.upstream node = t.root then acc + upstream_bytes (Node.stats node)
    else acc
  in
  let of_leaf acc leaf =
    if Leaf.parent leaf = t.root then acc + upstream_bytes (Leaf.stats leaf)
    else acc
  in
  List.fold_left of_leaf (List.fold_left of_node 0 t.nodes) t.leaves

type tier_summary = {
  tier : int;
  members : int;
  sessions : int;  (** Downstream ReSync sessions held at this tier. *)
  upstream_bytes : int;  (** Ber bytes members paid on their upstream links. *)
  served_bytes : int;  (** Ber bytes members served downstream. *)
}

let tier_summaries t =
  let tbl = Hashtbl.create 8 in
  let add tier ~sessions ~up ~served =
    let m, s, u, v =
      match Hashtbl.find_opt tbl tier with
      | Some (m, s, u, v) -> (m, s, u, v)
      | None -> (0, 0, 0, 0)
    in
    Hashtbl.replace tbl tier (m + 1, s + sessions, u + up, v + served)
  in
  (* The root pays nothing upstream; what it serves is exactly what
     its direct children pay on their root links. *)
  add 0
    ~sessions:(Resync.Master.session_count t.master)
    ~up:0 ~served:(root_link_bytes t);
  List.iter
    (fun node ->
      let st = Node.stats node in
      add
        (depth t (Node.host node))
        ~sessions:(Node.session_count node) ~up:(upstream_bytes st)
        ~served:st.R.Stats.served_bytes)
    t.nodes;
  List.iter
    (fun leaf ->
      add (depth t (Leaf.name leaf)) ~sessions:0
        ~up:(upstream_bytes (Leaf.stats leaf))
        ~served:0)
    t.leaves;
  Hashtbl.fold
    (fun tier (members, sessions, up, served) acc ->
      { tier; members; sessions; upstream_bytes = up; served_bytes = served }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.tier b.tier)
