open Ldap
module C = Ldap_containment
module Resync = Ldap_resync
module R = Ldap_replication

(* A downstream session tracks what it has sent as a cursor over the
   stored consumer's content-store change spine plus a table of sent
   image hashes — never a full entry-map snapshot.  Serving a poll
   walks only the DNs mutated since [spine_pos] (O(diff)); the hash
   table arbitrates Add vs Modify vs no-op per changed DN and costs
   one DN string and a hash per member instead of the entries
   themselves. *)
type session = {
  id : int;
  query : Query.t;
  matcher : Resync.Content.matcher;  (* query compiled once per session *)
  stored : Query.t;  (* the node's stored query this session is served from *)
  mutable seen : (string, Dn.t * int64) Hashtbl.t;
      (* canonical DN -> (DN, content hash of the sent selected image) *)
  mutable spine_pos : int;  (* store revision this session has consumed *)
  mutable synced_csn : Csn.t;
  mutable persist_push : Resync.Protocol.push_channel option;
}

type t = {
  replica : R.Filter_replica.t;
  host : string;
  sessions : (int, session) Hashtbl.t;
  persist : (int, session) Hashtbl.t;
  dispatch : C.Predicate_index.t option;  (* [Routed] only *)
  mutable next_id : int;
  mutable clock : int;
  (* Serving cost counters, the O(diff) evidence the scale sweep
     gates on. *)
  mutable inc_polls : int;  (* incremental polls served *)
  mutable inc_scanned : int;  (* DNs/entries examined serving them *)
  mutable inc_rescans : int;  (* cursor fell off the spine: full diff *)
  mutable serve_seconds : float;  (* wall clock inside [handle] *)
  mutable serve_samples : float list;  (* per-serve wall seconds, newest first *)
  mutable incr_serve_samples : float list;
      (* serve_samples restricted to incremental replies — the
         O(diff)-cost population, free of O(selection) initial and
         degraded transfers *)
}

let replica t = t.replica
let host t = t.host
let upstream t = R.Filter_replica.master_host t.replica
let schema t = R.Filter_replica.schema t.replica
let stats t = R.Filter_replica.stats t.replica
let session_count t = Hashtbl.length t.sessions
let persistent_count t = Hashtbl.length t.persist

(* --- Referral envelope ----------------------------------------------
   A subscription the node cannot prove contained is rejected with the
   LDAP URL of its own upstream; the subscriber chases it one tier up,
   like a search referral (Figure 2). *)

let referral_prefix = "referral:"

let referral_error url = referral_prefix ^ url

let referral_of_error msg =
  let n = String.length referral_prefix in
  if String.length msg > n && String.sub msg 0 n = referral_prefix then
    Some (String.sub msg n (String.length msg - n))
  else None

(* --- Session plumbing (mirrors Master) ------------------------------ *)

let set_persist t session push =
  session.persist_push <- push;
  match push with
  | Some _ -> Hashtbl.replace t.persist session.id session
  | None -> Hashtbl.remove t.persist session.id

let remove_session t id =
  Hashtbl.remove t.sessions id;
  Hashtbl.remove t.persist id;
  Option.iter (fun idx -> C.Predicate_index.remove idx id) t.dispatch

let store_for t stored =
  Option.map Resync.Consumer.content
    (R.Filter_replica.consumer_for t.replica stored)

let store_rev t stored =
  match store_for t stored with Some st -> Content_store.rev st | None -> 0

let new_session t query ~stored ~persist_push ~csn =
  (* Id 0 is the reserved foreign-session marker (reparent translation):
     an intermediate master must never hand it out either. *)
  if t.next_id = 0 then t.next_id <- 1;
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let session =
    {
      id;
      query;
      matcher = Resync.Content.matcher (schema t) query;
      stored;
      seen = Hashtbl.create 64;
      spine_pos = store_rev t stored;
      synced_csn = csn;
      persist_push = None;
    }
  in
  Hashtbl.replace t.sessions id session;
  set_persist t session persist_push;
  Option.iter
    (fun idx -> C.Predicate_index.add idx id query.Query.filter)
    t.dispatch;
  session

(* The node's own synchronization point for a stored query: the CSN of
   the cookie its upstream consumer holds.  All CSNs originate at the
   root backend, so this is directly comparable to whatever any
   downstream cookie carries. *)
let node_csn t stored =
  match R.Filter_replica.consumer_for t.replica stored with
  | Some c -> (
      match Resync.Consumer.cookie c with
      | Some ck -> (
          match Resync.Protocol.parse_cookie ck with
          | Some (_, csn) -> csn
          | None -> Csn.zero)
      | None -> Csn.zero)
  | None -> Csn.zero

let current_content t session =
  match R.Filter_replica.consumer_for t.replica session.stored with
  | Some c ->
      R.Replica.eval_over_entries (schema t) session.query
        (Resync.Consumer.entries_seq c)
  | None -> []

let select_action (q : Query.t) = function
  | Resync.Action.Add e ->
      Resync.Action.Add (Entry.select e (Query.attr_list q.Query.attrs))
  | Resync.Action.Modify e ->
      Resync.Action.Modify (Entry.select e (Query.attr_list q.Query.attrs))
  | (Resync.Action.Delete _ | Resync.Action.Retain _) as a -> a

(* Entries are already selected when hashed, so the hash identifies
   the image as sent downstream, not the stored one. *)
let note_sent session e =
  Hashtbl.replace session.seen
    (Dn.canonical (Entry.dn e))
    (Entry.dn e, Entry.content_hash64 e)

let reset_seen session entries =
  session.seen <- Hashtbl.create (max 64 (2 * List.length entries));
  List.iter (note_sent session) entries

(* --- Replies -------------------------------------------------------- *)

let session_cookie session ~mode =
  match mode with
  | Resync.Protocol.Poll | Resync.Protocol.Persist ->
      Some (Resync.Protocol.cookie_of ~id:session.id ~csn:session.synced_csn)
  | Resync.Protocol.Sync_end -> None

let initial_reply t session ~mode =
  (* The cursor position is pinned before the content is read: changes
     racing the read are re-examined on the next poll instead of
     falling between snapshot and cursor. *)
  session.spine_pos <- store_rev t session.stored;
  let entries = current_content t session in
  reset_seen session entries;
  session.synced_csn <- node_csn t session.stored;
  {
    Resync.Protocol.kind = Resync.Protocol.Initial_content;
    actions = List.map (fun e -> Resync.Action.Add e) entries;
    cookie = session_cookie session ~mode;
  }

(* Incremental replies stream the stored consumer's change spine from
   the session's cursor: only the DNs mutated since its last poll are
   examined, the [seen] hash table resolving each to Add / Modify /
   Delete / no-op — the node keeps no per-session action history and
   no per-session content copy, the replica's store {e is} the
   history.  A cursor that fell off the trimmed spine rebuilds by one
   full diff against the hash table and resumes streaming.  Deletes
   first, like the master's coalescer. *)
let incremental_from_spine t session changed =
  let select = Query.attr_list session.query.Query.attrs in
  let st = store_for t session.stored in
  let deletes = ref [] and upserts = ref [] in
  List.iter
    (fun dn ->
      t.inc_scanned <- t.inc_scanned + 1;
      let key = Dn.canonical dn in
      let now =
        match st with
        | Some st -> (
            match Content_store.find st dn with
            | Some e when Resync.Content.matches session.matcher e ->
                Some (Entry.select e select)
            | Some _ | None -> None)
        | None -> None
      in
      match (now, Hashtbl.find_opt session.seen key) with
      | Some img, Some (_, h0) ->
          if not (Int64.equal (Entry.content_hash64 img) h0) then begin
            note_sent session img;
            upserts := Resync.Action.Modify img :: !upserts
          end
      | Some img, None ->
          note_sent session img;
          upserts := Resync.Action.Add img :: !upserts
      | None, Some (dn0, _) ->
          Hashtbl.remove session.seen key;
          deletes := Resync.Action.Delete dn0 :: !deletes
      | None, None -> ())
    changed;
  List.rev !deletes @ List.rev !upserts

let incremental_by_rescan t session =
  t.inc_rescans <- t.inc_rescans + 1;
  let current = current_content t session in
  let fresh = Hashtbl.create (max 64 (2 * List.length current)) in
  let upserts =
    List.filter_map
      (fun e ->
        t.inc_scanned <- t.inc_scanned + 1;
        let key = Dn.canonical (Entry.dn e) in
        let h = Entry.content_hash64 e in
        let action =
          match Hashtbl.find_opt session.seen key with
          | Some (_, h0) when Int64.equal h h0 -> None
          | Some _ -> Some (Resync.Action.Modify e)
          | None -> Some (Resync.Action.Add e)
        in
        Hashtbl.replace fresh key (Entry.dn e, h);
        action)
      current
  in
  let deletes =
    Hashtbl.fold
      (fun key (dn, _) acc ->
        t.inc_scanned <- t.inc_scanned + 1;
        if Hashtbl.mem fresh key then acc else Resync.Action.Delete dn :: acc)
      session.seen []
  in
  session.seen <- fresh;
  deletes @ upserts

let incremental_reply t session ~mode =
  t.inc_polls <- t.inc_polls + 1;
  let pos = session.spine_pos in
  session.spine_pos <- store_rev t session.stored;
  let actions =
    match store_for t session.stored with
    | None -> incremental_by_rescan t session
    | Some st -> (
        match Content_store.changes_since st pos with
        | Some changed -> incremental_from_spine t session changed
        | None -> incremental_by_rescan t session)
  in
  session.synced_csn <- node_csn t session.stored;
  {
    Resync.Protocol.kind = Resync.Protocol.Incremental;
    actions;
    cookie = session_cookie session ~mode;
  }

(* Degraded mode, eq. (3), against replica content: full entries for
   members changed since the cookie's CSN (or lacking a usable
   modifyTimestamp — conservatively treated as changed), [retain] for
   the rest; the downstream prunes everything not mentioned. *)
let degraded_reply t query ~stored ~since ~mode ~persist_push =
  let session =
    new_session t query ~stored ~persist_push ~csn:(node_csn t stored)
  in
  session.spine_pos <- store_rev t stored;
  let members = current_content t session in
  let actions =
    List.map
      (fun e ->
        let changed =
          match Entry.get e "modifytimestamp" with
          | [ ts ] -> (
              match int_of_string_opt ts with
              | Some c -> Csn.( < ) since (Csn.of_int c)
              | None -> true)
          | _ -> true
        in
        if changed then Resync.Action.Add e
        else Resync.Action.Retain (Entry.dn e))
      members
  in
  reset_seen session members;
  session.synced_csn <- node_csn t stored;
  {
    Resync.Protocol.kind = Resync.Protocol.Degraded;
    actions;
    cookie = session_cookie session ~mode;
  }

(* --- Serving -------------------------------------------------------- *)

let handle_inner t ?push (request : Resync.Protocol.request) query =
  t.clock <- t.clock + 1;
  let mode = request.Resync.Protocol.mode in
  match mode with
  | Resync.Protocol.Sync_end -> (
      match request.cookie with
      | None -> Error "sync_end requires a cookie"
      | Some c -> (
          match Resync.Protocol.parse_cookie c with
          | None -> Error "malformed cookie"
          | Some (id, _) ->
              remove_session t id;
              Ok
                {
                  Resync.Protocol.kind = Resync.Protocol.Incremental;
                  actions = [];
                  cookie = None;
                }))
  | Resync.Protocol.Poll | Resync.Protocol.Persist -> (
      if mode = Resync.Protocol.Persist && Option.is_none push then
        Error "persist mode requires a push channel"
      else
        match R.Filter_replica.containing_consumer t.replica query with
        | None ->
            (* Not provably contained in any stored query: refer the
               subscriber to this node's own upstream. *)
            Error (referral_error (Referral.make ~host:(upstream t) ()))
        | Some (stored, _) -> (
            let persist_push =
              if mode = Resync.Protocol.Persist then push else None
            in
            let reply =
              match request.cookie with
              | None ->
                  let session =
                    new_session t query ~stored ~persist_push
                      ~csn:(node_csn t stored)
                  in
                  Ok (initial_reply t session ~mode)
              | Some c -> (
                  match Resync.Protocol.parse_cookie c with
                  | None -> Error "malformed cookie"
                  | Some (id, csn) -> (
                      match Hashtbl.find_opt t.sessions id with
                      | Some session
                        when Query.equal session.query query
                             && Csn.equal csn session.synced_csn ->
                          set_persist t session persist_push;
                          Ok (incremental_reply t session ~mode)
                      | Some session when Query.equal session.query query ->
                          (* The downstream acknowledges a CSN other
                             than the one this session advanced to: a
                             reply or pushed action was lost.  The
                             sent-image table reflects sent-not-received
                             state, so diffing against it would silently
                             diverge — resynchronize degraded from the
                             CSN the downstream actually holds. *)
                          remove_session t session.id;
                          Ok
                            (degraded_reply t query ~stored ~since:csn ~mode
                               ~persist_push)
                      | Some _ | None ->
                          (* Unknown session — including the reserved
                             foreign-session id 0 installed by cookie
                             translation when a consumer was
                             re-parented here: degraded mode from the
                             cookie's CSN. *)
                          Ok
                            (degraded_reply t query ~stored ~since:csn ~mode
                               ~persist_push)))
            in
            Result.iter (R.Stats.record_served_reply (stats t)) reply;
            reply))

let handle t ?push request query =
  let t0 = Sys.time () in
  let reply = handle_inner t ?push request query in
  let dt = Sys.time () -. t0 in
  t.serve_seconds <- t.serve_seconds +. dt;
  t.serve_samples <- dt :: t.serve_samples;
  (match reply with
  | Ok r when r.Resync.Protocol.kind = Resync.Protocol.Incremental ->
      t.incr_serve_samples <- dt :: t.incr_serve_samples
  | Ok _ | Error _ -> ());
  reply

let abandon t ~cookie =
  match Resync.Protocol.parse_cookie cookie with
  | Some (id, _) -> remove_session t id
  | None -> ()

(* An intermediate master answers Merkle walk steps from its own
   replica content, so anti-entropy cascades tier-by-tier: a leaf
   repairs against its node while the node independently repairs
   against its parent.  Same containment check and referral escape as
   [handle]; a [Fetch] mints a session whose sent-image table is the
   content being shipped, so the repaired downstream resumes
   incrementally. *)
let antientropy_serve t request query =
  match R.Filter_replica.containing_consumer t.replica query with
  | None -> Error (referral_error (Referral.make ~host:(upstream t) ()))
  | Some (stored, c) ->
      let content () =
        List.to_seq
          (R.Replica.eval_over_entries (schema t) query
             (Resync.Consumer.entries_seq c))
      in
      Ok
        (Ldap_antientropy.Exchange.serve ~content
           ~cookie:(fun () ->
             let session =
               new_session t query ~stored ~persist_push:None
                 ~csn:(node_csn t stored)
             in
             session.spine_pos <- store_rev t stored;
             reset_seen session (List.of_seq (content ()));
             session_cookie session ~mode:Resync.Protocol.Poll)
           request)

let estimate t query =
  match R.Filter_replica.containing_consumer t.replica query with
  | Some (_, c) ->
      List.length
        (R.Replica.eval_over_entries (schema t) query
           (Resync.Consumer.entries_seq c))
  | None -> 0

(* --- Persist relay --------------------------------------------------
   The replica's change observer: one upstream-applied content change,
   relayed to the persistent downstream sessions served from the same
   stored query.  With [Routed] dispatch only the sessions whose filter
   anchors the predicate index reports are classified exactly; the rest
   see [Stays_out] by the index's superset guarantee.  Either way every
   persist session of the stored query acknowledges the node's CSN and
   advances its spine cursor — the pushed actions carry everything the
   spine recorded (other stored queries advance independently — their
   own consumers define their synchronization point). *)
let relay t ~stored ~before ~after =
  if Hashtbl.length t.persist > 0 then begin
    let csn = node_csn t stored in
    let rev = store_rev t stored in
    let candidates =
      Option.map
        (fun idx -> C.Predicate_index.affected idx ~before ~after)
        t.dispatch
    in
    let dead = ref [] in
    Hashtbl.iter
      (fun id session ->
        if Query.equal session.stored stored then begin
          let candidate =
            match candidates with
            | None -> true
            | Some c -> C.Predicate_index.mem c id
          in
          (if candidate then
             let transition =
               Resync.Content.classify_m session.matcher ~before ~after
             in
             let actions =
               List.map (select_action session.query)
                 (Resync.Content.actions_of_transition transition)
             in
             let alive = ref true in
             List.iter
               (fun a ->
                 (match a with
                 | Resync.Action.Add e | Resync.Action.Modify e ->
                     note_sent session e
                 | Resync.Action.Delete dn ->
                     Hashtbl.remove session.seen (Dn.canonical dn)
                 | Resync.Action.Retain _ -> ());
                 (match session.persist_push with
                 | Some ch when !alive -> (
                     match ch.Resync.Protocol.pc_send a with
                     | Resync.Protocol.Push_ok -> ()
                     | Resync.Protocol.Push_stalled | Resync.Protocol.Push_gone ->
                         (* An intermediate node keeps no outbound
                            queue of its own: a downstream that stopped
                            draining (or reset) is cut here and resyncs
                            degraded when it reconnects.  Bounded
                            buffering lives at the root master. *)
                         alive := false;
                         ch.Resync.Protocol.pc_close ();
                         dead := id :: !dead)
                 | Some _ | None -> ());
                 R.Stats.record_served_push (stats t) a)
               actions);
          session.synced_csn <- csn;
          session.spine_pos <- rev
        end)
      t.persist;
    List.iter (remove_session t) !dead
  end

(* --- Scale reporting ------------------------------------------------- *)

let cursor_stats t = (t.inc_polls, t.inc_scanned, t.inc_rescans)
let serve_seconds t = t.serve_seconds
let serve_samples t = t.serve_samples
let incremental_serve_samples t = t.incr_serve_samples

let cursor_depths t =
  Hashtbl.fold
    (fun _ s acc -> (store_rev t s.stored - s.spine_pos) :: acc)
    t.sessions []

let seen_residency t =
  Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s.seen) t.sessions 0

(* --- Construction --------------------------------------------------- *)

let endpoint t =
  {
    Resync.Transport.ep_schema = schema t;
    ep_handle = (fun ~push req q -> handle t ?push req q);
    ep_abandon = (fun ~cookie -> abandon t ~cookie);
    ep_estimate = (fun q -> estimate t q);
    ep_tree = (fun request q -> antientropy_serve t request q);
  }

let create ?(cache_capacity = 0) ?(dispatch = Resync.Master.Routed) transport
    ~host ~upstream =
  let replica =
    R.Filter_replica.create_over ~cache_capacity ~host transport
      ~master_host:upstream
  in
  let t =
    {
      replica;
      host;
      sessions = Hashtbl.create 16;
      persist = Hashtbl.create 16;
      dispatch =
        (match dispatch with
        | Resync.Master.Routed ->
            Some (C.Predicate_index.create (R.Filter_replica.schema replica))
        | Resync.Master.Naive -> None);
      next_id = 1;
      clock = 0;
      inc_polls = 0;
      inc_scanned = 0;
      inc_rescans = 0;
      serve_seconds = 0.0;
      serve_samples = [];
      incr_serve_samples = [];
    }
  in
  R.Filter_replica.set_on_change replica (fun ~stored ~before ~after ->
      relay t ~stored ~before ~after);
  Resync.Transport.add_endpoint transport ~name:host (endpoint t);
  t

let install_cover t q = R.Filter_replica.install_filter t.replica q
let covers t = R.Filter_replica.stored_filters t.replica
let sync t = R.Filter_replica.sync t.replica
let sync_async t k = R.Filter_replica.sync_async t.replica k
let retarget t ~upstream = R.Filter_replica.retarget t.replica ~master_host:upstream
