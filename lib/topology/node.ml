open Ldap
module C = Ldap_containment
module Resync = Ldap_resync
module R = Ldap_replication

type session = {
  id : int;
  query : Query.t;
  matcher : Resync.Content.matcher;  (* query compiled once per session *)
  stored : Query.t;  (* the node's stored query this session is served from *)
  mutable snapshot : Entry.t Dn.Map.t;  (* entries sent downstream, selected *)
  mutable synced_csn : Csn.t;
  mutable persist_push : (Resync.Action.t -> unit) option;
}

type t = {
  replica : R.Filter_replica.t;
  host : string;
  sessions : (int, session) Hashtbl.t;
  persist : (int, session) Hashtbl.t;
  dispatch : C.Predicate_index.t option;  (* [Routed] only *)
  mutable next_id : int;
  mutable clock : int;
}

let replica t = t.replica
let host t = t.host
let upstream t = R.Filter_replica.master_host t.replica
let schema t = R.Filter_replica.schema t.replica
let stats t = R.Filter_replica.stats t.replica
let session_count t = Hashtbl.length t.sessions
let persistent_count t = Hashtbl.length t.persist

(* --- Referral envelope ----------------------------------------------
   A subscription the node cannot prove contained is rejected with the
   LDAP URL of its own upstream; the subscriber chases it one tier up,
   like a search referral (Figure 2). *)

let referral_prefix = "referral:"

let referral_error url = referral_prefix ^ url

let referral_of_error msg =
  let n = String.length referral_prefix in
  if String.length msg > n && String.sub msg 0 n = referral_prefix then
    Some (String.sub msg n (String.length msg - n))
  else None

(* --- Session plumbing (mirrors Master) ------------------------------ *)

let set_persist t session push =
  session.persist_push <- push;
  match push with
  | Some _ -> Hashtbl.replace t.persist session.id session
  | None -> Hashtbl.remove t.persist session.id

let remove_session t id =
  Hashtbl.remove t.sessions id;
  Hashtbl.remove t.persist id;
  Option.iter (fun idx -> C.Predicate_index.remove idx id) t.dispatch

let new_session t query ~stored ~persist_push ~csn =
  (* Id 0 is the reserved foreign-session marker (reparent translation):
     an intermediate master must never hand it out either. *)
  if t.next_id = 0 then t.next_id <- 1;
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let session =
    {
      id;
      query;
      matcher = Resync.Content.matcher (schema t) query;
      stored;
      snapshot = Dn.Map.empty;
      synced_csn = csn;
      persist_push = None;
    }
  in
  Hashtbl.replace t.sessions id session;
  set_persist t session persist_push;
  Option.iter
    (fun idx -> C.Predicate_index.add idx id query.Query.filter)
    t.dispatch;
  session

(* The node's own synchronization point for a stored query: the CSN of
   the cookie its upstream consumer holds.  All CSNs originate at the
   root backend, so this is directly comparable to whatever any
   downstream cookie carries. *)
let node_csn t stored =
  match R.Filter_replica.consumer_for t.replica stored with
  | Some c -> (
      match Resync.Consumer.cookie c with
      | Some ck -> (
          match Resync.Protocol.parse_cookie ck with
          | Some (_, csn) -> csn
          | None -> Csn.zero)
      | None -> Csn.zero)
  | None -> Csn.zero

let current_content t session =
  match R.Filter_replica.consumer_for t.replica session.stored with
  | Some c ->
      R.Replica.eval_over_entries (schema t) session.query
        (Resync.Consumer.entries c)
  | None -> []

let map_of entries =
  List.fold_left (fun m e -> Dn.Map.add (Entry.dn e) e m) Dn.Map.empty entries

let select_action (q : Query.t) = function
  | Resync.Action.Add e ->
      Resync.Action.Add (Entry.select e (Query.attr_list q.Query.attrs))
  | Resync.Action.Modify e ->
      Resync.Action.Modify (Entry.select e (Query.attr_list q.Query.attrs))
  | (Resync.Action.Delete _ | Resync.Action.Retain _) as a -> a

(* --- Replies -------------------------------------------------------- *)

let session_cookie session ~mode =
  match mode with
  | Resync.Protocol.Poll | Resync.Protocol.Persist ->
      Some (Resync.Protocol.cookie_of ~id:session.id ~csn:session.synced_csn)
  | Resync.Protocol.Sync_end -> None

let initial_reply t session ~mode =
  let entries = current_content t session in
  session.snapshot <- map_of entries;
  session.synced_csn <- node_csn t session.stored;
  {
    Resync.Protocol.kind = Resync.Protocol.Initial_content;
    actions = List.map (fun e -> Resync.Action.Add e) entries;
    cookie = session_cookie session ~mode;
  }

(* Incremental replies come from diffing the per-session snapshot (what
   this session has acknowledged) against the node's current content —
   the node keeps no per-session action history, its replica content
   {e is} the history.  Deletes first, like the master's coalescer. *)
let incremental_reply t session ~mode =
  let current = current_content t session in
  let cur_map = map_of current in
  let deletes =
    Dn.Map.fold
      (fun dn _ acc ->
        if Dn.Map.mem dn cur_map then acc else Resync.Action.Delete dn :: acc)
      session.snapshot []
  in
  let upserts =
    List.filter_map
      (fun e ->
        match Dn.Map.find_opt (Entry.dn e) session.snapshot with
        | None -> Some (Resync.Action.Add e)
        | Some old ->
            if Entry.equal old e then None else Some (Resync.Action.Modify e))
      current
  in
  session.snapshot <- cur_map;
  session.synced_csn <- node_csn t session.stored;
  {
    Resync.Protocol.kind = Resync.Protocol.Incremental;
    actions = deletes @ upserts;
    cookie = session_cookie session ~mode;
  }

(* Degraded mode, eq. (3), against replica content: full entries for
   members changed since the cookie's CSN (or lacking a usable
   modifyTimestamp — conservatively treated as changed), [retain] for
   the rest; the downstream prunes everything not mentioned. *)
let degraded_reply t query ~stored ~since ~mode ~persist_push =
  let session =
    new_session t query ~stored ~persist_push ~csn:(node_csn t stored)
  in
  let members = current_content t session in
  let actions =
    List.map
      (fun e ->
        let changed =
          match Entry.get e "modifytimestamp" with
          | [ ts ] -> (
              match int_of_string_opt ts with
              | Some c -> Csn.( < ) since (Csn.of_int c)
              | None -> true)
          | _ -> true
        in
        if changed then Resync.Action.Add e
        else Resync.Action.Retain (Entry.dn e))
      members
  in
  session.snapshot <- map_of members;
  session.synced_csn <- node_csn t stored;
  {
    Resync.Protocol.kind = Resync.Protocol.Degraded;
    actions;
    cookie = session_cookie session ~mode;
  }

(* --- Serving -------------------------------------------------------- *)

let handle t ?push (request : Resync.Protocol.request) query =
  t.clock <- t.clock + 1;
  let mode = request.Resync.Protocol.mode in
  match mode with
  | Resync.Protocol.Sync_end -> (
      match request.cookie with
      | None -> Error "sync_end requires a cookie"
      | Some c -> (
          match Resync.Protocol.parse_cookie c with
          | None -> Error "malformed cookie"
          | Some (id, _) ->
              remove_session t id;
              Ok
                {
                  Resync.Protocol.kind = Resync.Protocol.Incremental;
                  actions = [];
                  cookie = None;
                }))
  | Resync.Protocol.Poll | Resync.Protocol.Persist -> (
      if mode = Resync.Protocol.Persist && push = None then
        Error "persist mode requires a push channel"
      else
        match R.Filter_replica.containing_consumer t.replica query with
        | None ->
            (* Not provably contained in any stored query: refer the
               subscriber to this node's own upstream. *)
            Error (referral_error (Referral.make ~host:(upstream t) ()))
        | Some (stored, _) -> (
            let persist_push =
              if mode = Resync.Protocol.Persist then push else None
            in
            let reply =
              match request.cookie with
              | None ->
                  let session =
                    new_session t query ~stored ~persist_push
                      ~csn:(node_csn t stored)
                  in
                  Ok (initial_reply t session ~mode)
              | Some c -> (
                  match Resync.Protocol.parse_cookie c with
                  | None -> Error "malformed cookie"
                  | Some (id, csn) -> (
                      match Hashtbl.find_opt t.sessions id with
                      | Some session
                        when Query.equal session.query query
                             && Csn.equal csn session.synced_csn ->
                          set_persist t session persist_push;
                          Ok (incremental_reply t session ~mode)
                      | Some session when Query.equal session.query query ->
                          (* The downstream acknowledges a CSN other
                             than the one this session advanced to: a
                             reply or pushed action was lost.  The
                             snapshot reflects sent-not-received state,
                             so diffing against it would silently
                             diverge — resynchronize degraded from the
                             CSN the downstream actually holds. *)
                          remove_session t session.id;
                          Ok
                            (degraded_reply t query ~stored ~since:csn ~mode
                               ~persist_push)
                      | Some _ | None ->
                          (* Unknown session — including the reserved
                             foreign-session id 0 installed by cookie
                             translation when a consumer was
                             re-parented here: degraded mode from the
                             cookie's CSN. *)
                          Ok
                            (degraded_reply t query ~stored ~since:csn ~mode
                               ~persist_push)))
            in
            Result.iter (R.Stats.record_served_reply (stats t)) reply;
            reply))

let abandon t ~cookie =
  match Resync.Protocol.parse_cookie cookie with
  | Some (id, _) -> remove_session t id
  | None -> ()

(* An intermediate master answers Merkle walk steps from its own
   replica content, so anti-entropy cascades tier-by-tier: a leaf
   repairs against its node while the node independently repairs
   against its parent.  Same containment check and referral escape as
   [handle]; a [Fetch] mints a session whose snapshot is the content
   being shipped, so the repaired downstream resumes incrementally. *)
let antientropy_serve t request query =
  match R.Filter_replica.containing_consumer t.replica query with
  | None -> Error (referral_error (Referral.make ~host:(upstream t) ()))
  | Some (stored, c) ->
      let content () =
        R.Replica.eval_over_entries (schema t) query
          (Resync.Consumer.entries c)
      in
      Ok
        (Ldap_antientropy.Exchange.serve ~content
           ~cookie:(fun () ->
             let session =
               new_session t query ~stored ~persist_push:None
                 ~csn:(node_csn t stored)
             in
             session.snapshot <- map_of (content ());
             session_cookie session ~mode:Resync.Protocol.Poll)
           request)

let estimate t query =
  match R.Filter_replica.containing_consumer t.replica query with
  | Some (_, c) ->
      List.length
        (R.Replica.eval_over_entries (schema t) query
           (Resync.Consumer.entries c))
  | None -> 0

(* --- Persist relay --------------------------------------------------
   The replica's change observer: one upstream-applied content change,
   relayed to the persistent downstream sessions served from the same
   stored query.  With [Routed] dispatch only the sessions whose filter
   anchors the predicate index reports are classified exactly; the rest
   see [Stays_out] by the index's superset guarantee.  Either way every
   persist session of the stored query acknowledges the node's CSN
   (other stored queries advance independently — their own consumers
   define their synchronization point). *)
let relay t ~stored ~before ~after =
  if Hashtbl.length t.persist > 0 then begin
    let csn = node_csn t stored in
    let candidates =
      Option.map
        (fun idx -> C.Predicate_index.affected idx ~before ~after)
        t.dispatch
    in
    Hashtbl.iter
      (fun id session ->
        if Query.equal session.stored stored then begin
          let candidate =
            match candidates with
            | None -> true
            | Some c -> C.Predicate_index.mem c id
          in
          (if candidate then
             let transition =
               Resync.Content.classify_m session.matcher ~before ~after
             in
             let actions =
               List.map (select_action session.query)
                 (Resync.Content.actions_of_transition transition)
             in
             List.iter
               (fun a ->
                 (match a with
                 | Resync.Action.Add e | Resync.Action.Modify e ->
                     session.snapshot <-
                       Dn.Map.add (Entry.dn e) e session.snapshot
                 | Resync.Action.Delete dn ->
                     session.snapshot <- Dn.Map.remove dn session.snapshot
                 | Resync.Action.Retain _ -> ());
                 (match session.persist_push with
                 | Some push -> push a
                 | None -> ());
                 R.Stats.record_served_push (stats t) a)
               actions);
          session.synced_csn <- csn
        end)
      t.persist
  end

(* --- Construction --------------------------------------------------- *)

let endpoint t =
  {
    Resync.Transport.ep_schema = schema t;
    ep_handle = (fun ~push req q -> handle t ?push req q);
    ep_abandon = (fun ~cookie -> abandon t ~cookie);
    ep_estimate = (fun q -> estimate t q);
    ep_tree = (fun request q -> antientropy_serve t request q);
  }

let create ?(cache_capacity = 0) ?(dispatch = Resync.Master.Routed) transport
    ~host ~upstream =
  let replica =
    R.Filter_replica.create_over ~cache_capacity ~host transport
      ~master_host:upstream
  in
  let t =
    {
      replica;
      host;
      sessions = Hashtbl.create 16;
      persist = Hashtbl.create 16;
      dispatch =
        (match dispatch with
        | Resync.Master.Routed ->
            Some (C.Predicate_index.create (R.Filter_replica.schema replica))
        | Resync.Master.Naive -> None);
      next_id = 1;
      clock = 0;
    }
  in
  R.Filter_replica.set_on_change replica (fun ~stored ~before ~after ->
      relay t ~stored ~before ~after);
  Resync.Transport.add_endpoint transport ~name:host (endpoint t);
  t

let install_cover t q = R.Filter_replica.install_filter t.replica q
let covers t = R.Filter_replica.stored_filters t.replica
let sync t = R.Filter_replica.sync t.replica
let sync_async t k = R.Filter_replica.sync_async t.replica k
let retarget t ~upstream = R.Filter_replica.retarget t.replica ~master_host:upstream
