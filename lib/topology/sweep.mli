(** The tree-fanout experiment: flat star versus 2-tier k-ary tree at
    growing consumer counts.

    For each consumer count [n], a synthetic enterprise directory is
    built, [n] leaves subscribe to department filters (round-robin over
    a small distinct-filter set), an update burst is applied at the
    root, and the topology is synchronized to convergence.  Per point
    the sweep records root-master session count, Ber bytes on the
    links into the root (initial build and update phases separately),
    total upstream bytes across all links, and the number of poll
    rounds to convergence.

    Expected shape: in the tree, root sessions and root-link bytes are
    flat in [n] (only the interior nodes talk to the root) while the
    star grows both linearly; the tree pays one extra convergence
    round per tier. *)

type point = {
  shape : string;  (** ["star"] or ["tree<arity>"]. *)
  consumers : int;
  root_sessions : int;  (** Live sessions at the root master. *)
  build_root_bytes : int;  (** Root-link Ber bytes of the initial fetches. *)
  update_root_bytes : int;  (** Root-link Ber bytes of the update phase. *)
  update_total_bytes : int;  (** Update-phase Ber bytes over every link. *)
  convergence_rounds : int;
      (** Poll rounds until every leaf matched the root ([-1]: did not
          converge within the cap). *)
}

type config = {
  consumers_list : int list;
  filters : int;  (** Distinct leaf filters (and interior covers). *)
  arity : int;  (** Interior nodes of the tree shape. *)
  updates : int;  (** Update burst length between build and measure. *)
  employees : int;
  seed : int;
}

val default_config : config
(** 100–1000 consumers, 20 filters, arity 4, 200 updates. *)

val smoke_config : config
(** CI-sized: 24 and 48 consumers, 8 filters, arity 2, 60 updates. *)

val tree_fanout : ?config:config -> unit -> point list
(** Runs star and tree at every consumer count, star first. *)

val json_of_points : point list -> string
(** A JSON array (indented for embedding as a [BENCH_PR3.json]
    field). *)
